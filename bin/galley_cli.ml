(* Command-line front end.

     galley_cli run prog.gly --input X=x.coo --random "E=100x100:0.01:42" \
       --show-plans --timings
     galley_cli demo

   Programs are written in textual tensor index notation (see
   lib/lang/parser.ml for the grammar); tensors load from plain-text COO
   files or are generated randomly.  Failures surface as classified Galley
   errors: parse errors exit with 2, everything else with 1. *)

module T = Galley_tensor.Tensor

let parse_random_spec (spec : string) : string * T.t =
  (* name=DIMSxDIMS:density:seed, e.g. E=100x100:0.01:42 *)
  match String.split_on_char '=' spec with
  | [ name; rest ] -> (
      match String.split_on_char ':' rest with
      | [ dims_s; density_s; seed_s ] ->
          let dims =
            Array.of_list
              (List.map int_of_string (String.split_on_char 'x' dims_s))
          in
          let formats =
            Array.init (Array.length dims) (fun k ->
                if k = 0 then T.Dense else T.Sparse_list)
          in
          let prng = Galley_tensor.Prng.create (int_of_string seed_s) in
          ( name,
            T.random ~prng ~dims ~formats ~density:(float_of_string density_s)
              () )
      | _ -> invalid_arg ("bad --random spec: " ^ spec))
  | _ -> invalid_arg ("bad --random spec: " ^ spec)

let parse_input_spec (spec : string) : string * T.t =
  match String.split_on_char '=' spec with
  | [ name; path ] -> (name, Galley_tensor.Tensor_io.load path)
  | _ -> invalid_arg ("bad --input spec: " ^ spec)

let pp_tier_summary label (tiers : (string * Galley_plan.Tier.t) list) =
  match tiers with
  | [] -> ()
  | _ ->
      let exact, greedy, naive = Galley_plan.Tier.counts tiers in
      Format.printf "%s tiers: exact=%d greedy=%d naive=%d%s@." label exact
        greedy naive
        (match
           List.filter (fun (_, t) -> t <> Galley_plan.Tier.Exact) tiers
         with
        | [] -> ""
        | degraded ->
            " ["
            ^ String.concat ", "
                (List.map
                   (fun (n, t) -> n ^ ":" ^ Galley_plan.Tier.to_string t)
                   degraded)
            ^ "]")

let print_result ~show_plans ~timings (res : Galley.Driver.result) =
  if show_plans then begin
    Format.printf "== logical plan ==@.";
    List.iter
      (fun q -> Format.printf "%a@." Galley_plan.Logical_query.pp q)
      res.Galley.Driver.logical_plan;
    Format.printf "== physical plan ==@.%a@." Galley_plan.Physical.pp_plan
      res.Galley.Driver.physical_plan
  end;
  List.iter
    (fun (name, idxs, t) ->
      Format.printf "== output %s[%s] ==@.%a@." name (String.concat "," idxs)
        T.pp t)
    res.Galley.Driver.outputs;
  if timings then begin
    let t = res.Galley.Driver.timings in
    Format.printf
      "timings: logical=%.4fs physical=%.4fs compile=%.4fs (%d kernels \
       compiled) execute=%.4fs cse_hits=%d@."
      t.Galley.Driver.logical_seconds t.Galley.Driver.physical_seconds
      t.Galley.Driver.compile_seconds t.Galley.Driver.compile_count
      t.Galley.Driver.execute_seconds t.Galley.Driver.cse_hits;
    pp_tier_summary "logical" res.Galley.Driver.logical_tiers;
    pp_tier_summary "physical" res.Galley.Driver.physical_tiers;
    if res.Galley.Driver.nnz_guard_retries > 0 then
      Format.printf "nnz guardrail: %d corrective re-optimization(s)@."
        res.Galley.Driver.nnz_guard_retries
  end;
  if res.Galley.Driver.timed_out then
    Format.printf "TIMED OUT (incomplete outputs: %s)@."
      (match res.Galley.Driver.incomplete_outputs with
      | [] -> "none"
      | inc -> String.concat ", " inc)

(* Fixpoint (iterate) execution summary: one line per loop, plus the
   per-iteration trajectory under --timings. *)
let print_fixpoint_reports ~timings (reports : Galley_fixpoint.Fixpoint.fix_report list) =
  let open Galley_fixpoint.Fixpoint in
  List.iter
    (fun fr ->
      Format.printf
        "fixpoint %s: %s after %d iteration(s), %d plan switch(es)%s@."
        fr.fr_name
        (if fr.fr_converged then "converged" else "stopped")
        fr.fr_iterations fr.fr_replans
        (match fr.fr_switch_iters with
        | [] -> ""
        | l ->
            " at ["
            ^ String.concat "," (List.map string_of_int l)
            ^ "]");
      if timings then
        List.iteri
          (fun k it ->
            Format.printf "  iter %d: %.4fs compiles=%d cse_hits=%d%s%s%s@."
              (k + 1) it.it_seconds it.it_compile_count it.it_cse_hits
              (match it.it_delta with
              | Some d -> Printf.sprintf " delta=%g" d
              | None -> "")
              (match it.it_nnz with
              | [] -> ""
              | l ->
                  " nnz="
                  ^ String.concat ","
                      (List.map (fun (n, z) -> Printf.sprintf "%s:%d" n z) l))
              (match (it.it_replanned, it.it_switch) with
              | true, Some s -> Printf.sprintf " [replanned: %s]" s
              | true, None -> " [replanned]"
              | false, _ -> ""))
          fr.fr_iters)
    reports

(* Exit codes: 0 ok, 1 classified Galley failure, 2 parse error. *)
let report_error (e : Galley.Errors.t) : int =
  Format.eprintf "galley: %s@." (Galley.Errors.to_string e);
  match e with Galley.Errors.Parse_error _ -> 2 | _ -> 1

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Flush observability sinks after a run (success or failure): the trace
   file should cover whatever phases did execute. *)
let finish_obs ~trace ~metrics =
  (match trace with
  | Some path ->
      let n = Galley_obs.Trace.write_file path in
      Format.printf "trace: %d events written to %s@." n path
  | None -> ());
  if metrics then Format.printf "%s" (Galley_obs.Metrics.dump ())

let run_cmd program_file inputs randoms outputs show_plans timings greedy
    uniform no_jit no_cse timeout opt_timeout faults_spec no_validate
    no_degrade nnz_guard kernel_backend domains trace metrics =
  let src = read_file program_file in
  if trace <> None then Galley_obs.Trace.enable ();
  if metrics then Galley_obs.Metrics.set_detailed true;
  let faults =
    match Galley.Faults.of_spec faults_spec with
    | Ok f -> f
    | Error msg ->
        Format.eprintf "galley: bad --faults spec: %s@." msg;
        exit 2
  in
  let config =
    {
      (if greedy then Galley.Driver.greedy_config
       else Galley.Driver.default_config)
      with
      estimator =
        (if uniform then Galley_stats.Ctx.Uniform_kind
         else Galley_stats.Ctx.Chain_kind);
      jit = not no_jit;
      cse = not no_cse;
      timeout;
      optimizer_timeout = opt_timeout;
      degrade = not no_degrade;
      validate = not no_validate;
      faults;
      nnz_guard;
      kernel_backend;
      domains;
    }
  in
  match Galley_fixpoint.Fixpoint.parse_checked src with
  | Error e -> report_error e
  | Ok xprogram -> (
      let xprogram =
        match outputs with
        | [] -> xprogram
        | outs -> { xprogram with Galley_plan.Ir.xoutputs = outs }
      in
      let bound =
        List.map parse_input_spec inputs @ List.map parse_random_spec randoms
      in
      match
        Galley_fixpoint.Fixpoint.run_checked ~config ~inputs:bound xprogram
      with
      | Ok (res, reports) ->
          print_result ~show_plans ~timings res;
          print_fixpoint_reports ~timings reports;
          finish_obs ~trace ~metrics;
          0
      | Error e ->
          finish_obs ~trace ~metrics;
          report_error e)

(* explain: run the program with the estimator audit on and print what the
   optimizer decided (plans, loop orders, formats) next to how well its
   cardinality predictions matched reality. *)
let print_explain (config : Galley.Driver.config) (res : Galley.Driver.result) =
  let open Galley.Driver in
  Format.printf "== logical plan ==@.";
  List.iter
    (fun q -> Format.printf "%a@." Galley_plan.Logical_query.pp q)
    res.logical_plan;
  Format.printf "== physical plan (loop orders, formats, protocols) ==@.%a@."
    Galley_plan.Physical.pp_plan res.physical_plan;
  Format.printf "== estimator audit (predicted vs. actual nnz) ==@.";
  (match res.audit with
  | Some a -> Galley_obs.Audit.pp_rows Format.std_formatter a
  | None -> Format.printf "(no audit data)@.");
  Format.printf "== configuration ==@.";
  Format.printf
    "estimator=%s backend=%s domains=%d jit=%b cse=%b opt_timeout=%s@."
    (Galley_stats.Ctx.kind_to_string config.estimator)
    (Galley_engine.Exec.backend_to_string config.kernel_backend)
    config.domains config.jit config.cse
    (match config.optimizer_timeout with
    | Some s -> Printf.sprintf "%gs" s
    | None -> "none");
  pp_tier_summary "logical" res.logical_tiers;
  pp_tier_summary "physical" res.physical_tiers;
  if res.timed_out then
    Format.printf "TIMED OUT (incomplete outputs: %s)@."
      (match res.incomplete_outputs with
      | [] -> "none"
      | inc -> String.concat ", " inc)

(* The recorded search trace, in recording order: one line per ladder
   rung, indented lines for the candidates each rung scored and the
   prune tallies of the branch-and-bound searches. *)
let print_search_trace (evs : Galley_plan.Provenance.event list) =
  let open Galley_plan.Provenance in
  match evs with
  | [] ->
      Format.printf
        "== optimizer search trace: no events recorded ==@."
  | _ ->
      Format.printf "== optimizer search trace ==@.";
      List.iter
        (fun ev ->
          let cost =
            if Float.is_finite ev.pv_cost then
              Printf.sprintf " cost=%.4g" ev.pv_cost
            else ""
          in
          match ev.pv_kind with
          | "rung" ->
              Format.printf "%s %s: rung %s -> %s%s%s@." ev.pv_phase
                ev.pv_query ev.pv_tier ev.pv_label cost
                (match List.assoc_opt "nodes" ev.pv_attrs with
                | Some n when n <> "0" -> " nodes=" ^ n
                | _ -> "")
          | "candidate" ->
              Format.printf "  %s %s [%s] %s%s%s@." ev.pv_phase ev.pv_query
                ev.pv_tier ev.pv_label cost
                (if ev.pv_chosen then "  <-- chosen" else "")
          | "prune" ->
              Format.printf "  %s %s [%s] pruned %s: %s@." ev.pv_phase
                ev.pv_query ev.pv_tier
                (match List.assoc_opt "count" ev.pv_attrs with
                | Some c -> c
                | None -> "?")
                ev.pv_label
          | _ -> ())
        evs

(* Per-operator cost attribution: the optimizer's predicted loop cost
   for each chosen kernel (provenance "operator" events) joined by
   kernel name with the measured spans of the same run, and the audit's
   per-query nnz prediction (under the active estimator) joined with
   the measured output nnz.  Predicted cost is in abstract estimator
   units, so its q-error is computed after scaling by the run-wide
   us-per-cost-unit ratio. *)
let print_operator_analysis ~(estimator : string)
    (audit : Galley_obs.Audit.t option)
    (evs : Galley_plan.Provenance.event list)
    (forest : Galley_obs.Profile.node list) =
  let open Galley_plan.Provenance in
  let ops = List.filter (fun ev -> ev.pv_kind = "operator") evs in
  match ops with
  | [] ->
      Format.printf "== per-operator attribution: no operator events ==@."
  | _ ->
      let ks = Galley_obs.Profile.kernels forest in
      let find_k name =
        List.find_opt
          (fun (k : Galley_obs.Profile.kernel_row) -> k.k_kernel = name)
          ks
      in
      let audit_rows =
        match audit with Some a -> Galley_obs.Audit.rows a | None -> []
      in
      let find_audit query =
        List.find_opt
          (fun (r : Galley_obs.Audit.row) ->
            r.r_query = query && r.r_estimator = estimator)
          audit_rows
      in
      let tot_cost = ref 0.0 and tot_us = ref 0 in
      List.iter
        (fun ev ->
          match find_k ev.pv_label with
          | Some k when Float.is_finite ev.pv_cost ->
              tot_cost := !tot_cost +. ev.pv_cost;
              tot_us := !tot_us + k.k_excl_us
          | _ -> ())
        ops;
      let scale =
        if !tot_cost > 0.0 && !tot_us > 0 then
          float_of_int !tot_us /. !tot_cost
        else Float.nan
      in
      Format.printf
        "== per-operator attribution (predicted vs. measured) ==@.";
      Format.printf "%-14s %-8s %12s %10s %10s %10s %7s %7s@." "kernel"
        "tier" "pred-cost" "pred-nnz" "meas-ms" "meas-nnz" "nnz-q" "cost-q";
      List.iter
        (fun ev ->
          let fmt_f = function
            | Some f when Float.is_finite f -> Printf.sprintf "%.4g" f
            | _ -> "-"
          in
          let pred_nnz =
            Option.map
              (fun (r : Galley_obs.Audit.row) -> r.r_predicted)
              (find_audit ev.pv_query)
          in
          let tier =
            Option.value ~default:"?" (List.assoc_opt "tier" ev.pv_attrs)
          in
          let meas = find_k ev.pv_label in
          let meas_ms =
            match meas with
            | Some k ->
                Printf.sprintf "%.3f" (float_of_int k.k_excl_us /. 1000.0)
            | None -> "-"
          in
          let meas_nnz =
            match meas with
            | Some k when k.k_out_nnz >= 0 -> Some (float_of_int k.k_out_nnz)
            | _ -> None
          in
          let nnz_q =
            match (pred_nnz, meas_nnz) with
            | Some p, Some a ->
                Some (Galley_obs.Audit.q_error ~predicted:p ~actual:a)
            | _ -> None
          in
          let cost_q =
            match meas with
            | Some k
              when Float.is_finite ev.pv_cost
                   && Float.is_finite scale && k.k_excl_us > 0 ->
                Some
                  (Galley_obs.Audit.q_error
                     ~predicted:(ev.pv_cost *. scale)
                     ~actual:(float_of_int k.k_excl_us))
            | _ -> None
          in
          Format.printf "%-14s %-8s %12s %10s %10s %10s %7s %7s@."
            ev.pv_label tier
            (fmt_f
               (if Float.is_finite ev.pv_cost then Some ev.pv_cost else None))
            (fmt_f pred_nnz) meas_ms (fmt_f meas_nnz) (fmt_f nnz_q)
            (fmt_f cost_q))
        ops;
      if Float.is_finite scale then
        Format.printf
          "(cost q-errors use the run-wide scale of %.4g us per cost unit)@."
          scale

let explain_cmd program_file inputs randoms outputs greedy uniform no_jit
    no_cse opt_timeout kernel_backend domains analyze =
  let src = read_file program_file in
  let config =
    {
      (if greedy then Galley.Driver.greedy_config
       else Galley.Driver.default_config)
      with
      estimator =
        (if uniform then Galley_stats.Ctx.Uniform_kind
         else Galley_stats.Ctx.Chain_kind);
      jit = not no_jit;
      cse = not no_cse;
      optimizer_timeout = opt_timeout;
      kernel_backend;
      domains;
      audit = true;
    }
  in
  if analyze then begin
    Galley_obs.Trace.enable ();
    Galley_obs.Trace.reset ();
    Galley_plan.Provenance.enable ();
    Galley_plan.Provenance.reset ()
  end;
  (* Parsed through the fixpoint front end so `iterate` blocks explain
     too; a straight-line program is the one-loop degenerate case. *)
  match Galley_fixpoint.Fixpoint.parse_checked src with
  | Error e -> report_error e
  | Ok xprogram -> (
      let xprogram =
        match outputs with
        | [] -> xprogram
        | outs -> { xprogram with Galley_plan.Ir.xoutputs = outs }
      in
      let bound =
        List.map parse_input_spec inputs @ List.map parse_random_spec randoms
      in
      match
        Galley_fixpoint.Fixpoint.run_checked ~config ~inputs:bound xprogram
      with
      | Ok (res, reports) ->
          print_explain config res;
          print_fixpoint_reports ~timings:true reports;
          if analyze then begin
            let evs = Galley_plan.Provenance.drain () in
            let forest =
              Galley_obs.Profile.build (Galley_obs.Trace.drain ())
            in
            print_search_trace evs;
            print_operator_analysis
              ~estimator:(Galley_stats.Ctx.kind_to_string config.estimator)
              res.Galley.Driver.audit evs forest
          end;
          0
      | Error e -> report_error e)

(* audit-report: offline estimator calibration over a serve telemetry
   directory (rotating audit.jsonl / metrics.jsonl journals). *)
let audit_report_cmd dir json_out =
  let module AR = Galley_obs.Audit_report in
  let samples = AR.load_dir dir in
  let metrics = AR.load_metrics dir in
  if samples = [] && metrics = None then begin
    Format.eprintf
      "galley audit-report: no audit.jsonl or metrics.jsonl under %s (run \
       serve with --audit --telemetry-dir)@."
      dir;
    1
  end
  else begin
    let gs = AR.groups samples in
    if json_out then print_endline (AR.to_json ?metrics gs)
    else begin
      print_string (AR.render gs);
      match metrics with
      | None -> ()
      | Some m ->
          Format.printf "metrics journal: %d snapshot(s) spanning %.1fs@."
            m.AR.ms_snapshots
            (float_of_int (m.AR.ms_last_ts - m.AR.ms_first_ts) /. 1e6);
          List.iter
            (fun (k, v) -> Format.printf "  %-40s +%g@." k v)
            m.AR.ms_deltas
    end;
    0
  end

(* profile: run a program with span tracing forced on, rebuild the call
   tree, and print per-phase rollups plus the hot-kernel table that joins
   kernel time with loop-order/merge-strategy/format attribution
   (DESIGN.md "Profiler").  Inputs not bound on the command line are
   auto-bound with seeded random tensors so `galley profile prog.gly`
   works standalone. *)

let rec collect_input_ranks (e : Galley_plan.Ir.expr)
    (acc : (string * int) list) : (string * int) list =
  match e with
  | Galley_plan.Ir.Input (n, idxs) ->
      if List.mem_assoc n acc then acc else (n, List.length idxs) :: acc
  | Galley_plan.Ir.Alias _ | Galley_plan.Ir.Literal _ -> acc
  | Galley_plan.Ir.Map (_, args) ->
      List.fold_left (fun acc a -> collect_input_ranks a acc) acc args
  | Galley_plan.Ir.Agg (_, _, body) -> collect_input_ranks body acc

let auto_bind_missing (program : Galley_plan.Ir.program)
    (bound : (string * T.t) list) : (string * T.t) list =
  let wanted =
    List.fold_left
      (fun acc (q : Galley_plan.Ir.query) ->
        collect_input_ranks q.Galley_plan.Ir.expr acc)
      [] program.Galley_plan.Ir.queries
  in
  let query_names =
    List.map (fun (q : Galley_plan.Ir.query) -> q.Galley_plan.Ir.name)
      program.Galley_plan.Ir.queries
  in
  List.rev wanted
  |> List.filter_map (fun (name, rank) ->
         if List.mem_assoc name bound || List.mem name query_names then None
         else begin
           let dim = 300 and density = 0.02 in
           let dims = Array.make (max 1 rank) dim in
           let formats =
             Array.init (Array.length dims) (fun k ->
                 if k = 0 then T.Dense else T.Sparse_list)
           in
           let prng = Galley_tensor.Prng.create (Hashtbl.hash name land 0xffff) in
           Format.eprintf "profile: auto-bound %s = random %s (density %g)@."
             name
             (String.concat "x"
                (Array.to_list (Array.map string_of_int dims)))
             density;
           Some (name, T.random ~prng ~dims ~formats ~density ())
         end)

let ms us = float_of_int us /. 1000.0

let print_profile_report (forest : Galley_obs.Profile.node list)
    (collapsed_out : string option) =
  let open Galley_obs.Profile in
  let total = total_incl_us forest in
  Format.printf "== profile: phases (by self time) ==@.";
  Format.printf "%-32s %6s %10s %10s %6s@." "span" "count" "incl(ms)"
    "self(ms)" "self%";
  List.iter
    (fun r ->
      Format.printf "%-32s %6d %10.3f %10.3f %5.1f%%@." r.r_name r.r_count
        (ms r.r_incl_us) (ms r.r_excl_us)
        (if total = 0 then 0.0
         else 100.0 *. float_of_int r.r_excl_us /. float_of_int total))
    (rollups forest);
  (match kernels forest with
  | [] -> Format.printf "== profile: no kernel spans recorded ==@."
  | ks ->
      Format.printf "== profile: hot kernels (by self time) ==@.";
      Format.printf "%-14s %5s %10s %8s  %s@." "kernel" "runs" "self(ms)"
        "backend" "loop-order / merge strategy";
      List.iter
        (fun k ->
          Format.printf "%-14s %5d %10.3f %8s  %s [out:%s]@." k.k_kernel
            k.k_count (ms k.k_excl_us) k.k_backend
            (if k.k_merge = "?" then "loop:" ^ k.k_loop else k.k_merge)
            k.k_formats)
        ks);
  let covered = total_excl_us forest in
  Format.printf "self-time coverage: %.1f%% of %.3fms wall@."
    (if total = 0 then 0.0
     else 100.0 *. float_of_int covered /. float_of_int total)
    (ms total);
  match collapsed_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (collapsed forest);
      close_out oc;
      Format.printf "collapsed stacks written to %s (flamegraph.pl / \
                     speedscope)@."
        path

let profile_cmd program_file inputs randoms outputs greedy uniform no_jit
    no_cse kernel_backend domains collapsed_out =
  let src = read_file program_file in
  let config =
    {
      (if greedy then Galley.Driver.greedy_config
       else Galley.Driver.default_config)
      with
      estimator =
        (if uniform then Galley_stats.Ctx.Uniform_kind
         else Galley_stats.Ctx.Chain_kind);
      jit = not no_jit;
      cse = not no_cse;
      kernel_backend;
      domains;
    }
  in
  match Galley.Driver.parse_checked src with
  | Error e -> report_error e
  | Ok program -> (
      let program =
        match outputs with
        | [] -> program
        | outs -> { program with Galley_plan.Ir.outputs = outs }
      in
      let bound =
        List.map parse_input_spec inputs @ List.map parse_random_spec randoms
      in
      let bound = bound @ auto_bind_missing program bound in
      Galley_obs.Trace.enable ();
      Galley_obs.Trace.reset ();
      (* The wrapper span makes the forest single-rooted, so per-phase
         self times sum to wall time by construction. *)
      let result =
        Galley_obs.span ~cat:"cli" ~name:"total" (fun () ->
            Galley.Driver.run_checked ~config ~inputs:bound program)
      in
      let forest = Galley_obs.Profile.build (Galley_obs.Trace.drain ()) in
      print_profile_report forest collapsed_out;
      match result with Ok _ -> 0 | Error e -> report_error e)

(* serve: run the daemon on a Unix socket until SIGTERM/SIGINT (or a
   client "shutdown" request), then drain and exit clean.  Preloaded
   tensors (--input/--random) are bound into the resident session
   before the listener opens, so the first client sees a warm store. *)
let serve_cmd socket inputs randoms queue_capacity drain_timeout
    default_budget naive_below greedy_below max_entries faults_spec greedy
    uniform no_cse kernel_backend domains kernel_cache_cap cse_cache_cap
    telemetry_dir telemetry_interval flight_cap sample_percentile audit
    provenance trace metrics =
  if trace <> None then Galley_obs.Trace.enable ();
  if metrics then Galley_obs.Metrics.set_detailed true;
  let faults =
    match Galley.Faults.of_spec faults_spec with
    | Ok f -> f
    | Error msg ->
        Format.eprintf "galley: bad --faults spec: %s@." msg;
        exit 2
  in
  let driver =
    {
      (if greedy then Galley.Driver.greedy_config
       else Galley.Driver.default_config)
      with
      estimator =
        (if uniform then Galley_stats.Ctx.Uniform_kind
         else Galley_stats.Ctx.Chain_kind);
      cse = not no_cse;
      faults;
      kernel_backend;
      domains;
      kernel_cache_cap;
      cse_cache_cap;
    }
  in
  let cfg =
    {
      (Galley_serve.Server.default_config ~socket_path:socket) with
      Galley_serve.Server.queue_capacity;
      drain_timeout;
      default_budget_ms = default_budget;
      naive_below_ms = naive_below;
      greedy_below_ms = greedy_below;
      max_response_entries = max_entries;
      driver;
      flight_capacity = flight_cap;
      sampler_percentile = sample_percentile;
      telemetry_dir;
      telemetry_interval;
      audit_requests = audit;
      provenance;
      (* --trace FILE keeps every request's spans instead of only the
         tail-sampled ones; the sampler accumulates them for the dump
         below. *)
      trace_all = trace <> None;
    }
  in
  match
    let server = Galley_serve.Server.create cfg in
    let session = Galley_serve.Server.session server in
    List.iter
      (fun (name, t) -> Galley.Driver.Session.bind session name t)
      (List.map parse_input_spec inputs @ List.map parse_random_spec randoms);
    Galley_serve.Server.run server;
    (match trace with
    | Some path ->
        let n =
          Galley_obs.Sampler.write_all (Galley_serve.Server.sampler server)
            path
        in
        Format.printf "trace: %d events written to %s@." n path
    | None -> ());
    finish_obs ~trace:None ~metrics
  with
  | () -> 0
  | exception Unix.Unix_error (e, fn, arg) ->
      Format.eprintf "galley serve: %s(%s): %s@." fn arg (Unix.error_message e);
      1
  | exception (Invalid_argument msg | Failure msg) ->
      Format.eprintf "galley serve: %s@." msg;
      1

(* client: one request against a running daemon; prints the raw JSON
   response line and exits 0 iff the server answered ok:true. *)
let client_cmd socket command arg1 src program_file budget values max_entries
    binds bind_randoms retries backoff req_id prometheus last =
  let id = req_id in
  let line =
    match command with
    | "health" -> Ok (Galley_serve.Protocol.encode_health ?id ())
    | "metrics" -> Ok (Galley_serve.Protocol.encode_metrics ?id ~prometheus ())
    | "debug" -> Ok (Galley_serve.Protocol.encode_debug ?id ?last ())
    | "explain" -> (
        match arg1 with
        | Some digest ->
            Ok (Galley_serve.Protocol.encode_explain ?id ~digest ())
        | None ->
            Error
              "explain needs a plan digest argument (see the plan column of \
               `galley debug`)")
    | "shutdown" -> Ok (Galley_serve.Protocol.encode_shutdown ?id ())
    | "query" -> (
        match (src, program_file) with
        | Some s, None ->
            Ok
              (Galley_serve.Protocol.encode_query ?id ?budget_ms:budget
                 ~values ?max_entries s)
        | None, Some f ->
            Ok
              (Galley_serve.Protocol.encode_query ?id ?budget_ms:budget
                 ~values ?max_entries (read_file f))
        | _ -> Error "query needs exactly one of --src or --program")
    | "bind" -> (
        match (binds, bind_randoms) with
        | [ spec ], [] -> (
            match String.index_opt spec '=' with
            | Some i ->
                let name = String.sub spec 0 i in
                let path =
                  String.sub spec (i + 1) (String.length spec - i - 1)
                in
                Ok (Galley_serve.Protocol.encode_bind_file ?id ~name path)
            | None -> Error ("bad --bind spec: " ^ spec))
        | [], [ spec ] -> (
            match String.index_opt spec '=' with
            | Some i ->
                let name = String.sub spec 0 i in
                let r = String.sub spec (i + 1) (String.length spec - i - 1) in
                Ok (Galley_serve.Protocol.encode_bind_random ?id ~name r)
            | None -> Error ("bad --bind-random spec: " ^ spec))
        | _ -> Error "bind needs exactly one of --bind or --bind-random")
    | other -> Error (Printf.sprintf "unknown command %S" other)
  in
  match line with
  | Error msg ->
      Format.eprintf "galley client: %s@." msg;
      2
  | Ok line -> (
      match Galley_serve.Client.rpc ~retries ~backoff ~socket line with
      | Error msg ->
          Format.eprintf "galley client: %s@." msg;
          1
      | Ok resp -> (
          (* --prometheus: print the exposition text itself, not the JSON
             envelope, so the output pipes straight into a scraper. *)
          let raw_metrics =
            if not prometheus then None
            else
              match Galley_obs.Json.parse resp with
              | Ok j ->
                  Option.bind
                    (Galley_obs.Json.member "metrics" j)
                    Galley_obs.Json.to_string
              | Error _ -> None
          in
          (match raw_metrics with
          | Some text -> print_string text
          | None -> print_endline resp);
          match Galley_serve.Client.decode resp with
          | Ok (true, _) -> 0
          | Ok (false, _) -> 1
          | Error msg ->
              Format.eprintf "galley client: malformed response: %s@." msg;
              1))

(* debug: dump the daemon's flight recorder as a human-readable table
   (use `client debug` for the raw JSON). *)
let debug_cmd socket last retries backoff =
  let module Json = Galley_obs.Json in
  let line = Galley_serve.Protocol.encode_debug ?last () in
  match Galley_serve.Client.rpc ~retries ~backoff ~socket line with
  | Error msg ->
      Format.eprintf "galley debug: %s@." msg;
      1
  | Ok resp -> (
      match Json.parse resp with
      | Error msg ->
          Format.eprintf "galley debug: malformed response: %s@." msg;
          1
      | Ok j -> (
          match Option.bind (Json.member "records" j) Json.to_list with
          | None ->
              (* server answered ok:false (or an old server): show it raw *)
              print_endline resp;
              1
          | Some records ->
              let num k r =
                match Option.bind (Json.member k r) Json.to_float with
                | Some f -> int_of_float f
                | None -> 0
              in
              let str k r =
                match Option.bind (Json.member k r) Json.to_string with
                | Some s -> s
                | None -> ""
              in
              let total =
                match Option.bind (Json.member "total" j) Json.to_float with
                | Some f -> int_of_float f
                | None -> List.length records
              in
              Format.printf "flight recorder: %d total requests, %d retained@."
                total (List.length records);
              Format.printf "%-5s %-10s %-6s %-22s %-12s %9s %8s %5s %5s %s@."
                "seq" "id" "op" "outcome" "qos->rung" "total_ms" "queue_ms"
                "iters" "repl" "trace";
              List.iter
                (fun r ->
                  let qos = str "qos" r and rung = str "rung" r in
                  Format.printf
                    "%-5d %-10s %-6s %-22s %-12s %9.2f %8.2f %5d %5d %s@."
                    (num "seq" r) (str "id" r) (str "op" r) (str "outcome" r)
                    (qos ^ "->" ^ if rung = "" then "-" else rung)
                    (float_of_int (num "total_us" r) /. 1000.0)
                    (float_of_int (num "queue_us" r) /. 1000.0)
                    (num "iterations" r) (num "replans" r)
                    (match str "trace" r with "" -> "-" | t -> t))
                records;
              0))

let demo_cmd () =
  Format.printf "Triangle counting demo: 200-vertex random graph@.";
  let g =
    Galley_workloads.Graphs.symmetrize
      (Galley_workloads.Graphs.erdos_renyi ~name:"demo" ~seed:42 ~n:200 ~m:800
         ())
  in
  let adj = Galley_workloads.Graphs.adjacency g in
  let src = "t = sum[i,j,k](E[i,j] * E[j,k] * E[i,k])" in
  Format.printf "program: %s@." src;
  match Galley.Driver.run_source_checked ~inputs:[ ("E", adj) ] src with
  | Ok res ->
      print_result ~show_plans:true ~timings:true res;
      0
  | Error e -> report_error e

open Cmdliner

let program_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"PROGRAM" ~doc:"Tensor program file (.gly)")

let inputs_arg =
  Arg.(
    value & opt_all string []
    & info [ "input"; "i" ] ~docv:"NAME=PATH" ~doc:"Bind a tensor from a COO file")

let randoms_arg =
  Arg.(
    value & opt_all string []
    & info [ "random"; "r" ] ~docv:"NAME=DIMS:DENSITY:SEED"
        ~doc:"Bind a random tensor, e.g. E=100x100:0.01:42")

let outputs_arg =
  Arg.(
    value & opt_all string []
    & info [ "output"; "o" ] ~docv:"NAME" ~doc:"Output tensors (default: all)")

let show_plans_arg =
  Arg.(value & flag & info [ "show-plans" ] ~doc:"Print logical and physical plans")

let timings_arg = Arg.(value & flag & info [ "timings" ] ~doc:"Print timing breakdown")
let greedy_arg = Arg.(value & flag & info [ "greedy" ] ~doc:"Greedy logical optimizer")

let uniform_arg =
  Arg.(value & flag & info [ "uniform" ] ~doc:"Uniform sparsity estimator (default: chain bound)")

let no_jit_arg = Arg.(value & flag & info [ "no-jit" ] ~doc:"Disable JIT physical optimization")
let no_cse_arg = Arg.(value & flag & info [ "no-cse" ] ~doc:"Disable common sub-expression elimination")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Execution timeout")

let opt_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "opt-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-query optimizer budget; past it the optimizer degrades \
           (exact, then greedy, then naive)")

let faults_arg =
  Arg.(
    value & opt string ""
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Fault injection, comma-separated: estimator-nan, estimator-inf, \
           estimator-scale=F, opt-delay=S, kernel-fail=N")

let no_validate_arg =
  Arg.(value & flag & info [ "no-validate" ] ~doc:"Skip inter-phase plan validation")

let no_degrade_arg =
  Arg.(
    value & flag
    & info [ "no-degrade" ]
        ~doc:"Treat an exhausted optimizer budget as an error instead of degrading")

let kernel_backend_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("staged", Galley_engine.Exec.Staged);
             ("interp", Galley_engine.Exec.Interp);
           ])
        Galley_engine.Exec.Staged
    & info [ "kernel-backend" ] ~docv:"BACKEND"
        ~doc:
          "Kernel compiler: $(b,staged) closure-specialized loop nests \
           (default) or the $(b,interp) constraint-tree interpreter")

let domains_arg =
  Arg.(
    value
    & opt int Galley.Driver.default_domains
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Engine parallelism: OCaml domains used for DAG-parallel query \
           execution and intra-kernel chunking (1 = serial; outputs are \
           bit-identical at every setting; default: $(b,GALLEY_DOMAINS) or \
           the machine's recommended count)")

let nnz_guard_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "nnz-guard" ] ~docv:"FACTOR"
        ~doc:
          "Flag intermediates whose materialized nnz exceeds FACTOR times \
           the estimate; re-optimize once with measured statistics")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans for every pipeline phase and kernel and write them \
           as Chrome trace_event JSON (load in Perfetto or chrome://tracing)")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the metrics registry (cache hits, estimator calls, \
           per-kernel nnz, deadline ticks, ...) after the run")

let run_term =
  Term.(
    const run_cmd $ program_arg $ inputs_arg $ randoms_arg $ outputs_arg
    $ show_plans_arg $ timings_arg $ greedy_arg $ uniform_arg $ no_jit_arg
    $ no_cse_arg $ timeout_arg $ opt_timeout_arg $ faults_arg
    $ no_validate_arg $ no_degrade_arg $ nnz_guard_arg $ kernel_backend_arg
    $ domains_arg $ trace_arg $ metrics_arg)

let run_info = Cmd.info "run" ~doc:"Optimize and execute a tensor program"

let analyze_arg =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Also record the optimizer's search trace (candidates, costs, \
           prune tallies per ladder rung) and print a per-operator table \
           joining each kernel's predicted cost and output nnz with its \
           measured runtime and nnz as q-errors")

let explain_term =
  Term.(
    const explain_cmd $ program_arg $ inputs_arg $ randoms_arg $ outputs_arg
    $ greedy_arg $ uniform_arg $ no_jit_arg $ no_cse_arg $ opt_timeout_arg
    $ kernel_backend_arg $ domains_arg $ analyze_arg)

let audit_dir_arg =
  Arg.(
    required
    & pos 0 (some dir) None
    & info [] ~docv:"DIR"
        ~doc:"Telemetry directory (the --telemetry-dir of a serve run)")

let audit_json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the report as a single JSON object")

let audit_report_term =
  Term.(const audit_report_cmd $ audit_dir_arg $ audit_json_arg)

let audit_report_info =
  Cmd.info "audit-report"
    ~doc:
      "Summarize a telemetry directory's estimator-audit journal \
       (audit.jsonl and its rotation): per-tensor geometric-mean and \
       worst-case q-errors, early-vs-late drift, and suggested \
       correction factors, plus serve counter deltas from the metrics \
       journal"

let profile_domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Engine parallelism while profiling (default 1: a serial run \
           keeps all spans in one call tree, so self times add up to \
           wall time)")

let collapsed_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "collapsed" ] ~docv:"FILE"
        ~doc:
          "Also write collapsed stacks (one \"frame;frame;frame \
           self_us\" line per distinct stack), importable by \
           flamegraph.pl and speedscope")

let profile_term =
  Term.(
    const profile_cmd $ program_arg $ inputs_arg $ randoms_arg $ outputs_arg
    $ greedy_arg $ uniform_arg $ no_jit_arg $ no_cse_arg $ kernel_backend_arg
    $ profile_domains_arg $ collapsed_arg)

let profile_info =
  Cmd.info "profile"
    ~doc:
      "Run a program with span tracing on and print per-phase \
       inclusive/self times plus a hot-kernel table attributing kernel \
       time to loop orders, merge strategies, and output formats; \
       unbound inputs are auto-bound with seeded random tensors"

let explain_info =
  Cmd.info "explain"
    ~doc:
      "Run a program (including iterate blocks, with a per-iteration \
       plan-switch summary) with the estimator audit enabled and print \
       the chosen plans, loop orders and formats, and predicted vs. \
       actual cardinalities with q-errors; with $(b,--analyze), also the \
       recorded optimizer search trace and a per-operator \
       predicted-vs-measured cost attribution table"

let demo_term = Term.(const demo_cmd $ const ())
let demo_info = Cmd.info "demo" ~doc:"Run a built-in triangle-counting demo"

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH" ~doc:"Unix domain socket path")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission queue capacity; a full queue sheds load with a \
           structured queue_full rejection")

let drain_timeout_arg =
  Arg.(
    value & opt float 10.0
    & info [ "drain-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Seconds granted to queued and in-flight requests after \
           SIGTERM/SIGINT before the remainder is shed")

let default_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "default-budget" ] ~docv:"MS"
        ~doc:
          "Deadline budget (milliseconds) applied to requests that don't \
           carry one; default: none (batch, exact optimizer)")

let qos_naive_arg =
  Arg.(
    value & opt float 100.0
    & info [ "qos-naive-ms" ] ~docv:"MS"
        ~doc:"Budgets below MS run the naive optimizer tier directly")

let qos_greedy_arg =
  Arg.(
    value & opt float 1000.0
    & info [ "qos-greedy-ms" ] ~docv:"MS"
        ~doc:"Budgets below MS (and above --qos-naive-ms) run the greedy tier")

let max_entries_serve_arg =
  Arg.(
    value & opt int 100_000
    & info [ "max-entries" ] ~docv:"N"
        ~doc:"Per-output cap on entries serialized into a response")

let serve_faults_arg =
  Arg.(
    value & opt string ""
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Fault injection, comma-separated; serve-side points: \
           serve-accept-fail=N, serve-kill=N, serve-stall=S, plus the \
           batch faults (estimator-nan, kernel-fail=N, opt-delay=S, ...)")

let kernel_cache_cap_arg =
  Arg.(
    value
    & opt int Galley_engine.Exec.default_kernel_cache_cap
    & info [ "kernel-cache-cap" ] ~docv:"N"
        ~doc:"LRU bound on the resident kernel cache (entries)")

let cse_cache_cap_arg =
  Arg.(
    value
    & opt int Galley_engine.Exec.default_cse_cache_cap
    & info [ "cse-cache-cap" ] ~docv:"N"
        ~doc:"LRU bound on the resident CSE result cache (entries)")

let telemetry_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-dir" ] ~docv:"DIR"
        ~doc:
          "Continuous telemetry directory: rotating JSONL metrics \
           snapshots and estimator-audit series, retained (tail-sampled) \
           Chrome traces, and incident/drain flight-recorder dumps")

let telemetry_interval_arg =
  Arg.(
    value & opt float 60.0
    & info [ "telemetry-interval" ] ~docv:"SECONDS"
        ~doc:"Seconds between metrics snapshots in the telemetry journal")

let flight_cap_arg =
  Arg.(
    value & opt int 256
    & info [ "flight-cap" ] ~docv:"N"
        ~doc:"Flight-recorder ring capacity (per-request records)")

let sample_percentile_arg =
  Arg.(
    value & opt float 0.90
    & info [ "sample-percentile" ] ~docv:"P"
        ~doc:
          "Tail-sampling slow trigger: keep a request's trace when its \
           latency exceeds this rolling percentile of recent requests \
           (errors, shedding, tier degradation, and replans are always \
           kept)")

let serve_audit_arg =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:
          "Run the estimator-accuracy audit on every request: per-query \
           q-errors land in flight records and (with --telemetry-dir) \
           the audit journal")

let serve_provenance_arg =
  Arg.(
    value & flag
    & info [ "provenance" ]
        ~doc:
          "Record the optimizer's search trace for every planned request \
           and retain it in a bounded store keyed by plan digest; fetch \
           with $(b,galley client explain DIGEST)")

let serve_term =
  Term.(
    const serve_cmd $ socket_arg $ inputs_arg $ randoms_arg $ queue_arg
    $ drain_timeout_arg $ default_budget_arg $ qos_naive_arg $ qos_greedy_arg
    $ max_entries_serve_arg $ serve_faults_arg $ greedy_arg $ uniform_arg
    $ no_cse_arg $ kernel_backend_arg $ domains_arg $ kernel_cache_cap_arg
    $ cse_cache_cap_arg $ telemetry_dir_arg $ telemetry_interval_arg
    $ flight_cap_arg $ sample_percentile_arg $ serve_audit_arg
    $ serve_provenance_arg $ trace_arg $ metrics_arg)

let serve_info =
  Cmd.info "serve"
    ~doc:
      "Serve queries from a long-lived daemon on a Unix domain socket: \
       named tensors, statistics, and kernel/CSE caches stay resident \
       across requests; a bounded admission queue sheds load when full; \
       per-request deadline budgets pick the optimizer tier (exact, \
       greedy, naive); SIGTERM/SIGINT drains in-flight work and exits \
       clean"

let client_command_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"COMMAND"
        ~doc:"One of: query, bind, health, metrics, debug, explain, shutdown")

let client_arg1 =
  Arg.(
    value
    & pos 1 (some string) None
    & info [] ~docv:"ARG"
        ~doc:
          "Command argument; for explain, the plan digest to look up (the \
           plan column of $(b,galley debug))")

let client_src_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "src" ] ~docv:"PROGRAM" ~doc:"Inline program source for query")

let client_program_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "program" ] ~docv:"FILE" ~doc:"Program file for query")

let client_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget" ] ~docv:"MS" ~doc:"Deadline budget in milliseconds")

let client_values_arg =
  Arg.(
    value & opt bool true
    & info [ "values" ] ~docv:"BOOL"
        ~doc:"Include output entries in the response (default true)")

let client_max_entries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-entries" ] ~docv:"N" ~doc:"Per-output entry cap")

let client_bind_arg =
  Arg.(
    value & opt_all string []
    & info [ "bind" ] ~docv:"NAME=PATH" ~doc:"Bind a tensor from a COO file")

let client_bind_random_arg =
  Arg.(
    value & opt_all string []
    & info [ "bind-random" ] ~docv:"NAME=DIMS:DENSITY:SEED"
        ~doc:"Bind a server-side random tensor, e.g. E=100x100:0.01:42")

let client_retries_arg =
  Arg.(
    value & opt int 5
    & info [ "retries" ] ~docv:"N"
        ~doc:"Connect retries with exponential backoff")

let client_backoff_arg =
  Arg.(
    value & opt float 0.05
    & info [ "backoff" ] ~docv:"SECONDS" ~doc:"Initial retry backoff")

let client_id_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "id" ] ~docv:"ID" ~doc:"Request id echoed in the response")

let client_prometheus_arg =
  Arg.(
    value & flag
    & info [ "prometheus" ]
        ~doc:
          "With the metrics command: print the registry in Prometheus \
           text exposition format instead of JSON")

let client_last_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "last" ] ~docv:"N"
        ~doc:"With the debug command: only the newest N flight records")

let client_term =
  Term.(
    const client_cmd $ socket_arg $ client_command_arg $ client_arg1
    $ client_src_arg
    $ client_program_arg $ client_budget_arg $ client_values_arg
    $ client_max_entries_arg $ client_bind_arg $ client_bind_random_arg
    $ client_retries_arg $ client_backoff_arg $ client_id_arg
    $ client_prometheus_arg $ client_last_arg)

let client_info =
  Cmd.info "client"
    ~doc:
      "Send one request to a running galley serve daemon and print the \
       JSON response; exits 0 iff the server answered ok"

let debug_term =
  Term.(
    const debug_cmd $ socket_arg $ client_last_arg $ client_retries_arg
    $ client_backoff_arg)

let debug_info =
  Cmd.info "debug"
    ~doc:
      "Dump a running daemon's flight recorder — the last N requests \
       with outcome, QoS tier and served rung, plan digest, per-phase \
       latency, fixpoint iterations/replans, and retained trace names — \
       as a table"

let main =
  Cmd.group
    (Cmd.info "galley_cli" ~version:"1.0.0"
       ~doc:"Galley: declarative sparse tensor programming")
    [
      Cmd.v run_info run_term;
      Cmd.v explain_info explain_term;
      Cmd.v audit_report_info audit_report_term;
      Cmd.v profile_info profile_term;
      Cmd.v serve_info serve_term;
      Cmd.v client_info client_term;
      Cmd.v debug_info debug_term;
      Cmd.v demo_info demo_term;
    ]

let () = exit (Cmd.eval' main)
