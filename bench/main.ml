(* Benchmark harness: regenerates every evaluation artifact of the paper
   (Figures 6-10) as printed tables with the same series, plus the ablations
   called out in DESIGN.md and bechamel micro-benchmarks of the tensor
   substrate.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig7    # one section
     dune exec bench/main.exe -- quick   # reduced sizes

   Sizes are scaled down from the paper's server-scale datasets (see
   DESIGN.md); shapes — who wins, by roughly what factor, where crossovers
   fall — are the object of comparison, not absolute numbers. *)

module T = Galley_tensor.Tensor
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module W = Galley_workloads
module Rel = Galley_relational.Rel_engine
module D = Galley.Driver

let quick = ref false

let repeat = 1
(* The paper reports the minimum of three runs to exclude compilation
   overhead; our compilation is separately accounted (Fig. 9) and negligible,
   so one run per measurement keeps the harness fast. *)

let time_min (f : unit -> 'a) : 'a * float =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeat do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let header title = Printf.printf "\n=== %s ===\n%!" title

let median (xs : float list) : float =
  match List.sort compare xs with
  | [] -> nan
  | sorted -> List.nth sorted (List.length sorted / 2)

let mean (xs : float list) : float =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let fmt_time (t : float) : string =
  if Float.is_nan t then "t/o"
  else if t < 1e-3 then Printf.sprintf "%.0fus" (t *. 1e6)
  else if t < 1.0 then Printf.sprintf "%.1fms" (t *. 1e3)
  else Printf.sprintf "%.2fs" t

(* ------------------------------------------------------------------ *)
(* Figure 6: ML algorithms over joins.                                  *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  header "Figure 6: ML algorithms over joins (runtime; lower is better)";
  let scale =
    if !quick then
      { W.Tpch.n_lineitems = 800; n_suppliers = 40; n_parts = 100;
        n_orders = 200; n_customers = 60 }
    else
      { W.Tpch.n_lineitems = 40000; n_suppliers = 400; n_parts = 1000;
        n_orders = 3000; n_customers = 600 }
  in
  let star = W.Tpch.star_instance ~scale ~seed:1001 () in
  let params = W.Ml.parameter_inputs ~seed:1002 ~d:star.W.Tpch.d ~hidden:16 in
  let inputs = star.W.Tpch.inputs @ params in
  Printf.printf "star join: %d lineitems x %d features\n" star.W.Tpch.n
    star.W.Tpch.d;
  Printf.printf "%-12s %12s %14s %14s %10s\n" "algorithm" "galley"
    "hand(dense)" "hand(sparse)" "speedup";
  let run_star alg =
    let prog = W.Ml.program_of alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
    let _, galley_t = time_min (fun () -> D.run ~inputs prog) in
    let plan, out = W.Ml.baseline_plan alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
    let baseline ~dense =
      let config =
        { D.default_config with
          physical = W.Ml.baseline_physical_config ~pts:1 ~dense }
      in
      snd
        (time_min (fun () ->
             D.run_logical_plan ~config ~inputs ~outputs:[ out ] plan))
    in
    let dense_t = baseline ~dense:true in
    let sparse_t = baseline ~dense:false in
    Printf.printf "%-12s %12s %14s %14s %9.1fx\n%!" (W.Ml.algorithm_name alg)
      (fmt_time galley_t) (fmt_time dense_t) (fmt_time sparse_t)
      (Float.min dense_t sparse_t /. galley_t)
  in
  List.iter run_star [ W.Ml.Linreg; W.Ml.Logreg; W.Ml.Nn ];
  (* Covariance uses X twice; all systems slow down quadratically in row
     density, so it runs at a reduced scale. *)
  let cov_scale =
    if !quick then
      { W.Tpch.n_lineitems = 400; n_suppliers = 30; n_parts = 60;
        n_orders = 100; n_customers = 40 }
    else
      { W.Tpch.n_lineitems = 6000; n_suppliers = 150; n_parts = 400;
        n_orders = 900; n_customers = 250 }
  in
  let cov_star = W.Tpch.star_instance ~scale:cov_scale ~seed:1001 () in
  let cov_params = W.Ml.parameter_inputs ~seed:1002 ~d:cov_star.W.Tpch.d ~hidden:16 in
  let cov_inputs = cov_star.W.Tpch.inputs @ cov_params in
  Printf.printf "(covariance at reduced scale: %d lineitems)\n" cov_star.W.Tpch.n;
  (let alg = W.Ml.Covariance in
   let prog = W.Ml.program_of alg ~x:cov_star.W.Tpch.x_def ~pts:[ "i" ] in
   let _, galley_t = time_min (fun () -> D.run ~inputs:cov_inputs prog) in
   let plan, out = W.Ml.baseline_plan alg ~x:cov_star.W.Tpch.x_def ~pts:[ "i" ] in
   let baseline ~dense =
     let config =
       { D.default_config with
         physical = W.Ml.baseline_physical_config ~pts:1 ~dense }
     in
     snd
       (time_min (fun () ->
            D.run_logical_plan ~config ~inputs:cov_inputs ~outputs:[ out ] plan))
   in
   let dense_t = baseline ~dense:true in
   let sparse_t = baseline ~dense:false in
   Printf.printf "%-12s %12s %14s %14s %9.1fx\n%!" (W.Ml.algorithm_name alg)
     (fmt_time galley_t) (fmt_time dense_t) (fmt_time sparse_t)
     (Float.min dense_t sparse_t /. galley_t));
  (* Self join: the dense baseline is omitted, as in the paper (a dense
     X[i1,i2,j] runs out of memory). *)
  let sj_scale =
    if !quick then
      { W.Tpch.n_lineitems = 300; n_suppliers = 20; n_parts = 60;
        n_orders = 1; n_customers = 1 }
    else
      { W.Tpch.n_lineitems = 1500; n_suppliers = 80; n_parts = 300;
        n_orders = 1; n_customers = 1 }
  in
  let sj = W.Tpch.self_join_instance ~scale:sj_scale ~seed:1003 () in
  let params = W.Ml.parameter_inputs ~seed:1004 ~d:sj.W.Tpch.sj_d ~hidden:16 in
  let inputs = sj.W.Tpch.sj_inputs @ params in
  Printf.printf
    "\nself join: %d lineitems x %d features (dense omitted: OOM in paper)\n"
    sj.W.Tpch.sj_n sj.W.Tpch.sj_d;
  Printf.printf "%-12s %12s %14s %10s\n" "algorithm" "galley" "hand(sparse)"
    "speedup";
  List.iter
    (fun alg ->
      let prog = W.Ml.program_of alg ~x:sj.W.Tpch.sj_x_def ~pts:[ "i1"; "i2" ] in
      let _, galley_t = time_min (fun () -> D.run ~inputs prog) in
      let plan, out =
        W.Ml.baseline_plan alg ~x:sj.W.Tpch.sj_x_def ~pts:[ "i1"; "i2" ]
      in
      let config =
        { D.default_config with
          physical = W.Ml.baseline_physical_config ~pts:2 ~dense:false }
      in
      let _, sparse_t =
        time_min (fun () ->
            D.run_logical_plan ~config ~inputs ~outputs:[ out ] plan)
      in
      Printf.printf "%-12s %12s %14s %9.1fx\n%!" (W.Ml.algorithm_name alg)
        (fmt_time galley_t) (fmt_time sparse_t) (sparse_t /. galley_t))
    [ W.Ml.Linreg; W.Ml.Logreg ]

(* ------------------------------------------------------------------ *)
(* Figures 7-9: subgraph counting.                                      *)
(* ------------------------------------------------------------------ *)

type sg_measurement = {
  sg_exec : float; (* nan = timeout *)
  sg_opt : float;
  sg_compile : float;
  sg_compile_warm : float;
}

let sg_timeout = 6.0

(* Galley on one query: execution vs optimization vs compilation, with a
   warm second run sharing the kernel cache (Finch caches kernels, so warm
   compilation cost is what repeat users see: Fig. 9's discussion). *)
let measure_galley config (g : W.Graphs.t) (p : W.Subgraph.pattern) :
    sg_measurement =
  let prog = W.Subgraph.count_program p in
  let inputs = W.Subgraph.bindings g p in
  let config = { config with D.timeout = Some sg_timeout } in
  let res = D.run ~config ~inputs prog in
  if res.D.timed_out then
    { sg_exec = nan; sg_opt = nan; sg_compile = nan; sg_compile_warm = nan }
  else begin
    let t = res.D.timings in
    let session = D.Session.create ~config () in
    List.iter (fun (n, tens) -> D.Session.bind session n tens) inputs;
    let _ =
      D.Session.run_logical_plan session ~outputs:[ "count" ] res.D.logical_plan
    in
    let r2 =
      D.Session.run_logical_plan session ~outputs:[ "count" ] res.D.logical_plan
    in
    {
      sg_exec = t.D.execute_seconds;
      sg_opt = t.D.logical_seconds +. t.D.physical_seconds;
      sg_compile = t.D.compile_seconds;
      sg_compile_warm = r2.D.timings.D.compile_seconds;
    }
  end

(* The relational baseline planning the whole conjunctive query itself. *)
let measure_duckdb (g : W.Graphs.t) (p : W.Subgraph.pattern) : sg_measurement =
  let adj = W.Graphs.adjacency g in
  let db = Rel.create_db () in
  Rel.register_tensor db "M" adj;
  List.iter
    (fun l ->
      if l < g.W.Graphs.n_labels then
        Rel.register_tensor db
          (Printf.sprintf "L%d" l)
          (W.Graphs.label_vector g l))
    (List.sort_uniq compare (List.map snd p.W.Subgraph.plabels));
  let atoms =
    List.map
      (fun (u, v) ->
        { Rel.rel = "M"; vars = [ W.Subgraph.var u; W.Subgraph.var v ] })
      p.W.Subgraph.pedges
    @ List.map
        (fun (v, l) ->
          { Rel.rel = Printf.sprintf "L%d" l; vars = [ W.Subgraph.var v ] })
        p.W.Subgraph.plabels
  in
  try
    let deadline = Unix.gettimeofday () +. sg_timeout in
    let r = Rel.sum_product ~deadline db ~atoms ~out_vars:[] () in
    {
      sg_exec = r.Rel.exec_seconds;
      sg_opt = r.Rel.plan_seconds;
      sg_compile = 0.0;
      sg_compile_warm = 0.0;
    }
  with Rel.Timeout ->
    { sg_exec = nan; sg_opt = nan; sg_compile = 0.0; sg_compile_warm = 0.0 }

(* Galley's logical optimizer with the relational engine as executor. *)
let measure_galley_duckdb (g : W.Graphs.t) (p : W.Subgraph.pattern) :
    sg_measurement =
  let prog = W.Subgraph.count_program p in
  let inputs = W.Subgraph.bindings g p in
  let schema = Galley_plan.Schema.create () in
  List.iter (fun (n, t) -> Galley_plan.Schema.declare_tensor schema n t) inputs;
  let ctx = Galley_stats.Ctx.create schema in
  List.iter (fun (n, t) -> ctx.Galley_stats.Ctx.register_input n t) inputs;
  let t0 = Unix.gettimeofday () in
  let plan =
    Galley_logical.Optimizer.optimize_program
      Galley_logical.Optimizer.default_config ctx prog
  in
  let t1 = Unix.gettimeofday () in
  let db = Rel.create_db () in
  List.iter (fun (n, t) -> Rel.register_tensor db n t) inputs;
  try
    let deadline = Unix.gettimeofday () +. sg_timeout in
    let results =
      Rel.run_logical_plan ~deadline db ~dim_of:(fun _ -> g.W.Graphs.n) plan
    in
    let exec =
      List.fold_left
        (fun acc r -> acc +. r.Rel.plan_seconds +. r.Rel.exec_seconds)
        0.0 results
    in
    { sg_exec = exec; sg_opt = t1 -. t0; sg_compile = 0.0; sg_compile_warm = 0.0 }
  with Rel.Timeout ->
    { sg_exec = nan; sg_opt = t1 -. t0; sg_compile = 0.0; sg_compile_warm = 0.0 }

let sg_methods :
    (string * (W.Graphs.t -> W.Subgraph.pattern -> sg_measurement)) list =
  [
    ("duckdb", measure_duckdb);
    ("galley+duckdb", measure_galley_duckdb);
    ("galley(greedy)", measure_galley D.greedy_config);
    ("galley(exact)", measure_galley D.default_config);
  ]

let subgraph_measurements = ref None

let get_subgraph_measurements () =
  match !subgraph_measurements with
  | Some m -> m
  | None ->
      let scale = if !quick then 0.08 else 0.1 in
      let graphs = W.Graphs.benchmark_suite ~scale in
      let m =
        List.map
          (fun g ->
            Printf.eprintf "[subgraph] measuring %s...\n%!" g.W.Graphs.name;
            let queries = W.Subgraph.suite_for g in
            ( g.W.Graphs.name,
              List.map
                (fun (mname, f) -> (mname, List.map (fun p -> f g p) queries))
                sg_methods ))
          graphs
      in
      subgraph_measurements := Some m;
      m

let fig7 () =
  header "Figure 7: subgraph counting execution time (median; t/o count)";
  Printf.printf "%-14s %18s %18s %18s %18s\n" "workload" "duckdb"
    "galley+duckdb" "galley(greedy)" "galley(exact)";
  List.iter
    (fun (gname, per_method) ->
      Printf.printf "%-14s" gname;
      List.iter
        (fun (_, ms) ->
          let execs = List.map (fun m -> m.sg_exec) ms in
          let finished = List.filter (fun t -> not (Float.is_nan t)) execs in
          let timeouts = List.length execs - List.length finished in
          let cell =
            Printf.sprintf "%s (%d t/o)" (fmt_time (median finished)) timeouts
          in
          Printf.printf " %18s" cell)
        per_method;
      Printf.printf "\n%!")
    (get_subgraph_measurements ())

let fig8 () =
  header "Figure 8: subgraph counting optimization time (mean)";
  Printf.printf "%-14s %18s %18s %18s %18s\n" "workload" "duckdb"
    "galley+duckdb" "galley(greedy)" "galley(exact)";
  List.iter
    (fun (gname, per_method) ->
      Printf.printf "%-14s" gname;
      List.iter
        (fun (_, ms) ->
          let opts =
            List.filter
              (fun t -> not (Float.is_nan t))
              (List.map (fun m -> m.sg_opt) ms)
          in
          Printf.printf " %18s" (fmt_time (mean opts)))
        per_method;
      Printf.printf "\n%!")
    (get_subgraph_measurements ())

let fig9 () =
  header "Figure 9: subgraph counting compilation time (mean; kernel cache)";
  Printf.printf "%-14s %16s %16s\n" "workload" "galley cold" "galley warm";
  List.iter
    (fun (gname, per_method) ->
      let ms = List.assoc "galley(exact)" per_method in
      let pick f =
        List.filter (fun t -> not (Float.is_nan t)) (List.map f ms)
      in
      Printf.printf "%-14s %16s %16s\n%!" gname
        (fmt_time (mean (pick (fun m -> m.sg_compile))))
        (fmt_time (mean (pick (fun m -> m.sg_compile_warm)))))
    (get_subgraph_measurements ())

(* ------------------------------------------------------------------ *)
(* Figure 10: BFS.                                                      *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  header "Figure 10: BFS total runtime (incl. Galley's optimization time)";
  let scale = if !quick then 0.1 else 0.5 in
  let graphs = W.Graphs.bfs_suite ~scale in
  Printf.printf "%-12s %10s %10s %10s %8s\n" "graph" "galley" "sparse" "dense"
    "best";
  List.iter
    (fun g ->
      let adjacency = W.Graphs.adjacency g in
      let run v = (W.Bfs.run v ~adjacency ~source:0).W.Bfs.seconds in
      let galley_t = run W.Bfs.Adaptive in
      let sparse_t = run W.Bfs.All_sparse in
      let dense_t = run W.Bfs.All_dense in
      let best =
        if galley_t <= sparse_t && galley_t <= dense_t then "galley"
        else if sparse_t <= dense_t then "sparse"
        else "dense"
      in
      Printf.printf "%-12s %10s %10s %10s %8s\n%!" g.W.Graphs.name
        (fmt_time galley_t) (fmt_time sparse_t) (fmt_time dense_t) best)
    graphs

(* ------------------------------------------------------------------ *)
(* Ablations.                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  header "Ablation: sparsity estimator (uniform vs chain bound)";
  let scale = if !quick then 0.1 else 0.15 in
  let g = List.hd (W.Graphs.benchmark_suite ~scale) in
  Printf.printf "graph %s: %d vertices %d edges\n" g.W.Graphs.name g.W.Graphs.n
    (W.Graphs.edge_count g);
  Printf.printf "%-12s %14s %14s\n" "pattern" "uniform" "chain";
  List.iter
    (fun p ->
      let prog = W.Subgraph.count_program p in
      let inputs = W.Subgraph.bindings g p in
      let run kind =
        let config =
          { D.default_config with estimator = kind; timeout = Some sg_timeout }
        in
        let r = D.run ~config ~inputs prog in
        if r.D.timed_out then nan else r.D.timings.D.total_seconds
      in
      Printf.printf "%-12s %14s %14s\n%!" p.W.Subgraph.pname
        (fmt_time (run Galley_stats.Ctx.Uniform_kind))
        (fmt_time (run Galley_stats.Ctx.Chain_kind)))
    (W.Subgraph.suite_for g);

  header "Ablation: JIT physical optimization";
  let scale =
    if !quick then
      { W.Tpch.n_lineitems = 600; n_suppliers = 30; n_parts = 80;
        n_orders = 150; n_customers = 50 }
    else
      { W.Tpch.n_lineitems = 4000; n_suppliers = 100; n_parts = 250;
        n_orders = 600; n_customers = 150 }
  in
  let star = W.Tpch.star_instance ~scale ~seed:2001 () in
  let params = W.Ml.parameter_inputs ~seed:2002 ~d:star.W.Tpch.d ~hidden:16 in
  let inputs = star.W.Tpch.inputs @ params in
  Printf.printf "%-12s %12s %12s\n" "algorithm" "jit" "no-jit";
  List.iter
    (fun alg ->
      let prog = W.Ml.program_of alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
      let t ~jit =
        snd
          (time_min (fun () ->
               D.run ~config:{ D.default_config with jit } ~inputs prog))
      in
      Printf.printf "%-12s %12s %12s\n%!" (W.Ml.algorithm_name alg)
        (fmt_time (t ~jit:true))
        (fmt_time (t ~jit:false)))
    W.Ml.all_algorithms;

  header "Ablation: common sub-expression elimination";
  let prog = W.Ml.program_of W.Ml.Covariance ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
  let run ~cse =
    let r = D.run ~config:{ D.default_config with cse } ~inputs prog in
    ( r.D.timings.D.total_seconds,
      r.D.timings.D.cse_hits,
      r.D.timings.D.kernel_count )
  in
  let t_on, hits, kernels_on = run ~cse:true in
  let t_off, _, kernels_off = run ~cse:false in
  Printf.printf "covariance with CSE:    %s (%d kernel runs, %d cache hits)\n"
    (fmt_time t_on) kernels_on hits;
  Printf.printf "covariance without CSE: %s (%d kernel runs)\n%!"
    (fmt_time t_off) kernels_off;

  header "Ablation: greedy vs exact elimination order";
  let g =
    List.nth (W.Graphs.benchmark_suite ~scale:(if !quick then 0.1 else 0.15)) 1
  in
  Printf.printf "graph %s\n" g.W.Graphs.name;
  Printf.printf "%-12s %14s %14s\n" "pattern" "greedy" "exact";
  List.iter
    (fun p ->
      let prog = W.Subgraph.count_program p in
      let inputs = W.Subgraph.bindings g p in
      let run config =
        let r =
          D.run ~config:{ config with D.timeout = Some sg_timeout } ~inputs prog
        in
        if r.D.timed_out then nan else r.D.timings.D.total_seconds
      in
      Printf.printf "%-12s %14s %14s\n%!" p.W.Subgraph.pname
        (fmt_time (run D.greedy_config))
        (fmt_time (run D.default_config)))
    (W.Subgraph.suite_for g)

(* ------------------------------------------------------------------ *)
(* Degradation ladder: per-tier plan counts and cost of degrading.      *)
(* ------------------------------------------------------------------ *)

let tiers () =
  header "Degradation ladder: plans served per optimizer tier";
  (* Naive-tier plans are deliberately unoptimized (that is the point of
     the comparison), so the instance stays small enough for them. *)
  let scale =
    if !quick then
      { W.Tpch.n_lineitems = 60; n_suppliers = 8; n_parts = 12;
        n_orders = 15; n_customers = 10 }
    else
      { W.Tpch.n_lineitems = 150; n_suppliers = 12; n_parts = 25;
        n_orders = 40; n_customers = 20 }
  in
  let star =
    W.Tpch.star_instance ~scale ~layout:W.Tpch.tiny_layout ~seed:2101 ()
  in
  let params = W.Ml.parameter_inputs ~seed:2102 ~d:star.W.Tpch.d ~hidden:16 in
  let inputs = star.W.Tpch.inputs @ params in
  let fmt_counts (tiers : (string * Galley_plan.Tier.t) list) =
    let e, g, n = Galley_plan.Tier.counts tiers in
    Printf.sprintf "e=%d g=%d n=%d" e g n
  in
  Printf.printf "%-12s %-22s %-22s %10s %10s\n" "algorithm"
    "default (log/phys)" "0s deadline (log/phys)" "default" "degraded";
  List.iter
    (fun alg ->
      let prog = W.Ml.program_of alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
      let run config = time_min (fun () -> D.run ~config ~inputs prog) in
      let r_def, t_def = run D.default_config in
      let r_deg, t_deg =
        run { D.default_config with optimizer_timeout = Some 0.0 }
      in
      Printf.printf "%-12s %-22s %-22s %10s %10s\n%!"
        (W.Ml.algorithm_name alg)
        (fmt_counts r_def.D.logical_tiers ^ " / "
        ^ fmt_counts r_def.D.physical_tiers)
        (fmt_counts r_deg.D.logical_tiers ^ " / "
        ^ fmt_counts r_deg.D.physical_tiers)
        (fmt_time t_def) (fmt_time t_deg))
    W.Ml.all_algorithms

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the tensor substrate.                   *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro-benchmarks: per-format iteration / lookup / construction";
  let open Bechamel in
  let prng = Galley_tensor.Prng.create 3001 in
  let n = if !quick then 20_000 else 100_000 in
  let mk fmt = T.random ~prng ~dims:[| n |] ~formats:[| fmt |] ~density:0.02 () in
  let tensors =
    List.map
      (fun f -> (T.format_to_string f, mk f))
      [ T.Dense; T.Sparse_list; T.Bytemap; T.Hash ]
  in
  let iteration_tests =
    List.map
      (fun (name, t) ->
        Test.make ~name
          (Staged.stage (fun () ->
               let acc = ref 0.0 in
               T.iter_nonfill t (fun _ v -> acc := !acc +. v);
               !acc)))
      tensors
  in
  let lookup_tests =
    List.map
      (fun (name, t) ->
        let coords = Array.init 512 (fun k -> [| k * (n / 512) |]) in
        Test.make ~name
          (Staged.stage (fun () ->
               let acc = ref 0.0 in
               Array.iter (fun c -> acc := !acc +. T.get t c) coords;
               !acc)))
      tensors
  in
  let build_tests =
    List.map
      (fun fmt ->
        let name = T.format_to_string fmt in
        Test.make ~name
          (Staged.stage (fun () ->
               let b =
                 Galley_tensor.Builder.create ~dims:[| n |] ~formats:[| fmt |]
                   ~identity:0.0 ()
               in
               for k = 0 to 999 do
                 Galley_tensor.Builder.accum b
                   [| k * (n / 1000) |]
                   1.0 ~combine:( +. )
               done;
               Galley_tensor.Builder.freeze b
                 ~finalize:(fun v _ -> v)
                 ~fill:0.0)))
      [ T.Dense; T.Sparse_list; T.Bytemap; T.Hash ]
  in
  let test =
    Test.make_grouped ~name:"tensor"
      [
        Test.make_grouped ~name:"iterate" iteration_tests;
        Test.make_grouped ~name:"lookup" lookup_tests;
        Test.make_grouped ~name:"build" build_tests;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] test in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name res acc -> (name, res) :: acc) results [] in
  List.iter
    (fun (name, res) ->
      match Analyze.OLS.estimates res with
      | Some [ est ] -> Printf.printf "%-34s %14.1f ns/run\n" name est
      | _ -> Printf.printf "%-34s (no estimate)\n" name)
    (List.sort compare rows);
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)
(* Driver.                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args =
    List.filter
      (fun a ->
        if a = "quick" || a = "--quick" then begin
          quick := true;
          false
        end
        else true)
      args
  in
  let sections =
    match args with
    | [] -> [ "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "ablations"; "micro" ]
    | some -> some
  in
  List.iter
    (fun s ->
      match s with
      | "fig6" -> fig6 ()
      | "fig7" -> fig7 ()
      | "fig8" -> fig8 ()
      | "fig9" -> fig9 ()
      | "fig10" -> fig10 ()
      | "ablations" -> ablations ()
      | "tiers" -> tiers ()
      | "micro" -> micro ()
      | other -> Printf.eprintf "unknown section %s\n" other)
    sections
