(* Benchmark harness and performance-regression gate: regenerates every
   evaluation artifact of the paper (Figures 6-10) as printed tables with
   the same series, plus the ablations called out in DESIGN.md and
   bechamel micro-benchmarks of the tensor substrate.

     dune exec bench/main.exe                      # everything
     dune exec bench/main.exe -- fig7              # one section
     dune exec bench/main.exe -- quick             # reduced sizes
     dune exec bench/main.exe -- --trials 5 fig6   # more trials per cell
     dune exec bench/main.exe -- quick --json --compare bench/baselines/quick.json

   Sizes are scaled down from the paper's server-scale datasets (see
   DESIGN.md); shapes — who wins, by roughly what factor, where crossovers
   fall — are the object of comparison, not absolute numbers.

   Regression harness (DESIGN.md "Profiler & regression harness"): every
   cell records its full trial sample list; --json emits a schema-v2
   document with environment capture and per-series robust statistics
   (median / min / MAD via Perfstats); --compare BASELINE.json classifies
   each series against a previous run's JSON (regression / improvement /
   within-noise / new-series / missing-series) and exits non-zero when
   anything regresses beyond both the MAD noise floor and the relative
   threshold.  --compare-files A B diffs two saved runs without measuring
   anything. *)

module T = Galley_tensor.Tensor
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module W = Galley_workloads
module LQ = Galley_plan.Logical_query
module Prng = Galley_tensor.Prng
module V2 = Galley_compile.Kernel_v2
module Rel = Galley_relational.Rel_engine
module D = Galley.Driver
module P = Galley_obs.Perfstats
module J = Galley_obs.Json

let quick = ref false
let json_mode = ref false

(* --trials N: samples per cell; unset, full runs take 3 and quick 1. *)
let trials_opt : int option ref = ref None
let trials () =
  match !trials_opt with Some n -> n | None -> if !quick then 1 else 3

(* --compare BASELINE.json verdict knobs (see Perfstats.compare_stats). *)
let compare_baseline : string option ref = ref None
let compare_files : (string * string) option ref = ref None
let cmp_threshold = ref 1.5
let cmp_k = ref 3.0
let cmp_rel_floor = ref 0.10
let cmp_abs_floor = ref 5e-4

(* --domains N pins the engine's domain-pool size for every section (the
   scaling section ignores it and sweeps its own counts).  Unset, configs
   keep their default: GALLEY_DOMAINS or the machine's recommendation. *)
let domains_override : int option ref = ref None

let with_domains (c : D.config) : D.config =
  match !domains_override with
  | Some d -> { c with D.domains = d }
  | None -> c

let effective_domains () =
  match !domains_override with Some d -> d | None -> D.default_domains

(* In --json mode the human-readable tables move to stderr and stdout
   carries a single JSON document of every recorded series measurement
   (timeouts become null), so CI and plotting scripts can consume runs
   without scraping the tables. *)
let p fmt = Printf.fprintf (if !json_mode then stderr else stdout) fmt

(* (section, series, label, samples); a nan sample encodes a timeout. *)
let json_rows : (string * string * string * float list) list ref = ref []

let record ~section ~series label (samples : float list) =
  json_rows := (section, series, label, samples) :: !json_rows

let record1 ~section ~series label (seconds : float) =
  record ~section ~series label [ seconds ]

(* Kernel-cache hit/miss deltas per section, snapshotted around each
   section by the driver: the cold-vs-warm compile traffic behind the
   Fig. 9 repeat-user discussion. *)
let cache_rows : (string * int * int) list ref = ref []

let cache_counter name =
  Option.value ~default:0 (Galley_obs.Metrics.counter_value name)

let esc = Galley_obs.Metrics.json_escape

let command_output (cmd : string) : string =
  try
    let ic = Unix.open_process_in cmd in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    String.trim line
  with _ -> ""

let fnum (v : float) : string =
  if Float.is_nan v then "null" else Printf.sprintf "%.6f" v

let emit_json () =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\n  \"schema\": 2,\n";
  Buffer.add_string b
    (Printf.sprintf "  \"quick\": %b,\n  \"trials\": %d,\n" !quick (trials ()));
  Buffer.add_string b
    (Printf.sprintf
       "  \"env\": {\"git_sha\": \"%s\", \"ocaml\": \"%s\", \"domains\": %d, \
        \"backend\": \"%s\", \"cpus\": %d, \"hostname\": \"%s\"},\n"
       (esc (command_output "git rev-parse HEAD 2>/dev/null"))
       (esc Sys.ocaml_version) (effective_domains ()) "staged"
       (Domain.recommended_domain_count ())
       (esc (try Unix.gethostname () with _ -> "")));
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i (section, series, label, samples) ->
      if i > 0 then Buffer.add_string b ",\n";
      let s = P.of_samples samples in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"section\": \"%s\", \"series\": \"%s\", \"label\": \"%s\", \
            \"seconds\": %s, \"trials\": [%s], \"min\": %s, \"mad\": %s, \
            \"timeouts\": %d}"
           (esc section) (esc series) (esc label) (fnum s.P.median)
           (String.concat ", " (List.map fnum samples))
           (fnum s.P.min) (fnum s.P.mad) s.P.timeouts))
    (List.rev !json_rows);
  Buffer.add_string b "\n  ],\n  \"kernel_cache\": [\n";
  List.iteri
    (fun i (section, hits, misses) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"section\": \"%s\", \"hits\": %d, \"misses\": %d}"
           (esc section) hits misses))
    (List.rev !cache_rows);
  Buffer.add_string b "\n  ]\n}\n";
  print_string (Buffer.contents b)

(* Run [f] once per trial, returning the last result and every wall-time
   sample; display sites summarize with the median, JSON keeps the list. *)
let time_trials (f : unit -> 'a) : 'a * float list =
  let result = ref None in
  let samples = ref [] in
  for _ = 1 to trials () do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    samples := dt :: !samples;
    result := Some r
  done;
  (Option.get !result, List.rev !samples)

let time_once (f : unit -> 'a) : 'a * float =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let header title = p "\n=== %s ===\n%!" title
let median (xs : float list) : float = (P.of_samples xs).P.median

let mean (xs : float list) : float =
  match List.filter (fun x -> not (Float.is_nan x)) xs with
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let fmt_time (t : float) : string =
  if Float.is_nan t then "t/o"
  else if t < 1e-3 then Printf.sprintf "%.0fus" (t *. 1e6)
  else if t < 1.0 then Printf.sprintf "%.1fms" (t *. 1e3)
  else Printf.sprintf "%.2fs" t

(* ------------------------------------------------------------------ *)
(* Figure 6: ML algorithms over joins.                                  *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  header "Figure 6: ML algorithms over joins (runtime; lower is better)";
  let scale =
    if !quick then
      { W.Tpch.n_lineitems = 800; n_suppliers = 40; n_parts = 100;
        n_orders = 200; n_customers = 60 }
    else
      { W.Tpch.n_lineitems = 40000; n_suppliers = 400; n_parts = 1000;
        n_orders = 3000; n_customers = 600 }
  in
  let star = W.Tpch.star_instance ~scale ~seed:1001 () in
  let params = W.Ml.parameter_inputs ~seed:1002 ~d:star.W.Tpch.d ~hidden:16 in
  let inputs = star.W.Tpch.inputs @ params in
  p "star join: %d lineitems x %d features\n" star.W.Tpch.n
    star.W.Tpch.d;
  p "%-12s %12s %14s %14s %10s\n" "algorithm" "galley"
    "hand(dense)" "hand(sparse)" "speedup";
  let run_star alg =
    let prog = W.Ml.program_of alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
    let _, galley_s =
      time_trials (fun () ->
          D.run ~config:(with_domains D.default_config) ~inputs prog)
    in
    let plan, out = W.Ml.baseline_plan alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
    let baseline ~dense =
      let config =
        { D.default_config with
          physical = W.Ml.baseline_physical_config ~pts:1 ~dense }
      in
      snd
        (time_trials (fun () ->
             D.run_logical_plan ~config ~inputs ~outputs:[ out ] plan))
    in
    let dense_s = baseline ~dense:true in
    let sparse_s = baseline ~dense:false in
    let name = W.Ml.algorithm_name alg in
    record ~section:"fig6" ~series:"galley" name galley_s;
    record ~section:"fig6" ~series:"hand-dense" name dense_s;
    record ~section:"fig6" ~series:"hand-sparse" name sparse_s;
    let galley_t = median galley_s
    and dense_t = median dense_s
    and sparse_t = median sparse_s in
    p "%-12s %12s %14s %14s %9.1fx\n%!" name
      (fmt_time galley_t) (fmt_time dense_t) (fmt_time sparse_t)
      (Float.min dense_t sparse_t /. galley_t)
  in
  List.iter run_star [ W.Ml.Linreg; W.Ml.Logreg; W.Ml.Nn ];
  (* Covariance uses X twice; all systems slow down quadratically in row
     density, so it runs at a reduced scale. *)
  let cov_scale =
    if !quick then
      { W.Tpch.n_lineitems = 400; n_suppliers = 30; n_parts = 60;
        n_orders = 100; n_customers = 40 }
    else
      { W.Tpch.n_lineitems = 6000; n_suppliers = 150; n_parts = 400;
        n_orders = 900; n_customers = 250 }
  in
  let cov_star = W.Tpch.star_instance ~scale:cov_scale ~seed:1001 () in
  let cov_params = W.Ml.parameter_inputs ~seed:1002 ~d:cov_star.W.Tpch.d ~hidden:16 in
  let cov_inputs = cov_star.W.Tpch.inputs @ cov_params in
  p "(covariance at reduced scale: %d lineitems)\n" cov_star.W.Tpch.n;
  (let alg = W.Ml.Covariance in
   let prog = W.Ml.program_of alg ~x:cov_star.W.Tpch.x_def ~pts:[ "i" ] in
   let _, galley_s =
     time_trials (fun () ->
         D.run ~config:(with_domains D.default_config) ~inputs:cov_inputs prog)
   in
   let plan, out = W.Ml.baseline_plan alg ~x:cov_star.W.Tpch.x_def ~pts:[ "i" ] in
   let baseline ~dense =
     let config =
       { D.default_config with
         physical = W.Ml.baseline_physical_config ~pts:1 ~dense }
     in
     snd
       (time_trials (fun () ->
            D.run_logical_plan ~config ~inputs:cov_inputs ~outputs:[ out ] plan))
   in
   let dense_s = baseline ~dense:true in
   let sparse_s = baseline ~dense:false in
   let name = W.Ml.algorithm_name alg in
   record ~section:"fig6" ~series:"galley" name galley_s;
   record ~section:"fig6" ~series:"hand-dense" name dense_s;
   record ~section:"fig6" ~series:"hand-sparse" name sparse_s;
   let galley_t = median galley_s
   and dense_t = median dense_s
   and sparse_t = median sparse_s in
   p "%-12s %12s %14s %14s %9.1fx\n%!" name
     (fmt_time galley_t) (fmt_time dense_t) (fmt_time sparse_t)
     (Float.min dense_t sparse_t /. galley_t));
  (* Self join: the dense baseline is omitted, as in the paper (a dense
     X[i1,i2,j] runs out of memory). *)
  let sj_scale =
    if !quick then
      { W.Tpch.n_lineitems = 300; n_suppliers = 20; n_parts = 60;
        n_orders = 1; n_customers = 1 }
    else
      { W.Tpch.n_lineitems = 1500; n_suppliers = 80; n_parts = 300;
        n_orders = 1; n_customers = 1 }
  in
  let sj = W.Tpch.self_join_instance ~scale:sj_scale ~seed:1003 () in
  let params = W.Ml.parameter_inputs ~seed:1004 ~d:sj.W.Tpch.sj_d ~hidden:16 in
  let inputs = sj.W.Tpch.sj_inputs @ params in
  p
    "\nself join: %d lineitems x %d features (dense omitted: OOM in paper)\n"
    sj.W.Tpch.sj_n sj.W.Tpch.sj_d;
  p "%-12s %12s %14s %10s\n" "algorithm" "galley" "hand(sparse)"
    "speedup";
  List.iter
    (fun alg ->
      let prog = W.Ml.program_of alg ~x:sj.W.Tpch.sj_x_def ~pts:[ "i1"; "i2" ] in
      let _, galley_s =
        time_trials (fun () ->
            D.run ~config:(with_domains D.default_config) ~inputs prog)
      in
      let plan, out =
        W.Ml.baseline_plan alg ~x:sj.W.Tpch.sj_x_def ~pts:[ "i1"; "i2" ]
      in
      let config =
        { D.default_config with
          physical = W.Ml.baseline_physical_config ~pts:2 ~dense:false }
      in
      let _, sparse_s =
        time_trials (fun () ->
            D.run_logical_plan ~config ~inputs ~outputs:[ out ] plan)
      in
      let name = W.Ml.algorithm_name alg ^ " (self join)" in
      record ~section:"fig6" ~series:"galley" name galley_s;
      record ~section:"fig6" ~series:"hand-sparse" name sparse_s;
      let galley_t = median galley_s and sparse_t = median sparse_s in
      p "%-12s %12s %14s %9.1fx\n%!" (W.Ml.algorithm_name alg)
        (fmt_time galley_t) (fmt_time sparse_t) (sparse_t /. galley_t))
    [ W.Ml.Linreg; W.Ml.Logreg ]

(* ------------------------------------------------------------------ *)
(* Figures 7-9: subgraph counting.                                      *)
(* ------------------------------------------------------------------ *)

type sg_measurement = {
  sg_exec : float; (* nan = timeout *)
  sg_opt : float;
  sg_compile : float;
  sg_compile_warm : float;
}

let sg_timeout = 6.0

(* Galley on one query: execution vs optimization vs compilation, with a
   warm second run sharing the kernel cache (Finch caches kernels, so warm
   compilation cost is what repeat users see: Fig. 9's discussion). *)
let measure_galley config (g : W.Graphs.t) (pat : W.Subgraph.pattern) :
    sg_measurement =
  let prog = W.Subgraph.count_program pat in
  let inputs = W.Subgraph.bindings g pat in
  let config = { (with_domains config) with D.timeout = Some sg_timeout } in
  let res = D.run ~config ~inputs prog in
  if res.D.timed_out then
    { sg_exec = nan; sg_opt = nan; sg_compile = nan; sg_compile_warm = nan }
  else begin
    let t = res.D.timings in
    let session = D.Session.create ~config () in
    List.iter (fun (n, tens) -> D.Session.bind session n tens) inputs;
    let _ =
      D.Session.run_logical_plan session ~outputs:[ "count" ] res.D.logical_plan
    in
    let r2 =
      D.Session.run_logical_plan session ~outputs:[ "count" ] res.D.logical_plan
    in
    {
      sg_exec = t.D.execute_seconds;
      sg_opt = t.D.logical_seconds +. t.D.physical_seconds;
      sg_compile = t.D.compile_seconds;
      sg_compile_warm = r2.D.timings.D.compile_seconds;
    }
  end

(* The relational baseline planning the whole conjunctive query itself. *)
let measure_duckdb (g : W.Graphs.t) (pat : W.Subgraph.pattern) : sg_measurement =
  let adj = W.Graphs.adjacency g in
  let db = Rel.create_db () in
  Rel.register_tensor db "M" adj;
  List.iter
    (fun l ->
      if l < g.W.Graphs.n_labels then
        Rel.register_tensor db
          (Printf.sprintf "L%d" l)
          (W.Graphs.label_vector g l))
    (List.sort_uniq compare (List.map snd pat.W.Subgraph.plabels));
  let atoms =
    List.map
      (fun (u, v) ->
        { Rel.rel = "M"; vars = [ W.Subgraph.var u; W.Subgraph.var v ] })
      pat.W.Subgraph.pedges
    @ List.map
        (fun (v, l) ->
          { Rel.rel = Printf.sprintf "L%d" l; vars = [ W.Subgraph.var v ] })
        pat.W.Subgraph.plabels
  in
  try
    let deadline = Unix.gettimeofday () +. sg_timeout in
    let r = Rel.sum_product ~deadline db ~atoms ~out_vars:[] () in
    {
      sg_exec = r.Rel.exec_seconds;
      sg_opt = r.Rel.plan_seconds;
      sg_compile = 0.0;
      sg_compile_warm = 0.0;
    }
  with Rel.Timeout ->
    { sg_exec = nan; sg_opt = nan; sg_compile = 0.0; sg_compile_warm = 0.0 }

(* Galley's logical optimizer with the relational engine as executor. *)
let measure_galley_duckdb (g : W.Graphs.t) (pat : W.Subgraph.pattern) :
    sg_measurement =
  let prog = W.Subgraph.count_program pat in
  let inputs = W.Subgraph.bindings g pat in
  let schema = Galley_plan.Schema.create () in
  List.iter (fun (n, t) -> Galley_plan.Schema.declare_tensor schema n t) inputs;
  let ctx = Galley_stats.Ctx.create schema in
  List.iter (fun (n, t) -> ctx.Galley_stats.Ctx.register_input n t) inputs;
  let t0 = Unix.gettimeofday () in
  let plan =
    Galley_logical.Optimizer.optimize_program
      Galley_logical.Optimizer.default_config ctx prog
  in
  let t1 = Unix.gettimeofday () in
  let db = Rel.create_db () in
  List.iter (fun (n, t) -> Rel.register_tensor db n t) inputs;
  try
    let deadline = Unix.gettimeofday () +. sg_timeout in
    let results =
      Rel.run_logical_plan ~deadline db ~dim_of:(fun _ -> g.W.Graphs.n) plan
    in
    let exec =
      List.fold_left
        (fun acc r -> acc +. r.Rel.plan_seconds +. r.Rel.exec_seconds)
        0.0 results
    in
    { sg_exec = exec; sg_opt = t1 -. t0; sg_compile = 0.0; sg_compile_warm = 0.0 }
  with Rel.Timeout ->
    { sg_exec = nan; sg_opt = t1 -. t0; sg_compile = 0.0; sg_compile_warm = 0.0 }

let sg_methods :
    (string * (W.Graphs.t -> W.Subgraph.pattern -> sg_measurement)) list =
  [
    ("duckdb", measure_duckdb);
    ("galley+duckdb", measure_galley_duckdb);
    ("galley(greedy)", measure_galley D.greedy_config);
    ("galley(exact)", measure_galley D.default_config);
  ]

let subgraph_measurements = ref None

let get_subgraph_measurements () =
  match !subgraph_measurements with
  | Some m -> m
  | None ->
      let scale = if !quick then 0.08 else 0.1 in
      let graphs = W.Graphs.benchmark_suite ~scale in
      let m =
        List.map
          (fun g ->
            Galley_obs.Log.info "[subgraph] measuring %s..." g.W.Graphs.name;
            let queries = W.Subgraph.suite_for g in
            ( g.W.Graphs.name,
              List.map
                (fun (mname, f) -> (mname, List.map (fun p -> f g p) queries))
                sg_methods ))
          graphs
      in
      subgraph_measurements := Some m;
      m

let fig7 () =
  header "Figure 7: subgraph counting execution time (median; t/o count)";
  p "%-14s %18s %18s %18s %18s\n" "workload" "duckdb"
    "galley+duckdb" "galley(greedy)" "galley(exact)";
  List.iter
    (fun (gname, per_method) ->
      p "%-14s" gname;
      List.iter
        (fun (mname, ms) ->
          (* The per-query measurements of one workload's suite are the
             row's samples: the median matches the displayed cell, and
             nan entries carry the timeout count into the JSON. *)
          let execs = List.map (fun m -> m.sg_exec) ms in
          let finished = List.filter (fun t -> not (Float.is_nan t)) execs in
          let timeouts = List.length execs - List.length finished in
          record ~section:"fig7" ~series:mname gname execs;
          let cell =
            Printf.sprintf "%s (%d t/o)" (fmt_time (median finished)) timeouts
          in
          p " %18s" cell)
        per_method;
      p "\n%!")
    (get_subgraph_measurements ())

let fig8 () =
  header "Figure 8: subgraph counting optimization time (mean)";
  p "%-14s %18s %18s %18s %18s\n" "workload" "duckdb"
    "galley+duckdb" "galley(greedy)" "galley(exact)";
  List.iter
    (fun (gname, per_method) ->
      p "%-14s" gname;
      List.iter
        (fun (mname, ms) ->
          let opts = List.map (fun m -> m.sg_opt) ms in
          record ~section:"fig8" ~series:mname gname opts;
          p " %18s" (fmt_time (mean opts)))
        per_method;
      p "\n%!")
    (get_subgraph_measurements ())

let fig9 () =
  header "Figure 9: subgraph counting compilation time (mean; kernel cache)";
  p "%-14s %16s %16s\n" "workload" "galley cold" "galley warm";
  List.iter
    (fun (gname, per_method) ->
      let ms = List.assoc "galley(exact)" per_method in
      let pick f = List.map f ms in
      let cold_s = pick (fun m -> m.sg_compile) in
      let warm_s = pick (fun m -> m.sg_compile_warm) in
      record ~section:"fig9" ~series:"cold" gname cold_s;
      record ~section:"fig9" ~series:"warm" gname warm_s;
      p "%-14s %16s %16s\n%!" gname (fmt_time (mean cold_s))
        (fmt_time (mean warm_s)))
    (get_subgraph_measurements ())

(* ------------------------------------------------------------------ *)
(* Figure 10: BFS.                                                      *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  header "Figure 10: BFS total runtime (incl. Galley's optimization time)";
  let scale = if !quick then 0.1 else 0.5 in
  let graphs = W.Graphs.bfs_suite ~scale in
  p "%-12s %10s %10s %10s %8s\n" "graph" "galley" "sparse" "dense"
    "best";
  List.iter
    (fun g ->
      let adjacency = W.Graphs.adjacency g in
      let run v =
        List.init (trials ()) (fun _ ->
            (W.Bfs.run ~config_base:(with_domains D.default_config) v
               ~adjacency ~source:0)
              .W.Bfs.seconds)
      in
      let galley_s = run W.Bfs.Adaptive in
      let sparse_s = run W.Bfs.All_sparse in
      let dense_s = run W.Bfs.All_dense in
      record ~section:"fig10" ~series:"galley" g.W.Graphs.name galley_s;
      record ~section:"fig10" ~series:"sparse" g.W.Graphs.name sparse_s;
      record ~section:"fig10" ~series:"dense" g.W.Graphs.name dense_s;
      let galley_t = median galley_s
      and sparse_t = median sparse_s
      and dense_t = median dense_s in
      let best =
        if galley_t <= sparse_t && galley_t <= dense_t then "galley"
        else if sparse_t <= dense_t then "sparse"
        else "dense"
      in
      p "%-12s %10s %10s %10s %8s\n%!" g.W.Graphs.name
        (fmt_time galley_t) (fmt_time sparse_t) (fmt_time dense_t) best)
    graphs

(* ------------------------------------------------------------------ *)
(* Kernel backends: staged compiler vs constraint-tree interpreter.     *)
(* ------------------------------------------------------------------ *)

(* The same physical plans run under both engine backends, so this table
   isolates the kernel loop nest itself (execution time only for fig6/fig7
   shapes; total session time for BFS, whose kernels dominate). *)
let kernels () =
  header "Kernel backends: staged compiler vs constraint-tree interpreter";
  let config_for backend =
    { (with_domains D.default_config) with D.kernel_backend = backend }
  in
  (* One sample per trial round, the backends interleaved round by round:
     each cell is a fresh end-to-end run, so single-run GC / allocation
     noise would otherwise dominate the sub-millisecond rows, and
     back-to-back runs of one backend would hand the other a warmed
     heap.  Displayed cells are medians. *)
  let row label f =
    let samples_s = ref [] and samples_i = ref [] in
    for _ = 1 to trials () do
      samples_s := f (config_for Galley_engine.Exec.Staged) :: !samples_s;
      samples_i := f (config_for Galley_engine.Exec.Interp) :: !samples_i
    done;
    let ss = List.rev !samples_s and is_ = List.rev !samples_i in
    record ~section:"kernels" ~series:"staged" label ss;
    record ~section:"kernels" ~series:"interp" label is_;
    let staged = median ss and interp = median is_ in
    p "%-22s %12s %12s %9.2fx\n%!" label (fmt_time staged) (fmt_time interp)
      (interp /. staged)
  in
  p "%-22s %12s %12s %10s\n" "workload" "staged" "interp" "speedup";
  (* Fig. 6 shape: ML over the star join, execution phase only. *)
  let scale =
    if !quick then
      { W.Tpch.n_lineitems = 800; n_suppliers = 40; n_parts = 100;
        n_orders = 200; n_customers = 60 }
    else
      { W.Tpch.n_lineitems = 20000; n_suppliers = 300; n_parts = 800;
        n_orders = 2000; n_customers = 400 }
  in
  let star = W.Tpch.star_instance ~scale ~seed:1001 () in
  let params = W.Ml.parameter_inputs ~seed:1002 ~d:star.W.Tpch.d ~hidden:16 in
  let inputs = star.W.Tpch.inputs @ params in
  List.iter
    (fun alg ->
      let prog = W.Ml.program_of alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
      row
        ("fig6 " ^ W.Ml.algorithm_name alg)
        (fun config ->
          let r = D.run ~config ~inputs prog in
          r.D.timings.D.execute_seconds))
    [ W.Ml.Linreg; W.Ml.Logreg; W.Ml.Nn ];
  (* Fig. 7 shape: subgraph counting, execution phase only. *)
  let g =
    List.hd (W.Graphs.benchmark_suite ~scale:(if !quick then 0.08 else 0.1))
  in
  List.iter
    (fun pat ->
      let prog = W.Subgraph.count_program pat in
      let sg_inputs = W.Subgraph.bindings g pat in
      row
        ("fig7 " ^ pat.W.Subgraph.pname)
        (fun config ->
          let config = { config with D.timeout = Some sg_timeout } in
          let r = D.run ~config ~inputs:sg_inputs prog in
          if r.D.timed_out then nan else r.D.timings.D.execute_seconds))
    (W.Subgraph.suite_for g);
  (* Fig. 10 shape: a whole BFS session (kernel time dominates). *)
  let bg = List.hd (W.Graphs.bfs_suite ~scale:(if !quick then 0.1 else 0.4)) in
  let adjacency = W.Graphs.adjacency bg in
  row
    ("fig10 bfs " ^ bg.W.Graphs.name)
    (fun config ->
      (W.Bfs.run ~config_base:config W.Bfs.Adaptive ~adjacency ~source:0)
        .W.Bfs.seconds)

(* ------------------------------------------------------------------ *)
(* Kernel layer v2: micro / bitset / morsel fast paths vs v1.           *)
(* ------------------------------------------------------------------ *)

(* Each row runs the identical physical plan under the staged backend
   with the v2 gates off (v1: binder/cursor dispatch, byte probing,
   static chunking) and on (v2: dense microkernels, word-level bitset
   merges, morsel scheduling); outputs are bit-identical, so the delta
   is pure kernel-layer speed.  Trials interleave the two settings round
   by round, as in the [kernels] section, so neither side inherits a
   warmed heap. *)
let kernels_v2 () =
  header "Kernel layer v2: micro/bitset/morsel fast paths vs v1 (staged)";
  let saved = (!V2.micro, !V2.bits, !V2.morsel) in
  let restore () =
    let m, b, s = saved in
    V2.micro := m;
    V2.bits := b;
    V2.morsel := s
  in
  Fun.protect ~finally:restore (fun () ->
      let config = { (with_domains D.default_config) with D.domains = 1 } in
      let run_q inputs (q : LQ.t) () =
        let prog = { Ir.queries = [ LQ.to_query q ]; outputs = [ q.LQ.name ] } in
        (D.run ~config ~inputs prog).D.timings.D.execute_seconds
      in
      let row label f =
        let s1 = ref [] and s2 = ref [] in
        for _ = 1 to trials () do
          V2.set_all false;
          s1 := f () :: !s1;
          V2.set_all true;
          s2 := f () :: !s2
        done;
        let v1 = List.rev !s1 and v2 = List.rev !s2 in
        record ~section:"kernels_v2" ~series:"v1" label v1;
        record ~section:"kernels_v2" ~series:"v2" label v2;
        let t1 = median v1 and t2 = median v2 in
        p "%-26s %12s %12s %9.2fx\n%!" label (fmt_time t1) (fmt_time t2)
          (t1 /. t2)
      in
      p "%-26s %12s %12s %10s\n" "kernel" "v1" "v2" "speedup";
      let prng = Prng.create 4242 in
      let dense dims =
        T.random ~prng ~dims
          ~formats:(Array.map (fun _ -> T.Dense) dims)
          ~density:0.95 ()
      in
      let bytemap ~density dims =
        T.random ~prng ~dims
          ~formats:(Array.map (fun _ -> T.Bytemap) dims)
          ~density ()
      in
      (* Dense-dominated rows: the innermost level is Dense everywhere,
         so the micro gate swaps per-element dispatch for unboxed
         float-array loops. *)
      let n = if !quick then 100_000 else 1_000_000 in
      let v = dense [| n |] and w = dense [| n |] in
      let dot =
        LQ.make ~output_idxs:[] ~name:"out" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
          ~body:(Ir.mul [ Ir.input "v" [ "j" ]; Ir.input "w" [ "j" ] ])
          ()
      in
      row
        (Printf.sprintf "dot dense n=%d" n)
        (run_q [ ("v", v); ("w", w) ] dot);
      let axpy =
        LQ.make ~output_idxs:[ "j" ] ~name:"out" ~agg_op:Op.Ident ~agg_idxs:[]
          ~body:
            (Ir.add
               [
                 Ir.mul [ Ir.lit 2.5; Ir.input "v" [ "j" ] ];
                 Ir.input "w" [ "j" ];
               ])
          ()
      in
      row
        (Printf.sprintf "axpy dense n=%d" n)
        (run_q [ ("v", v); ("w", w) ] axpy);
      let rows = if !quick then 400 else 1500 in
      let cols = if !quick then 128 else 512 in
      let a = dense [| rows; cols |] and x = dense [| cols |] in
      let matvec =
        LQ.make ~output_idxs:[ "i" ] ~name:"out" ~agg_op:Op.Add
          ~agg_idxs:[ "j" ]
          ~body:(Ir.mul [ Ir.input "A" [ "i"; "j" ]; Ir.input "x" [ "j" ] ])
          ()
      in
      row
        (Printf.sprintf "matvec dense %dx%d" rows cols)
        (run_q [ ("A", a); ("x", x) ] matvec);
      (* SpMM with a dense right operand: the GCN building block — the
         sparse adjacency drives the outer levels, the feature loop at
         the innermost level stays dense and micro-eligible. *)
      let gn = if !quick then 300 else 1000 in
      let gf = if !quick then 16 else 32 in
      let adj =
        T.random ~prng ~dims:[| gn; gn |]
          ~formats:[| T.Dense; T.Sparse_list |]
          ~density:0.01 ()
      in
      let h = dense [| gn; gf |] in
      let spmm =
        LQ.make ~output_idxs:[ "i"; "f" ] ~name:"out" ~agg_op:Op.Add
          ~agg_idxs:[ "j" ]
          ~body:(Ir.mul [ Ir.input "A" [ "i"; "j" ]; Ir.input "H" [ "j"; "f" ] ])
          ()
      in
      row
        (Printf.sprintf "spmm gcn %dx%d d=%d" gn gn gf)
        (run_q [ ("A", adj); ("H", h) ] spmm);
      (* Bytemap-merge rows: all-bytemap loop levels, dense enough that
         the word-merge heuristic engages (density x dim >> words). *)
      let bn = if !quick then 100_000 else 400_000 in
      let bx = bytemap ~density:0.3 [| bn |]
      and by = bytemap ~density:0.3 [| bn |]
      and bz = bytemap ~density:0.3 [| bn |] in
      let band =
        LQ.make ~output_idxs:[] ~name:"out" ~agg_op:Op.Add ~agg_idxs:[ "i" ]
          ~body:
            (Ir.mul
               [
                 Ir.input "x" [ "i" ]; Ir.input "y" [ "i" ]; Ir.input "z" [ "i" ];
               ])
          ()
      in
      row
        (Printf.sprintf "bytemap and3 n=%d" bn)
        (run_q [ ("x", bx); ("y", by); ("z", bz) ] band);
      let bor =
        LQ.make ~output_idxs:[ "i" ] ~name:"out" ~agg_op:Op.Ident ~agg_idxs:[]
          ~body:(Ir.add [ Ir.input "x" [ "i" ]; Ir.input "y" [ "i" ] ])
          ()
      in
      row
        (Printf.sprintf "bytemap or2 n=%d" bn)
        (run_q [ ("x", bx); ("y", by) ] bor);
      let mn = if !quick then 200 else 600 in
      let mm = if !quick then 300 else 800 in
      let ma = bytemap ~density:0.3 [| mn; mm |]
      and mb = bytemap ~density:0.3 [| mn; mm |] in
      let had =
        LQ.make ~output_idxs:[ "i" ] ~name:"out" ~agg_op:Op.Add
          ~agg_idxs:[ "j" ]
          ~body:(Ir.mul [ Ir.input "A" [ "i"; "j" ]; Ir.input "B" [ "i"; "j" ] ])
          ()
      in
      row
        (Printf.sprintf "bytemap hadamard %dx%d" mn mm)
        (run_q [ ("A", ma); ("B", mb) ] had);
      (* Morsel vs static chunking across domain counts, on a skewed
         SpMV: row i carries ~1/(i+1) of the head row's entries, so
         static chunks are badly imbalanced while morsels rebalance.
         On a single-core host both schedulers share the core and the
         comparison collapses to dispatch overhead — the shape is
         meaningful only where the hardware has lanes to offer. *)
      p "\nmorsel vs static chunking (skewed SpMV, execution time)\n";
      p "%-26s %12s %12s\n" "config" "static" "morsel";
      let sn = if !quick then 800 else 2500 in
      let entries = ref [] in
      for i = 0 to sn - 1 do
        let k = max 2 (sn / (8 * (i + 1))) in
        for _ = 1 to k do
          entries := ([| i; Prng.int prng sn |], Prng.float prng) :: !entries
        done
      done;
      let sa =
        T.of_coo ~dims:[| sn; sn |]
          ~formats:[| T.Dense; T.Sparse_list |]
          (Array.of_list !entries)
      in
      let sx = dense [| sn |] in
      let label = Printf.sprintf "spmv skewed n=%d" sn in
      List.iter
        (fun d ->
          let config = { D.default_config with D.domains = d } in
          let time_with morsel =
            V2.set_all true;
            V2.morsel := morsel;
            let samples =
              List.init (trials ()) (fun _ ->
                  let prog =
                    { Ir.queries = [ LQ.to_query matvec ]; outputs = [ "out" ] }
                  in
                  (D.run ~config ~inputs:[ ("A", sa); ("x", sx) ] prog)
                    .D.timings.D.execute_seconds)
            in
            record ~section:"kernels_v2"
              ~series:(Printf.sprintf "%s@%d" (if morsel then "morsel" else "static") d)
              label samples;
            median samples
          in
          let ts = time_with false in
          let tm = time_with true in
          p "%-26s %12s %12s\n%!"
            (Printf.sprintf "%s domains=%d" label d)
            (fmt_time ts) (fmt_time tm))
        [ 1; 2; 4 ])

(* ------------------------------------------------------------------ *)
(* Scaling: the parallel runtime at domains ∈ {1, 2, 4}.                *)
(* ------------------------------------------------------------------ *)

(* Wall time per figure workload as the engine's domain-pool size grows;
   outputs are bit-identical across the sweep (the parallel runtime
   replays chunk logs in serial accumulation order), so the rows isolate
   runtime cost alone.  speedup@N = T(domains=1) / T(domains=N).  On a
   single-core machine every lane shares the core and the sweep reports
   ~1.0x — the speedup column is meaningful only where the hardware has
   cores to offer. *)
let scaling () =
  header "Scaling: wall time at domains in {1,2,4} (speedup vs domains=1)";
  let counts = [ 1; 2; 4 ] in
  p "%-26s %12s %12s %12s %9s %9s\n" "workload" "domains=1" "domains=2"
    "domains=4" "x @2" "x @4";
  let row label f =
    let ts =
      List.map
        (fun d ->
          let config = { D.default_config with D.domains = d } in
          (* One sample per trial round: fresh end-to-end runs, so GC
             noise does not masquerade as (anti-)scaling. *)
          let samples =
            List.init (trials ()) (fun _ -> f config)
          in
          record ~section:"scaling"
            ~series:(Printf.sprintf "domains=%d" d)
            label samples;
          median samples)
        counts
    in
    match ts with
    | [ t1; t2; t4 ] ->
        record1 ~section:"scaling" ~series:"speedup@2" label (t1 /. t2);
        record1 ~section:"scaling" ~series:"speedup@4" label (t1 /. t4);
        p "%-26s %12s %12s %12s %8.2fx %8.2fx\n%!" label (fmt_time t1)
          (fmt_time t2) (fmt_time t4) (t1 /. t2) (t1 /. t4)
    | _ -> ()
  in
  (* Fig. 6 shape: ML over the star join, execution phase only. *)
  let scale =
    if !quick then
      { W.Tpch.n_lineitems = 800; n_suppliers = 40; n_parts = 100;
        n_orders = 200; n_customers = 60 }
    else
      { W.Tpch.n_lineitems = 20000; n_suppliers = 300; n_parts = 800;
        n_orders = 2000; n_customers = 400 }
  in
  let star = W.Tpch.star_instance ~scale ~seed:1001 () in
  let params = W.Ml.parameter_inputs ~seed:1002 ~d:star.W.Tpch.d ~hidden:16 in
  let inputs = star.W.Tpch.inputs @ params in
  List.iter
    (fun alg ->
      let prog = W.Ml.program_of alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
      row
        ("fig6 " ^ W.Ml.algorithm_name alg)
        (fun config ->
          let r = D.run ~config ~inputs prog in
          r.D.timings.D.execute_seconds))
    [ W.Ml.Linreg; W.Ml.Logreg ];
  (* Fig. 7 shape: subgraph counting, execution phase only. *)
  let g =
    List.hd (W.Graphs.benchmark_suite ~scale:(if !quick then 0.08 else 0.1))
  in
  List.iter
    (fun pat ->
      let prog = W.Subgraph.count_program pat in
      let sg_inputs = W.Subgraph.bindings g pat in
      row
        ("fig7 " ^ pat.W.Subgraph.pname)
        (fun config ->
          let config = { config with D.timeout = Some sg_timeout } in
          let r = D.run ~config ~inputs:sg_inputs prog in
          if r.D.timed_out then nan else r.D.timings.D.execute_seconds))
    (W.Subgraph.suite_for g);
  (* Fig. 10 shape: a whole BFS session (kernel time dominates). *)
  let bg = List.hd (W.Graphs.bfs_suite ~scale:(if !quick then 0.1 else 0.4)) in
  let adjacency = W.Graphs.adjacency bg in
  row
    ("fig10 bfs " ^ bg.W.Graphs.name)
    (fun config ->
      (W.Bfs.run ~config_base:config W.Bfs.Adaptive ~adjacency ~source:0)
        .W.Bfs.seconds)

(* ------------------------------------------------------------------ *)
(* Ablations.                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  header "Ablation: sparsity estimator (uniform vs chain bound)";
  let scale = if !quick then 0.1 else 0.15 in
  let g = List.hd (W.Graphs.benchmark_suite ~scale) in
  p "graph %s: %d vertices %d edges\n" g.W.Graphs.name g.W.Graphs.n
    (W.Graphs.edge_count g);
  p "%-12s %14s %14s\n" "pattern" "uniform" "chain";
  List.iter
    (fun pat ->
      let prog = W.Subgraph.count_program pat in
      let inputs = W.Subgraph.bindings g pat in
      let run kind =
        let config =
          { D.default_config with estimator = kind; timeout = Some sg_timeout }
        in
        let r = D.run ~config ~inputs prog in
        if r.D.timed_out then nan else r.D.timings.D.total_seconds
      in
      p "%-12s %14s %14s\n%!" pat.W.Subgraph.pname
        (fmt_time (run Galley_stats.Ctx.Uniform_kind))
        (fmt_time (run Galley_stats.Ctx.Chain_kind)))
    (W.Subgraph.suite_for g);

  header "Ablation: JIT physical optimization";
  let scale =
    if !quick then
      { W.Tpch.n_lineitems = 600; n_suppliers = 30; n_parts = 80;
        n_orders = 150; n_customers = 50 }
    else
      { W.Tpch.n_lineitems = 4000; n_suppliers = 100; n_parts = 250;
        n_orders = 600; n_customers = 150 }
  in
  let star = W.Tpch.star_instance ~scale ~seed:2001 () in
  let params = W.Ml.parameter_inputs ~seed:2002 ~d:star.W.Tpch.d ~hidden:16 in
  let inputs = star.W.Tpch.inputs @ params in
  p "%-12s %12s %12s\n" "algorithm" "jit" "no-jit";
  List.iter
    (fun alg ->
      let prog = W.Ml.program_of alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
      let t ~jit =
        snd
          (time_once (fun () ->
               D.run ~config:{ D.default_config with jit } ~inputs prog))
      in
      p "%-12s %12s %12s\n%!" (W.Ml.algorithm_name alg)
        (fmt_time (t ~jit:true))
        (fmt_time (t ~jit:false)))
    W.Ml.all_algorithms;

  header "Ablation: common sub-expression elimination";
  let prog = W.Ml.program_of W.Ml.Covariance ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
  let run ~cse =
    let r = D.run ~config:{ D.default_config with cse } ~inputs prog in
    ( r.D.timings.D.total_seconds,
      r.D.timings.D.cse_hits,
      r.D.timings.D.kernel_count )
  in
  let t_on, hits, kernels_on = run ~cse:true in
  let t_off, _, kernels_off = run ~cse:false in
  p "covariance with CSE:    %s (%d kernel runs, %d cache hits)\n"
    (fmt_time t_on) kernels_on hits;
  p "covariance without CSE: %s (%d kernel runs)\n%!"
    (fmt_time t_off) kernels_off;

  header "Ablation: greedy vs exact elimination order";
  let g =
    List.nth (W.Graphs.benchmark_suite ~scale:(if !quick then 0.1 else 0.15)) 1
  in
  p "graph %s\n" g.W.Graphs.name;
  p "%-12s %14s %14s\n" "pattern" "greedy" "exact";
  List.iter
    (fun pat ->
      let prog = W.Subgraph.count_program pat in
      let inputs = W.Subgraph.bindings g pat in
      let run config =
        let r =
          D.run ~config:{ config with D.timeout = Some sg_timeout } ~inputs prog
        in
        if r.D.timed_out then nan else r.D.timings.D.total_seconds
      in
      p "%-12s %14s %14s\n%!" pat.W.Subgraph.pname
        (fmt_time (run D.greedy_config))
        (fmt_time (run D.default_config)))
    (W.Subgraph.suite_for g)

(* ------------------------------------------------------------------ *)
(* Degradation ladder: per-tier plan counts and cost of degrading.      *)
(* ------------------------------------------------------------------ *)

let tiers () =
  header "Degradation ladder: plans served per optimizer tier";
  (* Naive-tier plans are deliberately unoptimized (that is the point of
     the comparison), so the instance stays small enough for them. *)
  let scale =
    if !quick then
      { W.Tpch.n_lineitems = 60; n_suppliers = 8; n_parts = 12;
        n_orders = 15; n_customers = 10 }
    else
      { W.Tpch.n_lineitems = 150; n_suppliers = 12; n_parts = 25;
        n_orders = 40; n_customers = 20 }
  in
  let star =
    W.Tpch.star_instance ~scale ~layout:W.Tpch.tiny_layout ~seed:2101 ()
  in
  let params = W.Ml.parameter_inputs ~seed:2102 ~d:star.W.Tpch.d ~hidden:16 in
  let inputs = star.W.Tpch.inputs @ params in
  let fmt_counts (tiers : (string * Galley_plan.Tier.t) list) =
    let e, g, n = Galley_plan.Tier.counts tiers in
    Printf.sprintf "e=%d g=%d n=%d" e g n
  in
  p "%-12s %-22s %-22s %10s %10s\n" "algorithm"
    "default (log/phys)" "0s deadline (log/phys)" "default" "degraded";
  List.iter
    (fun alg ->
      let prog = W.Ml.program_of alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
      let run config = time_once (fun () -> D.run ~config ~inputs prog) in
      let r_def, t_def = run D.default_config in
      let r_deg, t_deg =
        run { D.default_config with optimizer_timeout = Some 0.0 }
      in
      p "%-12s %-22s %-22s %10s %10s\n%!"
        (W.Ml.algorithm_name alg)
        (fmt_counts r_def.D.logical_tiers ^ " / "
        ^ fmt_counts r_def.D.physical_tiers)
        (fmt_counts r_deg.D.logical_tiers ^ " / "
        ^ fmt_counts r_deg.D.physical_tiers)
        (fmt_time t_def) (fmt_time t_deg))
    W.Ml.all_algorithms

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the tensor substrate.                   *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro-benchmarks: per-format iteration / lookup / construction";
  let open Bechamel in
  let prng = Galley_tensor.Prng.create 3001 in
  let n = if !quick then 20_000 else 100_000 in
  let mk fmt = T.random ~prng ~dims:[| n |] ~formats:[| fmt |] ~density:0.02 () in
  let tensors =
    List.map
      (fun f -> (T.format_to_string f, mk f))
      [ T.Dense; T.Sparse_list; T.Bytemap; T.Hash ]
  in
  let iteration_tests =
    List.map
      (fun (name, t) ->
        Test.make ~name
          (Staged.stage (fun () ->
               let acc = ref 0.0 in
               T.iter_nonfill t (fun _ v -> acc := !acc +. v);
               !acc)))
      tensors
  in
  let lookup_tests =
    List.map
      (fun (name, t) ->
        let coords = Array.init 512 (fun k -> [| k * (n / 512) |]) in
        Test.make ~name
          (Staged.stage (fun () ->
               let acc = ref 0.0 in
               Array.iter (fun c -> acc := !acc +. T.get t c) coords;
               !acc)))
      tensors
  in
  let build_tests =
    List.map
      (fun fmt ->
        let name = T.format_to_string fmt in
        Test.make ~name
          (Staged.stage (fun () ->
               let b =
                 Galley_tensor.Builder.create ~dims:[| n |] ~formats:[| fmt |]
                   ~identity:0.0 ()
               in
               for k = 0 to 999 do
                 Galley_tensor.Builder.accum b
                   [| k * (n / 1000) |]
                   1.0 ~combine:( +. )
               done;
               Galley_tensor.Builder.freeze b
                 ~finalize:(fun v _ -> v)
                 ~fill:0.0)))
      [ T.Dense; T.Sparse_list; T.Bytemap; T.Hash ]
  in
  let test =
    Test.make_grouped ~name:"tensor"
      [
        Test.make_grouped ~name:"iterate" iteration_tests;
        Test.make_grouped ~name:"lookup" lookup_tests;
        Test.make_grouped ~name:"build" build_tests;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] test in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name res acc -> (name, res) :: acc) results [] in
  List.iter
    (fun (name, res) ->
      match Analyze.OLS.estimates res with
      | Some [ est ] -> p "%-34s %14.1f ns/run\n" name est
      | _ -> p "%-34s (no estimate)\n" name)
    (List.sort compare rows);
  p "%!"

(* ------------------------------------------------------------------ *)
(* Observability: per-phase timings, estimator q-error, and the         *)
(* zero-cost-when-off contract for tracing (DESIGN.md §9).              *)
(* ------------------------------------------------------------------ *)

let observability () =
  header
    "Observability: phase timings, estimator q-error, tracing overhead \
     (off-path must stay < 5%)";
  Galley_obs.Metrics.set_detailed true;
  let scale =
    if !quick then
      { W.Tpch.n_lineitems = 800; n_suppliers = 40; n_parts = 100;
        n_orders = 200; n_customers = 60 }
    else
      { W.Tpch.n_lineitems = 8000; n_suppliers = 200; n_parts = 500;
        n_orders = 1000; n_customers = 300 }
  in
  let star = W.Tpch.star_instance ~scale ~seed:1001 () in
  let params = W.Ml.parameter_inputs ~seed:1002 ~d:star.W.Tpch.d ~hidden:16 in
  let inputs = star.W.Tpch.inputs @ params in
  (* Per-figure phase timings + q-error summary, from audited runs. *)
  p "%-14s %10s %10s %10s %10s %12s %12s\n" "workload" "logical" "physical"
    "compile" "execute" "qerr(unif)" "qerr(chain)";
  List.iter
    (fun alg ->
      let config =
        with_domains { D.default_config with D.audit = true }
      in
      let prog = W.Ml.program_of alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
      let r = D.run ~config ~inputs prog in
      let t = r.D.timings in
      let name = "fig6 " ^ W.Ml.algorithm_name alg in
      record1 ~section:"observability" ~series:"phase-logical" name
        t.D.logical_seconds;
      record1 ~section:"observability" ~series:"phase-physical" name
        t.D.physical_seconds;
      record1 ~section:"observability" ~series:"phase-compile" name
        t.D.compile_seconds;
      record1 ~section:"observability" ~series:"phase-execute" name
        t.D.execute_seconds;
      let qerr est =
        match r.D.audit with
        | None -> nan
        | Some a -> (
            match
              List.find_opt
                (fun (s : Galley_obs.Audit.summary) -> s.s_estimator = est)
                (Galley_obs.Audit.summaries a)
            with
            | Some s -> s.Galley_obs.Audit.s_mean_q
            | None -> nan)
      in
      let qu = qerr "uniform" and qc = qerr "chain" in
      record1 ~section:"observability" ~series:"qerr-uniform" name qu;
      record1 ~section:"observability" ~series:"qerr-chain" name qc;
      p "%-14s %10s %10s %10s %10s %12.2f %12.2f\n%!" name
        (fmt_time t.D.logical_seconds)
        (fmt_time t.D.physical_seconds)
        (fmt_time t.D.compile_seconds)
        (fmt_time t.D.execute_seconds)
        qu qc)
    [ W.Ml.Linreg; W.Ml.Logreg; W.Ml.Nn ];
  (* Zero-cost-when-off: with tracing disabled, a span site is one atomic
     read.  Measure fig6 linreg cold (off), traced (on), and off again;
     the off-after-on time must stay within 5% of the first off time.
     Best-of-N absorbs scheduler noise; one retry absorbs the rest. *)
  let prog = W.Ml.program_of W.Ml.Linreg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
  let run_once () =
    ignore (D.run ~config:(with_domains D.default_config) ~inputs prog)
  in
  let best_of n =
    let best = ref infinity in
    for _ = 1 to n do
      let t0 = Unix.gettimeofday () in
      run_once ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let measure () =
    Galley_obs.Trace.disable ();
    let off1 = best_of 5 in
    Galley_obs.Trace.enable ();
    let on = best_of 3 in
    Galley_obs.Trace.disable ();
    Galley_obs.Trace.reset ();
    let off2 = best_of 5 in
    (off1, on, off2)
  in
  let rec check attempt =
    let off1, on, off2 = measure () in
    let ratio = off2 /. off1 in
    if ratio < 1.05 || attempt >= 3 then (off1, on, off2, ratio)
    else check (attempt + 1)
  in
  let off1, on, off2, ratio = check 1 in
  record1 ~section:"observability" ~series:"trace-off" "fig6 linreg" off1;
  record1 ~section:"observability" ~series:"trace-on" "fig6 linreg" on;
  record1 ~section:"observability" ~series:"trace-off-after" "fig6 linreg" off2;
  p "tracing overhead: off=%s on=%s off-after=%s (off-after/off = %.3f)\n"
    (fmt_time off1) (fmt_time on) (fmt_time off2) ratio;
  if ratio < 1.05 then p "tracing disabled-overhead check: PASS (< 5%%)\n%!"
  else begin
    p "tracing disabled-overhead check: FAIL (>= 5%%)\n%!";
    exit 1
  end;
  (* Recorder + sampler on-path overhead: serve leaves the flight
     recorder and tail sampler enabled for every request, so the full
     bracket — begin_request (trace on), the run, end_request (drain +
     retention decision), flight note — must stay within 5% of a bare
     run.  Same best-of-N + retry discipline as the tracing check. *)
  let fl = Galley_obs.Flight.create ~capacity:256 () in
  let sm = Galley_obs.Sampler.create () in
  let best_of_rec n =
    let best = ref infinity in
    for _ = 1 to n do
      Galley_obs.Sampler.begin_request sm;
      let t0 = Unix.gettimeofday () in
      run_once ();
      let dt = Unix.gettimeofday () -. t0 in
      ignore
        (Galley_obs.Sampler.end_request sm ~id:"bench"
           ~duration_us:(int_of_float (dt *. 1e6))
           ~triggers:[]);
      ignore
        (Galley_obs.Flight.note fl
           (Galley_obs.Flight.empty_record ~id:"bench" ~op:"query"));
      if dt < !best then best := dt
    done;
    !best
  in
  let measure_rec () =
    Galley_obs.Trace.disable ();
    Galley_obs.Trace.reset ();
    let bare = best_of 5 in
    let bracketed = best_of_rec 5 in
    Galley_obs.Trace.disable ();
    Galley_obs.Trace.reset ();
    (bare, bracketed)
  in
  let rec check_rec attempt =
    let bare, bracketed = measure_rec () in
    let ratio = bracketed /. bare in
    if ratio < 1.05 || attempt >= 3 then (bare, bracketed, ratio)
    else check_rec (attempt + 1)
  in
  let bare, bracketed, rec_ratio = check_rec 1 in
  record1 ~section:"observability" ~series:"recorder-off" "fig6 linreg" bare;
  record1 ~section:"observability" ~series:"recorder-on" "fig6 linreg"
    bracketed;
  p "recorder+sampler overhead: bare=%s bracketed=%s (ratio = %.3f)\n"
    (fmt_time bare) (fmt_time bracketed) rec_ratio;
  if rec_ratio < 1.05 then
    p "recorder on-path overhead check: PASS (< 5%%)\n%!"
  else begin
    p "recorder on-path overhead check: FAIL (>= 5%%)\n%!";
    exit 1
  end;
  (* Provenance recorder off-path overhead: the search recorder hooks in
     both optimizer rungs compile down to one atomic load when disabled,
     so a run with provenance off must stay within 5% of a run taken
     before the recorder was ever touched.  Same best-of-N + retry
     discipline as the tracing check. *)
  let measure_prov () =
    Galley_plan.Provenance.disable ();
    Galley_plan.Provenance.reset ();
    let off = best_of 5 in
    Galley_plan.Provenance.enable ();
    let on = best_of 3 in
    ignore (Galley_plan.Provenance.drain ());
    Galley_plan.Provenance.disable ();
    Galley_plan.Provenance.reset ();
    let off_after = best_of 5 in
    (off, on, off_after)
  in
  let rec check_prov attempt =
    let off, on, off_after = measure_prov () in
    let ratio = off_after /. off in
    if ratio < 1.05 || attempt >= 3 then (off, on, off_after, ratio)
    else check_prov (attempt + 1)
  in
  let poff, pon, poff2, prov_ratio = check_prov 1 in
  record1 ~section:"observability" ~series:"provenance-off" "fig6 linreg" poff;
  record1 ~section:"observability" ~series:"provenance-on" "fig6 linreg" pon;
  record1 ~section:"observability" ~series:"provenance-off-after"
    "fig6 linreg" poff2;
  p "provenance overhead: off=%s on=%s off-after=%s (off-after/off = %.3f)\n"
    (fmt_time poff) (fmt_time pon) (fmt_time poff2) prov_ratio;
  if prov_ratio < 1.05 then
    p "provenance disabled-overhead check: PASS (< 5%%)\n%!"
  else begin
    p "provenance disabled-overhead check: FAIL (>= 5%%)\n%!";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Serving: daemon latency and throughput under concurrent clients.     *)
(* ------------------------------------------------------------------ *)

(* An in-process `galley serve` daemon on a temp socket, driven over the
   real wire protocol: cold-vs-warm request latency (the Fig. 9
   amortization as seen by a serving client) and multi-client
   throughput with client-side p50/p99 tail latency. *)
let serving () =
  header "Serving: galley serve latency and throughput";
  let module S = Galley_serve.Server in
  let module C = Galley_serve.Client in
  let module Proto = Galley_serve.Protocol in
  let sock = Filename.temp_file "galley_bench" ".sock" in
  Sys.remove sock;
  let cfg =
    {
      (S.default_config ~socket_path:sock) with
      S.driver = with_domains D.default_config;
    }
  in
  let server = S.create cfg in
  S.start server;
  Fun.protect
    ~finally:(fun () ->
      S.request_drain server;
      S.wait server;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let dim = if !quick then 80 else 200 in
      let spec_e = Printf.sprintf "%dx%d:0.02:501" dim dim in
      let spec_x = Printf.sprintf "%d:0.5:502" dim in
      let src = "y[i] = sum[j](E[i,j] * x[j])" in
      let rpc line =
        match C.rpc ~retries:10 ~socket:sock line with
        | Ok resp -> resp
        | Error e -> failwith ("serving bench rpc: " ^ e)
      in
      ignore (rpc (Proto.encode_bind_random ~name:"E" spec_e));
      ignore (rpc (Proto.encode_bind_random ~name:"x" spec_x));
      let timed_query () =
        let t0 = Unix.gettimeofday () in
        ignore (rpc (Proto.encode_query ~values:false src));
        Unix.gettimeofday () -. t0
      in
      (* Cold: first request pays optimization + kernel compilation;
         warm requests replay from the resident CSE cache. *)
      let cold = timed_query () in
      let warm = List.init (if !quick then 5 else 20) (fun _ -> timed_query ()) in
      record1 ~section:"serving" ~series:"latency" "cold" cold;
      record ~section:"serving" ~series:"latency" "warm" warm;
      p "%-24s %10s\n" "cold request" (fmt_time cold);
      p "%-24s %10s (x%.1f amortization)\n" "warm request (median)"
        (fmt_time (median warm))
        (if median warm > 0.0 then cold /. median warm else 0.0);
      (* Throughput: 4 persistent clients issuing warm queries. *)
      let clients = 4 in
      let per_client = if !quick then 8 else 25 in
      let latencies = Array.make (clients * per_client) 0.0 in
      let worker c =
        match C.connect ~retries:10 sock with
        | Error e -> failwith ("serving bench connect: " ^ e)
        | Ok conn ->
            Fun.protect
              ~finally:(fun () -> C.close conn)
              (fun () ->
                for q = 0 to per_client - 1 do
                  let t0 = Unix.gettimeofday () in
                  (match
                     C.request conn (Proto.encode_query ~values:false src)
                   with
                  | Ok _ -> ()
                  | Error e -> failwith ("serving bench request: " ^ e));
                  latencies.((c * per_client) + q) <-
                    Unix.gettimeofday () -. t0
                done)
      in
      let t0 = Unix.gettimeofday () in
      let threads = List.init clients (fun c -> Thread.create worker c) in
      List.iter Thread.join threads;
      let wall = Unix.gettimeofday () -. t0 in
      let total = clients * per_client in
      Array.sort compare latencies;
      let pct q =
        latencies.(min (total - 1) (int_of_float (q *. float_of_int total)))
      in
      record1 ~section:"serving" ~series:"throughput"
        (Printf.sprintf "%dx%d-wall" clients per_client)
        wall;
      record1 ~section:"serving" ~series:"tail" "p50" (pct 0.50);
      record1 ~section:"serving" ~series:"tail" "p99" (pct 0.99);
      p "%-24s %10.0f req/s (%d clients, %d requests, %s wall)\n" "throughput"
        (float_of_int total /. wall)
        clients total (fmt_time wall);
      p "%-24s %10s p99=%s\n%!" "client latency p50" (fmt_time (pct 0.50))
        (fmt_time (pct 0.99)))

(* ------------------------------------------------------------------ *)
(* Fixpoint iteration (DESIGN.md §13).                                  *)
(* ------------------------------------------------------------------ *)

(* Until-convergence workloads through the [iterate] construct: each
   iteration re-enters the full optimizer against refreshed statistics,
   so the table separates the cold first iteration (optimization +
   kernel compilation) from the warm steady state (cache replay), and
   reports how often the plan switched as the loop-carried tensors
   densified — the Fig. 10 format-adaptivity argument generalized to
   whole iterative programs. *)
let fixpoint () =
  header "Fixpoint: until-convergence workloads (iterate)";
  let module I = W.Iterative in
  let module Fix = Galley_fixpoint.Fixpoint in
  let config = with_domains D.default_config in
  let pr_g =
    if !quick then W.Graphs.erdos_renyi ~seed:41 ~n:200 ~m:800 ()
    else W.Graphs.erdos_renyi ~seed:41 ~n:1000 ~m:6000 ()
  in
  (* seed 43: source 0 is connected at both scales (seed 42 leaves it
     isolated at n=150, which converges — correctly — in one iteration
     and measures nothing). *)
  let bf_g =
    W.Graphs.symmetrize
      (if !quick then W.Graphs.power_law ~seed:43 ~n:150 ~m:500 ()
       else W.Graphs.power_law ~seed:43 ~n:600 ~m:2400 ())
  in
  let rc_g =
    W.Graphs.symmetrize
      (if !quick then W.Graphs.power_law ~seed:44 ~n:800 ~m:2400 ()
       else W.Graphs.power_law ~seed:44 ~n:4000 ~m:12000 ())
  in
  let cases =
    [
      ("pagerank", I.pagerank_source (), I.pagerank_inputs pr_g);
      ("bellman-ford", I.bellman_source (), I.bellman_inputs bf_g ~source:0);
      ("reachability", I.reach_source (), I.reach_inputs rc_g ~source:0);
    ]
  in
  p "%-14s %6s %8s %14s %11s %11s %10s\n" "workload" "iters" "replans"
    "switch-iters" "first-iter" "steady-it" "total";
  List.iter
    (fun (name, src, inputs) ->
      let t0 = Unix.gettimeofday () in
      match Fix.run_source_checked ~config ~inputs src with
      | Error e -> failwith ("fixpoint bench: " ^ Galley.Errors.to_string e)
      | Ok (_, reports) ->
          let total = Unix.gettimeofday () -. t0 in
          let rep = List.hd reports in
          let iter_s = List.map (fun it -> it.Fix.it_seconds) rep.Fix.fr_iters in
          let first = List.hd iter_s in
          let steady = match iter_s with _ :: (_ :: _ as tl) -> tl | _ -> iter_s in
          record1 ~section:"fixpoint" ~series:"total" name total;
          record1 ~section:"fixpoint" ~series:"first-iter" name first;
          record ~section:"fixpoint" ~series:"steady-iter" name steady;
          (* Not latencies, but the regression gate tracks them the same
             way: a plan-stability change is as real a regression as a
             slowdown. *)
          record1 ~section:"fixpoint" ~series:"iterations" name
            (float_of_int rep.Fix.fr_iterations);
          record1 ~section:"fixpoint" ~series:"replans" name
            (float_of_int rep.Fix.fr_replans);
          p "%-14s %6d %8d %14s %11s %11s %10s\n%!" name rep.Fix.fr_iterations
            rep.Fix.fr_replans
            ("["
            ^ String.concat ","
                (List.map string_of_int rep.Fix.fr_switch_iters)
            ^ "]")
            (fmt_time first)
            (fmt_time (median steady))
            (fmt_time total))
    cases

(* ------------------------------------------------------------------ *)
(* Baseline comparison (--compare / --compare-files).                   *)
(* ------------------------------------------------------------------ *)

(* Keyed per-series statistics from a saved --json document: "seconds"
   alone (schema 1) or the full "trials" sample list (schema 2).  The
   key is section/series/label. *)
let stats_of_json (doc : J.t) : (string * P.t) list =
  let rows =
    Option.value ~default:[]
      (Option.bind (J.member "rows" doc) J.to_list)
  in
  List.filter_map
    (fun row ->
      let str key = Option.bind (J.member key row) J.to_string in
      match (str "section", str "series", str "label") with
      | Some section, Some series, Some label ->
          let samples =
            match Option.bind (J.member "trials" row) J.to_list with
            | Some (_ :: _ as l) ->
                List.map
                  (fun v -> Option.value ~default:nan (J.to_float v))
                  l
            | _ -> (
                match J.member "seconds" row with
                | Some (J.Num f) -> [ f ]
                | _ -> [ nan ] (* null seconds = recorded timeout *))
          in
          Some (section ^ "/" ^ series ^ "/" ^ label, P.of_samples samples)
      | _ -> None)
    rows

let stats_of_rows (rows : (string * string * string * float list) list) :
    (string * P.t) list =
  List.rev_map
    (fun (section, series, label, samples) ->
      (section ^ "/" ^ series ^ "/" ^ label, P.of_samples samples))
    rows

(* Classify current vs baseline series and print the report (to stderr in
   --json mode, like the tables).  Returns the number of regressions. *)
let run_comparison ~(label : string) (baseline : (string * P.t) list)
    (current : (string * P.t) list) : int =
  let cs =
    P.compare_keyed ~rel_threshold:!cmp_threshold ~k:!cmp_k
      ~rel_floor:!cmp_rel_floor ~abs_floor:!cmp_abs_floor baseline current
  in
  header (Printf.sprintf "Baseline comparison vs %s" label);
  p
    "thresholds: ratio > %.2fx AND delta > noise floor (k=%g, \
     rel_floor=%g, abs_floor=%gs)\n"
    !cmp_threshold !cmp_k !cmp_rel_floor !cmp_abs_floor;
  let interesting =
    List.filter (fun c -> c.P.c_verdict <> P.Within_noise) cs
  in
  List.iter
    (fun c ->
      let side = function
        | None -> "-"
        | Some (s : P.t) ->
            if s.P.n = 0 then Printf.sprintf "t/o x%d" s.P.timeouts
            else fmt_time s.P.median
      in
      let ratio =
        match (c.P.c_baseline, c.P.c_current) with
        | Some b, Some cur when b.P.n > 0 && cur.P.n > 0 ->
            Printf.sprintf " (%.2fx)" (cur.P.median /. b.P.median)
        | _ -> ""
      in
      p "%-14s %-46s %10s -> %10s%s\n"
        (P.verdict_to_string c.P.c_verdict)
        c.P.c_key
        (side c.P.c_baseline)
        (side c.P.c_current)
        ratio)
    interesting;
  let n_of v = P.count_verdict cs v in
  let regressions = n_of P.Regression in
  p
    "verdicts: %d regressed, %d improved, %d within-noise, %d new, %d \
     missing\n%!"
    regressions (n_of P.Improvement) (n_of P.Within_noise) (n_of P.New_series)
    (n_of P.Missing_series);
  if regressions > 0 then
    p "REGRESSION GATE: FAIL (%d series beyond the noise floor)\n%!"
      regressions
  else p "regression gate: PASS\n%!";
  regressions

let load_stats (path : string) : (string * P.t) list =
  match J.parse_file path with
  | Ok doc -> stats_of_json doc
  | Error msg ->
      Printf.eprintf "bench: cannot read baseline %s: %s\n" path msg;
      exit 2

(* ------------------------------------------------------------------ *)
(* Driver.                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  (* The bench historically printed its progress diagnostics; keep that
     unless the user asked for a different level via GALLEY_LOG. *)
  if Sys.getenv_opt "GALLEY_LOG" = None then
    Galley_obs.Log.set_level Galley_obs.Log.Info;
  let args = Array.to_list Sys.argv |> List.tl in
  (* Value-taking flags (--flag V or --flag=V) are peeled off first. *)
  let set_float r v =
    match float_of_string_opt v with
    | Some f -> r := f
    | None -> Printf.eprintf "bad numeric flag value %s\n" v
  in
  let take flag v =
    match flag with
    | "--domains" -> (
        match int_of_string_opt v with
        | Some d when d >= 1 -> domains_override := Some d
        | _ -> Printf.eprintf "bad --domains value %s\n" v)
    | "--trials" -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> trials_opt := Some n
        | _ -> Printf.eprintf "bad --trials value %s\n" v)
    | "--compare" -> compare_baseline := Some v
    | "--threshold" -> set_float cmp_threshold v
    | "--noise-k" -> set_float cmp_k v
    | "--rel-floor" -> set_float cmp_rel_floor v
    | "--abs-floor" -> set_float cmp_abs_floor v
    | _ -> assert false
  in
  let value_flags =
    [ "--domains"; "--trials"; "--compare"; "--threshold"; "--noise-k";
      "--rel-floor"; "--abs-floor" ]
  in
  let rec strip = function
    | [] -> []
    | "--compare-files" :: a :: b :: rest ->
        compare_files := Some (a, b);
        strip rest
    | a :: v :: rest when List.mem a value_flags ->
        take a v;
        strip rest
    | [ a ] when List.mem a value_flags || a = "--compare-files" ->
        Printf.eprintf "%s needs a value\n" a;
        []
    | a :: rest -> (
        match String.index_opt a '=' with
        | Some i
          when List.mem (String.sub a 0 i) value_flags ->
            take (String.sub a 0 i)
              (String.sub a (i + 1) (String.length a - i - 1));
            strip rest
        | _ -> a :: strip rest)
  in
  let args =
    List.filter
      (fun a ->
        if a = "quick" || a = "--quick" then begin
          quick := true;
          false
        end
        else if a = "json" || a = "--json" then begin
          json_mode := true;
          false
        end
        else true)
      (strip args)
  in
  (* Pure diff of two saved runs: no measurement, no sections. *)
  (match !compare_files with
  | Some (base_path, cur_path) ->
      let regressions =
        run_comparison
          ~label:(base_path ^ " -> " ^ cur_path)
          (load_stats base_path) (load_stats cur_path)
      in
      exit (if regressions > 0 then 1 else 0)
  | None -> ());
  let sections =
    match args with
    | [] ->
        [
          "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "kernels"; "kernels_v2";
          "scaling"; "ablations"; "observability"; "serving"; "fixpoint";
          "micro";
        ]
    | some -> some
  in
  List.iter
    (fun s ->
      (* Kernel-cache traffic per section: the hit/miss delta separates
         cold compiles from warm cache reuse (Fig. 9 discussion). *)
      let h0 = cache_counter "kernel_cache.hits"
      and m0 = cache_counter "kernel_cache.misses" in
      (match s with
      | "fig6" -> fig6 ()
      | "fig7" -> fig7 ()
      | "fig8" -> fig8 ()
      | "fig9" -> fig9 ()
      | "fig10" -> fig10 ()
      | "kernels" -> kernels ()
      | "kernels_v2" -> kernels_v2 ()
      | "scaling" -> scaling ()
      | "ablations" -> ablations ()
      | "tiers" -> tiers ()
      | "observability" -> observability ()
      | "serving" -> serving ()
      | "fixpoint" -> fixpoint ()
      | "micro" -> micro ()
      | other -> Printf.eprintf "unknown section %s\n" other);
      let hits = cache_counter "kernel_cache.hits" - h0
      and misses = cache_counter "kernel_cache.misses" - m0 in
      if hits + misses > 0 then begin
        cache_rows := (s, hits, misses) :: !cache_rows;
        p "[%s] kernel cache: %d cold compiles, %d warm hits\n%!" s misses
          hits
      end)
    sections;
  if !json_mode then emit_json ();
  match !compare_baseline with
  | None -> ()
  | Some path ->
      let regressions =
        run_comparison ~label:path (load_stats path)
          (stats_of_rows !json_rows)
      in
      if regressions > 0 then exit 1
