(* Until-convergence iteration with per-iteration re-optimization
   (DESIGN.md §13).

     dune exec examples/fixpoint_demo.exe            # all workloads
     dune exec examples/fixpoint_demo.exe -- bellman # one workload

   Runs the iterate-based workloads end to end, checks each against its
   brute-force oracle, and prints one summary line per workload:
   iteration count at convergence, how often the optimizer switched
   plans as the loop-carried tensors densified, and a value checksum
   (the line format is load-bearing: CI greps it). *)

module T = Galley_tensor.Tensor
module W = Galley_workloads
module I = Galley_workloads.Iterative
module D = Galley.Driver
module Fix = Galley_fixpoint.Fixpoint

let find_output (res : D.result) (name : string) : T.t =
  match
    List.find_opt (fun (n, _, _) -> n = name) res.D.outputs
  with
  | Some (_, _, t) -> t
  | None -> invalid_arg ("missing output " ^ name)

let summary (label : string) ~(n : int) (r : Fix.fix_report)
    ~(checksum : float) ~(oracle_err : float) =
  Format.printf
    "%s: n=%d iters=%d converged=%b replans=%d switch_iters=[%s] \
     checksum=%.6f oracle_err=%.2e@."
    label n r.Fix.fr_iterations r.Fix.fr_converged r.Fix.fr_replans
    (String.concat "," (List.map string_of_int r.Fix.fr_switch_iters))
    checksum oracle_err

let iteration_detail (r : Fix.fix_report) =
  List.iteri
    (fun k (it : Fix.iter_stat) ->
      Format.printf "  iter %2d: %.4fs compiles=%d cse_hits=%d%s%s%s@."
        (k + 1) it.Fix.it_seconds it.Fix.it_compile_count it.Fix.it_cse_hits
        (match it.Fix.it_delta with
        | Some d -> Printf.sprintf " delta=%g" d
        | None -> "")
        (match it.Fix.it_nnz with
        | [] -> ""
        | l ->
            " nnz="
            ^ String.concat ","
                (List.map (fun (n, z) -> Printf.sprintf "%s:%d" n z) l))
        (if it.Fix.it_replanned then " [replanned]" else ""))
    r.Fix.fr_iters

let max_err_vec (t : T.t) (oracle : float array) : float =
  let err = ref 0.0 in
  Array.iteri
    (fun j v ->
      let got = T.get t [| j |] in
      let e =
        if Float.is_finite v || Float.is_finite got then Float.abs (got -. v)
        else 0.0 (* both infinite: Bellman's unreachable vertices agree *)
      in
      if e > !err then err := e)
    oracle;
  !err

let pagerank ~verbose () =
  let g = W.Graphs.erdos_renyi ~name:"pr" ~seed:41 ~n:500 ~m:3000 () in
  let inputs = I.pagerank_inputs g in
  let res, reports = I.run_fixpoint ~inputs (I.pagerank_source ()) in
  let r = List.hd reports in
  let out = find_output res "R" in
  let oracle =
    I.pagerank_reference
      ~m:(List.assoc "M" inputs)
      ~b:(List.assoc "B" inputs)
      ~r0:(List.assoc "R" inputs)
      ~iters:r.Fix.fr_iterations
  in
  summary "pagerank" ~n:g.W.Graphs.n r ~checksum:(I.checksum out)
    ~oracle_err:(max_err_vec out oracle);
  if verbose then iteration_detail r

let bellman ~verbose () =
  let g =
    W.Graphs.symmetrize
      (W.Graphs.power_law ~name:"bf" ~seed:42 ~n:400 ~m:1200 ~alpha:0.6 ())
  in
  let source = 0 in
  let inputs = I.bellman_inputs g ~source in
  let res, reports = I.run_fixpoint ~inputs (I.bellman_source ()) in
  let r = List.hd reports in
  let out = find_output res "D" in
  let oracle =
    I.bellman_reference
      ~w:(List.assoc "W" inputs)
      ~source ~iters:r.Fix.fr_iterations
  in
  summary "bellman_ford" ~n:g.W.Graphs.n r ~checksum:(I.checksum out)
    ~oracle_err:(max_err_vec out oracle);
  if verbose then iteration_detail r

let gcn ~verbose () =
  let g = W.Graphs.erdos_renyi ~name:"gcn" ~seed:43 ~n:300 ~m:2400 () in
  let layers = 3 in
  let inputs = I.gcn_inputs g ~features:16 in
  let res, reports = I.run_fixpoint ~inputs (I.gcn_source ~layers ()) in
  let r = List.hd reports in
  let out = find_output res "H" in
  let oracle =
    I.gcn_reference
      ~a:(List.assoc "A" inputs)
      ~h0:(List.assoc "H" inputs)
      ~w:(List.assoc "W" inputs)
      ~layers
  in
  let err = ref 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun f v ->
          let e = Float.abs (T.get out [| i; f |] -. v) in
          if e > !err then err := e)
        row)
    oracle;
  summary "gcn" ~n:g.W.Graphs.n r ~checksum:(I.checksum out) ~oracle_err:!err;
  if verbose then iteration_detail r

let reach ~verbose () =
  let g =
    W.Graphs.symmetrize
      (W.Graphs.power_law ~name:"reach" ~seed:44 ~n:4000 ~m:12000 ~alpha:0.7 ())
  in
  let source = 0 in
  let adjacency = W.Graphs.adjacency g in
  let inputs = I.reach_inputs g ~source in
  let res, reports = I.run_fixpoint ~inputs (I.reach_source ()) in
  let r = List.hd reports in
  let out = find_output res "V" in
  let visited = T.nnz out in
  let reference = W.Bfs.reference_visited ~adjacency ~source in
  summary "reach" ~n:g.W.Graphs.n r
    ~checksum:(float_of_int visited)
    ~oracle_err:(Float.abs (float_of_int (visited - reference)));
  if verbose then iteration_detail r

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let verbose = Array.exists (fun a -> a = "--verbose") Sys.argv in
  let all =
    [
      ("pagerank", pagerank); ("bellman", bellman); ("gcn", gcn);
      ("reach", reach);
    ]
  in
  match List.assoc_opt which all with
  | Some f -> f ~verbose ()
  | None ->
      if which <> "all" then (
        Format.eprintf "unknown workload %s (expected: all%s)@." which
          (String.concat ""
             (List.map (fun (n, _) -> ", " ^ n) all));
        exit 2)
      else List.iter (fun (_, f) -> f ~verbose ()) all
