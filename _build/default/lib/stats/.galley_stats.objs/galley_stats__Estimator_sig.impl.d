lib/stats/estimator_sig.ml: Format Galley_plan Galley_tensor Ir
