lib/stats/cost.ml:
