lib/stats/uniform.ml: Array Float Format Galley_plan Galley_tensor Ir List String
