lib/stats/ctx.ml: Array Canonical Chain Estimator_sig Galley_plan Galley_tensor Hashtbl Ir List Op Printf Schema String Uniform
