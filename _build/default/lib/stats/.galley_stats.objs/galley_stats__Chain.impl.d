lib/stats/chain.ml: Array Buffer Float Format Galley_plan Galley_tensor Hashtbl Ir List String
