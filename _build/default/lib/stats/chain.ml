(* Degree statistics and the chain bound (paper Sec. 7.3.2).

   A degree statistic D_A(X|Y) stores the maximum number of distinct
   non-fill X-coordinates conditioned on any fixed Y-coordinate.  Estimates
   are *upper bounds* computed as the cheapest product of degree weights
   along a path from the empty index set to the full index set
   (breadth-first search over the cardinality-estimation graph, after
   Chen et al. [13]). *)

open Galley_plan

type degree = { x : Ir.Idx_set.t; y : Ir.Idx_set.t; bound : float }

type t = {
  idxs : Ir.Idx_set.t;
  dims : int Ir.Idx_map.t;
  cons : degree list;
  empty : bool; (* true when the deviation set is known to be empty *)
}

let name = "chain"

let idxs t = t.idxs

(* Beyond this many index variables we stop enumerating all (X,Y) splits
   and fall back to singleton-X constraints. *)
let max_full_enum = 6

let dim_of t i =
  match Ir.Idx_map.find_opt i t.dims with
  | Some n -> float_of_int n
  | None -> invalid_arg ("Chain: unknown dim for index " ^ i)

let space_of (t : t) (s : Ir.Idx_set.t) : float =
  Ir.Idx_set.fold (fun i acc -> acc *. dim_of t i) s 1.0

(* Restricted split enumeration: X a singleton or everything-but-Y, with
   |Y| <= 2.  Used past [max_full_enum] indices and for large tensors. *)
let xy_pairs_restricted (idx_list : Ir.idx list) :
    (Ir.Idx_set.t * Ir.Idx_set.t) list =
  let full = Ir.Idx_set.of_list idx_list in
  let ys =
    Ir.Idx_set.empty
    :: List.concat_map
         (fun i ->
           Ir.Idx_set.singleton i
           :: List.filter_map
                (fun j ->
                  if i < j then Some (Ir.Idx_set.of_list [ i; j ]) else None)
                idx_list)
         idx_list
  in
  List.concat_map
    (fun y ->
      let rest = Ir.Idx_set.diff full y in
      let singles =
        List.filter_map
          (fun i ->
            if Ir.Idx_set.mem i rest then Some (Ir.Idx_set.singleton i, y)
            else None)
          idx_list
      in
      if Ir.Idx_set.is_empty rest then singles else (rest, y) :: singles)
    ys

(* All (X, Y) pairs of disjoint subsets of [idxs] with X non-empty.  When
   there are more than [max_full_enum] indices, restrict to |X| = 1 or
   X = everything-but-Y, with |Y| <= 2. *)
let xy_pairs (idx_list : Ir.idx list) : (Ir.Idx_set.t * Ir.Idx_set.t) list =
  let d = List.length idx_list in
  if d = 0 then []
  else if d <= max_full_enum then begin
    (* Ternary enumeration: each index goes to X, Y, or neither. *)
    let arr = Array.of_list idx_list in
    let acc = ref [] in
    let total = int_of_float (3.0 ** float_of_int d) in
    for code = 0 to total - 1 do
      let x = ref Ir.Idx_set.empty and y = ref Ir.Idx_set.empty in
      let c = ref code in
      for k = 0 to d - 1 do
        (match !c mod 3 with
        | 1 -> x := Ir.Idx_set.add arr.(k) !x
        | 2 -> y := Ir.Idx_set.add arr.(k) !y
        | _ -> ());
        c := !c / 3
      done;
      if not (Ir.Idx_set.is_empty !x) then acc := (!x, !y) :: !acc
    done;
    !acc
  end
  else xy_pairs_restricted idx_list

let of_tensor ?(cheap = false) tensor ~idxs:idx_list =
  let dims_arr = Galley_tensor.Tensor.dims tensor in
  if Array.length dims_arr <> List.length idx_list then
    invalid_arg "Chain.of_tensor: arity mismatch";
  let dims =
    List.fold_left
      (fun acc (k, i) -> Ir.Idx_map.add i dims_arr.(k) acc)
      Ir.Idx_map.empty
      (List.mapi (fun k i -> (k, i)) idx_list)
  in
  let full_set = Ir.Idx_set.of_list idx_list in
  let n_entries = Galley_tensor.Tensor.nnz tensor in
  (* The total count D(I|emptyset) is exactly the non-fill count: free. The
     remaining splits cost one traversal of all *explicit* slots each (dense
     levels store every position), so pick the split set by a work budget —
     large tensors (e.g. intermediates measured by JIT optimization, where
     mostly the *size* matters, paper Sec. 8.1) keep only cheap stats. *)
  let work_budget = if cheap then 40_000 else 400_000 in
  let pass_cost = max n_entries (Galley_tensor.Tensor.explicit_count tensor) in
  let candidate_pairs =
    let full = xy_pairs idx_list in
    if pass_cost * List.length full <= work_budget then full
    else begin
      let restricted = xy_pairs_restricted idx_list in
      if pass_cost * List.length restricted <= work_budget then restricted
      else if pass_cost * List.length idx_list <= 2 * work_budget then
        (* Per-dimension distinct counts only. *)
        List.map
          (fun i -> (Ir.Idx_set.singleton i, Ir.Idx_set.empty))
          idx_list
      else [] (* total count only: what JIT refresh needs (Sec. 8.1) *)
    end
  in
  let pairs =
    List.filter
      (fun (x, y) ->
        not (Ir.Idx_set.equal x full_set && Ir.Idx_set.is_empty y))
      candidate_pairs
  in
  let pos_of =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun k i -> Hashtbl.replace tbl i k) idx_list;
    fun i -> Hashtbl.find tbl i
  in
  let proj (ps : int array) (coords : int array) : string =
    let b = Buffer.create 16 in
    Array.iter
      (fun p ->
        Buffer.add_string b (string_of_int coords.(p));
        Buffer.add_char b ',')
      ps;
    Buffer.contents b
  in
  (* One streaming pass over the tensor updates every split's group table. *)
  let set_positions (s : Ir.Idx_set.t) : int array =
    Array.of_list (List.map pos_of (Ir.Idx_set.elements s))
  in
  let tables =
    List.map
      (fun (x, y) ->
        let groups : (string, (string, unit) Hashtbl.t) Hashtbl.t =
          Hashtbl.create 64
        in
        (x, y, set_positions x, set_positions y, groups))
      pairs
  in
  Galley_tensor.Tensor.iter_nonfill tensor (fun coords _ ->
      List.iter
        (fun (_, _, xp, yp, groups) ->
          let yk = proj yp coords in
          let xs =
            match Hashtbl.find_opt groups yk with
            | Some xs -> xs
            | None ->
                let xs = Hashtbl.create 8 in
                Hashtbl.add groups yk xs;
                xs
          in
          Hashtbl.replace xs (proj xp coords) ())
        tables);
  let cons =
    { x = full_set; y = Ir.Idx_set.empty; bound = float_of_int n_entries }
    :: List.map
         (fun (x, y, _, _, groups) ->
           let bound =
             Hashtbl.fold (fun _ xs acc -> max acc (Hashtbl.length xs)) groups 0
           in
           { x; y; bound = float_of_int bound })
         tables
  in
  let cons =
    if Ir.Idx_set.is_empty full_set then [] else cons
  in
  { idxs = full_set; dims; cons; empty = n_entries = 0 }

let of_literal _v =
  { idxs = Ir.Idx_set.empty; dims = Ir.Idx_map.empty; cons = []; empty = true }

let union_dims ~(dims : int Ir.Idx_map.t) (children : t list) :
    Ir.Idx_set.t * int Ir.Idx_map.t =
  let all =
    List.fold_left (fun acc c -> Ir.Idx_set.union acc c.idxs) Ir.Idx_set.empty
      children
  in
  let d =
    Ir.Idx_set.fold
      (fun i acc ->
        let n =
          match Ir.Idx_map.find_opt i dims with
          | Some n -> n
          | None -> (
              let rec find = function
                | [] -> invalid_arg ("Chain: unknown dim for " ^ i)
                | c :: rest -> (
                    match Ir.Idx_map.find_opt i c.dims with
                    | Some n -> n
                    | None -> find rest)
              in
              find children)
        in
        Ir.Idx_map.add i n acc)
      all Ir.Idx_map.empty
  in
  (all, d)

(* Tightest bound on the number of distinct [x]-coordinates of [c]'s
   deviation set, conditioned on [y], after cylindrically extending [c] to a
   larger index space.  Any constraint (X'|Y') with X' ⊆ x and Y' ⊆ y gives
   bound · Π_{k ∈ x∖X'} n_k; missing dims of the cylinder range freely. *)
let bound_for (c : t) ~(dims : int Ir.Idx_map.t) ~(x : Ir.Idx_set.t)
    ~(y : Ir.Idx_set.t) : float =
  if c.empty then 0.0
  else begin
    let dim i =
      match Ir.Idx_map.find_opt i dims with
      | Some n -> float_of_int n
      | None -> (
          match Ir.Idx_map.find_opt i c.dims with
          | Some n -> float_of_int n
          | None -> invalid_arg ("Chain.bound_for: unknown dim " ^ i))
    in
    let full_cyl = Ir.Idx_set.fold (fun i acc -> acc *. dim i) x 1.0 in
    List.fold_left
      (fun best d ->
        if Ir.Idx_set.subset d.x x && Ir.Idx_set.subset d.y y then begin
          let extra = Ir.Idx_set.diff x d.x in
          let b =
            d.bound *. Ir.Idx_set.fold (fun i acc -> acc *. dim i) extra 1.0
          in
          Float.min best b
        end
        else best)
      full_cyl c.cons
  end

(* Keep one constraint per (X, Y) pair — the tightest. *)
let dedupe_cons (cons : degree list) : degree list =
  let tbl = Hashtbl.create (2 * List.length cons) in
  List.iter
    (fun d ->
      let key =
        String.concat "," (Ir.Idx_set.elements d.x)
        ^ "|"
        ^ String.concat "," (Ir.Idx_set.elements d.y)
      in
      match Hashtbl.find_opt tbl key with
      | Some prev when prev.bound <= d.bound -> ()
      | _ -> Hashtbl.replace tbl key d)
    cons;
  Hashtbl.fold (fun _ d acc -> d :: acc) tbl []

let map_annihilating ~dims children =
  let all, d = union_dims ~dims children in
  let cons = dedupe_cons (List.concat_map (fun c -> c.cons) children) in
  { idxs = all; dims = d; cons; empty = List.exists (fun c -> c.empty) children }

let map_non_annihilating ~dims children =
  let all, d = union_dims ~dims children in
  let idx_list = Ir.Idx_set.elements all in
  let cons =
    List.map
      (fun (x, y) ->
        let bound =
          List.fold_left
            (fun acc c -> acc +. bound_for c ~dims:d ~x ~y)
            0.0 children
        in
        { x; y; bound })
      (xy_pairs idx_list)
  in
  { idxs = all; dims = d; cons; empty = List.for_all (fun c -> c.empty) children }

let aggregate ~dims:_ (c : t) ~over =
  let over_set = Ir.Idx_set.inter (Ir.Idx_set.of_list over) c.idxs in
  if Ir.Idx_set.is_empty over_set then c
  else begin
    let keep = Ir.Idx_set.diff c.idxs over_set in
    let cons =
      List.filter_map
        (fun d ->
          (* Conditioning on an aggregated index is meaningless afterwards;
             X may be projected (distinct counts only shrink). *)
          if not (Ir.Idx_set.is_empty (Ir.Idx_set.inter d.y over_set)) then None
          else
            let x' = Ir.Idx_set.diff d.x over_set in
            if Ir.Idx_set.is_empty x' then None
            else Some { d with x = x' })
        c.cons
    in
    let dims' = Ir.Idx_map.filter (fun i _ -> Ir.Idx_set.mem i keep) c.dims in
    { idxs = keep; dims = dims'; cons; empty = c.empty }
  end

(* Shortest weighted path from the empty set to the full index set, where an
   edge S -> S ∪ X with weight D(X|Y) exists whenever Y ⊆ S.  Implicit
   fallback edges S -> S ∪ {i} with weight n_i keep the graph connected. *)
let estimate (c : t) : float =
  if c.empty then 0.0
  else begin
    let idx_arr = Array.of_list (Ir.Idx_set.elements c.idxs) in
    let d = Array.length idx_arr in
    if d = 0 then 1.0
    else if d > 16 then space_of c c.idxs
    else begin
      let pos = Hashtbl.create 8 in
      Array.iteri (fun k i -> Hashtbl.replace pos i k) idx_arr;
      let set_to_mask (s : Ir.Idx_set.t) : int =
        Ir.Idx_set.fold (fun i m -> m lor (1 lsl Hashtbl.find pos i)) s 0
      in
      let full = (1 lsl d) - 1 in
      let dist = Array.make (full + 1) infinity in
      dist.(0) <- 1.0;
      (* Edges as (y_mask, x_mask, weight). *)
      let edges =
        List.map (fun dg -> (set_to_mask dg.y, set_to_mask dg.x, dg.bound)) c.cons
        @ List.init d (fun k -> (0, 1 lsl k, dim_of c idx_arr.(k)))
      in
      (* Bellman-Ford style relaxation: weights are multiplicative and
         >= 0; masks only grow, so |full|+1 rounds suffice. *)
      let changed = ref true in
      let rounds = ref 0 in
      while !changed && !rounds <= d + 1 do
        changed := false;
        incr rounds;
        for s = 0 to full do
          if dist.(s) < infinity then
            List.iter
              (fun (ym, xm, w) ->
                if ym land s = ym && xm land lnot s <> 0 then begin
                  let s' = s lor xm in
                  let nd = dist.(s) *. w in
                  if nd < dist.(s') then begin
                    dist.(s') <- nd;
                    changed := true
                  end
                end)
              edges
        done
      done;
      let bound = dist.(full) in
      if bound = infinity then space_of c c.idxs
      else Float.min bound (space_of c c.idxs)
    end
  end

let rename (c : t) (f : Ir.idx -> Ir.idx) : t =
  {
    idxs = Ir.Idx_set.map f c.idxs;
    dims =
      Ir.Idx_map.fold
        (fun i n acc -> Ir.Idx_map.add (f i) n acc)
        c.dims Ir.Idx_map.empty;
    cons =
      List.map
        (fun d -> { d with x = Ir.Idx_set.map f d.x; y = Ir.Idx_set.map f d.y })
        c.cons;
    empty = c.empty;
  }

let pp fmt (c : t) =
  Format.fprintf fmt "chain{[%s] %d degs est=%.3g}"
    (String.concat "," (Ir.Idx_set.elements c.idxs))
    (List.length c.cons) (estimate c)
