(* The minimal sparsity-statistics interface (paper Sec. 7.2).

   Implementing an estimator requires exactly five operations:
     1. a constructor from a materialized tensor            ([of_tensor]);
     2. a merge for annihilating Map nodes                  ([map_annihilating]);
     3. a merge for non-annihilating Map nodes              ([map_non_annihilating]);
     4. an adjustment for aggregation over a set of indices ([aggregate]);
     5. an estimation procedure for the non-fill count      ([estimate]).

   Throughout, "nnz" means the number of entries whose value differs from
   the tensor's fill value.  Estimates guide the optimizers only; they never
   affect correctness. *)

open Galley_plan

module type S = sig
  type t

  val name : string

  (* (1) Statistics of a materialized tensor accessed with index variables
     [idxs] (one per dimension, in storage order).  [cheap] limits the work
     to sizes and per-dimension counts: used by just-in-time refresh of
     intermediate statistics, which mainly needs sizes (paper Sec. 8.1). *)
  val of_tensor : ?cheap:bool -> Galley_tensor.Tensor.t -> idxs:Ir.idx list -> t

  (* Statistics of a scalar literal: zero deviation from its own fill. *)
  val of_literal : float -> t

  (* (2) Children's fill values are the annihilator of the Map operator:
     the output's non-fill set is the intersection of the children's. *)
  val map_annihilating : dims:int Ir.Idx_map.t -> t list -> t

  (* (3) Otherwise: the output's non-fill set is bounded by the (cylindrical
     extension of the) union of the children's. *)
  val map_non_annihilating : dims:int Ir.Idx_map.t -> t list -> t

  (* (4) Aggregation over [over]: projection of the non-fill index set. *)
  val aggregate : dims:int Ir.Idx_map.t -> t -> over:Ir.idx list -> t

  (* (5) Estimated number of non-fill entries. *)
  val estimate : t -> float

  (* Reindex statistics to new index-variable names (statistics are cached
     per tensor under canonical positional names and renamed per access). *)
  val rename : t -> (Ir.idx -> Ir.idx) -> t

  val idxs : t -> Ir.Idx_set.t
  val pp : Format.formatter -> t -> unit
end
