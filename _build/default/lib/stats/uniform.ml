(* The uniform estimator (paper Sec. 7.3.1): keeps only the non-fill count
   and assumes non-fill entries are uniformly distributed over the dimension
   space.  This is System-R's cardinality model with active domain = full
   dimension. *)

open Galley_plan

type t = {
  idxs : Ir.Idx_set.t;
  dims : int Ir.Idx_map.t; (* sizes of [idxs] *)
  nnz : float;
}

let name = "uniform"

let idxs t = t.idxs

let space_of (dims : int Ir.Idx_map.t) (s : Ir.Idx_set.t) : float =
  Ir.Idx_set.fold
    (fun i acc ->
      match Ir.Idx_map.find_opt i dims with
      | Some n -> acc *. float_of_int n
      | None -> invalid_arg ("Uniform: unknown dim for index " ^ i))
    s 1.0

let of_tensor ?cheap:_ tensor ~idxs:idx_list =
  let dims_arr = Galley_tensor.Tensor.dims tensor in
  if Array.length dims_arr <> List.length idx_list then
    invalid_arg "Uniform.of_tensor: arity mismatch";
  let dims =
    List.fold_left
      (fun acc (k, i) -> Ir.Idx_map.add i dims_arr.(k) acc)
      Ir.Idx_map.empty
      (List.mapi (fun k i -> (k, i)) idx_list)
  in
  {
    idxs = Ir.Idx_set.of_list idx_list;
    dims;
    nnz = float_of_int (Galley_tensor.Tensor.nnz tensor);
  }

let of_literal _v = { idxs = Ir.Idx_set.empty; dims = Ir.Idx_map.empty; nnz = 0.0 }

let union_dims ~(dims : int Ir.Idx_map.t) (children : t list) :
    Ir.Idx_set.t * int Ir.Idx_map.t =
  let all =
    List.fold_left (fun acc c -> Ir.Idx_set.union acc c.idxs) Ir.Idx_set.empty
      children
  in
  let d =
    Ir.Idx_set.fold
      (fun i acc ->
        let n =
          match Ir.Idx_map.find_opt i dims with
          | Some n -> n
          | None ->
              (* Fall back to any child that knows this index. *)
              let rec find = function
                | [] -> invalid_arg ("Uniform: unknown dim for " ^ i)
                | c :: rest -> (
                    match Ir.Idx_map.find_opt i c.dims with
                    | Some n -> n
                    | None -> find rest)
              in
              find children
        in
        Ir.Idx_map.add i n acc)
      all Ir.Idx_map.empty
  in
  (all, d)

(* Probability that a random point of a child's index subspace is non-fill. *)
let density (c : t) : float =
  let sp = space_of c.dims c.idxs in
  if sp <= 0.0 then 0.0 else Float.min 1.0 (c.nnz /. sp)

let map_annihilating ~dims children =
  let all, d = union_dims ~dims children in
  let out_space = space_of d all in
  let p = List.fold_left (fun acc c -> acc *. density c) 1.0 children in
  { idxs = all; dims = d; nnz = out_space *. p }

let map_non_annihilating ~dims children =
  let all, d = union_dims ~dims children in
  let out_space = space_of d all in
  let p_fill = List.fold_left (fun acc c -> acc *. (1.0 -. density c)) 1.0 children in
  { idxs = all; dims = d; nnz = out_space *. (1.0 -. p_fill) }

(* nnz(C) = (Π_{i ∈ I∖I'} n_i) · (1 − (1 − p)^(Π_{i ∈ I'} n_i)) *)
let aggregate ~dims:_ (c : t) ~over =
  let over_set = Ir.Idx_set.inter (Ir.Idx_set.of_list over) c.idxs in
  if Ir.Idx_set.is_empty over_set then c
  else begin
    let keep = Ir.Idx_set.diff c.idxs over_set in
    let keep_space = space_of c.dims keep in
    let over_space = space_of c.dims over_set in
    let p = density c in
    (* Numerically stable 1 - (1-p)^m. *)
    let p_any =
      if p >= 1.0 then 1.0
      else -.Float.expm1 (over_space *. Float.log1p (-.p))
    in
    let dims' =
      Ir.Idx_map.filter (fun i _ -> Ir.Idx_set.mem i keep) c.dims
    in
    { idxs = keep; dims = dims'; nnz = keep_space *. p_any }
  end

let estimate (c : t) : float = c.nnz

let rename (c : t) (f : Ir.idx -> Ir.idx) : t =
  {
    c with
    idxs = Ir.Idx_set.map f c.idxs;
    dims =
      Ir.Idx_map.fold
        (fun i n acc -> Ir.Idx_map.add (f i) n acc)
        c.dims Ir.Idx_map.empty;
  }

let pp fmt (c : t) =
  Format.fprintf fmt "uniform{[%s] nnz=%.3g}"
    (String.concat "," (Ir.Idx_set.elements c.idxs))
    c.nnz
