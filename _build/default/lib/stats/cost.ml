(* Cost models (paper Sec. 5.2, 6.1).

   Logical cost: [a * nnz(Agg) + b * nnz(MapExpr)] — materialization of the
   aggregate's output plus the compute proportional to the pointwise
   expression's non-fill entries.  The constants come from the paper's
   simple regression idea; their ratio (materialization is more expensive
   per entry than a fused FLOP) is what matters for plan choice.

   Physical loop-order cost: the sum over loop-nest levels of the estimated
   iteration count of each level (Example 6), plus a transposition cost
   linear in the size of every discordant input. *)

type weights = {
  agg_weight : float; (* cost per materialized output entry *)
  map_weight : float; (* cost per pointwise non-fill entry *)
  transpose_weight : float; (* cost per entry of a transposed input *)
}

let default_weights = { agg_weight = 10.0; map_weight = 1.0; transpose_weight = 5.0 }

(* Cost of one logical query: the body is the map expression, the output is
   the aggregate's result. *)
let logical_query_cost ?(weights = default_weights) ~(nnz_body : float)
    ~(nnz_out : float) () : float =
  (weights.agg_weight *. nnz_out) +. (weights.map_weight *. nnz_body)

let transpose_cost ?(weights = default_weights) ~(nnz : float) () : float =
  weights.transpose_weight *. nnz
