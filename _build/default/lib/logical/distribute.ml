(* Pointwise distributivity (paper Sec. 5.1, Example 3).

   Distributing products over sums can be asymptotically better (each term
   computable in time linear in the sparse factor) or worse (more terms), so
   the optimizer produces both the original and the distributed form and
   keeps the cheaper plan.

   The distributed form is obtained by (a) normalizing Square into an
   explicit self-product and Sub into Add-of-Neg, (b) hoisting Neg out of
   products, and (c) exhaustively expanding Map(f, [... Map(g, ts) ...])
   into Map(g, [Map(f, ...t...)]) when f distributes over g pointwise.
   Expansion is abandoned when the expression grows past a size cap. *)

open Galley_plan

let size_cap = 512

(* Square(e) -> Mul(e, e); Sub(a, b) -> Add(a, Neg b). *)
let rec normalize (e : Ir.expr) : Ir.expr =
  match e with
  | Ir.Input _ | Ir.Alias _ | Ir.Literal _ -> e
  | Ir.Map (Op.Square, [ a ]) ->
      let a = normalize a in
      Ir.Map (Op.Mul, [ a; a ])
  | Ir.Map (Op.Sub, [ a; b ]) ->
      Ir.Map (Op.Add, [ normalize a; Ir.Map (Op.Neg, [ normalize b ]) ])
  | Ir.Map (op, args) -> Ir.Map (op, List.map normalize args)
  | Ir.Agg (op, idxs, body) -> Ir.Agg (op, idxs, normalize body)

(* Hoist Neg out of products: Mul(..., Neg a, ...) -> [Neg] Mul(..., a, ...). *)
let rec hoist_neg (e : Ir.expr) : Ir.expr =
  match e with
  | Ir.Input _ | Ir.Alias _ | Ir.Literal _ -> e
  | Ir.Map (Op.Mul, args) ->
      let args = List.map hoist_neg args in
      let negs, stripped =
        List.fold_left_map
          (fun n a ->
            match a with Ir.Map (Op.Neg, [ x ]) -> (n + 1, x) | _ -> (n, a))
          0 args
      in
      let prod = Ir.Map (Op.Mul, stripped) in
      if negs mod 2 = 1 then Ir.Map (Op.Neg, [ prod ]) else prod
  | Ir.Map (op, args) -> Ir.Map (op, List.map hoist_neg args)
  | Ir.Agg (op, idxs, body) -> Ir.Agg (op, idxs, hoist_neg body)

exception Too_large

(* One outside-in expansion pass; raises [Too_large] past the size cap.
   Sub-expressions expand independently, so the per-step check alone cannot
   see global blowup: [expand] (the exported entry point below) re-checks
   the total size of the result. *)
let rec expand_rec (e : Ir.expr) : Ir.expr =
  if Ir.size e > size_cap then raise Too_large;
  match e with
  | Ir.Input _ | Ir.Alias _ | Ir.Literal _ -> e
  | Ir.Agg (op, idxs, body) -> Ir.Agg (op, idxs, expand_rec body)
  | Ir.Map (op, args) -> (
      let distributable a =
        match a with
        | Ir.Map (inner, _) when Op.pointwise_distributes ~outer:op ~inner ->
            true
        | _ -> false
      in
      let numbered = List.mapi (fun k a -> (k, a)) args in
      match List.find_opt (fun (_, a) -> distributable a) numbered with
      | None -> Ir.Map (op, List.map expand_rec args)
      | Some (pos, target) ->
          let inner_op, terms =
            match target with
            | Ir.Map (inner, terms) -> (inner, terms)
            | _ -> assert false
          in
          let rest =
            List.filter_map (fun (k, a) -> if k = pos then None else Some a) numbered
          in
          let expanded =
            Ir.Map (inner_op, List.map (fun t -> Ir.Map (op, t :: rest)) terms)
          in
          if Ir.size expanded > size_cap then raise Too_large;
          expand_rec expanded)

(* Full expansion with a global size check. *)
let expand (e : Ir.expr) : Ir.expr =
  let e' = expand_rec e in
  if Ir.size e' > size_cap then raise Too_large;
  e'

(* The fully distributed variant of [e], if it stays within the size cap and
   actually differs from the canonicalized original. *)
let distributed_variant (schema : Schema.t) (e : Ir.expr) : Ir.expr option =
  match expand (hoist_neg (normalize e)) with
  | exception Too_large -> None
  | e' ->
      let e' = Canonical.canonicalize schema e' in
      if e' = e then None else Some e'
