lib/logical/elimination.ml: Galley_plan Ir List Logical_query Op Schema
