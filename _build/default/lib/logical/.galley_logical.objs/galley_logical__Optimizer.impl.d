lib/logical/optimizer.ml: Array Canonical Distribute Elimination Galley_plan Galley_stats Hashtbl Ir List Logical_query Op Printf Schema String
