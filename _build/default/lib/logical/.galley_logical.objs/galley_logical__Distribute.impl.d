lib/logical/distribute.ml: Canonical Galley_plan Ir List Op Schema
