lib/lang/parser.ml: Galley_plan Ir Lexer List Op Printf
