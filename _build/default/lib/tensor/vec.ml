(* Growable vectors specialized for the tensor substrate.  OCaml 5.1's stdlib
   has no [Dynarray]; these are the minimal flavours we need: unboxed float
   payloads, int coordinates, and a polymorphic variant for node children. *)

module Float = struct
  type t = { mutable data : float array; mutable len : int }

  let create ?(capacity = 8) () =
    { data = Array.make (max capacity 1) 0.0; len = 0 }

  let length v = v.len

  let ensure v n =
    if n > Array.length v.data then begin
      let cap = ref (Array.length v.data) in
      while !cap < n do
        cap := !cap * 2
      done;
      let data = Array.make !cap 0.0 in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end

  let push v x =
    ensure v (v.len + 1);
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i =
    assert (i >= 0 && i < v.len);
    v.data.(i)

  let set v i x =
    assert (i >= 0 && i < v.len);
    v.data.(i) <- x

  let to_array v = Array.sub v.data 0 v.len

  let clear v = v.len <- 0
end

module Int = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(capacity = 8) () =
    { data = Array.make (max capacity 1) 0; len = 0 }

  let length v = v.len

  let ensure v n =
    if n > Array.length v.data then begin
      let cap = ref (Array.length v.data) in
      while !cap < n do
        cap := !cap * 2
      done;
      let data = Array.make !cap 0 in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end

  let push v x =
    ensure v (v.len + 1);
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i =
    assert (i >= 0 && i < v.len);
    v.data.(i)

  let set v i x =
    assert (i >= 0 && i < v.len);
    v.data.(i) <- x

  let last v =
    assert (v.len > 0);
    v.data.(v.len - 1)

  let to_array v = Array.sub v.data 0 v.len

  let clear v = v.len <- 0
end

module Poly = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create ?(capacity = 8) ~dummy () =
    { data = Array.make (max capacity 1) dummy; len = 0; dummy }

  let length v = v.len

  let ensure v n =
    if n > Array.length v.data then begin
      let cap = ref (Array.length v.data) in
      while !cap < n do
        cap := !cap * 2
      done;
      let data = Array.make !cap v.dummy in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end

  let push v x =
    ensure v (v.len + 1);
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i =
    assert (i >= 0 && i < v.len);
    v.data.(i)

  let set v i x =
    assert (i >= 0 && i < v.len);
    v.data.(i) <- x

  let to_array v = Array.sub v.data 0 v.len
end
