(* Deterministic splitmix64 PRNG.  All synthetic data in the repository is
   generated through this module so that every experiment is reproducible
   bit-for-bit, independent of the stdlib [Random] implementation. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(* Uniform float in [0, 1). *)
let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

(* Uniform float in [lo, hi). *)
let float_range t lo hi = lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Standard normal via Box-Muller. *)
let gaussian t =
  let u1 = max 1e-12 (float t) in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(* Zipf-like skewed integer in [0, bound): index i drawn with probability
   proportional to 1/(i+1)^alpha, via rejection-free inverse-CDF on a
   precomputed table would be heavy, so we use the classic approximation
   x = floor(bound * u^(1/(1-alpha))) for alpha < 1, clamped. *)
let skewed t ~alpha bound =
  assert (bound > 0);
  if alpha <= 0.0 then int t bound
  else begin
    let u = max 1e-12 (float t) in
    let x =
      if alpha >= 0.999 then
        (* near alpha=1: exponential-ish tail *)
        int_of_float (float_of_int bound ** u) - 1
      else int_of_float (float_of_int bound *. (u ** (1.0 /. (1.0 -. alpha))))
    in
    let x = if x < 0 then 0 else x in
    if x >= bound then bound - 1 else x
  end

(* Fisher-Yates shuffle in place. *)
let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Sample [k] distinct ints from [0, bound) (k <= bound). *)
let sample_distinct t ~k bound =
  assert (k <= bound);
  if k * 3 >= bound then begin
    let all = Array.init bound (fun i -> i) in
    shuffle t all;
    Array.sub all 0 k
  end
  else begin
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let x = int t bound in
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        out.(!filled) <- x;
        incr filled
      end
    done;
    out
  end
