(* Plain-text COO serialization for tensors.

   Format:
     # dims: 3 4
     # fill: 0
     # formats: dense sparse
     0 1 2.5
     2 3 1
   Lines starting with '#' carry metadata; every other non-empty line is a
   coordinate tuple followed by the value. *)

let format_of_string = function
  | "dense" -> Tensor.Dense
  | "sparse" -> Tensor.Sparse_list
  | "bytemap" -> Tensor.Bytemap
  | "hash" -> Tensor.Hash
  | s -> invalid_arg ("Tensor_io: unknown format " ^ s)

let split_ws (s : string) : string list =
  String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let load (path : string) : Tensor.t =
  let ic = open_in path in
  let dims = ref None and fill = ref 0.0 and formats = ref None in
  let entries = Vec.Poly.create ~dummy:([||], 0.0) () in
  (try
     let rec loop () =
       let line = String.trim (input_line ic) in
       (if line = "" then ()
        else if String.length line > 0 && line.[0] = '#' then begin
          let body = String.trim (String.sub line 1 (String.length line - 1)) in
          match String.index_opt body ':' with
          | Some k ->
              let key = String.trim (String.sub body 0 k) in
              let value =
                String.trim (String.sub body (k + 1) (String.length body - k - 1))
              in
              (match key with
              | "dims" ->
                  dims :=
                    Some (Array.of_list (List.map int_of_string (split_ws value)))
              | "fill" -> fill := float_of_string value
              | "formats" ->
                  formats :=
                    Some
                      (Array.of_list (List.map format_of_string (split_ws value)))
              | _ -> ())
          | None -> ()
        end
        else
          match List.rev (split_ws line) with
          | v :: coords_rev ->
              let coords =
                Array.of_list (List.rev_map int_of_string coords_rev)
              in
              Vec.Poly.push entries (coords, float_of_string v)
          | [] -> ());
       loop ()
     in
     loop ()
   with End_of_file -> close_in ic);
  let dims =
    match !dims with
    | Some d -> d
    | None -> invalid_arg (path ^ ": missing '# dims:' header")
  in
  let formats =
    match !formats with
    | Some f -> f
    | None ->
        (* Default: dense outer dimension, sparse inner ones. *)
        Array.init (Array.length dims) (fun k ->
            if k = 0 then Tensor.Dense else Tensor.Sparse_list)
  in
  Tensor.of_coo ~fill:!fill ~dims ~formats (Vec.Poly.to_array entries)

let save (path : string) (t : Tensor.t) : unit =
  let oc = open_out path in
  let dims = Tensor.dims t in
  Printf.fprintf oc "# dims: %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int dims)));
  Printf.fprintf oc "# fill: %.17g\n" (Tensor.fill t);
  Printf.fprintf oc "# formats: %s\n"
    (String.concat " "
       (Array.to_list (Array.map Tensor.format_to_string (Tensor.formats t))));
  Tensor.iter_nonfill t (fun coords v ->
      Printf.fprintf oc "%s %.17g\n"
        (String.concat " " (Array.to_list (Array.map string_of_int coords)))
        v);
  close_out oc
