lib/tensor/tensor.mli: Bytes Format Hashtbl Prng
