lib/tensor/builder.ml: Array Bytes Hashtbl Tensor Vec
