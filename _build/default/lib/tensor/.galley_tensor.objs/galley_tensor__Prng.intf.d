lib/tensor/prng.mli:
