lib/tensor/tensor_io.ml: Array List Printf String Tensor Vec
