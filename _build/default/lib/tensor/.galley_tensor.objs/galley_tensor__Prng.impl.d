lib/tensor/prng.ml: Array Float Hashtbl Int64
