lib/tensor/tensor.ml: Array Bytes Format Hashtbl Prng String Vec
