lib/tensor/vec.ml: Array
