(** Deterministic splitmix64 PRNG.

    All synthetic data in the repository is generated through this module,
    so every experiment is reproducible bit-for-bit, independent of the
    stdlib [Random] implementation. *)

type t

(** Create a generator from an integer seed. *)
val create : int -> t

(** Independent copy with the same state. *)
val copy : t -> t

val next_int64 : t -> int64

(** Uniform int in [[0, bound)]. *)
val int : t -> int -> int

(** Uniform float in [[0, 1)]. *)
val float : t -> float

(** Uniform float in [[lo, hi)]. *)
val float_range : t -> float -> float -> float

val bool : t -> bool

(** Standard normal (Box–Muller). *)
val gaussian : t -> float

(** Zipf-like skewed integer in [[0, bound)]: small indices are much more
    likely; [alpha] in [[0, 1)] controls the skew (0 = uniform). *)
val skewed : t -> alpha:float -> int -> int

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [k] distinct integers sampled from [[0, bound)]. *)
val sample_distinct : t -> k:int -> int -> int array
