(* Per-loop-level iteration constraints.

   For a loop index [x], the set of candidate positions that can produce a
   non-fill value of the kernel body is described by an and/or tree over the
   accesses that bind [x]:

   - a Map whose operator has annihilator [a], with at least one child whose
     fill is [a], deviates from its fill only where *every* such child
     deviates: an AND over those children (children with other fills are
     unconstrained);
   - any other Map deviates only where *some* child deviates: an OR;
   - an access that does not bind [x] is cylindrical in [x] (C_all);
   - a literal never deviates (C_empty).

   The tree always describes a *superset* of the true non-fill positions, so
   it affects performance, never correctness.  The physical optimizer uses
   the tree to assign access protocols (who leads an intersection); the
   engine evaluates it at every loop level. *)

open Galley_plan

type t =
  | C_all
  | C_empty
  | C_access of int
  | C_and of t list
  | C_or of t list

(* Fill value of each pexpr node, bottom-up. *)
let rec pexpr_fill (accesses_fill : int -> float) (e : Physical.pexpr) : float
    =
  match e with
  | Physical.P_access a -> accesses_fill a
  | Physical.P_literal v -> v
  | Physical.P_map (op, args) ->
      Op.apply op
        (Array.of_list (List.map (pexpr_fill accesses_fill) args))

let simplify_and (cs : t list) : t =
  let cs = List.filter (fun c -> c <> C_all) cs in
  if List.exists (fun c -> c = C_empty) cs then C_empty
  else
    match cs with [] -> C_all | [ c ] -> c | cs -> C_and cs

let simplify_or (cs : t list) : t =
  let cs = List.filter (fun c -> c <> C_empty) cs in
  if List.exists (fun c -> c = C_all) cs then C_all
  else match cs with [] -> C_empty | [ c ] -> c | cs -> C_or cs

let derive ~(accesses : Physical.access array) ~(fills : int -> float)
    ~(idx : Ir.idx) (body : Physical.pexpr) : t =
  let rec go (e : Physical.pexpr) : t =
    match e with
    | Physical.P_access a ->
        if List.mem idx accesses.(a).Physical.idxs then C_access a else C_all
    | Physical.P_literal _ -> C_empty
    | Physical.P_map (op, args) -> (
        match Op.annihilator op with
        | Some ann
          when List.exists (fun c -> pexpr_fill fills c = ann) args ->
            simplify_and
              (List.filter_map
                 (fun c ->
                   if pexpr_fill fills c = ann then Some (go c) else None)
                 args)
        | _ -> simplify_or (List.map go args))
  in
  go body

(* Accesses appearing as direct members of a top-level AND (including the
   singleton case): the candidates for a leader / probe protocol split. *)
let and_members (c : t) : int list =
  match c with
  | C_access a -> [ a ]
  | C_and cs ->
      List.filter_map (fun c -> match c with C_access a -> Some a | _ -> None) cs
  | C_all | C_empty | C_or _ -> []

(* Accesses mentioned anywhere in the tree. *)
let rec all_accesses (c : t) : int list =
  match c with
  | C_access a -> [ a ]
  | C_and cs | C_or cs -> List.concat_map all_accesses cs
  | C_all | C_empty -> []

let rec pp fmt (c : t) =
  match c with
  | C_all -> Format.pp_print_string fmt "all"
  | C_empty -> Format.pp_print_string fmt "empty"
  | C_access a -> Format.fprintf fmt "a%d" a
  | C_and cs ->
      Format.fprintf fmt "and(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
           pp)
        cs
  | C_or cs ->
      Format.fprintf fmt "or(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
           pp)
        cs
