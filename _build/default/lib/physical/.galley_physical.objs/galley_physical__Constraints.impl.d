lib/physical/constraints.ml: Array Format Galley_plan Ir List Op Physical
