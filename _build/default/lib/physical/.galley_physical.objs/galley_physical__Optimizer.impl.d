lib/physical/optimizer.ml: Array Constraints Float Galley_plan Galley_stats Galley_tensor Hashtbl Ir List Logical_query Op Option Physical Schema String
