lib/plan/schema.ml: Array Galley_tensor Hashtbl Ir List Op Printf
