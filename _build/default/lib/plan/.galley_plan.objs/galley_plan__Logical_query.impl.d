lib/plan/logical_query.ml: Format Hashtbl Ir List Op Printf String
