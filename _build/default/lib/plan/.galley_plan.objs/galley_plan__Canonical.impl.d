lib/plan/canonical.ml: Array Hashtbl Ir List Op Printf Schema String
