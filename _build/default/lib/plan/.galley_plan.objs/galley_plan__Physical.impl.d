lib/plan/physical.ml: Array Buffer Format Galley_tensor Hashtbl Ir List Op Printf String
