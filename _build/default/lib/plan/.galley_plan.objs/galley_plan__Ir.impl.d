lib/plan/ir.ml: Format List Map Op Printf Set String
