lib/plan/op.ml: Array Float Format List Printf
