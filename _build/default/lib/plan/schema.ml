(* Schema environment: what the optimizer knows about every named tensor
   (inputs and aliases) — dimension sizes and fill values — plus the
   per-index dimension sizes inferred from how tensors are accessed.

   The same tensor may be accessed with different index variables at
   different places (e.g. [E[i,j]] and [E[j,k]] in triangle counting); the
   index environment checks that every variable is bound to a single
   consistent size. *)

type info = { dims : int array; fill : float }

type t = { tensors : (string, info) Hashtbl.t }

let create () = { tensors = Hashtbl.create 16 }

let declare t name ~dims ~fill =
  Hashtbl.replace t.tensors name { dims; fill }

let declare_tensor t name (tensor : Galley_tensor.Tensor.t) =
  declare t name ~dims:(Galley_tensor.Tensor.dims tensor)
    ~fill:(Galley_tensor.Tensor.fill tensor)

let find t name = Hashtbl.find_opt t.tensors name

let info_exn t name =
  match find t name with
  | Some i -> i
  | None -> invalid_arg ("Schema: unknown tensor " ^ name)

let fill_of t name = (info_exn t name).fill
let dims_of t name = (info_exn t name).dims

let copy t = { tensors = Hashtbl.copy t.tensors }

(* Infer the dimension size of every index variable used in [e], checking
   consistency across accesses. *)
let index_dims (t : t) (e : Ir.expr) : int Ir.Idx_map.t =
  let bind acc idx n =
    match Ir.Idx_map.find_opt idx acc with
    | Some m when m <> n ->
        invalid_arg
          (Printf.sprintf "Schema: index %s bound to both %d and %d" idx m n)
    | _ -> Ir.Idx_map.add idx n acc
  in
  let rec go acc (e : Ir.expr) =
    match e with
    | Ir.Input (name, idxs) | Ir.Alias (name, idxs) ->
        let info = info_exn t name in
        if Array.length info.dims <> List.length idxs then
          invalid_arg
            (Printf.sprintf "Schema: %s accessed with %d indices but has %d"
               name (List.length idxs)
               (Array.length info.dims));
        List.fold_left
          (fun acc (k, idx) -> bind acc idx info.dims.(k))
          acc
          (List.mapi (fun k idx -> (k, idx)) idxs)
    | Ir.Literal _ -> acc
    | Ir.Map (_, args) -> List.fold_left go acc args
    | Ir.Agg (_, _, body) -> go acc body
  in
  go Ir.Idx_map.empty e

let dim_of_idx (dims : int Ir.Idx_map.t) (i : Ir.idx) : int =
  match Ir.Idx_map.find_opt i dims with
  | Some n -> n
  | None -> invalid_arg ("Schema: index with unknown dimension " ^ i)

let space (dims : int Ir.Idx_map.t) (idxs : Ir.idx list) : float =
  List.fold_left (fun acc i -> acc *. float_of_int (dim_of_idx dims i)) 1.0 idxs

(* Fill value of the tensor denoted by [e]: evaluate the expression with
   every leaf at its fill.  Aggregates fold the fill of their body over the
   whole aggregated subspace via the repeated-application function g. *)
let expr_fill (t : t) (dims : int Ir.Idx_map.t) (e : Ir.expr) : float =
  let rec go (e : Ir.expr) : float =
    match e with
    | Ir.Input (name, _) | Ir.Alias (name, _) -> fill_of t name
    | Ir.Literal v -> v
    | Ir.Map (op, args) -> Op.apply op (Array.of_list (List.map go args))
    | Ir.Agg (op, idxs, body) ->
        let n = int_of_float (space dims idxs) in
        Op.repeat op (go body) n
  in
  go e

(* Register the alias produced by a query: its output dims follow from the
   free indices of its expression (sorted index-name order for a bare
   expression; callers that fix an output order should use [declare]). *)
let declare_query_output (t : t) (q : Ir.query) ~(output_idxs : Ir.idx list) :
    unit =
  let dims = index_dims t q.expr in
  let out_dims =
    Array.of_list (List.map (fun i -> dim_of_idx dims i) output_idxs)
  in
  let fill = expr_fill t dims q.expr in
  declare t q.name ~dims:out_dims ~fill
