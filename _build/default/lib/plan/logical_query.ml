(* The logical dialect (paper Sec. 4.1): each query is a single aggregate
   wrapping an Agg-free pointwise expression.  Element-wise queries use the
   no-op aggregate [Op.Ident] with an empty index list. *)

type t = {
  name : string;
  agg_op : Op.t;
  agg_idxs : Ir.idx list;
  body : Ir.expr; (* contains no Agg nodes *)
  output_idxs : Ir.idx list; (* free indices of the query, fixed order *)
}

let validate (q : t) : unit =
  if Ir.contains_agg q.body then
    invalid_arg ("Logical_query: body of " ^ q.name ^ " contains an aggregate");
  if not (Op.is_aggregate q.agg_op) then
    invalid_arg ("Logical_query: bad aggregate op in " ^ q.name);
  let free = Ir.free_indices q.body in
  let out = Ir.Idx_set.diff free (Ir.Idx_set.of_list q.agg_idxs) in
  if not (Ir.Idx_set.equal out (Ir.Idx_set.of_list q.output_idxs)) then
    invalid_arg
      (Printf.sprintf "Logical_query %s: output indices {%s} /= free {%s}"
         q.name
         (String.concat "," q.output_idxs)
         (String.concat "," (Ir.Idx_set.elements out)))

(* Free indices in order of first occurrence in a left-to-right traversal:
   the default output order of intermediates.  This tends to match the
   storage order of the inputs (and hence concordant loop orders), avoiding
   gratuitous transposes. *)
let occurrence_order (body : Ir.expr) ~(excluding : Ir.idx list) : Ir.idx list
    =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let visit idxs =
    List.iter
      (fun i ->
        if (not (Hashtbl.mem seen i)) && not (List.mem i excluding) then begin
          Hashtbl.add seen i ();
          out := i :: !out
        end)
      idxs
  in
  let rec go (e : Ir.expr) =
    match e with
    | Ir.Input (_, idxs) | Ir.Alias (_, idxs) -> visit idxs
    | Ir.Literal _ -> ()
    | Ir.Map (_, args) -> List.iter go args
    | Ir.Agg (_, _, b) -> go b
  in
  go body;
  List.rev !out

let make ?output_idxs ~name ~agg_op ~agg_idxs ~body () : t =
  let output_idxs =
    match output_idxs with
    | Some idxs -> idxs
    | None -> occurrence_order body ~excluding:agg_idxs
  in
  let q = { name; agg_op; agg_idxs; body; output_idxs } in
  validate q;
  q

(* View a logical query back as a generic IR query. *)
let to_query (q : t) : Ir.query =
  let expr =
    if q.agg_idxs = [] && q.agg_op = Op.Ident then q.body
    else Ir.Agg (q.agg_op, q.agg_idxs, q.body)
  in
  { Ir.name = q.name; expr; out_order = Some q.output_idxs }

(* Convert an IR query already in logical shape. *)
let of_query (q : Ir.query) : t option =
  match q.expr with
  | Ir.Agg (op, idxs, body) when not (Ir.contains_agg body) ->
      Some (make ?output_idxs:q.out_order ~name:q.name ~agg_op:op ~agg_idxs:idxs ~body ())
  | e when not (Ir.contains_agg e) ->
      Some (make ?output_idxs:q.out_order ~name:q.name ~agg_op:Op.Ident ~agg_idxs:[] ~body:e ())
  | _ -> None

let pp fmt (q : t) =
  Format.fprintf fmt "@[<hov 2>Query(%s,@ Agg(%s,@ [%a],@ %a))@ -> [%a]@]"
    q.name (Op.to_string q.agg_op) Ir.pp_idx_list q.agg_idxs Ir.pp_expr q.body
    Ir.pp_idx_list q.output_idxs

let to_string q = Format.asprintf "%a" pp q
