(* The physical dialect (paper Sec. 4.2): fully determined kernels.

   Each logical query becomes one or more physical steps: optional
   [Transpose] steps that permute inputs whose stored index order is not
   concordant with the chosen loop order, followed by one [Kernel] step
   that fixes the loop order, the output format for every output dimension,
   and an access protocol (iterate / lookup) for every index of every
   input. *)

type protocol = Iterate | Lookup

let protocol_to_string = function Iterate -> "it" | Lookup -> "lu"

type access = {
  tensor : string;
  kind : [ `Input | `Alias ];
  idxs : Ir.idx list; (* in the tensor's stored dimension order *)
  protocols : protocol list; (* parallel to [idxs] *)
}

(* Pointwise expression over numbered accesses. *)
type pexpr =
  | P_access of int (* position in [accesses] *)
  | P_literal of float
  | P_map of Op.t * pexpr list

type kernel = {
  name : string;
  loop_order : Ir.idx list;
  agg_op : Op.t; (* [Op.Ident] for a pure map *)
  agg_idxs : Ir.idx list;
  output_idxs : Ir.idx list; (* subsequence of [loop_order] *)
  output_dims : int array;
  output_formats : Galley_tensor.Tensor.format array;
  loop_dims : int array; (* size of each loop index, parallel to loop_order *)
  body : pexpr;
  accesses : access array;
  body_fill : float; (* body evaluated at every leaf's fill *)
  output_fill : float; (* = g(body_fill, agg-space) *)
  agg_space : float; (* product of aggregated dimension sizes *)
}

type step =
  | Kernel of kernel
  | Transpose of {
      name : string; (* result name *)
      source : string;
      source_kind : [ `Input | `Alias ];
      perm : int array;
      formats : Galley_tensor.Tensor.format array;
    }

type plan = step list

(* ------------------------------------------------------------------ *)
(* Validation.                                                          *)
(* ------------------------------------------------------------------ *)

let is_subsequence (sub : 'a list) (full : 'a list) : bool =
  let rec go sub full =
    match (sub, full) with
    | [], _ -> true
    | _, [] -> false
    | s :: sub', f :: full' -> if s = f then go sub' full' else go sub full'
  in
  go sub full

let validate_kernel (k : kernel) : unit =
  let loop_set = Ir.Idx_set.of_list k.loop_order in
  if List.length k.loop_order <> Ir.Idx_set.cardinal loop_set then
    invalid_arg ("Physical: duplicate loop index in " ^ k.name);
  if not (is_subsequence k.output_idxs k.loop_order) then
    invalid_arg ("Physical: output indices not concordant with loops in " ^ k.name);
  Array.iter
    (fun (a : access) ->
      if not (is_subsequence a.idxs k.loop_order) then
        invalid_arg
          (Printf.sprintf
             "Physical: access %s[%s] not concordant with loop order [%s] in %s"
             a.tensor (String.concat "," a.idxs)
             (String.concat "," k.loop_order)
             k.name);
      if List.length a.protocols <> List.length a.idxs then
        invalid_arg ("Physical: protocol arity mismatch on " ^ a.tensor))
    k.accesses;
  List.iter
    (fun i ->
      if not (Ir.Idx_set.mem i loop_set) then
        invalid_arg ("Physical: aggregate index not in loop order: " ^ i))
    k.agg_idxs

(* ------------------------------------------------------------------ *)
(* Kernel signatures: the cache key for "compilation" (paper Sec. 9,      *)
(* Fig. 9).  Structure, formats, and protocols matter; names do not.     *)
(* ------------------------------------------------------------------ *)

let signature (k : kernel) ~(access_formats : Galley_tensor.Tensor.format array array) : string =
  let buf = Buffer.create 128 in
  (* Canonical index numbering by loop position. *)
  let pos = Hashtbl.create 8 in
  List.iteri (fun p i -> Hashtbl.replace pos i p) k.loop_order;
  let idx_id i =
    match Hashtbl.find_opt pos i with Some p -> string_of_int p | None -> "?"
  in
  Buffer.add_string buf (Op.to_string k.agg_op);
  Buffer.add_char buf '|';
  Buffer.add_string buf (String.concat "," (List.map idx_id k.agg_idxs));
  Buffer.add_char buf '|';
  Buffer.add_string buf (String.concat "," (List.map idx_id k.output_idxs));
  Buffer.add_char buf '|';
  Array.iter
    (fun f ->
      Buffer.add_string buf (Galley_tensor.Tensor.format_to_string f);
      Buffer.add_char buf ',')
    k.output_formats;
  Buffer.add_char buf '|';
  let rec pe (e : pexpr) =
    match e with
    | P_access a ->
        let acc = k.accesses.(a) in
        Buffer.add_char buf 'a';
        Buffer.add_string buf (string_of_int a);
        Buffer.add_char buf '[';
        List.iteri
          (fun p i ->
            Buffer.add_string buf (idx_id i);
            Buffer.add_char buf ':';
            Buffer.add_string buf
              (protocol_to_string (List.nth acc.protocols p));
            Buffer.add_char buf ':';
            Buffer.add_string buf
              (Galley_tensor.Tensor.format_to_string access_formats.(a).(p));
            Buffer.add_char buf ';')
          acc.idxs;
        Buffer.add_char buf ']'
    | P_literal v ->
        Buffer.add_char buf 'l';
        Buffer.add_string buf (Printf.sprintf "%h" v)
    | P_map (op, args) ->
        Buffer.add_string buf (Op.to_string op);
        Buffer.add_char buf '(';
        List.iter
          (fun a ->
            pe a;
            Buffer.add_char buf ',')
          args;
        Buffer.add_char buf ')'
  in
  pe k.body;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Pretty printing.                                                     *)
(* ------------------------------------------------------------------ *)

let rec pp_pexpr (accesses : access array) fmt (e : pexpr) =
  match e with
  | P_access a ->
      let acc = accesses.(a) in
      Format.fprintf fmt "%s[%s]" acc.tensor
        (String.concat ","
           (List.map2
              (fun i p -> Printf.sprintf "%s::%s" i (protocol_to_string p))
              acc.idxs acc.protocols))
  | P_literal v -> Format.fprintf fmt "%g" v
  | P_map (op, args) ->
      Format.fprintf fmt "@[<hov 2>Map(%s,@ %a)@]" (Op.to_string op)
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
           (pp_pexpr accesses))
        args

let pp_kernel fmt (k : kernel) =
  Format.fprintf fmt
    "@[<v 2>Kernel %s:@,loops: %s@,agg: %s[%s]@,out: [%s] formats [%s]@,body: %a@]"
    k.name
    (String.concat " " k.loop_order)
    (Op.to_string k.agg_op)
    (String.concat "," k.agg_idxs)
    (String.concat "," k.output_idxs)
    (String.concat ","
       (Array.to_list
          (Array.map Galley_tensor.Tensor.format_to_string k.output_formats)))
    (pp_pexpr k.accesses) k.body

let pp_step fmt = function
  | Kernel k -> pp_kernel fmt k
  | Transpose t ->
      Format.fprintf fmt "Transpose %s <- %s perm [%s] formats [%s]" t.name
        t.source
        (String.concat ","
           (Array.to_list (Array.map string_of_int t.perm)))
        (String.concat ","
           (Array.to_list
              (Array.map Galley_tensor.Tensor.format_to_string t.formats)))

let pp_plan fmt (p : plan) =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_step)
    p

let plan_to_string p = Format.asprintf "%a" pp_plan p
