(* The operator algebra (paper Sec. 3.1, 5.4).

   Galley supports arbitrary functions for both pointwise operations and
   aggregates; what the optimizer needs from each operator is a small set of
   algebraic facts: identity, annihilator, commutativity, distributivity over
   aggregate operators, idempotence, and the repeated-application function
   [g(x, n) = f(x, ..., x)] used to fold fill values into aggregates.

   Booleans are encoded as floats with truthiness [x <> 0]; comparison and
   logical operators return 0.0 / 1.0. *)

type t =
  (* variadic, commutative, associative *)
  | Add
  | Mul
  | Max
  | Min
  | Or
  | And
  (* binary, non-commutative *)
  | Sub
  | Div
  | Pow
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq
  (* unary *)
  | Sigmoid
  | Relu
  | Exp
  | Log
  | Sqrt
  | Abs
  | Neg
  | Sign
  | Square
  (* unary identity; also the "no-op" aggregate of the logical dialect *)
  | Ident

let to_string = function
  | Add -> "+"
  | Mul -> "*"
  | Max -> "max"
  | Min -> "min"
  | Or -> "or"
  | And -> "and"
  | Sub -> "-"
  | Div -> "/"
  | Pow -> "^"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="
  | Sigmoid -> "sigmoid"
  | Relu -> "relu"
  | Exp -> "exp"
  | Log -> "log"
  | Sqrt -> "sqrt"
  | Abs -> "abs"
  | Neg -> "neg"
  | Sign -> "sign"
  | Square -> "sq"
  | Ident -> "id"

let pp fmt op = Format.pp_print_string fmt (to_string op)

let of_string s =
  let all =
    [
      Add; Mul; Max; Min; Or; And; Sub; Div; Pow; Eq; Neq; Lt; Leq; Gt; Geq;
      Sigmoid; Relu; Exp; Log; Sqrt; Abs; Neg; Sign; Square; Ident;
    ]
  in
  match List.find_opt (fun op -> to_string op = s) all with
  | Some op -> op
  | None -> invalid_arg ("Op.of_string: unknown operator " ^ s)

type arity = Unary | Binary | Variadic

let arity = function
  | Add | Mul | Max | Min | Or | And -> Variadic
  | Sub | Div | Pow | Eq | Neq | Lt | Leq | Gt | Geq -> Binary
  | Sigmoid | Relu | Exp | Log | Sqrt | Abs | Neg | Sign | Square | Ident ->
      Unary

let is_commutative op = arity op = Variadic
let is_associative op = arity op = Variadic

(* Identity element: [f(x, identity) = x].  This is also the initial value of
   an aggregate accumulator. *)
let identity = function
  | Add | Or -> Some 0.0
  | Mul | And -> Some 1.0
  | Max -> Some neg_infinity
  | Min -> Some infinity
  | Sub -> Some 0.0 (* right identity only *)
  | Div | Pow -> Some 1.0 (* right identity only *)
  | Ident -> None
  | Eq | Neq | Lt | Leq | Gt | Geq -> None
  | Sigmoid | Relu | Exp | Log | Sqrt | Abs | Neg | Sign | Square -> None

(* Annihilator: [f(..., a, ...) = a].  A Map node is *annihilating* when all
   of its children's fill values equal the annihilator of its operator
   (paper Sec. 7.2): then any fill input forces a fill output, and iteration
   is an intersection. *)
let annihilator = function
  | Mul | And -> Some 0.0
  | Or -> Some 1.0
  | Max -> Some infinity
  | Min -> Some neg_infinity
  | Add | Sub | Div | Pow | Eq | Neq | Lt | Leq | Gt | Geq | Sigmoid | Relu
  | Exp | Log | Sqrt | Abs | Neg | Sign | Square | Ident ->
      None

let truthy x = x <> 0.0
let bool_float b = if b then 1.0 else 0.0

let apply2 op a b =
  match op with
  | Add -> a +. b
  | Mul -> a *. b
  | Max -> Float.max a b
  | Min -> Float.min a b
  | Or -> bool_float (truthy a || truthy b)
  | And -> bool_float (truthy a && truthy b)
  | Sub -> a -. b
  | Div -> a /. b
  | Pow -> a ** b
  | Eq -> bool_float (a = b)
  | Neq -> bool_float (a <> b)
  | Lt -> bool_float (a < b)
  | Leq -> bool_float (a <= b)
  | Gt -> bool_float (a > b)
  | Geq -> bool_float (a >= b)
  | Sigmoid | Relu | Exp | Log | Sqrt | Abs | Neg | Sign | Square | Ident ->
      invalid_arg ("Op.apply2: unary operator " ^ to_string op)

let apply1 op a =
  match op with
  | Sigmoid -> 1.0 /. (1.0 +. exp (-.a))
  | Relu -> Float.max 0.0 a
  | Exp -> exp a
  | Log -> log a
  | Sqrt -> sqrt a
  | Abs -> abs_float a
  | Neg -> -.a
  | Sign -> if a > 0.0 then 1.0 else if a < 0.0 then -1.0 else 0.0
  | Square -> a *. a
  | Ident -> a
  | Add | Mul | Max | Min | Or | And -> a (* variadic over a singleton *)
  | Sub | Div | Pow | Eq | Neq | Lt | Leq | Gt | Geq ->
      invalid_arg ("Op.apply1: binary operator " ^ to_string op)

let apply op (args : float array) : float =
  match (arity op, Array.length args) with
  | Unary, 1 -> apply1 op args.(0)
  | Binary, 2 -> apply2 op args.(0) args.(1)
  | Variadic, 0 -> (
      match identity op with
      | Some e -> e
      | None -> invalid_arg "Op.apply: empty application")
  | Variadic, _ ->
      let acc = ref args.(0) in
      for i = 1 to Array.length args - 1 do
        acc := apply2 op !acc args.(i)
      done;
      !acc
  | _ ->
      invalid_arg
        (Printf.sprintf "Op.apply: %s applied to %d arguments" (to_string op)
           (Array.length args))

(* ------------------------------------------------------------------ *)
(* Aggregate-operator algebra.                                          *)
(* ------------------------------------------------------------------ *)

(* Operators usable as aggregates (commutative monoids, plus the no-op). *)
let is_aggregate = function
  | Add | Mul | Max | Min | Or | And | Ident -> true
  | _ -> false

let is_idempotent = function
  | Max | Min | Or | And -> true
  | _ -> false

(* Repeated application g(x, n) = f(x, ..., x) (n copies), paper Sec 5.4.
   Used to account for aggregate contributions of fill entries. *)
let repeat op (x : float) (n : int) : float =
  if n <= 0 then
    match identity op with
    | Some e -> e
    | None -> invalid_arg ("Op.repeat: no identity for " ^ to_string op)
  else
    match op with
    | Add -> x *. float_of_int n
    | Mul -> x ** float_of_int n
    | Max | Min -> x
    (* Or/And normalize to 0/1 on application, so g(x, n>=1) does too. *)
    | Or | And -> bool_float (truthy x)
    | Ident -> x
    | _ -> invalid_arg ("Op.repeat: not an aggregate: " ^ to_string op)

(* Does pointwise operator [f] distribute over aggregate operator [g], i.e.
   f(a, g(b1..bn)) = g(f(a,b1) .. f(a,bn))?  Conservative table: we only
   declare algebraically unconditional pairs (e.g. Mul over Max holds only
   for non-negative multipliers, so it is excluded). *)
let distributes_over ~(pointwise : t) ~(aggregate : t) : bool =
  match (pointwise, aggregate) with
  | Mul, Add -> true
  | And, Or -> true
  | Add, Max | Add, Min -> true
  | Max, Max | Min, Min | Or, Or | And, And -> true
  | Neg, Add -> true (* -(Σx) = Σ(-x) *)
  | _ -> false

(* Does pointwise [f] distribute over pointwise [g], i.e.
   f(g(a,b), c) = g(f(a,c), f(b,c))?  Used by the logical optimizer's
   pointwise-distributivity expansion (paper Sec. 5.1, Example 3). *)
let pointwise_distributes ~(outer : t) ~(inner : t) : bool =
  match (outer, inner) with
  | Mul, Add | Mul, Sub -> true
  | And, Or -> true
  | _ -> false

(* Do two aggregate operators commute: agg_f over i of agg_g over j equals
   agg_g over j of agg_f over i?  True when identical (and commutative
   associative); Max/Min commute with each other as well. *)
let aggregates_commute a b =
  if not (is_aggregate a && is_aggregate b) then false
  else if a = b then true
  else
    match (a, b) with
    | Ident, _ | _, Ident -> true
    | Max, Min | Min, Max -> false
    | Max, Or | Or, Max -> false
    | _ -> false

(* Monotone-increasing unary functions commute with Max/Min aggregation;
   used nowhere critical but exposed for the physical optimizer's sanity
   checks. *)
let is_monotone_unary = function
  | Sigmoid | Relu | Exp | Sqrt | Ident -> true
  | _ -> false
