(* TPC-H-like synthetic data for the ML-over-joins experiments (paper
   Sec. 9.1).

   The star query joins the lineitems tensor L[i,s,p,o,c] (one non-zero per
   lineitem) with per-entity feature matrices whose columns occupy disjoint
   ranges of a shared feature axis j (numeric features plus one-hot encoded
   categoricals; 139 features in total, as in the paper):

       X[i,j] = Σ_{s,p,o,c} L[i,s,p,o,c] · (S[s,j] + P[p,j] + O[o,j] + C[c,j])

   The self-join query compares lineitems sharing a part:

       X[i1,i2,j] = Σ_{s1,s2,p} L3[i1,s1,p] · L3[i2,s2,p]
                                · (S[s1,j] + S[s2,j] + P[p,j])         *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
open Galley_plan

type scale = {
  n_lineitems : int;
  n_suppliers : int;
  n_parts : int;
  n_orders : int;
  n_customers : int;
}

let default_scale =
  {
    n_lineitems = 20000;
    n_suppliers = 400;
    n_parts = 1000;
    n_orders = 3000;
    n_customers = 600;
  }

let small_scale =
  {
    n_lineitems = 400;
    n_suppliers = 20;
    n_parts = 40;
    n_orders = 60;
    n_customers = 30;
  }

(* Small enough for the brute-force reference evaluator. *)
let tiny_scale =
  {
    n_lineitems = 30;
    n_suppliers = 5;
    n_parts = 6;
    n_orders = 7;
    n_customers = 5;
  }

(* Feature layout per entity table: (numeric columns, one-hot categories).
   Totals 139 feature columns, matching the paper's star schema. *)
let feature_layout =
  [
    ("S", 4, [ 5; 10 ]); (* supplier: 4 numeric + 15 one-hot = 19 *)
    ("P", 6, [ 25; 8 ]); (* part: 6 numeric + 33 one-hot = 39 *)
    ("O", 5, [ 12; 20 ]); (* orders: 5 numeric + 32 one-hot = 37 *)
    ("C", 7, [ 30; 7 ]); (* customer: 7 numeric + 37 one-hot = 44 *)
  ]

(* Minimal layout for brute-force-checked correctness tests. *)
let tiny_layout =
  [ ("S", 1, [ 2 ]); ("P", 1, [ 3 ]); ("O", 1, [ 2 ]); ("C", 1, [ 2 ]) ]

let features_of layout =
  List.fold_left
    (fun acc (_, numeric, cats) -> acc + numeric + List.fold_left ( + ) 0 cats)
    0 layout

let total_features = features_of feature_layout

(* Feature matrix of one entity table: rows are entities, columns live in
   [col_lo, col_lo + width) of the shared feature axis. *)
let feature_matrix prng ~rows ~col_lo ~numeric ~cats ~d : T.t * int =
  let entries = ref [] in
  let width = numeric + List.fold_left ( + ) 0 cats in
  for r = 0 to rows - 1 do
    for f = 0 to numeric - 1 do
      entries := ([| r; col_lo + f |], Prng.float_range prng 0.1 1.0) :: !entries
    done;
    let off = ref (col_lo + numeric) in
    List.iter
      (fun card ->
        let choice = Prng.int prng card in
        entries := ([| r; !off + choice |], 1.0) :: !entries;
        off := !off + card)
      cats
  done;
  ( T.of_coo ~dims:[| rows; d |]
      ~formats:[| T.Dense; T.Sparse_list |]
      (Array.of_list !entries),
    col_lo + width )

type star = {
  inputs : (string * T.t) list; (* L, S, P, O, C *)
  x_def : Ir.expr; (* the composite definition of X[i,j] *)
  n : int; (* data points (lineitems) *)
  d : int; (* features *)
}

let star_instance ?(scale = default_scale) ?(layout = feature_layout) ~seed
    () : star =
  let prng = Prng.create seed in
  let d = features_of layout in
  let sc = scale in
  (* Lineitems: one (s,p,o,c) combination per lineitem, skewed on parts. *)
  let l_entries =
    Array.init sc.n_lineitems (fun i ->
        let s = Prng.int prng sc.n_suppliers in
        let p = Prng.skewed prng ~alpha:0.4 sc.n_parts in
        let o = Prng.int prng sc.n_orders in
        let c = Prng.int prng sc.n_customers in
        ([| i; s; p; o; c |], 1.0))
  in
  let l =
    T.of_coo
      ~dims:
        [| sc.n_lineitems; sc.n_suppliers; sc.n_parts; sc.n_orders; sc.n_customers |]
      ~formats:[| T.Dense; T.Sparse_list; T.Sparse_list; T.Sparse_list; T.Sparse_list |]
      l_entries
  in
  let col = ref 0 in
  let mats =
    List.map
      (fun (name, numeric, cats) ->
        let rows =
          match name with
          | "S" -> sc.n_suppliers
          | "P" -> sc.n_parts
          | "O" -> sc.n_orders
          | "C" -> sc.n_customers
          | _ -> assert false
        in
        let m, col' = feature_matrix prng ~rows ~col_lo:!col ~numeric ~cats ~d in
        col := col';
        (name, m))
      layout
  in
  let x_def =
    Ir.sum [ "s"; "p"; "o"; "c" ]
      (Ir.mul
         [
           Ir.input "L" [ "i"; "s"; "p"; "o"; "c" ];
           Ir.add
             [
               Ir.input "S" [ "s"; "j" ];
               Ir.input "P" [ "p"; "j" ];
               Ir.input "O" [ "o"; "j" ];
               Ir.input "C" [ "c"; "j" ];
             ];
         ])
  in
  { inputs = ("L", l) :: mats; x_def; n = sc.n_lineitems; d }

type self_join = {
  sj_inputs : (string * T.t) list; (* L3, S, P *)
  sj_x_def : Ir.expr; (* X[i1,i2,j] *)
  sj_n : int;
  sj_d : int;
}

let self_join_instance ?(scale = default_scale) ?(s_layout = (4, [ 5; 10 ]))
    ?(p_layout = (6, [ 25; 8 ])) ~seed () : self_join =
  let prng = Prng.create seed in
  let sc = scale in
  let width (numeric, cats) = numeric + List.fold_left ( + ) 0 cats in
  let d_s = width s_layout and d_p = width p_layout in
  let d = d_s + d_p in
  let l_entries =
    Array.init sc.n_lineitems (fun i ->
        let s = Prng.int prng sc.n_suppliers in
        let p = Prng.skewed prng ~alpha:0.4 sc.n_parts in
        ([| i; s; p |], 1.0))
  in
  let l3 =
    T.of_coo
      ~dims:[| sc.n_lineitems; sc.n_suppliers; sc.n_parts |]
      ~formats:[| T.Dense; T.Sparse_list; T.Sparse_list |]
      l_entries
  in
  let s_numeric, s_cats = s_layout and p_numeric, p_cats = p_layout in
  let s_mat, _ =
    feature_matrix prng ~rows:sc.n_suppliers ~col_lo:0 ~numeric:s_numeric
      ~cats:s_cats ~d
  in
  let p_mat, _ =
    feature_matrix prng ~rows:sc.n_parts ~col_lo:d_s ~numeric:p_numeric
      ~cats:p_cats ~d
  in
  let sj_x_def =
    Ir.sum [ "s1"; "s2"; "p" ]
      (Ir.mul
         [
           Ir.input "L3" [ "i1"; "s1"; "p" ];
           Ir.input "L3" [ "i2"; "s2"; "p" ];
           Ir.add
             [
               Ir.input "S" [ "s1"; "j" ];
               Ir.input "S" [ "s2"; "j" ];
               Ir.input "P" [ "p"; "j" ];
             ];
         ])
  in
  {
    sj_inputs = [ ("L3", l3); ("S", s_mat); ("P", p_mat) ];
    sj_x_def;
    sj_n = sc.n_lineitems;
    sj_d = d;
  }
