(* Deterministic random-graph generators standing in for the G-Care and
   "In-Memory Subgraph Matching" benchmark graphs (DESIGN.md Sec. 2).

   Two families:
   - Erdős–Rényi: m edges uniform over n² pairs (low skew, like `yeast`);
   - power-law: endpoint sampled with a Zipf-like distribution (high skew,
     like `youtube`/`dblp` crawls).

   Graphs carry optional vertex labels (for labelled subgraph queries) and
   are materialized as sparse boolean adjacency tensors. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng

type t = {
  name : string;
  n : int; (* vertices *)
  edges : (int * int) array; (* directed edge list, deduplicated *)
  labels : int array; (* vertex label ids; [| |] when unlabelled *)
  n_labels : int;
}

let edge_count (g : t) = Array.length g.edges

let dedup_edges (edges : (int * int) list) : (int * int) array =
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun (u, v) -> if u <> v then Hashtbl.replace seen (u, v) ())
    edges;
  let out = Array.make (Hashtbl.length seen) (0, 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun e () ->
      out.(!i) <- e;
      incr i)
    seen;
  Array.sort compare out;
  out

let assign_labels prng n n_labels =
  if n_labels <= 1 then [||] else Array.init n (fun _ -> Prng.int prng n_labels)

let erdos_renyi ?(name = "er") ?(n_labels = 1) ~seed ~n ~m () : t =
  let prng = Prng.create seed in
  let edges = ref [] in
  for _ = 1 to m do
    let u = Prng.int prng n and v = Prng.int prng n in
    edges := (u, v) :: !edges
  done;
  {
    name;
    n;
    edges = dedup_edges !edges;
    labels = assign_labels prng n n_labels;
    n_labels = max 1 n_labels;
  }

let power_law ?(name = "pl") ?(n_labels = 1) ?(alpha = 0.75) ~seed ~n ~m () : t
    =
  let prng = Prng.create seed in
  (* Random vertex permutation so that hubs are spread over the id space. *)
  let ids = Array.init n (fun i -> i) in
  Prng.shuffle prng ids;
  let edges = ref [] in
  for _ = 1 to m do
    let u = ids.(Prng.skewed prng ~alpha n) in
    let v = ids.(Prng.skewed prng ~alpha n) in
    edges := (u, v) :: !edges
  done;
  {
    name;
    n;
    edges = dedup_edges !edges;
    labels = assign_labels prng n n_labels;
    n_labels = max 1 n_labels;
  }

(* Make the edge relation symmetric (undirected view). *)
let symmetrize (g : t) : t =
  let both =
    Array.to_list g.edges @ List.map (fun (u, v) -> (v, u)) (Array.to_list g.edges)
  in
  { g with edges = dedup_edges both }

(* Adjacency matrix as a sparse boolean tensor. *)
let adjacency ?(formats = [| T.Dense; T.Sparse_list |]) (g : t) : T.t =
  let entries =
    Array.map (fun (u, v) -> ([| u; v |], 1.0)) g.edges
  in
  T.of_coo ~dims:[| g.n; g.n |] ~formats entries

(* Indicator vector of the vertices with label [l]. *)
let label_vector ?(formats = [| T.Sparse_list |]) (g : t) (l : int) : T.t =
  let entries =
    Array.of_list
      (List.filter_map
         (fun v -> if g.labels.(v) = l then Some ([| v |], 1.0) else None)
         (List.init g.n (fun v -> v)))
  in
  T.of_coo ~dims:[| g.n |] ~formats entries

(* Scaled-down stand-ins for the paper's benchmark graph families:
   name, generator kind, vertices, edges, labels. *)
let benchmark_suite ~(scale : float) : t list =
  let s x = max 20 (int_of_float (float_of_int x *. scale)) in
  [
    symmetrize
      (erdos_renyi ~name:"aids" ~seed:101 ~n:(s 2000) ~m:(s 4000) ~n_labels:8 ());
    symmetrize
      (power_law ~name:"human" ~seed:102 ~n:(s 1000) ~m:(s 8000) ~n_labels:12
         ~alpha:0.55 ());
    symmetrize
      (erdos_renyi ~name:"yeast" ~seed:103 ~n:(s 3000) ~m:(s 6000) ~n_labels:16 ());
    symmetrize
      (power_law ~name:"dblp_lite" ~seed:104 ~n:(s 5000) ~m:(s 15000)
         ~n_labels:1 ~alpha:0.7 ());
    symmetrize
      (power_law ~name:"youtube_lite" ~seed:105 ~n:(s 8000) ~m:(s 24000)
         ~n_labels:1 ~alpha:0.8 ());
  ]

(* Graphs for the BFS experiment (Fig. 10): a spread of sizes and skews. *)
let bfs_suite ~(scale : float) : t list =
  let s x = max 20 (int_of_float (float_of_int x *. scale)) in
  [
    symmetrize (erdos_renyi ~name:"er_sparse" ~seed:201 ~n:(s 20000) ~m:(s 40000) ());
    symmetrize (erdos_renyi ~name:"er_dense" ~seed:202 ~n:(s 4000) ~m:(s 60000) ());
    symmetrize (power_law ~name:"pl_hub" ~seed:203 ~n:(s 20000) ~m:(s 60000) ~alpha:0.8 ());
    symmetrize (power_law ~name:"pl_mild" ~seed:204 ~n:(s 10000) ~m:(s 30000) ~alpha:0.5 ());
    symmetrize (erdos_renyi ~name:"er_chain" ~seed:205 ~n:(s 30000) ~m:(s 33000) ());
  ]
