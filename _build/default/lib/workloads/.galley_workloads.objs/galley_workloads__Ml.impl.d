lib/workloads/ml.ml: Array Galley_physical Galley_plan Galley_tensor Ir Logical_query Op
