lib/workloads/bfs.ml: Array Galley Galley_physical Galley_plan Galley_tensor Ir Logical_query Op Queue Unix
