lib/workloads/tpch.ml: Array Galley_plan Galley_tensor Ir List
