lib/workloads/graphs.ml: Array Galley_tensor Hashtbl List
