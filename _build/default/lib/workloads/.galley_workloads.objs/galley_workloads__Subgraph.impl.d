lib/workloads/subgraph.ml: Array Galley_plan Galley_tensor Graphs Hashtbl Ir List Printf
