(* Machine-learning algorithms over join-structured feature matrices
   (paper Sec. 9.1, Fig. 6), in two flavours:

   - [fused_*]: the composite definition of X is inlined into the algorithm,
     so Galley's logical optimizer can push computation into the join;
   - [baseline_*]: a hand-written logical plan that first materializes X
     (in a caller-chosen format, via the physical format override) and then
     runs a fixed kernel — the shape of the paper's hand-coded Finch
     baselines, executed on the same engine. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
open Galley_plan

type algorithm = Linreg | Logreg | Covariance | Nn

let algorithm_name = function
  | Linreg -> "linreg"
  | Logreg -> "logreg"
  | Covariance -> "covariance"
  | Nn -> "nn"

let all_algorithms = [ Linreg; Logreg; Covariance; Nn ]

(* Model parameters: θ for the regressions, W1/w2 for the 2-layer net. *)
let parameter_inputs ~seed ~(d : int) ~(hidden : int) : (string * T.t) list =
  let prng = Prng.create seed in
  let dense1 n =
    T.of_fun ~dims:[| n |] ~formats:[| T.Dense |] (fun _ ->
        Prng.float_range prng (-0.5) 0.5)
  in
  let dense2 m n =
    T.of_fun ~dims:[| m; n |] ~formats:[| T.Dense; T.Dense |] (fun _ ->
        Prng.float_range prng (-0.3) 0.3)
  in
  [ ("theta", dense1 d); ("W1", dense2 d hidden); ("w2", dense1 hidden) ]

(* ------------------------------------------------------------------ *)
(* Programs over a feature matrix given by definition [x] with point
   indices [pts] (["i"] for the star query, ["i1";"i2"] for the self join)
   and feature index "j".                                              *)
(* ------------------------------------------------------------------ *)

let feature_expr (x : Ir.expr) : Ir.expr = x

(* Rename the feature index of a second copy of X from "j" to [k]. *)
let x_with_feature (x : Ir.expr) (k : Ir.idx) : Ir.expr =
  Ir.rename_indices (Ir.Idx_map.singleton "j" k) x

let program_of (alg : algorithm) ~(x : Ir.expr) ~(pts : Ir.idx list) :
    Ir.program =
  match alg with
  | Linreg ->
      let q =
        Ir.query ~out_order:pts "Y"
          (Ir.sum [ "j" ] (Ir.mul [ feature_expr x; Ir.input "theta" [ "j" ] ]))
      in
      { Ir.queries = [ q ]; outputs = [ "Y" ] }
  | Logreg ->
      let q =
        Ir.query ~out_order:pts "Prob"
          (Ir.map Op.Sigmoid
             [ Ir.sum [ "j" ] (Ir.mul [ feature_expr x; Ir.input "theta" [ "j" ] ]) ])
      in
      { Ir.queries = [ q ]; outputs = [ "Prob" ] }
  | Covariance ->
      let q =
        Ir.query ~out_order:[ "j"; "k" ] "Cov"
          (Ir.sum pts
             (Ir.mul [ feature_expr x; x_with_feature x "k" ]))
      in
      { Ir.queries = [ q ]; outputs = [ "Cov" ] }
  | Nn ->
      let h =
        Ir.query
          ~out_order:(pts @ [ "k" ])
          "H"
          (Ir.map Op.Relu
             [ Ir.sum [ "j" ] (Ir.mul [ feature_expr x; Ir.input "W1" [ "j"; "k" ] ]) ])
      in
      let out =
        Ir.query ~out_order:pts "Out"
          (Ir.map Op.Sigmoid
             [
               Ir.sum [ "k" ]
                 (Ir.mul
                    [ Ir.input "H" (pts @ [ "k" ]); Ir.input "w2" [ "k" ] ]);
             ])
      in
      { Ir.queries = [ h; out ]; outputs = [ "Out" ] }

(* ------------------------------------------------------------------ *)
(* Hand-written baseline plans: materialize X, then fixed kernels.      *)
(* ------------------------------------------------------------------ *)

(* X as one logical query (a single kernel: loop over the join tensor and
   accumulate feature rows), exactly what a hand-written implementation
   does.  [x] must be Agg over an aggregate-free body. *)
let x_query ~(x : Ir.expr) ~(pts : Ir.idx list) : Logical_query.t =
  match x with
  | Ir.Agg (op, idxs, body) ->
      Logical_query.make
        ~output_idxs:(pts @ [ "j" ])
        ~name:"X" ~agg_op:op ~agg_idxs:idxs ~body ()
  | body ->
      Logical_query.make
        ~output_idxs:(pts @ [ "j" ])
        ~name:"X" ~agg_op:Op.Ident ~agg_idxs:[] ~body ()

let baseline_plan (alg : algorithm) ~(x : Ir.expr) ~(pts : Ir.idx list) :
    Logical_query.t list * string =
  let xq = x_query ~x ~pts in
  let x_access = Ir.alias "X" (pts @ [ "j" ]) in
  match alg with
  | Linreg ->
      ( [
          xq;
          Logical_query.make ~output_idxs:pts ~name:"Y" ~agg_op:Op.Add
            ~agg_idxs:[ "j" ]
            ~body:(Ir.mul [ x_access; Ir.input "theta" [ "j" ] ])
            ();
        ],
        "Y" )
  | Logreg ->
      ( [
          xq;
          Logical_query.make ~output_idxs:pts ~name:"Z" ~agg_op:Op.Add
            ~agg_idxs:[ "j" ]
            ~body:(Ir.mul [ x_access; Ir.input "theta" [ "j" ] ])
            ();
          Logical_query.make ~output_idxs:pts ~name:"Prob" ~agg_op:Op.Ident
            ~agg_idxs:[]
            ~body:(Ir.map Op.Sigmoid [ Ir.alias "Z" pts ])
            ();
        ],
        "Prob" )
  | Covariance ->
      ( [
          xq;
          Logical_query.make ~output_idxs:[ "j"; "k" ] ~name:"Cov"
            ~agg_op:Op.Add ~agg_idxs:pts
            ~body:(Ir.mul [ x_access; Ir.alias "X" (pts @ [ "k" ]) ])
            ();
        ],
        "Cov" )
  | Nn ->
      ( [
          xq;
          Logical_query.make
            ~output_idxs:(pts @ [ "k" ])
            ~name:"Z" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
            ~body:(Ir.mul [ x_access; Ir.input "W1" [ "j"; "k" ] ])
            ();
          Logical_query.make
            ~output_idxs:(pts @ [ "k" ])
            ~name:"H" ~agg_op:Op.Ident ~agg_idxs:[]
            ~body:(Ir.map Op.Relu [ Ir.alias "Z" (pts @ [ "k" ]) ])
            ();
          Logical_query.make ~output_idxs:pts ~name:"O2" ~agg_op:Op.Add
            ~agg_idxs:[ "k" ]
            ~body:(Ir.mul [ Ir.alias "H" (pts @ [ "k" ]); Ir.input "w2" [ "k" ] ])
            ();
          Logical_query.make ~output_idxs:pts ~name:"Out" ~agg_op:Op.Ident
            ~agg_idxs:[]
            ~body:(Ir.map Op.Sigmoid [ Ir.alias "O2" pts ])
            ();
        ],
        "Out" )

(* Physical configuration pinning X's materialization format. *)
let baseline_physical_config ~(pts : int) ~(dense : bool) :
    Galley_physical.Optimizer.config =
  let formats =
    if dense then Array.make (pts + 1) T.Dense
    else Array.append (Array.make pts T.Dense) [| T.Sparse_list |]
  in
  {
    Galley_physical.Optimizer.default_config with
    format_override = (fun name -> if name = "X" then Some formats else None);
  }
