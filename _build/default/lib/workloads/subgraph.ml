(* Subgraph counting as sparse tensor algebra (paper Sec. 9.2):

     c = Σ_{v_i ∈ V}  Π_{(v_i, v_j) ∈ E}  M[v_i, v_j]  ·  Π_labels  L_l[v_i]

   Query graphs come in suites mimicking the G-Care benchmark and the
   "In-Memory Subgraph Matching" study, restricted to ≤ 8 pattern vertices
   (the paper's "_lite" restriction). *)

module T = Galley_tensor.Tensor
open Galley_plan

type pattern = {
  pname : string;
  vertices : int;
  pedges : (int * int) list; (* pattern edges over vertex ids 0..vertices-1 *)
  plabels : (int * int) list; (* (pattern vertex, required label) *)
}

let var v = Printf.sprintf "v%d" v

(* The tensor-index-notation program counting [p] in a graph bound to
   adjacency input "M" and label inputs "L<l>". *)
let count_program (p : pattern) : Ir.program =
  let factors =
    List.map
      (fun (u, v) -> Ir.input "M" [ var u; var v ])
      p.pedges
    @ List.map (fun (v, l) -> Ir.input (Printf.sprintf "L%d" l) [ var v ]) p.plabels
  in
  let body = match factors with [ f ] -> f | fs -> Ir.mul fs in
  let idxs = List.init p.vertices var in
  let q = Ir.query "count" (Ir.sum idxs body) in
  { Ir.queries = [ q ]; outputs = [ "count" ] }

(* Input bindings for a pattern over a graph. *)
let bindings (g : Graphs.t) (p : pattern) : (string * T.t) list =
  let adj = Graphs.adjacency g in
  ("M", adj)
  :: List.filter_map
       (fun l ->
         if l < g.Graphs.n_labels then
           Some (Printf.sprintf "L%d" l, Graphs.label_vector g l)
         else None)
       (List.sort_uniq compare (List.map snd p.plabels))

(* ------------------------------------------------------------------ *)
(* Query suites.                                                        *)
(* ------------------------------------------------------------------ *)

let path n =
  {
    pname = Printf.sprintf "path%d" n;
    vertices = n;
    pedges = List.init (n - 1) (fun i -> (i, i + 1));
    plabels = [];
  }

let cycle n =
  {
    pname = Printf.sprintf "cycle%d" n;
    vertices = n;
    pedges = List.init n (fun i -> (i, (i + 1) mod n));
    plabels = [];
  }

let star n =
  {
    pname = Printf.sprintf "star%d" n;
    vertices = n + 1;
    pedges = List.init n (fun i -> (0, i + 1));
    plabels = [];
  }

let clique n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && i < j then edges := (i, j) :: (j, i) :: !edges
    done
  done;
  {
    pname = Printf.sprintf "clique%d" n;
    vertices = n;
    pedges = !edges;
    plabels = [];
  }

let triangle = { (cycle 3) with pname = "triangle" }

(* Triangle with a pendant edge ("tailed triangle"). *)
let tailed_triangle =
  { pname = "tailed_tri"; vertices = 4; pedges = [ (0, 1); (1, 2); (2, 0); (2, 3) ]; plabels = [] }

(* Two triangles sharing an edge ("diamond"). *)
let diamond =
  {
    pname = "diamond";
    vertices = 4;
    pedges = [ (0, 1); (1, 2); (2, 0); (1, 3); (3, 2) ];
    plabels = [];
  }

let with_labels name labels p = { p with pname = name; plabels = labels }

(* A suite of queries per benchmark family.  Labelled benchmarks (aids,
   human, yeast) constrain pattern vertices to labels; the crawl-style
   graphs (dblp, youtube) use unlabelled structural patterns, which is what
   makes them the hard workloads in the paper. *)
let suite_for (g : Graphs.t) : pattern list =
  let labelled = g.Graphs.n_labels > 1 in
  (* Clamp label ids to the graph's label universe. *)
  let with_labels name labels p =
    with_labels name
      (List.map (fun (v, l) -> (v, l mod g.Graphs.n_labels)) labels)
      p
  in
  if labelled then
    [
      with_labels "l_edge" [ (0, 0); (1, 1) ] (path 2);
      with_labels "l_path3" [ (0, 0); (2, 2) ] (path 3);
      with_labels "l_path4" [ (0, 1); (3, 3) ] (path 4);
      with_labels "l_star3" [ (0, 0) ] (star 3);
      with_labels "l_star4" [ (0, 2) ] (star 4);
      with_labels "l_tri" [ (0, 0) ] triangle;
      with_labels "l_tailed" [ (3, 1) ] tailed_triangle;
      with_labels "l_cycle4" [ (0, 0); (2, 1) ] (cycle 4);
    ]
  else
    [
      path 3;
      path 4;
      star 3;
      star 4;
      triangle;
      tailed_triangle;
      diamond;
      cycle 4;
      clique 4;
    ]

(* Ground truth by explicit enumeration (only for small test graphs). *)
let count_by_enumeration (g : Graphs.t) (p : pattern) : float =
  let adj = Hashtbl.create (4 * Array.length g.Graphs.edges) in
  Array.iter (fun (u, v) -> Hashtbl.replace adj (u, v) ()) g.Graphs.edges;
  let has u v = Hashtbl.mem adj (u, v) in
  let label_ok v l =
    Array.length g.Graphs.labels = 0 || g.Graphs.labels.(v) = l
  in
  let assignment = Array.make p.vertices 0 in
  let rec go k acc =
    if k = p.vertices then acc +. 1.0
    else begin
      let acc = ref acc in
      for cand = 0 to g.Graphs.n - 1 do
        assignment.(k) <- cand;
        let ok =
          List.for_all
            (fun (u, v) -> u > k || v > k || has assignment.(u) assignment.(v))
            p.pedges
          && List.for_all
               (fun (v, l) -> v > k || label_ok assignment.(v) l)
               p.plabels
        in
        if ok then acc := go (k + 1) !acc
      done;
      !acc
    end
  in
  go 0 0.0
