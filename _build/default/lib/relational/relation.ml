(* In-memory relations over integer keys with a float payload per row.

   This is the data model of the DuckDB-substitute engine: a sparse tensor's
   non-fill entries become rows R(i1, ..., ik; v), sum-product queries
   become joins (payloads multiply) followed by group-by SUM.  Attributes
   are identified by variable names, so the same stored relation can be
   used with different bindings (self-joins). *)

type t = {
  attrs : string array; (* variable names, one per key column *)
  cols : int array array; (* column-major keys: cols.(a).(row) *)
  vals : float array; (* payload per row *)
}

let cardinality (r : t) = Array.length r.vals
let arity (r : t) = Array.length r.attrs

let create ~attrs ~cols ~vals =
  let n = Array.length vals in
  Array.iter
    (fun c ->
      if Array.length c <> n then invalid_arg "Relation.create: ragged columns")
    cols;
  if Array.length attrs <> Array.length cols then
    invalid_arg "Relation.create: attrs/cols mismatch";
  { attrs; cols; vals }

(* The non-fill entries of a tensor, bound to variables [vars]. *)
let of_tensor (tensor : Galley_tensor.Tensor.t) ~(vars : string list) : t =
  let nd = Array.length (Galley_tensor.Tensor.dims tensor) in
  if List.length vars <> nd then invalid_arg "Relation.of_tensor: arity";
  let entries = Galley_tensor.Tensor.to_coo tensor in
  let n = Array.length entries in
  let cols = Array.init nd (fun _ -> Array.make n 0) in
  let vals = Array.make n 0.0 in
  Array.iteri
    (fun row (coords, v) ->
      for a = 0 to nd - 1 do
        cols.(a).(row) <- coords.(a)
      done;
      vals.(row) <- v)
    entries;
  { attrs = Array.of_list vars; cols; vals }

let attr_pos (r : t) (attr : string) : int option =
  let rec go k =
    if k >= Array.length r.attrs then None
    else if r.attrs.(k) = attr then Some k
    else go (k + 1)
  in
  go 0

(* Rename attributes (positional). *)
let with_attrs (r : t) (vars : string list) : t =
  if List.length vars <> arity r then invalid_arg "Relation.with_attrs: arity";
  { r with attrs = Array.of_list vars }

(* Number of distinct values in one attribute (used by the planner). *)
let distinct_count (r : t) (attr : string) : int =
  match attr_pos r attr with
  | None -> 1
  | Some a ->
      let seen = Hashtbl.create 256 in
      Array.iter (fun v -> Hashtbl.replace seen v ()) r.cols.(a);
      Hashtbl.length seen

(* Encode the key of a row over column positions [ps]. *)
let key_of (r : t) (ps : int array) (row : int) : string =
  let b = Buffer.create 16 in
  Array.iter
    (fun p ->
      Buffer.add_string b (string_of_int r.cols.(p).(row));
      Buffer.add_char b ',')
    ps;
  Buffer.contents b

exception Timeout

let check_deadline deadline count =
  match deadline with
  | None -> ()
  | Some d ->
      if count land 8191 = 0 && Unix.gettimeofday () > d then raise Timeout

(* Hash join on shared attribute names; payloads multiply.  Output
   attributes: left's, then right's non-shared. *)
let join ?deadline (l : t) (r : t) : t =
  let shared =
    Array.to_list l.attrs
    |> List.filter (fun a -> attr_pos r a <> None)
  in
  let l_shared = Array.of_list (List.filter_map (attr_pos l) shared) in
  let r_shared = Array.of_list (List.filter_map (attr_pos r) shared) in
  let r_extra =
    Array.to_list r.attrs
    |> List.mapi (fun p a -> (p, a))
    |> List.filter (fun (_, a) -> not (List.mem a shared))
  in
  (* Build on the smaller side. *)
  let build, probe, build_shared, probe_shared, build_is_left =
    if cardinality l <= cardinality r then (l, r, l_shared, r_shared, true)
    else (r, l, r_shared, l_shared, false)
  in
  let table : (string, int list) Hashtbl.t =
    Hashtbl.create (max 16 (2 * cardinality build))
  in
  for row = 0 to cardinality build - 1 do
    check_deadline deadline row;
    let k = key_of build build_shared row in
    let prev = try Hashtbl.find table k with Not_found -> [] in
    Hashtbl.replace table k (row :: prev)
  done;
  let out_attrs =
    Array.append l.attrs (Array.of_list (List.map snd r_extra))
  in
  let out_l_cols = Array.length l.attrs in
  let l_positions = Array.init out_l_cols (fun p -> p) in
  let r_extra_positions = Array.of_list (List.map fst r_extra) in
  let acc_cols =
    Array.init (Array.length out_attrs) (fun _ -> Galley_tensor.Vec.Int.create ())
  in
  let acc_vals = Galley_tensor.Vec.Float.create () in
  let emitted = ref 0 in
  for prow = 0 to cardinality probe - 1 do
    check_deadline deadline prow;
    let k = key_of probe probe_shared prow in
    match Hashtbl.find_opt table k with
    | None -> ()
    | Some rows ->
        List.iter
          (fun brow ->
            incr emitted;
            check_deadline deadline !emitted;
            let lrow, rrow =
              if build_is_left then (brow, prow) else (prow, brow)
            in
            Array.iteri
              (fun o p ->
                Galley_tensor.Vec.Int.push acc_cols.(o) l.cols.(p).(lrow))
              l_positions;
            Array.iteri
              (fun o p ->
                Galley_tensor.Vec.Int.push acc_cols.(out_l_cols + o)
                  r.cols.(p).(rrow))
              r_extra_positions;
            Galley_tensor.Vec.Float.push acc_vals
              (l.vals.(lrow) *. r.vals.(rrow)))
          rows
  done;
  {
    attrs = out_attrs;
    cols = Array.map Galley_tensor.Vec.Int.to_array acc_cols;
    vals = Galley_tensor.Vec.Float.to_array acc_vals;
  }

(* Group by [keep] attributes, summing payloads (π with SUM). *)
let project_sum ?deadline (r : t) ~(keep : string list) : t =
  let ps = Array.of_list (List.filter_map (attr_pos r) keep) in
  let kept_attrs = Array.map (fun p -> r.attrs.(p)) ps in
  let groups : (string, int * float) Hashtbl.t = Hashtbl.create 1024 in
  let order = Galley_tensor.Vec.Poly.create ~dummy:"" () in
  for row = 0 to cardinality r - 1 do
    check_deadline deadline row;
    let k = key_of r ps row in
    match Hashtbl.find_opt groups k with
    | Some (first_row, acc) ->
        Hashtbl.replace groups k (first_row, acc +. r.vals.(row))
    | None ->
        Hashtbl.replace groups k (row, r.vals.(row));
        Galley_tensor.Vec.Poly.push order k
  done;
  let n = Galley_tensor.Vec.Poly.length order in
  let cols = Array.map (fun _ -> Array.make n 0) ps in
  let vals = Array.make n 0.0 in
  for g = 0 to n - 1 do
    let k = Galley_tensor.Vec.Poly.get order g in
    let first_row, acc = Hashtbl.find groups k in
    Array.iteri (fun o p -> cols.(o).(g) <- r.cols.(p).(first_row)) ps;
    vals.(g) <- acc
  done;
  { attrs = kept_attrs; cols; vals }

(* Multiply every payload by a scalar. *)
let scale (r : t) (c : float) : t =
  { r with vals = Array.map (fun v -> c *. v) r.vals }

let total (r : t) : float = Array.fold_left ( +. ) 0.0 r.vals

(* Materialize as a sparse tensor with the given dimension sizes (one per
   attribute, in attribute order). *)
let to_tensor (r : t) ~(dims : int array) : Galley_tensor.Tensor.t =
  if Array.length dims <> arity r then invalid_arg "Relation.to_tensor: arity";
  let n = cardinality r in
  let entries =
    Array.init n (fun row ->
        (Array.map (fun col -> col.(row)) r.cols, r.vals.(row)))
  in
  let formats =
    Array.mapi
      (fun k _ ->
        if k = 0 && Array.length dims = 1 then Galley_tensor.Tensor.Sparse_list
        else Galley_tensor.Tensor.Sparse_list)
      dims
  in
  Galley_tensor.Tensor.of_coo ~dims ~formats entries
