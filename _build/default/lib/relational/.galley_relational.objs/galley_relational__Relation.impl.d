lib/relational/relation.ml: Array Buffer Galley_tensor Hashtbl List Unix
