lib/relational/rel_engine.ml: Array Float Galley_plan Galley_tensor Hashtbl Ir List Logical_query Op Option Printf Relation Unix
