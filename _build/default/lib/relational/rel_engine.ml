(* The DuckDB-substitute OLAP engine: sum-product (conjunctive aggregate)
   queries executed with binary hash joins under a cost-based, left-deep
   greedy join order, with eager aggregation (group-by SUM pushdown) after
   every join.

   Used two ways in the evaluation (paper Sec. 9.2):
   - as the standalone baseline, planning the whole query itself;
   - as an alternative execution engine for Galley's logical plans
     ("Galley + DuckDB"), one sum-product query per logical query. *)

open Galley_plan

exception Timeout = Relation.Timeout

exception Unsupported of string

type stored = { rel : Relation.t; dims : int array }

type db = { rels : (string, stored) Hashtbl.t }

let create_db () = { rels = Hashtbl.create 16 }

let register_tensor (db : db) (name : string)
    (tensor : Galley_tensor.Tensor.t) : unit =
  let nd = Array.length (Galley_tensor.Tensor.dims tensor) in
  let vars = List.init nd (fun k -> Printf.sprintf "%%%d" k) in
  Hashtbl.replace db.rels name
    {
      rel = Relation.of_tensor tensor ~vars;
      dims = Galley_tensor.Tensor.dims tensor;
    }

let register_relation (db : db) (name : string) (rel : Relation.t)
    ~(dims : int array) : unit =
  Hashtbl.replace db.rels name { rel; dims }

let find_exn (db : db) (name : string) : stored =
  match Hashtbl.find_opt db.rels name with
  | Some s -> s
  | None -> invalid_arg ("Rel_engine: unknown relation " ^ name)

type atom = { rel : string; vars : string list }

(* ------------------------------------------------------------------ *)
(* Static planning: greedy left-deep join order from base statistics.   *)
(* ------------------------------------------------------------------ *)

type base_stats = {
  card : float;
  distinct : (string * float) list; (* per variable *)
}

let atom_stats (db : db) (a : atom) : base_stats =
  let s = find_exn db a.rel in
  let rel = Relation.with_attrs s.rel a.vars in
  {
    card = float_of_int (Relation.cardinality rel);
    distinct =
      List.map
        (fun v -> (v, float_of_int (Relation.distinct_count rel v)))
        a.vars;
  }

let est_distinct (st : base_stats) (v : string) : float option =
  List.assoc_opt v st.distinct

(* System-R style join size estimate. *)
let est_join (a : base_stats) (b : base_stats) : float =
  let shared =
    List.filter (fun (v, _) -> est_distinct b v <> None) a.distinct
  in
  let denom =
    List.fold_left
      (fun acc (v, da) ->
        match est_distinct b v with
        | Some db_ -> acc *. Float.max da db_
        | None -> acc)
      1.0 shared
  in
  a.card *. b.card /. Float.max 1.0 denom

let merge_stats (a : base_stats) (b : base_stats) (card : float) : base_stats =
  let distinct =
    List.map
      (fun (v, da) ->
        match est_distinct b v with
        | Some db_ -> (v, Float.min da db_)
        | None -> (v, Float.min da card))
      a.distinct
    @ List.filter_map
        (fun (v, db_) ->
          if est_distinct a v = None then Some (v, Float.min db_ card)
          else None)
        b.distinct
  in
  { card; distinct }

(* Greedy plan: the sequence of atom indices to join, cheapest first. *)
let plan_order (db : db) (atoms : atom list) : int list =
  let stats = Array.of_list (List.map (atom_stats db) atoms) in
  let n = Array.length stats in
  if n = 0 then []
  else begin
    let used = Array.make n false in
    (* Start from the smallest atom. *)
    let start = ref 0 in
    for i = 1 to n - 1 do
      if stats.(i).card < stats.(!start).card then start := i
    done;
    used.(!start) <- true;
    let order = ref [ !start ] in
    let current = ref stats.(!start) in
    for _step = 2 to n do
      let best = ref None in
      for i = 0 to n - 1 do
        if not used.(i) then begin
          let shares =
            List.exists
              (fun (v, _) -> est_distinct stats.(i) v <> None)
              !current.distinct
          in
          let size = est_join !current stats.(i) in
          (* Prefer connected joins over cross products. *)
          let penalized = if shares then size else size *. 1e12 in
          match !best with
          | Some (_, b) when b <= penalized -> ()
          | _ -> best := Some (i, penalized)
        end
      done;
      let i, _ = Option.get !best in
      used.(i) <- true;
      order := i :: !order;
      current := merge_stats !current stats.(i) (est_join !current stats.(i))
    done;
    List.rev !order
  end

(* ------------------------------------------------------------------ *)
(* Execution.                                                           *)
(* ------------------------------------------------------------------ *)

(* Execute a sum-product query: SELECT out_vars, SUM(Π payloads) FROM atoms
   GROUP BY out_vars, in the given join order, with eager aggregation. *)
let execute_sum_product ?deadline (db : db) ~(atoms : atom list)
    ~(order : int list) ~(out_vars : string list) ~(scale : float) :
    Relation.t =
  let atom_arr = Array.of_list atoms in
  let instantiate (a : atom) : Relation.t =
    Relation.with_attrs (find_exn db a.rel).rel a.vars
  in
  let needed_later (remaining : int list) : string list =
    List.concat_map (fun i -> atom_arr.(i).vars) remaining
  in
  match order with
  | [] -> Relation.create ~attrs:[||] ~cols:[||] ~vals:[| scale |]
  | first :: rest ->
      let rec loop acc remaining =
        match remaining with
        | [] -> acc
        | i :: rest ->
            let joined = Relation.join ?deadline acc (instantiate atom_arr.(i)) in
            (* Eager aggregation: keep only variables still needed. *)
            let keep =
              List.filter
                (fun v -> List.mem v out_vars || List.mem v (needed_later rest))
                (Array.to_list joined.Relation.attrs)
            in
            let acc =
              if List.length keep < Relation.arity joined then
                Relation.project_sum ?deadline joined ~keep
              else joined
            in
            loop acc rest
      in
      let result = loop (instantiate atom_arr.(first)) rest in
      let result = Relation.project_sum ?deadline result ~keep:out_vars in
      if scale = 1.0 then result else Relation.scale result scale

type timed_result = {
  relation : Relation.t;
  plan_seconds : float;
  exec_seconds : float;
}

let sum_product ?deadline (db : db) ~(atoms : atom list)
    ~(out_vars : string list) ?(scale = 1.0) () : timed_result =
  let t0 = Unix.gettimeofday () in
  let order = plan_order db atoms in
  let t1 = Unix.gettimeofday () in
  let relation = execute_sum_product ?deadline db ~atoms ~order ~out_vars ~scale in
  let t2 = Unix.gettimeofday () in
  { relation; plan_seconds = t1 -. t0; exec_seconds = t2 -. t1 }

(* ------------------------------------------------------------------ *)
(* Bridge: run Galley logical plans on this engine.                     *)
(* ------------------------------------------------------------------ *)

(* Flatten a logical body into atoms + a scalar factor.  Only sum-product
   shapes are supported: Mul trees over accesses and literals, aggregated
   with Add (or the no-op aggregate). *)
let atoms_of_body (body : Ir.expr) : atom list * float =
  let atoms = ref [] and scale = ref 1.0 in
  let rec go (e : Ir.expr) : unit =
    match e with
    | Ir.Input (name, idxs) | Ir.Alias (name, idxs) ->
        atoms := { rel = name; vars = idxs } :: !atoms
    | Ir.Literal v -> scale := !scale *. v
    | Ir.Map (Op.Mul, args) -> List.iter go args
    | Ir.Map (op, _) ->
        raise (Unsupported ("relational engine: operator " ^ Op.to_string op))
    | Ir.Agg _ -> raise (Unsupported "relational engine: nested aggregate")
  in
  go body;
  (List.rev !atoms, !scale)

(* Execute one logical query, storing its result as a relation usable by
   later queries.  Dimension sizes for the output come from [dim_of]. *)
let run_logical_query ?deadline (db : db) ~(dim_of : Ir.idx -> int)
    (q : Logical_query.t) : timed_result =
  (match q.Logical_query.agg_op with
  | Op.Add | Op.Ident -> ()
  | op ->
      raise (Unsupported ("relational engine: aggregate " ^ Op.to_string op)));
  let atoms, scale = atoms_of_body q.Logical_query.body in
  let out_vars = q.Logical_query.output_idxs in
  let r = sum_product ?deadline db ~atoms ~out_vars ~scale () in
  let dims = Array.of_list (List.map dim_of out_vars) in
  register_relation db q.Logical_query.name r.relation ~dims;
  r

let run_logical_plan ?deadline (db : db) ~(dim_of : Ir.idx -> int)
    (plan : Logical_query.t list) : timed_result list =
  List.map (run_logical_query ?deadline db ~dim_of) plan
