lib/engine/exec.ml: Array Galley_plan Galley_tensor Hashtbl Kernel_exec List Physical Printf String Unix
