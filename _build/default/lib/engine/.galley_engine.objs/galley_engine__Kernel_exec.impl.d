lib/engine/kernel_exec.ml: Array Galley_physical Galley_plan Galley_tensor Hashtbl List Op Physical Printf Unix
