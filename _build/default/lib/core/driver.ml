(* End-to-end Galley driver (paper Fig. 3):

   input program --[logical optimizer]--> logical plan
                 --[physical optimizer]--> physical plan
                 --[engine]--> tensors

   Just-in-time physical optimization (paper Sec. 8.1) is the default: each
   logical query is physically optimized only after all of its aliases have
   executed, with alias statistics refreshed from the materialized tensors.
   Setting [jit = false] plans the whole physical program up front from
   inferred statistics. *)

open Galley_plan
module T = Galley_tensor.Tensor
module Ctx = Galley_stats.Ctx

type config = {
  estimator : Ctx.kind;
  logical : Galley_logical.Optimizer.config;
  physical : Galley_physical.Optimizer.config;
  jit : bool;
  cse : bool;
  timeout : float option; (* seconds; execution aborts past this *)
}

let default_config =
  {
    estimator = Ctx.Chain_kind;
    logical = Galley_logical.Optimizer.default_config;
    physical = Galley_physical.Optimizer.default_config;
    jit = true;
    cse = true;
    timeout = None;
  }

let greedy_config =
  {
    default_config with
    logical =
      {
        Galley_logical.Optimizer.default_config with
        search = Galley_logical.Optimizer.Greedy;
      };
  }

type timings = {
  logical_seconds : float;
  physical_seconds : float;
  compile_seconds : float;
  execute_seconds : float;
  total_seconds : float;
  compile_count : int;
  kernel_count : int;
  cse_hits : int;
}

type result = {
  outputs : (string * Ir.idx list * T.t) list; (* name, dim order, tensor *)
  logical_plan : Logical_query.t list;
  physical_plan : Physical.plan;
  timings : timings;
  timed_out : bool;
}

let output_of (r : result) (name : string) : T.t =
  match List.find_opt (fun (n, _, _) -> n = name) r.outputs with
  | Some (_, _, t) -> t
  | None -> invalid_arg ("Galley: no output named " ^ name)

(* Replace Input leaves that actually refer to earlier query outputs with
   Alias leaves, so programs can be written without distinguishing them. *)
let resolve_names (p : Ir.program) : Ir.program =
  let defined = Hashtbl.create 8 in
  let queries =
    List.map
      (fun (q : Ir.query) ->
        let rec fix (e : Ir.expr) : Ir.expr =
          match e with
          | Ir.Input (n, idxs) when Hashtbl.mem defined n -> Ir.Alias (n, idxs)
          | Ir.Input _ | Ir.Alias _ | Ir.Literal _ -> e
          | Ir.Map (op, args) -> Ir.Map (op, List.map fix args)
          | Ir.Agg (op, idxs, body) -> Ir.Agg (op, idxs, fix body)
        in
        let q = { q with Ir.expr = fix q.Ir.expr } in
        Hashtbl.replace defined q.Ir.name ();
        q)
      p.Ir.queries
  in
  { p with Ir.queries }

let now = Unix.gettimeofday

(* Refresh alias statistics from materialized tensors before physically
   optimizing [q] (JIT adaptive optimization).  [refreshed] remembers names
   already measured this run: bindings are immutable within a run, so one
   measurement per intermediate suffices. *)
let refresh_alias_stats ?(refreshed = Hashtbl.create 16) (ctx : Ctx.t)
    (exec : Galley_engine.Exec.t) (q : Logical_query.t) : unit =
  List.iter
    (fun (name, kind) ->
      match kind with
      | `Alias when not (Hashtbl.mem refreshed name) -> (
          match Galley_engine.Exec.lookup_opt exec name with
          | Some t ->
              Hashtbl.replace refreshed name ();
              Schema.declare_tensor ctx.Ctx.schema name t;
              ctx.Ctx.register_alias_tensor name t
          | None -> ())
      | `Alias | `Input -> ())
    (Ir.referenced_names q.Logical_query.body)

let make_ctx (config : config) (inputs : (string * T.t) list) : Ctx.t =
  let schema = Schema.create () in
  List.iter (fun (name, t) -> Schema.declare_tensor schema name t) inputs;
  let ctx = Ctx.create ~kind:config.estimator schema in
  List.iter (fun (name, t) -> ctx.Ctx.register_input name t) inputs;
  ctx

(* Physical optimization + execution of an already-logical plan. *)
let execute_logical ~(config : config) ~(ctx : Ctx.t)
    ~(inputs : (string * T.t) list) ~(logical_plan : Logical_query.t list)
    ~(outputs : string list) ~(logical_seconds : float) : result =
  let exec = Galley_engine.Exec.create ~cse:config.cse () in
  List.iter (fun (name, t) -> Galley_engine.Exec.bind exec name t) inputs;
  (match config.timeout with
  | Some s -> Galley_engine.Exec.set_timeout exec s
  | None -> ());
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "#p%d" !counter
  in
  let physical_seconds = ref 0.0 in
  let all_steps = ref [] in
  let timed_out = ref false in
  (try
     if config.jit then begin
       (* Plan each query right before running it, with fresh statistics. *)
       let refreshed = Hashtbl.create 16 in
       List.iter
         (fun q ->
           let t0 = now () in
           refresh_alias_stats ~refreshed ctx exec q;
           let plan =
             Galley_physical.Optimizer.plan_query ~config:config.physical ctx
               ~fresh q
           in
           physical_seconds := !physical_seconds +. (now () -. t0);
           all_steps := !all_steps @ plan;
           Galley_engine.Exec.run_plan exec plan)
         logical_plan
     end
     else begin
       let t0 = now () in
       let plan =
         List.concat_map
           (fun q ->
             Galley_physical.Optimizer.plan_query ~config:config.physical ctx
               ~fresh q)
           logical_plan
       in
       physical_seconds := now () -. t0;
       all_steps := plan;
       Galley_engine.Exec.run_plan exec plan
     end
   with Galley_engine.Exec.Timeout -> timed_out := true);
  let timings = exec.Galley_engine.Exec.timings in
  let outputs =
    if !timed_out then []
    else
      List.filter_map
        (fun name ->
          match
            List.find_opt
              (fun (q : Logical_query.t) -> q.Logical_query.name = name)
              logical_plan
          with
          | Some q -> (
              match Galley_engine.Exec.lookup_opt exec name with
              | Some t -> Some (name, q.Logical_query.output_idxs, t)
              | None -> None)
          | None -> None)
        outputs
  in
  {
    outputs;
    logical_plan;
    physical_plan = !all_steps;
    timings =
      {
        logical_seconds;
        physical_seconds = !physical_seconds;
        compile_seconds = timings.Galley_engine.Exec.compile_time;
        execute_seconds = timings.Galley_engine.Exec.exec_time;
        total_seconds =
          logical_seconds +. !physical_seconds
          +. timings.Galley_engine.Exec.compile_time
          +. timings.Galley_engine.Exec.exec_time;
        compile_count = timings.Galley_engine.Exec.compile_count;
        kernel_count = timings.Galley_engine.Exec.kernel_count;
        cse_hits = timings.Galley_engine.Exec.cse_hits;
      };
    timed_out = !timed_out;
  }

let run ?(config = default_config) ~(inputs : (string * T.t) list)
    (program : Ir.program) : result =
  let program = resolve_names program in
  let ctx = make_ctx config inputs in
  let t0 = now () in
  let logical_plan =
    Galley_logical.Optimizer.optimize_program config.logical ctx program
  in
  let logical_seconds = now () -. t0 in
  execute_logical ~config ~ctx ~inputs ~logical_plan
    ~outputs:program.Ir.outputs ~logical_seconds

(* Run a hand-written logical plan directly, bypassing the logical
   optimizer: this is how the "hand-coded kernel" baselines of the
   evaluation are expressed, so that they execute on the same engine. *)
let run_logical_plan ?(config = default_config)
    ~(inputs : (string * T.t) list) ~(outputs : string list)
    (logical_plan : Logical_query.t list) : result =
  let ctx = make_ctx config inputs in
  (* Register every query's output so estimation can see the aliases. *)
  List.iter
    (fun (q : Logical_query.t) ->
      let full = (Logical_query.to_query q).Ir.expr in
      let dims = Schema.index_dims ctx.Ctx.schema full in
      let out_dims =
        Array.of_list
          (List.map
             (fun i -> Schema.dim_of_idx dims i)
             q.Logical_query.output_idxs)
      in
      let fill = Schema.expr_fill ctx.Ctx.schema dims full in
      Schema.declare ctx.Ctx.schema q.Logical_query.name ~dims:out_dims ~fill;
      ctx.Ctx.register_alias_estimated q.Logical_query.name
        ~output_idxs:q.Logical_query.output_idxs full)
    logical_plan;
  execute_logical ~config ~ctx ~inputs ~logical_plan ~outputs
    ~logical_seconds:0.0

(* Convenience wrapper for single-query programs. *)
let run_query ?config ~inputs (q : Ir.query) : result =
  run ?config ~inputs { Ir.queries = [ q ]; outputs = [ q.Ir.name ] }

(* ------------------------------------------------------------------ *)
(* Incremental sessions.                                               *)
(* ------------------------------------------------------------------ *)

(* A session keeps the statistics context and the engine (kernel cache, CSE
   cache) alive across calls: input statistics are computed once per
   binding, and re-running a structurally identical plan (e.g. one BFS
   iteration at a time, paper Sec. 9.3) reuses compiled kernels — the same
   amortization Finch's kernel cache provides. *)
module Session = struct
  type session = {
    s_config : config;
    s_ctx : Ctx.t;
    s_exec : Galley_engine.Exec.t;
    mutable s_inputs : (string * T.t) list;
    mutable s_counter : int;
  }

  let create ?(config = default_config) () : session =
    let schema = Schema.create () in
    {
      s_config = config;
      s_ctx = Ctx.create ~kind:config.estimator schema;
      s_exec = Galley_engine.Exec.create ~cse:config.cse ();
      s_inputs = [];
      s_counter = 0;
    }

  (* Bind or rebind an input tensor; statistics are (re)computed here, not
     per run. *)
  let bind (s : session) (name : string) (tensor : T.t) : unit =
    Schema.declare_tensor s.s_ctx.Ctx.schema name tensor;
    s.s_ctx.Ctx.register_input name tensor;
    Galley_engine.Exec.bind s.s_exec name tensor;
    s.s_inputs <- (name, tensor) :: List.remove_assoc name s.s_inputs

  let fresh (s : session) () =
    s.s_counter <- s.s_counter + 1;
    Printf.sprintf "#s%d" s.s_counter

  (* Run a hand-written logical plan against the session state. *)
  let run_logical_plan (s : session) ~(outputs : string list)
      (logical_plan : Logical_query.t list) : result =
    let config = s.s_config in
    let ctx = s.s_ctx in
    let exec = s.s_exec in
    (match config.timeout with
    | Some sec -> Galley_engine.Exec.set_timeout exec sec
    | None -> ());
    let physical_seconds = ref 0.0 in
    let all_steps = ref [] in
    let timed_out = ref false in
    let t_before = exec.Galley_engine.Exec.timings in
    let compile0 = t_before.Galley_engine.Exec.compile_time in
    let exec0 = t_before.Galley_engine.Exec.exec_time in
    (try
       List.iter
         (fun (q : Logical_query.t) ->
           let t0 = now () in
           (* Alias statistics: measured when materialized (JIT), else
              inferred. *)
           let full = (Logical_query.to_query q).Ir.expr in
           let dims = Schema.index_dims ctx.Ctx.schema full in
           let out_dims =
             Array.of_list
               (List.map
                  (fun i -> Schema.dim_of_idx dims i)
                  q.Logical_query.output_idxs)
           in
           let fill = Schema.expr_fill ctx.Ctx.schema dims full in
           Schema.declare ctx.Ctx.schema q.Logical_query.name ~dims:out_dims
             ~fill;
           ctx.Ctx.register_alias_estimated q.Logical_query.name
             ~output_idxs:q.Logical_query.output_idxs full;
           if config.jit then refresh_alias_stats ctx exec q;
           let plan =
             Galley_physical.Optimizer.plan_query ~config:config.physical ctx
               ~fresh:(fresh s) q
           in
           physical_seconds := !physical_seconds +. (now () -. t0);
           all_steps := !all_steps @ plan;
           Galley_engine.Exec.run_plan exec plan)
         logical_plan
     with Galley_engine.Exec.Timeout -> timed_out := true);
    let t_after = exec.Galley_engine.Exec.timings in
    let outputs =
      if !timed_out then []
      else
        List.filter_map
          (fun name ->
            match
              ( List.find_opt
                  (fun (q : Logical_query.t) -> q.Logical_query.name = name)
                  logical_plan,
                Galley_engine.Exec.lookup_opt exec name )
            with
            | Some q, Some t -> Some (name, q.Logical_query.output_idxs, t)
            | _ -> None)
          outputs
    in
    {
      outputs;
      logical_plan;
      physical_plan = !all_steps;
      timings =
        {
          logical_seconds = 0.0;
          physical_seconds = !physical_seconds;
          compile_seconds = t_after.Galley_engine.Exec.compile_time -. compile0;
          execute_seconds = t_after.Galley_engine.Exec.exec_time -. exec0;
          total_seconds =
            !physical_seconds
            +. t_after.Galley_engine.Exec.compile_time -. compile0
            +. t_after.Galley_engine.Exec.exec_time -. exec0;
          compile_count = t_after.Galley_engine.Exec.compile_count;
          kernel_count = t_after.Galley_engine.Exec.kernel_count;
          cse_hits = t_after.Galley_engine.Exec.cse_hits;
        };
      timed_out = !timed_out;
    }

  let lookup (s : session) (name : string) : T.t option =
    Galley_engine.Exec.lookup_opt s.s_exec name
end
