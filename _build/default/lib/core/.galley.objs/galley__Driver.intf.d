lib/core/driver.mli: Galley_logical Galley_physical Galley_plan Galley_stats Galley_tensor Ir Logical_query Physical
