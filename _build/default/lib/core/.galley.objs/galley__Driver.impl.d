lib/core/driver.ml: Array Galley_engine Galley_logical Galley_physical Galley_plan Galley_stats Galley_tensor Hashtbl Ir List Logical_query Physical Printf Schema Unix
