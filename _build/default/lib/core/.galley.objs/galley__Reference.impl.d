lib/core/reference.ml: Array Galley_plan Galley_tensor Hashtbl Ir List Op Schema
