(** End-to-end Galley driver (paper Fig. 3):

    input program → logical optimizer → physical optimizer → engine.

    Just-in-time physical optimization (paper Sec. 8.1) is the default:
    each logical query is physically optimized only after its aliases have
    executed, with statistics refreshed from the materialized tensors. *)

open Galley_plan
module T = Galley_tensor.Tensor
module Ctx = Galley_stats.Ctx

type config = {
  estimator : Ctx.kind;  (** sparsity estimator (default: chain bound) *)
  logical : Galley_logical.Optimizer.config;
  physical : Galley_physical.Optimizer.config;
  jit : bool;  (** just-in-time physical optimization (Sec. 8.1) *)
  cse : bool;  (** common sub-expression elimination (Sec. 8.2) *)
  timeout : float option;  (** execution wall-clock budget in seconds *)
}

(** Chain-bound estimator, branch-and-bound logical search, JIT, CSE. *)
val default_config : config

(** [default_config] with the greedy logical optimizer. *)
val greedy_config : config

type timings = {
  logical_seconds : float;
  physical_seconds : float;
  compile_seconds : float;  (** kernel-cache misses only *)
  execute_seconds : float;
  total_seconds : float;
  compile_count : int;
  kernel_count : int;
  cse_hits : int;
}

type result = {
  outputs : (string * Ir.idx list * T.t) list;
      (** program outputs: name, dimension order, tensor *)
  logical_plan : Logical_query.t list;
  physical_plan : Physical.plan;
  timings : timings;
  timed_out : bool;  (** true = aborted; [outputs] is empty *)
}

(** Look up an output tensor by name; raises [Invalid_argument] if absent. *)
val output_of : result -> string -> T.t

(** Rewrite [Input] leaves that refer to earlier query outputs into
    [Alias] leaves (applied automatically by {!run}). *)
val resolve_names : Ir.program -> Ir.program

(** Optimize and execute a whole program against the given input tensors. *)
val run : ?config:config -> inputs:(string * T.t) list -> Ir.program -> result

(** Execute a hand-written logical plan, bypassing the logical optimizer:
    how the paper's hand-coded kernel baselines are expressed, so they run
    on the same engine. *)
val run_logical_plan :
  ?config:config ->
  inputs:(string * T.t) list ->
  outputs:string list ->
  Logical_query.t list ->
  result

(** Single-query convenience wrapper around {!run}. *)
val run_query : ?config:config -> inputs:(string * T.t) list -> Ir.query -> result

(** Incremental sessions: keep input statistics and the engine's kernel
    cache alive across calls (e.g. one BFS iteration at a time, paper
    Sec. 9.3). *)
module Session : sig
  type session

  val create : ?config:config -> unit -> session

  (** Bind or rebind an input; statistics are (re)computed here. *)
  val bind : session -> string -> T.t -> unit

  val run_logical_plan :
    session -> outputs:string list -> Logical_query.t list -> result

  val lookup : session -> string -> T.t option
end
