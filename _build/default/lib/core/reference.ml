(* Brute-force reference evaluator.

   Evaluates tensor-index-notation programs directly over the dense
   coordinate space, with no optimization and no sparsity: the semantic
   ground truth against which the optimizer + engine pipeline is tested.
   Exponential in the number of indices — only suitable for small tests. *)

open Galley_plan
module T = Galley_tensor.Tensor

type env = { tensors : (string, T.t) Hashtbl.t; schema : Schema.t }

let create_env (inputs : (string * T.t) list) : env =
  let tensors = Hashtbl.create 16 in
  let schema = Schema.create () in
  List.iter
    (fun (name, t) ->
      Hashtbl.replace tensors name t;
      Schema.declare_tensor schema name t)
    inputs;
  { tensors; schema }

(* Evaluate [e] at a full index assignment. *)
let rec eval_at (env : env) (dims : int Ir.Idx_map.t)
    (assign : (Ir.idx, int) Hashtbl.t) (e : Ir.expr) : float =
  match e with
  | Ir.Input (name, idxs) | Ir.Alias (name, idxs) ->
      let t =
        match Hashtbl.find_opt env.tensors name with
        | Some t -> t
        | None -> invalid_arg ("Reference: unbound tensor " ^ name)
      in
      let coords =
        Array.of_list (List.map (fun i -> Hashtbl.find assign i) idxs)
      in
      T.get t coords
  | Ir.Literal v -> v
  | Ir.Map (op, args) ->
      Op.apply op (Array.of_list (List.map (eval_at env dims assign) args))
  | Ir.Agg (op, idxs, body) ->
      let identity =
        match Op.identity op with
        | Some e -> e
        | None -> (
            match op with
            | Op.Ident -> 0.0
            | _ -> invalid_arg "Reference: aggregate without identity")
      in
      let rec loop rem acc =
        match rem with
        | [] ->
            let v = eval_at env dims assign body in
            if op = Op.Ident then v else Op.apply2 op acc v
        | i :: rest ->
            let n = Schema.dim_of_idx dims i in
            (* Save any outer binding: binders may shadow. *)
            let saved = Hashtbl.find_opt assign i in
            let acc = ref acc in
            for x = 0 to n - 1 do
              Hashtbl.replace assign i x;
              acc := loop rest !acc
            done;
            (match saved with
            | Some v -> Hashtbl.replace assign i v
            | None -> Hashtbl.remove assign i);
            !acc
      in
      loop idxs identity

(* Evaluate one query into a dense-format tensor with explicit output
   order. *)
let eval_query (env : env) (q : Ir.query) : Ir.idx list * T.t =
  let dims = Schema.index_dims env.schema q.Ir.expr in
  let free = Ir.Idx_set.elements (Ir.free_indices q.Ir.expr) in
  let out_order = match q.Ir.out_order with Some o -> o | None -> free in
  let out_dims =
    Array.of_list (List.map (fun i -> Schema.dim_of_idx dims i) out_order)
  in
  let assign = Hashtbl.create 8 in
  let formats = Array.map (fun _ -> T.Dense) out_dims in
  let result =
    if Array.length out_dims = 0 then
      T.scalar (eval_at env dims assign q.Ir.expr)
    else
      T.of_fun ~dims:out_dims ~formats (fun coords ->
          List.iteri
            (fun k i -> Hashtbl.replace assign i coords.(k))
            out_order;
          eval_at env dims assign q.Ir.expr)
  in
  (out_order, result)

(* Evaluate a whole program; returns every query's result by name. *)
let eval_program (inputs : (string * T.t) list) (p : Ir.program) :
    (string * T.t) list =
  let env = create_env inputs in
  List.map
    (fun q ->
      let out_order, t = eval_query env q in
      Hashtbl.replace env.tensors q.Ir.name t;
      let out_dims =
        Array.of_list
          (List.map
             (fun i ->
               Schema.dim_of_idx (Schema.index_dims env.schema q.Ir.expr) i)
             out_order)
      in
      Schema.declare env.schema q.Ir.name ~dims:out_dims ~fill:0.0;
      (q.Ir.name, t))
    p.Ir.queries
