(* Tests for the plan IR: index accounting, canonicalization rules (merging,
   lifting, uniquification, repeated-application rewrites), canonical keys
   for CSE, and the schema environment. *)

module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module Canonical = Galley_plan.Canonical
module Schema = Galley_plan.Schema
module T = Galley_tensor.Tensor

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let idx_set_to_list s = Ir.Idx_set.elements s

let schema_with (entries : (string * int array) list) : Schema.t =
  let s = Schema.create () in
  List.iter (fun (n, dims) -> Schema.declare s n ~dims ~fill:0.0) entries;
  s

(* -------------------------------------------------------------- *)
(* Index accounting.                                                *)
(* -------------------------------------------------------------- *)

let test_free_indices () =
  let e =
    Ir.(sum [ "j" ] (mul [ input "A" [ "i"; "j" ]; input "B" [ "j"; "k" ] ]))
  in
  Alcotest.(check (list string))
    "free" [ "i"; "k" ]
    (idx_set_to_list (Ir.free_indices e));
  Alcotest.(check (list string))
    "all" [ "i"; "j"; "k" ]
    (idx_set_to_list (Ir.all_indices e));
  Alcotest.(check (list string))
    "aggregated" [ "j" ]
    (idx_set_to_list (Ir.aggregated_indices e))

let test_contains_agg () =
  check_bool "no agg" false Ir.(contains_agg (mul [ input "A" [ "i" ] ]));
  check_bool "agg" true Ir.(contains_agg (sum [ "i" ] (input "A" [ "i" ])));
  check_bool "nested" true
    Ir.(contains_agg (map Op.Sigmoid [ sum [ "i" ] (input "A" [ "i" ]) ]))

let test_rename () =
  let e = Ir.(mul [ input "A" [ "i"; "j" ]; input "B" [ "j" ] ]) in
  let e' = Ir.rename_indices (Ir.Idx_map.singleton "j" "z") e in
  Alcotest.(check (list string))
    "renamed free" [ "i"; "z" ]
    (idx_set_to_list (Ir.free_indices e'))

(* -------------------------------------------------------------- *)
(* Canonicalization.                                                *)
(* -------------------------------------------------------------- *)

let test_merge_nested_maps () =
  let schema = schema_with [ ("A", [| 3 |]); ("B", [| 3 |]); ("C", [| 3 |]) ] in
  let e =
    Ir.Map
      ( Op.Add,
        [
          Ir.Map (Op.Add, [ Ir.input "A" [ "i" ]; Ir.input "B" [ "i" ] ]);
          Ir.input "C" [ "i" ];
        ] )
  in
  match Canonical.canonicalize schema e with
  | Ir.Map (Op.Add, args) ->
      Alcotest.(check int) "flattened to 3" 3 (List.length args)
  | e' -> Alcotest.failf "unexpected shape: %s" (Ir.expr_to_string e')

let test_merge_nested_aggs () =
  let schema = schema_with [ ("A", [| 3; 4 |]) ] in
  let e = Ir.(sum [ "i" ] (sum [ "j" ] (input "A" [ "i"; "j" ]))) in
  match Canonical.canonicalize schema e with
  | Ir.Agg (Op.Add, idxs, Ir.Input ("A", _)) ->
      Alcotest.(check int) "merged binders" 2 (List.length idxs)
  | e' -> Alcotest.failf "unexpected shape: %s" (Ir.expr_to_string e')

let test_lift_agg_above_map () =
  (* theta[j] * Σ_i A[i,j]  ->  Σ_i (theta[j] * A[i,j]) *)
  let schema = schema_with [ ("A", [| 3; 4 |]); ("theta", [| 4 |]) ] in
  let e =
    Ir.(mul [ input "theta" [ "j" ]; sum [ "i" ] (input "A" [ "i"; "j" ]) ])
  in
  match Canonical.canonicalize schema e with
  | Ir.Agg (Op.Add, [ "i" ], Ir.Map (Op.Mul, _)) -> ()
  | e' -> Alcotest.failf "not lifted: %s" (Ir.expr_to_string e')

let test_no_lift_when_mentioned () =
  (* B[i] * Σ_i A[i]: the binder collides with a free use; uniquification
     renames the binder, after which lifting is sound. *)
  let schema = schema_with [ ("A", [| 3 |]); ("B", [| 3 |]) ] in
  let e = Ir.(mul [ input "B" [ "i" ]; sum [ "i" ] (input "A" [ "i" ]) ]) in
  let e' = Canonical.canonicalize schema e in
  (* after renaming, B's i stays free *)
  check_bool "i still free" true (Ir.Idx_set.mem "i" (Ir.free_indices e'))

let test_uniquify_shadowing () =
  let e =
    Ir.(
      mul
        [
          sum [ "i" ] (input "A" [ "i" ]);
          sum [ "i" ] (input "B" [ "i" ]);
        ])
  in
  let e' = Canonical.uniquify e in
  let rec binders acc = function
    | Ir.Agg (_, idxs, body) -> binders (idxs @ acc) body
    | Ir.Map (_, args) -> List.fold_left binders acc args
    | _ -> acc
  in
  let bs = binders [] e' in
  Alcotest.(check int) "two binders" 2 (List.length bs);
  check_bool "distinct" true (List.nth bs 0 <> List.nth bs 1)

let test_agg_over_absent_index () =
  (* Σ_i B[j] = n_i * B[j] (repeated application for Add) *)
  let schema = schema_with [ ("B", [| 4 |]) ] in
  let e = Ir.(sum [ "i" ] (input "B" [ "j" ])) in
  (* dim of i is unknown from accesses; declare it via an auxiliary use *)
  let e_full = Ir.(mul [ e; sum [ "i2" ] (input "C" [ "i2" ]) ]) in
  Schema.declare schema "C" ~dims:[| 7 |] ~fill:0.0;
  let _ = e_full in
  (* direct test with an explicit dims map *)
  let dims = Ir.Idx_map.(add "i" 5 (add "j" 4 empty)) in
  match Canonical.simplify dims e with
  | Ir.Map (Op.Mul, args) ->
      check_bool "has literal 5" true
        (List.exists (fun a -> a = Ir.Literal 5.0) args)
  | e' -> Alcotest.failf "unexpected: %s" (Ir.expr_to_string e')

let test_empty_agg_dropped () =
  let dims = Ir.Idx_map.empty in
  let e = Ir.Agg (Op.Add, [], Ir.input "A" [ "i" ]) in
  check_bool "dropped" true (Canonical.simplify dims e = Ir.input "A" [ "i" ])

let test_literal_folding () =
  let dims = Ir.Idx_map.empty in
  let e = Ir.Map (Op.Mul, [ Ir.Literal 2.0; Ir.Literal 3.0; Ir.input "A" [ "i" ] ]) in
  match Canonical.simplify dims e with
  | Ir.Map (Op.Mul, args) ->
      check_bool "folded to 6" true (List.mem (Ir.Literal 6.0) args);
      Alcotest.(check int) "two args" 2 (List.length args)
  | e' -> Alcotest.failf "unexpected: %s" (Ir.expr_to_string e')

(* -------------------------------------------------------------- *)
(* Canonical keys.                                                  *)
(* -------------------------------------------------------------- *)

let test_canonical_key_alpha_equivalence () =
  let e1 = Ir.(sum [ "j" ] (mul [ input "A" [ "i"; "j" ]; input "B" [ "j" ] ])) in
  let e2 = Ir.(sum [ "q" ] (mul [ input "A" [ "p"; "q" ]; input "B" [ "q" ] ])) in
  check_str "alpha equivalent" (Canonical.canonical_key e1)
    (Canonical.canonical_key e2)

let test_canonical_key_commutative_order () =
  let e1 = Ir.(mul [ input "A" [ "i" ]; input "B" [ "i" ] ]) in
  let e2 = Ir.(mul [ input "B" [ "i" ]; input "A" [ "i" ] ]) in
  check_str "commutative sorted" (Canonical.canonical_key e1)
    (Canonical.canonical_key e2)

let test_canonical_key_distinguishes () =
  let e1 = Ir.(mul [ input "A" [ "i" ]; input "B" [ "i" ] ]) in
  let e2 = Ir.(add [ input "A" [ "i" ]; input "B" [ "i" ] ]) in
  check_bool "different ops differ" true
    (Canonical.canonical_key e1 <> Canonical.canonical_key e2);
  let e3 = Ir.(mul [ input "A" [ "i" ]; input "B" [ "j" ] ]) in
  check_bool "different idx structure differs" true
    (Canonical.canonical_key e1 <> Canonical.canonical_key e3)

let test_canonical_key_noncommutative_order () =
  let e1 = Ir.Map (Op.Sub, [ Ir.input "A" [ "i" ]; Ir.input "B" [ "i" ] ]) in
  let e2 = Ir.Map (Op.Sub, [ Ir.input "B" [ "i" ]; Ir.input "A" [ "i" ] ]) in
  check_bool "sub order matters" true
    (Canonical.canonical_key e1 <> Canonical.canonical_key e2)

let test_resolve_alias_key () =
  let e = Ir.alias "t1" [ "i" ] in
  let k1 = Canonical.canonical_key ~resolve_alias:(fun _ -> "DEF") e in
  let k2 =
    Canonical.canonical_key ~resolve_alias:(fun _ -> "DEF")
      (Ir.alias "t2" [ "i" ])
  in
  check_str "aliases with same def share keys" k1 k2

(* -------------------------------------------------------------- *)
(* Schema.                                                          *)
(* -------------------------------------------------------------- *)

let test_schema_index_dims () =
  let schema = schema_with [ ("A", [| 3; 4 |]); ("B", [| 4; 5 |]) ] in
  let e = Ir.(mul [ input "A" [ "i"; "j" ]; input "B" [ "j"; "k" ] ]) in
  let dims = Schema.index_dims schema e in
  Alcotest.(check int) "i" 3 (Schema.dim_of_idx dims "i");
  Alcotest.(check int) "j" 4 (Schema.dim_of_idx dims "j");
  Alcotest.(check int) "k" 5 (Schema.dim_of_idx dims "k")

let test_schema_inconsistent () =
  let schema = schema_with [ ("A", [| 3 |]); ("B", [| 4 |]) ] in
  let e = Ir.(mul [ input "A" [ "i" ]; input "B" [ "i" ] ]) in
  Alcotest.check_raises "conflict"
    (Invalid_argument "Schema: index i bound to both 3 and 4") (fun () ->
      ignore (Schema.index_dims schema e))

let test_schema_arity_mismatch () =
  let schema = schema_with [ ("A", [| 3; 4 |]) ] in
  let e = Ir.input "A" [ "i" ] in
  check_bool "raises" true
    (try
       ignore (Schema.index_dims schema e);
       false
     with Invalid_argument _ -> true)

let test_expr_fill () =
  let schema = schema_with [ ("A", [| 3; 4 |]) ] in
  let dims = Ir.Idx_map.(add "i" 3 (add "j" 4 empty)) in
  let fill_of e = Schema.expr_fill schema dims e in
  Alcotest.(check (float 1e-9))
    "sigmoid fill" 0.5
    (fill_of Ir.(map Op.Sigmoid [ input "A" [ "i"; "j" ] ]));
  Alcotest.(check (float 1e-9))
    "sum fill" 0.0
    (fill_of Ir.(sum [ "j" ] (input "A" [ "i"; "j" ])));
  Alcotest.(check (float 1e-9))
    "sum of shifted fill" 8.0
    (fill_of Ir.(sum [ "j" ] (add [ input "A" [ "i"; "j" ]; lit 2.0 ])))

let test_query_output_declare () =
  let schema = schema_with [ ("A", [| 3; 4 |]) ] in
  let q = Ir.query "Q" Ir.(sum [ "j" ] (input "A" [ "i"; "j" ])) in
  Schema.declare_query_output schema q ~output_idxs:[ "i" ];
  let info = Schema.info_exn schema "Q" in
  Alcotest.(check (array int)) "dims" [| 3 |] info.Schema.dims

(* -------------------------------------------------------------- *)
(* Logical dialect validation.                                      *)
(* -------------------------------------------------------------- *)

let test_logical_query_validation () =
  let body = Ir.(mul [ input "A" [ "i"; "j" ]; input "B" [ "j" ] ]) in
  let q =
    Galley_plan.Logical_query.make ~name:"q" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body ()
  in
  Alcotest.(check (list string)) "outputs" [ "i" ] q.Galley_plan.Logical_query.output_idxs;
  check_bool "agg body rejected" true
    (try
       ignore
         (Galley_plan.Logical_query.make ~name:"bad" ~agg_op:Op.Add
            ~agg_idxs:[ "i" ]
            ~body:Ir.(sum [ "j" ] (input "A" [ "i"; "j" ]))
            ());
       false
     with Invalid_argument _ -> true)

let test_logical_of_query () =
  let q =
    Ir.query "q" Ir.(sum [ "i"; "j" ] (input "A" [ "i"; "j" ]))
  in
  (match Galley_plan.Logical_query.of_query q with
  | Some lq ->
      Alcotest.(check (list string)) "no outputs" [] lq.Galley_plan.Logical_query.output_idxs
  | None -> Alcotest.fail "should convert");
  let nested =
    Ir.query "q2"
      Ir.(sum [ "i" ] (map Op.Sqrt [ sum [ "j" ] (input "A" [ "i"; "j" ]) ]))
  in
  check_bool "nested agg not logical" true
    (Galley_plan.Logical_query.of_query nested = None)

(* Property: canonicalization preserves free indices. *)
let prop_canonicalize_preserves_free =
  QCheck.Test.make ~name:"canonicalize preserves free indices" ~count:100
    (QCheck.int_range 0 10_000)
    (fun seed ->
      let prng = Galley_tensor.Prng.create seed in
      let schema = Schema.create () in
      Schema.declare schema "A" ~dims:[| 3; 4 |] ~fill:0.0;
      Schema.declare schema "B" ~dims:[| 4 |] ~fill:0.0;
      Schema.declare schema "C" ~dims:[| 3 |] ~fill:0.0;
      (* random small expression *)
      let rec gen depth =
        if depth = 0 || Galley_tensor.Prng.int prng 3 = 0 then
          match Galley_tensor.Prng.int prng 3 with
          | 0 -> Ir.input "A" [ "i"; "j" ]
          | 1 -> Ir.input "B" [ "j" ]
          | _ -> Ir.input "C" [ "i" ]
        else
          match Galley_tensor.Prng.int prng 4 with
          | 0 -> Ir.add [ gen (depth - 1); gen (depth - 1) ]
          | 1 -> Ir.mul [ gen (depth - 1); gen (depth - 1) ]
          | 2 -> Ir.map Op.Sigmoid [ gen (depth - 1) ]
          | _ ->
              (* only aggregate indices the body actually mentions, so
                 every index has a known dimension *)
              let body = gen (depth - 1) in
              if Ir.Idx_set.mem "j" (Ir.free_indices body) then
                Ir.sum [ "j" ] body
              else body
      in
      let e = gen 3 in
      let free_before = Ir.free_indices e in
      let free_after = Ir.free_indices (Canonical.canonicalize schema e) in
      Ir.Idx_set.equal free_before free_after)

let () =
  Alcotest.run "ir"
    [
      ( "indices",
        [
          Alcotest.test_case "free/all/aggregated" `Quick test_free_indices;
          Alcotest.test_case "contains_agg" `Quick test_contains_agg;
          Alcotest.test_case "rename" `Quick test_rename;
        ] );
      ( "canonicalization",
        [
          Alcotest.test_case "merge maps" `Quick test_merge_nested_maps;
          Alcotest.test_case "merge aggs" `Quick test_merge_nested_aggs;
          Alcotest.test_case "lift agg" `Quick test_lift_agg_above_map;
          Alcotest.test_case "shadowed binder" `Quick test_no_lift_when_mentioned;
          Alcotest.test_case "uniquify" `Quick test_uniquify_shadowing;
          Alcotest.test_case "absent index" `Quick test_agg_over_absent_index;
          Alcotest.test_case "empty agg" `Quick test_empty_agg_dropped;
          Alcotest.test_case "literal folding" `Quick test_literal_folding;
        ] );
      ( "canonical keys",
        [
          Alcotest.test_case "alpha equivalence" `Quick test_canonical_key_alpha_equivalence;
          Alcotest.test_case "commutative order" `Quick test_canonical_key_commutative_order;
          Alcotest.test_case "distinguishes" `Quick test_canonical_key_distinguishes;
          Alcotest.test_case "noncommutative order" `Quick test_canonical_key_noncommutative_order;
          Alcotest.test_case "alias resolution" `Quick test_resolve_alias_key;
        ] );
      ( "schema",
        [
          Alcotest.test_case "index dims" `Quick test_schema_index_dims;
          Alcotest.test_case "inconsistent" `Quick test_schema_inconsistent;
          Alcotest.test_case "arity mismatch" `Quick test_schema_arity_mismatch;
          Alcotest.test_case "expr fill" `Quick test_expr_fill;
          Alcotest.test_case "query output" `Quick test_query_output_declare;
        ] );
      ( "logical dialect",
        [
          Alcotest.test_case "validation" `Quick test_logical_query_validation;
          Alcotest.test_case "of_query" `Quick test_logical_of_query;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_canonicalize_preserves_free ] );
    ]
