(* Tests for the sparsity-estimation framework: the uniform estimator's
   closed-form cases, the chain bound's soundness as an upper bound
   (property-checked against true non-fill counts), aggregation projections,
   renaming, and the estimation context. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module Schema = Galley_plan.Schema
module Uniform = Galley_stats.Uniform
module Chain = Galley_stats.Chain
module Ctx = Galley_stats.Ctx

let check_float = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)

let dims_of (l : (string * int) list) : int Ir.Idx_map.t =
  List.fold_left (fun acc (i, n) -> Ir.Idx_map.add i n acc) Ir.Idx_map.empty l

let sparse_matrix ~prng ~rows ~cols ~density =
  T.random ~prng ~dims:[| rows; cols |]
    ~formats:[| T.Dense; T.Sparse_list |]
    ~density ()

(* -------------------------------------------------------------- *)
(* Uniform estimator.                                               *)
(* -------------------------------------------------------------- *)

let test_uniform_of_tensor () =
  let prng = Prng.create 1 in
  let t = sparse_matrix ~prng ~rows:10 ~cols:10 ~density:0.3 in
  let s = Uniform.of_tensor t ~idxs:[ "i"; "j" ] in
  check_float "nnz" (float_of_int (T.nnz t)) (Uniform.estimate s)

let test_uniform_annihilating () =
  (* A[i,j] (30 nnz over 100) * B[j,k] (20 nnz over 100):
     expected = 100*100/... : out space 10*10*10, p = .3 * .2 *)
  let dims = dims_of [ ("i", 10); ("j", 10); ("k", 10) ] in
  let a = { Uniform.idxs = Ir.Idx_set.of_list [ "i"; "j" ];
            dims = dims_of [ ("i", 10); ("j", 10) ]; nnz = 30.0 } in
  let b = { Uniform.idxs = Ir.Idx_set.of_list [ "j"; "k" ];
            dims = dims_of [ ("j", 10); ("k", 10) ]; nnz = 20.0 } in
  let c = Uniform.map_annihilating ~dims [ a; b ] in
  check_float "product density" (1000.0 *. 0.3 *. 0.2) (Uniform.estimate c)

let test_uniform_non_annihilating () =
  let dims = dims_of [ ("i", 10); ("j", 10) ] in
  let a = { Uniform.idxs = Ir.Idx_set.of_list [ "i"; "j" ]; dims; nnz = 30.0 } in
  let b = { Uniform.idxs = Ir.Idx_set.of_list [ "i"; "j" ]; dims; nnz = 20.0 } in
  let c = Uniform.map_non_annihilating ~dims [ a; b ] in
  (* 100 * (1 - 0.7*0.8) = 44 *)
  check_float "union density" 44.0 (Uniform.estimate c)

let test_uniform_aggregate () =
  let dims = dims_of [ ("i", 10); ("j", 10) ] in
  let a = { Uniform.idxs = Ir.Idx_set.of_list [ "i"; "j" ]; dims; nnz = 30.0 } in
  let c = Uniform.aggregate ~dims a ~over:[ "j" ] in
  (* 10 * (1 - 0.7^10) *)
  check_float "projection" (10.0 *. (1.0 -. (0.7 ** 10.0))) (Uniform.estimate c);
  check_bool "idxs shrink" true
    (Ir.Idx_set.equal (Uniform.idxs c) (Ir.Idx_set.singleton "i"))

let test_uniform_rename () =
  let dims = dims_of [ ("i", 10); ("j", 20) ] in
  let a = { Uniform.idxs = Ir.Idx_set.of_list [ "i"; "j" ]; dims; nnz = 30.0 } in
  let r = Uniform.rename a (fun x -> if x = "i" then "p" else x) in
  check_bool "renamed" true (Ir.Idx_set.mem "p" (Uniform.idxs r));
  check_float "same estimate" 30.0 (Uniform.estimate r)

let test_uniform_literal () =
  check_float "literal deviates nowhere" 0.0 (Uniform.estimate (Uniform.of_literal 2.0))

(* -------------------------------------------------------------- *)
(* Chain bound.                                                     *)
(* -------------------------------------------------------------- *)

let test_chain_of_tensor_exact_total () =
  let prng = Prng.create 2 in
  let t = sparse_matrix ~prng ~rows:8 ~cols:8 ~density:0.4 in
  let s = Chain.of_tensor t ~idxs:[ "i"; "j" ] in
  check_float "total exact" (float_of_int (T.nnz t)) (Chain.estimate s)

let test_chain_degree_bound_matrix () =
  (* A matrix with one dense row: D(j|i) = cols, D(i|j) small. *)
  let entries = Array.init 6 (fun j -> ([| 2; j |], 1.0)) in
  let t = T.of_coo ~dims:[| 6; 6 |] ~formats:[| T.Dense; T.Sparse_list |] entries in
  let s = Chain.of_tensor t ~idxs:[ "i"; "j" ] in
  check_float "estimate = nnz" 6.0 (Chain.estimate s)

let test_chain_triangle_bound () =
  (* nnz(A_ij * B_jk) <= chain bound; check the bound is no tighter than
     the true count on a concrete instance. *)
  let prng = Prng.create 3 in
  let a = sparse_matrix ~prng ~rows:8 ~cols:8 ~density:0.3 in
  let b = sparse_matrix ~prng ~rows:8 ~cols:8 ~density:0.3 in
  let dims = dims_of [ ("i", 8); ("j", 8); ("k", 8) ] in
  let sa = Chain.of_tensor a ~idxs:[ "i"; "j" ] in
  let sb = Chain.of_tensor b ~idxs:[ "j"; "k" ] in
  let sc = Chain.map_annihilating ~dims [ sa; sb ] in
  let true_count = ref 0 in
  for i = 0 to 7 do
    for j = 0 to 7 do
      for k = 0 to 7 do
        if T.get a [| i; j |] <> 0.0 && T.get b [| j; k |] <> 0.0 then
          incr true_count
      done
    done
  done;
  check_bool "upper bound" true
    (Chain.estimate sc +. 1e-9 >= float_of_int !true_count)

let test_chain_aggregate_drops_conditioned () =
  let prng = Prng.create 4 in
  let t = sparse_matrix ~prng ~rows:8 ~cols:8 ~density:0.4 in
  let s = Chain.of_tensor t ~idxs:[ "i"; "j" ] in
  let dims = dims_of [ ("i", 8); ("j", 8) ] in
  let p = Chain.aggregate ~dims s ~over:[ "j" ] in
  check_bool "projection bounded by rows" true (Chain.estimate p <= 8.0);
  (* and it is a sound upper bound on the number of non-empty rows *)
  let nonempty = ref 0 in
  for i = 0 to 7 do
    let any = ref false in
    for j = 0 to 7 do
      if T.get t [| i; j |] <> 0.0 then any := true
    done;
    if !any then incr nonempty
  done;
  check_bool "sound" true (Chain.estimate p +. 1e-9 >= float_of_int !nonempty)

(* Property: the chain bound is an upper bound on the true non-fill count of
   random sum-product expressions. *)
let prop_chain_upper_bound =
  QCheck.Test.make ~name:"chain bound is an upper bound" ~count:80
    (QCheck.int_range 0 100_000)
    (fun seed ->
      let prng = Prng.create seed in
      let n = 4 + Prng.int prng 4 in
      let a = sparse_matrix ~prng ~rows:n ~cols:n ~density:0.4 in
      let b = sparse_matrix ~prng ~rows:n ~cols:n ~density:0.4 in
      let dims = dims_of [ ("i", n); ("j", n); ("k", n) ] in
      let sa = Chain.of_tensor a ~idxs:[ "i"; "j" ] in
      let sb = Chain.of_tensor b ~idxs:[ "j"; "k" ] in
      (* product then project: matrix multiplication pattern *)
      let prod = Chain.map_annihilating ~dims [ sa; sb ] in
      let proj = Chain.aggregate ~dims prod ~over:[ "j" ] in
      let true_prod = ref 0 and true_proj = ref 0 in
      for i = 0 to n - 1 do
        for k = 0 to n - 1 do
          let any = ref false in
          for j = 0 to n - 1 do
            if T.get a [| i; j |] <> 0.0 && T.get b [| j; k |] <> 0.0 then begin
              incr true_prod;
              any := true
            end
          done;
          if !any then incr true_proj
        done
      done;
      Chain.estimate prod +. 1e-9 >= float_of_int !true_prod
      && Chain.estimate proj +. 1e-9 >= float_of_int !true_proj)

(* Property: non-annihilating merges bound the union pattern. *)
let prop_chain_union_upper_bound =
  QCheck.Test.make ~name:"chain bound covers unions" ~count:80
    (QCheck.int_range 0 100_000)
    (fun seed ->
      let prng = Prng.create seed in
      let n = 4 + Prng.int prng 4 in
      let a = sparse_matrix ~prng ~rows:n ~cols:n ~density:0.3 in
      let b = sparse_matrix ~prng ~rows:n ~cols:n ~density:0.3 in
      let dims = dims_of [ ("i", n); ("j", n) ] in
      let sa = Chain.of_tensor a ~idxs:[ "i"; "j" ] in
      let sb = Chain.of_tensor b ~idxs:[ "i"; "j" ] in
      let sum = Chain.map_non_annihilating ~dims [ sa; sb ] in
      let true_union = ref 0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if T.get a [| i; j |] <> 0.0 || T.get b [| i; j |] <> 0.0 then
            incr true_union
        done
      done;
      Chain.estimate sum +. 1e-9 >= float_of_int !true_union)

(* -------------------------------------------------------------- *)
(* Estimation context.                                              *)
(* -------------------------------------------------------------- *)

let make_ctx ?(kind = Ctx.Chain_kind) (inputs : (string * T.t) list) : Ctx.t =
  let schema = Schema.create () in
  List.iter (fun (n, t) -> Schema.declare_tensor schema n t) inputs;
  let ctx = Ctx.create ~kind schema in
  List.iter (fun (n, t) -> ctx.Ctx.register_input n t) inputs;
  ctx

let test_ctx_estimates_input () =
  let prng = Prng.create 6 in
  let t = sparse_matrix ~prng ~rows:10 ~cols:10 ~density:0.3 in
  List.iter
    (fun kind ->
      let ctx = make_ctx ~kind [ ("A", t) ] in
      check_float
        (Ctx.kind_to_string kind)
        (float_of_int (T.nnz t))
        (ctx.Ctx.estimate_expr (Ir.input "A" [ "i"; "j" ])))
    [ Ctx.Uniform_kind; Ctx.Chain_kind ]

let test_ctx_sigmoid_fill_flip () =
  (* sigmoid makes everything non-fill w.r.t. the *new* fill only where the
     input deviates: pattern size is preserved. *)
  let prng = Prng.create 7 in
  let t = sparse_matrix ~prng ~rows:10 ~cols:10 ~density:0.3 in
  let ctx = make_ctx [ ("A", t) ] in
  let est =
    ctx.Ctx.estimate_expr (Ir.map Op.Sigmoid [ Ir.input "A" [ "i"; "j" ] ])
  in
  check_bool "pattern preserved" true (est >= float_of_int (T.nnz t) -. 1e-6)

let test_ctx_alias_estimated () =
  let prng = Prng.create 8 in
  let a = sparse_matrix ~prng ~rows:10 ~cols:10 ~density:0.3 in
  let ctx = make_ctx [ ("A", a) ] in
  let def = Ir.(sum [ "j" ] (input "A" [ "i"; "j" ])) in
  Schema.declare ctx.Ctx.schema "V" ~dims:[| 10 |] ~fill:0.0;
  ctx.Ctx.register_alias_estimated "V" ~output_idxs:[ "i" ] def;
  check_bool "alias registered" true (ctx.Ctx.has_stats "V");
  let est = ctx.Ctx.estimate_expr (Ir.alias "V" [ "q" ]) in
  check_bool "estimate sane" true (est >= 0.0 && est <= 10.0)

let test_ctx_alias_measured_overrides () =
  let prng = Prng.create 9 in
  let a = sparse_matrix ~prng ~rows:10 ~cols:10 ~density:0.3 in
  let ctx = make_ctx [ ("A", a) ] in
  Schema.declare ctx.Ctx.schema "V" ~dims:[| 10 |] ~fill:0.0;
  ctx.Ctx.register_alias_estimated "V" ~output_idxs:[ "i" ]
    Ir.(sum [ "j" ] (input "A" [ "i"; "j" ]));
  let measured =
    T.of_coo ~dims:[| 10 |] ~formats:[| T.Sparse_list |] [| ([| 3 |], 1.0) |]
  in
  ctx.Ctx.register_alias_tensor "V" measured;
  check_float "measured wins" 1.0 (ctx.Ctx.estimate_expr (Ir.alias "V" [ "i" ]))

let test_ctx_clone_isolated () =
  let prng = Prng.create 10 in
  let a = sparse_matrix ~prng ~rows:10 ~cols:10 ~density:0.3 in
  let ctx = make_ctx [ ("A", a) ] in
  let clone = ctx.Ctx.clone () in
  Schema.declare clone.Ctx.schema "W" ~dims:[| 10 |] ~fill:0.0;
  clone.Ctx.register_alias_estimated "W" ~output_idxs:[ "i" ]
    Ir.(sum [ "j" ] (input "A" [ "i"; "j" ]));
  check_bool "clone has it" true (clone.Ctx.has_stats "W");
  check_bool "original does not" false (ctx.Ctx.has_stats "W")

let test_ctx_access_projected () =
  let entries = Array.init 6 (fun j -> ([| 2; j |], 1.0)) in
  let t = T.of_coo ~dims:[| 6; 6 |] ~formats:[| T.Dense; T.Sparse_list |] entries in
  let ctx = make_ctx [ ("A", t) ] in
  let total =
    ctx.Ctx.estimate_access_projected "A" [ "i"; "j" ]
      (Ir.Idx_set.of_list [ "i"; "j" ])
  in
  check_float "full" 6.0 total;
  let rows =
    ctx.Ctx.estimate_access_projected "A" [ "i"; "j" ] (Ir.Idx_set.singleton "i")
  in
  check_bool "rows >= 1" true (rows >= 1.0 && rows <= 6.0)

(* -------------------------------------------------------------- *)
(* Cost model.                                                      *)
(* -------------------------------------------------------------- *)

let test_cost_model () =
  let open Galley_stats.Cost in
  let c = logical_query_cost ~nnz_body:100.0 ~nnz_out:10.0 () in
  check_bool "positive" true (c > 0.0);
  let c2 = logical_query_cost ~nnz_body:100.0 ~nnz_out:1000.0 () in
  check_bool "bigger output costs more" true (c2 > c);
  check_float "transpose linear" (2.0 *. transpose_cost ~nnz:50.0 ())
    (transpose_cost ~nnz:100.0 ())

let () =
  Alcotest.run "stats"
    [
      ( "uniform",
        [
          Alcotest.test_case "of_tensor" `Quick test_uniform_of_tensor;
          Alcotest.test_case "annihilating" `Quick test_uniform_annihilating;
          Alcotest.test_case "non-annihilating" `Quick test_uniform_non_annihilating;
          Alcotest.test_case "aggregate" `Quick test_uniform_aggregate;
          Alcotest.test_case "rename" `Quick test_uniform_rename;
          Alcotest.test_case "literal" `Quick test_uniform_literal;
        ] );
      ( "chain",
        [
          Alcotest.test_case "exact total" `Quick test_chain_of_tensor_exact_total;
          Alcotest.test_case "degree bound" `Quick test_chain_degree_bound_matrix;
          Alcotest.test_case "triangle bound" `Quick test_chain_triangle_bound;
          Alcotest.test_case "aggregate" `Quick test_chain_aggregate_drops_conditioned;
        ] );
      ( "context",
        [
          Alcotest.test_case "input estimate" `Quick test_ctx_estimates_input;
          Alcotest.test_case "sigmoid fill" `Quick test_ctx_sigmoid_fill_flip;
          Alcotest.test_case "alias estimated" `Quick test_ctx_alias_estimated;
          Alcotest.test_case "alias measured" `Quick test_ctx_alias_measured_overrides;
          Alcotest.test_case "clone isolation" `Quick test_ctx_clone_isolated;
          Alcotest.test_case "projected access" `Quick test_ctx_access_projected;
        ] );
      ("cost", [ Alcotest.test_case "weights" `Quick test_cost_model ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_chain_upper_bound; prop_chain_union_upper_bound ] );
    ]
