(* Tests for the operator algebra: evaluation, identities, annihilators,
   the repeated-application function g, distributivity facts, and algebraic
   property checks over random values. *)

module Op = Galley_plan.Op

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let variadic_ops = [ Op.Add; Op.Mul; Op.Max; Op.Min; Op.Or; Op.And ]

let test_apply2 () =
  check_float "add" 5.0 (Op.apply2 Op.Add 2.0 3.0);
  check_float "mul" 6.0 (Op.apply2 Op.Mul 2.0 3.0);
  check_float "max" 3.0 (Op.apply2 Op.Max 2.0 3.0);
  check_float "min" 2.0 (Op.apply2 Op.Min 2.0 3.0);
  check_float "sub" (-1.0) (Op.apply2 Op.Sub 2.0 3.0);
  check_float "div" 2.0 (Op.apply2 Op.Div 6.0 3.0);
  check_float "pow" 8.0 (Op.apply2 Op.Pow 2.0 3.0);
  check_float "or true" 1.0 (Op.apply2 Op.Or 0.0 2.0);
  check_float "or false" 0.0 (Op.apply2 Op.Or 0.0 0.0);
  check_float "and" 1.0 (Op.apply2 Op.And 2.0 3.0);
  check_float "and false" 0.0 (Op.apply2 Op.And 2.0 0.0);
  check_float "lt" 1.0 (Op.apply2 Op.Lt 2.0 3.0);
  check_float "geq" 0.0 (Op.apply2 Op.Geq 2.0 3.0)

let test_apply1 () =
  check_float "sigmoid 0" 0.5 (Op.apply1 Op.Sigmoid 0.0);
  check_bool "sigmoid large" true (Op.apply1 Op.Sigmoid 100.0 > 0.999);
  check_float "relu neg" 0.0 (Op.apply1 Op.Relu (-3.0));
  check_float "relu pos" 3.0 (Op.apply1 Op.Relu 3.0);
  check_float "neg" (-2.0) (Op.apply1 Op.Neg 2.0);
  check_float "abs" 2.0 (Op.apply1 Op.Abs (-2.0));
  check_float "square" 9.0 (Op.apply1 Op.Square 3.0);
  check_float "sign" (-1.0) (Op.apply1 Op.Sign (-0.5));
  check_float "ident" 7.0 (Op.apply1 Op.Ident 7.0)

let test_apply_variadic () =
  check_float "sum" 10.0 (Op.apply Op.Add [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "prod" 24.0 (Op.apply Op.Mul [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "max" 4.0 (Op.apply Op.Max [| 1.0; 4.0; 3.0 |]);
  check_float "singleton" 5.0 (Op.apply Op.Add [| 5.0 |])

let test_identity_law () =
  List.iter
    (fun op ->
      (* Or/And operate on booleans; their identities hold on {0,1}. *)
      let domain =
        match op with
        | Op.Or | Op.And -> [ 0.0; 1.0 ]
        | _ -> [ -2.5; 0.0; 3.0 ]
      in
      match Op.identity op with
      | Some e ->
          List.iter
            (fun x ->
              check_float
                (Op.to_string op ^ " identity")
                x (Op.apply2 op x e))
            domain
      | None -> ())
    variadic_ops

let test_annihilator_law () =
  List.iter
    (fun op ->
      match Op.annihilator op with
      | Some a ->
          List.iter
            (fun x ->
              check_float
                (Op.to_string op ^ " annihilator")
                a (Op.apply2 op x a))
            [ -2.5; 0.5; 3.0 ]
      | None -> ())
    variadic_ops

let test_repeat_matches_fold () =
  (* g(x, n) must equal folding n copies of x into the identity, which is
     exactly how the engine accumulates. *)
  List.iter
    (fun op ->
      List.iter
        (fun x ->
          List.iter
            (fun n ->
              let acc = ref (Option.get (Op.identity op)) in
              for _ = 1 to n do
                acc := Op.apply2 op !acc x
              done;
              check_float
                (Printf.sprintf "g(%s, %g, %d)" (Op.to_string op) x n)
                !acc (Op.repeat op x n))
            [ 0; 1; 2; 5 ])
        [ 0.5; 2.0 ])
    variadic_ops

let test_repeat_idempotent () =
  check_float "max idempotent" 3.0 (Op.repeat Op.Max 3.0 1000);
  check_float "add scales" 3000.0 (Op.repeat Op.Add 3.0 1000)

let test_distributivity_facts () =
  check_bool "mul over add" true
    (Op.distributes_over ~pointwise:Op.Mul ~aggregate:Op.Add);
  check_bool "and over or" true
    (Op.distributes_over ~pointwise:Op.And ~aggregate:Op.Or);
  check_bool "add over max" true
    (Op.distributes_over ~pointwise:Op.Add ~aggregate:Op.Max);
  check_bool "mul over max excluded (sign)" false
    (Op.distributes_over ~pointwise:Op.Mul ~aggregate:Op.Max);
  check_bool "sigmoid blocks" false
    (Op.distributes_over ~pointwise:Op.Sigmoid ~aggregate:Op.Add)

(* Verify the declared distributivity facts semantically:
   f(a, g(b,c)) = g(f(a,b), f(a,c)). *)
let prop_distributivity_sound =
  QCheck.Test.make ~name:"declared distributivity holds on values" ~count:200
    QCheck.(triple (float_range (-10.0) 10.0) (float_range (-10.0) 10.0) (float_range (-10.0) 10.0))
    (fun (a, b, c) ->
      List.for_all
        (fun (f, g) ->
          if Op.distributes_over ~pointwise:f ~aggregate:g then begin
            let lhs = Op.apply2 f a (Op.apply2 g b c) in
            let rhs = Op.apply2 g (Op.apply2 f a b) (Op.apply2 f a c) in
            abs_float (lhs -. rhs) <= 1e-6 *. Float.max 1.0 (abs_float lhs)
          end
          else true)
        [
          (Op.Mul, Op.Add); (Op.Add, Op.Max); (Op.Add, Op.Min);
          (Op.Max, Op.Max); (Op.Min, Op.Min);
        ])

let prop_commutative =
  QCheck.Test.make ~name:"variadic operators commute" ~count:200
    QCheck.(pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0))
    (fun (a, b) ->
      List.for_all
        (fun op -> Op.apply2 op a b = Op.apply2 op b a)
        variadic_ops)

let prop_associative =
  QCheck.Test.make ~name:"variadic operators associate" ~count:200
    QCheck.(triple (float_range (-4.0) 4.0) (float_range (-4.0) 4.0) (float_range (-4.0) 4.0))
    (fun (a, b, c) ->
      List.for_all
        (fun op ->
          let lhs = Op.apply2 op (Op.apply2 op a b) c in
          let rhs = Op.apply2 op a (Op.apply2 op b c) in
          abs_float (lhs -. rhs) <= 1e-9 *. Float.max 1.0 (abs_float lhs))
        variadic_ops)

let prop_aggregates_commute_sound =
  (* If declared commuting, aggregating a 2x2 grid row-first equals
     column-first. *)
  QCheck.Test.make ~name:"declared aggregate commutation holds" ~count:200
    QCheck.(
      quad (float_range (-5.0) 5.0) (float_range (-5.0) 5.0)
        (float_range (-5.0) 5.0) (float_range (-5.0) 5.0))
    (fun (a, b, c, d) ->
      List.for_all
        (fun (f, g) ->
          if Op.aggregates_commute f g && f <> Op.Ident && g <> Op.Ident then begin
            let rows = Op.apply2 f (Op.apply2 g a b) (Op.apply2 g c d) in
            let cols = Op.apply2 g (Op.apply2 f a c) (Op.apply2 f b d) in
            (* only same-op pairs are declared, where both orders agree *)
            abs_float (rows -. cols) <= 1e-9 *. Float.max 1.0 (abs_float rows)
          end
          else true)
        [ (Op.Add, Op.Add); (Op.Max, Op.Max); (Op.Max, Op.Min); (Op.Add, Op.Max) ])

let test_of_string_roundtrip () =
  List.iter
    (fun op ->
      Alcotest.(check string)
        "roundtrip" (Op.to_string op)
        (Op.to_string (Op.of_string (Op.to_string op))))
    [
      Op.Add; Op.Mul; Op.Max; Op.Min; Op.Or; Op.And; Op.Sub; Op.Div; Op.Pow;
      Op.Sigmoid; Op.Relu; Op.Ident; Op.Square;
    ]

let test_is_aggregate () =
  check_bool "add" true (Op.is_aggregate Op.Add);
  check_bool "ident" true (Op.is_aggregate Op.Ident);
  check_bool "sigmoid" false (Op.is_aggregate Op.Sigmoid);
  check_bool "sub" false (Op.is_aggregate Op.Sub)

let () =
  Alcotest.run "op"
    [
      ( "evaluation",
        [
          Alcotest.test_case "binary" `Quick test_apply2;
          Alcotest.test_case "unary" `Quick test_apply1;
          Alcotest.test_case "variadic" `Quick test_apply_variadic;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "identity law" `Quick test_identity_law;
          Alcotest.test_case "annihilator law" `Quick test_annihilator_law;
          Alcotest.test_case "repeat = fold" `Quick test_repeat_matches_fold;
          Alcotest.test_case "repeat idempotent" `Quick test_repeat_idempotent;
          Alcotest.test_case "distributivity table" `Quick test_distributivity_facts;
          Alcotest.test_case "aggregate predicate" `Quick test_is_aggregate;
          Alcotest.test_case "of_string" `Quick test_of_string_roundtrip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_distributivity_sound;
            prop_commutative;
            prop_associative;
            prop_aggregates_commute_sound;
          ] );
    ]
