(* Tests for the physical optimizer: constraint trees, loop-order choice
   (the paper's Example 6), transposition insertion for discordant inputs,
   output-format selection by sparsity and write pattern, format overrides,
   and access-protocol assignment. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module Schema = Galley_plan.Schema
module LQ = Galley_plan.Logical_query
module Phys = Galley_plan.Physical
module Popt = Galley_physical.Optimizer
module Cons = Galley_physical.Constraints
module Ctx = Galley_stats.Ctx

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_ctx (inputs : (string * T.t) list) : Ctx.t =
  let schema = Schema.create () in
  List.iter (fun (n, t) -> Schema.declare_tensor schema n t) inputs;
  let ctx = Ctx.create schema in
  List.iter (fun (n, t) -> ctx.Ctx.register_input n t) inputs;
  ctx

let fresh_gen () =
  let c = ref 0 in
  fun () ->
    incr c;
    Printf.sprintf "#x%d" !c

let kernels_of (plan : Phys.plan) : Phys.kernel list =
  List.filter_map (function Phys.Kernel k -> Some k | _ -> None) plan

let transposes_of (plan : Phys.plan) =
  List.filter_map (function Phys.Transpose _ as t -> Some t | _ -> None) plan

(* -------------------------------------------------------------- *)
(* Constraint trees.                                                *)
(* -------------------------------------------------------------- *)

let access tensor idxs =
  { Phys.tensor; kind = `Input; idxs; protocols = List.map (fun _ -> Phys.Lookup) idxs }

let test_constraint_mul_is_and () =
  let accesses = [| access "A" [ "i"; "j" ]; access "B" [ "j" ] |] in
  let body = Phys.P_map (Op.Mul, [ Phys.P_access 0; Phys.P_access 1 ]) in
  let tree = Cons.derive ~accesses ~fills:(fun _ -> 0.0) ~idx:"j" body in
  match tree with
  | Cons.C_and members ->
      check_int "two members" 2 (List.length members)
  | t -> Alcotest.failf "expected and, got %s" (Format.asprintf "%a" Cons.pp t)

let test_constraint_add_is_or () =
  let accesses = [| access "A" [ "i" ]; access "B" [ "i" ] |] in
  let body = Phys.P_map (Op.Add, [ Phys.P_access 0; Phys.P_access 1 ]) in
  match Cons.derive ~accesses ~fills:(fun _ -> 0.0) ~idx:"i" body with
  | Cons.C_or members -> check_int "two members" 2 (List.length members)
  | t -> Alcotest.failf "expected or, got %s" (Format.asprintf "%a" Cons.pp t)

let test_constraint_nonzero_fill_breaks_and () =
  (* Mul(A fill 0, B fill 1): only A constrains. *)
  let accesses = [| access "A" [ "i" ]; access "B" [ "i" ] |] in
  let body = Phys.P_map (Op.Mul, [ Phys.P_access 0; Phys.P_access 1 ]) in
  match
    Cons.derive ~accesses
      ~fills:(fun a -> if a = 0 then 0.0 else 1.0)
      ~idx:"i" body
  with
  | Cons.C_access 0 -> ()
  | t -> Alcotest.failf "expected access 0, got %s" (Format.asprintf "%a" Cons.pp t)

let test_constraint_literal_zero_annihilates () =
  let accesses = [| access "A" [ "i" ] |] in
  let body = Phys.P_map (Op.Mul, [ Phys.P_access 0; Phys.P_literal 0.0 ]) in
  check_bool "constant zero" true
    (Cons.derive ~accesses ~fills:(fun _ -> 0.0) ~idx:"i" body = Cons.C_empty)

let test_constraint_unmentioned_index () =
  let accesses = [| access "A" [ "i" ] |] in
  let body = Phys.P_access 0 in
  check_bool "cylindrical" true
    (Cons.derive ~accesses ~fills:(fun _ -> 0.0) ~idx:"z" body = Cons.C_all)

let test_constraint_mixed_tree () =
  (* (A_i * B_i) + C_i -> or(and(A,B), C) *)
  let accesses = [| access "A" [ "i" ]; access "B" [ "i" ]; access "C" [ "i" ] |] in
  let body =
    Phys.P_map
      (Op.Add,
       [ Phys.P_map (Op.Mul, [ Phys.P_access 0; Phys.P_access 1 ]); Phys.P_access 2 ])
  in
  match Cons.derive ~accesses ~fills:(fun _ -> 0.0) ~idx:"i" body with
  | Cons.C_or [ Cons.C_and _; Cons.C_access 2 ] -> ()
  | t -> Alcotest.failf "unexpected tree %s" (Format.asprintf "%a" Cons.pp t)

(* -------------------------------------------------------------- *)
(* Loop order (paper Example 6).                                    *)
(* -------------------------------------------------------------- *)

let test_example6_loop_order () =
  (* D[i,l] = Σ_jk A[i,j] B[j,k] C[k,l]; A has a single non-zero, B and C
     are much denser.  The loop order must start from A's indices. *)
  let a =
    T.of_coo ~dims:[| 20; 20 |] ~formats:[| T.Dense; T.Sparse_list |]
      [| ([| 3; 7 |], 1.0) |]
  in
  let prng = Prng.create 61 in
  let b =
    T.random ~prng ~dims:[| 20; 20 |] ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.25 ()
  in
  let c =
    T.random ~prng ~dims:[| 20; 20 |] ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.25 ()
  in
  let ctx = make_ctx [ ("A", a); ("B", b); ("C", c) ] in
  let q =
    LQ.make ~output_idxs:[ "i"; "l" ] ~name:"D" ~agg_op:Op.Add
      ~agg_idxs:[ "j"; "k" ]
      ~body:
        Ir.(
          mul
            [
              input "A" [ "i"; "j" ]; input "B" [ "j"; "k" ];
              input "C" [ "k"; "l" ];
            ])
      ()
  in
  let plan = Popt.plan_query ctx ~fresh:(fresh_gen ()) q in
  let k = List.hd (kernels_of plan) in
  (match k.Phys.loop_order with
  | x :: y :: _ ->
      check_bool "starts from A's indices" true
        (List.mem x [ "i"; "j" ] && List.mem y [ "i"; "j" ])
  | _ -> Alcotest.fail "short loop order");
  Phys.validate_kernel k

let test_transpose_inserted_for_discordant () =
  (* Sum over rows with a CSR-style matrix forces either loop order j-last
     or a transpose; ask for output ordered by j only: Σ_i A[i,j]. *)
  let prng = Prng.create 63 in
  let a =
    T.random ~prng ~dims:[| 12; 12 |] ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.3 ()
  in
  (* force discordance: access A as [j,i] (transposed view) *)
  let ctx = make_ctx [ ("A", a) ] in
  let q =
    LQ.make ~output_idxs:[ "j" ] ~name:"colsum" ~agg_op:Op.Add ~agg_idxs:[ "i" ]
      ~body:(Ir.mul [ Ir.input "A" [ "i"; "j" ]; Ir.input "A" [ "j"; "i" ] ])
      ()
  in
  let plan = Popt.plan_query ctx ~fresh:(fresh_gen ()) q in
  (* whatever the loop order, the two accesses of A cannot both be
     concordant: at least one transpose step must appear *)
  check_bool "has transpose" true (transposes_of plan <> []);
  List.iter (function Phys.Kernel k -> Phys.validate_kernel k | _ -> ()) plan

let test_output_order_respected () =
  let prng = Prng.create 65 in
  let a =
    T.random ~prng ~dims:[| 10; 14 |] ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.3 ()
  in
  let ctx = make_ctx [ ("A", a) ] in
  let q =
    LQ.make ~output_idxs:[ "j"; "i" ] ~name:"tr" ~agg_op:Op.Ident ~agg_idxs:[]
      ~body:(Ir.input "A" [ "i"; "j" ]) ()
  in
  let plan = Popt.plan_query ctx ~fresh:(fresh_gen ()) q in
  (* final step must produce "tr" *)
  let last = List.nth plan (List.length plan - 1) in
  let name =
    match last with Phys.Kernel k -> k.Phys.name | Phys.Transpose t -> t.name
  in
  Alcotest.(check string) "final name" "tr" name

(* -------------------------------------------------------------- *)
(* Output formats.                                                  *)
(* -------------------------------------------------------------- *)

let test_dense_output_for_dense_result () =
  let prng = Prng.create 67 in
  let a =
    T.random ~prng ~dims:[| 10; 10 |] ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.9 ()
  in
  let ctx = make_ctx [ ("A", a) ] in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"r" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.input "A" [ "i"; "j" ]) ()
  in
  let plan = Popt.plan_query ctx ~fresh:(fresh_gen ()) q in
  let k = List.hd (kernels_of plan) in
  check_bool "dense" true (k.Phys.output_formats.(0) = T.Dense)

let test_sparse_output_for_sparse_result () =
  (* a 1000-long vector with 3 non-zeros keeps a sparse output *)
  let a =
    T.of_coo ~dims:[| 1000; 4 |] ~formats:[| T.Sparse_list; T.Sparse_list |]
      [| ([| 5; 0 |], 1.0); ([| 500; 1 |], 1.0); ([| 900; 2 |], 1.0) |]
  in
  let ctx = make_ctx [ ("A", a) ] in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"r" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.input "A" [ "i"; "j" ]) ()
  in
  let plan = Popt.plan_query ctx ~fresh:(fresh_gen ()) q in
  let k = List.hd (kernels_of plan) in
  check_bool "not dense" true (k.Phys.output_formats.(0) <> T.Dense)

let test_format_override () =
  let prng = Prng.create 69 in
  let a =
    T.random ~prng ~dims:[| 10; 10 |] ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.9 ()
  in
  let ctx = make_ctx [ ("A", a) ] in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"r" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.input "A" [ "i"; "j" ]) ()
  in
  let config =
    {
      Popt.default_config with
      format_override = (fun n -> if n = "r" then Some [| T.Hash |] else None);
    }
  in
  let plan = Popt.plan_query ~config ctx ~fresh:(fresh_gen ()) q in
  let k = List.hd (kernels_of plan) in
  check_bool "hash forced" true (k.Phys.output_formats.(0) = T.Hash)

(* -------------------------------------------------------------- *)
(* Protocols.                                                       *)
(* -------------------------------------------------------------- *)

let test_leader_is_smaller_input () =
  (* Intersecting a 3-element vector with a dense one: the sparse vector
     should iterate and the dense one be probed. *)
  let small =
    T.of_coo ~dims:[| 100 |] ~formats:[| T.Sparse_list |]
      [| ([| 1 |], 1.0); ([| 50 |], 1.0); ([| 99 |], 1.0) |]
  in
  let big =
    T.of_fun ~dims:[| 100 |] ~formats:[| T.Dense |] (fun _ -> 1.0)
  in
  let ctx = make_ctx [ ("s", small); ("d", big) ] in
  let q =
    LQ.make ~output_idxs:[] ~name:"dot" ~agg_op:Op.Add ~agg_idxs:[ "i" ]
      ~body:(Ir.mul [ Ir.input "s" [ "i" ]; Ir.input "d" [ "i" ] ])
      ()
  in
  let plan = Popt.plan_query ctx ~fresh:(fresh_gen ()) q in
  let k = List.hd (kernels_of plan) in
  let proto_of name =
    let acc =
      Array.to_list k.Phys.accesses
      |> List.find (fun (a : Phys.access) -> a.Phys.tensor = name)
    in
    List.hd acc.Phys.protocols
  in
  check_bool "sparse iterates" true (proto_of "s" = Phys.Iterate);
  check_bool "dense probes" true (proto_of "d" = Phys.Lookup)

let test_union_all_iterate () =
  let prng = Prng.create 71 in
  let a = T.random ~prng ~dims:[| 50 |] ~formats:[| T.Sparse_list |] ~density:0.1 () in
  let b = T.random ~prng ~dims:[| 50 |] ~formats:[| T.Sparse_list |] ~density:0.1 () in
  let ctx = make_ctx [ ("a", a); ("b", b) ] in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"s" ~agg_op:Op.Ident ~agg_idxs:[]
      ~body:(Ir.add [ Ir.input "a" [ "i" ]; Ir.input "b" [ "i" ] ])
      ()
  in
  let plan = Popt.plan_query ctx ~fresh:(fresh_gen ()) q in
  let k = List.hd (kernels_of plan) in
  Array.iter
    (fun (acc : Phys.access) ->
      check_bool (acc.Phys.tensor ^ " iterates") true
        (List.hd acc.Phys.protocols = Phys.Iterate))
    k.Phys.accesses

(* -------------------------------------------------------------- *)
(* Kernel signatures.                                               *)
(* -------------------------------------------------------------- *)

let test_signature_name_independent () =
  let prng = Prng.create 73 in
  let a = T.random ~prng ~dims:[| 10; 10 |] ~formats:[| T.Dense; T.Sparse_list |] ~density:0.3 () in
  let mk name tname =
    let ctx = make_ctx [ (tname, a) ] in
    let q =
      LQ.make ~output_idxs:[ "i" ] ~name ~agg_op:Op.Add ~agg_idxs:[ "j" ]
        ~body:(Ir.input tname [ "i"; "j" ]) ()
    in
    List.hd (kernels_of (Popt.plan_query ctx ~fresh:(fresh_gen ()) q))
  in
  let k1 = mk "r1" "A" and k2 = mk "r2" "B" in
  let fmts = [| [| T.Dense; T.Sparse_list |] |] in
  Alcotest.(check string)
    "signatures equal"
    (Phys.signature k1 ~access_formats:fmts)
    (Phys.signature k2 ~access_formats:fmts)

let test_signature_distinguishes_formats () =
  let prng = Prng.create 75 in
  let a = T.random ~prng ~dims:[| 10; 10 |] ~formats:[| T.Dense; T.Sparse_list |] ~density:0.3 () in
  let ctx = make_ctx [ ("A", a) ] in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"r" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.input "A" [ "i"; "j" ]) ()
  in
  let k = List.hd (kernels_of (Popt.plan_query ctx ~fresh:(fresh_gen ()) q)) in
  let s1 = Phys.signature k ~access_formats:[| [| T.Dense; T.Sparse_list |] |] in
  let s2 = Phys.signature k ~access_formats:[| [| T.Dense; T.Hash |] |] in
  check_bool "formats matter" true (s1 <> s2)

(* -------------------------------------------------------------- *)
(* Validation.                                                      *)
(* -------------------------------------------------------------- *)

let test_validate_rejects_discordant () =
  let k =
    {
      Phys.name = "bad";
      loop_order = [ "i"; "j" ];
      agg_op = Op.Add;
      agg_idxs = [ "j" ];
      output_idxs = [ "i" ];
      output_dims = [| 3 |];
      output_formats = [| T.Dense |];
      loop_dims = [| 3; 4 |];
      body = Phys.P_access 0;
      accesses = [| access "A" [ "j"; "i" ] |];
      body_fill = 0.0;
      output_fill = 0.0;
      agg_space = 4.0;
    }
  in
  check_bool "rejected" true
    (try
       Phys.validate_kernel k;
       false
     with Invalid_argument _ -> true)

let test_is_subsequence () =
  check_bool "yes" true (Phys.is_subsequence [ "a"; "c" ] [ "a"; "b"; "c" ]);
  check_bool "no" false (Phys.is_subsequence [ "c"; "a" ] [ "a"; "b"; "c" ]);
  check_bool "empty" true (Phys.is_subsequence [] [ "a" ])

let () =
  Alcotest.run "physical"
    [
      ( "constraints",
        [
          Alcotest.test_case "mul = and" `Quick test_constraint_mul_is_and;
          Alcotest.test_case "add = or" `Quick test_constraint_add_is_or;
          Alcotest.test_case "fill-aware and" `Quick test_constraint_nonzero_fill_breaks_and;
          Alcotest.test_case "literal zero" `Quick test_constraint_literal_zero_annihilates;
          Alcotest.test_case "cylindrical" `Quick test_constraint_unmentioned_index;
          Alcotest.test_case "mixed tree" `Quick test_constraint_mixed_tree;
        ] );
      ( "loop order",
        [
          Alcotest.test_case "example 6" `Quick test_example6_loop_order;
          Alcotest.test_case "transpose insertion" `Quick test_transpose_inserted_for_discordant;
          Alcotest.test_case "output order" `Quick test_output_order_respected;
        ] );
      ( "formats",
        [
          Alcotest.test_case "dense result" `Quick test_dense_output_for_dense_result;
          Alcotest.test_case "sparse result" `Quick test_sparse_output_for_sparse_result;
          Alcotest.test_case "override" `Quick test_format_override;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "leader selection" `Quick test_leader_is_smaller_input;
          Alcotest.test_case "union iterates" `Quick test_union_all_iterate;
        ] );
      ( "signatures",
        [
          Alcotest.test_case "name independent" `Quick test_signature_name_independent;
          Alcotest.test_case "formats matter" `Quick test_signature_distinguishes_formats;
        ] );
      ( "validation",
        [
          Alcotest.test_case "discordant rejected" `Quick test_validate_rejects_discordant;
          Alcotest.test_case "subsequence" `Quick test_is_subsequence;
        ] );
    ]
