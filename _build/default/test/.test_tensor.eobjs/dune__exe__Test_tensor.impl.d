test/test_tensor.ml: Alcotest Array Galley_tensor List Option Printf QCheck QCheck_alcotest
