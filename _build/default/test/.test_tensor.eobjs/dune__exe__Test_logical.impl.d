test/test_logical.ml: Alcotest Array Galley_logical Galley_plan Galley_stats Galley_tensor List Printf QCheck QCheck_alcotest
