test/test_ir.ml: Alcotest Galley_plan Galley_tensor List QCheck QCheck_alcotest
