test/test_lang.ml: Alcotest Galley Galley_lang Galley_plan Galley_tensor List Printf QCheck QCheck_alcotest
