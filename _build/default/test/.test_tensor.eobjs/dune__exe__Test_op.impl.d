test/test_op.ml: Alcotest Float Galley_plan List Option Printf QCheck QCheck_alcotest
