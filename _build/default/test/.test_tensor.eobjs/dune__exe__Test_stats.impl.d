test/test_stats.ml: Alcotest Array Galley_plan Galley_stats Galley_tensor List QCheck QCheck_alcotest
