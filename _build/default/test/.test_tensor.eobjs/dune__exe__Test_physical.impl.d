test/test_physical.ml: Alcotest Array Format Galley_physical Galley_plan Galley_stats Galley_tensor List Printf
