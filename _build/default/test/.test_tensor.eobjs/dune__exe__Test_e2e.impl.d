test/test_e2e.ml: Alcotest Array Galley Galley_logical Galley_physical Galley_plan Galley_stats Galley_tensor List QCheck QCheck_alcotest
