test/test_engine.ml: Alcotest Array Galley Galley_engine Galley_physical Galley_plan Galley_stats Galley_tensor List Printf QCheck QCheck_alcotest Unix
