test/test_op.mli:
