test/test_workloads.ml: Alcotest Array Galley Galley_plan Galley_tensor Galley_workloads Hashtbl List Printf
