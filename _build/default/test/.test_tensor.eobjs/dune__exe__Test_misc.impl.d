test/test_misc.ml: Alcotest Array Filename Fun Galley Galley_logical Galley_plan Galley_tensor List Printf String Sys
