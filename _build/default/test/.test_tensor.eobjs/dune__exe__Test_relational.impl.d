test/test_relational.ml: Alcotest Array Galley Galley_plan Galley_relational Galley_tensor Hashtbl List Option Printf QCheck QCheck_alcotest Unix
