(* Tests for the logical optimizer: minimal sub-query extraction rules
   (distributive / commutative-identical / blocking traversals), restricted
   elimination orders, variable elimination on the paper's examples
   (matrix chains, Example 2's pushdown), greedy vs branch-and-bound, and
   pointwise distributivity. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module Schema = Galley_plan.Schema
module LQ = Galley_plan.Logical_query
module Elim = Galley_logical.Elimination
module Opt = Galley_logical.Optimizer
module Ctx = Galley_stats.Ctx

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dims_of (l : (string * int) list) : int Ir.Idx_map.t =
  List.fold_left (fun acc (i, n) -> Ir.Idx_map.add i n acc) Ir.Idx_map.empty l

let fresh_gen () =
  let c = ref 0 in
  fun () ->
    incr c;
    Printf.sprintf "#q%d" !c

(* -------------------------------------------------------------- *)
(* Minimal sub-query extraction.                                    *)
(* -------------------------------------------------------------- *)

let test_msq_distributive_factoring () =
  (* Σ_j A[i,j] * B[j] * C[i]: C factors out, MSQ = Σ_j A*B *)
  let e =
    Ir.(
      sum [ "j" ]
        (mul [ input "A" [ "i"; "j" ]; input "B" [ "j" ]; input "C" [ "i" ] ]))
  in
  let dims = dims_of [ ("i", 4); ("j", 5) ] in
  let ext = Elim.eliminate ~dims ~fresh:(fresh_gen ()) e "j" in
  check_int "one query" 1 (List.length ext.Elim.queries);
  let q = List.hd ext.Elim.queries in
  (* the MSQ only mentions A and B *)
  let names = List.map fst (Ir.referenced_names q.LQ.body) in
  check_bool "A in" true (List.mem "A" names);
  check_bool "B in" true (List.mem "B" names);
  check_bool "C factored out" false (List.mem "C" names);
  (* the rewritten expression still mentions C and the alias *)
  let rew_names = List.map fst (Ir.referenced_names ext.Elim.rewritten) in
  check_bool "C kept" true (List.mem "C" rew_names);
  check_bool "no aggregate left" false (Ir.contains_agg ext.Elim.rewritten)

let test_msq_commutative_identical () =
  (* Σ_i (A[i] + B[i]) = Σ_i A[i] + Σ_i B[i]: two sub-queries *)
  let e = Ir.(sum [ "i" ] (add [ input "A" [ "i" ]; input "B" [ "i" ] ])) in
  let dims = dims_of [ ("i", 6) ] in
  let ext = Elim.eliminate ~dims ~fresh:(fresh_gen ()) e "i" in
  check_int "two queries" 2 (List.length ext.Elim.queries);
  match ext.Elim.rewritten with
  | Ir.Map (Op.Add, [ Ir.Alias _; Ir.Alias _ ]) -> ()
  | e' -> Alcotest.failf "unexpected rewrite: %s" (Ir.expr_to_string e')

let test_msq_repeated_application () =
  (* Σ_i (A[i] + B[j]): the child without i becomes n_i * B[j] *)
  let e = Ir.(sum [ "i" ] (add [ input "A" [ "i" ]; input "B" [ "j" ] ])) in
  let dims = dims_of [ ("i", 7); ("j", 3) ] in
  let ext = Elim.eliminate ~dims ~fresh:(fresh_gen ()) e "i" in
  check_int "one query (A only)" 1 (List.length ext.Elim.queries);
  let rec has_scale = function
    | Ir.Map (Op.Mul, args) ->
        List.mem (Ir.Literal 7.0) args
        || List.exists has_scale args
    | Ir.Map (_, args) -> List.exists has_scale args
    | _ -> false
  in
  check_bool "scaled by n_i" true (has_scale ext.Elim.rewritten)

let test_msq_idempotent_no_scale () =
  (* max_i (A[i] max B[j]): idempotent aggregate leaves B alone *)
  let e =
    Ir.Agg
      (Op.Max, [ "i" ], Ir.Map (Op.Max, [ Ir.input "A" [ "i" ]; Ir.input "B" [ "j" ] ]))
  in
  let dims = dims_of [ ("i", 7); ("j", 3) ] in
  let ext = Elim.eliminate ~dims ~fresh:(fresh_gen ()) e "i" in
  let rec has_literal = function
    | Ir.Literal _ -> true
    | Ir.Map (_, args) -> List.exists has_literal args
    | Ir.Agg (_, _, b) -> has_literal b
    | _ -> false
  in
  check_bool "no scaling literal" false (has_literal ext.Elim.rewritten)

let test_msq_blocking () =
  (* Σ_j sqrt(A[i,j] * B[j]): sqrt blocks, MSQ wraps the whole subtree *)
  let e =
    Ir.(
      sum [ "j" ]
        (map Op.Sqrt [ mul [ input "A" [ "i"; "j" ]; input "B" [ "j" ] ] ]))
  in
  let dims = dims_of [ ("i", 4); ("j", 5) ] in
  let ext = Elim.eliminate ~dims ~fresh:(fresh_gen ()) e "j" in
  check_int "one query" 1 (List.length ext.Elim.queries);
  let q = List.hd ext.Elim.queries in
  (match q.LQ.body with
  | Ir.Map (Op.Sqrt, _) -> ()
  | b -> Alcotest.failf "expected sqrt at MSQ root, got %s" (Ir.expr_to_string b));
  match ext.Elim.rewritten with
  | Ir.Alias _ -> ()
  | e' -> Alcotest.failf "expected bare alias, got %s" (Ir.expr_to_string e')

let test_msq_multiple_containing_children () =
  (* Σ_j A[i,j] * B[j,k]: both children contain j, MSQ wraps their product *)
  let e =
    Ir.(sum [ "j" ] (mul [ input "A" [ "i"; "j" ]; input "B" [ "j"; "k" ] ]))
  in
  let dims = dims_of [ ("i", 3); ("j", 4); ("k", 5) ] in
  let ext = Elim.eliminate ~dims ~fresh:(fresh_gen ()) e "j" in
  check_int "one query" 1 (List.length ext.Elim.queries);
  let q = List.hd ext.Elim.queries in
  Alcotest.(check (list string)) "outputs i,k" [ "i"; "k" ] q.LQ.output_idxs

let test_multi_index_agg_partial () =
  (* Σ_{j,k}: eliminating j keeps the Agg over k in the rewrite *)
  let e =
    Ir.(
      sum [ "j"; "k" ]
        (mul [ input "A" [ "i"; "j" ]; input "B" [ "j"; "k" ] ]))
  in
  let dims = dims_of [ ("i", 3); ("j", 4); ("k", 5) ] in
  let ext = Elim.eliminate ~dims ~fresh:(fresh_gen ()) e "j" in
  check_bool "k still aggregated" true
    (Ir.Idx_set.mem "k" (Ir.aggregated_indices ext.Elim.rewritten))

(* -------------------------------------------------------------- *)
(* Restricted orders.                                               *)
(* -------------------------------------------------------------- *)

let test_inner_first_restriction () =
  (* max_i Σ_j A[i,j]: j must be eliminated first *)
  let e = Ir.Agg (Op.Max, [ "i" ], Ir.(sum [ "j" ] (input "A" [ "i"; "j" ]))) in
  Alcotest.(check (list string)) "only j available" [ "j" ]
    (Elim.available_indices e);
  let dims = dims_of [ ("i", 3); ("j", 4) ] in
  check_bool "eliminating i rejected" true
    (try
       ignore (Elim.eliminate ~dims ~fresh:(fresh_gen ()) e "i");
       false
     with Invalid_argument _ -> true);
  (* after eliminating j, i becomes available *)
  let ext = Elim.eliminate ~dims ~fresh:(fresh_gen ()) e "j" in
  Alcotest.(check (list string)) "now i" [ "i" ]
    (Elim.available_indices ext.Elim.rewritten)

let test_blocked_inner_aggregate () =
  (* Σ_i sqrt(Σ_j A[i,j]): inner j first (aggregate placement) *)
  let e =
    Ir.(sum [ "i" ] (map Op.Sqrt [ sum [ "j" ] (input "A" [ "i"; "j" ]) ]))
  in
  Alcotest.(check (list string)) "j first" [ "j" ] (Elim.available_indices e)

(* -------------------------------------------------------------- *)
(* End-to-end logical optimization.                                 *)
(* -------------------------------------------------------------- *)

let make_ctx (inputs : (string * T.t) list) : Ctx.t =
  let schema = Schema.create () in
  List.iter (fun (n, t) -> Schema.declare_tensor schema n t) inputs;
  let ctx = Ctx.create schema in
  List.iter (fun (n, t) -> ctx.Ctx.register_input n t) inputs;
  ctx

let sparse ~prng ~dims ~density =
  T.random ~prng ~dims
    ~formats:(Array.init (Array.length dims) (fun k -> if k = 0 then T.Dense else T.Sparse_list))
    ~density ()

(* Matrix chain: E = Σ_jkl A_ij B_jk C_kl D_lm.  Every elimination order is
   a different association; the optimizer must produce one query per
   eliminated index (no disjunctions here). *)
let test_matrix_chain_plan_shape () =
  let prng = Prng.create 31 in
  let a = sparse ~prng ~dims:[| 6; 6 |] ~density:0.4 in
  let b = sparse ~prng ~dims:[| 6; 6 |] ~density:0.4 in
  let c = sparse ~prng ~dims:[| 6; 6 |] ~density:0.4 in
  let d = sparse ~prng ~dims:[| 6; 6 |] ~density:0.4 in
  let ctx = make_ctx [ ("A", a); ("B", b); ("C", c); ("D", d) ] in
  let q =
    Ir.query ~out_order:[ "i"; "m" ] "E"
      Ir.(
        sum [ "j"; "k"; "l" ]
          (mul
             [
               input "A" [ "i"; "j" ]; input "B" [ "j"; "k" ];
               input "C" [ "k"; "l" ]; input "D" [ "l"; "m" ];
             ]))
  in
  let plan =
    Opt.optimize_program Opt.default_config ctx
      { Ir.queries = [ q ]; outputs = [ "E" ] }
  in
  (* three eliminations + possibly a final copy *)
  check_bool "3 or 4 queries" true
    (List.length plan = 3 || List.length plan = 4);
  (* last query carries the requested name and order *)
  let last = List.nth plan (List.length plan - 1) in
  Alcotest.(check string) "named E" "E" last.LQ.name;
  Alcotest.(check (list string)) "order" [ "i"; "m" ] last.LQ.output_idxs;
  (* every query is a valid logical query *)
  List.iter LQ.validate plan

let test_bnb_no_worse_than_greedy () =
  let prng = Prng.create 33 in
  let a = sparse ~prng ~dims:[| 8; 8 |] ~density:0.5 in
  let b = sparse ~prng ~dims:[| 8; 8 |] ~density:0.1 in
  let c = sparse ~prng ~dims:[| 8; 8 |] ~density:0.3 in
  let mk () = make_ctx [ ("A", a); ("B", b); ("C", c) ] in
  let expr =
    Ir.(
      sum [ "i"; "j"; "k"; "l" ]
        (mul [ input "A" [ "i"; "j" ]; input "B" [ "j"; "k" ]; input "C" [ "k"; "l" ] ]))
  in
  let counter = ref 0 in
  let fresh () = incr counter; Printf.sprintf "#g%d" !counter in
  let greedy =
    Opt.optimize_expr { Opt.default_config with search = Opt.Greedy } (mk ())
      ~fresh ~name:"out" ~out_order:None expr
  in
  let bnb =
    Opt.optimize_expr { Opt.default_config with search = Opt.Branch_and_bound }
      (mk ()) ~fresh ~name:"out" ~out_order:None expr
  in
  check_bool "bnb <= greedy cost" true (bnb.Opt.cost <= greedy.Opt.cost +. 1e-6)

let test_example2_pushdown () =
  (* Y_i = Σ_jpc S_ipc (P_pj + C_cj) θ_j: the optimizer should push θ into
     the feature definitions, producing vector intermediates — i.e. no
     logical query materializes anything indexed by both p and c. *)
  let prng = Prng.create 35 in
  let s3 =
    T.random ~prng ~dims:[| 60; 25; 25 |]
      ~formats:[| T.Dense; T.Sparse_list; T.Sparse_list |]
      ~density:0.004 ()
  in
  let p = sparse ~prng ~dims:[| 25; 12 |] ~density:0.6 in
  let c = sparse ~prng ~dims:[| 25; 12 |] ~density:0.6 in
  let theta = sparse ~prng ~dims:[| 12 |] ~density:1.0 in
  let ctx = make_ctx [ ("S", s3); ("P", p); ("C", c); ("theta", theta) ] in
  let q =
    Ir.query ~out_order:[ "i" ] "Y"
      Ir.(
        sum [ "j"; "p"; "c" ]
          (mul
             [
               input "S" [ "i"; "p"; "c" ];
               add [ input "P" [ "p"; "j" ]; input "C" [ "c"; "j" ] ];
               input "theta" [ "j" ];
             ]))
  in
  let plan =
    Opt.optimize_program Opt.default_config ctx
      { Ir.queries = [ q ]; outputs = [ "Y" ] }
  in
  List.iter
    (fun (lq : LQ.t) ->
      let out = Ir.Idx_set.of_list lq.LQ.output_idxs in
      check_bool
        ("no p*c intermediate in " ^ lq.LQ.name)
        false
        (Ir.Idx_set.mem "p" out && Ir.Idx_set.mem "c" out))
    plan

let test_distribution_example3 () =
  (* Σ_ij (X - U·V)²: with sparse X and dense U,V the distributed form is
     chosen and the plan avoids materializing the dense U·V matrix. *)
  let prng = Prng.create 37 in
  let x = sparse ~prng ~dims:[| 30; 30 |] ~density:0.02 in
  let u = sparse ~prng ~dims:[| 30 |] ~density:1.0 in
  let v = sparse ~prng ~dims:[| 30 |] ~density:1.0 in
  let ctx = make_ctx [ ("X", x); ("U", u); ("V", v) ] in
  let q =
    Ir.query "sse"
      Ir.(
        sum [ "i"; "j" ]
          (map Op.Square
             [
               map Op.Sub
                 [ input "X" [ "i"; "j" ]; mul [ input "U" [ "i" ]; input "V" [ "j" ] ] ];
             ]))
  in
  let plan =
    Opt.optimize_program Opt.default_config ctx
      { Ir.queries = [ q ]; outputs = [ "sse" ] }
  in
  (* distributed plans contain several queries; sanity: all valid and the
     final one is named sse with no output indices *)
  List.iter LQ.validate plan;
  let last = List.nth plan (List.length plan - 1) in
  Alcotest.(check string) "named" "sse" last.LQ.name;
  Alcotest.(check (list string)) "scalar" [] last.LQ.output_idxs

let test_pure_map_program () =
  let prng = Prng.create 39 in
  let a = sparse ~prng ~dims:[| 10 |] ~density:0.5 in
  let ctx = make_ctx [ ("A", a) ] in
  let q = Ir.query "B" Ir.(map Op.Sigmoid [ input "A" [ "i" ] ]) in
  let plan =
    Opt.optimize_program Opt.default_config ctx
      { Ir.queries = [ q ]; outputs = [ "B" ] }
  in
  check_int "single query" 1 (List.length plan);
  let lq = List.hd plan in
  check_bool "no-op aggregate" true (lq.LQ.agg_op = Op.Ident)

let test_multi_query_program_aliases () =
  let prng = Prng.create 41 in
  let a = sparse ~prng ~dims:[| 8; 8 |] ~density:0.4 in
  let ctx = make_ctx [ ("A", a) ] in
  let q1 = Ir.query ~out_order:[ "i" ] "rowsum" Ir.(sum [ "j" ] (input "A" [ "i"; "j" ])) in
  let q2 = Ir.query "total" Ir.(sum [ "i" ] (alias "rowsum" [ "i" ])) in
  let plan =
    Opt.optimize_program Opt.default_config ctx
      { Ir.queries = [ q1; q2 ]; outputs = [ "total" ] }
  in
  check_bool "rowsum present" true
    (List.exists (fun (lq : LQ.t) -> lq.LQ.name = "rowsum") plan);
  check_bool "total present" true
    (List.exists (fun (lq : LQ.t) -> lq.LQ.name = "total") plan)

(* Property: logical optimization always yields a valid plan whose final
   query has the requested name, for random sum-product expressions. *)
let prop_plan_validity =
  QCheck.Test.make ~name:"logical plans are valid" ~count:60
    (QCheck.int_range 0 100_000)
    (fun seed ->
      let prng = Prng.create seed in
      let n = 4 + Prng.int prng 3 in
      let a = sparse ~prng ~dims:[| n; n |] ~density:0.4 in
      let b = sparse ~prng ~dims:[| n; n |] ~density:0.4 in
      let v = sparse ~prng ~dims:[| n |] ~density:0.6 in
      let ctx = make_ctx [ ("A", a); ("B", b); ("v", v) ] in
      let pool = [ "i"; "j"; "k" ] in
      let rec gen depth =
        if depth = 0 || Prng.int prng 3 = 0 then
          match Prng.int prng 3 with
          | 0 ->
              let i = List.nth pool (Prng.int prng 3) in
              let j = List.nth pool (Prng.int prng 3) in
              if i = j then Ir.input "v" [ i ] else Ir.input "A" [ i; j ]
          | 1 ->
              let i = List.nth pool (Prng.int prng 3) in
              let j = List.nth pool (Prng.int prng 3) in
              if i = j then Ir.input "v" [ i ] else Ir.input "B" [ i; j ]
          | _ -> Ir.input "v" [ List.nth pool (Prng.int prng 3) ]
        else
          match Prng.int prng 3 with
          | 0 -> Ir.add [ gen (depth - 1); gen (depth - 1) ]
          | 1 -> Ir.mul [ gen (depth - 1); gen (depth - 1) ]
          | _ -> Ir.map Op.Sigmoid [ gen (depth - 1) ]
      in
      let body = gen 3 in
      let free = Ir.Idx_set.elements (Ir.free_indices body) in
      let expr = if free = [] then body else Ir.sum free body in
      let q = Ir.query "out" expr in
      let plan =
        Opt.optimize_program Opt.default_config ctx
          { Ir.queries = [ q ]; outputs = [ "out" ] }
      in
      List.iter LQ.validate plan;
      (List.nth plan (List.length plan - 1)).LQ.name = "out")

let () =
  Alcotest.run "logical"
    [
      ( "msq",
        [
          Alcotest.test_case "distributive factoring" `Quick test_msq_distributive_factoring;
          Alcotest.test_case "commutative identical" `Quick test_msq_commutative_identical;
          Alcotest.test_case "repeated application" `Quick test_msq_repeated_application;
          Alcotest.test_case "idempotent no scale" `Quick test_msq_idempotent_no_scale;
          Alcotest.test_case "blocking" `Quick test_msq_blocking;
          Alcotest.test_case "multi containing" `Quick test_msq_multiple_containing_children;
          Alcotest.test_case "partial multi-index" `Quick test_multi_index_agg_partial;
        ] );
      ( "restrictions",
        [
          Alcotest.test_case "non-commuting aggregates" `Quick test_inner_first_restriction;
          Alcotest.test_case "blocked placement" `Quick test_blocked_inner_aggregate;
        ] );
      ( "optimization",
        [
          Alcotest.test_case "matrix chain" `Quick test_matrix_chain_plan_shape;
          Alcotest.test_case "bnb <= greedy" `Quick test_bnb_no_worse_than_greedy;
          Alcotest.test_case "example 2 pushdown" `Quick test_example2_pushdown;
          Alcotest.test_case "example 3 distribution" `Quick test_distribution_example3;
          Alcotest.test_case "pure map" `Quick test_pure_map_program;
          Alcotest.test_case "multi-query aliases" `Quick test_multi_query_program_aliases;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_plan_validity ] );
    ]
