(* End-to-end differential tests: the full pipeline (logical optimizer →
   physical optimizer → engine) against the brute-force reference evaluator,
   across configurations (greedy/exact, uniform/chain, JIT on/off, CSE
   on/off), multi-query programs, sessions, the paper's running examples,
   and a large randomized program property. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module D = Galley.Driver

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

let sparse ~prng ~dims ~density =
  T.random ~prng ~dims
    ~formats:
      (Array.init (Array.length dims) (fun k ->
           if k = 0 then T.Dense else T.Sparse_list))
    ~density ()

let all_configs : (string * D.config) list =
  [
    ("default", D.default_config);
    ("greedy", D.greedy_config);
    ( "uniform",
      { D.default_config with estimator = Galley_stats.Ctx.Uniform_kind } );
    ("no-jit", { D.default_config with jit = false });
    ("no-cse", { D.default_config with cse = false });
    ( "no-distribute",
      {
        D.default_config with
        logical =
          {
            Galley_logical.Optimizer.default_config with
            try_distribute = false;
          };
      } );
    ( "greedy-loops",
      {
        D.default_config with
        physical = { Galley_physical.Optimizer.default_config with exact = false };
      } );
  ]

let check_program ?(eps = 1e-6) name inputs (program : Ir.program) =
  let reference = Galley.Reference.eval_program inputs program in
  List.iter
    (fun (cfg_name, config) ->
      let res = D.run ~config ~inputs program in
      List.iter
        (fun out ->
          let got = D.output_of res out in
          let want = List.assoc out reference in
          if not (T.equal_approx ~eps got want) then
            Alcotest.failf "%s [%s] output %s:\ngot  %s\nwant %s" name cfg_name
              out (T.to_string got) (T.to_string want))
        program.Ir.outputs)
    all_configs

(* -------------------------------------------------------------- *)
(* The paper's running examples.                                    *)
(* -------------------------------------------------------------- *)

let test_logistic_regression () =
  let prng = Prng.create 1 in
  let x = sparse ~prng ~dims:[| 12; 8 |] ~density:0.3 in
  let theta = sparse ~prng ~dims:[| 8 |] ~density:0.9 in
  let q =
    Ir.query ~out_order:[ "i" ] "P"
      Ir.(
        map Op.Sigmoid
          [ sum [ "j" ] (mul [ input "X" [ "i"; "j" ]; input "theta" [ "j" ] ]) ])
  in
  check_program "logreg" [ ("X", x); ("theta", theta) ]
    { Ir.queries = [ q ]; outputs = [ "P" ] }

let test_triangle_counting () =
  let prng = Prng.create 2 in
  let e = sparse ~prng ~dims:[| 14; 14 |] ~density:0.2 in
  let q =
    Ir.query "t"
      Ir.(
        sum [ "i"; "j"; "k" ]
          (mul
             [
               input "E" [ "i"; "j" ]; input "E" [ "j"; "k" ];
               input "E" [ "i"; "k" ];
             ]))
  in
  check_program "triangles" [ ("E", e) ] { Ir.queries = [ q ]; outputs = [ "t" ] }

let test_example2_composite_features () =
  (* Y_i = σ(Σ_jpc S_ipc (P_pj + C_cj) θ_j) *)
  let prng = Prng.create 3 in
  let s =
    T.random ~prng ~dims:[| 10; 5; 5 |]
      ~formats:[| T.Dense; T.Sparse_list; T.Sparse_list |]
      ~density:0.06 ()
  in
  let p = sparse ~prng ~dims:[| 5; 4 |] ~density:0.5 in
  let c = sparse ~prng ~dims:[| 5; 4 |] ~density:0.5 in
  let theta = sparse ~prng ~dims:[| 4 |] ~density:1.0 in
  let q =
    Ir.query ~out_order:[ "i" ] "Y"
      Ir.(
        map Op.Sigmoid
          [
            sum [ "j"; "p"; "c" ]
              (mul
                 [
                   input "S" [ "i"; "p"; "c" ];
                   add [ input "P" [ "p"; "j" ]; input "C" [ "c"; "j" ] ];
                   input "theta" [ "j" ];
                 ]);
          ])
  in
  check_program "example2"
    [ ("S", s); ("P", p); ("C", c); ("theta", theta) ]
    { Ir.queries = [ q ]; outputs = [ "Y" ] }

let test_example3_residuals () =
  let prng = Prng.create 4 in
  let x = sparse ~prng ~dims:[| 8; 8 |] ~density:0.2 in
  let u = sparse ~prng ~dims:[| 8 |] ~density:1.0 in
  let v = sparse ~prng ~dims:[| 8 |] ~density:1.0 in
  let q =
    Ir.query "sse"
      Ir.(
        sum [ "i"; "j" ]
          (map Op.Square
             [
               map Op.Sub
                 [ input "X" [ "i"; "j" ]; mul [ input "U" [ "i" ]; input "V" [ "j" ] ] ];
             ]))
  in
  check_program "example3" [ ("X", x); ("U", u); ("V", v) ]
    { Ir.queries = [ q ]; outputs = [ "sse" ] }

let test_sddmm_variant () =
  (* Σ_j A_ik (B_ij + C_jk): the paper's non-FAQ example *)
  let prng = Prng.create 5 in
  let a = sparse ~prng ~dims:[| 7; 6 |] ~density:0.3 in
  let b = sparse ~prng ~dims:[| 7; 5 |] ~density:0.3 in
  let c = sparse ~prng ~dims:[| 5; 6 |] ~density:0.3 in
  let q =
    Ir.query ~out_order:[ "i"; "k" ] "R"
      Ir.(
        sum [ "j" ]
          (mul
             [
               input "A" [ "i"; "k" ];
               add [ input "B" [ "i"; "j" ]; input "C" [ "j"; "k" ] ];
             ]))
  in
  check_program "sddmm" [ ("A", a); ("B", b); ("C", c) ]
    { Ir.queries = [ q ]; outputs = [ "R" ] }

let test_laundering_pipeline () =
  (* Multi-output program with comparison and max-aggregate (paper 3.1). *)
  let prng = Prng.create 6 in
  let x = sparse ~prng ~dims:[| 10; 6 |] ~density:0.4 in
  let theta = sparse ~prng ~dims:[| 6 |] ~density:1.0 in
  let e = sparse ~prng ~dims:[| 10; 10 |] ~density:0.2 in
  let l =
    Ir.query ~out_order:[ "i" ] "L"
      (Ir.Map
         ( Op.Gt,
           [
             Ir.(
               map Op.Sigmoid
                 [ sum [ "j" ] (mul [ input "X" [ "i"; "j" ]; input "theta" [ "j" ] ]) ]);
             Ir.lit 0.5;
           ] ))
  in
  let v =
    Ir.query ~out_order:[ "i" ] "V"
      Ir.(
        mul
          [
            alias "L" [ "i" ];
            Ir.Agg
              ( Op.Max,
                [ "j"; "k" ],
                mul
                  [
                    input "E" [ "i"; "j" ]; input "E" [ "j"; "k" ];
                    input "E" [ "i"; "k" ];
                  ] );
          ])
  in
  check_program "laundering"
    [ ("X", x); ("theta", theta); ("E", e) ]
    { Ir.queries = [ l; v ]; outputs = [ "L"; "V" ] }

let test_nested_blocking_aggregate () =
  (* Σ_i √(Σ_j A_ij): aggregate placement restriction *)
  let prng = Prng.create 7 in
  let a = sparse ~prng ~dims:[| 9; 7 |] ~density:0.5 in
  let q =
    Ir.query "r"
      Ir.(sum [ "i" ] (map Op.Sqrt [ sum [ "j" ] (input "A" [ "i"; "j" ]) ]))
  in
  check_program "nested sqrt" [ ("A", a) ] { Ir.queries = [ q ]; outputs = [ "r" ] }

let test_max_of_sums () =
  (* max_i Σ_j A_ij: non-commuting aggregates *)
  let prng = Prng.create 8 in
  let a = sparse ~prng ~dims:[| 9; 7 |] ~density:0.5 in
  let q =
    Ir.query "r"
      (Ir.Agg (Op.Max, [ "i" ], Ir.(sum [ "j" ] (input "A" [ "i"; "j" ]))))
  in
  check_program "max of sums" [ ("A", a) ] { Ir.queries = [ q ]; outputs = [ "r" ] }

let test_internal_aggregate () =
  (* Σ_j A_j · √(Σ_k B_jk): internal aggregates (paper Sec. 1) *)
  let prng = Prng.create 9 in
  let a = sparse ~prng ~dims:[| 8 |] ~density:0.6 in
  let b = sparse ~prng ~dims:[| 8; 6 |] ~density:0.4 in
  let q =
    Ir.query "r"
      Ir.(
        sum [ "j" ]
          (mul
             [
               input "A" [ "j" ];
               map Op.Sqrt [ sum [ "k" ] (input "B" [ "j"; "k" ]) ];
             ]))
  in
  check_program "internal agg" [ ("A", a); ("B", b) ]
    { Ir.queries = [ q ]; outputs = [ "r" ] }

let test_disjunctive_aggregate () =
  (* Σ_i (A_i + B_i) over different sparsity *)
  let prng = Prng.create 10 in
  let a = sparse ~prng ~dims:[| 20 |] ~density:0.2 in
  let b = sparse ~prng ~dims:[| 20 |] ~density:0.2 in
  let q = Ir.query "r" Ir.(sum [ "i" ] (add [ input "A" [ "i" ]; input "B" [ "i" ] ])) in
  check_program "disjunctive" [ ("A", a); ("B", b) ]
    { Ir.queries = [ q ]; outputs = [ "r" ] }

let test_matrix_chain () =
  let prng = Prng.create 11 in
  let a = sparse ~prng ~dims:[| 6; 7 |] ~density:0.4 in
  let b = sparse ~prng ~dims:[| 7; 5 |] ~density:0.4 in
  let c = sparse ~prng ~dims:[| 5; 8 |] ~density:0.4 in
  let d = sparse ~prng ~dims:[| 8; 6 |] ~density:0.4 in
  let q =
    Ir.query ~out_order:[ "i"; "m" ] "E"
      Ir.(
        sum [ "j"; "k"; "l" ]
          (mul
             [
               input "A" [ "i"; "j" ]; input "B" [ "j"; "k" ];
               input "C" [ "k"; "l" ]; input "D" [ "l"; "m" ];
             ]))
  in
  check_program "matrix chain" [ ("A", a); ("B", b); ("C", c); ("D", d) ]
    { Ir.queries = [ q ]; outputs = [ "E" ] }

let test_or_aggregate_reachability () =
  (* one-step reachability: R_i = or_j E_ij F_j *)
  let prng = Prng.create 12 in
  let e = sparse ~prng ~dims:[| 12; 12 |] ~density:0.15 in
  let f = sparse ~prng ~dims:[| 12 |] ~density:0.3 in
  let q =
    Ir.query ~out_order:[ "i" ] "R"
      (Ir.Agg
         (Op.Or, [ "j" ], Ir.(mul [ input "E" [ "i"; "j" ]; input "F" [ "j" ] ])))
  in
  check_program "or-aggregate" [ ("E", e); ("F", f) ]
    { Ir.queries = [ q ]; outputs = [ "R" ] }

(* -------------------------------------------------------------- *)
(* Timeout and session behaviour.                                   *)
(* -------------------------------------------------------------- *)

let test_timeout_reported () =
  (* A dense triple product cannot be factored into vector sums, so any
     plan does Ω(n³) work. *)
  let n = 150 in
  let dense = T.of_fun ~dims:[| n; n |] ~formats:[| T.Dense; T.Dense |] (fun _ -> 1.0) in
  let q =
    Ir.query "slow"
      Ir.(
        sum [ "i"; "j"; "k" ]
          (mul
             [
               input "A" [ "i"; "j" ]; input "B" [ "j"; "k" ];
               input "C" [ "i"; "k" ];
             ]))
  in
  let config = { D.default_config with timeout = Some 0.02 } in
  let res =
    D.run ~config
      ~inputs:[ ("A", dense); ("B", dense); ("C", dense) ]
      { Ir.queries = [ q ]; outputs = [ "slow" ] }
  in
  check_bool "timed out" true res.D.timed_out

let test_session_rebinding () =
  let prng = Prng.create 13 in
  let a1 = sparse ~prng ~dims:[| 10 |] ~density:0.5 in
  let a2 = sparse ~prng ~dims:[| 10 |] ~density:0.5 in
  let plan =
    [
      Galley_plan.Logical_query.make ~output_idxs:[] ~name:"s" ~agg_op:Op.Add
        ~agg_idxs:[ "i" ] ~body:(Ir.input "a" [ "i" ]) ();
    ]
  in
  let session = D.Session.create () in
  let total t = Array.fold_left ( +. ) 0.0 (T.to_flat_dense t) in
  D.Session.bind session "a" a1;
  let r1 = D.Session.run_logical_plan session ~outputs:[ "s" ] plan in
  check_float "first" (total a1) (T.get (D.output_of r1 "s") [||]);
  D.Session.bind session "a" a2;
  let r2 = D.Session.run_logical_plan session ~outputs:[ "s" ] plan in
  check_float "rebound" (total a2) (T.get (D.output_of r2 "s") [||])

let test_timings_populated () =
  let prng = Prng.create 14 in
  let a = sparse ~prng ~dims:[| 10; 10 |] ~density:0.4 in
  let q = Ir.query ~out_order:[ "i" ] "r" Ir.(sum [ "j" ] (input "A" [ "i"; "j" ])) in
  let res = D.run_query ~inputs:[ ("A", a) ] q in
  let t = res.D.timings in
  check_bool "kernel ran" true (t.D.kernel_count >= 1);
  check_bool "compiled" true (t.D.compile_count >= 1);
  check_bool "total >= parts" true
    (t.D.total_seconds +. 1e-9
     >= t.D.compile_seconds +. t.D.execute_seconds)

(* -------------------------------------------------------------- *)
(* Randomized whole-pipeline property.                              *)
(* -------------------------------------------------------------- *)

let prop_random_programs =
  QCheck.Test.make ~name:"random programs match reference" ~count:60
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let prng = Prng.create seed in
      let n1 = 3 + Prng.int prng 3
      and n2 = 3 + Prng.int prng 3
      and n3 = 3 + Prng.int prng 3 in
      let a = sparse ~prng ~dims:[| n1; n2 |] ~density:0.4 in
      let b = sparse ~prng ~dims:[| n2; n3 |] ~density:0.4 in
      let u = sparse ~prng ~dims:[| n1 |] ~density:0.6 in
      let w = sparse ~prng ~dims:[| n3 |] ~density:0.6 in
      let inputs = [ ("A", a); ("B", b); ("u", u); ("w", w) ] in
      let leaf () =
        match Prng.int prng 5 with
        | 0 -> Ir.input "A" [ "i"; "j" ]
        | 1 -> Ir.input "B" [ "j"; "k" ]
        | 2 -> Ir.input "u" [ "i" ]
        | 3 -> Ir.input "w" [ "k" ]
        | _ -> Ir.lit (Prng.float_range prng (-1.0) 1.5)
      in
      let rec gen depth =
        if depth = 0 || Prng.int prng 3 = 0 then leaf ()
        else
          match Prng.int prng 6 with
          | 0 -> Ir.add [ gen (depth - 1); gen (depth - 1) ]
          | 1 -> Ir.mul [ gen (depth - 1); gen (depth - 1) ]
          | 2 -> Ir.Map (Op.Max, [ gen (depth - 1); gen (depth - 1) ])
          | 3 -> Ir.map Op.Sigmoid [ gen (depth - 1) ]
          | 4 ->
              (* nested aggregate inside the expression *)
              let body = gen (depth - 1) in
              let free = Ir.Idx_set.elements (Ir.free_indices body) in
              if free = [] then body
              else
                Ir.sum [ List.nth free (Prng.int prng (List.length free)) ] body
          | _ -> Ir.Map (Op.Sub, [ gen (depth - 1); gen (depth - 1) ])
      in
      let body = gen 3 in
      let free = Ir.Idx_set.elements (Ir.free_indices body) in
      let aggd = List.filter (fun _ -> Prng.bool prng) free in
      let expr = if aggd = [] then body else Ir.sum aggd body in
      let program =
        { Ir.queries = [ Ir.query "out" expr ]; outputs = [ "out" ] }
      in
      let want = List.assoc "out" (Galley.Reference.eval_program inputs program) in
      List.for_all
        (fun (_, config) ->
          let res = D.run ~config ~inputs program in
          T.equal_approx ~eps:1e-5 (D.output_of res "out") want)
        [ List.nth all_configs 0; List.nth all_configs 1; List.nth all_configs 2 ])

let () =
  Alcotest.run "e2e"
    [
      ( "paper examples",
        [
          Alcotest.test_case "logistic regression" `Quick test_logistic_regression;
          Alcotest.test_case "triangle counting" `Quick test_triangle_counting;
          Alcotest.test_case "example 2" `Quick test_example2_composite_features;
          Alcotest.test_case "example 3" `Quick test_example3_residuals;
          Alcotest.test_case "sddmm variant" `Quick test_sddmm_variant;
          Alcotest.test_case "laundering pipeline" `Quick test_laundering_pipeline;
        ] );
      ( "aggregate structure",
        [
          Alcotest.test_case "nested blocking" `Quick test_nested_blocking_aggregate;
          Alcotest.test_case "max of sums" `Quick test_max_of_sums;
          Alcotest.test_case "internal aggregate" `Quick test_internal_aggregate;
          Alcotest.test_case "disjunctive" `Quick test_disjunctive_aggregate;
          Alcotest.test_case "matrix chain" `Quick test_matrix_chain;
          Alcotest.test_case "or aggregate" `Quick test_or_aggregate_reachability;
        ] );
      ( "runtime behaviour",
        [
          Alcotest.test_case "timeout" `Quick test_timeout_reported;
          Alcotest.test_case "session rebinding" `Quick test_session_rebinding;
          Alcotest.test_case "timings" `Quick test_timings_populated;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_random_programs ] );
    ]
