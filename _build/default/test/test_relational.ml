(* Tests for the relational engine (DuckDB substitute): relation
   construction, hash join against a nested-loop oracle, group-by SUM,
   self-joins via attribute renaming, the greedy planner, timeouts, and the
   Galley-logical-plan bridge. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module Rel = Galley_relational.Relation
module Eng = Galley_relational.Rel_engine
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module LQ = Galley_plan.Logical_query

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

let sparse ~prng ~dims ~density =
  T.random ~prng ~dims
    ~formats:
      (Array.init (Array.length dims) (fun k ->
           if k = 0 then T.Dense else T.Sparse_list))
    ~density ()

(* Nested-loop join oracle over (coords, value) rows. *)
let oracle_join (l : (int list * float) list) (lv : string list)
    (r : (int list * float) list) (rv : string list) :
    (int list * float) list * string list =
  let shared = List.filter (fun a -> List.mem a rv) lv in
  let pos vars a =
    let rec go k = function
      | [] -> None
      | v :: rest -> if v = a then Some k else go (k + 1) rest
    in
    go 0 vars
  in
  let out_vars = lv @ List.filter (fun a -> not (List.mem a lv)) rv in
  let rows =
    List.concat_map
      (fun (lc, lval) ->
        List.filter_map
          (fun (rc, rval) ->
            let ok =
              List.for_all
                (fun a ->
                  List.nth lc (Option.get (pos lv a))
                  = List.nth rc (Option.get (pos rv a)))
                shared
            in
            if ok then
              Some
                ( lc
                  @ List.filter_map
                      (fun (k, a) ->
                        if List.mem a lv then None else Some (List.nth rc k))
                      (List.mapi (fun k a -> (k, a)) rv),
                  lval *. rval )
            else None)
          r)
      l
  in
  (rows, out_vars)

let rel_of_rows (rows : (int list * float) list) (vars : string list) : Rel.t =
  let n = List.length rows in
  let arity = List.length vars in
  let cols = Array.init arity (fun _ -> Array.make n 0) in
  let vals = Array.make n 0.0 in
  List.iteri
    (fun row (coords, v) ->
      List.iteri (fun a c -> cols.(a).(row) <- c) coords;
      vals.(row) <- v)
    rows;
  Rel.create ~attrs:(Array.of_list vars) ~cols ~vals

let rows_of_rel (r : Rel.t) : (int list * float) list =
  List.init (Rel.cardinality r) (fun row ->
      ( List.init (Rel.arity r) (fun a -> r.Rel.cols.(a).(row)),
        r.Rel.vals.(row) ))

(* Compare two relations up to row order, aggregating duplicates. *)
let same_relation (a : (int list * float) list) (b : (int list * float) list) :
    bool =
  let norm rows =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (c, v) ->
        let prev = try Hashtbl.find tbl c with Not_found -> 0.0 in
        Hashtbl.replace tbl c (prev +. v))
      rows;
    tbl
  in
  let ta = norm a and tb = norm b in
  Hashtbl.length ta = Hashtbl.length tb
  && Hashtbl.fold
       (fun c v ok ->
         ok
         &&
         match Hashtbl.find_opt tb c with
         | Some v' -> abs_float (v -. v') < 1e-6
         | None -> false)
       ta true

(* -------------------------------------------------------------- *)
(* Relation basics.                                                 *)
(* -------------------------------------------------------------- *)

let test_of_tensor () =
  let prng = Prng.create 1 in
  let t = sparse ~prng ~dims:[| 5; 6 |] ~density:0.4 in
  let r = Rel.of_tensor t ~vars:[ "i"; "j" ] in
  check_int "cardinality = nnz" (T.nnz t) (Rel.cardinality r);
  check_float "total = sum" (Array.fold_left ( +. ) 0.0 (T.to_flat_dense t)) (Rel.total r)

let test_to_tensor_roundtrip () =
  let prng = Prng.create 2 in
  let t = sparse ~prng ~dims:[| 5; 6 |] ~density:0.4 in
  let r = Rel.of_tensor t ~vars:[ "i"; "j" ] in
  let t2 = Rel.to_tensor r ~dims:[| 5; 6 |] in
  check_bool "roundtrip" true (T.equal_approx t t2)

let test_distinct_count () =
  let r =
    rel_of_rows [ ([ 0; 1 ], 1.0); ([ 0; 2 ], 1.0); ([ 1; 1 ], 1.0) ] [ "a"; "b" ]
  in
  check_int "distinct a" 2 (Rel.distinct_count r "a");
  check_int "distinct b" 2 (Rel.distinct_count r "b");
  check_int "absent" 1 (Rel.distinct_count r "z")

(* -------------------------------------------------------------- *)
(* Join and aggregation.                                            *)
(* -------------------------------------------------------------- *)

let random_rows prng ~n ~arity ~dom =
  List.init n (fun _ ->
      ( List.init arity (fun _ -> Prng.int prng dom),
        Prng.float_range prng 0.5 1.5 ))

let test_join_against_oracle () =
  let prng = Prng.create 3 in
  for _ = 1 to 20 do
    let l = random_rows prng ~n:15 ~arity:2 ~dom:5 in
    let r = random_rows prng ~n:15 ~arity:2 ~dom:5 in
    let lv = [ "x"; "y" ] and rv = [ "y"; "z" ] in
    let joined = Rel.join (rel_of_rows l lv) (rel_of_rows r rv) in
    let want, _ = oracle_join l lv r rv in
    check_bool "join matches oracle" true
      (same_relation (rows_of_rel joined) want)
  done

let test_join_no_shared_is_cross () =
  let l = rel_of_rows [ ([ 0 ], 2.0); ([ 1 ], 3.0) ] [ "a" ] in
  let r = rel_of_rows [ ([ 5 ], 10.0) ] [ "b" ] in
  let j = Rel.join l r in
  check_int "cross size" 2 (Rel.cardinality j);
  check_float "payload product" 50.0 (Rel.total j)

let test_project_sum () =
  let r =
    rel_of_rows
      [ ([ 0; 1 ], 1.0); ([ 0; 2 ], 2.0); ([ 1; 1 ], 4.0) ]
      [ "a"; "b" ]
  in
  let p = Rel.project_sum r ~keep:[ "a" ] in
  check_int "groups" 2 (Rel.cardinality p);
  check_bool "sums" true
    (same_relation (rows_of_rel p) [ ([ 0 ], 3.0); ([ 1 ], 4.0) ])

let test_project_sum_empty_keep () =
  let r = rel_of_rows [ ([ 0 ], 1.5); ([ 1 ], 2.5) ] [ "a" ] in
  let p = Rel.project_sum r ~keep:[] in
  check_int "single group" 1 (Rel.cardinality p);
  check_float "total" 4.0 (Rel.total p)

(* -------------------------------------------------------------- *)
(* Engine: planning and sum-product execution.                      *)
(* -------------------------------------------------------------- *)

let test_triangle_vs_bruteforce () =
  let prng = Prng.create 5 in
  let adj = sparse ~prng ~dims:[| 12; 12 |] ~density:0.25 in
  let db = Eng.create_db () in
  Eng.register_tensor db "M" adj;
  let atoms =
    [
      { Eng.rel = "M"; vars = [ "i"; "j" ] };
      { Eng.rel = "M"; vars = [ "j"; "k" ] };
      { Eng.rel = "M"; vars = [ "i"; "k" ] };
    ]
  in
  let r = Eng.sum_product db ~atoms ~out_vars:[] () in
  let want = ref 0.0 in
  for i = 0 to 11 do
    for j = 0 to 11 do
      for k = 0 to 11 do
        want :=
          !want
          +. T.get adj [| i; j |] *. T.get adj [| j; k |] *. T.get adj [| i; k |]
      done
    done
  done;
  check_float "triangle sum-product" !want (Rel.total r.Eng.relation)

let test_group_by_output () =
  let prng = Prng.create 6 in
  let a = sparse ~prng ~dims:[| 6; 6 |] ~density:0.4 in
  let b = sparse ~prng ~dims:[| 6 |] ~density:0.6 in
  let db = Eng.create_db () in
  Eng.register_tensor db "A" a;
  Eng.register_tensor db "b" b;
  let r =
    Eng.sum_product db
      ~atoms:[ { Eng.rel = "A"; vars = [ "i"; "j" ] }; { Eng.rel = "b"; vars = [ "j" ] } ]
      ~out_vars:[ "i" ] ()
  in
  let t = Rel.to_tensor r.Eng.relation ~dims:[| 6 |] in
  for i = 0 to 5 do
    let want = ref 0.0 in
    for j = 0 to 5 do
      want := !want +. (T.get a [| i; j |] *. T.get b [| j |])
    done;
    check_float (Printf.sprintf "row %d" i) !want (T.get t [| i |])
  done

let test_scale_factor () =
  let prng = Prng.create 7 in
  let b = sparse ~prng ~dims:[| 6 |] ~density:0.6 in
  let db = Eng.create_db () in
  Eng.register_tensor db "b" b;
  let r =
    Eng.sum_product db ~atoms:[ { Eng.rel = "b"; vars = [ "j" ] } ] ~out_vars:[]
      ~scale:3.0 ()
  in
  let want = 3.0 *. Array.fold_left ( +. ) 0.0 (T.to_flat_dense b) in
  check_float "scaled" want (Rel.total r.Eng.relation)

let test_planner_prefers_connected () =
  let db = Eng.create_db () in
  let small = rel_of_rows [ ([ 0 ], 1.0) ] [ "%0" ] in
  Eng.register_relation db "S" small ~dims:[| 10 |];
  let big =
    rel_of_rows (List.init 50 (fun k -> ([ k mod 10; k / 10 ], 1.0))) [ "%0"; "%1" ]
  in
  Eng.register_relation db "B" big ~dims:[| 10; 10 |];
  let order =
    Eng.plan_order db
      [
        { Eng.rel = "B"; vars = [ "x"; "y" ] };
        { Eng.rel = "S"; vars = [ "x" ] };
        { Eng.rel = "B"; vars = [ "y"; "z" ] };
      ]
  in
  (* starts from the smallest atom (index 1: S) *)
  check_int "starts small" 1 (List.hd order)

let test_timeout () =
  let prng = Prng.create 8 in
  let a = sparse ~prng ~dims:[| 60; 60 |] ~density:0.5 in
  let db = Eng.create_db () in
  Eng.register_tensor db "A" a;
  let atoms =
    [
      { Eng.rel = "A"; vars = [ "a"; "b" ] };
      { Eng.rel = "A"; vars = [ "b"; "c" ] };
      { Eng.rel = "A"; vars = [ "c"; "d" ] };
      { Eng.rel = "A"; vars = [ "d"; "e" ] };
    ]
  in
  check_bool "times out" true
    (try
       let deadline = Unix.gettimeofday () -. 1.0 in
       ignore (Eng.sum_product ~deadline db ~atoms ~out_vars:[] ());
       false
     with Eng.Timeout -> true)

(* -------------------------------------------------------------- *)
(* Bridge from Galley logical plans.                                *)
(* -------------------------------------------------------------- *)

let test_run_logical_plan_matches_galley () =
  let prng = Prng.create 9 in
  let adj = sparse ~prng ~dims:[| 10; 10 |] ~density:0.3 in
  let dim_of _ = 10 in
  let plan =
    [
      LQ.make ~output_idxs:[ "j"; "k" ] ~name:"W" ~agg_op:Op.Add
        ~agg_idxs:[ "i" ]
        ~body:(Ir.mul [ Ir.input "M" [ "i"; "j" ]; Ir.input "M" [ "i"; "k" ] ])
        ();
      LQ.make ~output_idxs:[] ~name:"count" ~agg_op:Op.Add
        ~agg_idxs:[ "j"; "k" ]
        ~body:(Ir.mul [ Ir.alias "W" [ "j"; "k" ]; Ir.input "M" [ "j"; "k" ] ])
        ();
    ]
  in
  let db = Eng.create_db () in
  Eng.register_tensor db "M" adj;
  let _ = Eng.run_logical_plan db ~dim_of plan in
  let rel_count = Rel.total (Eng.find_exn db "count").Eng.rel in
  (* Galley's engine on the same plan *)
  let res =
    Galley.Driver.run_logical_plan ~inputs:[ ("M", adj) ] ~outputs:[ "count" ]
      plan
  in
  let galley_count = T.get (Galley.Driver.output_of res "count") [||] in
  check_float "engines agree" galley_count rel_count

let test_bridge_rejects_non_sum_product () =
  let db = Eng.create_db () in
  let plan =
    LQ.make ~output_idxs:[ "i" ] ~name:"bad" ~agg_op:Op.Max ~agg_idxs:[ "j" ]
      ~body:(Ir.input "M" [ "i"; "j" ]) ()
  in
  check_bool "unsupported aggregate" true
    (try
       ignore (Eng.run_logical_query db ~dim_of:(fun _ -> 4) plan);
       false
     with Eng.Unsupported _ -> true)

(* Property: sum-product via the relational engine equals the reference for
   random 2-3 atom queries. *)
let prop_sum_product_matches_reference =
  QCheck.Test.make ~name:"sum-product matches reference" ~count:60
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let prng = Prng.create seed in
      let n = 4 + Prng.int prng 4 in
      let a = sparse ~prng ~dims:[| n; n |] ~density:0.4 in
      let b = sparse ~prng ~dims:[| n; n |] ~density:0.4 in
      let db = Eng.create_db () in
      Eng.register_tensor db "A" a;
      Eng.register_tensor db "B" b;
      let r =
        Eng.sum_product db
          ~atoms:
            [ { Eng.rel = "A"; vars = [ "i"; "j" ] };
              { Eng.rel = "B"; vars = [ "j"; "k" ] } ]
          ~out_vars:[ "i" ] ()
      in
      let t = Rel.to_tensor r.Eng.relation ~dims:[| n |] in
      let ok = ref true in
      for i = 0 to n - 1 do
        let want = ref 0.0 in
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            want := !want +. (T.get a [| i; j |] *. T.get b [| j; k |])
          done
        done;
        if abs_float (!want -. T.get t [| i |]) > 1e-6 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "relational"
    [
      ( "relation",
        [
          Alcotest.test_case "of_tensor" `Quick test_of_tensor;
          Alcotest.test_case "to_tensor" `Quick test_to_tensor_roundtrip;
          Alcotest.test_case "distinct" `Quick test_distinct_count;
        ] );
      ( "operators",
        [
          Alcotest.test_case "join oracle" `Quick test_join_against_oracle;
          Alcotest.test_case "cross product" `Quick test_join_no_shared_is_cross;
          Alcotest.test_case "project sum" `Quick test_project_sum;
          Alcotest.test_case "project to scalar" `Quick test_project_sum_empty_keep;
        ] );
      ( "engine",
        [
          Alcotest.test_case "triangles" `Quick test_triangle_vs_bruteforce;
          Alcotest.test_case "group by" `Quick test_group_by_output;
          Alcotest.test_case "scale" `Quick test_scale_factor;
          Alcotest.test_case "planner" `Quick test_planner_prefers_connected;
          Alcotest.test_case "timeout" `Quick test_timeout;
        ] );
      ( "bridge",
        [
          Alcotest.test_case "matches galley" `Quick test_run_logical_plan_matches_galley;
          Alcotest.test_case "rejects non-sum-product" `Quick test_bridge_rejects_non_sum_product;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_sum_product_matches_reference ] );
    ]
