(* Tests for the workload generators: determinism, structural properties of
   the graphs, subgraph counting against explicit enumeration, the TPC-H
   generator's schema, ML baselines vs fused programs, and BFS vs a
   classical reference. *)

module T = Galley_tensor.Tensor
module W = Galley_workloads
module Ir = Galley_plan.Ir

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

(* -------------------------------------------------------------- *)
(* Graphs.                                                          *)
(* -------------------------------------------------------------- *)

let test_graph_determinism () =
  let g1 = W.Graphs.erdos_renyi ~name:"g" ~seed:5 ~n:100 ~m:300 () in
  let g2 = W.Graphs.erdos_renyi ~name:"g" ~seed:5 ~n:100 ~m:300 () in
  check_bool "same edges" true (g1.W.Graphs.edges = g2.W.Graphs.edges);
  let g3 = W.Graphs.erdos_renyi ~name:"g" ~seed:6 ~n:100 ~m:300 () in
  check_bool "different seed differs" true (g1.W.Graphs.edges <> g3.W.Graphs.edges)

let test_graph_no_self_loops () =
  let g = W.Graphs.power_law ~name:"g" ~seed:7 ~n:200 ~m:600 () in
  Array.iter (fun (u, v) -> check_bool "no loop" true (u <> v)) g.W.Graphs.edges

let test_symmetrize () =
  let g = W.Graphs.symmetrize (W.Graphs.erdos_renyi ~name:"g" ~seed:8 ~n:50 ~m:100 ()) in
  let has = Hashtbl.create 64 in
  Array.iter (fun e -> Hashtbl.replace has e ()) g.W.Graphs.edges;
  Array.iter
    (fun (u, v) -> check_bool "symmetric" true (Hashtbl.mem has (v, u)))
    g.W.Graphs.edges

let test_adjacency_tensor () =
  let g = W.Graphs.erdos_renyi ~name:"g" ~seed:9 ~n:30 ~m:80 () in
  let adj = W.Graphs.adjacency g in
  check_int "nnz = edges" (W.Graphs.edge_count g) (T.nnz adj);
  Array.iter
    (fun (u, v) -> check_float "edge present" 1.0 (T.get adj [| u; v |]))
    g.W.Graphs.edges

let test_labels_partition () =
  let g = W.Graphs.erdos_renyi ~name:"g" ~seed:10 ~n:60 ~m:100 ~n_labels:4 () in
  let total =
    List.fold_left
      (fun acc l -> acc + T.nnz (W.Graphs.label_vector g l))
      0 [ 0; 1; 2; 3 ]
  in
  check_int "labels partition vertices" g.W.Graphs.n total

let test_power_law_skew () =
  (* a power-law graph should have a much larger max degree than an ER graph
     of the same size *)
  let deg_max g =
    let deg = Array.make g.W.Graphs.n 0 in
    Array.iter (fun (u, _) -> deg.(u) <- deg.(u) + 1) g.W.Graphs.edges;
    Array.fold_left max 0 deg
  in
  let er = W.Graphs.erdos_renyi ~name:"er" ~seed:11 ~n:2000 ~m:6000 () in
  let pl = W.Graphs.power_law ~name:"pl" ~seed:11 ~n:2000 ~m:6000 ~alpha:0.8 () in
  check_bool "skew" true (deg_max pl > 2 * deg_max er)

(* -------------------------------------------------------------- *)
(* Subgraph counting.                                               *)
(* -------------------------------------------------------------- *)

let small_graph () =
  W.Graphs.symmetrize
    (W.Graphs.erdos_renyi ~name:"t" ~seed:12 ~n:25 ~m:70 ~n_labels:3 ())

let test_patterns_vs_enumeration () =
  let g = small_graph () in
  List.iter
    (fun p ->
      let prog = W.Subgraph.count_program p in
      let inputs = W.Subgraph.bindings g p in
      let res = Galley.Driver.run ~inputs prog in
      let got = T.get (Galley.Driver.output_of res "count") [||] in
      let want = W.Subgraph.count_by_enumeration g p in
      check_float p.W.Subgraph.pname want got)
    (W.Subgraph.suite_for g)

let test_unlabelled_patterns () =
  let g =
    W.Graphs.symmetrize (W.Graphs.erdos_renyi ~name:"u" ~seed:13 ~n:20 ~m:60 ())
  in
  List.iter
    (fun p ->
      let prog = W.Subgraph.count_program p in
      let inputs = W.Subgraph.bindings g p in
      let res = Galley.Driver.run ~inputs prog in
      let got = T.get (Galley.Driver.output_of res "count") [||] in
      check_float p.W.Subgraph.pname (W.Subgraph.count_by_enumeration g p) got)
    [ W.Subgraph.path 3; W.Subgraph.triangle; W.Subgraph.cycle 4; W.Subgraph.star 3 ]

let test_pattern_shapes () =
  check_int "path edges" 3 (List.length (W.Subgraph.path 4).W.Subgraph.pedges);
  check_int "cycle edges" 4 (List.length (W.Subgraph.cycle 4).W.Subgraph.pedges);
  check_int "star edges" 4 (List.length (W.Subgraph.star 4).W.Subgraph.pedges);
  check_int "clique4 directed edges" 12
    (List.length (W.Subgraph.clique 4).W.Subgraph.pedges)

(* -------------------------------------------------------------- *)
(* TPC-H-like generator.                                            *)
(* -------------------------------------------------------------- *)

let test_star_schema () =
  let star = W.Tpch.star_instance ~scale:W.Tpch.tiny_scale ~seed:14 () in
  check_int "feature count" 139 star.W.Tpch.d;
  let l = List.assoc "L" star.W.Tpch.inputs in
  check_int "one nonzero per lineitem" star.W.Tpch.n (T.nnz l);
  let s = List.assoc "S" star.W.Tpch.inputs in
  let p = List.assoc "P" star.W.Tpch.inputs in
  (* disjoint feature columns *)
  let cols t =
    let set = Hashtbl.create 32 in
    T.iter_nonfill t (fun c _ -> Hashtbl.replace set c.(1) ());
    set
  in
  let sc = cols s and pc = cols p in
  Hashtbl.iter (fun c () -> check_bool "disjoint" false (Hashtbl.mem pc c)) sc

let test_self_join_schema () =
  let sj = W.Tpch.self_join_instance ~scale:W.Tpch.tiny_scale ~seed:15 () in
  let l3 = List.assoc "L3" sj.W.Tpch.sj_inputs in
  check_int "one nonzero per lineitem" sj.W.Tpch.sj_n (T.nnz l3);
  check_int "features" (19 + 39) sj.W.Tpch.sj_d

(* -------------------------------------------------------------- *)
(* ML programs: fused and baseline agree with the reference.         *)
(* -------------------------------------------------------------- *)

let test_ml_algorithms_correct () =
  let star =
    W.Tpch.star_instance ~scale:W.Tpch.tiny_scale ~layout:W.Tpch.tiny_layout
      ~seed:16 ()
  in
  let params = W.Ml.parameter_inputs ~seed:17 ~d:star.W.Tpch.d ~hidden:4 in
  let inputs = star.W.Tpch.inputs @ params in
  List.iter
    (fun alg ->
      let prog = W.Ml.program_of alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
      let out_name = List.hd prog.Ir.outputs in
      let want = List.assoc out_name (Galley.Reference.eval_program inputs prog) in
      (* fused *)
      let res = Galley.Driver.run ~inputs prog in
      check_bool
        (W.Ml.algorithm_name alg ^ " fused")
        true
        (T.equal_approx ~eps:1e-6 (Galley.Driver.output_of res out_name) want);
      (* baselines, dense and sparse X *)
      let plan, out = W.Ml.baseline_plan alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
      List.iter
        (fun dense ->
          let config =
            {
              Galley.Driver.default_config with
              physical = W.Ml.baseline_physical_config ~pts:1 ~dense;
            }
          in
          let bres =
            Galley.Driver.run_logical_plan ~config ~inputs ~outputs:[ out ] plan
          in
          check_bool
            (Printf.sprintf "%s baseline dense=%b" (W.Ml.algorithm_name alg) dense)
            true
            (T.equal_approx ~eps:1e-6 (Galley.Driver.output_of bres out) want))
        [ true; false ])
    W.Ml.all_algorithms

let test_self_join_linreg_correct () =
  let sj =
    W.Tpch.self_join_instance ~scale:W.Tpch.tiny_scale ~s_layout:(1, [ 2 ])
      ~p_layout:(1, [ 3 ]) ~seed:18 ()
  in
  let params = W.Ml.parameter_inputs ~seed:19 ~d:sj.W.Tpch.sj_d ~hidden:4 in
  let inputs = sj.W.Tpch.sj_inputs @ params in
  let prog = W.Ml.program_of W.Ml.Linreg ~x:sj.W.Tpch.sj_x_def ~pts:[ "i1"; "i2" ] in
  let want = List.assoc "Y" (Galley.Reference.eval_program inputs prog) in
  let res = Galley.Driver.run ~inputs prog in
  check_bool "self-join linreg" true
    (T.equal_approx ~eps:1e-6 (Galley.Driver.output_of res "Y") want)

(* -------------------------------------------------------------- *)
(* BFS.                                                             *)
(* -------------------------------------------------------------- *)

let test_bfs_variants_agree () =
  let g =
    W.Graphs.symmetrize (W.Graphs.erdos_renyi ~name:"b" ~seed:20 ~n:150 ~m:320 ())
  in
  let adjacency = W.Graphs.adjacency g in
  let want = W.Bfs.reference_visited ~adjacency ~source:3 in
  List.iter
    (fun v ->
      let s = W.Bfs.run v ~adjacency ~source:3 in
      check_int (W.Bfs.variant_name v) want s.W.Bfs.visited)
    [ W.Bfs.Adaptive; W.Bfs.All_sparse; W.Bfs.All_dense ]

let test_bfs_disconnected () =
  (* two cliques, no path between them *)
  let edges = ref [] in
  for i = 0 to 4 do
    for j = 0 to 4 do
      if i <> j then begin
        edges := ([| i; j |], 1.0) :: !edges;
        edges := ([| i + 5; j + 5 |], 1.0) :: !edges
      end
    done
  done;
  let adjacency =
    T.of_coo ~dims:[| 10; 10 |] ~formats:[| T.Dense; T.Sparse_list |]
      (Array.of_list !edges)
  in
  let s = W.Bfs.run W.Bfs.Adaptive ~adjacency ~source:0 in
  check_int "half reachable" 5 s.W.Bfs.visited

let () =
  Alcotest.run "workloads"
    [
      ( "graphs",
        [
          Alcotest.test_case "determinism" `Quick test_graph_determinism;
          Alcotest.test_case "no self loops" `Quick test_graph_no_self_loops;
          Alcotest.test_case "symmetrize" `Quick test_symmetrize;
          Alcotest.test_case "adjacency" `Quick test_adjacency_tensor;
          Alcotest.test_case "labels" `Quick test_labels_partition;
          Alcotest.test_case "power-law skew" `Quick test_power_law_skew;
        ] );
      ( "subgraph",
        [
          Alcotest.test_case "labelled suite" `Slow test_patterns_vs_enumeration;
          Alcotest.test_case "unlabelled" `Quick test_unlabelled_patterns;
          Alcotest.test_case "pattern shapes" `Quick test_pattern_shapes;
        ] );
      ( "tpch",
        [
          Alcotest.test_case "star schema" `Quick test_star_schema;
          Alcotest.test_case "self-join schema" `Quick test_self_join_schema;
        ] );
      ( "ml",
        [
          Alcotest.test_case "algorithms correct" `Slow test_ml_algorithms_correct;
          Alcotest.test_case "self-join linreg" `Slow test_self_join_linreg_correct;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "variants agree" `Quick test_bfs_variants_agree;
          Alcotest.test_case "disconnected" `Quick test_bfs_disconnected;
        ] );
    ]
