(* Tests for the execution engine: kernel execution against the brute-force
   reference on targeted algebraic shapes (intersection, union, fill
   correction, max-aggregates, scalars), every output format, transposes,
   kernel-cache behaviour, CSE, binding versions, and timeouts. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module Schema = Galley_plan.Schema
module LQ = Galley_plan.Logical_query
module Phys = Galley_plan.Physical
module Popt = Galley_physical.Optimizer
module Exec = Galley_engine.Exec
module Ctx = Galley_stats.Ctx

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let fresh_gen () =
  let c = ref 0 in
  fun () ->
    incr c;
    Printf.sprintf "#e%d" !c

(* Plan and execute one logical query over the given inputs. *)
let run_one ?config (inputs : (string * T.t) list) (q : LQ.t) : T.t =
  let schema = Schema.create () in
  List.iter (fun (n, t) -> Schema.declare_tensor schema n t) inputs;
  let ctx = Ctx.create schema in
  List.iter (fun (n, t) -> ctx.Ctx.register_input n t) inputs;
  let plan = Popt.plan_query ?config ctx ~fresh:(fresh_gen ()) q in
  let exec = Exec.create () in
  List.iter (fun (n, t) -> Exec.bind exec n t) inputs;
  Exec.run_plan exec plan;
  Exec.lookup exec q.LQ.name

(* Reference result for the same logical query. *)
let reference (inputs : (string * T.t) list) (q : LQ.t) : T.t =
  List.assoc q.LQ.name
    (Galley.Reference.eval_program inputs
       { Ir.queries = [ LQ.to_query q ]; outputs = [ q.LQ.name ] })

let check_against_reference ?config name inputs q =
  let got = run_one ?config inputs q in
  let want = reference inputs q in
  if not (T.equal_approx ~eps:1e-6 got want) then
    Alcotest.failf "%s: engine disagrees with reference:\ngot  %s\nwant %s" name
      (T.to_string got) (T.to_string want)

let sparse ~prng ~dims ~density =
  T.random ~prng ~dims
    ~formats:
      (Array.init (Array.length dims) (fun k ->
           if k = 0 then T.Dense else T.Sparse_list))
    ~density ()

(* -------------------------------------------------------------- *)
(* Algebraic shapes.                                                *)
(* -------------------------------------------------------------- *)

let test_matvec () =
  let prng = Prng.create 1 in
  let a = sparse ~prng ~dims:[| 8; 10 |] ~density:0.3 in
  let v = sparse ~prng ~dims:[| 10 |] ~density:0.7 in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"y" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.mul [ Ir.input "A" [ "i"; "j" ]; Ir.input "v" [ "j" ] ])
      ()
  in
  check_against_reference "matvec" [ ("A", a); ("v", v) ] q

let test_union_add () =
  let prng = Prng.create 2 in
  let a = sparse ~prng ~dims:[| 12 |] ~density:0.25 in
  let b = sparse ~prng ~dims:[| 12 |] ~density:0.25 in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"s" ~agg_op:Op.Ident ~agg_idxs:[]
      ~body:(Ir.add [ Ir.input "a" [ "i" ]; Ir.input "b" [ "i" ] ])
      ()
  in
  check_against_reference "union add" [ ("a", a); ("b", b) ] q

let test_mixed_add_mul () =
  let prng = Prng.create 3 in
  let a = sparse ~prng ~dims:[| 6; 7 |] ~density:0.3 in
  let b = sparse ~prng ~dims:[| 7 |] ~density:0.5 in
  let c = sparse ~prng ~dims:[| 6; 7 |] ~density:0.3 in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"r" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:
        (Ir.add
           [
             Ir.mul [ Ir.input "A" [ "i"; "j" ]; Ir.input "b" [ "j" ] ];
             Ir.input "C" [ "i"; "j" ];
           ])
      ()
  in
  check_against_reference "mixed" [ ("A", a); ("b", b); ("C", c) ] q

let test_sigmoid_fill_propagation () =
  let prng = Prng.create 4 in
  let a = sparse ~prng ~dims:[| 9 |] ~density:0.3 in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"p" ~agg_op:Op.Ident ~agg_idxs:[]
      ~body:(Ir.map Op.Sigmoid [ Ir.input "a" [ "i" ] ])
      ()
  in
  let got = run_one [ ("a", a) ] q in
  check_float "fill is sigmoid(0)" 0.5 (T.fill got);
  check_against_reference "sigmoid" [ ("a", a) ] q

let test_max_aggregate_fill_correction () =
  (* max_j over a sparse row: untouched coordinates contribute the fill 0,
     so rows whose explicit values are all negative must produce 0. *)
  let a =
    T.of_coo ~dims:[| 3; 8 |] ~formats:[| T.Dense; T.Sparse_list |]
      [| ([| 0; 2 |], -5.0); ([| 0; 4 |], -1.0); ([| 1; 3 |], 7.0) |]
  in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"m" ~agg_op:Op.Max ~agg_idxs:[ "j" ]
      ~body:(Ir.input "A" [ "i"; "j" ]) ()
  in
  let got = run_one [ ("A", a) ] q in
  check_float "negative row maxes to fill" 0.0 (T.get got [| 0 |]);
  check_float "positive survives" 7.0 (T.get got [| 1 |]);
  check_float "empty row is fill" 0.0 (T.get got [| 2 |]);
  check_against_reference "max agg" [ ("A", a) ] q

let test_sum_with_nonzero_body_fill () =
  (* Σ_j (A[i,j] + 1): body fill is 1, so each row sums explicit values plus
     one per non-enumerated coordinate. *)
  let a =
    T.of_coo ~dims:[| 2; 5 |] ~formats:[| T.Dense; T.Sparse_list |]
      [| ([| 0; 1 |], 2.0); ([| 0; 3 |], 3.0) |]
  in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"s" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.add [ Ir.input "A" [ "i"; "j" ]; Ir.lit 1.0 ])
      ()
  in
  let got = run_one [ ("A", a) ] q in
  check_float "row 0: 2+3 + 5 fills" 10.0 (T.get got [| 0 |]);
  check_float "row 1: all fill" 5.0 (T.get got [| 1 |]);
  check_against_reference "body fill" [ ("A", a) ] q

let test_scalar_output () =
  let prng = Prng.create 5 in
  let a = sparse ~prng ~dims:[| 6; 6 |] ~density:0.4 in
  let q =
    LQ.make ~output_idxs:[] ~name:"t" ~agg_op:Op.Add ~agg_idxs:[ "i"; "j" ]
      ~body:(Ir.input "A" [ "i"; "j" ]) ()
  in
  check_against_reference "full reduce" [ ("A", a) ] q

let test_scalar_input () =
  let prng = Prng.create 6 in
  let a = sparse ~prng ~dims:[| 6 |] ~density:0.6 in
  let c = T.scalar 2.5 in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"r" ~agg_op:Op.Ident ~agg_idxs:[]
      ~body:(Ir.mul [ Ir.input "a" [ "i" ]; Ir.input "c" [] ])
      ()
  in
  check_against_reference "scalar input" [ ("a", a); ("c", c) ] q

let test_comparison_output () =
  let prng = Prng.create 7 in
  let a = sparse ~prng ~dims:[| 10 |] ~density:0.5 in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"big" ~agg_op:Op.Ident ~agg_idxs:[]
      ~body:(Ir.Map (Op.Gt, [ Ir.input "a" [ "i" ]; Ir.lit 1.0 ]))
      ()
  in
  check_against_reference "comparison" [ ("a", a) ] q

let test_same_tensor_twice () =
  let prng = Prng.create 8 in
  let a = sparse ~prng ~dims:[| 7; 7 |] ~density:0.35 in
  let q =
    LQ.make ~output_idxs:[ "i"; "k" ] ~name:"sq" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.mul [ Ir.input "A" [ "i"; "j" ]; Ir.input "A" [ "j"; "k" ] ])
      ()
  in
  check_against_reference "A*A" [ ("A", a) ] q

(* Each output format end-to-end via the format override. *)
let test_all_output_formats () =
  let prng = Prng.create 9 in
  let a = sparse ~prng ~dims:[| 9; 9 |] ~density:0.3 in
  let want =
    reference [ ("A", a) ]
      (LQ.make ~output_idxs:[ "i" ] ~name:"r" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
         ~body:(Ir.input "A" [ "i"; "j" ]) ())
  in
  List.iter
    (fun fmt ->
      let q =
        LQ.make ~output_idxs:[ "i" ] ~name:"r" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
          ~body:(Ir.input "A" [ "i"; "j" ]) ()
      in
      let config =
        {
          Popt.default_config with
          format_override = (fun n -> if n = "r" then Some [| fmt |] else None);
        }
      in
      let got = run_one ~config [ ("A", a) ] q in
      check_bool (T.format_to_string fmt) true (T.equal_approx ~eps:1e-9 got want))
    [ T.Dense; T.Sparse_list; T.Bytemap; T.Hash ]

(* -------------------------------------------------------------- *)
(* Caching, CSE, timeouts.                                          *)
(* -------------------------------------------------------------- *)

let plan_for (inputs : (string * T.t) list) (q : LQ.t) : Phys.plan =
  let schema = Schema.create () in
  List.iter (fun (n, t) -> Schema.declare_tensor schema n t) inputs;
  let ctx = Ctx.create schema in
  List.iter (fun (n, t) -> ctx.Ctx.register_input n t) inputs;
  Popt.plan_query ctx ~fresh:(fresh_gen ()) q

let test_kernel_cache_reuse () =
  let prng = Prng.create 10 in
  let a = sparse ~prng ~dims:[| 8; 8 |] ~density:0.3 in
  let b = sparse ~prng ~dims:[| 8; 8 |] ~density:0.3 in
  let q name tname =
    LQ.make ~output_idxs:[ "i" ] ~name ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.input tname [ "i"; "j" ]) ()
  in
  let inputs = [ ("A", a); ("B", b) ] in
  let exec = Exec.create () in
  List.iter (fun (n, t) -> Exec.bind exec n t) inputs;
  Exec.run_plan exec (plan_for inputs (q "r1" "A"));
  check_int "first compile" 1 exec.Exec.timings.Exec.compile_count;
  Exec.run_plan exec (plan_for inputs (q "r2" "B"));
  check_int "cache hit (same structure)" 1 exec.Exec.timings.Exec.compile_count;
  (* different result despite shared kernel *)
  check_bool "r1 = sum A" true
    (T.equal_approx (Exec.lookup exec "r1")
       (reference inputs (q "r1" "A")));
  check_bool "r2 = sum B" true
    (T.equal_approx (Exec.lookup exec "r2")
       (reference inputs (q "r2" "B")))

let test_kernel_cache_size_generic () =
  (* Same structure, different sizes: one compilation, two correct runs. *)
  let prng = Prng.create 11 in
  let a = sparse ~prng ~dims:[| 6; 6 |] ~density:0.4 in
  let b = sparse ~prng ~dims:[| 15; 4 |] ~density:0.4 in
  let q name tname =
    LQ.make ~output_idxs:[ "i" ] ~name ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.input tname [ "i"; "j" ]) ()
  in
  let inputs = [ ("A", a); ("B", b) ] in
  let exec = Exec.create () in
  List.iter (fun (n, t) -> Exec.bind exec n t) inputs;
  Exec.run_plan exec (plan_for inputs (q "r1" "A"));
  Exec.run_plan exec (plan_for inputs (q "r2" "B"));
  check_bool "r2 dims follow B" true ((T.dims (Exec.lookup exec "r2")).(0) = 15);
  check_bool "r2 correct" true
    (T.equal_approx (Exec.lookup exec "r2") (reference inputs (q "r2" "B")))

let test_cse_hits () =
  let prng = Prng.create 12 in
  let a = sparse ~prng ~dims:[| 8; 8 |] ~density:0.3 in
  let q name =
    LQ.make ~output_idxs:[ "i" ] ~name ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.input "A" [ "i"; "j" ]) ()
  in
  let inputs = [ ("A", a) ] in
  let exec = Exec.create () in
  List.iter (fun (n, t) -> Exec.bind exec n t) inputs;
  Exec.run_plan exec (plan_for inputs (q "r1"));
  Exec.run_plan exec (plan_for inputs (q "r2"));
  check_int "second run is a CSE hit" 1 exec.Exec.timings.Exec.cse_hits;
  check_int "kernel ran once" 1 exec.Exec.timings.Exec.kernel_count

let test_cse_invalidated_by_rebinding () =
  let prng = Prng.create 13 in
  let a1 = sparse ~prng ~dims:[| 8; 8 |] ~density:0.3 in
  let a2 = sparse ~prng ~dims:[| 8; 8 |] ~density:0.3 in
  let q name =
    LQ.make ~output_idxs:[ "i" ] ~name ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.input "A" [ "i"; "j" ]) ()
  in
  let exec = Exec.create () in
  Exec.bind exec "A" a1;
  Exec.run_plan exec (plan_for [ ("A", a1) ] (q "r1"));
  Exec.bind exec "A" a2;
  Exec.run_plan exec (plan_for [ ("A", a2) ] (q "r2"));
  check_int "no stale CSE hit" 0 exec.Exec.timings.Exec.cse_hits;
  check_bool "r2 reflects new binding" true
    (T.equal_approx (Exec.lookup exec "r2") (reference [ ("A", a2) ] (q "r2")))

let test_cse_disabled () =
  let prng = Prng.create 14 in
  let a = sparse ~prng ~dims:[| 8; 8 |] ~density:0.3 in
  let q name =
    LQ.make ~output_idxs:[ "i" ] ~name ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.input "A" [ "i"; "j" ]) ()
  in
  let exec = Exec.create ~cse:false () in
  Exec.bind exec "A" a;
  Exec.run_plan exec (plan_for [ ("A", a) ] (q "r1"));
  Exec.run_plan exec (plan_for [ ("A", a) ] (q "r2"));
  check_int "no hits" 0 exec.Exec.timings.Exec.cse_hits;
  check_int "ran twice" 2 exec.Exec.timings.Exec.kernel_count

let test_transpose_step () =
  let prng = Prng.create 15 in
  let a = sparse ~prng ~dims:[| 5; 7 |] ~density:0.4 in
  let exec = Exec.create () in
  Exec.bind exec "A" a;
  let _ =
    Exec.run_step exec
      (Phys.Transpose
         {
           name = "At";
           source = "A";
           source_kind = `Input;
           perm = [| 1; 0 |];
           formats = [| T.Sparse_list; T.Sparse_list |];
         })
  in
  let at = Exec.lookup exec "At" in
  Alcotest.(check (array int)) "dims" [| 7; 5 |] (T.dims at);
  T.iter_nonfill a (fun c v -> check_float "entry" v (T.get at [| c.(1); c.(0) |]))

let test_timeout_raised () =
  (* A deliberately heavy kernel: dense 300^2 x 300 matmul-style triple loop. *)
  let n = 120 in
  let dense2 =
    T.of_fun ~dims:[| n; n |] ~formats:[| T.Dense; T.Dense |] (fun _ -> 1.0)
  in
  let q =
    LQ.make ~output_idxs:[ "i"; "k" ] ~name:"slow" ~agg_op:Op.Add
      ~agg_idxs:[ "j" ]
      ~body:(Ir.mul [ Ir.input "A" [ "i"; "j" ]; Ir.input "B" [ "j"; "k" ] ])
      ()
  in
  let inputs = [ ("A", dense2); ("B", dense2) ] in
  let plan = plan_for inputs q in
  let exec = Exec.create () in
  List.iter (fun (n, t) -> Exec.bind exec n t) inputs;
  exec.Exec.deadline <- Some (Unix.gettimeofday () -. 1.0) (* already past *);
  check_bool "raises" true
    (try
       Exec.run_plan exec plan;
       false
     with Exec.Timeout -> true)

(* -------------------------------------------------------------- *)
(* Differential property test: random kernels match the reference.  *)
(* -------------------------------------------------------------- *)

let prop_random_kernels =
  QCheck.Test.make ~name:"random kernels match reference" ~count:120
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let prng = Prng.create seed in
      let n1 = 3 + Prng.int prng 4 and n2 = 3 + Prng.int prng 4 in
      let a = sparse ~prng ~dims:[| n1; n2 |] ~density:0.4 in
      let b = sparse ~prng ~dims:[| n2 |] ~density:0.5 in
      let c = sparse ~prng ~dims:[| n1 |] ~density:0.5 in
      let inputs = [ ("A", a); ("b", b); ("c", c) ] in
      let leaf () =
        match Prng.int prng 4 with
        | 0 -> Ir.input "A" [ "i"; "j" ]
        | 1 -> Ir.input "b" [ "j" ]
        | 2 -> Ir.input "c" [ "i" ]
        | _ -> Ir.lit (Prng.float_range prng (-1.0) 2.0)
      in
      let rec gen depth =
        if depth = 0 || Prng.int prng 3 = 0 then leaf ()
        else
          match Prng.int prng 5 with
          | 0 -> Ir.add [ gen (depth - 1); gen (depth - 1) ]
          | 1 -> Ir.mul [ gen (depth - 1); gen (depth - 1) ]
          | 2 -> Ir.Map (Op.Max, [ gen (depth - 1); gen (depth - 1) ])
          | 3 -> Ir.Map (Op.Sub, [ gen (depth - 1); gen (depth - 1) ])
          | _ -> Ir.map Op.Sigmoid [ gen (depth - 1) ]
      in
      let body = gen 3 in
      let free = Ir.Idx_set.elements (Ir.free_indices body) in
      let agg_op = if Prng.bool prng then Op.Add else Op.Max in
      let agg_idxs = List.filter (fun _ -> Prng.bool prng) free in
      let output_idxs = List.filter (fun i -> not (List.mem i agg_idxs)) free in
      let agg_op = if agg_idxs = [] then Op.Ident else agg_op in
      let q =
        LQ.make ~output_idxs ~name:"out" ~agg_op ~agg_idxs ~body ()
      in
      let got = run_one inputs q in
      let want = reference inputs q in
      T.equal_approx ~eps:1e-6 got want)

let () =
  Alcotest.run "engine"
    [
      ( "kernels",
        [
          Alcotest.test_case "matvec" `Quick test_matvec;
          Alcotest.test_case "union add" `Quick test_union_add;
          Alcotest.test_case "mixed add/mul" `Quick test_mixed_add_mul;
          Alcotest.test_case "sigmoid fill" `Quick test_sigmoid_fill_propagation;
          Alcotest.test_case "max fill correction" `Quick test_max_aggregate_fill_correction;
          Alcotest.test_case "nonzero body fill" `Quick test_sum_with_nonzero_body_fill;
          Alcotest.test_case "scalar output" `Quick test_scalar_output;
          Alcotest.test_case "scalar input" `Quick test_scalar_input;
          Alcotest.test_case "comparison" `Quick test_comparison_output;
          Alcotest.test_case "self join" `Quick test_same_tensor_twice;
          Alcotest.test_case "all output formats" `Quick test_all_output_formats;
        ] );
      ( "caching",
        [
          Alcotest.test_case "kernel cache" `Quick test_kernel_cache_reuse;
          Alcotest.test_case "size generic" `Quick test_kernel_cache_size_generic;
          Alcotest.test_case "cse hits" `Quick test_cse_hits;
          Alcotest.test_case "cse vs rebinding" `Quick test_cse_invalidated_by_rebinding;
          Alcotest.test_case "cse disabled" `Quick test_cse_disabled;
        ] );
      ( "steps",
        [
          Alcotest.test_case "transpose" `Quick test_transpose_step;
          Alcotest.test_case "timeout" `Quick test_timeout_raised;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_random_kernels ] );
    ]
