(* Tests for the fiber-tree tensor substrate: construction, access,
   iteration order, reformatting, transposition, builders, and property
   tests over random tensors in every format combination. *)

module T = Galley_tensor.Tensor
module B = Galley_tensor.Builder
module Prng = Galley_tensor.Prng

let all_formats = [ T.Dense; T.Sparse_list; T.Bytemap; T.Hash ]

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------------------------------------------------- *)
(* Construction and point access.                                   *)
(* -------------------------------------------------------------- *)

let test_scalar () =
  let t = T.scalar 3.5 in
  check_int "ndims" 0 (T.ndims t);
  check_float "value" 3.5 (T.scalar_value t);
  check_float "get" 3.5 (T.get t [||])

let test_of_coo_get () =
  List.iter
    (fun fmt_outer ->
      List.iter
        (fun fmt_inner ->
          let t =
            T.of_coo ~dims:[| 3; 4 |] ~formats:[| fmt_outer; fmt_inner |]
              [| ([| 0; 1 |], 2.0); ([| 2; 3 |], -1.0); ([| 0; 0 |], 5.0) |]
          in
          let name =
            Printf.sprintf "%s/%s" (T.format_to_string fmt_outer)
              (T.format_to_string fmt_inner)
          in
          check_float (name ^ " [0,1]") 2.0 (T.get t [| 0; 1 |]);
          check_float (name ^ " [2,3]") (-1.0) (T.get t [| 2; 3 |]);
          check_float (name ^ " [0,0]") 5.0 (T.get t [| 0; 0 |]);
          check_float (name ^ " missing") 0.0 (T.get t [| 1; 1 |]);
          check_int (name ^ " nnz") 3 (T.nnz t))
        all_formats)
    all_formats

let test_of_coo_combines_duplicates () =
  let t =
    T.of_coo ~dims:[| 4 |] ~formats:[| T.Sparse_list |]
      [| ([| 1 |], 2.0); ([| 1 |], 3.0); ([| 2 |], 1.0) |]
  in
  check_float "summed" 5.0 (T.get t [| 1 |]);
  check_int "nnz" 2 (T.nnz t)

let test_of_coo_prunes_fill () =
  let t =
    T.of_coo ~dims:[| 4 |] ~formats:[| T.Sparse_list |]
      [| ([| 1 |], 0.0); ([| 2 |], 1.0) |]
  in
  check_int "nnz after prune" 1 (T.nnz t);
  let t2 =
    T.of_coo ~prune:false ~dims:[| 4 |] ~formats:[| T.Sparse_list |]
      [| ([| 1 |], 0.0); ([| 2 |], 1.0) |]
  in
  check_int "explicit kept" 2 (T.explicit_count t2)

let test_nonzero_fill () =
  let t =
    T.of_coo ~fill:1.0 ~dims:[| 3 |] ~formats:[| T.Sparse_list |]
      [| ([| 0 |], 4.0) |]
  in
  check_float "explicit" 4.0 (T.get t [| 0 |]);
  check_float "fill" 1.0 (T.get t [| 1 |]);
  check_int "nnz counts non-fill" 1 (T.nnz t)

let test_dense_explicit_everywhere () =
  let t =
    T.of_coo ~dims:[| 3 |] ~formats:[| T.Dense |] [| ([| 1 |], 2.0) |]
  in
  check_int "dense explicit count" 3 (T.explicit_count t);
  check_int "dense nnz" 1 (T.nnz t)

(* -------------------------------------------------------------- *)
(* Iteration.                                                       *)
(* -------------------------------------------------------------- *)

let test_iteration_sorted () =
  List.iter
    (fun fmt ->
      let t =
        T.of_coo ~dims:[| 10 |] ~formats:[| fmt |]
          [| ([| 7 |], 1.0); ([| 2 |], 1.0); ([| 5 |], 1.0) |]
      in
      let seen = ref [] in
      T.iter_nonfill t (fun c _ -> seen := c.(0) :: !seen);
      Alcotest.(check (list int))
        (T.format_to_string fmt ^ " sorted")
        [ 2; 5; 7 ] (List.rev !seen))
    all_formats

let test_to_coo_roundtrip () =
  let prng = Prng.create 5 in
  let t =
    T.random ~prng ~dims:[| 5; 6 |] ~formats:[| T.Hash; T.Bytemap |]
      ~density:0.4 ()
  in
  let t2 = T.of_coo ~dims:[| 5; 6 |] ~formats:[| T.Dense; T.Sparse_list |] (T.to_coo t) in
  check_bool "roundtrip equal" true (T.equal_approx t t2)

(* -------------------------------------------------------------- *)
(* Reformat / transpose.                                            *)
(* -------------------------------------------------------------- *)

let test_reformat_preserves_values () =
  let prng = Prng.create 11 in
  let t =
    T.random ~prng ~dims:[| 4; 5; 3 |]
      ~formats:[| T.Dense; T.Sparse_list; T.Sparse_list |]
      ~density:0.3 ()
  in
  List.iter
    (fun fmt ->
      let t2 = T.reformat t [| fmt; fmt; fmt |] in
      check_bool (T.format_to_string fmt) true (T.equal_approx t t2))
    all_formats

let test_transpose () =
  let t =
    T.of_coo ~dims:[| 2; 3 |] ~formats:[| T.Dense; T.Sparse_list |]
      [| ([| 0; 2 |], 1.5); ([| 1; 0 |], 2.5) |]
  in
  let tt = T.transpose t [| 1; 0 |] in
  Alcotest.(check (array int)) "dims" [| 3; 2 |] (T.dims tt);
  check_float "swapped" 1.5 (T.get tt [| 2; 0 |]);
  check_float "swapped2" 2.5 (T.get tt [| 0; 1 |]);
  let back = T.transpose tt [| 1; 0 |] in
  check_bool "involution" true (T.equal_approx t back)

let test_transpose_3d () =
  let prng = Prng.create 17 in
  let t =
    T.random ~prng ~dims:[| 3; 4; 5 |]
      ~formats:[| T.Dense; T.Sparse_list; T.Sparse_list |]
      ~density:0.3 ()
  in
  let perm = [| 2; 0; 1 |] in
  let tt = T.transpose t perm in
  Alcotest.(check (array int)) "dims" [| 5; 3; 4 |] (T.dims tt);
  T.iter_nonfill t (fun c v ->
      check_float "entry" v (T.get tt [| c.(2); c.(0); c.(1) |]))

(* -------------------------------------------------------------- *)
(* Flat dense interop.                                              *)
(* -------------------------------------------------------------- *)

let test_flat_dense_roundtrip () =
  let prng = Prng.create 23 in
  let dims = [| 3; 4 |] in
  let t =
    T.random ~prng ~dims ~formats:[| T.Sparse_list; T.Hash |] ~density:0.5 ()
  in
  let flat = T.to_flat_dense t in
  let t2 = T.of_flat_dense ~dims ~formats:[| T.Dense; T.Dense |] flat in
  check_bool "roundtrip" true (T.equal_approx t t2)

let test_of_fun () =
  let t =
    T.of_fun ~dims:[| 3; 3 |] ~formats:[| T.Dense; T.Sparse_list |] (fun c ->
        if c.(0) = c.(1) then 1.0 else 0.0)
  in
  check_int "identity nnz" 3 (T.nnz t);
  check_float "diag" 1.0 (T.get t [| 2; 2 |])

(* -------------------------------------------------------------- *)
(* Builders.                                                        *)
(* -------------------------------------------------------------- *)

let test_builder_accumulate () =
  List.iter
    (fun fmt ->
      let b = B.create ~dims:[| 4 |] ~formats:[| fmt |] ~identity:0.0 () in
      B.accum b [| 2 |] 1.0 ~combine:( +. );
      B.accum b [| 2 |] 2.0 ~combine:( +. );
      B.accum b [| 3 |] 5.0 ~combine:( +. );
      let t = B.freeze b ~finalize:(fun v _ -> v) ~fill:0.0 in
      check_float (T.format_to_string fmt ^ " acc") 3.0 (T.get t [| 2 |]);
      check_float (T.format_to_string fmt ^ " single") 5.0 (T.get t [| 3 |]))
    all_formats

let test_builder_counts () =
  let b = B.create ~dims:[| 3 |] ~formats:[| T.Dense |] ~identity:0.0 () in
  B.accum b [| 0 |] 1.0 ~combine:( +. );
  B.accum b [| 0 |] 1.0 ~combine:( +. );
  B.accum b [| 1 |] 1.0 ~combine:( +. );
  let t = B.freeze b ~finalize:(fun _ cnt -> float_of_int cnt) ~fill:0.0 in
  check_float "cnt 2" 2.0 (T.get t [| 0 |]);
  check_float "cnt 1" 1.0 (T.get t [| 1 |]);
  check_float "cnt 0" 0.0 (T.get t [| 2 |])

let test_builder_sequential_violation () =
  let b = B.create ~dims:[| 4 |] ~formats:[| T.Sparse_list |] ~identity:0.0 () in
  B.accum b [| 2 |] 1.0 ~combine:( +. );
  Alcotest.check_raises "backwards write rejected"
    (Invalid_argument "Builder: non-sequential write into a sorted-list level")
    (fun () -> B.accum b [| 1 |] 1.0 ~combine:( +. ))

let test_builder_random_writes () =
  List.iter
    (fun fmt ->
      let b = B.create ~dims:[| 5 |] ~formats:[| fmt |] ~identity:0.0 () in
      B.accum b [| 4 |] 1.0 ~combine:( +. );
      B.accum b [| 0 |] 2.0 ~combine:( +. );
      let t = B.freeze b ~finalize:(fun v _ -> v) ~fill:0.0 in
      check_float "late" 1.0 (T.get t [| 4 |]);
      check_float "early" 2.0 (T.get t [| 0 |]))
    [ T.Dense; T.Bytemap; T.Hash ]

let test_builder_nested () =
  let b =
    B.create ~dims:[| 3; 4 |] ~formats:[| T.Sparse_list; T.Hash |]
      ~identity:0.0 ()
  in
  B.accum b [| 0; 3 |] 1.0 ~combine:( +. );
  B.accum b [| 0; 1 |] 2.0 ~combine:( +. );
  B.accum b [| 2; 0 |] 4.0 ~combine:( +. );
  let t = B.freeze b ~finalize:(fun v _ -> v) ~fill:0.0 in
  check_int "nnz" 3 (T.nnz t);
  check_float "a" 1.0 (T.get t [| 0; 3 |]);
  check_float "b" 2.0 (T.get t [| 0; 1 |]);
  check_float "c" 4.0 (T.get t [| 2; 0 |])

let test_builder_scalar () =
  let b = B.create ~dims:[||] ~formats:[||] ~identity:0.0 () in
  B.accum b [||] 2.0 ~combine:( +. );
  B.accum b [||] 3.0 ~combine:( +. );
  let t = B.freeze b ~finalize:(fun v _ -> v) ~fill:0.0 in
  check_float "scalar sum" 5.0 (T.scalar_value t)

(* -------------------------------------------------------------- *)
(* Node-level accessors (used by the engine).                       *)
(* -------------------------------------------------------------- *)

let test_node_find () =
  let t =
    T.of_coo ~dims:[| 6; 6 |] ~formats:[| T.Bytemap; T.Sparse_list |]
      [| ([| 1; 2 |], 1.0); ([| 4; 5 |], 2.0) |]
  in
  let root = T.root t in
  check_bool "hit" true (T.Node.find root 1 <> None);
  check_bool "miss" true (T.Node.find root 2 = None);
  (match T.Node.find root 4 with
  | Some leaf -> check_float "leaf value" 2.0 (Option.get (T.Node.find_value leaf 5))
  | None -> Alcotest.fail "missing child");
  match T.Node.explicit_indices root with
  | Some arr -> Alcotest.(check (array int)) "explicit" [| 1; 4 |] arr
  | None -> Alcotest.fail "bytemap should report explicit indices"

(* -------------------------------------------------------------- *)
(* PRNG determinism.                                                *)
(* -------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_ranges () =
  let p = Prng.create 1 in
  for _ = 1 to 1000 do
    let x = Prng.int p 10 in
    check_bool "in range" true (x >= 0 && x < 10);
    let f = Prng.float p in
    check_bool "float range" true (f >= 0.0 && f < 1.0);
    let s = Prng.skewed p ~alpha:0.8 50 in
    check_bool "skewed range" true (s >= 0 && s < 50)
  done

let test_sample_distinct () =
  let p = Prng.create 3 in
  let s = Prng.sample_distinct p ~k:20 100 in
  check_int "count" 20 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 19 do
    check_bool "distinct" true (sorted.(i) <> sorted.(i - 1))
  done

(* -------------------------------------------------------------- *)
(* Property tests.                                                  *)
(* -------------------------------------------------------------- *)

let random_format prng =
  match Prng.int prng 4 with
  | 0 -> T.Dense
  | 1 -> T.Sparse_list
  | 2 -> T.Bytemap
  | _ -> T.Hash

let prop_get_matches_flat =
  QCheck.Test.make ~name:"get matches to_flat_dense" ~count:60
    (QCheck.int_range 0 10_000)
    (fun seed ->
      let prng = Prng.create seed in
      let nd = 1 + Prng.int prng 3 in
      let dims = Array.init nd (fun _ -> 2 + Prng.int prng 4) in
      let formats = Array.init nd (fun _ -> random_format prng) in
      let t = T.random ~prng ~dims ~formats ~density:0.4 () in
      let flat = T.to_flat_dense t in
      let ok = ref true in
      Array.iteri
        (fun i v ->
          let c = T.unflatten dims i in
          if T.get t c <> v then ok := false)
        flat;
      !ok)

let prop_transpose_preserves =
  QCheck.Test.make ~name:"transpose preserves entries" ~count:60
    (QCheck.int_range 0 10_000)
    (fun seed ->
      let prng = Prng.create seed in
      let nd = 2 + Prng.int prng 2 in
      let dims = Array.init nd (fun _ -> 2 + Prng.int prng 4) in
      let formats = Array.init nd (fun _ -> random_format prng) in
      let t = T.random ~prng ~dims ~formats ~density:0.4 () in
      let perm = Array.init nd (fun i -> i) in
      Prng.shuffle prng perm;
      let tt = T.transpose t perm in
      let ok = ref true in
      T.iter_nonfill t (fun c v ->
          let c' = Array.map (fun k -> c.(k)) perm in
          if T.get tt c' <> v then ok := false);
      !ok && T.nnz t = T.nnz tt)

let prop_reformat_identity =
  QCheck.Test.make ~name:"reformat preserves tensor" ~count:60
    (QCheck.int_range 0 10_000)
    (fun seed ->
      let prng = Prng.create seed in
      let nd = 1 + Prng.int prng 3 in
      let dims = Array.init nd (fun _ -> 2 + Prng.int prng 4) in
      let formats = Array.init nd (fun _ -> random_format prng) in
      let formats2 = Array.init nd (fun _ -> random_format prng) in
      let t = T.random ~prng ~dims ~formats ~density:0.5 () in
      T.equal_approx t (T.reformat t formats2))

let () =
  Alcotest.run "tensor"
    [
      ( "construction",
        [
          Alcotest.test_case "scalar" `Quick test_scalar;
          Alcotest.test_case "of_coo/get all formats" `Quick test_of_coo_get;
          Alcotest.test_case "duplicate combine" `Quick test_of_coo_combines_duplicates;
          Alcotest.test_case "fill pruning" `Quick test_of_coo_prunes_fill;
          Alcotest.test_case "non-zero fill" `Quick test_nonzero_fill;
          Alcotest.test_case "dense explicit" `Quick test_dense_explicit_everywhere;
          Alcotest.test_case "of_fun" `Quick test_of_fun;
        ] );
      ( "iteration",
        [
          Alcotest.test_case "sorted order" `Quick test_iteration_sorted;
          Alcotest.test_case "to_coo roundtrip" `Quick test_to_coo_roundtrip;
        ] );
      ( "reshape",
        [
          Alcotest.test_case "reformat" `Quick test_reformat_preserves_values;
          Alcotest.test_case "transpose 2d" `Quick test_transpose;
          Alcotest.test_case "transpose 3d" `Quick test_transpose_3d;
          Alcotest.test_case "flat roundtrip" `Quick test_flat_dense_roundtrip;
        ] );
      ( "builder",
        [
          Alcotest.test_case "accumulate" `Quick test_builder_accumulate;
          Alcotest.test_case "counts" `Quick test_builder_counts;
          Alcotest.test_case "sequential violation" `Quick test_builder_sequential_violation;
          Alcotest.test_case "random writes" `Quick test_builder_random_writes;
          Alcotest.test_case "nested" `Quick test_builder_nested;
          Alcotest.test_case "scalar" `Quick test_builder_scalar;
        ] );
      ("node", [ Alcotest.test_case "find/explicit" `Quick test_node_find ]);
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "sample distinct" `Quick test_sample_distinct;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_get_matches_flat; prop_transpose_preserves; prop_reformat_identity ] );
    ]
