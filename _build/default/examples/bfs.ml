(* Breadth-first search with adaptive tensor formats (paper Sec. 9.3).

     dune exec examples/bfs.exe

   Push-based BFS one iteration at a time: the frontier vector starts tiny,
   peaks mid-search, and shrinks again, while the visited vector grows
   monotonically — so no fixed format is right throughout.  Galley picks
   formats per iteration from its sparsity estimates; the baselines pin
   everything sparse or everything dense. *)

module W = Galley_workloads

let () =
  let g =
    W.Graphs.symmetrize
      (W.Graphs.power_law ~name:"demo" ~seed:31 ~n:20000 ~m:60000 ~alpha:0.7 ())
  in
  let adjacency = W.Graphs.adjacency g in
  let source = 0 in
  let reference = W.Bfs.reference_visited ~adjacency ~source in
  Format.printf "graph: %d vertices, %d directed edges; reachable from %d: %d@."
    g.W.Graphs.n
    (Galley_tensor.Tensor.nnz adjacency)
    source reference;
  Format.printf "%-10s %10s %10s %10s@." "variant" "visited" "iters" "time";
  List.iter
    (fun v ->
      let s = W.Bfs.run v ~adjacency ~source in
      assert (s.W.Bfs.visited = reference);
      Format.printf "%-10s %10d %10d %9.3fs@." (W.Bfs.variant_name v)
        s.W.Bfs.visited s.W.Bfs.iterations s.W.Bfs.seconds)
    [ W.Bfs.Adaptive; W.Bfs.All_sparse; W.Bfs.All_dense ]
