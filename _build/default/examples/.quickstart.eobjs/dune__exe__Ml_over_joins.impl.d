examples/ml_over_joins.ml: Format Galley Galley_tensor Galley_workloads List Unix
