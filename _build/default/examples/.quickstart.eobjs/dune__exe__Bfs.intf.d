examples/bfs.mli:
