examples/ml_over_joins.mli:
