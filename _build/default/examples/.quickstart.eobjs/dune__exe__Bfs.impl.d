examples/bfs.ml: Format Galley_tensor Galley_workloads List
