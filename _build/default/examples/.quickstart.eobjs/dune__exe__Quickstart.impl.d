examples/quickstart.ml: Array Format Galley Galley_lang Galley_plan Galley_tensor Galley_workloads List
