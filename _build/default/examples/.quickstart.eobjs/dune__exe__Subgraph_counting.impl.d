examples/subgraph_counting.ml: Float Format Galley Galley_relational Galley_tensor Galley_workloads List Unix
