examples/subgraph_counting.mli:
