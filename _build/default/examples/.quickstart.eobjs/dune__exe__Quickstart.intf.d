examples/quickstart.mli:
