(* Quickstart: declare sparse tensors, write a declarative program, let
   Galley optimize and execute it.

     dune exec examples/quickstart.exe

   Shows both front ends: the textual tensor-index-notation language and
   the OCaml combinator API. *)

module T = Galley_tensor.Tensor
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op

let section title = Format.printf "@.=== %s ===@." title

(* -------------------------------------------------------------- *)
(* 1. Triangle counting, written in the textual language.           *)
(* -------------------------------------------------------------- *)

let triangle_counting () =
  section "triangle counting (textual front end)";
  (* A random symmetric graph as a sparse boolean adjacency matrix:
     dense row dimension, sorted-list column dimension (CSR-like). *)
  let graph =
    Galley_workloads.Graphs.symmetrize
      (Galley_workloads.Graphs.erdos_renyi ~name:"demo" ~seed:1 ~n:500 ~m:2500 ())
  in
  let adjacency = Galley_workloads.Graphs.adjacency graph in
  Format.printf "graph: %d vertices, %d directed edges@." graph.Galley_workloads.Graphs.n
    (T.nnz adjacency);
  let program =
    Galley_lang.Parser.parse_program
      "t = sum[i,j,k](E[i,j] * E[j,k] * E[i,k])"
  in
  let result = Galley.Driver.run ~inputs:[ ("E", adjacency) ] program in
  Format.printf "logical plan:@.";
  List.iter
    (fun q -> Format.printf "  %a@." Galley_plan.Logical_query.pp q)
    result.Galley.Driver.logical_plan;
  Format.printf "triangles (x6, ordered): %g@."
    (T.get (Galley.Driver.output_of result "t") [||])

(* -------------------------------------------------------------- *)
(* 2. Logistic regression, written with the combinator API.         *)
(* -------------------------------------------------------------- *)

let logistic_regression () =
  section "logistic regression (combinator API)";
  let prng = Galley_tensor.Prng.create 7 in
  let n = 2000 and d = 64 in
  (* Sparse feature matrix: ~3% of entries are non-zero. *)
  let x =
    T.random ~prng ~dims:[| n; d |]
      ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.03 ()
  in
  let theta =
    T.of_fun ~dims:[| d |] ~formats:[| T.Dense |] (fun _ ->
        Galley_tensor.Prng.float_range prng (-1.0) 1.0)
  in
  (* Prob[i] = sigmoid(sum_j X[i,j] * theta[j]) *)
  let q =
    Ir.query ~out_order:[ "i" ] "Prob"
      (Ir.map Op.Sigmoid
         [ Ir.sum [ "j" ] (Ir.mul [ Ir.input "X" [ "i"; "j" ]; Ir.input "theta" [ "j" ] ]) ])
  in
  let result =
    Galley.Driver.run_query ~inputs:[ ("X", x); ("theta", theta) ] q
  in
  let probs = Galley.Driver.output_of result "Prob" in
  Format.printf
    "output: %d probabilities, fill=%g (the sigmoid of 0 represented \
     implicitly)@."
    (T.dims probs).(0) (T.fill probs);
  Format.printf "first entries: %g %g %g@." (T.get probs [| 0 |])
    (T.get probs [| 1 |]) (T.get probs [| 2 |]);
  let t = result.Galley.Driver.timings in
  Format.printf "optimize=%.4fs execute=%.4fs@."
    (t.Galley.Driver.logical_seconds +. t.Galley.Driver.physical_seconds)
    t.Galley.Driver.execute_seconds

(* -------------------------------------------------------------- *)
(* 3. Money-laundering filter from the paper's Sec. 3.1: logistic
      scores thresholded, then filtered to vertices on a triangle.  *)
(* -------------------------------------------------------------- *)

let laundering_filter () =
  section "laundering filter (multiple outputs, max-aggregate)";
  let prng = Galley_tensor.Prng.create 99 in
  let n = 400 and d = 16 in
  let x =
    T.random ~prng ~dims:[| n; d |] ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.1 ()
  in
  let theta =
    T.of_fun ~dims:[| d |] ~formats:[| T.Dense |] (fun _ ->
        Galley_tensor.Prng.float_range prng (-2.0) 2.0)
  in
  let graph =
    Galley_workloads.Graphs.symmetrize
      (Galley_workloads.Graphs.erdos_renyi ~name:"txn" ~seed:3 ~n ~m:1200 ())
  in
  let e = Galley_workloads.Graphs.adjacency graph in
  (* L[i] = (sigmoid(Σ_j X θ) > 0.5);  V[i] = L[i] · max_jk(E_ij E_jk E_ik) *)
  let program =
    Galley_lang.Parser.parse_program
      "L[i] = sigmoid(sum[j](X[i,j] * theta[j])) > 0.5\n\
       V[i] = L[i] * maxof[j,k](E[i,j] * E[j,k] * E[i,k])"
  in
  let result =
    Galley.Driver.run
      ~inputs:[ ("X", x); ("theta", theta); ("E", e) ]
      program
  in
  let v = Galley.Driver.output_of result "V" in
  Format.printf "flagged vertices on a triangle: %d of %d@." (T.nnz v) n

let () =
  triangle_counting ();
  logistic_regression ();
  laundering_filter ();
  Format.printf "@.done.@."
