(* ML algorithms over join-structured feature matrices (paper Sec. 9.1).

     dune exec examples/ml_over_joins.exe

   Runs linear regression, logistic regression, covariance, and a 2-layer
   network over the TPC-H-like star join, comparing Galley's fused plans
   (computation pushed into the join definition) against hand-written plans
   that materialize the feature matrix first — the paper's Fig. 6 setup at
   example scale. *)

module T = Galley_tensor.Tensor
module W = Galley_workloads

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let scale =
    {
      W.Tpch.n_lineitems = 4000;
      n_suppliers = 100;
      n_parts = 250;
      n_orders = 600;
      n_customers = 150;
    }
  in
  let star = W.Tpch.star_instance ~scale ~seed:11 () in
  let params = W.Ml.parameter_inputs ~seed:12 ~d:star.W.Tpch.d ~hidden:16 in
  let inputs = star.W.Tpch.inputs @ params in
  Format.printf "star join: %d lineitems, %d features@." star.W.Tpch.n
    star.W.Tpch.d;
  Format.printf "%-12s %12s %14s %14s@." "algorithm" "galley" "hand(dense)"
    "hand(sparse)";
  List.iter
    (fun alg ->
      let prog = W.Ml.program_of alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
      let _, galley_t = time (fun () -> Galley.Driver.run ~inputs prog) in
      let plan, out = W.Ml.baseline_plan alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
      let run_baseline ~dense =
        let config =
          {
            Galley.Driver.default_config with
            physical = W.Ml.baseline_physical_config ~pts:1 ~dense;
          }
        in
        time (fun () ->
            Galley.Driver.run_logical_plan ~config ~inputs ~outputs:[ out ] plan)
      in
      let _, dense_t = run_baseline ~dense:true in
      let _, sparse_t = run_baseline ~dense:false in
      Format.printf "%-12s %11.3fs %13.3fs %13.3fs@."
        (W.Ml.algorithm_name alg) galley_t dense_t sparse_t)
    W.Ml.all_algorithms;
  Format.printf
    "@.Galley avoids materializing X by pushing the model parameters into@.\
     the join definition (paper Example 2); the hand-written kernels pay@.\
     for the full feature matrix.@."
