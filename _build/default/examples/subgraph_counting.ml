(* Subgraph counting over random graphs (paper Sec. 9.2).

     dune exec examples/subgraph_counting.exe

   Counts pattern occurrences (paths, stars, triangles, cycles, cliques) in
   a power-law graph three ways: Galley with the exact (branch-and-bound)
   logical optimizer, Galley with the greedy optimizer, and the relational
   engine (DuckDB substitute) planning the whole join itself. *)

module T = Galley_tensor.Tensor
module W = Galley_workloads
module Rel = Galley_relational.Rel_engine

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let g =
    W.Graphs.symmetrize
      (W.Graphs.power_law ~name:"demo" ~seed:21 ~n:1500 ~m:4000 ~alpha:0.55 ())
  in
  let adj = W.Graphs.adjacency g in
  Format.printf "graph: %d vertices, %d directed edges@."
    g.W.Graphs.n (T.nnz adj);
  Format.printf "%-12s %14s %12s %12s %12s@." "pattern" "count" "exact"
    "greedy" "relational";
  List.iter
    (fun p ->
      let prog = W.Subgraph.count_program p in
      let inputs = W.Subgraph.bindings g p in
      let run config =
        time (fun () ->
            let r =
              Galley.Driver.run
                ~config:{ config with Galley.Driver.timeout = Some 30.0 }
                ~inputs prog
            in
            if r.Galley.Driver.timed_out then nan
            else T.get (Galley.Driver.output_of r "count") [||])
      in
      let exact_count, exact_t = run Galley.Driver.default_config in
      let _, greedy_t = run Galley.Driver.greedy_config in
      (* Relational engine: one conjunctive query, self-planned. *)
      let rel_count, rel_t =
        time (fun () ->
            let db = Rel.create_db () in
            Rel.register_tensor db "M" adj;
            let atoms =
              List.map
                (fun (u, v) ->
                  {
                    Rel.rel = "M";
                    vars = [ W.Subgraph.var u; W.Subgraph.var v ];
                  })
                p.W.Subgraph.pedges
            in
            try
              let deadline = Unix.gettimeofday () +. 30.0 in
              let r = Rel.sum_product ~deadline db ~atoms ~out_vars:[] () in
              Galley_relational.Relation.total r.Rel.relation
            with Rel.Timeout -> nan)
      in
      if not (Float.is_nan exact_count || Float.is_nan rel_count) then
        assert (abs_float (exact_count -. rel_count) <= 1e-6 *. abs_float exact_count);
      Format.printf "%-12s %14g %11.3fs %11.3fs %11.3fs@." p.W.Subgraph.pname
        exact_count exact_t greedy_t rel_t)
    [
      W.Subgraph.path 3;
      W.Subgraph.star 3;
      W.Subgraph.triangle;
      W.Subgraph.tailed_triangle;
      W.Subgraph.cycle 4;
      W.Subgraph.clique 4;
    ]
