(* Fixpoint subsystem: the `iterate` construct (DESIGN.md §13).

   An iterate statement runs its body — an ordinary Galley program
   fragment — repeatedly against a resident [Driver.Session], rebinding
   the loop-carried tensors between iterations.  Because each rebind
   recomputes measured statistics and each iteration re-enters the full
   logical + physical optimizer, plans and storage formats track the
   data as it densifies (the paper's Fig. 10 mechanism, generalized):
   when the statistics drift enough, the optimizer switches plans, and
   when they do not, the structurally identical program hits the
   resident kernel cache and recompiles nothing.

   Semantics of one iteration:

     - body statements run in order; `:=` updates are Gauss-Seidel
       (visible to later statements in the same iteration), while a
       statement's own right-hand side sees the pre-update value;
     - a primed name `X'` denotes the value the carried tensor X held
       at the start of the iteration;
     - the `until` condition, when present, is evaluated after the body
       as a scalar Galley query over the new values (nonzero =
       converged) — convergence testing is itself just a query and goes
       through the same optimizer and caches.

   Failure model: hitting the iteration cap with an unsatisfied `until`
   condition, or the wall-clock deadline before convergence, raises
   [Errors.Fixpoint_diverged]; the checked entry points surface it as a
   structured [Error] like every other taxonomy member. *)

module T = Galley_tensor.Tensor
module D = Galley.Driver
module E = Galley.Errors
module Obs = Galley_obs
module Metrics = Galley_obs.Metrics
open Galley_plan

let default_max_iters = 100

let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Per-iteration reporting                                              *)
(* ------------------------------------------------------------------ *)

type iter_stat = {
  it_seconds : float; (* whole-pipeline time for this iteration *)
  it_compile_count : int; (* cold kernel compiles (0 = all warm) *)
  it_cse_hits : int;
  it_delta : float option;
      (* left-hand side of a comparison-shaped until condition: the
         natural "per-iteration delta" (residual, frontier size, ...) *)
  it_converged : bool; (* until condition value after this iteration *)
  it_replanned : bool; (* physical plan differs from previous iteration *)
  it_switch : string option;
      (* when replanned: the structural plan diff plus the refreshed
         carried-tensor statistics that flipped the decision *)
  it_nnz : (string * int) list; (* carried name -> nnz after update *)
  it_formats : (string * string) list; (* carried name -> chosen formats *)
}

type fix_report = {
  fr_name : string;
  fr_iterations : int;
  fr_converged : bool;
  fr_replans : int; (* iterations whose plan differed from the previous *)
  fr_switch_iters : int list; (* 1-based indices of those iterations *)
  fr_iters : iter_stat list; (* in iteration order *)
}

(* ------------------------------------------------------------------ *)
(* Iteration-program construction                                       *)
(* ------------------------------------------------------------------ *)

(* Internal names: '@' and '#' cannot appear in a lexed identifier, so
   these can never collide with source-level tensor names. *)
let next_name x = x ^ "@next"
let cond_name = "#fixcond"
let delta_name = "#fixdelta"

let plan_invalid ?query message =
  E.raise_error
    (E.Plan_invalid { context = E.context ?query E.Execution; message })

let diverged ?query ~iterations message =
  E.raise_error
    (E.Fixpoint_diverged
       { context = E.context ?query E.Execution; iterations; message })

(* Strip one trailing prime: "X'" -> Some "X". *)
let primed_stem (n : string) : string option =
  let l = String.length n in
  if l >= 2 && n.[l - 1] = '\'' then Some (String.sub n 0 (l - 1)) else None

(* Rewrite leaf names for the iteration program.  [env] maps a carried
   name to the name currently holding its newest value ("X" before its
   update, "X@next" after — Gauss-Seidel); a primed leaf "X'" always
   reads the carried tensor's session binding, i.e. its start-of-
   iteration value. *)
let rec rewrite_names (env : (string, string) Hashtbl.t)
    (carried : (string, unit) Hashtbl.t) (e : Ir.expr) : Ir.expr =
  match e with
  | Ir.Input (n, idxs) | Ir.Alias (n, idxs) -> (
      match primed_stem n with
      | Some stem when Hashtbl.mem carried stem -> Ir.Input (stem, idxs)
      | _ -> (
          match Hashtbl.find_opt env n with
          | Some n' -> Ir.Input (n', idxs)
          | None -> e))
  | Ir.Literal _ -> e
  | Ir.Map (op, args) -> Ir.Map (op, List.map (rewrite_names env carried) args)
  | Ir.Agg (op, idxs, body) ->
      Ir.Agg (op, idxs, rewrite_names env carried body)

(* Lower one fixpoint body + condition into the per-iteration program.
   The program is structurally identical every iteration (same query
   names, same shape), so an unchanged plan replays warm kernels; only
   the carried bindings (and hence statistics) move between runs.
   Returns the program and whether a separate delta query was carved
   out of a comparison-shaped condition. *)
let build_iteration (f : Ir.fixpoint) : Ir.program * bool =
  let carried_list = Ir.carried_names f in
  let carried = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace carried n ()) carried_list;
  let env : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let seen_update = Hashtbl.create 8 in
  let queries =
    List.map
      (fun (u : Ir.body_stmt) ->
        let q = u.Ir.u_query in
        let name = q.Ir.name in
        let expr = rewrite_names env carried q.Ir.expr in
        if u.Ir.u_carried then begin
          if Hashtbl.mem seen_update name then
            plan_invalid ~query:name
              "multiple := updates to the same name in one iterate body";
          Hashtbl.replace seen_update name ();
          Hashtbl.replace env name (next_name name);
          { q with Ir.name = next_name name; Ir.expr = expr }
        end
        else begin
          if Hashtbl.mem carried name then
            plan_invalid ~query:name
              "name is both = defined and := updated in the iterate body";
          { q with Ir.expr = expr }
        end)
      f.Ir.fix_body
  in
  let cond_queries, has_delta =
    match f.Ir.fix_cond with
    | None -> ([], false)
    | Some c ->
        let c = rewrite_names env carried c in
        if not (Ir.Idx_set.is_empty (Ir.free_indices c)) then
          plan_invalid ~query:f.Ir.fix_name
            "until condition must be a scalar (aggregate over all indices)";
        (match c with
        | Ir.Map
            ( ((Op.Lt | Op.Leq | Op.Gt | Op.Geq | Op.Eq | Op.Neq) as cmp),
              [ lhs; rhs ] ) ->
            (* Comparison-shaped condition: materialize the left-hand
               side separately so per-iteration deltas can be reported
               (and CSE shares it with the condition itself). *)
            ( [
                Ir.query delta_name lhs;
                Ir.query cond_name
                  (Ir.Map (cmp, [ Ir.Alias (delta_name, []); rhs ]));
              ],
              true )
        | _ -> ([ Ir.query cond_name c ], false))
  in
  let outputs =
    List.map next_name carried_list
    @ (if has_delta then [ delta_name ] else [])
    @ (match cond_queries with [] -> [] | _ -> [ cond_name ])
  in
  ({ Ir.queries = queries @ cond_queries; outputs }, has_delta)

(* ------------------------------------------------------------------ *)
(* The fixpoint loop                                                    *)
(* ------------------------------------------------------------------ *)

let formats_string (t : T.t) : string =
  String.concat ","
    (Array.to_list (Array.map T.format_to_string (T.formats t)))

(* Remaining wall-clock budget, or a divergence error once spent. *)
let remaining ~(deadline : float option) ~(name : string) ~(iterations : int)
    : float option =
  match deadline with
  | None -> None
  | Some d ->
      let rem = d -. now () in
      if rem <= 0.0 then
        diverged ~query:name ~iterations
          "wall-clock deadline reached before convergence"
      else Some rem

(* Run one fixpoint statement to completion against the session.
   Returns the results of every iteration (for timing aggregation; last
   one carries the final plans/tiers) and the report. *)
let run_fixpoint (s : D.Session.session) ~(config : D.config)
    ~(deadline : float option) (f : Ir.fixpoint) :
    D.result list * fix_report =
  let name = f.Ir.fix_name in
  let carried_list = Ir.carried_names f in
  List.iter
    (fun n ->
      if D.Session.lookup s n = None then
        plan_invalid ~query:n
          (Printf.sprintf
             "loop-carried %s needs an initial binding before iterate" n))
    carried_list;
  let prog, has_delta = build_iteration f in
  let max_iters =
    match f.Ir.fix_max_iters with Some n -> n | None -> default_max_iters
  in
  let results = ref [] in
  let stats = ref [] in
  let switches = ref [] in
  let fingerprint = ref None in
  let prev_plan : Physical.plan option ref = ref None in
  (* Carried-tensor nnz as seen by the optimizer: [feed_cur] fed this
     iteration's plan, [feed_prev] the previous one's — their delta is
     the refreshed statistic a plan switch is attributed to. *)
  let initial_nnz =
    List.map
      (fun n ->
        (n, match D.Session.lookup s n with Some t -> T.nnz t | None -> 0))
      carried_list
  in
  let feed_cur = ref initial_nnz in
  let feed_prev = ref initial_nnz in
  let converged = ref false in
  let iters = ref 0 in
  Obs.span ~cat:"phase" ~name:("fixpoint:" ^ name)
    ~attrs:(fun () ->
      [
        ("carried", String.concat "," carried_list);
        ("max_iters", string_of_int max_iters);
      ])
    (fun () ->
      while (not !converged) && !iters < max_iters do
        let i = !iters + 1 in
        let timeout = remaining ~deadline ~name ~iterations:!iters in
        (* Filled in by the iteration body below; the attrs thunk is only
           forced when the span is emitted, i.e. after the body returns,
           so each fixpoint_iter span reports what the iteration did. *)
        let at_delta = ref None in
        let at_replanned = ref false in
        let at_compiles = ref 0 in
        Obs.span ~cat:"phase"
          ~name:("fixpoint_iter:" ^ name)
          ~attrs:(fun () ->
            [
              ("iter", string_of_int i);
              ( "delta",
                match !at_delta with
                | Some d -> Printf.sprintf "%.6g" d
                | None -> "-" );
              ("replanned", string_of_bool !at_replanned);
              ("compiles", string_of_int !at_compiles);
            ])
          (fun () ->
            let res =
              D.Session.run_program s ~config:{ config with timeout } prog
            in
            if res.D.timed_out then
              diverged ~query:name ~iterations:!iters
                "wall-clock deadline reached before convergence";
            let fp = Physical.plan_to_string res.D.physical_plan in
            let replanned =
              match !fingerprint with Some p -> p <> fp | None -> false
            in
            fingerprint := Some fp;
            (* Structural diff + statistic attribution for a switch. *)
            let switch_detail =
              if not replanned then None
              else
                match !prev_plan with
                | None -> None
                | Some pp ->
                    let changes = Plan_diff.diff pp res.D.physical_plan in
                    let stat_deltas =
                      List.filter_map
                        (fun (n, cur) ->
                          match List.assoc_opt n !feed_prev with
                          | Some old when old <> cur ->
                              Some (Printf.sprintf "%s nnz %d->%d" n old cur)
                          | _ -> None)
                        !feed_cur
                    in
                    Some
                      (Plan_diff.summary changes
                      ^
                      match stat_deltas with
                      | [] -> ""
                      | ds -> " [stats: " ^ String.concat ", " ds ^ "]")
            in
            prev_plan := Some res.D.physical_plan;
            let updates =
              List.map
                (fun n -> (n, D.output_of res (next_name n)))
                carried_list
            in
            let conv, delta =
              match f.Ir.fix_cond with
              | None -> (false, None)
              | Some _ ->
                  ( T.scalar_value (D.output_of res cond_name) <> 0.0,
                    if has_delta then
                      Some (T.scalar_value (D.output_of res delta_name))
                    else None )
            in
            (* The iteration's updates take effect regardless of the
               condition: rebinding recomputes measured statistics, so the
               next re-optimization sees the data as it now is. *)
            List.iter (fun (n, t) -> D.Session.bind s n t) updates;
            iters := i;
            converged := conv;
            at_delta := delta;
            at_replanned := replanned;
            at_compiles := res.D.timings.D.compile_count;
            Metrics.incr_named "fixpoint.iterations";
            if replanned then begin
              Metrics.incr_named "fixpoint.replans";
              switches := i :: !switches;
              match switch_detail with
              | Some d ->
                  Obs.Log.info "fixpoint %s: plan switched at iteration %d: %s"
                    name i d
              | None ->
                  Obs.Log.info "fixpoint %s: plan switched at iteration %d"
                    name i
            end;
            results := res :: !results;
            let new_nnz = List.map (fun (n, t) -> (n, T.nnz t)) updates in
            feed_prev := !feed_cur;
            feed_cur := new_nnz;
            stats :=
              {
                it_seconds = res.D.timings.D.total_seconds;
                it_compile_count = res.D.timings.D.compile_count;
                it_cse_hits = res.D.timings.D.cse_hits;
                it_delta = delta;
                it_converged = conv;
                it_replanned = replanned;
                it_switch = switch_detail;
                it_nnz = new_nnz;
                it_formats =
                  List.map (fun (n, t) -> (n, formats_string t)) updates;
              }
              :: !stats)
      done;
      if (not !converged) && f.Ir.fix_cond <> None then
        diverged ~query:name ~iterations:!iters
          (Printf.sprintf
             "until condition still false after the %d-iteration cap"
             max_iters));
  let report =
    {
      fr_name = name;
      fr_iterations = !iters;
      (* A fixed-count loop (no until) completes by definition. *)
      fr_converged = (f.Ir.fix_cond = None || !converged);
      fr_replans = List.length !switches;
      fr_switch_iters = List.rev !switches;
      fr_iters = List.rev !stats;
    }
  in
  Obs.Log.info
    "fixpoint %s: %s after %d iterations (%d plan switch%s)" name
    (if report.fr_converged then "converged" else "stopped")
    report.fr_iterations report.fr_replans
    (if report.fr_replans = 1 then "" else "es");
  (List.rev !results, report)

(* ------------------------------------------------------------------ *)
(* Statement-level program execution                                    *)
(* ------------------------------------------------------------------ *)

type segment = Queries of Ir.query list | Fix of Ir.fixpoint

let segments (p : Ir.xprogram) : segment list =
  let rec go acc cur = function
    | [] -> List.rev (match cur with [] -> acc | _ -> Queries (List.rev cur) :: acc)
    | Ir.Query_stmt q :: rest -> go acc (q :: cur) rest
    | Ir.Fix_stmt f :: rest ->
        let acc =
          match cur with [] -> acc | _ -> Queries (List.rev cur) :: acc
        in
        go (Fix f :: acc) [] rest
  in
  go [] [] p.Ir.stmts

(* Merge the per-segment driver results into one: timings and counters
   sum; plans and tiers come from the representative results (straight-
   line segments, plus each fixpoint's final iteration). *)
let merge_results ~(outputs : (string * Ir.idx list * T.t) list)
    ~(incomplete : string list) (reps : D.result list)
    (all : D.result list) : D.result =
  let sumf f = List.fold_left (fun a r -> a +. f r) 0.0 all in
  let sumi f = List.fold_left (fun a r -> a + f r) 0 all in
  let timings =
    {
      D.logical_seconds = sumf (fun r -> r.D.timings.D.logical_seconds);
      physical_seconds = sumf (fun r -> r.D.timings.D.physical_seconds);
      compile_seconds = sumf (fun r -> r.D.timings.D.compile_seconds);
      execute_seconds = sumf (fun r -> r.D.timings.D.execute_seconds);
      total_seconds = sumf (fun r -> r.D.timings.D.total_seconds);
      compile_count = sumi (fun r -> r.D.timings.D.compile_count);
      kernel_count = sumi (fun r -> r.D.timings.D.kernel_count);
      cse_hits = sumi (fun r -> r.D.timings.D.cse_hits);
    }
  in
  {
    D.outputs;
    incomplete_outputs = incomplete;
    logical_plan = List.concat_map (fun r -> r.D.logical_plan) reps;
    physical_plan = List.concat_map (fun r -> r.D.physical_plan) reps;
    logical_tiers = List.concat_map (fun r -> r.D.logical_tiers) reps;
    physical_tiers = List.concat_map (fun r -> r.D.physical_tiers) reps;
    timings;
    timed_out = List.exists (fun r -> r.D.timed_out) all;
    nnz_guard_retries = sumi (fun r -> r.D.nnz_guard_retries);
    audit =
      (match List.filter_map (fun r -> r.D.audit) reps with
      | [] -> None
      | [ a ] -> Some a
      | many -> Some (Obs.Audit.concat many));
  }

(* Run a statement-level program (straight-line queries + fixpoints)
   against a resident session.  [config] overrides the per-request
   knobs, exactly like [Session.run_program]; [config.timeout] bounds
   the *whole* program, fixpoint loops included. *)
let run_session (s : D.Session.session) ?config (p : Ir.xprogram) :
    D.result * fix_report list =
  let config =
    match config with Some c -> c | None -> D.Session.config s
  in
  let deadline = Option.map (fun t -> now () +. t) config.D.timeout in
  let reports = ref [] in
  let reps = ref [] in
  let all = ref [] in
  let idx_orders : (string, Ir.idx list) Hashtbl.t = Hashtbl.create 8 in
  let note_result ?(strip_next = false) (r : D.result) =
    List.iter
      (fun (n, idxs, _) ->
        let n =
          if strip_next && Filename.check_suffix n "@next" then
            Filename.chop_suffix n "@next"
          else n
        in
        Hashtbl.replace idx_orders n idxs)
      r.D.outputs
  in
  let stopped = ref false in
  List.iter
    (fun seg ->
      if not !stopped then
        match seg with
        | Queries qs ->
            let names = List.map (fun (q : Ir.query) -> q.Ir.name) qs in
            let timeout =
              match deadline with
              | None -> None
              | Some d -> Some (Float.max 0.0 (d -. now ()))
            in
            let r =
              D.Session.run_program s
                ~config:{ config with timeout }
                { Ir.queries = qs; outputs = names }
            in
            note_result r;
            reps := r :: !reps;
            all := r :: !all;
            (* Past the deadline: report partial results with the
               driver's timed_out convention rather than guessing at
               the remaining statements. *)
            if r.D.timed_out then stopped := true
        | Fix f ->
            let rs, report = run_fixpoint s ~config ~deadline f in
            (match List.rev rs with
            | last :: _ ->
                note_result ~strip_next:true last;
                reps := last :: !reps
            | [] -> ());
            all := List.rev_append rs !all;
            reports := report :: !reports)
    (segments p);
  let outputs, incomplete =
    List.fold_left
      (fun (found, missing) name ->
        match (D.Session.lookup s name, Hashtbl.find_opt idx_orders name) with
        | Some t, Some idxs -> ((name, idxs, t) :: found, missing)
        | _ -> (found, name :: missing))
      ([], []) (List.rev p.Ir.xoutputs)
  in
  (merge_results ~outputs ~incomplete (List.rev !reps) (List.rev !all),
   List.rev !reports)

let error_ctx () = E.context E.Execution

let run_session_checked (s : D.Session.session) ?config (p : Ir.xprogram) :
    (D.result * fix_report list, E.t) result =
  match run_session s ?config p with
  | r -> Ok r
  | exception E.Galley_error e -> Error e
  | exception Tier.Exhausted ->
      let c = match config with Some c -> c | None -> D.Session.config s in
      Error
        (E.Optimizer_deadline
           {
             context = error_ctx ();
             budget =
               (match c.D.optimizer_timeout with Some s -> s | None -> 0.0);
           })
  | exception ((Invalid_argument _ | Failure _) as exn) ->
      Error (E.of_exn (error_ctx ()) exn)

(* Batch convenience: a throwaway session over explicit inputs. *)
let run ?(config = D.default_config) ~(inputs : (string * T.t) list)
    (p : Ir.xprogram) : D.result * fix_report list =
  let s = D.Session.create ~config () in
  List.iter (fun (n, t) -> D.Session.bind s n t) inputs;
  run_session s p

let run_checked ?(config = D.default_config) ~(inputs : (string * T.t) list)
    (p : Ir.xprogram) : (D.result * fix_report list, E.t) result =
  let s = D.Session.create ~config () in
  List.iter (fun (n, t) -> D.Session.bind s n t) inputs;
  run_session_checked s p

(* Parse to the statement-level dialect with taxonomy-classified
   failures: the fixpoint-aware counterpart of [Driver.parse_checked]. *)
let parse_checked (src : string) : (Ir.xprogram, E.t) result =
  match
    Obs.span ~cat:"phase" ~name:"parse"
      ~attrs:(fun () -> [ ("bytes", string_of_int (String.length src)) ])
      (fun () -> Galley_lang.Parser.parse_xprogram src)
  with
  | p -> Ok p
  | exception Galley_lang.Parser.Parse_error { message; pos } ->
      Error (E.Parse_error { message; position = pos })
  | exception Galley_lang.Lexer.Lex_error (message, pos) ->
      Error (E.Parse_error { message; position = pos })

let run_source_checked ?config ~(inputs : (string * T.t) list) (src : string)
    : (D.result * fix_report list, E.t) result =
  Result.bind (parse_checked src) (fun p -> run_checked ?config ~inputs p)
