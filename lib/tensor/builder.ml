(* Mutable per-format output builders used by the execution engine.

   A builder mirrors the fiber-tree structure of the output tensor: one
   builder level per output dimension, in the output's chosen formats.
   Sorted-list levels only support *sequential* construction (non-decreasing
   index writes) — the physical optimizer guarantees this by only choosing
   them when the output indices form a prefix of the loop order.  Dense,
   bytemap, and hash levels support random writes.

   Each leaf cell tracks (value, count): the count is the number of
   accumulations into the cell, which the engine needs to correct aggregates
   whose map-expression fill is not the aggregate's neutral element
   (see DESIGN.md "Fill-value propagation"). *)

type cell = { mutable v : float; mutable cnt : int }

type bnode =
  | B_inner_dense of bnode array
  | B_inner_sparse of { crd : Vec.Int.t; children : bnode Vec.Poly.t }
  | B_inner_hash of (int, bnode) Hashtbl.t
  | B_inner_bytemap of { mask : Bytes.t; tbl : (int, bnode) Hashtbl.t }
  | B_leaf_dense of { vals : float array; cnts : int array }
  | B_leaf_sparse of { crd : Vec.Int.t; cells : cell Vec.Poly.t }
  | B_leaf_hash of (int, cell) Hashtbl.t
  | B_leaf_bytemap of { mask : Bytes.t; tbl : (int, cell) Hashtbl.t }
  | B_scalar of cell

type t = {
  dims : int array;
  formats : Tensor.format array;
  identity : float; (* initial accumulator value (aggregate identity) *)
  root : bnode;
}

let dummy_bnode = B_scalar { v = 0.0; cnt = 0 }

let rec make_node (dims : int array) (formats : Tensor.format array)
    (identity : float) (depth : int) : bnode =
  let nd = Array.length dims in
  if nd = 0 then B_scalar { v = identity; cnt = 0 }
  else begin
    let leaf = depth = nd - 1 in
    let n = dims.(depth) in
    match formats.(depth) with
    | Tensor.Dense ->
        if leaf then
          B_leaf_dense { vals = Array.make n identity; cnts = Array.make n 0 }
        else
          (* Dense levels materialize every child eagerly: this is the real
             cost of choosing a dense intermediate, and the optimizer's
             format decision trades it against iteration speed. *)
          B_inner_dense
            (Array.init n (fun _ -> make_node dims formats identity (depth + 1)))
    | Tensor.Sparse_list ->
        if leaf then
          B_leaf_sparse
            { crd = Vec.Int.create (); cells = Vec.Poly.create ~dummy:{ v = 0.0; cnt = 0 } () }
        else
          B_inner_sparse
            { crd = Vec.Int.create (); children = Vec.Poly.create ~dummy:dummy_bnode () }
    | Tensor.Hash ->
        if leaf then B_leaf_hash (Hashtbl.create 16)
        else B_inner_hash (Hashtbl.create 16)
    | Tensor.Bytemap ->
        if leaf then
          B_leaf_bytemap { mask = Bytes.make n '\000'; tbl = Hashtbl.create 16 }
        else
          B_inner_bytemap { mask = Bytes.make n '\000'; tbl = Hashtbl.create 16 }
  end

let create ~dims ~formats ~identity () =
  if Array.length formats <> Array.length dims then
    invalid_arg "Builder.create: formats/dims mismatch";
  { dims; formats; identity; root = make_node dims formats identity 0 }

let seq_error () =
  invalid_arg "Builder: non-sequential write into a sorted-list level"

(* Accumulate [value] into the cell at [coords] with [combine]. *)
let accum (b : t) (coords : int array) (value : float)
    ~(combine : float -> float -> float) : unit =
  let nd = Array.length b.dims in
  let touch_cell (c : cell) =
    c.v <- combine c.v value;
    c.cnt <- c.cnt + 1
  in
  let rec go node depth =
    if depth = nd then
      match node with
      | B_scalar c -> touch_cell c
      | _ -> assert false
    else begin
      let i = coords.(depth) in
      let leaf = depth = nd - 1 in
      if leaf then
        match node with
        | B_leaf_dense { vals; cnts } ->
            vals.(i) <- combine vals.(i) value;
            cnts.(i) <- cnts.(i) + 1
        | B_leaf_sparse { crd; cells } ->
            let len = Vec.Int.length crd in
            if len = 0 || Vec.Int.last crd < i then begin
              Vec.Int.push crd i;
              Vec.Poly.push cells { v = combine b.identity value; cnt = 1 }
            end
            else if Vec.Int.last crd = i then
              touch_cell (Vec.Poly.get cells (len - 1))
            else seq_error ()
        | B_leaf_hash tbl -> (
            match Hashtbl.find_opt tbl i with
            | Some c -> touch_cell c
            | None -> Hashtbl.add tbl i { v = combine b.identity value; cnt = 1 })
        | B_leaf_bytemap { mask; tbl } -> (
            match Hashtbl.find_opt tbl i with
            | Some c -> touch_cell c
            | None ->
                Bytes.set mask i '\001';
                Hashtbl.add tbl i { v = combine b.identity value; cnt = 1 })
        | _ -> assert false
      else
        match node with
        | B_inner_dense children -> go children.(i) (depth + 1)
        | B_inner_sparse { crd; children } ->
            let len = Vec.Int.length crd in
            if len = 0 || Vec.Int.last crd < i then begin
              let child = make_node b.dims b.formats b.identity (depth + 1) in
              Vec.Int.push crd i;
              Vec.Poly.push children child;
              go child (depth + 1)
            end
            else if Vec.Int.last crd = i then
              go (Vec.Poly.get children (len - 1)) (depth + 1)
            else seq_error ()
        | B_inner_hash tbl ->
            let child =
              match Hashtbl.find_opt tbl i with
              | Some c -> c
              | None ->
                  let c = make_node b.dims b.formats b.identity (depth + 1) in
                  Hashtbl.add tbl i c;
                  c
            in
            go child (depth + 1)
        | B_inner_bytemap { mask; tbl } ->
            let child =
              match Hashtbl.find_opt tbl i with
              | Some c -> c
              | None ->
                  Bytes.set mask i '\001';
                  let c = make_node b.dims b.formats b.identity (depth + 1) in
                  Hashtbl.add tbl i c;
                  c
            in
            go child (depth + 1)
        | _ -> assert false
    end
  in
  go b.root 0

let sorted_keys tbl =
  let keys = Array.make (Hashtbl.length tbl) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun k _ ->
      keys.(!i) <- k;
      incr i)
    tbl;
  Array.sort compare keys;
  keys

(* Freeze the builder into an immutable tensor.  [finalize v cnt] maps the
   accumulated value and count of every explicit cell to its final value;
   [fill] is the fill value of the result (= finalize identity 0 when the
   query aggregates, so untouched cells are consistent by construction). *)
let freeze (b : t) ~(finalize : float -> int -> float) ~(fill : float) :
    Tensor.t =
  let rec go node depth : Tensor.node =
    match node with
    | B_scalar c -> Tensor.Scalar (finalize c.v c.cnt)
    | B_leaf_dense { vals; cnts } ->
        Tensor.Leaf_dense (Array.mapi (fun i v -> finalize v cnts.(i)) vals)
    | B_leaf_sparse { crd; cells } ->
        let n = Vec.Int.length crd in
        Tensor.Leaf_sparse
          {
            crd = Vec.Int.to_array crd;
            vals =
              Array.init n (fun p ->
                  let c = Vec.Poly.get cells p in
                  finalize c.v c.cnt);
          }
    | B_leaf_hash tbl ->
        let crd = sorted_keys tbl in
        let out = Hashtbl.create (max 4 (2 * Array.length crd)) in
        Array.iter
          (fun i ->
            let c = Hashtbl.find tbl i in
            Hashtbl.replace out i (finalize c.v c.cnt))
          crd;
        Tensor.Leaf_hash { tbl = out; sorted = Some crd }
    | B_leaf_bytemap { mask; tbl } ->
        let crd = sorted_keys tbl in
        Tensor.Leaf_bytemap
          {
            mask;
            words = Bitset.of_sorted crd ~len:(Bytes.length mask);
            crd;
            vals =
              Array.map
                (fun i ->
                  let c = Hashtbl.find tbl i in
                  finalize c.v c.cnt)
                crd;
          }
    | B_inner_dense children ->
        Tensor.Inner_dense (Array.map (fun c -> go c (depth + 1)) children)
    | B_inner_sparse { crd; children } ->
        Tensor.Inner_sparse
          {
            crd = Vec.Int.to_array crd;
            children =
              Array.init (Vec.Poly.length children) (fun p ->
                  go (Vec.Poly.get children p) (depth + 1));
          }
    | B_inner_hash tbl ->
        let crd = sorted_keys tbl in
        let out = Hashtbl.create (max 4 (2 * Array.length crd)) in
        Array.iter
          (fun i -> Hashtbl.replace out i (go (Hashtbl.find tbl i) (depth + 1)))
          crd;
        Tensor.Inner_hash { tbl = out; sorted = Some crd }
    | B_inner_bytemap { mask; tbl } ->
        let crd = sorted_keys tbl in
        Tensor.Inner_bytemap
          {
            mask;
            words = Bitset.of_sorted crd ~len:(Bytes.length mask);
            crd;
            children = Array.map (fun i -> go (Hashtbl.find tbl i) (depth + 1)) crd;
          }
  in
  { Tensor.dims = b.dims; formats = b.formats; fill; root = go b.root 0; nnz_cache = None }
