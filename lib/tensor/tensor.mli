(** Fiber-tree sparse tensors (paper Sec. 3.2, Fig. 2).

    A tensor is a nested data structure: each level stores the explicit
    indices of one dimension, conditioned on the outer dimensions, with
    pointers to the next level.  Every level is stored in one of four
    formats with different iteration / lookup / memory trade-offs.  Entries
    not explicitly stored equal the tensor's {e fill} value.  Tensors are
    immutable once constructed; use {!Builder} for incremental output
    construction. *)

(** Storage format of one fiber-tree level. *)
type format =
  | Dense  (** every index explicit; O(1) lookup, O(n) memory *)
  | Sparse_list  (** sorted coordinate list; O(log nnz) lookup *)
  | Bytemap  (** presence bitmap + sorted list; O(1) membership *)
  | Hash  (** hash table; O(1) lookup, unsorted (sorted on demand) *)

val format_to_string : format -> string
val pp_format : Format.formatter -> format -> unit

(** Internal node representation; exposed for the execution engine and
    builders. *)
type node =
  | Inner_dense of node array
  | Inner_sparse of { crd : int array; children : node array }
  | Inner_bytemap of {
      mask : Bytes.t;
      words : int array;
          (** {!Bitset} word-packing of [mask], for word-level merges *)
      crd : int array;
      children : node array;
    }
  | Inner_hash of {
      tbl : (int, node) Hashtbl.t;
      mutable sorted : int array option;
    }
  | Leaf_dense of float array
  | Leaf_sparse of { crd : int array; vals : float array }
  | Leaf_bytemap of {
      mask : Bytes.t;
      words : int array;
      crd : int array;
      vals : float array;
    }
  | Leaf_hash of {
      tbl : (int, float) Hashtbl.t;
      mutable sorted : int array option;
    }
  | Scalar of float

type t = {
  dims : int array;  (** dimension sizes, outermost first *)
  formats : format array;  (** one format per dimension *)
  fill : float;  (** value of entries not explicitly stored *)
  root : node;
  mutable nnz_cache : int option;  (** lazily cached non-fill count *)
}

val ndims : t -> int
val dims : t -> int array
val fill : t -> float
val formats : t -> format array
val root : t -> node

(** Level-wise accessors used by the execution engine. *)
module Node : sig
  type t = node

  (** Sorted explicit indices of a level; [None] for dense levels (iterate
      the full dimension range instead). *)
  val explicit_indices : t -> int array option

  val explicit_count : t -> int

  (** Child lookup at an inner level; [None] = subtree at fill. *)
  val find : t -> int -> t option

  (** Value lookup at a leaf level; [None] = fill. *)
  val find_value : t -> int -> float option

  val scalar_value : t -> float

  (** Membership probe: is index [i] explicitly stored at this level?
      Cheaper than {!find}/{!find_value} when only presence matters. *)
  val mem : t -> int -> bool

  (** Word-packed presence mask of a bytemap level; [None] for other
      formats.  Enables word-at-a-time set algebra ({!Bitset}). *)
  val bitmap_words : t -> int array option

  (** Iterate children / values in ascending index order. *)
  val iter_sorted : t -> (int -> t -> unit) -> unit

  val iter_values : t -> (int -> float -> unit) -> unit
end

(** {1 Construction} *)

(** 0-dimensional tensor. *)
val scalar : float -> t

val scalar_value : t -> float

(** Build from coordinate/value pairs.  Entries are sorted; duplicates are
    merged with [combine] (default [(+.)]); entries equal to [fill] are
    dropped unless [prune:false]. *)
val of_coo :
  ?fill:float ->
  ?combine:(float -> float -> float) ->
  ?prune:bool ->
  dims:int array ->
  formats:format array ->
  (int array * float) array ->
  t

(** Tabulate a tensor from a function of coordinates (dense enumeration;
    test-sized tensors only). *)
val of_fun :
  ?fill:float ->
  dims:int array ->
  formats:format array ->
  (int array -> float) ->
  t

(** Inverse of {!to_flat_dense} (row-major). *)
val of_flat_dense :
  ?fill:float -> dims:int array -> formats:format array -> float array -> t

(** Random sparse tensor: each cell non-fill independently with probability
    [density], values uniform in [[value_lo, value_hi)]. *)
val random :
  ?fill:float ->
  ?value_lo:float ->
  ?value_hi:float ->
  prng:Prng.t ->
  dims:int array ->
  formats:format array ->
  density:float ->
  unit ->
  t

(** {1 Access and iteration} *)

(** Point lookup; returns the fill for non-explicit coordinates. *)
val get : t -> int array -> float

(** Iterate all explicitly stored entries in lexicographic order. *)
val iter_explicit : t -> (int array -> float -> unit) -> unit

(** Like {!iter_explicit}, skipping entries equal to the fill. *)
val iter_nonfill : t -> (int array -> float -> unit) -> unit

(** Non-fill entries as coordinate/value pairs. *)
val to_coo : t -> (int array * float) array

(** Number of explicitly stored positions (dense levels store everything). *)
val explicit_count : t -> int

(** Number of entries whose value differs from the fill (cached). *)
val nnz : t -> int

(** Force every lazily computed cache (hash levels' sorted key arrays, the
    nnz count) so the tensor is truly immutable afterwards — required
    before sharing it read-only across domains. *)
val presort : t -> unit

(** {1 Restructuring} *)

(** Rebuild with different level formats (and optionally a new fill). *)
val reformat : ?fill:float -> t -> format array -> t

(** Permute dimensions: output dimension [k] is source dimension
    [perm.(k)].  Formats default to the permuted source formats. *)
val transpose : ?formats:format array -> t -> int array -> t

(** {1 Dense interop (reference evaluation and tests)} *)

val flat_index : int array -> int array -> int
val unflatten : int array -> int -> int array

(** Row-major dense image, with fills at non-explicit cells. *)
val to_flat_dense : t -> float array

(** {1 Comparison and printing} *)

(** Pointwise comparison with relative tolerance [eps]. *)
val equal_approx : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(**/**)

val dim_space : int array -> int
val compare_coords : int array -> int array -> int
