(* Fiber-tree sparse tensors (paper Sec. 3.2, Fig. 2).

   A tensor is a nested data structure: each level stores the explicit
   (potentially non-fill) indices of one dimension, conditioned on the outer
   dimensions, together with pointers to the next level.  Every level can be
   stored in one of four formats — dense vector, sorted list, bytemap, or
   hash table — each with different iteration / lookup / memory trade-offs.
   The innermost level stores scalar values directly (unboxed float arrays
   where the format allows), and a 0-dimensional tensor is a bare scalar. *)

type format = Dense | Sparse_list | Bytemap | Hash

let format_to_string = function
  | Dense -> "dense"
  | Sparse_list -> "sparse"
  | Bytemap -> "bytemap"
  | Hash -> "hash"

let pp_format fmt f = Format.pp_print_string fmt (format_to_string f)

type node =
  | Inner_dense of node array
  | Inner_sparse of { crd : int array; children : node array }
  | Inner_bytemap of {
      mask : Bytes.t;
      words : int array;  (* Bitset.of_sorted crd: mask packed word-wise *)
      crd : int array;
      children : node array;
    }
  | Inner_hash of {
      tbl : (int, node) Hashtbl.t;
      mutable sorted : int array option;
    }
  | Leaf_dense of float array
  | Leaf_sparse of { crd : int array; vals : float array }
  | Leaf_bytemap of {
      mask : Bytes.t;
      words : int array;
      crd : int array;
      vals : float array;
    }
  | Leaf_hash of {
      tbl : (int, float) Hashtbl.t;
      mutable sorted : int array option;
    }
  | Scalar of float

type t = {
  dims : int array;
  formats : format array;
  fill : float;
  root : node;
  mutable nnz_cache : int option;
      (* lazily computed non-fill count: tensors are immutable after
         construction, so one traversal serves every caller *)
}

let ndims t = Array.length t.dims
let dims t = t.dims
let fill t = t.fill
let formats t = t.formats
let root t = t.root

let dim_space dims = Array.fold_left (fun acc n -> acc * n) 1 dims

(* ------------------------------------------------------------------ *)
(* Binary search over a sorted coordinate array.                        *)
(* ------------------------------------------------------------------ *)

let bsearch (crd : int array) (x : int) : int option =
  let lo = ref 0 and hi = ref (Array.length crd - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = crd.(mid) in
    if c = x then found := Some mid
    else if c < x then lo := mid + 1
    else hi := mid - 1
  done;
  !found

(* Option-free membership variant of [bsearch], for probe-heavy loops. *)
let bsearch_mem (crd : int array) (x : int) : bool =
  let lo = ref 0 and hi = ref (Array.length crd - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = crd.(mid) in
    if c = x then found := true
    else if c < x then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let hash_sorted_keys tbl sorted set_sorted =
  match sorted with
  | Some s -> s
  | None ->
      let keys = Array.make (Hashtbl.length tbl) 0 in
      let i = ref 0 in
      Hashtbl.iter
        (fun k _ ->
          keys.(!i) <- k;
          incr i)
        tbl;
      Array.sort compare keys;
      set_sorted keys;
      keys

(* ------------------------------------------------------------------ *)
(* Node accessors used by the execution engine.                         *)
(* ------------------------------------------------------------------ *)

module Node = struct
  type t = node

  (* Sorted explicit indices of a level.  Dense levels return [None] so the
     caller can iterate the full dimension range without materializing it. *)
  let explicit_indices (n : node) : int array option =
    match n with
    | Inner_dense _ | Leaf_dense _ -> None
    | Inner_sparse { crd; _ } | Leaf_sparse { crd; _ } -> Some crd
    | Inner_bytemap { crd; _ } | Leaf_bytemap { crd; _ } -> Some crd
    | Inner_hash h -> Some (hash_sorted_keys h.tbl h.sorted (fun s -> h.sorted <- Some s))
    | Leaf_hash h -> Some (hash_sorted_keys h.tbl h.sorted (fun s -> h.sorted <- Some s))
    | Scalar _ -> invalid_arg "Node.explicit_indices: scalar"

  let explicit_count (n : node) : int =
    match n with
    | Inner_dense cs -> Array.length cs
    | Leaf_dense vs -> Array.length vs
    | Inner_sparse { crd; _ } | Leaf_sparse { crd; _ } -> Array.length crd
    | Inner_bytemap { crd; _ } | Leaf_bytemap { crd; _ } -> Array.length crd
    | Inner_hash { tbl; _ } -> Hashtbl.length tbl
    | Leaf_hash { tbl; _ } -> Hashtbl.length tbl
    | Scalar _ -> 1

  (* Lookup of a child node at an inner level. *)
  let find (n : node) (i : int) : node option =
    match n with
    | Inner_dense cs -> if i >= 0 && i < Array.length cs then Some cs.(i) else None
    | Inner_sparse { crd; children } -> (
        match bsearch crd i with Some p -> Some children.(p) | None -> None)
    | Inner_bytemap { mask; crd; children; _ } ->
        if i >= 0 && i < Bytes.length mask && Bytes.get mask i <> '\000' then
          match bsearch crd i with
          | Some p -> Some children.(p)
          | None -> None
        else None
    | Inner_hash { tbl; _ } -> Hashtbl.find_opt tbl i
    | Leaf_dense _ | Leaf_sparse _ | Leaf_bytemap _ | Leaf_hash _ | Scalar _ ->
        invalid_arg "Node.find: leaf level"

  (* Lookup of a value at a leaf level. *)
  let find_value (n : node) (i : int) : float option =
    match n with
    | Leaf_dense vs -> if i >= 0 && i < Array.length vs then Some vs.(i) else None
    | Leaf_sparse { crd; vals } -> (
        match bsearch crd i with Some p -> Some vals.(p) | None -> None)
    | Leaf_bytemap { mask; crd; vals; _ } ->
        if i >= 0 && i < Bytes.length mask && Bytes.get mask i <> '\000' then
          match bsearch crd i with Some p -> Some vals.(p) | None -> None
        else None
    | Leaf_hash { tbl; _ } -> Hashtbl.find_opt tbl i
    | Scalar _ | Inner_dense _ | Inner_sparse _ | Inner_bytemap _ | Inner_hash _
      ->
        invalid_arg "Node.find_value: inner level"

  let scalar_value (n : node) : float =
    match n with
    | Scalar v -> v
    | _ -> invalid_arg "Node.scalar_value: not a scalar"

  (* Membership probe: does this level store index [i] explicitly?  Cheaper
     than [find]/[find_value] when only presence matters — no child or value
     is fetched, and a bytemap answers from its mask alone. *)
  let mem (n : node) (i : int) : bool =
    match n with
    | Inner_dense cs -> i >= 0 && i < Array.length cs
    | Leaf_dense vs -> i >= 0 && i < Array.length vs
    | Inner_sparse { crd; _ } | Leaf_sparse { crd; _ } -> bsearch_mem crd i
    | Inner_bytemap { mask; _ } | Leaf_bytemap { mask; _ } ->
        i >= 0 && i < Bytes.length mask && Bytes.get mask i <> '\000'
    | Inner_hash { tbl; _ } -> Hashtbl.mem tbl i
    | Leaf_hash { tbl; _ } -> Hashtbl.mem tbl i
    | Scalar _ -> invalid_arg "Node.mem: scalar"

  (* Word-packed presence mask of a bytemap level ([Bitset] words over
     the level's dimension); [None] for every other format.  The kernel
     backend intersects/unions these word arrays directly instead of
     probing byte-at-a-time. *)
  let bitmap_words (n : node) : int array option =
    match n with
    | Inner_bytemap { words; _ } | Leaf_bytemap { words; _ } -> Some words
    | _ -> None

  (* Iterate children of an inner level in ascending index order. *)
  let iter_sorted (n : node) (f : int -> node -> unit) : unit =
    match n with
    | Inner_dense cs -> Array.iteri f cs
    | Inner_sparse { crd; children } | Inner_bytemap { crd; children; _ } ->
        Array.iteri (fun p i -> f i children.(p)) crd
    | Inner_hash h ->
        let keys = hash_sorted_keys h.tbl h.sorted (fun s -> h.sorted <- Some s) in
        Array.iter (fun k -> f k (Hashtbl.find h.tbl k)) keys
    | Leaf_dense _ | Leaf_sparse _ | Leaf_bytemap _ | Leaf_hash _ | Scalar _ ->
        invalid_arg "Node.iter_sorted: leaf level"

  (* Iterate values of a leaf level in ascending index order. *)
  let iter_values (n : node) (f : int -> float -> unit) : unit =
    match n with
    | Leaf_dense vs -> Array.iteri f vs
    | Leaf_sparse { crd; vals } | Leaf_bytemap { crd; vals; _ } ->
        Array.iteri (fun p i -> f i vals.(p)) crd
    | Leaf_hash h ->
        let keys = hash_sorted_keys h.tbl h.sorted (fun s -> h.sorted <- Some s) in
        Array.iter (fun k -> f k (Hashtbl.find h.tbl k)) keys
    | Scalar _ | Inner_dense _ | Inner_sparse _ | Inner_bytemap _ | Inner_hash _
      ->
        invalid_arg "Node.iter_values: inner level"
end

(* ------------------------------------------------------------------ *)
(* Construction.                                                        *)
(* ------------------------------------------------------------------ *)

let scalar v =
  { dims = [||]; formats = [||]; fill = 0.0; root = Scalar v; nnz_cache = None }

let scalar_value t =
  match t.root with
  | Scalar v -> v
  | _ -> invalid_arg "Tensor.scalar_value: not 0-dimensional"

(* Canonical empty node for a level stack: used as the shared child of
   untouched positions in dense levels. *)
let rec empty_node (formats : format array) (dims : int array) (depth : int)
    (fill : float) : node =
  let leaf = depth = Array.length dims - 1 in
  match formats.(depth) with
  | Dense ->
      let n = dims.(depth) in
      if leaf then Leaf_dense (Array.make n fill)
      else begin
        let child = empty_node formats dims (depth + 1) fill in
        Inner_dense (Array.make n child)
      end
  | Sparse_list ->
      if leaf then Leaf_sparse { crd = [||]; vals = [||] }
      else Inner_sparse { crd = [||]; children = [||] }
  | Bytemap ->
      let n = dims.(depth) in
      let words = Array.make (Bitset.n_words n) 0 in
      if leaf then
        Leaf_bytemap { mask = Bytes.make n '\000'; words; crd = [||]; vals = [||] }
      else
        Inner_bytemap
          { mask = Bytes.make n '\000'; words; crd = [||]; children = [||] }
  | Hash ->
      if leaf then Leaf_hash { tbl = Hashtbl.create 4; sorted = Some [||] }
      else Inner_hash { tbl = Hashtbl.create 4; sorted = Some [||] }

(* Lexicographic comparison of two coordinate tuples. *)
let compare_coords (a : int array) (b : int array) : int =
  let n = Array.length a in
  let rec go i =
    if i = n then 0
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* Build a fiber tree from sorted, deduplicated COO entries.
   [entries] is an array of (coords, value); [lo, hi) is the active slice. *)
let rec build_node (formats : format array) (dims : int array) (fill : float)
    (entries : (int array * float) array) (lo : int) (hi : int) (depth : int) :
    node =
  let leaf = depth = Array.length dims - 1 in
  let n = dims.(depth) in
  (* Compute runs of equal coordinate at this depth. *)
  let runs = Vec.Poly.create ~dummy:(0, 0, 0) () in
  let i = ref lo in
  while !i < hi do
    let c = (fst entries.(!i)).(depth) in
    let j = ref !i in
    while !j < hi && (fst entries.(!j)).(depth) = c do
      incr j
    done;
    Vec.Poly.push runs (c, !i, !j);
    i := !j
  done;
  let nruns = Vec.Poly.length runs in
  if leaf then begin
    match formats.(depth) with
    | Dense ->
        let vals = Array.make n fill in
        for r = 0 to nruns - 1 do
          let c, rlo, _ = Vec.Poly.get runs r in
          vals.(c) <- snd entries.(rlo)
        done;
        Leaf_dense vals
    | Sparse_list ->
        let crd = Array.make nruns 0 and vals = Array.make nruns 0.0 in
        for r = 0 to nruns - 1 do
          let c, rlo, _ = Vec.Poly.get runs r in
          crd.(r) <- c;
          vals.(r) <- snd entries.(rlo)
        done;
        Leaf_sparse { crd; vals }
    | Bytemap ->
        let mask = Bytes.make n '\000' in
        let crd = Array.make nruns 0 and vals = Array.make nruns 0.0 in
        for r = 0 to nruns - 1 do
          let c, rlo, _ = Vec.Poly.get runs r in
          Bytes.set mask c '\001';
          crd.(r) <- c;
          vals.(r) <- snd entries.(rlo)
        done;
        Leaf_bytemap { mask; words = Bitset.of_sorted crd ~len:n; crd; vals }
    | Hash ->
        let tbl = Hashtbl.create (max 4 (2 * nruns)) in
        for r = 0 to nruns - 1 do
          let c, rlo, _ = Vec.Poly.get runs r in
          Hashtbl.replace tbl c (snd entries.(rlo))
        done;
        Leaf_hash { tbl; sorted = None }
  end
  else begin
    let child_of r =
      let _, rlo, rhi = Vec.Poly.get runs r in
      build_node formats dims fill entries rlo rhi (depth + 1)
    in
    match formats.(depth) with
    | Dense ->
        (* Untouched positions share one canonical empty child. *)
        let empty = empty_node formats dims (depth + 1) fill in
        let children = Array.make n empty in
        for r = 0 to nruns - 1 do
          let c, _, _ = Vec.Poly.get runs r in
          children.(c) <- child_of r
        done;
        Inner_dense children
    | Sparse_list ->
        let crd = Array.make nruns 0 in
        let children = Array.init nruns child_of in
        for r = 0 to nruns - 1 do
          let c, _, _ = Vec.Poly.get runs r in
          crd.(r) <- c
        done;
        Inner_sparse { crd; children }
    | Bytemap ->
        let mask = Bytes.make n '\000' in
        let crd = Array.make nruns 0 in
        let children = Array.init nruns child_of in
        for r = 0 to nruns - 1 do
          let c, _, _ = Vec.Poly.get runs r in
          Bytes.set mask c '\001';
          crd.(r) <- c
        done;
        Inner_bytemap { mask; words = Bitset.of_sorted crd ~len:n; crd; children }
    | Hash ->
        let tbl = Hashtbl.create (max 4 (2 * nruns)) in
        for r = 0 to nruns - 1 do
          let c, _, _ = Vec.Poly.get runs r in
          Hashtbl.replace tbl c (child_of r)
        done;
        Inner_hash { tbl; sorted = None }
  end

let of_coo ?(fill = 0.0) ?(combine = ( +. )) ?(prune = true) ~dims ~formats
    entries =
  let nd = Array.length dims in
  if Array.length formats <> nd then
    invalid_arg "Tensor.of_coo: formats/dims length mismatch";
  Array.iter
    (fun (c, _) ->
      if Array.length c <> nd then invalid_arg "Tensor.of_coo: bad coord arity")
    entries;
  if nd = 0 then begin
    let v = Array.fold_left (fun acc (_, x) -> combine acc x) fill entries in
    let v = if Array.length entries = 0 then fill else v in
    { dims = [||]; formats = [||]; fill; root = Scalar v; nnz_cache = None }
  end
  else begin
    let entries = Array.copy entries in
    Array.sort (fun (a, _) (b, _) -> compare_coords a b) entries;
    (* Deduplicate, combining values of equal coordinates. *)
    let dedup = Vec.Poly.create ~dummy:([||], 0.0) () in
    let n = Array.length entries in
    let i = ref 0 in
    while !i < n do
      let c, v = entries.(!i) in
      let acc = ref v in
      let j = ref (!i + 1) in
      while !j < n && compare_coords (fst entries.(!j)) c = 0 do
        acc := combine !acc (snd entries.(!j));
        incr j
      done;
      if (not prune) || !acc <> fill then Vec.Poly.push dedup (c, !acc);
      i := !j
    done;
    let entries = Vec.Poly.to_array dedup in
    let root =
      if Array.length entries = 0 then empty_node formats dims 0 fill
      else build_node formats dims fill entries 0 (Array.length entries) 0
    in
    { dims; formats; fill; root; nnz_cache = None }
  end

let get (t : t) (coords : int array) : float =
  let nd = ndims t in
  if Array.length coords <> nd then invalid_arg "Tensor.get: bad coord arity";
  if nd = 0 then scalar_value t
  else begin
    let rec go node depth =
      if depth = nd - 1 then
        match Node.find_value node coords.(depth) with
        | Some v -> v
        | None -> t.fill
      else
        match Node.find node coords.(depth) with
        | Some child -> go child (depth + 1)
        | None -> t.fill
    in
    go t.root 0
  end

(* Iterate all explicit entries with their full coordinates. *)
let iter_explicit (t : t) (f : int array -> float -> unit) : unit =
  let nd = ndims t in
  if nd = 0 then f [||] (scalar_value t)
  else begin
    let coords = Array.make nd 0 in
    let rec go node depth =
      if depth = nd - 1 then
        Node.iter_values node (fun i v ->
            coords.(depth) <- i;
            f (Array.copy coords) v)
      else
        Node.iter_sorted node (fun i child ->
            coords.(depth) <- i;
            go child (depth + 1))
    in
    go t.root 0
  end

(* Like [iter_explicit] but skips entries whose value equals the fill. *)
let iter_nonfill (t : t) (f : int array -> float -> unit) : unit =
  iter_explicit t (fun c v -> if v <> t.fill then f c v)

let to_coo (t : t) : (int array * float) array =
  let acc = Vec.Poly.create ~dummy:([||], 0.0) () in
  iter_nonfill t (fun c v -> Vec.Poly.push acc (c, v));
  Vec.Poly.to_array acc

(* Number of explicitly stored positions (dense counts everything). *)
let explicit_count (t : t) : int =
  let nd = ndims t in
  if nd = 0 then 1
  else begin
    let total = ref 0 in
    let rec go node depth =
      if depth = nd - 1 then total := !total + Node.explicit_count node
      else Node.iter_sorted node (fun _ child -> go child (depth + 1))
    in
    go t.root 0;
    !total
  end

(* Number of entries whose value differs from the fill (cached). *)
let nnz (t : t) : int =
  match t.nnz_cache with
  | Some n -> n
  | None ->
      let n = ref 0 in
      iter_nonfill t (fun _ _ -> incr n);
      t.nnz_cache <- Some !n;
      !n

(* Force every lazily computed cache — hash levels' sorted key arrays and
   the nnz count — so a tensor shared read-only across domains is truly
   immutable during parallel execution (the parallel backend presorts its
   operands instead of racing on first-use cache fills). *)
let presort (t : t) : unit =
  let rec go (n : node) : unit =
    match n with
    | Scalar _ | Leaf_dense _ | Leaf_sparse _ | Leaf_bytemap _ -> ()
    | Leaf_hash _ -> ignore (Node.explicit_indices n)
    | Inner_hash { tbl; _ } ->
        ignore (Node.explicit_indices n);
        Hashtbl.iter (fun _ child -> go child) tbl
    | Inner_dense children -> Array.iter go children
    | Inner_sparse { children; _ } | Inner_bytemap { children; _ } ->
        Array.iter go children
  in
  go t.root;
  ignore (nnz t)

let reformat ?fill (t : t) (formats : format array) : t =
  let fill = match fill with Some f -> f | None -> t.fill in
  of_coo ~fill ~dims:t.dims ~formats (to_coo t)

(* Transpose: [perm.(k)] is the source dimension that lands at position [k]
   of the output, i.e. out_dims.(k) = dims.(perm.(k)) and
   out[c0..] = in[c_{perm^-1}...]. *)
let transpose ?formats (t : t) (perm : int array) : t =
  let nd = ndims t in
  if Array.length perm <> nd then invalid_arg "Tensor.transpose: bad perm";
  let out_dims = Array.map (fun k -> t.dims.(k)) perm in
  let out_formats =
    match formats with
    | Some fs -> fs
    | None -> Array.map (fun k -> t.formats.(k)) perm
  in
  let entries = to_coo t in
  let permuted =
    Array.map
      (fun (c, v) -> (Array.map (fun k -> c.(k)) perm, v))
      entries
  in
  of_coo ~fill:t.fill ~dims:out_dims ~formats:out_formats permuted

(* ------------------------------------------------------------------ *)
(* Dense interop, mostly for tests and the reference evaluator.         *)
(* ------------------------------------------------------------------ *)

let flat_index (dims : int array) (coords : int array) : int =
  let nd = Array.length dims in
  let idx = ref 0 in
  for d = 0 to nd - 1 do
    idx := (!idx * dims.(d)) + coords.(d)
  done;
  !idx

let unflatten (dims : int array) (flat : int) : int array =
  let nd = Array.length dims in
  let coords = Array.make nd 0 in
  let rem = ref flat in
  for d = nd - 1 downto 0 do
    coords.(d) <- !rem mod dims.(d);
    rem := !rem / dims.(d)
  done;
  coords

(* Row-major flattening; cells never touched explicitly get the fill. *)
let to_flat_dense (t : t) : float array =
  let nd = ndims t in
  if nd = 0 then [| scalar_value t |]
  else begin
    let out = Array.make (dim_space t.dims) t.fill in
    iter_explicit t (fun c v -> out.(flat_index t.dims c) <- v);
    out
  end

let of_fun ?(fill = 0.0) ~dims ~formats f =
  let total = dim_space dims in
  let entries = Vec.Poly.create ~dummy:([||], 0.0) () in
  for flat = 0 to total - 1 do
    let c = unflatten dims flat in
    let v = f c in
    if v <> fill then Vec.Poly.push entries (c, v)
  done;
  of_coo ~fill ~dims ~formats (Vec.Poly.to_array entries)

let of_flat_dense ?(fill = 0.0) ~dims ~formats data =
  if Array.length data <> dim_space dims then
    invalid_arg "Tensor.of_flat_dense: size mismatch";
  of_fun ~fill ~dims ~formats (fun c -> data.(flat_index dims c))

(* Random sparse tensor: each cell is non-fill independently with
   probability [density]; values are uniform in [value_lo, value_hi). *)
let random ?(fill = 0.0) ?(value_lo = 0.5) ?(value_hi = 1.5) ~prng ~dims
    ~formats ~density () =
  let entries = Vec.Poly.create ~dummy:([||], 0.0) () in
  let total = dim_space dims in
  if density >= 0.3 || total <= 4096 then begin
    for flat = 0 to total - 1 do
      if Prng.float prng < density then begin
        let v = Prng.float_range prng value_lo value_hi in
        let v = if v = fill then v +. 1e-9 else v in
        Vec.Poly.push entries (unflatten dims flat, v)
      end
    done
  end
  else begin
    (* Sparse regime: sample expected-count cells without full scan. *)
    let expected = int_of_float (float_of_int total *. density) in
    let expected = max 1 expected in
    let seen = Hashtbl.create (2 * expected) in
    let tries = ref 0 in
    while Hashtbl.length seen < expected && !tries < 20 * expected do
      incr tries;
      let flat = Prng.int prng total in
      if not (Hashtbl.mem seen flat) then Hashtbl.add seen flat ()
    done;
    Hashtbl.iter
      (fun flat () ->
        let v = Prng.float_range prng value_lo value_hi in
        let v = if v = fill then v +. 1e-9 else v in
        Vec.Poly.push entries (unflatten dims flat, v))
      seen
  end;
  of_coo ~fill ~dims ~formats (Vec.Poly.to_array entries)

(* ------------------------------------------------------------------ *)
(* Comparison and printing.                                             *)
(* ------------------------------------------------------------------ *)

let equal_approx ?(eps = 1e-9) (a : t) (b : t) : bool =
  a.dims = b.dims
  &&
  let fa = to_flat_dense a and fb = to_flat_dense b in
  let ok = ref true in
  Array.iteri
    (fun i va ->
      let vb = fb.(i) in
      let scale = max 1.0 (max (abs_float va) (abs_float vb)) in
      if abs_float (va -. vb) > eps *. scale then ok := false)
    fa;
  !ok

let pp fmt (t : t) =
  Format.fprintf fmt "@[<v 2>tensor dims=[%s] formats=[%s] fill=%g nnz=%d"
    (String.concat "," (Array.to_list (Array.map string_of_int t.dims)))
    (String.concat ","
       (Array.to_list (Array.map format_to_string t.formats)))
    t.fill (nnz t);
  let shown = ref 0 in
  (try
     iter_nonfill t (fun c v ->
         if !shown >= 20 then raise Exit;
         incr shown;
         Format.fprintf fmt "@,[%s] = %g"
           (String.concat ","
              (Array.to_list (Array.map string_of_int c)))
           v)
   with Exit -> Format.fprintf fmt "@,...");
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
