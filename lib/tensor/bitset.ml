(* Word-level presence bitsets over native ints.

   Bytemap levels keep a byte-per-index mask for O(1) single-index
   probes; this module packs the same presence information into native
   integer words ([Sys.int_size] bits each, 63 on 64-bit platforms) so
   set algebra over whole levels — the intersections and unions the
   kernel backend performs at every bytemap∧bytemap loop level — runs
   one word (not one byte) at a time.

   Invariants, relied on by the backend's candidate generators:

   - a bitset for a dimension of size [len] has exactly
     [n_words len] words;
   - bits at positions >= [len] are always zero (tail hygiene), so
     [inter]/[union] of same-dimension sets never manufacture
     out-of-range candidates;
   - [iter_set]/[to_array] visit set bits in strictly ascending order,
     exactly the sequence a sorted coordinate list produces — which is
     what keeps word-merged levels bit-identical to the cursor paths
     they replace. *)

let word_bits = Sys.int_size
let n_words (len : int) : int = (len + word_bits - 1) / word_bits

(* Build from a sorted (or merely in-range) coordinate list. *)
let of_sorted (crd : int array) ~(len : int) : int array =
  let w = Array.make (n_words len) 0 in
  Array.iter
    (fun i ->
      if i < 0 || i >= len then invalid_arg "Bitset.of_sorted: index out of range";
      w.(i / word_bits) <- w.(i / word_bits) lor (1 lsl (i mod word_bits)))
    crd;
  w

let mem (w : int array) (i : int) : bool =
  let q = i / word_bits in
  q >= 0 && q < Array.length w && w.(q) land (1 lsl (i mod word_bits)) <> 0

(* In-place accumulation; [dst] and [src] must be same-dimension sets. *)
let inter_into (dst : int array) (src : int array) : unit =
  if Array.length dst <> Array.length src then
    invalid_arg "Bitset.inter_into: length mismatch";
  for q = 0 to Array.length dst - 1 do
    Array.unsafe_set dst q
      (Array.unsafe_get dst q land Array.unsafe_get src q)
  done

let union_into (dst : int array) (src : int array) : unit =
  if Array.length dst <> Array.length src then
    invalid_arg "Bitset.union_into: length mismatch";
  for q = 0 to Array.length dst - 1 do
    Array.unsafe_set dst q
      (Array.unsafe_get dst q lor Array.unsafe_get src q)
  done

let inter (a : int array) (b : int array) : int array =
  let out = Array.copy a in
  inter_into out b;
  out

let union (a : int array) (b : int array) : int array =
  let out = Array.copy a in
  union_into out b;
  out

(* Number of trailing zeros of a one-bit word (an isolated lowest bit),
   by shift-halving; no hardware ctz is reachable from vanilla OCaml. *)
let ntz (b : int) : int =
  let n = ref 0 and b = ref b in
  if !b land 0xFFFFFFFF = 0 then begin n := !n + 32; b := !b lsr 32 end;
  if !b land 0xFFFF = 0 then begin n := !n + 16; b := !b lsr 16 end;
  if !b land 0xFF = 0 then begin n := !n + 8; b := !b lsr 8 end;
  if !b land 0xF = 0 then begin n := !n + 4; b := !b lsr 4 end;
  if !b land 0x3 = 0 then begin n := !n + 2; b := !b lsr 2 end;
  if !b land 0x1 = 0 then n := !n + 1;
  !n

(* Visit set bits in ascending order: per word, repeatedly isolate and
   clear the lowest set bit. *)
let iter_set (w : int array) (f : int -> unit) : unit =
  for q = 0 to Array.length w - 1 do
    let bits = ref (Array.unsafe_get w q) in
    let base = q * word_bits in
    while !bits <> 0 do
      let b = !bits land - !bits in
      f (base + ntz b);
      bits := !bits lxor b
    done
  done

let count (w : int array) : int =
  let n = ref 0 in
  Array.iter
    (fun word ->
      let bits = ref word in
      while !bits <> 0 do
        incr n;
        bits := !bits land (!bits - 1)
      done)
    w;
  !n

let to_array (w : int array) : int array =
  let out = Array.make (count w) 0 in
  let p = ref 0 in
  iter_set w (fun i ->
      out.(!p) <- i;
      incr p);
  out
