(* Minimal sub-query extraction (paper Sec. 5.4).

   Eliminating an index [v] from an expression means: find the Agg node that
   binds [v], traverse down its body guided by the algebraic properties of
   each Map node, and carve out the smallest sub-expressions that must be
   aggregated together.  The traversal rules:

   - *Distributive* functions (e.g. * over Σ): children not containing [v]
     factor out; with one containing child we keep descending; with several
     we stop and wrap just those children (the operator being commutative
     and associative lets us exclude the rest).
   - *Commutative, identical* functions (e.g. + under Σ): the aggregate
     pushes into every child independently; children without [v] get the
     repeated-application map g(x, n_v).
   - *Blocking* functions: wrap the whole subtree.

   Each extraction returns one or more new logical queries plus the
   rewritten expression in which the carved sub-queries are aliases. *)

open Galley_plan

type extraction = {
  queries : Logical_query.t list; (* in dependency order *)
  rewritten : Ir.expr; (* the input expression with [v] eliminated *)
}

(* Find the unique Agg node binding [v] (expressions are uniquified). *)
let rec find_binding_agg (e : Ir.expr) (v : Ir.idx) : Ir.expr option =
  match e with
  | Ir.Input _ | Ir.Alias _ | Ir.Literal _ -> None
  | Ir.Map (_, args) ->
      List.fold_left
        (fun acc a -> match acc with Some _ -> acc | None -> find_binding_agg a v)
        None args
  | Ir.Agg (_, idxs, body) ->
      if List.mem v idxs then Some e else find_binding_agg body v

(* Indices of [e] that are aggregated over, available for elimination:
   those whose Agg node's body contains no further Agg (inner-first
   restriction, paper Sec. 5.5). *)
let rec available_indices (e : Ir.expr) : Ir.idx list =
  match e with
  | Ir.Input _ | Ir.Alias _ | Ir.Literal _ -> []
  | Ir.Map (_, args) -> List.concat_map available_indices args
  | Ir.Agg (_, idxs, body) ->
      if Ir.contains_agg body then available_indices body
      else idxs @ available_indices body

(* All aggregated indices remaining in the expression. *)
let rec remaining_agg_indices (e : Ir.expr) : Ir.idx list =
  match e with
  | Ir.Input _ | Ir.Alias _ | Ir.Literal _ -> []
  | Ir.Map (_, args) -> List.concat_map remaining_agg_indices args
  | Ir.Agg (_, idxs, body) -> idxs @ remaining_agg_indices body

(* Make a logical query out of an MSQ body. *)
let make_query ~(fresh : unit -> string) ~(agg_op : Op.t) ~(v : Ir.idx)
    (body : Ir.expr) : Logical_query.t * Ir.expr =
  assert (not (Ir.contains_agg body));
  let name = fresh () in
  let q = Logical_query.make ~name ~agg_op ~agg_idxs:[ v ] ~body () in
  (q, Ir.Alias (name, q.Logical_query.output_idxs))

(* Traverse [e] (the body, or part of the body, of the Agg binding [v]) and
   aggregate [v] out of it.  Precondition: [e] mentions [v] freely and
   contains no Agg nodes (guaranteed by the inner-first restriction). *)
let rec extract ~(dims : int Ir.Idx_map.t) ~(fresh : unit -> string)
    ~(agg_op : Op.t) ~(v : Ir.idx) (e : Ir.expr) :
    Logical_query.t list * Ir.expr =
  match e with
  | Ir.Input _ | Ir.Alias _ ->
      let q, alias = make_query ~fresh ~agg_op ~v e in
      ([ q ], alias)
  | Ir.Literal _ -> assert false (* literals do not mention [v] *)
  | Ir.Agg _ -> assert false (* excluded by the inner-first restriction *)
  | Ir.Map (op, args) ->
      let with_v, without_v = List.partition (fun a -> Ir.mentions a v) args in
      assert (with_v <> []);
      if op = agg_op && Op.is_commutative op then begin
        (* Commutative, identical: push the aggregate into each child. *)
        let n_v = Schema.dim_of_idx dims v in
        let results =
          List.map (fun a -> extract ~dims ~fresh ~agg_op ~v a) with_v
        in
        let queries = List.concat_map fst results in
        let repl_with = List.map snd results in
        let repl_without =
          List.map
            (fun a ->
              (* g(x, n_v) via the shared expression-level repeated
                 application; every commutative aggregate in the algebra
                 has a closed form, so a miss is an internal error, not
                 a silent identity rewrite. *)
              match Ir.repeat_expr agg_op a n_v with
              | Some e -> e
              | None ->
                  invalid_arg
                    ("Elimination: no repeated-application form for "
                    ^ Op.to_string agg_op))
            without_v
        in
        (queries, Ir.Map (op, repl_with @ repl_without))
      end
      else if Op.distributes_over ~pointwise:op ~aggregate:agg_op then begin
        match with_v with
        | [ child ] ->
            (* Factor every other child out of the aggregate. *)
            let queries, repl = extract ~dims ~fresh ~agg_op ~v child in
            let args' =
              List.map (fun a -> if a == child then repl else a) args
            in
            (queries, Ir.Map (op, args'))
        | _ when Op.is_commutative op && Op.is_associative op && without_v <> [] ->
            (* Wrap only the children that contain [v]. *)
            let q, alias = make_query ~fresh ~agg_op ~v (Ir.Map (op, with_v)) in
            ([ q ], Ir.Map (op, alias :: without_v))
        | _ ->
            let q, alias = make_query ~fresh ~agg_op ~v e in
            ([ q ], alias)
      end
      else begin
        (* Blocking function: wrap the whole subtree. *)
        let q, alias = make_query ~fresh ~agg_op ~v e in
        ([ q ], alias)
      end

(* Eliminate index [v] from the full expression [e]: locate its Agg node,
   extract the minimal sub-queries, and return the new queries plus the
   rewritten expression (with the Agg node's binder list shrunk by [v]). *)
let eliminate ~(dims : int Ir.Idx_map.t) ~(fresh : unit -> string)
    (e : Ir.expr) (v : Ir.idx) : extraction =
  match find_binding_agg e v with
  | None -> invalid_arg ("Elimination: index not aggregated: " ^ v)
  | Some (Ir.Agg (agg_op, idxs, body) as target) ->
      if Ir.contains_agg body then
        invalid_arg
          ("Elimination: inner aggregates must be eliminated before " ^ v);
      let queries, body' = extract ~dims ~fresh ~agg_op ~v body in
      let remaining = List.filter (fun i -> i <> v) idxs in
      let replacement =
        if remaining = [] then body' else Ir.Agg (agg_op, remaining, body')
      in
      { queries; rewritten = Ir.replace_subexpr ~target ~by:replacement e }
  | Some _ -> assert false
