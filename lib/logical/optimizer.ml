(* The logical optimizer (paper Sec. 5): converts each input query into a
   sequence of logical queries by searching for the cheapest variable
   elimination order, optionally comparing against the pointwise-distributed
   form of the expression.

   Two search strategies (paper Sec. 5.6):
   - [Greedy]: eliminate the cheapest available index at each step;
   - [Branch_and_bound]: seed a bound with the greedy plan, then run dynamic
     programming over *sets* of eliminated indices, pruning states whose
     cost exceeds the bound (costs increase monotonically).

   Both searches respect an optional [Tier.budget] (wall clock + node
   count); exhausting it raises [Tier.Exhausted] and the tiered entry
   points degrade: branch-and-bound → greedy → a naive estimate-free
   elimination that can always complete. *)

open Galley_plan

type search = Greedy | Branch_and_bound

type config = {
  search : search;
  try_distribute : bool;
  weights : Galley_stats.Cost.weights;
  max_bnb_indices : int; (* fall back to greedy past this many indices *)
  max_nodes : int option; (* search-node budget per rung; None = unbounded *)
}

let default_config =
  {
    search = Branch_and_bound;
    try_distribute = true;
    weights = Galley_stats.Cost.default_weights;
    max_bnb_indices = 12;
    max_nodes = None;
  }

type result = { queries : Logical_query.t list; cost : float }

(* Estimated cost of one logical query (paper Sec. 5.2).  A non-finite
   estimate cannot steer the search; it exhausts the current rung. *)
let query_cost (cfg : config) (ctx : Galley_stats.Ctx.t) (q : Logical_query.t)
    : float =
  let nnz_body = ctx.Galley_stats.Ctx.estimate_expr q.Logical_query.body in
  let nnz_out =
    ctx.Galley_stats.Ctx.estimate_expr
      (Logical_query.to_query q).Ir.expr
  in
  Tier.finite
    (Galley_stats.Cost.logical_query_cost ~weights:cfg.weights ~nnz_body
       ~nnz_out ())

(* Register a committed logical query's output as an alias for subsequent
   estimation: schema entry (dims in output order + fill) and statistics. *)
let register_alias (ctx : Galley_stats.Ctx.t) (q : Logical_query.t) : unit =
  let full = (Logical_query.to_query q).Ir.expr in
  let dims = Schema.index_dims ctx.Galley_stats.Ctx.schema full in
  let out_dims =
    Array.of_list
      (List.map (fun i -> Schema.dim_of_idx dims i) q.Logical_query.output_idxs)
  in
  let fill = Schema.expr_fill ctx.Galley_stats.Ctx.schema dims full in
  Schema.declare ctx.Galley_stats.Ctx.schema q.Logical_query.name
    ~dims:out_dims ~fill;
  ctx.Galley_stats.Ctx.register_alias_estimated q.Logical_query.name
    ~output_idxs:q.Logical_query.output_idxs full

(* Wrap up: the remaining aggregate-free expression becomes the final
   logical query (or, when it is exactly the alias of the last emitted
   query in the right order, that query is renamed instead).  [cost_of]
   prices the final query: the estimator-backed [query_cost] on the smart
   rungs, a constant zero on the naive rung. *)
let finish ~(cost_of : Logical_query.t -> float) (ctx : Galley_stats.Ctx.t)
    ~(name : string) ~(out_order : Ir.idx list option) (expr : Ir.expr)
    (queries : Logical_query.t list) : result * float =
  assert (not (Ir.contains_agg expr));
  let free = Ir.Idx_set.elements (Ir.free_indices expr) in
  let output_idxs = match out_order with Some o -> o | None -> free in
  match (expr, List.rev queries) with
  | Ir.Alias (a, idxs), last :: earlier
    when a = last.Logical_query.name && idxs = output_idxs ->
      let renamed = { last with Logical_query.name } in
      register_alias ctx renamed;
      ({ queries = List.rev (renamed :: earlier); cost = 0.0 }, 0.0)
  | _ ->
      let q =
        Logical_query.make ~output_idxs ~name ~agg_op:Op.Ident ~agg_idxs:[]
          ~body:expr ()
      in
      let c = cost_of q in
      register_alias ctx q;
      ({ queries = queries @ [ q ]; cost = c }, c)

(* ------------------------------------------------------------------ *)
(* Greedy search.                                                       *)
(* ------------------------------------------------------------------ *)

let greedy ?(budget : Tier.budget option) (cfg : config)
    (ctx : Galley_stats.Ctx.t) ~(fresh : unit -> string) ~(name : string)
    ~(out_order : Ir.idx list option) (expr : Ir.expr) : result =
  let dims = Schema.index_dims ctx.Galley_stats.Ctx.schema expr in
  let rec loop expr queries total =
    match Elimination.available_indices expr with
    | [] ->
        let r, final_cost =
          finish ~cost_of:(query_cost cfg ctx) ctx ~name ~out_order expr
            queries
        in
        { r with cost = total +. final_cost }
    | avail ->
        (* Pick the index whose minimal sub-queries are cheapest.  Trial
           extractions share [fresh]; only the chosen one is committed. *)
        let scored =
          List.map
            (fun v ->
              Tier.tick_opt budget;
              let ext = Elimination.eliminate ~dims ~fresh expr v in
              let cost =
                List.fold_left
                  (fun acc q -> acc +. query_cost cfg ctx q)
                  0.0 ext.Elimination.queries
              in
              (v, ext, cost))
            avail
        in
        let best_v, best_ext, best_cost =
          List.fold_left
            (fun (bv, be, bc) (v, e, c) ->
              if c < bc then (v, e, c) else (bv, be, bc))
            (List.hd scored |> fun (v, e, c) -> (v, e, c))
            (List.tl scored)
        in
        if Provenance.enabled () then
          List.iter
            (fun (v, _, c) ->
              Provenance.candidate ~phase:"logical" ~query:name ~tier:"greedy"
                ~descr:("eliminate " ^ v) ~cost:c ~chosen:(v = best_v) ())
            scored;
        List.iter (register_alias ctx) best_ext.Elimination.queries;
        loop best_ext.Elimination.rewritten
          (queries @ best_ext.Elimination.queries)
          (total +. best_cost)
  in
  loop expr [] 0.0

(* ------------------------------------------------------------------ *)
(* Branch-and-bound dynamic programming over eliminated-index sets.     *)
(* ------------------------------------------------------------------ *)

type dp_entry = {
  dp_expr : Ir.expr;
  dp_queries : Logical_query.t list;
  dp_cost : float;
  dp_ctx : Galley_stats.Ctx.t;
}

let branch_and_bound ?(budget : Tier.budget option) (cfg : config)
    (ctx : Galley_stats.Ctx.t) ~(fresh : unit -> string) ~(name : string)
    ~(out_order : Ir.idx list option) (expr : Ir.expr) : result =
  (* Step 1: greedy upper bound (on a cloned context so trial alias
     statistics do not pollute the search). *)
  let greedy_result =
    greedy ?budget cfg
      (ctx.Galley_stats.Ctx.clone ())
      ~fresh ~name ~out_order expr
  in
  let all_indices = Elimination.remaining_agg_indices expr in
  let k = List.length all_indices in
  if k = 0 || k > cfg.max_bnb_indices then begin
    (* Re-run greedy against the real context to commit its aliases. *)
    greedy ?budget cfg ctx ~fresh ~name ~out_order expr
  end
  else begin
    let pv = Provenance.enabled () in
    if pv then
      Provenance.candidate ~phase:"logical" ~query:name ~tier:"exact"
        ~descr:"greedy upper bound" ~cost:greedy_result.cost ~chosen:false ();
    let pruned_bound = ref 0 and pruned_dominated = ref 0 in
    let improvements = ref 0 in
    let bound = ref greedy_result.cost in
    let dims = Schema.index_dims ctx.Galley_stats.Ctx.schema expr in
    let key (eliminated : Ir.Idx_set.t) : string =
      String.concat "," (Ir.Idx_set.elements eliminated)
    in
    let table : (string, dp_entry) Hashtbl.t = Hashtbl.create 64 in
    let init =
      {
        dp_expr = expr;
        dp_queries = [];
        dp_cost = 0.0;
        dp_ctx = ctx.Galley_stats.Ctx.clone ();
      }
    in
    Hashtbl.replace table (key Ir.Idx_set.empty) init;
    let best_final : dp_entry option ref = ref None in
    (* Expand level by level: states at level L have eliminated L indices. *)
    let current = ref [ (Ir.Idx_set.empty, init) ] in
    for _level = 1 to k do
      let next = Hashtbl.create 32 in
      List.iter
        (fun (eliminated, entry) ->
          if entry.dp_cost > !bound then incr pruned_bound
          else
            List.iter
              (fun v ->
                Tier.tick_opt budget;
                let ext =
                  Elimination.eliminate ~dims ~fresh entry.dp_expr v
                in
                (* Score against the parent context: the new queries only
                   reference aliases registered along this path.  Clone and
                   register only for entries that survive the bound and
                   dominate their DP cell. *)
                let step_cost =
                  List.fold_left
                    (fun acc q -> acc +. query_cost cfg entry.dp_ctx q)
                    0.0 ext.Elimination.queries
                in
                let cost = entry.dp_cost +. step_cost in
                if cost > !bound then incr pruned_bound
                else begin
                  let eliminated' = Ir.Idx_set.add v eliminated in
                  let k' = key eliminated' in
                  let better =
                    match Hashtbl.find_opt next k' with
                    | Some old -> cost < old.dp_cost
                    | None -> true
                  in
                  if not better then incr pruned_dominated;
                  if better then begin
                    let trial_ctx = entry.dp_ctx.Galley_stats.Ctx.clone () in
                    List.iter (register_alias trial_ctx) ext.Elimination.queries;
                    let entry' =
                      {
                        dp_expr = ext.Elimination.rewritten;
                        dp_queries = entry.dp_queries @ ext.Elimination.queries;
                        dp_cost = cost;
                        dp_ctx = trial_ctx;
                      }
                    in
                    Hashtbl.replace next k' entry';
                    if Ir.Idx_set.cardinal eliminated' = k then begin
                      best_final := Some entry';
                      bound := cost;
                      incr improvements
                    end
                  end
                end)
              (Elimination.available_indices entry.dp_expr))
        !current;
      current :=
        Hashtbl.fold
          (fun ks e acc ->
            ( Ir.Idx_set.of_list
                (if ks = "" then [] else String.split_on_char ',' ks),
              e )
            :: acc)
          next []
    done;
    if pv then begin
      Provenance.prune ~phase:"logical" ~query:name ~tier:"exact"
        ~reason:"cost above bound" ~count:!pruned_bound ();
      Provenance.prune ~phase:"logical" ~query:name ~tier:"exact"
        ~reason:"dominated dp cell" ~count:!pruned_dominated ();
      Provenance.candidate ~phase:"logical" ~query:name ~tier:"exact"
        ~descr:
          (Printf.sprintf "dp best (bound improved %d time%s)" !improvements
             (if !improvements = 1 then "" else "s"))
        ~cost:!bound
        ~chosen:(Option.is_some !best_final)
        ()
    end;
    match !best_final with
    | None ->
        (* Greedy was optimal; replay it against the real context. *)
        greedy ?budget cfg ctx ~fresh ~name ~out_order expr
    | Some entry ->
        (* Replay the DP winner's queries against the real context. *)
        let replay_cost =
          List.fold_left
            (fun acc q ->
              let c = query_cost cfg ctx q in
              register_alias ctx q;
              acc +. c)
            0.0 entry.dp_queries
        in
        let r, final_cost =
          finish ~cost_of:(query_cost cfg ctx) ctx ~name ~out_order
            entry.dp_expr entry.dp_queries
        in
        { r with cost = replay_cost +. final_cost }
  end

(* ------------------------------------------------------------------ *)
(* Naive fallback: estimate-free elimination.                           *)
(* ------------------------------------------------------------------ *)

(* Eliminate the first available index at every step, pricing nothing.
   Makes zero estimator calls and checks no budget, so it completes under
   a 0-second deadline or a faulty estimator; the resulting plan is a
   valid (if unscored) left-to-right elimination order. *)
let naive (ctx : Galley_stats.Ctx.t) ~(fresh : unit -> string)
    ~(name : string) ~(out_order : Ir.idx list option) (expr : Ir.expr) :
    result =
  let dims = Schema.index_dims ctx.Galley_stats.Ctx.schema expr in
  let rec loop expr queries =
    match Elimination.available_indices expr with
    | [] ->
        let r, _ =
          finish ~cost_of:(fun _ -> 0.0) ctx ~name ~out_order expr queries
        in
        r
    | v :: _ ->
        let ext = Elimination.eliminate ~dims ~fresh expr v in
        List.iter (register_alias ctx) ext.Elimination.queries;
        loop ext.Elimination.rewritten (queries @ ext.Elimination.queries)
  in
  loop expr []

(* ------------------------------------------------------------------ *)
(* Per-query and per-program drivers.                                   *)
(* ------------------------------------------------------------------ *)

let optimize_expr ?(budget : Tier.budget option) (cfg : config)
    (ctx : Galley_stats.Ctx.t) ~(fresh : unit -> string) ~(name : string)
    ~(out_order : Ir.idx list option) (expr : Ir.expr) : result =
  let run ctx expr =
    match cfg.search with
    | Greedy -> greedy ?budget cfg ctx ~fresh ~name ~out_order expr
    | Branch_and_bound ->
        branch_and_bound ?budget cfg ctx ~fresh ~name ~out_order expr
  in
  let canon = Canonical.canonicalize ctx.Galley_stats.Ctx.schema expr in
  let variants =
    canon
    ::
    (if cfg.try_distribute then
       match Distribute.distributed_variant ctx.Galley_stats.Ctx.schema canon with
       | Some d -> [ d ]
       | None -> []
     else [])
  in
  (* Score every variant on a cloned context, then replay the winner on the
     real context so its alias statistics are committed. *)
  let scored =
    List.map
      (fun variant ->
        let r = run (ctx.Galley_stats.Ctx.clone ()) variant in
        (variant, r.cost))
      variants
  in
  let best_variant, _ =
    List.fold_left
      (fun (bv, bc) (v, c) -> if c < bc then (v, c) else (bv, bc))
      (List.hd scored) (List.tl scored)
  in
  if Provenance.enabled () then
    List.iteri
      (fun i (v, c) ->
        Provenance.candidate ~phase:"logical" ~query:name
          ~tier:(match cfg.search with Greedy -> "greedy" | Branch_and_bound -> "exact")
          ~descr:(if i = 0 then "variant canonical" else "variant distributed")
          ~cost:c
          ~chosen:(v == best_variant)
          ())
      scored;
  run ctx best_variant

(* Degradation ladder: run the configured search under a budget, falling
   from branch-and-bound to greedy to the naive elimination as rungs
   exhaust.  Returns the tier that actually served the plan.  With
   [degrade = false] exhaustion propagates as [Tier.Exhausted] instead of
   degrading (used to surface deadline errors when requested). *)
let optimize_expr_tiered ?(deadline : float option) ?(degrade = true)
    (cfg : config) (ctx : Galley_stats.Ctx.t) ~(fresh : unit -> string)
    ~(name : string) ~(out_order : Ir.idx list option) (expr : Ir.expr) :
    result * Tier.t =
  let budget_for () =
    match (deadline, cfg.max_nodes) with
    | None, None -> None
    | _ -> Some (Tier.budget ?deadline ?max_nodes:cfg.max_nodes ())
  in
  let last_budget : Tier.budget option ref = ref None in
  let rung_nodes () =
    match !last_budget with Some b -> b.Tier.nodes | None -> 0
  in
  let attempt search =
    let budget = budget_for () in
    last_budget := budget;
    (* Charge rung entry so trivial (tick-free) searches still respect an
       already-expired deadline. *)
    Tier.tick_opt budget;
    optimize_expr ?budget { cfg with search } ctx ~fresh ~name ~out_order expr
  in
  let rungs =
    match cfg.search with
    | Branch_and_bound -> [ (Branch_and_bound, Tier.Exact); (Greedy, Tier.Greedy) ]
    | Greedy -> [ (Greedy, Tier.Greedy) ]
  in
  let rec go = function
    | [] ->
        let canon = Canonical.canonicalize ctx.Galley_stats.Ctx.schema expr in
        let r = (naive ctx ~fresh ~name ~out_order canon, Tier.Naive) in
        if Provenance.enabled () then
          Provenance.rung ~phase:"logical" ~query:name ~tier:"naive"
            ~outcome:"served" ();
        r
    | (s, t) :: rest -> (
        try
          let r =
            Galley_obs.span ~cat:"optimize"
              ~name:("logical.rung:" ^ Tier.to_string t)
              ~attrs:(fun () -> [ ("query", name) ])
              (fun () -> attempt s)
          in
          if Provenance.enabled () then
            Provenance.rung ~phase:"logical" ~query:name
              ~tier:(Tier.to_string t) ~outcome:"served" ~nodes:(rung_nodes ())
              ~cost:r.cost ();
          (r, t)
        with Tier.Exhausted ->
          if degrade then begin
            Galley_obs.Metrics.incr_named "optimizer.logical.rung_exhausted";
            if Provenance.enabled () then
              Provenance.rung ~phase:"logical" ~query:name
                ~tier:(Tier.to_string t) ~outcome:"exhausted"
                ~nodes:(rung_nodes ()) ();
            go rest
          end
          else raise Tier.Exhausted)
  in
  let r, tier = go rungs in
  Galley_obs.Metrics.incr_named
    ("optimizer.logical.tier." ^ Tier.to_string tier);
  (r, tier)

let optimize_query_tiered ?deadline ?degrade (cfg : config)
    (ctx : Galley_stats.Ctx.t) ~(fresh : unit -> string) (q : Ir.query) :
    result * Tier.t =
  optimize_expr_tiered ?deadline ?degrade cfg ctx ~fresh ~name:q.Ir.name
    ~out_order:q.Ir.out_order q.Ir.expr

let optimize_query (cfg : config) (ctx : Galley_stats.Ctx.t)
    ~(fresh : unit -> string) (q : Ir.query) : result =
  fst (optimize_query_tiered cfg ctx ~fresh q)

(* Optimize a whole program: queries are processed in order; each query's
   output is registered as an alias usable by later queries.  [timeout] is
   a per-query wall-clock budget (seconds); the second component records
   which ladder tier served each input query. *)
let optimize_program_tiered ?(timeout : float option) ?degrade (cfg : config)
    (ctx : Galley_stats.Ctx.t) (p : Ir.program) :
    Logical_query.t list * (string * Tier.t) list =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "#t%d" !counter
  in
  let tiers = ref [] in
  let queries =
    List.concat_map
      (fun (q : Ir.query) ->
        let deadline =
          Option.map (fun s -> Unix.gettimeofday () +. s) timeout
        in
        let r, tier = optimize_query_tiered ?deadline ?degrade cfg ctx ~fresh q in
        tiers := (q.Ir.name, tier) :: !tiers;
        r.queries)
      p.Ir.queries
  in
  (queries, List.rev !tiers)

let optimize_program (cfg : config) (ctx : Galley_stats.Ctx.t)
    (p : Ir.program) : Logical_query.t list =
  fst (optimize_program_tiered cfg ctx p)
