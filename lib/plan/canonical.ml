(* Canonicalization of input programs (paper Sec. 5.1) and canonical hashing
   for common sub-expression elimination (paper Sec. 8.2).

   The canonicalization rules, applied exhaustively:
     1. merge nested Map operators with the same associative operator;
     2. merge nested Agg operators with the same operator;
     3. lift Agg operators above Map operators when the pointwise operator
        distributes over the aggregate and no other Map argument mentions
        the aggregated indices;
     4. rename aggregate-bound indices to be globally unique;
   plus housekeeping: drop empty aggregates, unwrap singleton variadic maps,
   fold all-literal maps, and turn aggregates over indices absent from their
   body into an explicit repeated-application Map. *)

let fresh_counter = ref 0

let fresh_idx (base : Ir.idx) : Ir.idx =
  incr fresh_counter;
  Printf.sprintf "%s#%d" base !fresh_counter

(* Rule 4: make every Agg binder unique and distinct from free indices. *)
let uniquify (e : Ir.expr) : Ir.expr =
  let free = Ir.free_indices e in
  let seen_binders = ref free in
  let rename subst i =
    match Ir.Idx_map.find_opt i subst with Some j -> j | None -> i
  in
  let rec go (subst : Ir.idx Ir.Idx_map.t) (e : Ir.expr) : Ir.expr =
    match e with
    | Ir.Input (n, idxs) -> Ir.Input (n, List.map (rename subst) idxs)
    | Ir.Alias (n, idxs) -> Ir.Alias (n, List.map (rename subst) idxs)
    | Ir.Literal _ -> e
    | Ir.Map (op, args) -> Ir.Map (op, List.map (go subst) args)
    | Ir.Agg (op, idxs, body) ->
        let subst, idxs =
          List.fold_left_map
            (fun subst i ->
              if Ir.Idx_set.mem i !seen_binders then begin
                let j = fresh_idx i in
                seen_binders := Ir.Idx_set.add j !seen_binders;
                (Ir.Idx_map.add i j subst, j)
              end
              else begin
                seen_binders := Ir.Idx_set.add i !seen_binders;
                (subst, i)
              end)
            subst idxs
        in
        Ir.Agg (op, idxs, go subst body)
  in
  go Ir.Idx_map.empty e

(* One bottom-up simplification pass; [dims] is needed to rewrite aggregates
   over absent indices into repeated application. *)
let rec simplify_once (dims : int Ir.Idx_map.t) (e : Ir.expr) : Ir.expr =
  match e with
  | Ir.Input _ | Ir.Alias _ | Ir.Literal _ -> e
  | Ir.Map (op, args) -> (
      let args = List.map (simplify_once dims) args in
      (* Rule 1: flatten nested variadic maps with the same operator. *)
      let args =
        if Op.is_associative op then
          List.concat_map
            (fun a ->
              match a with Ir.Map (op', args') when op' = op -> args' | _ -> [ a ])
            args
        else args
      in
      (* Fold literals. *)
      let lits, rest =
        List.partition (fun a -> match a with Ir.Literal _ -> true | _ -> false) args
      in
      let args =
        if Op.is_commutative op && List.length lits >= 2 then begin
          let v =
            Op.apply op
              (Array.of_list
                 (List.map
                    (fun a -> match a with Ir.Literal v -> v | _ -> assert false)
                    lits))
          in
          Ir.Literal v :: rest
        end
        else args
      in
      match args with
      | [ a ] when Op.arity op = Op.Variadic || op = Op.Ident -> a
      | [ Ir.Literal v ] when Op.arity op = Op.Unary -> Ir.Literal (Op.apply1 op v)
      | [ Ir.Literal a; Ir.Literal b ] when Op.arity op = Op.Binary ->
          Ir.Literal (Op.apply2 op a b)
      | args -> lift_aggregates dims op args)
  | Ir.Agg (op, idxs, body) -> (
      let body = simplify_once dims body in
      if idxs = [] then body
      else
        (* Split indices into those present in the body and those absent;
           absent ones contribute a repeated application g(x, n). *)
        let free = Ir.free_indices body in
        let present, absent = List.partition (fun i -> Ir.Idx_set.mem i free) idxs in
        let wrap_absent e =
          List.fold_left
            (fun e i ->
              let n = Schema.dim_of_idx dims i in
              (* [Ir.repeat_expr] carries the per-aggregate algebra,
                 including the 0/1 normalization Or/And need (they are
                 idempotent only up to truthiness). *)
              match Ir.repeat_expr op e n with
              | Some e' -> e'
              | None -> Ir.Agg (op, [ i ], e) (* keep: no closed form *))
            e absent
        in
        let core =
          if present = [] then body
          else
            (* Rule 2: merge directly nested aggregates with the same op. *)
            match body with
            | Ir.Agg (op', idxs', body') when op' = op ->
                Ir.Agg (op, present @ idxs', body')
            | _ -> Ir.Agg (op, present, body)
        in
        wrap_absent core)

(* Rule 3: given Map (op, args) where some argument is an aggregate that op
   distributes over (or where op is the same commutative operator), lift the
   aggregate above the map when no *other* argument mentions its indices. *)
and lift_aggregates (dims : int Ir.Idx_map.t) (op : Op.t)
    (args : Ir.expr list) : Ir.expr =
  let try_lift () =
    let rec split before = function
      | [] -> None
      | Ir.Agg (agg_op, idxs, body) :: after
        when Op.distributes_over ~pointwise:op ~aggregate:agg_op
             && List.for_all
                  (fun other ->
                    List.for_all (fun i -> not (Ir.mentions other i)) idxs)
                  (List.rev_append before after) ->
          Some (List.rev before, (agg_op, idxs, body), after)
      | a :: after -> split (a :: before) after
    in
    split [] args
  in
  match try_lift () with
  | Some (before, (agg_op, idxs, body), after) ->
      simplify_once dims
        (Ir.Agg (agg_op, idxs, Ir.Map (op, before @ (body :: after))))
  | None -> Ir.Map (op, args)

let rec simplify (dims : int Ir.Idx_map.t) (e : Ir.expr) : Ir.expr =
  let e' = simplify_once dims e in
  if e' = e then e else simplify dims e'

(* Full canonicalization of a query expression. *)
let canonicalize (schema : Schema.t) (e : Ir.expr) : Ir.expr =
  let e = uniquify e in
  let dims = Schema.index_dims schema e in
  simplify dims e

(* ------------------------------------------------------------------ *)
(* Canonical keys for common sub-expression elimination.                *)
(* ------------------------------------------------------------------ *)

(* A canonical string for an expression: indices are renamed in first-
   occurrence order of a canonical traversal, and the children of
   commutative operators are sorted by their canonical strings.  Two
   expressions with equal keys denote the same tensor (given equal input
   bindings), up to index naming. *)
let canonical_key ?(resolve_alias = fun (n : string) -> n) (e : Ir.expr) :
    string =
  let rec key (env : (Ir.idx, int) Hashtbl.t) (next : int ref) (e : Ir.expr) :
      string =
    let idx_key i =
      match Hashtbl.find_opt env i with
      | Some k -> Printf.sprintf "$%d" k
      | None ->
          let k = !next in
          incr next;
          Hashtbl.add env i k;
          Printf.sprintf "$%d" k
    in
    match e with
    | Ir.Input (n, idxs) ->
        Printf.sprintf "I:%s[%s]" n (String.concat "," (List.map idx_key idxs))
    | Ir.Alias (n, idxs) ->
        Printf.sprintf "A:{%s}[%s]" (resolve_alias n)
          (String.concat "," (List.map idx_key idxs))
    | Ir.Literal v -> Printf.sprintf "L:%h" v
    | Ir.Map (op, args) ->
        let keys =
          if Op.is_commutative op then
            (* Sort by a naming-independent preliminary key so the final
               index numbering does not depend on the original order. *)
            let pre =
              List.map
                (fun a ->
                  let k = key (Hashtbl.create 8) (ref 0) a in
                  (k, a))
                args
            in
            let sorted = List.sort (fun (k1, _) (k2, _) -> compare k1 k2) pre in
            List.map (fun (_, a) -> key env next a) sorted
          else List.map (key env next) args
        in
        Printf.sprintf "M:%s(%s)" (Op.to_string op) (String.concat ";" keys)
    | Ir.Agg (op, idxs, body) ->
        let bound = List.map idx_key idxs in
        Printf.sprintf "G:%s[%s](%s)" (Op.to_string op)
          (String.concat "," bound)
          (key env next body)
  in
  key (Hashtbl.create 16) (ref 0) e
