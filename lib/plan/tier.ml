(* Degradation tiers and search budgets for the optimizers.

   Both the logical and the physical optimizer run a ladder of search
   strategies: exact branch-and-bound / DP first, greedy second, and a
   naive estimate-free fallback last.  A [budget] bounds one rung of the
   ladder by wall clock and/or expanded search nodes; exceeding it (or
   encountering a non-finite cost estimate) raises [Exhausted], which the
   ladder catches to fall to the next rung.  The fallback rung makes no
   estimator calls and checks no budget, so optimization itself can never
   fail a query. *)

type t = Exact | Greedy | Naive

let to_string = function
  | Exact -> "exact"
  | Greedy -> "greedy"
  | Naive -> "naive"

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* The tier actually served is the requested one or a degradation of it. *)
let rank = function Exact -> 2 | Greedy -> 1 | Naive -> 0

exception Exhausted

type budget = {
  deadline : float option; (* absolute, Unix.gettimeofday scale *)
  max_nodes : int option;
  mutable nodes : int;
}

let budget ?deadline ?max_nodes () : budget = { deadline; max_nodes; nodes = 0 }

(* Candidates expanded across all budgeted searches, for the metrics
   report; [budget.nodes] remains the per-rung count. *)
let m_search_nodes = Galley_obs.Metrics.counter "optimizer.search_nodes"

(* Count one expanded search node; raise when the budget is gone. *)
let tick (b : budget) : unit =
  b.nodes <- b.nodes + 1;
  Galley_obs.Metrics.incr m_search_nodes;
  (match b.max_nodes with
  | Some m when b.nodes > m -> raise Exhausted
  | _ -> ());
  (* >= so a zero-second budget is exhausted even within the clock's
     resolution of its creation *)
  match b.deadline with
  | Some d when Unix.gettimeofday () >= d -> raise Exhausted
  | _ -> ()

let tick_opt (b : budget option) : unit =
  match b with Some b -> tick b | None -> ()

(* Cost estimates must be finite to steer a search; a NaN or overflowed
   estimate (e.g. from a faulty estimator) exhausts the rung instead of
   silently corrupting every comparison against it. *)
let finite (c : float) : float = if Float.is_finite c then c else raise Exhausted

(* QoS knob: map a per-request wall-clock budget (seconds) to the highest
   optimizer tier that can be afforded (DESIGN.md "Serving").  A tight
   budget cannot pay for plan search: under [naive_below] seconds the
   request gets the estimate-free naive rung; under [greedy_below] the
   greedy search; anything slower (or unbudgeted) gets the exact search.
   `galley serve` threads its thresholds through here, so a 50 ms
   interactive budget lands on [Naive] while a batch request keeps
   [Exact]. *)
let of_budget ?(naive_below = 0.1) ?(greedy_below = 1.0) (budget_s : float) : t
    =
  if budget_s < naive_below then Naive
  else if budget_s < greedy_below then Greedy
  else Exact

(* Per-tier count summary, e.g. for bench output. *)
let counts (tiers : (string * t) list) : int * int * int =
  List.fold_left
    (fun (e, g, n) (_, t) ->
      match t with
      | Exact -> (e + 1, g, n)
      | Greedy -> (e, g + 1, n)
      | Naive -> (e, g, n + 1))
    (0, 0, 0) tiers
