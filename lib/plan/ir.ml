(* Plan IR for the input-program and logical dialects (paper Fig. 4).

   A program is a sequence of named queries.  Expressions mix [Map]
   (pointwise application), [Agg] (aggregation over a set of index
   variables), tensor [Input]s, references to previously computed queries
   ([Alias]), and scalar [Literal]s.  The *logical* dialect is the
   restriction where each query is a single Agg wrapping an Agg-free
   expression (see {!Logical_query}). *)

type idx = string

module Idx_set = Set.Make (String)
module Idx_map = Map.Make (String)

type expr =
  | Input of string * idx list
  | Alias of string * idx list
  | Literal of float
  | Map of Op.t * expr list
  | Agg of Op.t * idx list * expr

(* [out_order], when given, fixes the dimension order of the query's output
   tensor; otherwise the (sorted) free indices of [expr] are used. *)
type query = { name : string; expr : expr; out_order : idx list option }

type program = { queries : query list; outputs : string list }

(* ------------------------------------------------------------------ *)
(* Statement-level dialect: straight-line queries plus fixpoints.       *)
(* ------------------------------------------------------------------ *)

(* A fixpoint construct (the `iterate` statement of the .gly language):
   the body is an ordinary program fragment run once per iteration.
   Body statements are either iteration-local definitions (`=`) or
   loop-carried updates (`:=`, [u_carried] below).  Carried updates have
   Gauss-Seidel semantics: each takes effect immediately for statements
   after it in the same iteration (a statement's own right-hand side
   still sees the previous value).  A primed name `X'` anywhere in the
   body or condition denotes the value X held at the start of the
   iteration.  The `until` condition, when present, is evaluated after
   the body as a scalar Galley query over the new bindings; nonzero
   means converged. *)
type body_stmt = { u_query : query; u_carried : bool }

type fixpoint = {
  fix_name : string; (* result name; must be one of the carried names *)
  fix_max_iters : int option; (* None = subsystem default *)
  fix_cond : expr option; (* until-condition; None = run max_iters times *)
  fix_body : body_stmt list;
}

type stmt = Query_stmt of query | Fix_stmt of fixpoint

type xprogram = { stmts : stmt list; xoutputs : string list }

let carried_names (f : fixpoint) : string list =
  List.sort_uniq compare
    (List.filter_map
       (fun u -> if u.u_carried then Some u.u_query.name else None)
       f.fix_body)

let has_fixpoint (p : xprogram) : bool =
  List.exists (function Fix_stmt _ -> true | Query_stmt _ -> false) p.stmts

(* The straight-line restriction of an xprogram, when it has no
   fixpoints (legacy entry points). *)
let program_of_xprogram (p : xprogram) : program option =
  if has_fixpoint p then None
  else
    Some
      {
        queries =
          List.filter_map
            (function Query_stmt q -> Some q | Fix_stmt _ -> None)
            p.stmts;
        outputs = p.xoutputs;
      }

let xprogram_of_program (p : program) : xprogram =
  {
    stmts = List.map (fun q -> Query_stmt q) p.queries;
    xoutputs = p.outputs;
  }

(* ------------------------------------------------------------------ *)
(* Smart constructors.                                                  *)
(* ------------------------------------------------------------------ *)

let input name idxs = Input (name, idxs)
let alias name idxs = Alias (name, idxs)
let lit v = Literal v

let map op args =
  (match (Op.arity op, List.length args) with
  | Op.Unary, 1 | Op.Binary, 2 -> ()
  | Op.Variadic, n when n >= 1 -> ()
  | _ ->
      invalid_arg
        (Printf.sprintf "Ir.map: %s applied to %d arguments" (Op.to_string op)
           (List.length args)));
  Map (op, args)

let agg op idxs body =
  if not (Op.is_aggregate op) then
    invalid_arg ("Ir.agg: not an aggregate operator: " ^ Op.to_string op);
  Agg (op, idxs, body)

let sum idxs body = agg Op.Add idxs body
let mul args = map Op.Mul args
let add args = map Op.Add args

let query ?out_order name expr = { name; expr; out_order }

(* ------------------------------------------------------------------ *)
(* Index accounting.                                                    *)
(* ------------------------------------------------------------------ *)

(* Index variables free in [e]: appearing in a leaf and not bound by an
   enclosing Agg *inside* [e].  These are the output indices of the
   tensor [e] denotes. *)
let rec free_indices (e : expr) : Idx_set.t =
  match e with
  | Input (_, idxs) | Alias (_, idxs) -> Idx_set.of_list idxs
  | Literal _ -> Idx_set.empty
  | Map (_, args) ->
      List.fold_left
        (fun acc a -> Idx_set.union acc (free_indices a))
        Idx_set.empty args
  | Agg (_, idxs, body) ->
      Idx_set.diff (free_indices body) (Idx_set.of_list idxs)

(* All index variables mentioned anywhere in [e]. *)
let rec all_indices (e : expr) : Idx_set.t =
  match e with
  | Input (_, idxs) | Alias (_, idxs) -> Idx_set.of_list idxs
  | Literal _ -> Idx_set.empty
  | Map (_, args) ->
      List.fold_left
        (fun acc a -> Idx_set.union acc (all_indices a))
        Idx_set.empty args
  | Agg (_, idxs, body) ->
      Idx_set.union (Idx_set.of_list idxs) (all_indices body)

(* Indices bound by some Agg inside [e]. *)
let aggregated_indices (e : expr) : Idx_set.t =
  Idx_set.diff (all_indices e) (free_indices e)

let rec contains_agg (e : expr) : bool =
  match e with
  | Agg _ -> true
  | Map (_, args) -> List.exists contains_agg args
  | Input _ | Alias _ | Literal _ -> false

(* Does the subtree mention index [i] freely? *)
let mentions (e : expr) (i : idx) : bool = Idx_set.mem i (free_indices e)

(* Tensor names referenced as inputs / aliases. *)
let rec referenced_names (e : expr) : (string * [ `Input | `Alias ]) list =
  match e with
  | Input (n, _) -> [ (n, `Input) ]
  | Alias (n, _) -> [ (n, `Alias) ]
  | Literal _ -> []
  | Map (_, args) -> List.concat_map referenced_names args
  | Agg (_, _, body) -> referenced_names body

(* ------------------------------------------------------------------ *)
(* Structural transforms.                                               *)
(* ------------------------------------------------------------------ *)

let rec rename_indices (subst : idx Idx_map.t) (e : expr) : expr =
  let r i = match Idx_map.find_opt i subst with Some j -> j | None -> i in
  match e with
  | Input (n, idxs) -> Input (n, List.map r idxs)
  | Alias (n, idxs) -> Alias (n, List.map r idxs)
  | Literal _ -> e
  | Map (op, args) -> Map (op, List.map (rename_indices subst) args)
  | Agg (op, idxs, body) ->
      Agg (op, List.map r idxs, rename_indices subst body)

(* Replace every occurrence of subexpression [target] (physical equality or
   structural equality) with [by]. *)
let rec replace_subexpr ~(target : expr) ~(by : expr) (e : expr) : expr =
  if e == target || e = target then by
  else
    match e with
    | Input _ | Alias _ | Literal _ -> e
    | Map (op, args) -> Map (op, List.map (replace_subexpr ~target ~by) args)
    | Agg (op, idxs, body) -> Agg (op, idxs, replace_subexpr ~target ~by body)

(* Repeated application of an aggregate over [n] copies of [e] — the
   expression-level counterpart of [Op.repeat], shared by the logical
   elimination and canonicalization rewrites so neither silently assumes
   the (+,×) semiring.  [Max]/[Min] are genuinely idempotent on floats;
   [Or]/[And] are idempotent only up to 0/1 truthiness normalization
   (or(2,2) = 1 ≠ 2), so their closed form must normalize exactly as the
   kernel accumulator does.  Returns [None] when no closed pointwise
   form exists (callers must then keep an explicit aggregate). *)
let repeat_expr (op : Op.t) (e : expr) (n : int) : expr option =
  if n < 1 then None
  else
    match op with
    | Op.Add -> Some (Map (Op.Mul, [ e; Literal (float_of_int n) ]))
    | Op.Mul -> Some (Map (Op.Pow, [ e; Literal (float_of_int n) ]))
    | Op.Max | Op.Min | Op.Ident -> Some e
    | Op.Or | Op.And -> Some (Map (Op.Neq, [ e; Literal 0.0 ]))
    | _ -> None

let rec size (e : expr) : int =
  match e with
  | Input _ | Alias _ | Literal _ -> 1
  | Map (_, args) -> 1 + List.fold_left (fun a e -> a + size e) 0 args
  | Agg (_, _, body) -> 1 + size body

(* ------------------------------------------------------------------ *)
(* Pretty printing.                                                     *)
(* ------------------------------------------------------------------ *)

let pp_idx_list fmt idxs =
  Format.fprintf fmt "%s" (String.concat "," idxs)

let rec pp_expr fmt (e : expr) =
  match e with
  | Input (n, idxs) -> Format.fprintf fmt "%s[%a]" n pp_idx_list idxs
  | Alias (n, idxs) -> Format.fprintf fmt "@@%s[%a]" n pp_idx_list idxs
  | Literal v -> Format.fprintf fmt "%g" v
  | Map (op, args) ->
      Format.fprintf fmt "@[<hov 2>Map(%s,@ %a)@]" (Op.to_string op)
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
           pp_expr)
        args
  | Agg (op, idxs, body) ->
      Format.fprintf fmt "@[<hov 2>Agg(%s,@ [%a],@ %a)@]" (Op.to_string op)
        pp_idx_list idxs pp_expr body

let pp_query fmt (q : query) =
  Format.fprintf fmt "@[<hov 2>Query(%s,@ %a)@]" q.name pp_expr q.expr

let pp_program fmt (p : program) =
  Format.fprintf fmt "@[<v>%a@,outputs: %s@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_query)
    p.queries
    (String.concat ", " p.outputs)

let pp_stmt fmt (s : stmt) =
  match s with
  | Query_stmt q -> pp_query fmt q
  | Fix_stmt f ->
      Format.fprintf fmt "@[<v 2>Iterate(%s%s%s)@,%a@]" f.fix_name
        (match f.fix_max_iters with
        | Some n -> Printf.sprintf ", max=%d" n
        | None -> "")
        (match f.fix_cond with
        | Some c -> ", until=" ^ Format.asprintf "%a" pp_expr c
        | None -> "")
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt u ->
             Format.fprintf fmt "%s%a"
               (if u.u_carried then ":= " else "= ")
               pp_query u.u_query))
        f.fix_body

let pp_xprogram fmt (p : xprogram) =
  Format.fprintf fmt "@[<v>%a@,outputs: %s@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt)
    p.stmts
    (String.concat ", " p.xoutputs)

let expr_to_string e = Format.asprintf "%a" pp_expr e
let query_to_string q = Format.asprintf "%a" pp_query q
let program_to_string p = Format.asprintf "%a" pp_program p
let xprogram_to_string p = Format.asprintf "%a" pp_xprogram p
