(* Structural diffing of physical plans (DESIGN.md §16).

   The fixpoint runner re-optimizes between iterations; when the plan
   switches, a raw string inequality only says *that* it changed.  This
   module says *what* changed: steps are joined by result name (stable
   across replans of the same program) and compared field by field, so
   a switch report can name the kernel whose loop order flipped or the
   tensor whose output format changed — which, combined with the
   refreshed carried-tensor statistics, explains *why* the optimizer
   moved. *)

type change =
  | Step_added of string  (* step name present only in the new plan *)
  | Step_removed of string  (* step name present only in the old plan *)
  | Loop_order of { kernel : string; before : string; after : string }
  | Formats of { name : string; before : string; after : string }
  | Protocols of { kernel : string; before : string; after : string }
  | Transpose_perm of { name : string; before : string; after : string }
  | Kind_changed of string  (* kernel on one side, transpose on the other *)
  | Body_changed of string  (* same name, differing body/aggregate shape *)

let step_name (s : Physical.step) : string =
  match s with Physical.Kernel k -> k.Physical.name | Physical.Transpose t -> t.name

let formats_str fs =
  String.concat ","
    (Array.to_list (Array.map Galley_tensor.Tensor.format_to_string fs))

let protocols_str (k : Physical.kernel) =
  String.concat ";"
    (Array.to_list
       (Array.map
          (fun (a : Physical.access) ->
            a.tensor ^ ":"
            ^ String.concat ","
                (List.map Physical.protocol_to_string a.protocols))
          k.accesses))

let perm_str p = String.concat "," (Array.to_list (Array.map string_of_int p))

let diff_step (a : Physical.step) (b : Physical.step) : change list =
  match (a, b) with
  | Physical.Kernel ka, Physical.Kernel kb ->
      let changes = ref [] in
      let la = String.concat "," ka.loop_order
      and lb = String.concat "," kb.loop_order in
      if la <> lb then
        changes :=
          Loop_order { kernel = ka.name; before = la; after = lb } :: !changes;
      let fa = formats_str ka.output_formats
      and fb = formats_str kb.output_formats in
      if fa <> fb then
        changes :=
          Formats { name = ka.name; before = fa; after = fb } :: !changes;
      let pa = protocols_str ka and pb = protocols_str kb in
      if pa <> pb then
        changes :=
          Protocols { kernel = ka.name; before = pa; after = pb } :: !changes;
      (* Catch-all for shape changes the field checks above don't cover
         (aggregate, body expression, access index lists). *)
      if
        !changes = []
        && Physical.plan_to_string [ a ] <> Physical.plan_to_string [ b ]
      then changes := [ Body_changed ka.name ];
      List.rev !changes
  | Physical.Transpose ta, Physical.Transpose tb ->
      let changes = ref [] in
      let pa = perm_str ta.perm and pb = perm_str tb.perm in
      if pa <> pb then
        changes :=
          Transpose_perm { name = ta.name; before = pa; after = pb } :: !changes;
      let fa = formats_str ta.formats and fb = formats_str tb.formats in
      if fa <> fb then
        changes :=
          Formats { name = ta.name; before = fa; after = fb } :: !changes;
      List.rev !changes
  | _ -> [ Kind_changed (step_name a) ]

(* Changes from [before] to [after], in [after]'s step order, with
   removals last.  An empty list means the plans are structurally
   identical (equal up to pretty-printing). *)
let diff (before : Physical.plan) (after : Physical.plan) : change list =
  let old_by_name = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace old_by_name (step_name s) s) before;
  let seen = Hashtbl.create 16 in
  let fwd =
    List.concat_map
      (fun s ->
        let n = step_name s in
        Hashtbl.replace seen n ();
        match Hashtbl.find_opt old_by_name n with
        | None -> [ Step_added n ]
        | Some old -> diff_step old s)
      after
  in
  let removed =
    List.filter_map
      (fun s ->
        let n = step_name s in
        if Hashtbl.mem seen n then None else Some (Step_removed n))
      before
  in
  fwd @ removed

let change_to_string = function
  | Step_added n -> Printf.sprintf "+step %s" n
  | Step_removed n -> Printf.sprintf "-step %s" n
  | Loop_order { kernel; before; after } ->
      Printf.sprintf "%s loops [%s]->[%s]" kernel before after
  | Formats { name; before; after } ->
      Printf.sprintf "%s formats [%s]->[%s]" name before after
  | Protocols { kernel; before; after } ->
      Printf.sprintf "%s protocols [%s]->[%s]" kernel before after
  | Transpose_perm { name; before; after } ->
      Printf.sprintf "%s perm [%s]->[%s]" name before after
  | Kind_changed n -> Printf.sprintf "%s changed step kind" n
  | Body_changed n -> Printf.sprintf "%s body changed" n

(* One short line, e.g. for a per-iteration fixpoint log. *)
let summary (cs : change list) : string =
  match cs with
  | [] -> "identical"
  | _ -> String.concat "; " (List.map change_to_string cs)
