(* Optimizer provenance: a search-trace recorder for the logical and
   physical plan searches (DESIGN.md §16).

   When enabled, the tier ladders and the per-rung searches record the
   candidates they enumerate, the estimated cost of each, prune and
   rejection tallies, and the per-operator cost predictions of the plan
   finally chosen.  The recorder follows the same discipline as
   [Galley_obs.Trace]: off by default ([GALLEY_PROVENANCE=1] or
   [enable] turns it on), one atomic read on the gated path, and the
   hooks only *observe* values the search already computed — enabling
   provenance never makes an extra estimator call, so the chosen plans
   are bit-identical with the recorder on or off.

   [drain] removes and returns everything recorded so far (oldest
   first); `galley explain --analyze` renders it directly, while
   `galley serve` stashes the drained events in a [Store] keyed by the
   plan digest the flight recorder stamps, so `client explain <digest>`
   can replay the search for a long-gone request. *)

type event = {
  pv_kind : string;  (* "rung" | "candidate" | "prune" | "operator" *)
  pv_phase : string;  (* "logical" | "physical" *)
  pv_query : string;  (* logical query name, "" when not per-query *)
  pv_tier : string;  (* rung ("exact" | "greedy" | "naive") *)
  pv_label : string;  (* rung outcome / candidate descr / prune reason
                         / kernel name *)
  pv_cost : float;  (* estimated cost; nan when not applicable *)
  pv_chosen : bool;  (* candidate won its step / rung served the query *)
  pv_attrs : (string * string) list;
}

let env_default () =
  match Sys.getenv_opt "GALLEY_PROVENANCE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let on : bool Atomic.t = Atomic.make (env_default ())
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* The optimizers run on whichever thread planned the query (the CLI
   main thread, or the serve executor); a single mutex-guarded buffer
   is plenty and keeps [drain] trivially complete. *)
let buf : event list ref = ref []
let buf_mutex = Mutex.create ()

let record (ev : event) : unit =
  Mutex.lock buf_mutex;
  buf := ev :: !buf;
  Mutex.unlock buf_mutex

(* Emitters.  Call sites gate on [enabled ()] *before* building any
   description strings; the checks here are belt-and-braces so a stray
   unguarded call cannot record into a disabled buffer. *)

let rung ~phase ~query ~tier ~outcome ?(nodes = 0) ?(cost = Float.nan) () =
  if Atomic.get on then
    record
      {
        pv_kind = "rung";
        pv_phase = phase;
        pv_query = query;
        pv_tier = tier;
        pv_label = outcome;
        pv_cost = cost;
        pv_chosen = outcome = "served";
        pv_attrs = [ ("nodes", string_of_int nodes) ];
      }

let candidate ~phase ~query ~tier ~descr ~cost ~chosen ?(attrs = []) () =
  if Atomic.get on then
    record
      {
        pv_kind = "candidate";
        pv_phase = phase;
        pv_query = query;
        pv_tier = tier;
        pv_label = descr;
        pv_cost = cost;
        pv_chosen = chosen;
        pv_attrs = attrs;
      }

let prune ~phase ~query ~tier ~reason ?(count = 1) () =
  if Atomic.get on then
    record
      {
        pv_kind = "prune";
        pv_phase = phase;
        pv_query = query;
        pv_tier = tier;
        pv_label = reason;
        pv_cost = Float.nan;
        pv_chosen = false;
        pv_attrs = [ ("count", string_of_int count) ];
      }

(* One chosen physical operator with its predicted cost and output nnz
   — the prediction side of the `explain --analyze` join. *)
let operator ~query ~kernel ~cost ?(attrs = []) () =
  if Atomic.get on then
    record
      {
        pv_kind = "operator";
        pv_phase = "physical";
        pv_query = query;
        pv_tier = "";
        pv_label = kernel;
        pv_cost = cost;
        pv_chosen = true;
        pv_attrs = attrs;
      }

(* Remove and return all recorded events, oldest first. *)
let drain () : event list =
  Mutex.lock buf_mutex;
  let evs = !buf in
  buf := [];
  Mutex.unlock buf_mutex;
  List.rev evs

let reset () = ignore (drain ())

(* ------------------------------------------------------------------ *)
(* JSON rendering (single line per event, JSONL- and store-friendly).  *)
(* ------------------------------------------------------------------ *)

let esc = Galley_obs.Metrics.json_escape

let event_to_json (ev : event) : string =
  let b = Buffer.create 160 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"kind\":\"%s\",\"phase\":\"%s\",\"query\":\"%s\",\"tier\":\"%s\",\"label\":\"%s\""
       (esc ev.pv_kind) (esc ev.pv_phase) (esc ev.pv_query) (esc ev.pv_tier)
       (esc ev.pv_label));
  if Float.is_finite ev.pv_cost then
    Buffer.add_string b (Printf.sprintf ",\"cost\":%.6g" ev.pv_cost);
  if ev.pv_chosen then Buffer.add_string b ",\"chosen\":true";
  (match ev.pv_attrs with
  | [] -> ()
  | attrs ->
      Buffer.add_string b ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v)))
        attrs;
      Buffer.add_char b '}');
  Buffer.add_char b '}';
  Buffer.contents b

let events_to_json (evs : event list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_char b '[';
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (event_to_json ev))
    evs;
  Buffer.add_char b ']';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Digest-keyed retention for `galley serve` (bounded ring, same        *)
(* spirit as the flight recorder).                                      *)
(* ------------------------------------------------------------------ *)

module Store = struct
  type entry = { st_digest : string; st_json : string }

  type t = {
    slots : entry option array;
    mutable head : int;
    mutex : Mutex.t;
  }

  let create ~capacity () : t =
    if capacity <= 0 then
      invalid_arg "Provenance.Store.create: capacity must be positive";
    { slots = Array.make capacity None; head = 0; mutex = Mutex.create () }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  (* Retain [json] under [digest]; an existing entry for the same plan
     is refreshed in place (replans of a hot plan don't evict others). *)
  let put (t : t) ~digest (json : string) : unit =
    locked t (fun () ->
        let n = Array.length t.slots in
        let existing = ref None in
        for i = 0 to n - 1 do
          match t.slots.(i) with
          | Some e when e.st_digest = digest -> existing := Some i
          | _ -> ()
        done;
        let slot =
          match !existing with
          | Some i -> i
          | None ->
              let i = t.head in
              t.head <- (t.head + 1) mod n;
              i
        in
        t.slots.(slot) <- Some { st_digest = digest; st_json = json })

  let get (t : t) (digest : string) : string option =
    locked t (fun () ->
        let found = ref None in
        Array.iter
          (function
            | Some e when e.st_digest = digest -> found := Some e.st_json
            | _ -> ())
          t.slots;
        !found)

  let digests (t : t) : string list =
    locked t (fun () ->
        Array.to_list t.slots
        |> List.filter_map (function
             | Some e -> Some e.st_digest
             | None -> None))
end
