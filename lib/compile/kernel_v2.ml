(* Feature gates for the v2 kernel layer (DESIGN.md §14).

   Three independent switches, all defaulting from one environment
   variable so a whole process (CI job, serve daemon) flips together:

   - [micro]: innermost-level dense microkernels — unboxed float-array
     inner loops replacing per-element binder/cursor dispatch;
   - [bits]: word-level bitset intersection/union for all-bytemap loop
     levels, replacing byte-at-a-time mask probing;
   - [morsel]: morsel-driven work distribution for parallel kernels,
     replacing the static 4×pool-size outermost chunking.

   [GALLEY_KERNEL_V2=0] (or off/false/no) selects the v1 paths; anything
   else — including unset — selects v2.  The refs are read at kernel
   *compile* time ([micro]/[bits]) or batch *launch* time ([morsel]), so
   benchmarks toggle them directly around a fresh compile; every path is
   bit-identical either way, the switch is purely about speed. *)

let default_on =
  match Sys.getenv_opt "GALLEY_KERNEL_V2" with
  | Some ("0" | "off" | "false" | "no") -> false
  | _ -> true

let micro = ref default_on
let bits = ref default_on
let morsel = ref default_on

let set_all (b : bool) : unit =
  micro := b;
  bits := b;
  morsel := b
