(* Staged kernel backend: the compiled counterpart of the constraint-tree
   interpreter in [lib/engine/kernel_exec.ml].

   [compile] runs once per kernel structure: the body is fused into one
   scalar closure ([Body_fuse]), and every per-level decision is resolved
   into a candidate generator and a binder ([Lowering]).  The returned
   [run] only walks the precompiled level array — like the interpreter's,
   it takes the (structurally identical) kernel of the call site, so one
   compiled closure serves every dimension size and the engine's
   signature-keyed kernel cache works unchanged.

   Aggregates are fill-corrected at freeze time exactly as in the
   interpreter: enumeration covers a superset of the body's non-fill
   coordinates, and each skipped coordinate contributes the body fill,
   folded in as g(body_fill, N_agg − count) per output cell (DESIGN.md).

   Parallel execution (DESIGN.md "Parallel runtime"): given a domain
   [?pool], [run] chunks the *outermost* level's candidates across the
   pool.  Level-0 generators and probes depend only on the access root
   nodes (an access's first index binds at its index's loop level, and
   indices are concordant with the loop order, so a level-0 binding is
   always an access's first), so the candidate base computed once on the
   submitting domain is shared read-only; each chunk walks levels 1.. on
   its own private [Lowering.state] and records its innermost
   accumulations — flattened output coordinates plus the fused body value
   — into a private log.  The logs are then replayed into the single
   output builder in chunk order, which reproduces the serial
   accumulation sequence *exactly*: same cells, same combine order, same
   sequential writes for sorted-list levels.  Results are therefore
   bit-identical to the serial path for every aggregate, format, and
   chunking, at the cost of making accumulation the serial tail. *)

open Galley_plan
module T = Galley_tensor.Tensor
module Bitset = Galley_tensor.Bitset
module Builder = Galley_tensor.Builder
module Vec = Galley_tensor.Vec
module Pool = Galley_parallel.Pool
module Morsel = Galley_parallel.Morsel
module Obs = Galley_obs

exception Timeout

(* Deadline-cadence observability (satellite of DESIGN.md §9): tick
   counts are flushed to metrics in coarse 8192-tick quanta from the
   same periodic branch that checks the clock, so the per-tick fast
   path stays a single increment.  [kernel.cancel_latency_ticks] is the
   number of (coarse) ticks the whole batch kept running after the
   first chunk set the cancel flag — the wind-down cost of a timeout. *)
let m_deadline_ticks = Obs.Metrics.counter "kernel.deadline_ticks"
let m_chunks = Obs.Metrics.counter "kernel.chunks"
let m_cancel_latency = Obs.Metrics.gauge "kernel.cancel_latency_ticks"

(* Morsel-driven scheduling (DESIGN.md §14): total morsels dispensed,
   and morsels a lane processed beyond its fair share of the batch —
   the work stolen from slower lanes, so skew is observable. *)
let m_morsels = Obs.Metrics.counter "kernel.morsels"
let m_steals = Obs.Metrics.counter "kernel.steals"

let domain_counter prefix =
  Obs.Metrics.counter
    (prefix ^ ".domain" ^ string_of_int (Domain.self () :> int))

type compiled = {
  run :
    ?deadline:float -> ?pool:Pool.t -> Physical.kernel -> T.t array -> T.t;
  describe : string;
      (* "idx:strategy" per level, e.g. "i:inter(sparse&hash) j:sparse" —
         the merge-algorithm attribution the profiler joins onto kernel
         spans *)
}

let compile (k : Physical.kernel) ~(access_fills : float array)
    ~(access_formats : T.format array array) : compiled =
  let plan = Lowering.lower k ~access_fills ~access_formats in
  let describe =
    String.concat " "
      (List.mapi
         (fun l x -> x ^ ":" ^ plan.Lowering.p_desc.(l))
         k.Physical.loop_order)
  in
  let body = Body_fuse.stage k.Physical.body in
  let levels = plan.Lowering.p_levels in
  let n_levels = Array.length levels in
  let out_rank = plan.Lowering.p_out_rank in
  let agg_op = k.Physical.agg_op in
  let identity =
    match Op.identity agg_op with Some e -> e | None -> 0.0 (* Ident *)
  in
  let combine = if agg_op = Op.Ident then fun _ v -> v else Op.apply2 agg_op in
  let body_fill = k.Physical.body_fill in
  let run ?deadline ?pool (kc : Physical.kernel) (tensors : T.t array) : T.t =
    (* Size-dependent facts come from the caller's kernel. *)
    let n_agg = int_of_float kc.Physical.agg_space in
    let output_fill = kc.Physical.output_fill in
    let finalize =
      if agg_op = Op.Ident then fun v cnt -> if cnt = 0 then output_fill else v
      else
        fun v cnt ->
        Op.apply2 agg_op v (Op.repeat agg_op body_fill (n_agg - cnt))
    in
    Array.iteri
      (fun a (t : T.t) ->
        if Array.length (T.dims t) <> plan.Lowering.p_acc_arity.(a) then
          invalid_arg
            (Printf.sprintf "Kernel %s: access %d arity mismatch"
               k.Physical.name a))
      tensors;
    let builder =
      Builder.create ~dims:kc.Physical.output_dims
        ~formats:k.Physical.output_formats ~identity ()
    in
    let loop_dims = kc.Physical.loop_dims in
    (* Same deadline cadence as the interpreter: one budget tick per
       candidate and per accumulation, clock checked every 8192 ticks.
       Each chunk carries its own counter; [cancel] folds a timeout (or
       any failure) raised by one chunk into every other chunk's cadence
       so the batch winds down promptly. *)
    let cancel = Atomic.make false in
    (* Coarse-tick value of [m_deadline_ticks] when cancel was first set;
       -1 while no chunk has failed. *)
    let cancel_mark = Atomic.make (-1) in
    let make_check () =
      match deadline with
      | None -> fun () -> ()
      | Some d ->
          let iter_budget = ref 0 in
          fun () ->
            incr iter_budget;
            if !iter_budget land 8191 = 0 then begin
              Obs.Metrics.add m_deadline_ticks 8192;
              Obs.Metrics.add (domain_counter "kernel.deadline_ticks") 8192;
              if Atomic.get cancel || Unix.gettimeofday () > d then
                raise Timeout
            end
    in
    (* The loop nest from [level] down, parameterized over the innermost
       sink so the same walker serves direct accumulation (serial) and
       log recording (parallel chunks).

       When the plan carries a [p_micro] shape, the innermost level runs
       as a dense microkernel: each source is resolved once per level
       visit to its unboxed [Leaf_dense] value array and the inner loop
       reads floats straight out of those arrays — no per-element
       binder-closure dispatch, no [find_value] option allocation.  The
       tick cadence is identical to the generic level (one [check] per
       candidate plus one per accumulation), and any visit whose sources
       do not all resolve to long-enough dense leaves falls back to the
       generic walker, so the execution trace is bit-identical. *)
    let make_go (st : Lowering.state) (check : unit -> unit)
        (sink : int array -> float -> unit) : int -> unit =
      let values = st.Lowering.st_values in
      let coords = st.Lowering.st_coords in
      let micro = plan.Lowering.p_micro in
      let has_micro = match micro with Some _ -> true | None -> false in
      let micro_out =
        match micro with Some m -> m.Lowering.mi_out | None -> None
      in
      let micro_srcs =
        match micro with Some m -> m.Lowering.mi_srcs | None -> [||]
      in
      let micro_n_src = Array.length micro_srcs in
      let micro_accs = Array.map fst micro_srcs in
      let micro_arrs = Array.make micro_n_src [||] in
      let rec go (level : int) : unit =
        if level = n_levels then begin
          check ();
          sink coords (body values)
        end
        else if has_micro && level = n_levels - 1 then begin
          if not (try_micro ()) then generic level
        end
        else generic level
      and generic (level : int) : unit =
        let lv = levels.(level) in
        let bind = lv.Lowering.lv_bind in
        match lv.Lowering.lv_gen st with
        | Lowering.G_full ->
            let n = loop_dims.(level) in
            for i = 0 to n - 1 do
              check ();
              bind st i;
              go (level + 1)
            done
        | Lowering.G_arr arr ->
            Array.iter
              (fun i ->
                check ();
                bind st i;
                go (level + 1))
              arr
        | Lowering.G_filter (arr, probe) ->
            Array.iter
              (fun i ->
                if probe i then begin
                  check ();
                  bind st i;
                  go (level + 1)
                end)
              arr
        | Lowering.G_bits w ->
            Bitset.iter_set w (fun i ->
                check ();
                bind st i;
                go (level + 1))
        | Lowering.G_cur c ->
            while c.Cursors.key <> Cursors.exhausted do
              check ();
              bind st c.Cursors.key;
              go (level + 1);
              c.Cursors.next ()
            done
      and try_micro () : bool =
        let n = loop_dims.(n_levels - 1) in
        let ok = ref true in
        for s = 0 to micro_n_src - 1 do
          let a, j = micro_srcs.(s) in
          match Lowering.prev st a j with
          | Some (T.Leaf_dense vs) when Array.length vs >= n ->
              micro_arrs.(s) <- vs
          | _ -> ok := false
        done;
        !ok
        &&
        (* Specialized inner loops for the dominant shapes: one source
           (axpy/scale rows) and two sources (dot-product/elementwise
           rows), with and without an output coordinate at this level. *)
        ((match (micro_out, micro_n_src) with
         | Some p, 1 ->
             let a0 = micro_accs.(0) and v0 = micro_arrs.(0) in
             for i = 0 to n - 1 do
               check ();
               values.(a0) <- Array.unsafe_get v0 i;
               coords.(p) <- i;
               check ();
               sink coords (body values)
             done
         | Some p, 2 ->
             let a0 = micro_accs.(0) and v0 = micro_arrs.(0) in
             let a1 = micro_accs.(1) and v1 = micro_arrs.(1) in
             for i = 0 to n - 1 do
               check ();
               values.(a0) <- Array.unsafe_get v0 i;
               values.(a1) <- Array.unsafe_get v1 i;
               coords.(p) <- i;
               check ();
               sink coords (body values)
             done
         | Some p, _ ->
             for i = 0 to n - 1 do
               check ();
               for s = 0 to micro_n_src - 1 do
                 values.(micro_accs.(s)) <-
                   Array.unsafe_get micro_arrs.(s) i
               done;
               coords.(p) <- i;
               check ();
               sink coords (body values)
             done
         | None, 1 ->
             let a0 = micro_accs.(0) and v0 = micro_arrs.(0) in
             for i = 0 to n - 1 do
               check ();
               values.(a0) <- Array.unsafe_get v0 i;
               check ();
               sink coords (body values)
             done
         | None, 2 ->
             let a0 = micro_accs.(0) and v0 = micro_arrs.(0) in
             let a1 = micro_accs.(1) and v1 = micro_arrs.(1) in
             for i = 0 to n - 1 do
               check ();
               values.(a0) <- Array.unsafe_get v0 i;
               values.(a1) <- Array.unsafe_get v1 i;
               check ();
               sink coords (body values)
             done
         | None, _ ->
             for i = 0 to n - 1 do
               check ();
               for s = 0 to micro_n_src - 1 do
                 values.(micro_accs.(s)) <-
                   Array.unsafe_get micro_arrs.(s) i
               done;
               check ();
               sink coords (body values)
             done);
         true)
      in
      go
    in
    let serial () =
      let st = Lowering.fresh_state plan tensors in
      let go =
        make_go st (make_check ()) (fun coords v ->
            Builder.accum builder coords v ~combine)
      in
      go 0
    in
    (* Chunk level 0 across the pool; false = not profitable, run serial.

       Two schedules share the same log-and-replay protocol.  The v1
       path cuts the candidate range into 4×pool-size static chunks, one
       task each.  The v2 path ([Kernel_v2.morsel]) cuts it into small
       fixed-size morsels behind an atomic dispenser and runs one task
       per lane, each pulling morsels until the dispenser is dry — a
       lane stuck in a heavy fiber simply pulls fewer morsels, so
       skewed fibers no longer leave lanes idle.  Either way, the
       range→log mapping is a pure function of the chunk/morsel id, so
       replaying logs in id order reproduces the serial accumulation
       sequence exactly: same cells, same combine order, bit-identical
       output at any domain count under any schedule. *)
    let parallel (pool : Pool.t) : bool =
      if n_levels = 0 then false
      else begin
        let st0 = Lowering.fresh_state plan tensors in
        let check0 = make_check () in
        (* Candidate base of the outermost level, computed once and shared
           read-only (level-0 generators and probes read only the root
           nodes).  A cursor is stateful, so it is drained here first; a
           word-merged bitset is materialized the same way. *)
        let base, probe, n_cand =
          match levels.(0).Lowering.lv_gen st0 with
          | Lowering.G_full -> (None, None, loop_dims.(0))
          | Lowering.G_arr arr -> (Some arr, None, Array.length arr)
          | Lowering.G_filter (arr, pr) -> (Some arr, Some pr, Array.length arr)
          | Lowering.G_bits w ->
              let arr = Bitset.to_array w in
              (Some arr, None, Array.length arr)
          | Lowering.G_cur c ->
              let buf = Vec.Int.create ~capacity:64 () in
              while c.Cursors.key <> Cursors.exhausted do
                check0 ();
                Vec.Int.push buf c.Cursors.key;
                c.Cursors.next ()
              done;
              let arr = Vec.Int.to_array buf in
              (Some arr, None, Array.length arr)
        in
        if n_cand < 2 then false
        else begin
          let bind0 = levels.(0).Lowering.lv_bind in
          (* One lane's walk over the candidate range [lo, hi). *)
          let run_range st check go lo hi =
            let visit i =
              check ();
              bind0 st i;
              go 1
            in
            match (base, probe) with
            | None, _ ->
                for i = lo to hi - 1 do
                  visit i
                done
            | Some arr, None ->
                for p = lo to hi - 1 do
                  visit arr.(p)
                done
            | Some arr, Some pr ->
                for p = lo to hi - 1 do
                  let i = arr.(p) in
                  if pr i then visit i
                done
          in
          let log_sink (lc, lv) (coords : int array) : int array -> float -> unit
              =
           fun _ v ->
            for d = 0 to out_rank - 1 do
              Vec.Int.push lc coords.(d)
            done;
            Vec.Float.push lv v
          in
          let on_failure e =
            if not (Atomic.exchange cancel true) then
              Atomic.set cancel_mark (Obs.Metrics.value m_deadline_ticks);
            raise e
          in
          let logs, tasks, sched, finish =
            if !Kernel_v2.morsel then begin
              let lanes = Pool.size pool in
              (* ~32 morsels per lane: enough granularity to rebalance
                 skew, few enough that per-morsel log bookkeeping stays
                 negligible. *)
              let msize = max 16 ((n_cand + (32 * lanes) - 1) / (32 * lanes)) in
              let disp = Morsel.create ~n_items:n_cand ~size:msize in
              let nm = Morsel.n_morsels disp in
              let logs =
                Array.init nm (fun _ ->
                    ( Vec.Int.create ~capacity:16 (),
                      Vec.Float.create ~capacity:16 () ))
              in
              let n_tasks = max 1 (min lanes nm) in
              let pulls = Array.make n_tasks 0 in
              let lane_task lane : Pool.task =
               fun () ->
                try
                  (* State and tick counter live per lane; every morsel
                     rebinds from level 0 down, so residue between
                     morsels is dead exactly as between candidates. *)
                  let st = Lowering.fresh_state plan tensors in
                  let check = make_check () in
                  let coords = st.Lowering.st_coords in
                  let rec drain () =
                    match Morsel.take disp with
                    | None -> ()
                    | Some (mid, lo, hi) ->
                        Obs.Metrics.incr m_morsels;
                        Obs.Metrics.incr (domain_counter "kernel.morsels");
                        pulls.(lane) <- pulls.(lane) + 1;
                        let go =
                          make_go st check (log_sink logs.(mid) coords)
                        in
                        run_range st check go lo hi;
                        drain ()
                  in
                  drain ()
                with e -> on_failure e
              in
              let finish () =
                (* Morsels a lane ran beyond its fair share = work it
                   stole from slower lanes; zero means no skew. *)
                let fair = nm / n_tasks in
                Array.iter
                  (fun c ->
                    if c > fair then Obs.Metrics.add m_steals (c - fair))
                  pulls
              in
              (logs, Array.init n_tasks lane_task, "morsel", finish)
            end
            else begin
              (* Over-decompose for load balance: sparse work per
                 candidate is skewed, so chunks outnumber lanes. *)
              let n_chunks = min n_cand (4 * Pool.size pool) in
              let logs =
                Array.init n_chunks (fun _ ->
                    ( Vec.Int.create ~capacity:64 (),
                      Vec.Float.create ~capacity:64 () ))
              in
              let chunk_task c : Pool.task =
               fun () ->
                try
                  Obs.Metrics.incr m_chunks;
                  Obs.Metrics.incr (domain_counter "kernel.chunks");
                  let lo = c * n_cand / n_chunks in
                  let hi = (c + 1) * n_cand / n_chunks in
                  let st = Lowering.fresh_state plan tensors in
                  let check = make_check () in
                  let coords = st.Lowering.st_coords in
                  let go = make_go st check (log_sink logs.(c) coords) in
                  run_range st check go lo hi
                with e -> on_failure e
              in
              (logs, Array.init n_chunks chunk_task, "static", fun () -> ())
            end
          in
          let record_cancel_latency () =
            let mark = Atomic.get cancel_mark in
            if mark >= 0 then
              Obs.Metrics.set_gauge m_cancel_latency
                (float_of_int (Obs.Metrics.value m_deadline_ticks - mark))
          in
          (try Pool.run_all pool tasks
           with e ->
             (* All lanes have drained by the time run_all re-raises, so
                the coarse-tick delta is the cancel-to-last-exit latency. *)
             record_cancel_latency ();
             raise e);
          record_cancel_latency ();
          finish ();
          (* Ordered replay: logs concatenated in chunk/morsel id order
             are exactly the serial accumulation sequence. *)
          Obs.span ~cat:"exec" ~name:"kernel.replay"
            ~attrs:(fun () ->
              [ ("kernel", k.Physical.name);
                ("chunks", string_of_int (Array.length logs));
                ("sched", sched) ])
            (fun () ->
              let coords = Array.make out_rank 0 in
              Array.iter
                (fun (lc, lv) ->
                  let n = Vec.Float.length lv in
                  for p = 0 to n - 1 do
                    check0 ();
                    for d = 0 to out_rank - 1 do
                      coords.(d) <- Vec.Int.get lc ((p * out_rank) + d)
                    done;
                    Builder.accum builder coords (Vec.Float.get lv p) ~combine
                  done)
                logs);
          true
        end
      end
    in
    (match pool with
    | Some p when Pool.size p > 1 -> if not (parallel p) then serial ()
    | _ -> serial ());
    Builder.freeze builder ~finalize ~fill:output_fill
  in
  { run; describe }
