(* Staged kernel backend: the compiled counterpart of the constraint-tree
   interpreter in [lib/engine/kernel_exec.ml].

   [compile] runs once per kernel structure: the body is fused into one
   scalar closure ([Body_fuse]), and every per-level decision is resolved
   into a candidate generator and a binder ([Lowering]).  The returned
   [run] only walks the precompiled level array — like the interpreter's,
   it takes the (structurally identical) kernel of the call site, so one
   compiled closure serves every dimension size and the engine's
   signature-keyed kernel cache works unchanged.

   Aggregates are fill-corrected at freeze time exactly as in the
   interpreter: enumeration covers a superset of the body's non-fill
   coordinates, and each skipped coordinate contributes the body fill,
   folded in as g(body_fill, N_agg − count) per output cell (DESIGN.md). *)

open Galley_plan
module T = Galley_tensor.Tensor
module Builder = Galley_tensor.Builder

exception Timeout

type compiled = { run : ?deadline:float -> Physical.kernel -> T.t array -> T.t }

let compile (k : Physical.kernel) ~(access_fills : float array)
    ~(access_formats : T.format array array) : compiled =
  let plan = Lowering.lower k ~access_fills ~access_formats in
  let body = Body_fuse.stage k.Physical.body in
  let levels = plan.Lowering.p_levels in
  let n_levels = Array.length levels in
  let agg_op = k.Physical.agg_op in
  let identity =
    match Op.identity agg_op with Some e -> e | None -> 0.0 (* Ident *)
  in
  let combine = if agg_op = Op.Ident then fun _ v -> v else Op.apply2 agg_op in
  let body_fill = k.Physical.body_fill in
  let run ?deadline (kc : Physical.kernel) (tensors : T.t array) : T.t =
    (* Size-dependent facts come from the caller's kernel. *)
    let n_agg = int_of_float kc.Physical.agg_space in
    let output_fill = kc.Physical.output_fill in
    let finalize =
      if agg_op = Op.Ident then fun v cnt -> if cnt = 0 then output_fill else v
      else
        fun v cnt ->
        Op.apply2 agg_op v (Op.repeat agg_op body_fill (n_agg - cnt))
    in
    Array.iteri
      (fun a (t : T.t) ->
        if Array.length (T.dims t) <> plan.Lowering.p_acc_arity.(a) then
          invalid_arg
            (Printf.sprintf "Kernel %s: access %d arity mismatch"
               k.Physical.name a))
      tensors;
    let builder =
      Builder.create ~dims:kc.Physical.output_dims
        ~formats:k.Physical.output_formats ~identity ()
    in
    let st = Lowering.fresh_state plan tensors in
    let values = st.Lowering.st_values in
    let coords = st.Lowering.st_coords in
    let loop_dims = kc.Physical.loop_dims in
    (* Same deadline cadence as the interpreter: one budget tick per
       candidate and per accumulation, clock checked every 8192 ticks. *)
    let iter_budget = ref 0 in
    let check_deadline () =
      match deadline with
      | None -> ()
      | Some d ->
          incr iter_budget;
          if !iter_budget land 8191 = 0 && Unix.gettimeofday () > d then
            raise Timeout
    in
    let rec go (level : int) : unit =
      if level = n_levels then begin
        check_deadline ();
        Builder.accum builder coords (body values) ~combine
      end
      else begin
        let lv = levels.(level) in
        let bind = lv.Lowering.lv_bind in
        match lv.Lowering.lv_gen st with
        | Lowering.G_full ->
            let n = loop_dims.(level) in
            for i = 0 to n - 1 do
              check_deadline ();
              bind st i;
              go (level + 1)
            done
        | Lowering.G_arr arr ->
            Array.iter
              (fun i ->
                check_deadline ();
                bind st i;
                go (level + 1))
              arr
        | Lowering.G_filter (arr, probe) ->
            Array.iter
              (fun i ->
                if probe i then begin
                  check_deadline ();
                  bind st i;
                  go (level + 1)
                end)
              arr
        | Lowering.G_cur c ->
            while c.Cursors.key <> Cursors.exhausted do
              check_deadline ();
              bind st c.Cursors.key;
              go (level + 1);
              c.Cursors.next ()
            done
      end
    in
    go 0;
    Builder.freeze builder ~finalize ~fill:output_fill
  in
  { run }
