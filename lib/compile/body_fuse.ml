(* Scalar-body fusion: stage a [Physical.pexpr] into one closure over the
   per-access value slots, so the innermost loop evaluates the body with no
   expression-tree walk and no intermediate argument arrays.

   The staged closures must be bit-for-bit identical to the interpreter's
   [Op.apply1]/[Op.apply2] folds (the interpreter is the differential
   oracle), so every specialization below inlines exactly the operator's
   formula and variadic maps fold left, as [Op.apply] does. *)

open Galley_plan

type fn = float array -> float

let rec stage (e : Physical.pexpr) : fn =
  match e with
  | Physical.P_access a -> fun vs -> Array.unsafe_get vs a
  | Physical.P_literal v -> fun _ -> v
  | Physical.P_map (op, [ x ]) when Op.arity op = Op.Unary -> (
      let fx = stage x in
      match op with
      | Op.Ident -> fx
      | Op.Neg -> fun vs -> -.fx vs
      | Op.Square ->
          fun vs ->
            let v = fx vs in
            v *. v
      | Op.Relu -> fun vs -> Float.max 0.0 (fx vs)
      | Op.Exp -> fun vs -> exp (fx vs)
      | Op.Sigmoid -> fun vs -> 1.0 /. (1.0 +. exp (-.fx vs))
      | _ -> fun vs -> Op.apply1 op (fx vs))
  | Physical.P_map (op, [ x; y ]) -> stage2 op x y
  | Physical.P_map (op, x :: rest) when Op.arity op = Op.Variadic ->
      List.fold_left (fun acc y -> combine2 op acc (stage y)) (stage x) rest
  | Physical.P_map (op, args) ->
      (* Arity mismatch: defer to [Op.apply] so the staged kernel fails with
         the same error the interpreter would raise. *)
      let fs = Array.of_list (List.map stage args) in
      fun vs -> Op.apply op (Array.map (fun f -> f vs) fs)

(* Binary application with leaf specializations for the hot shapes. *)
and stage2 (op : Op.t) (x : Physical.pexpr) (y : Physical.pexpr) : fn =
  match (op, x, y) with
  | Op.Mul, Physical.P_access a, Physical.P_access b ->
      fun vs -> Array.unsafe_get vs a *. Array.unsafe_get vs b
  | Op.Add, Physical.P_access a, Physical.P_access b ->
      fun vs -> Array.unsafe_get vs a +. Array.unsafe_get vs b
  | Op.Sub, Physical.P_access a, Physical.P_access b ->
      fun vs -> Array.unsafe_get vs a -. Array.unsafe_get vs b
  | Op.Mul, Physical.P_access a, Physical.P_literal l ->
      fun vs -> Array.unsafe_get vs a *. l
  | Op.Add, Physical.P_access a, Physical.P_literal l ->
      fun vs -> Array.unsafe_get vs a +. l
  | _ -> combine2 op (stage x) (stage y)

and combine2 (op : Op.t) (fx : fn) (fy : fn) : fn =
  match op with
  | Op.Add -> fun vs -> fx vs +. fy vs
  | Op.Mul -> fun vs -> fx vs *. fy vs
  | Op.Sub -> fun vs -> fx vs -. fy vs
  | Op.Div -> fun vs -> fx vs /. fy vs
  | Op.Max -> fun vs -> Float.max (fx vs) (fy vs)
  | Op.Min -> fun vs -> Float.min (fx vs) (fy vs)
  | _ -> fun vs -> Op.apply2 op (fx vs) (fy vs)
