(* Lowering: resolve every per-level decision of a [Physical.kernel] —
   binding slots, constraint-tree shape, leader/prober roles, output
   coordinate slots — into composed closures, once, at compile time.

   The result mirrors the interpreter in [lib/engine/kernel_exec.ml]
   decision for decision (the interpreter is the differential oracle), but
   the runtime loop nest walks no trees, scans no binding lists, and
   materializes no candidate arrays: each level is a pair of staged
   closures, a candidate *generator* and a *binder*, over a flat mutable
   [state] record.

   Candidate generation follows the constraint tree's superset contract:

   - a bare access yields its level's explicit indices directly ([G_arr],
     sharing the fiber tree's own sorted array — no copy) or the full
     dimension range for a dense level ([G_full]);
   - an intersection puts Iterate-protocol members first (the optimizer's
     leader choice); the first constrained member drives the level and the
     rest become O(1)/O(log) membership probes ([Tensor.Node.mem]: hash
     lookup, bytemap mask test, binary search) fused over the driving
     stream ([G_filter]) — the interpreter's leader-iterate /
     probe-the-rest split without the materialized candidate array;
   - a union becomes a k-way merge cursor, and a union or nested
     intersection inside a wider intersection joins it as a leapfrog
     cursor ([Cursors.inter]), probes riding along.

   Every generator yields strictly ascending, duplicate-free candidates,
   exactly the sequence the interpreter produces, which both preserves the
   sequential-write contract of sorted-list output builders and makes the
   two backends bit-for-bit comparable. *)

open Galley_plan
module T = Galley_tensor.Tensor
module C = Galley_physical.Constraints

(* Flat runtime state of one kernel invocation. *)
type state = {
  st_roots : T.node array;  (* root node per access *)
  st_nodes : T.node option array array;
      (* st_nodes.(a).(j): node of access [a] after binding its j-th index
         (None = subtree at fill) *)
  st_values : float array;  (* current scalar per access *)
  st_coords : int array;  (* output coordinate under construction *)
}

(* Candidates of one level visit. *)
type gen =
  | G_full  (* the full dimension range *)
  | G_arr of int array  (* a borrowed sorted explicit-index array *)
  | G_filter of int array * (int -> bool)
      (* a borrowed sorted array restricted by a membership probe: one
         iterating member plus probes, streamed without materializing the
         interpreter's filtered candidate array *)
  | G_cur of Cursors.t  (* a composed co-iteration cursor *)

(* A constraint-tree access with its binding resolved at compile time. *)
type source = { s_acc : int; s_slot : int; s_fmt : T.format }

type ltree =
  | L_all
  | L_empty
  | L_access of source
  | L_and of ltree list  (* leaders first, as reordered below *)
  | L_or of ltree list

type level = {
  lv_gen : state -> gen;
  lv_bind : state -> int -> unit;
}

type plan = {
  p_levels : level array;
  p_acc_arity : int array;
  p_fills : float array;  (* fill value per access *)
  p_out_rank : int;
  p_n_acc : int;
  p_desc : string array;
      (* per-level merge-strategy descriptor, e.g. "inter(sparse&hash)";
         static attribution for the profiler's hot-kernel table *)
}

(* Static description of a level's merge strategy, mirroring gen_of's
   classification: bare accesses show their storage format, intersections
   list members leader-first with '&', unions with '|'. *)
let rec describe_ltree (t : ltree) : string =
  match t with
  | L_all -> "full"
  | L_empty -> "empty"
  | L_access { s_fmt; _ } -> T.format_to_string s_fmt
  | L_and members ->
      "inter(" ^ String.concat "&" (List.map describe_ltree members) ^ ")"
  | L_or members ->
      "union(" ^ String.concat "|" (List.map describe_ltree members) ^ ")"

let prev (st : state) (a : int) (j : int) : T.node option =
  if j = 0 then Some st.st_roots.(a) else st.st_nodes.(a).(j - 1)

(* Compile an ltree into its candidate generator and membership probe. *)
let rec gen_of (t : ltree) : state -> gen =
  match t with
  | L_all -> fun _ -> G_full
  | L_empty -> fun _ -> G_arr [||]
  | L_access { s_acc = a; s_slot = j; _ } -> (
      fun st ->
        match prev st a j with
        | None -> G_arr [||]
        | Some nd -> (
            match T.Node.explicit_indices nd with
            | None -> G_full
            | Some arr -> G_arr arr))
  | L_and [ m1; m2 ] ->
      (* The dominant intersection shape, specialized so a level visit
         classifies its members with one match instead of the generic
         ref-and-list assembly below.  The first non-full member drives
         and the second probes; the rest-member's own candidates are
         never computed (measured: even between two sorted lists,
         per-candidate binary search beats per-visit cursor setup at
         realistic fiber sizes, so leapfrog is reserved for streams that
         are already cursors — unions and nested intersections). *)
      let g1 = gen_of m1 and g2 = gen_of m2 and p2 = probe_of m2 in
      fun st ->
        (match g1 st with
        | G_full -> ( match g2 st with G_full -> G_full | g -> g)
        | G_arr a -> G_filter (a, fun i -> p2 st i)
        | G_filter (a, pr0) -> G_filter (a, fun i -> pr0 i && p2 st i)
        | G_cur c -> G_cur (Cursors.inter [| c |] [| (fun i -> p2 st i) |]))
  | L_and [ m1; m2; m3 ] ->
      (* Three-way intersections (e.g. triangle-closing levels with a
         pendant edge) get the same static classification. *)
      let g1 = gen_of m1 and g2 = gen_of m2 and g3 = gen_of m3 in
      let p2 = probe_of m2 and p3 = probe_of m3 in
      fun st ->
        (match g1 st with
        | G_full -> (
            match g2 st with
            | G_full -> ( match g3 st with G_full -> G_full | g -> g)
            | G_arr a -> G_filter (a, fun i -> p3 st i)
            | G_filter (a, pr0) -> G_filter (a, fun i -> pr0 i && p3 st i)
            | G_cur c -> G_cur (Cursors.inter [| c |] [| (fun i -> p3 st i) |]))
        | G_arr a -> G_filter (a, fun i -> p2 st i && p3 st i)
        | G_filter (a, pr0) ->
            G_filter (a, fun i -> pr0 i && p2 st i && p3 st i)
        | G_cur c ->
            G_cur
              (Cursors.inter [| c |]
                 [| (fun i -> p2 st i); (fun i -> p3 st i) |]))
  | L_and members ->
      (* Members are already leader-first.  The first member that can
         drive iteration does so; everything else — hash, bytemap, dense,
         sorted-list, nested subtrees — probes ([Tensor.Node.mem]).  An
         unconstrained member ([G_full]) is dropped, like the interpreter
         recursing past a [`Full] leader. *)
      let ms =
        Array.of_list (List.map (fun m -> (gen_of m, probe_of m)) members)
      in
      fun st ->
        let gens = ref [] and probes = ref [] in
        Array.iter
          (fun (g, p) ->
            if !gens = [] then (
              match g st with G_full -> () | g -> gens := g :: !gens)
            else probes := (fun i -> p st i) :: !probes)
          ms;
        (match (List.rev !gens, !probes) with
        | [], _ -> G_full
        | [ g ], [] -> g
        | [ G_arr a ], [ pr ] -> G_filter (a, pr)
        | [ G_filter (a, pr0) ], ps ->
            let arr = Array.of_list (pr0 :: ps) in
            G_filter (a, fun i -> Array.for_all (fun pr -> pr i) arr)
        | [ G_arr a ], ps ->
            let arr = Array.of_list ps in
            G_filter (a, fun i -> Array.for_all (fun pr -> pr i) arr)
        | gs, ps ->
            (* A filtered member joining a wider leapfrog folds back into
               its array cursor, its probe joining the probe set. *)
            let ps = ref ps in
            let cs =
              List.map
                (function
                  | G_cur c -> c
                  | G_arr a -> Cursors.of_sorted a
                  | G_filter (a, pr) ->
                      ps := pr :: !ps;
                      Cursors.of_sorted a
                  | G_full -> assert false)
                gs
            in
            G_cur (Cursors.inter (Array.of_list cs) (Array.of_list !ps)))
  | L_or members ->
      let ms = Array.of_list (List.map gen_of members) in
      let n = Array.length ms in
      fun st ->
        let rec collect acc i =
          if i = n then
            match acc with
            | [] -> G_arr [||]
            | [ g ] -> g
            | gs ->
                let cs =
                  List.rev_map
                    (function
                      | G_cur c -> c
                      | G_arr a -> Cursors.of_sorted a
                      | G_filter (a, pr) ->
                          Cursors.filter (Cursors.of_sorted a) pr
                      | G_full -> assert false)
                    gs
                in
                G_cur (Cursors.union (Array.of_list cs))
          else
            match ms.(i) st with
            | G_full -> G_full (* one unconstrained member absorbs the union *)
            | G_arr [||] -> collect acc (i + 1)
            | g -> collect (g :: acc) (i + 1)
        in
        collect [] 0

and probe_of (t : ltree) : state -> int -> bool =
  match t with
  | L_all -> fun _ _ -> true
  | L_empty -> fun _ _ -> false
  | L_access { s_acc = a; s_slot = j; _ } -> (
      fun st i ->
        match prev st a j with None -> false | Some nd -> T.Node.mem nd i)
  | L_and members ->
      let ps = Array.of_list (List.map probe_of members) in
      fun st i -> Array.for_all (fun p -> p st i) ps
  | L_or members ->
      let ps = Array.of_list (List.map probe_of members) in
      fun st i -> Array.exists (fun p -> p st i) ps

let lower (k : Physical.kernel) ~(access_fills : float array)
    ~(access_formats : T.format array array) : plan =
  let n_acc = Array.length k.Physical.accesses in
  let loop_order = Array.of_list k.Physical.loop_order in
  let n_levels = Array.length loop_order in
  let level_of_idx = Hashtbl.create 8 in
  Array.iteri (fun l x -> Hashtbl.replace level_of_idx x l) loop_order;
  let acc_arity =
    Array.map (fun a -> List.length a.Physical.idxs) k.Physical.accesses
  in
  (* Per level: bindings (access, j-th index of the access, is_last). *)
  let bindings_per_level = Array.make n_levels [] in
  Array.iteri
    (fun a (acc : Physical.access) ->
      List.iteri
        (fun j x ->
          let l = Hashtbl.find level_of_idx x in
          bindings_per_level.(l) <-
            (a, j, j = acc_arity.(a) - 1) :: bindings_per_level.(l))
        acc.Physical.idxs)
    k.Physical.accesses;
  (* Per level: access → slot, so constraint conversion resolves bindings
     once instead of the interpreter's per-probe scan. *)
  let slots_per_level =
    Array.map
      (fun bs ->
        let m = Array.make (max 1 n_acc) None in
        List.iter (fun (a, j, _) -> m.(a) <- Some j) bs;
        m)
      bindings_per_level
  in
  let protocol_of a x =
    let acc = k.Physical.accesses.(a) in
    let rec find idxs ps =
      match (idxs, ps) with
      | i :: _, p :: _ when i = x -> p
      | _ :: idxs', _ :: ps' -> find idxs' ps'
      | _ -> Physical.Lookup
    in
    find acc.Physical.idxs acc.Physical.protocols
  in
  (* Constraint tree → ltree: resolve access slots and put Iterate-protocol
     members of every intersection first (the interpreter's leader rule). *)
  let rec convert (level : int) (t : C.t) : ltree =
    match t with
    | C.C_all -> L_all
    | C.C_empty -> L_empty
    | C.C_access a -> (
        match slots_per_level.(level).(a) with
        | None -> invalid_arg "Kernel: constraint references non-binding access"
        | Some j ->
            L_access { s_acc = a; s_slot = j; s_fmt = access_formats.(a).(j) })
    | C.C_and members ->
        let x = loop_order.(level) in
        let is_leader = function
          | C.C_access a -> protocol_of a x = Physical.Iterate
          | _ -> false
        in
        let leaders, rest = List.partition is_leader members in
        L_and (List.map (convert level) (leaders @ rest))
    | C.C_or members -> L_or (List.map (convert level) members)
  in
  let out_pos_of_level =
    Array.map
      (fun x ->
        let rec find p = function
          | [] -> None
          | i :: rest -> if i = x then Some p else find (p + 1) rest
        in
        find 0 k.Physical.output_idxs)
      loop_order
  in
  (* Fuse a level's bindings (fiber-tree descents, value loads, output
     coordinate write) into one closure. *)
  let bind_of (level : int) : state -> int -> unit =
    let binders =
      List.rev_map
        (fun (a, j, is_last) ->
          if is_last then
            let fill = access_fills.(a) in
            fun st i ->
              st.st_values.(a) <-
                (match prev st a j with
                | None -> fill
                | Some nd -> (
                    match T.Node.find_value nd i with
                    | Some v -> v
                    | None -> fill))
          else
            fun st i ->
              st.st_nodes.(a).(j) <-
                (match prev st a j with
                | None -> None
                | Some nd -> T.Node.find nd i))
        bindings_per_level.(level)
    in
    let binders =
      match out_pos_of_level.(level) with
      | None -> binders
      | Some p -> (fun st i -> st.st_coords.(p) <- i) :: binders
    in
    match binders with
    | [] -> fun _ _ -> ()
    | [ f ] -> f
    | [ f; g ] ->
        fun st i ->
          f st i;
          g st i
    | fs ->
        let arr = Array.of_list fs in
        fun st i -> Array.iter (fun f -> f st i) arr
  in
  let ltrees =
    Array.init n_levels (fun l ->
        convert l
          (C.derive ~accesses:k.Physical.accesses
             ~fills:(fun a -> access_fills.(a))
             ~idx:loop_order.(l) k.Physical.body))
  in
  let levels =
    Array.init n_levels (fun l ->
        { lv_gen = gen_of ltrees.(l); lv_bind = bind_of l })
  in
  {
    p_levels = levels;
    p_acc_arity = acc_arity;
    p_fills = access_fills;
    p_out_rank = List.length k.Physical.output_idxs;
    p_n_acc = n_acc;
    p_desc = Array.map describe_ltree ltrees;
  }

let fresh_state (p : plan) (tensors : T.t array) : state =
  {
    st_roots = Array.map T.root tensors;
    st_nodes =
      Array.init p.p_n_acc (fun a -> Array.make (max 1 p.p_acc_arity.(a)) None);
    st_values =
      Array.init p.p_n_acc (fun a ->
          if p.p_acc_arity.(a) = 0 then T.scalar_value tensors.(a)
          else p.p_fills.(a));
    st_coords = Array.make p.p_out_rank 0;
  }
