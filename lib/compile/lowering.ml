(* Lowering: resolve every per-level decision of a [Physical.kernel] —
   binding slots, constraint-tree shape, leader/prober roles, output
   coordinate slots — into composed closures, once, at compile time.

   The result mirrors the interpreter in [lib/engine/kernel_exec.ml]
   decision for decision (the interpreter is the differential oracle), but
   the runtime loop nest walks no trees, scans no binding lists, and
   materializes no candidate arrays: each level is a pair of staged
   closures, a candidate *generator* and a *binder*, over a flat mutable
   [state] record.

   Candidate generation follows the constraint tree's superset contract:

   - a bare access yields its level's explicit indices directly ([G_arr],
     sharing the fiber tree's own sorted array — no copy) or the full
     dimension range for a dense level ([G_full]);
   - an intersection puts Iterate-protocol members first (the optimizer's
     leader choice); the first constrained member drives the level and the
     rest become O(1)/O(log) membership probes ([Tensor.Node.mem]: hash
     lookup, bytemap mask test, binary search) fused over the driving
     stream ([G_filter]) — the interpreter's leader-iterate /
     probe-the-rest split without the materialized candidate array;
   - a union becomes a k-way merge cursor, and a union or nested
     intersection inside a wider intersection joins it as a leapfrog
     cursor ([Cursors.inter]), probes riding along.

   Every generator yields strictly ascending, duplicate-free candidates,
   exactly the sequence the interpreter produces, which both preserves the
   sequential-write contract of sorted-list output builders and makes the
   two backends bit-for-bit comparable. *)

open Galley_plan
module T = Galley_tensor.Tensor
module Bitset = Galley_tensor.Bitset
module C = Galley_physical.Constraints

(* Flat runtime state of one kernel invocation. *)
type state = {
  st_roots : T.node array;  (* root node per access *)
  st_nodes : T.node option array array;
      (* st_nodes.(a).(j): node of access [a] after binding its j-th index
         (None = subtree at fill) *)
  st_values : float array;  (* current scalar per access *)
  st_coords : int array;  (* output coordinate under construction *)
}

(* Candidates of one level visit. *)
type gen =
  | G_full  (* the full dimension range *)
  | G_arr of int array  (* a borrowed sorted explicit-index array *)
  | G_filter of int array * (int -> bool)
      (* a borrowed sorted array restricted by a membership probe: one
         iterating member plus probes, streamed without materializing the
         interpreter's filtered candidate array *)
  | G_cur of Cursors.t  (* a composed co-iteration cursor *)
  | G_bits of int array
      (* a freshly word-merged presence bitset (v2 bytemap∧bytemap /
         bytemap∨bytemap fast path): the backend walks its set bits —
         ascending, duplicate-free, so the candidate sequence is exactly
         the filtered/cursor sequence it replaces *)

(* A constraint-tree access with its binding resolved at compile time. *)
type source = { s_acc : int; s_slot : int; s_fmt : T.format }

type ltree =
  | L_all
  | L_empty
  | L_access of source
  | L_and of ltree list  (* leaders first, as reordered below *)
  | L_or of ltree list

type level = {
  lv_gen : state -> gen;
  lv_bind : state -> int -> unit;
}

(* v2 dense microkernel: compile-time shape of an innermost level whose
   bindings are all last-index [Dense] accesses under an all-dense
   constraint tree (statically [G_full] whenever every operand subtree
   is present).  The backend may then run an unboxed float-array inner
   loop over the level instead of per-element binder dispatch; the
   runtime re-checks that each source resolves to a [Leaf_dense] of
   sufficient length and otherwise runs the generic level, so candidate
   and accumulation sequences stay bit-identical to the interpreter. *)
type micro = {
  mi_srcs : (int * int) array;
      (* (access, slot) of every innermost value binding *)
  mi_out : int option;  (* output-coordinate position bound here, if any *)
}

type plan = {
  p_levels : level array;
  p_acc_arity : int array;
  p_fills : float array;  (* fill value per access *)
  p_out_rank : int;
  p_n_acc : int;
  p_micro : micro option;  (* v2 innermost dense microkernel, if eligible *)
  p_desc : string array;
      (* per-level merge-strategy descriptor, e.g. "inter(sparse&hash)";
         static attribution for the profiler's hot-kernel table *)
}

(* All members of an and/or are bare bytemap accesses — the shape the v2
   word-level merge handles. *)
let bytemap_sources (members : ltree list) : source array option =
  let rec go acc = function
    | [] -> Some (Array.of_list (List.rev acc))
    | L_access ({ s_fmt = T.Bytemap; _ } as s) :: rest -> go (s :: acc) rest
    | _ -> None
  in
  if List.compare_length_with members 2 < 0 then None else go [] members

(* Static description of a level's merge strategy, mirroring gen_of's
   classification: bare accesses show their storage format, intersections
   list members leader-first with '&', unions with '|'; the v2 word-level
   bytemap merges name themselves bitand/bitor. *)
let rec describe_ltree (t : ltree) : string =
  let bits_name op members =
    match bytemap_sources members with
    | Some srcs when !Kernel_v2.bits ->
        Some
          (op ^ "("
          ^ String.concat "&"
              (List.map (fun _ -> "bytemap") (Array.to_list srcs))
          ^ ")")
    | _ -> None
  in
  match t with
  | L_all -> "full"
  | L_empty -> "empty"
  | L_access { s_fmt; _ } -> T.format_to_string s_fmt
  | L_and members -> (
      match bits_name "bitand" members with
      | Some s -> s
      | None ->
          "inter(" ^ String.concat "&" (List.map describe_ltree members) ^ ")")
  | L_or members -> (
      match bits_name "bitor" members with
      | Some s -> s
      | None ->
          "union(" ^ String.concat "|" (List.map describe_ltree members) ^ ")")

let prev (st : state) (a : int) (j : int) : T.node option =
  if j = 0 then Some st.st_roots.(a) else st.st_nodes.(a).(j - 1)

(* Compile an ltree into its candidate generator and membership probe.
   [gen_of] first tries the v2 word-level bytemap merge ([bits_gen_of]);
   [gen_of_base] is the v1 classification, kept both as the v2-off path
   and as the runtime fallback when a word merge is not profitable for
   the fibers actually bound at a visit. *)
let rec gen_of (t : ltree) : state -> gen =
  match bits_gen_of t with Some g -> g | None -> gen_of_base t

and gen_of_base (t : ltree) : state -> gen =
  match t with
  | L_all -> fun _ -> G_full
  | L_empty -> fun _ -> G_arr [||]
  | L_access { s_acc = a; s_slot = j; _ } -> (
      fun st ->
        match prev st a j with
        | None -> G_arr [||]
        | Some nd -> (
            match T.Node.explicit_indices nd with
            | None -> G_full
            | Some arr -> G_arr arr))
  | L_and [ m1; m2 ] ->
      (* The dominant intersection shape, specialized so a level visit
         classifies its members with one match instead of the generic
         ref-and-list assembly below.  The first non-full member drives
         and the second probes; the rest-member's own candidates are
         never computed (measured: even between two sorted lists,
         per-candidate binary search beats per-visit cursor setup at
         realistic fiber sizes, so leapfrog is reserved for streams that
         are already cursors — unions and nested intersections). *)
      let g1 = gen_of m1 and g2 = gen_of m2 and p2 = probe_of m2 in
      fun st ->
        (match g1 st with
        | G_full -> ( match g2 st with G_full -> G_full | g -> g)
        | G_arr a -> G_filter (a, fun i -> p2 st i)
        | G_filter (a, pr0) -> G_filter (a, fun i -> pr0 i && p2 st i)
        | G_bits w -> G_filter (Bitset.to_array w, fun i -> p2 st i)
        | G_cur c -> G_cur (Cursors.inter [| c |] [| (fun i -> p2 st i) |]))
  | L_and [ m1; m2; m3 ] ->
      (* Three-way intersections (e.g. triangle-closing levels with a
         pendant edge) get the same static classification. *)
      let g1 = gen_of m1 and g2 = gen_of m2 and g3 = gen_of m3 in
      let p2 = probe_of m2 and p3 = probe_of m3 in
      fun st ->
        (match g1 st with
        | G_full -> (
            match g2 st with
            | G_full -> ( match g3 st with G_full -> G_full | g -> g)
            | G_arr a -> G_filter (a, fun i -> p3 st i)
            | G_filter (a, pr0) -> G_filter (a, fun i -> pr0 i && p3 st i)
            | G_bits w -> G_filter (Bitset.to_array w, fun i -> p3 st i)
            | G_cur c -> G_cur (Cursors.inter [| c |] [| (fun i -> p3 st i) |]))
        | G_arr a -> G_filter (a, fun i -> p2 st i && p3 st i)
        | G_filter (a, pr0) ->
            G_filter (a, fun i -> pr0 i && p2 st i && p3 st i)
        | G_bits w ->
            G_filter (Bitset.to_array w, fun i -> p2 st i && p3 st i)
        | G_cur c ->
            G_cur
              (Cursors.inter [| c |]
                 [| (fun i -> p2 st i); (fun i -> p3 st i) |]))
  | L_and members ->
      (* Members are already leader-first.  The first member that can
         drive iteration does so; everything else — hash, bytemap, dense,
         sorted-list, nested subtrees — probes ([Tensor.Node.mem]).  An
         unconstrained member ([G_full]) is dropped, like the interpreter
         recursing past a [`Full] leader. *)
      let ms =
        Array.of_list (List.map (fun m -> (gen_of m, probe_of m)) members)
      in
      fun st ->
        let gens = ref [] and probes = ref [] in
        Array.iter
          (fun (g, p) ->
            if !gens = [] then (
              match g st with G_full -> () | g -> gens := g :: !gens)
            else probes := (fun i -> p st i) :: !probes)
          ms;
        (match (List.rev !gens, !probes) with
        | [], _ -> G_full
        | [ g ], [] -> g
        | [ G_arr a ], [ pr ] -> G_filter (a, pr)
        | [ G_filter (a, pr0) ], ps ->
            let arr = Array.of_list (pr0 :: ps) in
            G_filter (a, fun i -> Array.for_all (fun pr -> pr i) arr)
        | [ G_arr a ], ps ->
            let arr = Array.of_list ps in
            G_filter (a, fun i -> Array.for_all (fun pr -> pr i) arr)
        | gs, ps ->
            (* A filtered member joining a wider leapfrog folds back into
               its array cursor, its probe joining the probe set. *)
            let ps = ref ps in
            let cs =
              List.map
                (function
                  | G_cur c -> c
                  | G_arr a -> Cursors.of_sorted a
                  | G_bits w -> Cursors.of_sorted (Bitset.to_array w)
                  | G_filter (a, pr) ->
                      ps := pr :: !ps;
                      Cursors.of_sorted a
                  | G_full -> assert false)
                gs
            in
            G_cur (Cursors.inter (Array.of_list cs) (Array.of_list !ps)))
  | L_or members ->
      let ms = Array.of_list (List.map gen_of members) in
      let n = Array.length ms in
      fun st ->
        let rec collect acc i =
          if i = n then
            match acc with
            | [] -> G_arr [||]
            | [ g ] -> g
            | gs ->
                let cs =
                  List.rev_map
                    (function
                      | G_cur c -> c
                      | G_arr a -> Cursors.of_sorted a
                      | G_bits w -> Cursors.of_sorted (Bitset.to_array w)
                      | G_filter (a, pr) ->
                          Cursors.filter (Cursors.of_sorted a) pr
                      | G_full -> assert false)
                    gs
                in
                G_cur (Cursors.union (Array.of_list cs))
          else
            match ms.(i) st with
            | G_full -> G_full (* one unconstrained member absorbs the union *)
            | G_arr [||] -> collect acc (i + 1)
            | g -> collect (g :: acc) (i + 1)
        in
        collect [] 0

(* v2 word-level bytemap merge (DESIGN.md §14): an intersection or union
   whose members are all bare bytemap accesses is computed by ANDing /
   ORing their word-packed presence masks ([Tensor.Node.bitmap_words]),
   skipping the per-candidate probe / cursor machinery entirely.  The
   set-bit walk yields the same ascending duplicate-free sequence as the
   v1 path, so results stay bit-identical.  Word merging loses when the
   driving fibers hold fewer explicit indices than the level has words —
   then each visit falls back to the precompiled v1 generator. *)
and bits_gen_of (t : ltree) : (state -> gen) option =
  if not !Kernel_v2.bits then None
  else
    match t with
    | L_and members -> (
        match bytemap_sources members with
        | None -> None
        | Some srcs ->
            let fallback = gen_of_base t in
            let n_src = Array.length srcs in
            Some
              (fun st ->
                let nds = Array.map (fun s -> prev st s.s_acc s.s_slot) srcs in
                if Array.exists (function None -> true | Some _ -> false) nds
                then G_arr [||] (* an absent member empties the intersection *)
                else
                  let words_of k =
                    match nds.(k) with
                    | Some nd -> T.Node.bitmap_words nd
                    | None -> None
                  in
                  let count_of k =
                    match nds.(k) with
                    | Some nd -> T.Node.explicit_count nd
                    | None -> 0
                  in
                  match words_of 0 with
                  | Some w0 when count_of 0 >= Array.length w0 ->
                      let out = Array.copy w0 in
                      let ok = ref true in
                      for k = 1 to n_src - 1 do
                        match words_of k with
                        | Some w when Array.length w = Array.length out ->
                            Bitset.inter_into out w
                        | _ -> ok := false
                      done;
                      if !ok then G_bits out else fallback st
                  | _ -> fallback st))
    | L_or members -> (
        match bytemap_sources members with
        | None -> None
        | Some srcs ->
            let fallback = gen_of_base t in
            let n_src = Array.length srcs in
            Some
              (fun st ->
                let ws = Array.make n_src [||] in
                let n_present = ref 0 in
                let total = ref 0 and nw = ref (-1) and ok = ref true in
                for k = 0 to n_src - 1 do
                  match prev st srcs.(k).s_acc srcs.(k).s_slot with
                  | None -> () (* absent members drop out of the union *)
                  | Some nd -> (
                      match T.Node.bitmap_words nd with
                      | None -> ok := false
                      | Some w ->
                          if !nw = -1 then nw := Array.length w
                          else if Array.length w <> !nw then ok := false;
                          total := !total + T.Node.explicit_count nd;
                          ws.(!n_present) <- w;
                          incr n_present)
                done;
                if not !ok then fallback st
                else if !n_present = 0 then G_arr [||]
                else if !total < !nw then fallback st
                else begin
                  let out = Array.copy ws.(0) in
                  for k = 1 to !n_present - 1 do
                    Bitset.union_into out ws.(k)
                  done;
                  G_bits out
                end))
    | _ -> None

and probe_of (t : ltree) : state -> int -> bool =
  match t with
  | L_all -> fun _ _ -> true
  | L_empty -> fun _ _ -> false
  | L_access { s_acc = a; s_slot = j; _ } -> (
      fun st i ->
        match prev st a j with None -> false | Some nd -> T.Node.mem nd i)
  | L_and members ->
      let ps = Array.of_list (List.map probe_of members) in
      fun st i -> Array.for_all (fun p -> p st i) ps
  | L_or members ->
      let ps = Array.of_list (List.map probe_of members) in
      fun st i -> Array.exists (fun p -> p st i) ps

let lower (k : Physical.kernel) ~(access_fills : float array)
    ~(access_formats : T.format array array) : plan =
  let n_acc = Array.length k.Physical.accesses in
  let loop_order = Array.of_list k.Physical.loop_order in
  let n_levels = Array.length loop_order in
  let level_of_idx = Hashtbl.create 8 in
  Array.iteri (fun l x -> Hashtbl.replace level_of_idx x l) loop_order;
  let acc_arity =
    Array.map (fun a -> List.length a.Physical.idxs) k.Physical.accesses
  in
  (* Per level: bindings (access, j-th index of the access, is_last). *)
  let bindings_per_level = Array.make n_levels [] in
  Array.iteri
    (fun a (acc : Physical.access) ->
      List.iteri
        (fun j x ->
          let l = Hashtbl.find level_of_idx x in
          bindings_per_level.(l) <-
            (a, j, j = acc_arity.(a) - 1) :: bindings_per_level.(l))
        acc.Physical.idxs)
    k.Physical.accesses;
  (* Per level: access → slot, so constraint conversion resolves bindings
     once instead of the interpreter's per-probe scan. *)
  let slots_per_level =
    Array.map
      (fun bs ->
        let m = Array.make (max 1 n_acc) None in
        List.iter (fun (a, j, _) -> m.(a) <- Some j) bs;
        m)
      bindings_per_level
  in
  let protocol_of a x =
    let acc = k.Physical.accesses.(a) in
    let rec find idxs ps =
      match (idxs, ps) with
      | i :: _, p :: _ when i = x -> p
      | _ :: idxs', _ :: ps' -> find idxs' ps'
      | _ -> Physical.Lookup
    in
    find acc.Physical.idxs acc.Physical.protocols
  in
  (* Constraint tree → ltree: resolve access slots and put Iterate-protocol
     members of every intersection first (the interpreter's leader rule). *)
  let rec convert (level : int) (t : C.t) : ltree =
    match t with
    | C.C_all -> L_all
    | C.C_empty -> L_empty
    | C.C_access a -> (
        match slots_per_level.(level).(a) with
        | None -> invalid_arg "Kernel: constraint references non-binding access"
        | Some j ->
            L_access { s_acc = a; s_slot = j; s_fmt = access_formats.(a).(j) })
    | C.C_and members ->
        let x = loop_order.(level) in
        let is_leader = function
          | C.C_access a -> protocol_of a x = Physical.Iterate
          | _ -> false
        in
        let leaders, rest = List.partition is_leader members in
        L_and (List.map (convert level) (leaders @ rest))
    | C.C_or members -> L_or (List.map (convert level) members)
  in
  let out_pos_of_level =
    Array.map
      (fun x ->
        let rec find p = function
          | [] -> None
          | i :: rest -> if i = x then Some p else find (p + 1) rest
        in
        find 0 k.Physical.output_idxs)
      loop_order
  in
  (* Fuse a level's bindings (fiber-tree descents, value loads, output
     coordinate write) into one closure. *)
  let bind_of (level : int) : state -> int -> unit =
    let binders =
      List.rev_map
        (fun (a, j, is_last) ->
          if is_last then
            let fill = access_fills.(a) in
            fun st i ->
              st.st_values.(a) <-
                (match prev st a j with
                | None -> fill
                | Some nd -> (
                    match T.Node.find_value nd i with
                    | Some v -> v
                    | None -> fill))
          else
            fun st i ->
              st.st_nodes.(a).(j) <-
                (match prev st a j with
                | None -> None
                | Some nd -> T.Node.find nd i))
        bindings_per_level.(level)
    in
    let binders =
      match out_pos_of_level.(level) with
      | None -> binders
      | Some p -> (fun st i -> st.st_coords.(p) <- i) :: binders
    in
    match binders with
    | [] -> fun _ _ -> ()
    | [ f ] -> f
    | [ f; g ] ->
        fun st i ->
          f st i;
          g st i
    | fs ->
        let arr = Array.of_list fs in
        fun st i -> Array.iter (fun f -> f st i) arr
  in
  let ltrees =
    Array.init n_levels (fun l ->
        convert l
          (C.derive ~accesses:k.Physical.accesses
             ~fills:(fun a -> access_fills.(a))
             ~idx:loop_order.(l) k.Physical.body))
  in
  let levels =
    Array.init n_levels (fun l ->
        { lv_gen = gen_of ltrees.(l); lv_bind = bind_of l })
  in
  let p_micro =
    if (not !Kernel_v2.micro) || n_levels = 0 then None
    else begin
      let l = n_levels - 1 in
      let rec all_dense = function
        | L_all -> true
        | L_access { s_fmt = T.Dense; _ } -> true
        | L_and ms | L_or ms -> List.for_all all_dense ms
        | L_access _ | L_empty -> false
      in
      (* Every binding must be a last-index Dense access: a non-last
         binding (a repeated index, e.g. A[i,i]) descends the fiber tree
         instead of loading a value and disqualifies the level. *)
      if
        all_dense ltrees.(l)
        && List.for_all
             (fun (a, j, is_last) ->
               is_last && access_formats.(a).(j) = T.Dense)
             bindings_per_level.(l)
      then
        Some
          {
            mi_srcs =
              Array.of_list
                (List.map (fun (a, j, _) -> (a, j)) bindings_per_level.(l));
            mi_out = out_pos_of_level.(l);
          }
      else None
    end
  in
  let p_desc = Array.map describe_ltree ltrees in
  (match p_micro with
  | Some _ -> p_desc.(n_levels - 1) <- "micro(" ^ p_desc.(n_levels - 1) ^ ")"
  | None -> ());
  {
    p_levels = levels;
    p_acc_arity = acc_arity;
    p_fills = access_fills;
    p_out_rank = List.length k.Physical.output_idxs;
    p_n_acc = n_acc;
    p_micro;
    p_desc;
  }

let fresh_state (p : plan) (tensors : T.t array) : state =
  {
    st_roots = Array.map T.root tensors;
    st_nodes =
      Array.init p.p_n_acc (fun a -> Array.make (max 1 p.p_acc_arity.(a)) None);
    st_values =
      Array.init p.p_n_acc (fun a ->
          if p.p_acc_arity.(a) = 0 then T.scalar_value tensors.(a)
          else p.p_fills.(a));
    st_coords = Array.make p.p_out_rank 0;
  }
