(* Cursor-based co-iteration over sorted index streams.

   A cursor walks one sorted stream of explicit indices: [key] is the
   current candidate ([exhausted] once the stream is done), [next] advances
   past it, and [seek t] jumps to the first key >= [t].  Because cursors
   support [seek], they compose: a leapfrog intersection or a k-way union
   is itself a cursor, so arbitrarily nested and/or constraint trees
   iterate without ever materializing candidate arrays.

   Streams are strictly ascending and duplicate-free (fiber-tree levels
   store each index once), and every derived cursor preserves that, which
   is what lets sorted-list output builders consume candidates directly. *)

type t = {
  mutable key : int;  (* current candidate; [exhausted] when done *)
  next : unit -> unit;  (* advance past [key] *)
  seek : int -> unit;  (* advance to the first key >= target *)
}

let exhausted = max_int

let empty () : t = { key = exhausted; next = (fun () -> ()); seek = (fun _ -> ()) }

(* Cursor over a sorted duplicate-free array.  [seek] gallops: an
   exponential probe from the current position followed by a binary search
   of the bracketed range, so a run of seeks over the whole array costs
   O(n) total and a far-jumping seek costs O(log gap). *)
let of_sorted (crd : int array) : t =
  let len = Array.length crd in
  let pos = ref 0 in
  let rec c =
    {
      key = (if len = 0 then exhausted else crd.(0));
      next =
        (fun () ->
          incr pos;
          c.key <- (if !pos < len then crd.(!pos) else exhausted));
      seek =
        (fun target ->
          if c.key < target then begin
            (* crd.(!pos) < target: gallop right to bracket the target. *)
            let lo = ref !pos and step = ref 1 in
            while !lo + !step < len && crd.(!lo + !step) < target do
              lo := !lo + !step;
              step := !step * 2
            done;
            let hi = ref (min (len - 1) (!lo + !step)) in
            if crd.(!hi) < target then begin
              pos := len;
              c.key <- exhausted
            end
            else begin
              (* Invariant: crd.(!lo) < target <= crd.(!hi). *)
              while !hi - !lo > 1 do
                let mid = (!lo + !hi) / 2 in
                if crd.(mid) < target then lo := mid else hi := mid
              done;
              pos := !hi;
              c.key <- crd.(!hi)
            end
          end);
    }
  in
  c

(* K-way union: the minimum of the member keys; [next] advances every
   member sitting at the current key, so duplicates across members are
   emitted once. *)
let union (members : t array) : t =
  let minkey () =
    let m = ref exhausted in
    Array.iter (fun c -> if c.key < !m then m := c.key) members;
    !m
  in
  let rec c =
    {
      key = exhausted;
      next =
        (fun () ->
          let k = c.key in
          Array.iter (fun m -> if m.key = k then m.next ()) members;
          c.key <- minkey ());
      seek =
        (fun target ->
          if c.key < target then begin
            Array.iter (fun m -> if m.key < target then m.seek target) members;
            c.key <- minkey ()
          end);
    }
  in
  c.key <- minkey ();
  c

(* Leapfrog intersection of [curs], additionally filtered by the O(1)/
   O(log) membership [probes].  The loop raises a candidate to the maximum
   cursor key, seeks everyone there, and accepts once all cursors agree
   and all probes pass; a failed probe bumps the candidate by one and the
   next seek gallops to the following real key. *)
let inter (curs : t array) (probes : (int -> bool) array) : t =
  if Array.length curs = 0 then
    invalid_arg "Cursors.inter: needs at least one cursor";
  let n_probes = Array.length probes in
  let pass cand =
    let ok = ref true in
    for p = 0 to n_probes - 1 do
      if !ok && not (probes.(p) cand) then ok := false
    done;
    !ok
  in
  let settle start =
    let cand = ref start in
    let result = ref (-1) in
    while !result < 0 do
      if !cand = exhausted then result := exhausted
      else begin
        let hi = ref !cand in
        Array.iter
          (fun cu ->
            if cu.key < !hi then cu.seek !hi;
            if cu.key > !hi then hi := cu.key)
          curs;
        if !hi <> !cand then cand := !hi
        else if pass !cand then result := !cand
        else cand := !cand + 1
      end
    done;
    !result
  in
  let rec c =
    {
      key = exhausted;
      next = (fun () -> if c.key <> exhausted then c.key <- settle (c.key + 1));
      seek = (fun target -> if c.key < target then c.key <- settle target);
    }
  in
  c.key <- settle 0;
  c

(* Restrict a cursor to the keys passing a membership probe. *)
let filter (base : t) (pr : int -> bool) : t =
  let rec settle (d : t) =
    if base.key <> exhausted && not (pr base.key) then begin
      base.next ();
      settle d
    end
    else d.key <- base.key
  in
  let rec d =
    {
      key = exhausted;
      next =
        (fun () ->
          if d.key <> exhausted then begin
            base.next ();
            settle d
          end);
      seek =
        (fun target ->
          if d.key < target then begin
            base.seek target;
            settle d
          end);
    }
  in
  settle d;
  d

(* Drain a cursor to a list (tests and debugging). *)
let to_list (c : t) : int list =
  let acc = ref [] in
  while c.key <> exhausted do
    acc := c.key :: !acc;
    c.next ()
  done;
  List.rev !acc
