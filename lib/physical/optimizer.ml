(* The physical optimizer (paper Sec. 6): lowers one logical query to
   physical steps by deciding

   (1) the loop order — branch-and-bound + Selinger-style dynamic
       programming over (index-set, transposed-inputs) states, where the
       cost of a state is the estimated number of loop iterations incurred
       by each level plus a linear cost for every discordant input that must
       be transposed (Sec. 6.1);
   (2) the output format of every output dimension — by estimated sparsity
       cutoffs and the write pattern, sequential (output indices form a
       prefix of the loop order) vs random (Sec. 6.2);
   (3) the merge algorithm of every loop index — one input iterates, the
       others are probed, chosen by estimated conditional branching
       (Sec. 6.3). *)

open Galley_plan
module Ctx = Galley_stats.Ctx
module Cost = Galley_stats.Cost

type config = {
  weights : Cost.weights;
  dense_cutoff : float; (* estimated density above which a level is dense *)
  bytemap_cutoff : float; (* density above which random writes use bytemap *)
  max_dp_indices : int; (* loop orders: exact DP up to this many indices *)
  exact : bool; (* false = greedy loop order only *)
  max_nodes : int option; (* search-node budget per ladder rung *)
  format_override : string -> Galley_tensor.Tensor.format array option;
      (* pin the output formats of named queries (hand-coded baselines) *)
}

let default_config =
  {
    weights = Cost.default_weights;
    dense_cutoff = 0.25;
    bytemap_cutoff = 0.01;
    max_dp_indices = 10;
    exact = true;
    max_nodes = None;
    format_override = (fun _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Flattening the logical body into accesses + a physical expression.   *)
(* ------------------------------------------------------------------ *)

type flat = {
  accesses : Physical.access array; (* protocols not yet assigned *)
  pexpr : Physical.pexpr;
  fills : float array; (* fill of each access *)
}

let flatten (schema : Schema.t) (body : Ir.expr) : flat =
  let accs = ref [] and fills = ref [] and n = ref 0 in
  let add tensor kind idxs =
    let id = !n in
    incr n;
    accs :=
      { Physical.tensor; kind; idxs; protocols = List.map (fun _ -> Physical.Lookup) idxs }
      :: !accs;
    fills := Schema.fill_of schema tensor :: !fills;
    id
  in
  let rec go (e : Ir.expr) : Physical.pexpr =
    match e with
    | Ir.Input (name, idxs) -> Physical.P_access (add name `Input idxs)
    | Ir.Alias (name, idxs) -> Physical.P_access (add name `Alias idxs)
    | Ir.Literal v -> Physical.P_literal v
    | Ir.Map (op, args) -> Physical.P_map (op, List.map go args)
    | Ir.Agg _ -> invalid_arg "Physical.flatten: aggregate in logical body"
  in
  let pexpr = go body in
  {
    accesses = Array.of_list (List.rev !accs);
    pexpr;
    fills = Array.of_list (List.rev !fills);
  }

(* ------------------------------------------------------------------ *)
(* Loop-order search.                                                   *)
(* ------------------------------------------------------------------ *)

(* Estimated iterations of the loop level reached when the prefix set is
   [s]: the non-fill count of the body projected onto [s]. *)
let level_iters (ctx : Ctx.t) (body : Ir.expr) (all : Ir.Idx_set.t)
    (memo : (string, float) Hashtbl.t) (s : Ir.Idx_set.t) : float =
  let k = String.concat "," (Ir.Idx_set.elements s) in
  match Hashtbl.find_opt memo k with
  | Some v -> v
  | None ->
      let others = Ir.Idx_set.elements (Ir.Idx_set.diff all s) in
      let proj = if others = [] then body else Ir.Agg (Op.Max, others, body) in
      let v = ctx.Ctx.estimate_expr proj in
      Hashtbl.replace memo k v;
      v

(* Estimated size of an access, for transposition costs. *)
let access_nnz (ctx : Ctx.t) (a : Physical.access) : float =
  match a.Physical.idxs with
  | [] -> 1.0
  | idxs ->
      ctx.Ctx.estimate_access_projected a.Physical.tensor idxs
        (Ir.Idx_set.of_list idxs)

(* Does access [a] remain concordant when [v] is appended to a prefix that
   contains [placed_of_a] of its indices (in order)?  Concordant accesses
   always have their first [placed_of_a] indices placed, so [v] must be the
   next one. *)
let stays_concordant (a : Physical.access) (placed : Ir.Idx_set.t)
    (v : Ir.idx) : bool =
  if not (List.mem v a.Physical.idxs) then true
  else begin
    let placed_count =
      List.length (List.filter (fun i -> Ir.Idx_set.mem i placed) a.Physical.idxs)
    in
    match List.nth_opt a.Physical.idxs placed_count with
    | Some next -> next = v
    | None -> false
  end

type order_state = {
  os_order : Ir.idx list; (* reversed *)
  os_set : Ir.Idx_set.t;
  os_broken : int list; (* sorted access ids needing transposition *)
  os_cost : float;
}

let order_step (cfg : config) (ctx : Ctx.t) (flat : flat) (iters : Ir.Idx_set.t -> float)
    (st : order_state) (v : Ir.idx) : order_state =
  let set' = Ir.Idx_set.add v st.os_set in
  let newly_broken =
    List.filter
      (fun a ->
        (not (List.mem a st.os_broken))
        && not (stays_concordant flat.accesses.(a) st.os_set v))
      (List.init (Array.length flat.accesses) (fun i -> i))
  in
  let transpose_cost =
    List.fold_left
      (fun acc a ->
        acc
        +. Cost.transpose_cost ~weights:cfg.weights
             ~nnz:(access_nnz ctx flat.accesses.(a))
             ())
      0.0 newly_broken
  in
  {
    os_order = v :: st.os_order;
    os_set = set';
    os_broken = List.sort compare (st.os_broken @ newly_broken);
    (* A non-finite level cost (faulty estimator, overflow) cannot steer
       the order search; exhaust the rung so the ladder degrades. *)
    os_cost = Tier.finite (st.os_cost +. iters set' +. transpose_cost);
  }

let greedy_order ?(budget : Tier.budget option) ?(query = "") (cfg : config)
    (ctx : Ctx.t) (flat : flat) (iters : Ir.Idx_set.t -> float)
    (all : Ir.idx list) : order_state =
  let init =
    { os_order = []; os_set = Ir.Idx_set.empty; os_broken = []; os_cost = 0.0 }
  in
  let rec loop st remaining =
    match remaining with
    | [] -> st
    | _ ->
        let scored =
          List.map
            (fun v ->
              Tier.tick_opt budget;
              (v, order_step cfg ctx flat iters st v))
            remaining
        in
        let v, st' =
          List.fold_left
            (fun (bv, b) (v, s) ->
              if s.os_cost < b.os_cost then (v, s) else (bv, b))
            (List.hd scored) (List.tl scored)
        in
        if Provenance.enabled () then
          List.iter
            (fun (cv, cs) ->
              Provenance.candidate ~phase:"physical" ~query ~tier:"greedy"
                ~descr:("loop " ^ String.concat "," (List.rev cs.os_order))
                ~cost:cs.os_cost ~chosen:(cv = v) ())
            scored;
        loop st' (List.filter (fun i -> i <> v) remaining)
  in
  loop init all

let dp_order ?(budget : Tier.budget option) ?(query = "") (cfg : config)
    (ctx : Ctx.t) (flat : flat) (iters : Ir.Idx_set.t -> float)
    (all : Ir.idx list) : order_state =
  let greedy = greedy_order ?budget ~query cfg ctx flat iters all in
  let k = List.length all in
  if (not cfg.exact) || k > cfg.max_dp_indices || k <= 1 then greedy
  else begin
    let pv = Provenance.enabled () in
    if pv then
      Provenance.candidate ~phase:"physical" ~query ~tier:"exact"
        ~descr:"greedy order bound" ~cost:greedy.os_cost ~chosen:false ();
    let pruned_bound = ref 0 and pruned_dominated = ref 0 in
    let improvements = ref 0 in
    let bound = ref greedy.os_cost in
    let best = ref greedy in
    let key st =
      String.concat "," (Ir.Idx_set.elements st.os_set)
      ^ "|"
      ^ String.concat "," (List.map string_of_int st.os_broken)
    in
    let init =
      { os_order = []; os_set = Ir.Idx_set.empty; os_broken = []; os_cost = 0.0 }
    in
    let current = ref [ init ] in
    for _level = 1 to k do
      let next : (string, order_state) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun st ->
          if st.os_cost > !bound then incr pruned_bound
          else
            List.iter
              (fun v ->
                if not (Ir.Idx_set.mem v st.os_set) then begin
                  Tier.tick_opt budget;
                  let st' = order_step cfg ctx flat iters st v in
                  if st'.os_cost > !bound then incr pruned_bound
                  else begin
                    let kk = key st' in
                    let better =
                      match Hashtbl.find_opt next kk with
                      | Some old -> st'.os_cost < old.os_cost
                      | None -> true
                    in
                    if not better then incr pruned_dominated;
                    if better then begin
                      Hashtbl.replace next kk st';
                      if Ir.Idx_set.cardinal st'.os_set = k
                         && st'.os_cost <= !bound
                      then begin
                        bound := st'.os_cost;
                        best := st';
                        incr improvements
                      end
                    end
                  end
                end)
              all)
        !current;
      current := Hashtbl.fold (fun _ st acc -> st :: acc) next []
    done;
    if pv then begin
      Provenance.prune ~phase:"physical" ~query ~tier:"exact"
        ~reason:"cost above bound" ~count:!pruned_bound ();
      Provenance.prune ~phase:"physical" ~query ~tier:"exact"
        ~reason:"dominated dp cell" ~count:!pruned_dominated ();
      Provenance.candidate ~phase:"physical" ~query ~tier:"exact"
        ~descr:
          (Printf.sprintf "dp order [%s] (bound improved %d time%s)"
             (String.concat "," (List.rev !best.os_order))
             !improvements
             (if !improvements = 1 then "" else "s"))
        ~cost:!best.os_cost ~chosen:true ()
    end;
    !best
  end

(* ------------------------------------------------------------------ *)
(* Output format selection (paper Sec. 6.2).                            *)
(* ------------------------------------------------------------------ *)

let choose_formats (cfg : config) (ctx : Ctx.t) (body : Ir.expr)
    ~(all : Ir.Idx_set.t) ~(output_idxs : Ir.idx list)
    ~(output_dims : int array) ~(sequential : bool) :
    Galley_tensor.Tensor.format array =
  let n_out = List.length output_idxs in
  (* Estimated number of non-fill prefixes at each level of the output's
     fiber tree. *)
  let prefix_est level =
    let prefix = List.filteri (fun k _ -> k < level) output_idxs in
    if prefix = [] then 1.0
    else begin
      let others =
        Ir.Idx_set.elements (Ir.Idx_set.diff all (Ir.Idx_set.of_list prefix))
      in
      let proj = if others = [] then body else Ir.Agg (Op.Max, others, body) in
      Tier.finite (ctx.Ctx.estimate_expr proj)
    end
  in
  Array.init n_out (fun level ->
      (* Conditional density: children per parent node over the dimension —
         the sparsity "at this index level" of the fiber tree (Sec. 6.2). *)
      let parents = Float.max 1.0 (prefix_est level) in
      let here = prefix_est (level + 1) in
      let density = here /. (parents *. float_of_int output_dims.(level)) in
      let density = Float.min 1.0 density in
      if density >= cfg.dense_cutoff then Galley_tensor.Tensor.Dense
      else if sequential then Galley_tensor.Tensor.Sparse_list
      else if density >= cfg.bytemap_cutoff then Galley_tensor.Tensor.Bytemap
      else Galley_tensor.Tensor.Hash)

(* ------------------------------------------------------------------ *)
(* Protocol (merge algorithm) selection (paper Sec. 6.3).               *)
(* ------------------------------------------------------------------ *)

(* Expected branching of access [a] at loop index [x] given the indices
   already bound by outer loops. *)
let conditional_branching (ctx : Ctx.t) (a : Physical.access) ~(x : Ir.idx)
    ~(bound : Ir.Idx_set.t) : float =
  let idxs = a.Physical.idxs in
  let keep_with =
    Ir.Idx_set.inter (Ir.Idx_set.add x bound) (Ir.Idx_set.of_list idxs)
  in
  let keep_without = Ir.Idx_set.remove x keep_with in
  let with_x = ctx.Ctx.estimate_access_projected a.Physical.tensor idxs keep_with in
  let without_x =
    if Ir.Idx_set.is_empty keep_without then 1.0
    else ctx.Ctx.estimate_access_projected a.Physical.tensor idxs keep_without
  in
  Tier.finite (with_x /. Float.max 1.0 without_x)

(* [estimate = false] (the naive tier) skips branching estimation and lets
   the first intersection member lead. *)
let assign_protocols ?(estimate = true) (ctx : Ctx.t) (flat : flat)
    (loop_order : Ir.idx list) : Physical.access array =
  let n = Array.length flat.accesses in
  let protocols = Array.map (fun a -> Array.of_list a.Physical.protocols) flat.accesses in
  let bound = ref Ir.Idx_set.empty in
  List.iter
    (fun x ->
      let tree =
        Constraints.derive ~accesses:flat.accesses
          ~fills:(fun a -> flat.fills.(a))
          ~idx:x flat.pexpr
      in
      let binding =
        List.filter
          (fun a -> List.mem x flat.accesses.(a).Physical.idxs)
          (List.init n (fun i -> i))
      in
      let set_protocol a p =
        let pos =
          let rec find k = function
            | [] -> invalid_arg "assign_protocols: index not in access"
            | i :: rest -> if i = x then k else find (k + 1) rest
          in
          find 0 flat.accesses.(a).Physical.idxs
        in
        protocols.(a).(pos) <- p
      in
      (match Constraints.and_members tree with
      | _ :: _ as members ->
          (* Intersection: the access with the smallest expected branching
             iterates; everything else is probed. *)
          let leader =
            if not estimate then List.hd members
            else
              List.fold_left
                (fun (bl, bc) a ->
                  let c =
                    conditional_branching ctx flat.accesses.(a) ~x ~bound:!bound
                  in
                  if c < bc then (a, c) else (bl, bc))
                (List.hd members |> fun a ->
                 (a, conditional_branching ctx flat.accesses.(a) ~x ~bound:!bound))
                (List.tl members)
              |> fst
          in
          List.iter
            (fun a ->
              set_protocol a (if a = leader then Physical.Iterate else Physical.Lookup))
            binding
      | [] ->
          (* Union (or unconstrained): every constrained access iterates so
             the merge can enumerate the union; the rest are probed. *)
          let constrained = Constraints.all_accesses tree in
          List.iter
            (fun a ->
              set_protocol a
                (if List.mem a constrained then Physical.Iterate
                 else Physical.Lookup))
            binding);
      bound := Ir.Idx_set.add x !bound)
    loop_order;
  Array.mapi
    (fun i a -> { a with Physical.protocols = Array.to_list protocols.(i) })
    flat.accesses

(* ------------------------------------------------------------------ *)
(* Driver: logical query -> physical steps.                             *)
(* ------------------------------------------------------------------ *)

(* One rung of the degradation ladder.  [tier] selects the loop-order
   strategy and whether estimates drive formats and protocols:

   - [Exact]  — branch-and-bound DP over loop orders (Sec. 6.1);
   - [Greedy] — greedy loop order;
   - [Naive]  — left-deep order with the output indices leading (so writes
     are sequential, every output level can be a sorted sparse list, and no
     final transpose is needed), first intersection member iterates.  The
     naive rung makes zero estimator calls and checks no budget, so it can
     always complete. *)
let plan_query_rung ~(tier : Tier.t) ?(budget : Tier.budget option)
    ~(config : config) (ctx : Ctx.t) ~(fresh : unit -> string)
    (q : Logical_query.t) : Physical.plan =
  let schema = ctx.Ctx.schema in
  let body = q.Logical_query.body in
  let dims = Schema.index_dims schema body in
  let flat = flatten schema body in
  let all_list =
    Ir.Idx_set.elements (Ir.free_indices body)
  in
  let all = Ir.Idx_set.of_list all_list in
  let memo = Hashtbl.create 64 in
  let iters = level_iters ctx body all memo in
  (* (1) Loop order. *)
  let order_cost = ref Float.nan in
  let loop_order =
    match tier with
    | Tier.Exact ->
        let st =
          dp_order ?budget ~query:q.Logical_query.name config ctx flat iters
            all_list
        in
        order_cost := st.os_cost;
        List.rev st.os_order
    | Tier.Greedy ->
        let st =
          greedy_order ?budget ~query:q.Logical_query.name config ctx flat
            iters all_list
        in
        order_cost := st.os_cost;
        List.rev st.os_order
    | Tier.Naive ->
        q.Logical_query.output_idxs
        @ List.filter
            (fun x -> not (List.mem x q.Logical_query.output_idxs))
            all_list
  in
  (* (2) Transposition steps for discordant accesses. *)
  let transposes = Hashtbl.create 4 in
  let steps = ref [] in
  let accesses =
    Array.map
      (fun (a : Physical.access) ->
        if Physical.is_subsequence a.Physical.idxs loop_order then a
        else begin
          (* Reorder this access's indices to follow the loop order. *)
          let sorted_idxs =
            List.filter (fun x -> List.mem x a.Physical.idxs) loop_order
          in
          let perm =
            Array.of_list
              (List.map
                 (fun x ->
                   let rec find k = function
                     | [] -> assert false
                     | i :: rest -> if i = x then k else find (k + 1) rest
                   in
                   find 0 a.Physical.idxs)
                 sorted_idxs)
          in
          let key =
            a.Physical.tensor ^ "/"
            ^ String.concat "," (Array.to_list (Array.map string_of_int perm))
          in
          let name =
            match Hashtbl.find_opt transposes key with
            | Some name -> name
            | None ->
                let name = fresh () in
                Hashtbl.replace transposes key name;
                let src_info = Schema.info_exn schema a.Physical.tensor in
                let formats =
                  Array.map (fun _ -> Galley_tensor.Tensor.Sparse_list) perm
                in
                steps :=
                  Physical.Transpose
                    {
                      name;
                      source = a.Physical.tensor;
                      source_kind = a.Physical.kind;
                      perm;
                      formats;
                    }
                  :: !steps;
                (* Make the transposed tensor known to the schema and give
                   it the source's statistics under the permuted order. *)
                Schema.declare schema name
                  ~dims:(Array.map (fun k -> src_info.Schema.dims.(k)) perm)
                  ~fill:src_info.Schema.fill;
                ctx.Ctx.register_alias_estimated name ~output_idxs:sorted_idxs
                  (Ir.Alias (a.Physical.tensor, a.Physical.idxs));
                name
          in
          { a with Physical.tensor = name; kind = `Alias; idxs = sorted_idxs }
        end)
      flat.accesses
  in
  let flat = { flat with accesses } in
  (* (3) Output order, formats, protocols. *)
  let kernel_out_idxs =
    List.filter (fun x -> List.mem x q.Logical_query.output_idxs) loop_order
  in
  let output_dims =
    Array.of_list (List.map (fun i -> Schema.dim_of_idx dims i) kernel_out_idxs)
  in
  let sequential =
    (* Sequential construction iff the output indices are the leading loops. *)
    let rec prefix out loops =
      match (out, loops) with
      | [], _ -> true
      | o :: out', l :: loops' -> o = l && prefix out' loops'
      | _ -> false
    in
    prefix kernel_out_idxs loop_order
  in
  let output_formats =
    match config.format_override q.Logical_query.name with
    | Some formats ->
        if Array.length formats <> List.length kernel_out_idxs then
          invalid_arg ("format_override arity mismatch for " ^ q.Logical_query.name);
        (* A pinned sorted-list format is only valid for sequential writes;
           fall back to hash otherwise. *)
        Array.map
          (fun f ->
            if f = Galley_tensor.Tensor.Sparse_list && not sequential then
              Galley_tensor.Tensor.Hash
            else f)
          formats
    | None ->
        if tier = Tier.Naive then
          (* Writes are sequential by construction: sorted sparse lists are
             always legal and need no density estimates. *)
          Array.map (fun _ -> Galley_tensor.Tensor.Sparse_list) output_dims
        else
          choose_formats config ctx body ~all ~output_idxs:kernel_out_idxs
            ~output_dims ~sequential
  in
  let accesses =
    assign_protocols ~estimate:(tier <> Tier.Naive) ctx flat loop_order
  in
  let body_fill = Constraints.pexpr_fill (fun a -> flat.fills.(a)) flat.pexpr in
  let agg_space = Schema.space dims q.Logical_query.agg_idxs in
  let output_fill =
    if q.Logical_query.agg_op = Op.Ident then body_fill
    else Op.repeat q.Logical_query.agg_op body_fill (int_of_float agg_space)
  in
  let needs_final_transpose = kernel_out_idxs <> q.Logical_query.output_idxs in
  let kernel_name =
    if needs_final_transpose then fresh () else q.Logical_query.name
  in
  let kernel =
    {
      Physical.name = kernel_name;
      loop_order;
      agg_op = q.Logical_query.agg_op;
      agg_idxs = q.Logical_query.agg_idxs;
      output_idxs = kernel_out_idxs;
      output_dims;
      output_formats;
      loop_dims =
        Array.of_list (List.map (fun i -> Schema.dim_of_idx dims i) loop_order);
      body = flat.pexpr;
      accesses;
      body_fill;
      output_fill;
      agg_space;
    }
  in
  Physical.validate_kernel kernel;
  (* Record the chosen operator's predictions — only values the search
     already computed (order cost, kernel fills), never a fresh
     estimator call, so provenance cannot perturb the plan. *)
  if Provenance.enabled () then
    Provenance.operator ~query:q.Logical_query.name ~kernel:kernel_name
      ~cost:!order_cost
      ~attrs:
        [
          ("loop", String.concat "," loop_order);
          ( "formats",
            String.concat ","
              (Array.to_list
                 (Array.map Galley_tensor.Tensor.format_to_string
                    output_formats)) );
          ("tier", Tier.to_string tier);
        ]
      ();
  let final_steps =
    if needs_final_transpose then begin
      Schema.declare schema kernel_name ~dims:output_dims ~fill:output_fill;
      let perm =
        Array.of_list
          (List.map
             (fun x ->
               let rec find k = function
                 | [] -> assert false
                 | i :: rest -> if i = x then k else find (k + 1) rest
               in
               find 0 kernel_out_idxs)
             q.Logical_query.output_idxs)
      in
      (* The transposed copy gets formats chosen for *its* dimension order:
         permuting the kernel's formats can nest dense levels under sparse
         parents, multiplying explicit storage.  Transposes build bottom-up
         from sorted coordinates, so sequential formats are always valid. *)
      let transpose_formats =
        match config.format_override q.Logical_query.name with
        | Some formats -> formats
        | None ->
            if tier = Tier.Naive then
              Array.map (fun _ -> Galley_tensor.Tensor.Sparse_list) perm
            else
              choose_formats config ctx body ~all
                ~output_idxs:q.Logical_query.output_idxs
                ~output_dims:(Array.map (fun k -> output_dims.(k)) perm)
                ~sequential:true
      in
      [
        Physical.Kernel kernel;
        Physical.Transpose
          {
            name = q.Logical_query.name;
            source = kernel_name;
            source_kind = `Alias;
            perm;
            formats = transpose_formats;
          };
      ]
    end
    else [ Physical.Kernel kernel ]
  in
  List.rev !steps @ final_steps

(* Degradation ladder: exact DP → greedy order → naive left-deep plan.
   Returns the tier that actually produced the plan.  With
   [degrade = false] exhaustion propagates as [Tier.Exhausted]. *)
let plan_query_tiered ?(deadline : float option) ?(degrade = true)
    ?(config = default_config) (ctx : Ctx.t) ~(fresh : unit -> string)
    (q : Logical_query.t) : Physical.plan * Tier.t =
  let budget_for () =
    match (deadline, config.max_nodes) with
    | None, None -> None
    | _ -> Some (Tier.budget ?deadline ?max_nodes:config.max_nodes ())
  in
  let rungs = if config.exact then [ Tier.Exact; Tier.Greedy ] else [ Tier.Greedy ] in
  let last_budget : Tier.budget option ref = ref None in
  let rung_nodes () =
    match !last_budget with Some b -> b.Tier.nodes | None -> 0
  in
  let rec go = function
    | [] ->
        let r = (plan_query_rung ~tier:Tier.Naive ~config ctx ~fresh q, Tier.Naive) in
        if Provenance.enabled () then
          Provenance.rung ~phase:"physical" ~query:q.Logical_query.name
            ~tier:"naive" ~outcome:"served" ();
        r
    | tier :: rest -> (
        try
          let plan =
            Galley_obs.span ~cat:"optimize"
              ~name:("physical.rung:" ^ Tier.to_string tier)
              ~attrs:(fun () -> [ ("query", q.Logical_query.name) ])
              (fun () ->
                let budget = budget_for () in
                last_budget := budget;
                (* Charge rung entry so trivial (tick-free) plans still
                   respect an already-expired deadline. *)
                Tier.tick_opt budget;
                plan_query_rung ~tier ?budget ~config ctx ~fresh q)
          in
          if Provenance.enabled () then
            Provenance.rung ~phase:"physical" ~query:q.Logical_query.name
              ~tier:(Tier.to_string tier) ~outcome:"served"
              ~nodes:(rung_nodes ()) ();
          (plan, tier)
        with Tier.Exhausted ->
          if degrade then begin
            Galley_obs.Metrics.incr_named "optimizer.physical.rung_exhausted";
            if Provenance.enabled () then
              Provenance.rung ~phase:"physical" ~query:q.Logical_query.name
                ~tier:(Tier.to_string tier) ~outcome:"exhausted"
                ~nodes:(rung_nodes ()) ();
            go rest
          end
          else raise Tier.Exhausted)
  in
  let plan, tier = go rungs in
  Galley_obs.Metrics.incr_named
    ("optimizer.physical.tier." ^ Tier.to_string tier);
  (plan, tier)

let plan_query ?config (ctx : Ctx.t) ~(fresh : unit -> string)
    (q : Logical_query.t) : Physical.plan =
  fst (plan_query_tiered ?config ctx ~fresh q)
