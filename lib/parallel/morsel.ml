(* Morsel-driven work dispenser (DESIGN.md §14).

   A batch of [n_items] candidates is cut into fixed-size ranges
   ("morsels"); lanes pull the next unclaimed morsel from a single
   atomic counter until the dispenser is dry.  Skewed per-candidate
   work therefore rebalances itself — a lane stuck in a heavy fiber
   simply pulls fewer morsels — without any static assignment.

   The morsel→range mapping is a pure function of the morsel id, never
   of which lane claimed it, so per-morsel result logs replayed in id
   order reproduce the serial sequence exactly regardless of the
   schedule (the backend's bit-identity argument). *)

type t = {
  size : int;  (* candidates per morsel (last one may be short) *)
  n_items : int;
  n_morsels : int;
  next : int Atomic.t;
}

let create ~(n_items : int) ~(size : int) : t =
  let size = max 1 size in
  {
    size;
    n_items;
    n_morsels = (n_items + size - 1) / size;
    next = Atomic.make 0;
  }

let n_morsels (t : t) : int = t.n_morsels

(* Claim the next morsel: [Some (id, lo, hi)] with the candidate range
   [lo, hi), or [None] once drained. *)
let take (t : t) : (int * int * int) option =
  let m = Atomic.fetch_and_add t.next 1 in
  if m >= t.n_morsels then None
  else Some (m, m * t.size, min t.n_items ((m + 1) * t.size))
