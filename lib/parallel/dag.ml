(* Level-synchronous schedule of a dependency DAG.

   [waves ~n ~deps] partitions nodes [0..n-1] into an ordered list of
   waves: a node's wave is one past the deepest wave among its
   dependencies, so all of a wave's dependencies live in strictly earlier
   waves and the members of one wave are mutually independent — safe to
   run as one parallel batch.

   Dependencies must point backwards ([deps i] ⊆ [0..i-1]), which is how
   both users produce them (queries reference earlier queries, steps read
   earlier steps) and makes the DAG acyclic by construction.  Waves list
   their members in ascending index order, so a serial walk of the waves
   is a topological order consistent with the original sequence. *)

let waves ~(n : int) ~(deps : int -> int list) : int list list =
  if n = 0 then []
  else begin
    let level = Array.make n 0 in
    for i = 0 to n - 1 do
      List.iter
        (fun j ->
          if j < 0 || j >= i then
            invalid_arg "Dag.waves: dependencies must reference earlier nodes";
          if level.(j) + 1 > level.(i) then level.(i) <- level.(j) + 1)
        (deps i)
    done;
    let max_level = Array.fold_left max 0 level in
    List.init (max_level + 1) (fun l ->
        List.filter (fun i -> level.(i) = l) (List.init n Fun.id))
  end
