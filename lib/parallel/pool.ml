(* A reusable domain pool.

   One pool serves both parallel layers of the runtime: intra-kernel chunk
   execution (lib/compile/backend.ml) and inter-query wave execution
   (lib/core/driver.ml).  The design constraints, in order:

   - [size <= 1] must be *exactly* the serial path: tasks run in order on
     the calling domain, exceptions propagate untouched, no domain is ever
     spawned.  [domains = 1] therefore reproduces the pre-parallel runtime
     bit for bit, including exception timing.

   - Domains are expensive and capped (the OCaml runtime supports ~128
     live domains), so workers are spawned lazily on the first parallel
     batch and [shutdown] joins them and returns the pool to its empty
     reusable state.  Creating a pool is free; only running a batch
     spawns.  An [at_exit] backstop shuts down any pool still live so a
     process never exits with workers blocked on the condition variable.

   - [run_all] must support nesting: a task running on a worker may itself
     call [run_all] on the same pool (an inter-query task running a
     chunked kernel).  The submitting domain therefore *helps*: while its
     batch is pending it pops and runs queued tasks — any batch's — and
     only blocks on the condition variable when the queue is empty.  A
     thread blocks only when every submitted task is already running
     elsewhere, so nesting cannot deadlock and the submitter's core is
     never idle.

   - A batch fails as a unit: the first exception (with its backtrace) is
     captured, tasks of that batch not yet started are skipped, and the
     exception is re-raised from [run_all] on the submitting domain once
     the batch drains.  Callers that want cross-task cancellation of
     *running* tasks share an [Atomic.t] flag in the tasks themselves (see
     the backend's deadline cadence). *)

type task = unit -> unit

(* One [run_all] call: tasks still outstanding plus the first failure. *)
type batch = {
  mutable pending : int;
  mutable failed : (exn * Printexc.raw_backtrace) option;
}

(* [enq_us = 0] means tracing was off at enqueue time: no wait/run spans
   are emitted for the entry, keeping the disabled path span-free. *)
type entry = { e_task : task; e_batch : batch; e_enq_us : int }

type t = {
  parallelism : int;  (* total lanes, counting the submitting domain *)
  mutex : Mutex.t;
  cond : Condition.t;  (* signals: queue non-empty, or a batch drained *)
  queue : entry Queue.t;
  mutable workers : unit Domain.t list;
  mutable n_workers : int;
  mutable stop : bool;
}

let create ~(domains : int) : t =
  {
    (* Leave headroom under the runtime's domain cap even if the caller
       asks for an absurd count; the capping never changes semantics,
       only how many lanes actually run. *)
    parallelism = max 1 (min domains 64);
    mutex = Mutex.create ();
    cond = Condition.create ();
    queue = Queue.create ();
    workers = [];
    n_workers = 0;
    stop = false;
  }

let size (t : t) : int = t.parallelism

let tasks_run = Galley_obs.Metrics.counter "pool.tasks_run"

(* Run one popped entry and retire it from its batch.  [skip] is decided
   under the pool mutex at pop time: once a batch has failed, its
   remaining tasks are dropped unrun. *)
let run_entry (t : t) (e : entry) ~(skip : bool) : unit =
  let b = e.e_batch in
  (* Queue-wait span: from enqueue to the moment a lane picked it up. *)
  if e.e_enq_us > 0 && Galley_obs.Trace.enabled () then
    Galley_obs.Trace.complete ~cat:"pool" ~name:"pool.wait" ~start_us:e.e_enq_us
      ~end_us:(Galley_obs.Clock.now_us ()) ();
  let failure =
    if skip then None
    else begin
      Galley_obs.Metrics.incr tasks_run;
      let run () =
        if e.e_enq_us > 0 then
          Galley_obs.Trace.span ~cat:"pool" ~name:"pool.task" e.e_task
        else e.e_task ()
      in
      try
        run ();
        None
      with ex -> Some (ex, Printexc.get_raw_backtrace ())
    end
  in
  Mutex.lock t.mutex;
  (match failure with
  | Some _ when b.failed = None -> b.failed <- failure
  | _ -> ());
  b.pending <- b.pending - 1;
  if b.pending = 0 then Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let rec worker_loop (t : t) : unit =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.cond t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* stop: exit *)
  else begin
    let entry = Queue.pop t.queue in
    let skip = entry.e_batch.failed <> None in
    Mutex.unlock t.mutex;
    run_entry t entry ~skip;
    worker_loop t
  end

(* Spawn up to [want] workers; called with the pool mutex held.  A failed
   spawn (domain cap reached elsewhere in the process) just leaves the
   pool with fewer lanes — the submitting domain still drains the queue. *)
let rec ensure_workers (t : t) (want : int) : unit =
  if t.n_workers < want then
    match Domain.spawn (fun () -> worker_loop t) with
    | d ->
        t.workers <- d :: t.workers;
        t.n_workers <- t.n_workers + 1;
        ensure_workers t want
    | exception _ -> ()

(* Pools with live workers, so [at_exit] can join them. *)
let live : t list ref = ref []
let live_mutex = Mutex.create ()

let register (t : t) : unit =
  Mutex.lock live_mutex;
  if not (List.memq t !live) then live := t :: !live;
  Mutex.unlock live_mutex

let unregister (t : t) : unit =
  Mutex.lock live_mutex;
  live := List.filter (fun p -> p != t) !live;
  Mutex.unlock live_mutex

(* Join all workers and return the pool to its empty reusable state: the
   next [run_all] spawns afresh.  Safe to call repeatedly; must not be
   called while a batch is in flight (the driver shuts down only after
   [run_all] has returned). *)
let shutdown (t : t) : unit =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  let ws = t.workers in
  t.workers <- [];
  t.n_workers <- 0;
  Mutex.unlock t.mutex;
  List.iter Domain.join ws;
  Mutex.lock t.mutex;
  t.stop <- false;
  Mutex.unlock t.mutex;
  unregister t

let () = at_exit (fun () -> List.iter shutdown !live)

let run_all (t : t) (tasks : task array) : unit =
  let n = Array.length tasks in
  if n = 0 then ()
  else if t.parallelism <= 1 || n = 1 then
    (* The exact serial path: in order, on this domain, exceptions raw. *)
    Array.iter (fun task -> task ()) tasks
  else begin
    let b = { pending = n; failed = None } in
    let enq_us =
      if Galley_obs.Trace.enabled () then Galley_obs.Clock.now_us () else 0
    in
    Mutex.lock t.mutex;
    Array.iter
      (fun task -> Queue.push { e_task = task; e_batch = b; e_enq_us = enq_us } t.queue)
      tasks;
    ensure_workers t (min (t.parallelism - 1) (n - 1));
    if t.n_workers > 0 then register t;
    Condition.broadcast t.cond;
    (* Help until our batch drains: run queued work (any batch's) and
       block only when the queue is empty. *)
    while b.pending > 0 do
      if Queue.is_empty t.queue then Condition.wait t.cond t.mutex
      else begin
        let entry = Queue.pop t.queue in
        let skip = entry.e_batch.failed <> None in
        Mutex.unlock t.mutex;
        run_entry t entry ~skip;
        Mutex.lock t.mutex
      end
    done;
    let failed = b.failed in
    Mutex.unlock t.mutex;
    match failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end
