(* Structured span tracing with Chrome trace_event JSON export.

   Collection is off by default and toggled globally ([enable]/[disable],
   or [GALLEY_TRACE=1] in the environment).  When off, [span] costs one
   atomic read and never builds attributes — the [attrs] thunk is only
   forced at emission time.  Each domain appends completed spans to its
   own buffer (via [Domain.DLS]); buffers are registered in a global
   list under a mutex so [drain] can merge them after worker domains
   have exited. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;  (* 'X' complete span, 'i' instant *)
  ev_ts : int;  (* microseconds since process start *)
  ev_dur : int;  (* microseconds; 0 for instants *)
  ev_tid : int;  (* domain id *)
  ev_args : (string * string) list;
}

let env_default () =
  match Sys.getenv_opt "GALLEY_TRACE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let on : bool Atomic.t = Atomic.make (env_default ())
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

type buffer = { mutable events : event list; b_tid : int }

let buffers : buffer list ref = ref []
let buffers_mutex = Mutex.create ()

let key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { events = []; b_tid = (Domain.self () :> int) } in
      Mutex.lock buffers_mutex;
      buffers := b :: !buffers;
      Mutex.unlock buffers_mutex;
      b)

let record ev =
  let b = Domain.DLS.get key in
  b.events <- ev :: b.events

let force_attrs = function None -> [] | Some f -> (f () : (string * string) list)

let span ?(cat = "galley") ~name ?attrs (f : unit -> 'a) : 'a =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Clock.now_us () in
    let emit args =
      let t1 = Clock.now_us () in
      record
        {
          ev_name = name;
          ev_cat = cat;
          ev_ph = 'X';
          ev_ts = t0;
          ev_dur = t1 - t0;
          ev_tid = (Domain.self () :> int);
          ev_args = args;
        }
    in
    match f () with
    | v ->
        emit (force_attrs attrs);
        v
    | exception e ->
        emit (("error", Printexc.to_string e) :: force_attrs attrs);
        raise e
  end

let instant ?(cat = "galley") ~name ?attrs () =
  if Atomic.get on then
    record
      {
        ev_name = name;
        ev_cat = cat;
        ev_ph = 'i';
        ev_ts = Clock.now_us ();
        ev_dur = 0;
        ev_tid = (Domain.self () :> int);
        ev_args = force_attrs attrs;
      }

(* Record a span whose start time was captured earlier (e.g. queue wait). *)
let complete ?(cat = "galley") ~name ~start_us ~end_us ?attrs () =
  if Atomic.get on then
    record
      {
        ev_name = name;
        ev_cat = cat;
        ev_ph = 'X';
        ev_ts = start_us;
        ev_dur = max 0 (end_us - start_us);
        ev_tid = (Domain.self () :> int);
        ev_args = force_attrs attrs;
      }

(* Remove and return all recorded events, oldest first. *)
let drain () : event list =
  Mutex.lock buffers_mutex;
  let evs =
    List.concat_map
      (fun b ->
        let e = b.events in
        b.events <- [];
        e)
      !buffers
  in
  Mutex.unlock buffers_mutex;
  List.sort (fun a b -> compare a.ev_ts b.ev_ts) evs

let reset () = ignore (drain ())

let to_chrome_json (events : event list) : string =
  let b = Buffer.create 4096 in
  let esc = Metrics.json_escape in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%d,\"dur\":%d,\"pid\":1,\"tid\":%d"
           (esc ev.ev_name) (esc ev.ev_cat) ev.ev_ph ev.ev_ts ev.ev_dur ev.ev_tid);
      if ev.ev_ph = 'i' then Buffer.add_string b ",\"s\":\"t\"";
      (match ev.ev_args with
      | [] -> ()
      | args ->
          Buffer.add_string b ",\"args\":{";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_string b ",";
              Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v)))
            args;
          Buffer.add_string b "}");
      Buffer.add_string b "}")
    events;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* Drain everything recorded so far and write it as Chrome trace JSON. *)
let write_file path =
  let events = drain () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json events));
  List.length events
