(* Robust trial statistics and regression verdicts, shared by the bench
   harness and the profiler.

   A measurement series is a list of wall-clock samples in seconds, with
   [nan] encoding a timed-out trial.  Summaries are median-based: the
   median absolute deviation (MAD) is the noise estimator, scaled by
   1.4826 so it is comparable to a standard deviation under Gaussian
   noise.  Comparisons classify a (baseline, current) pair of summaries
   into a [verdict]; a series only counts as a regression when the
   current median exceeds the baseline median by BOTH the noise floor
   (absolute) and the relative threshold (ratio), so single-trial jitter
   on one side cannot trip the gate. *)

type t = {
  n : int;  (* finite samples *)
  timeouts : int;  (* nan samples *)
  median : float;
  min : float;
  max : float;
  mean : float;
  mad : float;  (* raw median absolute deviation (unscaled) *)
}

let empty =
  {
    n = 0;
    timeouts = 0;
    median = Float.nan;
    min = Float.nan;
    max = Float.nan;
    mean = Float.nan;
    mad = Float.nan;
  }

(* Median of a non-empty sorted array: midpoint convention (the mean of
   the two central elements for even lengths), so two-trial series don't
   systematically report their slower trial. *)
let median_sorted (a : float array) : float =
  let n = Array.length a in
  if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let median_of (xs : float list) : float =
  match xs with
  | [] -> Float.nan
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      median_sorted a

let of_samples (samples : float list) : t =
  let finite, timeouts =
    List.partition (fun s -> not (Float.is_nan s)) samples
  in
  let timeouts = List.length timeouts in
  match finite with
  | [] -> { empty with timeouts }
  | _ ->
      let a = Array.of_list finite in
      Array.sort compare a;
      let n = Array.length a in
      let med = median_sorted a in
      let deviations = Array.map (fun x -> Float.abs (x -. med)) a in
      Array.sort compare deviations;
      {
        n;
        timeouts;
        median = med;
        min = a.(0);
        max = a.(n - 1);
        mean = Array.fold_left ( +. ) 0.0 a /. float_of_int n;
        mad = median_sorted deviations;
      }

(* Spread between fastest and slowest finite trial. *)
let spread (s : t) : float =
  if s.n = 0 then Float.nan else s.max -. s.min

(* Absolute noise floor of one series: k sigma-equivalents of MAD,
   bounded below by a relative fraction of the median (few-trial series
   often have MAD = 0) and an absolute floor (timer granularity). *)
let noise_floor ?(k = 3.0) ?(rel_floor = 0.10) ?(abs_floor = 5e-4) (s : t) :
    float =
  if s.n = 0 then abs_floor
  else
    Float.max abs_floor
      (Float.max (k *. 1.4826 *. s.mad) (rel_floor *. Float.abs s.median))

type verdict =
  | Regression
  | Improvement
  | Within_noise
  | New_series  (* present now, absent from the baseline *)
  | Missing_series  (* present in the baseline, absent now *)

let verdict_to_string = function
  | Regression -> "regression"
  | Improvement -> "improvement"
  | Within_noise -> "within-noise"
  | New_series -> "new-series"
  | Missing_series -> "missing-series"

(* Classify current vs baseline.  [rel_threshold] is the median ratio a
   regression (or improvement) must exceed on top of the noise floor.
   Timeouts are ranked worse than any finite time: a series that newly
   times out regresses, one that stops timing out improves. *)
let compare_stats ?(rel_threshold = 1.5) ?(k = 3.0) ?(rel_floor = 0.10)
    ?(abs_floor = 5e-4) ~(baseline : t) ~(current : t) () : verdict =
  match (baseline.n, current.n) with
  | 0, 0 -> Within_noise
  | 0, _ -> Improvement  (* was all-timeout, now finishes *)
  | _, 0 -> Regression  (* finished before, times out now *)
  | _ ->
      let floor =
        Float.max
          (noise_floor ~k ~rel_floor ~abs_floor baseline)
          (noise_floor ~k ~rel_floor ~abs_floor current)
      in
      if
        current.median -. baseline.median > floor
        && current.median > rel_threshold *. baseline.median
      then Regression
      else if
        baseline.median -. current.median > floor
        && baseline.median > rel_threshold *. current.median
      then Improvement
      else Within_noise

type comparison = {
  c_key : string;
  c_baseline : t option;
  c_current : t option;
  c_verdict : verdict;
}

(* Join two keyed summary lists (keys are opaque strings, e.g.
   "section/series/label") and classify every key present on either
   side.  Output preserves current-run order, then baseline-only keys. *)
let compare_keyed ?rel_threshold ?k ?rel_floor ?abs_floor
    (baseline : (string * t) list) (current : (string * t) list) :
    comparison list =
  let btbl = Hashtbl.create 64 in
  List.iter (fun (key, s) -> Hashtbl.replace btbl key s) baseline;
  let seen = Hashtbl.create 64 in
  let of_current =
    List.map
      (fun (key, cur) ->
        Hashtbl.replace seen key ();
        match Hashtbl.find_opt btbl key with
        | None ->
            { c_key = key; c_baseline = None; c_current = Some cur;
              c_verdict = New_series }
        | Some base ->
            {
              c_key = key;
              c_baseline = Some base;
              c_current = Some cur;
              c_verdict =
                compare_stats ?rel_threshold ?k ?rel_floor ?abs_floor
                  ~baseline:base ~current:cur ();
            })
      current
  in
  let missing =
    List.filter_map
      (fun (key, base) ->
        if Hashtbl.mem seen key then None
        else
          Some
            { c_key = key; c_baseline = Some base; c_current = None;
              c_verdict = Missing_series })
      baseline
  in
  of_current @ missing

let count_verdict (cs : comparison list) (v : verdict) : int =
  List.length (List.filter (fun c -> c.c_verdict = v) cs)
