(* Leveled logging facade.

   All diagnostic output from the library goes through here instead of
   ad-hoc [Printf.eprintf], so test output stays clean by default.  The
   threshold comes from [GALLEY_LOG=debug|info|warn|error] (default
   [Warn]).  Emission counts per level are tracked so tests and CI can
   assert that nothing at warn+ fired. *)

type level = Debug | Info | Warn | Error

let level_index = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function
  | Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let default_level () =
  match Sys.getenv_opt "GALLEY_LOG" with
  | Some s -> (match level_of_string s with Some l -> l | None -> Warn)
  | None -> Warn

(* Threshold encoded as its index so it fits an [int Atomic.t]. *)
let threshold : int Atomic.t = Atomic.make (level_index (default_level ()))

let set_level (l : level) = Atomic.set threshold (level_index l)
let get_level () : level =
  match Atomic.get threshold with
  | 0 -> Debug | 1 -> Info | 2 -> Warn | _ -> Error

let enabled (l : level) = level_index l >= Atomic.get threshold

(* Per-level emission counters (indexed by [level_index]).  A message
   counts as emitted when it passes the threshold, regardless of sink. *)
let emitted : int Atomic.t array = Array.init 4 (fun _ -> Atomic.make 0)
let emitted_count (l : level) = Atomic.get emitted.(level_index l)
let reset_counts () = Array.iter (fun c -> Atomic.set c 0) emitted

(* Optional sink override for tests; default writes one line to stderr. *)
let sink : (level -> string -> unit) option ref = ref None
let set_sink f = sink := f

(* Request-id context: when set, every emitted line is prefixed with
   [rid] so log output can be correlated with flight records and span
   attrs.  Global, not thread-local — serve's single executor thread
   sets it around each request, which covers the lines that matter. *)
let context : string option Atomic.t = Atomic.make None
let set_context c = Atomic.set context c
let get_context () = Atomic.get context

let emit_mutex = Mutex.create ()

let emit l msg =
  Atomic.incr emitted.(level_index l);
  let msg =
    match Atomic.get context with
    | Some rid -> Printf.sprintf "[%s] %s" rid msg
    | None -> msg
  in
  match !sink with
  | Some f -> f l msg
  | None ->
      Mutex.lock emit_mutex;
      Printf.eprintf "galley[%s] %s\n%!" (level_name l) msg;
      Mutex.unlock emit_mutex

let logf l fmt =
  if enabled l then Printf.ksprintf (fun s -> emit l s) fmt
  else Printf.ikfprintf (fun _ -> ()) () fmt

let debug fmt = logf Debug fmt
let info fmt = logf Info fmt
let warn fmt = logf Warn fmt
let error fmt = logf Error fmt
