(* Facade for the observability subsystem: spans, metrics, logging,
   and the estimator-accuracy audit.  See DESIGN.md "Observability". *)

module Clock = Clock
module Log = Log
module Metrics = Metrics
module Trace = Trace
module Audit = Audit
module Perfstats = Perfstats
module Profile = Profile
module Json = Json
module Flight = Flight
module Sampler = Sampler
module Journal = Journal
module Audit_report = Audit_report

let span = Trace.span
let instant = Trace.instant
let tracing = Trace.enabled
