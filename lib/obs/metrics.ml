(* Process-wide metrics registry: counters, gauges, and power-of-two
   histograms, all domain-safe.

   Counters and histograms are plain [Atomic] cells, so recording is a
   handful of nanoseconds and is left enabled unconditionally at cheap
   call sites (cache probes, tier activations, ...).  Call sites whose
   *collection* is itself expensive — e.g. counting nnz of kernel
   operands — must guard on [detailed ()], which is off unless the
   caller (CLI [--metrics], bench, tests) opts in. *)

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t }

type histogram = {
  h_name : string;
  (* bucket [i] counts observations v with [bits v = i], i.e. bucket
     boundaries at powers of two; values are expected non-negative ints
     (microseconds, nnz, ticks, ...). *)
  h_buckets : int Atomic.t array;
  h_sum : int Atomic.t;
  h_count : int Atomic.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let detailed_flag = Atomic.make false
let detailed () = Atomic.get detailed_flag
let set_detailed b = Atomic.set detailed_flag b

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* Optional help strings for the Prometheus exposition ([# HELP] lines):
   declared with the metric ([?help] below) or registered after the fact
   with [describe]; everything else gets a generated default naming the
   source metric. *)
let help_registry : (string, string) Hashtbl.t = Hashtbl.create 16

let note_help name = function
  | Some h -> Hashtbl.replace help_registry name h
  | None -> ()

let counter ?help name : counter =
  with_registry (fun () ->
      note_help name help;
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> c
      | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
      | None ->
          let c = { c_name = name; c_value = Atomic.make 0 } in
          Hashtbl.replace registry name (Counter c);
          c)

let gauge ?help name : gauge =
  with_registry (fun () ->
      note_help name help;
      match Hashtbl.find_opt registry name with
      | Some (Gauge g) -> g
      | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")
      | None ->
          let g = { g_name = name; g_value = Atomic.make 0.0 } in
          Hashtbl.replace registry name (Gauge g);
          g)

let histogram ?help name : histogram =
  with_registry (fun () ->
      note_help name help;
      match Hashtbl.find_opt registry name with
      | Some (Histogram h) -> h
      | Some _ ->
          invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
      | None ->
          let h =
            {
              h_name = name;
              h_buckets = Array.init 63 (fun _ -> Atomic.make 0);
              h_sum = Atomic.make 0;
              h_count = Atomic.make 0;
            }
          in
          Hashtbl.replace registry name (Histogram h);
          h)

let add (c : counter) (n : int) = ignore (Atomic.fetch_and_add c.c_value n)
let incr (c : counter) = add c 1
let value (c : counter) = Atomic.get c.c_value

(* Shorthand for one-off bumps where caching the counter isn't worth it. *)
let incr_named name = incr (counter name)
let add_named name n = add (counter name) n

let set_gauge (g : gauge) (v : float) = Atomic.set g.g_value v
let gauge_value (g : gauge) = Atomic.get g.g_value

(* Bucket index = position of the highest set bit (floor log2), capped. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 1 do
      i := !i + 1;
      v := !v lsr 1
    done;
    Stdlib.min 62 !i
  end

let observe (h : histogram) (v : int) =
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.h_sum (max 0 v));
  ignore (Atomic.fetch_and_add h.h_count 1)

let histogram_count (h : histogram) = Atomic.get h.h_count
let histogram_sum (h : histogram) = Atomic.get h.h_sum

(* Quantile estimate from the power-of-two buckets: walk buckets until
   the cumulative count reaches rank ceil(q * count) and report that
   bucket's upper edge (2^(i+1) - 1; bucket 0 covers v <= 1).  An upper
   bound, so percentile-based alerts err conservative.  0.0 on an empty
   histogram. *)
let percentile (h : histogram) (q : float) : float =
  let total = histogram_count h in
  if total = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank && !i < Array.length h.h_buckets do
      seen := !seen + Atomic.get h.h_buckets.(!i);
      if !seen < rank then i := !i + 1
    done;
    let i = Stdlib.min !i (Array.length h.h_buckets - 1) in
    if i = 0 then 1.0 else Float.of_int ((1 lsl (i + 1)) - 1)
  end

(* Lookup without creating; used by dumps and tests. *)
let find name = with_registry (fun () -> Hashtbl.find_opt registry name)

let counter_value name =
  match find name with Some (Counter c) -> Some (value c) | _ -> None

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c.c_value 0
          | Gauge g -> Atomic.set g.g_value 0.0
          | Histogram h ->
              Array.iter (fun b -> Atomic.set b 0) h.h_buckets;
              Atomic.set h.h_sum 0;
              Atomic.set h.h_count 0)
        registry)

let sorted_metrics () =
  let all = with_registry (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry []) in
  let name = function
    | Counter c -> c.c_name
    | Gauge g -> g.g_name
    | Histogram h -> h.h_name
  in
  List.sort (fun a b -> compare (name a) (name b)) all

(* Snapshot of scalar values (histograms contribute sum/count/mean rows);
   convenient for tests and the bench JSON. *)
let snapshot () : (string * float) list =
  List.concat_map
    (function
      | Counter c -> [ (c.c_name, float_of_int (value c)) ]
      | Gauge g -> [ (g.g_name, gauge_value g) ]
      | Histogram h ->
          let n = histogram_count h in
          let s = histogram_sum h in
          [
            (h.h_name ^ ".count", float_of_int n);
            (h.h_name ^ ".sum", float_of_int s);
            ( h.h_name ^ ".mean",
              if n = 0 then 0.0 else float_of_int s /. float_of_int n );
            (h.h_name ^ ".p50", percentile h 0.50);
            (h.h_name ^ ".p90", percentile h 0.90);
            (h.h_name ^ ".p99", percentile h 0.99);
            (h.h_name ^ ".p999", percentile h 0.999);
          ])
    (sorted_metrics ())

let dump () : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "== metrics ==\n";
  List.iter
    (function
      | Counter c -> Buffer.add_string b (Printf.sprintf "%-42s %d\n" c.c_name (value c))
      | Gauge g ->
          Buffer.add_string b (Printf.sprintf "%-42s %g\n" g.g_name (gauge_value g))
      | Histogram h ->
          let n = histogram_count h in
          let s = histogram_sum h in
          let mean = if n = 0 then 0.0 else float_of_int s /. float_of_int n in
          Buffer.add_string b
            (Printf.sprintf "%-42s count=%d sum=%d mean=%.1f\n" h.h_name n s mean);
          if n > 0 then
            Buffer.add_string b
              (Printf.sprintf
                 "%-42s   p50<=%.0f p90<=%.0f p99<=%.0f p99.9<=%.0f\n" ""
                 (percentile h 0.50) (percentile h 0.90) (percentile h 0.99)
                 (percentile h 0.999)))
    (sorted_metrics ());
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Prometheus text exposition format (version 0.0.4).

   Metric names are sanitized ([a-zA-Z0-9_:] only) and prefixed with
   [galley_]; counters keep their monotonic semantics, gauges map
   directly, and power-of-two histograms are rendered as cumulative
   [_bucket{le="2^(i+1)-1"}] series plus [+Inf]/[_sum]/[_count].  Empty
   histogram buckets above the highest observation are elided to keep
   the payload small. *)
let prom_name name =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "galley_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let describe name help =
  with_registry (fun () -> Hashtbl.replace help_registry name help)

(* [fallback] is the sanitized exposition name: the default text must
   not leak raw dotted metric names into the exposition. *)
let help_of ?fallback name =
  match with_registry (fun () -> Hashtbl.find_opt help_registry name) with
  | Some h -> h
  | None ->
      "Galley metric " ^ (match fallback with Some f -> f | None -> name) ^ "."

(* HELP text escaping per the exposition format: backslash and newline. *)
let prom_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dump_prometheus () : string =
  let b = Buffer.create 2048 in
  let help n orig =
    Buffer.add_string b
      (Printf.sprintf "# HELP %s %s\n" n (prom_escape (help_of ~fallback:n orig)))
  in
  List.iter
    (function
      | Counter c ->
          let n = prom_name c.c_name in
          help n c.c_name;
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
          Buffer.add_string b (Printf.sprintf "%s %d\n" n (value c))
      | Gauge g ->
          let n = prom_name g.g_name in
          help n g.g_name;
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
          Buffer.add_string b (Printf.sprintf "%s %.17g\n" n (gauge_value g))
      | Histogram h ->
          let n = prom_name h.h_name in
          help n h.h_name;
          Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
          let nb = Array.length h.h_buckets in
          (* highest bucket with any observations (the 62 overflow
             bucket folds into +Inf below) *)
          let hi = ref (-1) in
          for i = 0 to nb - 2 do
            if Atomic.get h.h_buckets.(i) > 0 then hi := i
          done;
          let cum = ref 0 in
          for i = 0 to !hi do
            cum := !cum + Atomic.get h.h_buckets.(i);
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n
                 ((1 lsl (i + 1)) - 1) !cum)
          done;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (histogram_count h));
          Buffer.add_string b (Printf.sprintf "%s_sum %d\n" n (histogram_sum h));
          Buffer.add_string b
            (Printf.sprintf "%s_count %d\n" n (histogram_count h)))
    (sorted_metrics ());
  Buffer.contents b

let dump_json () : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{";
  let first = ref true in
  List.iter
    (fun (name, v) ->
      if not !first then Buffer.add_string b ",";
      first := false;
      let sv =
        if Float.is_integer v && Float.abs v < 1e15 then
          Printf.sprintf "%.0f" v
        else Printf.sprintf "%g" v
      in
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" (json_escape name) sv))
    (snapshot ());
  Buffer.add_string b "}";
  Buffer.contents b
