(* Tail-based trace sampling for the serve daemon.

   Spans are collected for *every* request (tracing stays enabled), but a
   request's events are only retained — as an in-memory Chrome trace and,
   when a directory is configured, a `trace-<seq>-<id>.json` file — when
   the finished request turns out to be interesting: an explicit trigger
   fired (error, shed, tier degradation, fixpoint replan) or the request
   was slow relative to a rolling percentile of recent durations.
   Everything else is drained and dropped, so in the common case tracing
   costs only the per-span buffer appends.

   The request lifecycle ([begin_request] / [end_request]) assumes a
   single executing thread per sampler — true in serve, where one
   executor thread runs all queries — so a [Trace.drain] at the request
   boundary captures exactly that request's spans.  [keep_all] mode
   accumulates every drained event instead (used by `serve --trace FILE`
   so the flag keeps its whole-run meaning). *)

type decision = {
  kept : bool;
  reason : string;  (* first trigger, or "slow", or "" when dropped *)
  trace_name : string;  (* file basename when written, else "" *)
}

type retained = {
  rt_seq : int;
  rt_id : string;
  rt_reason : string;
  rt_name : string;  (* trace-<seq>-<id>.json *)
  rt_events : Trace.event list;
}

type t = {
  dir : string option;  (* write retained traces here as they happen *)
  percentile : float;  (* slow trigger: duration > pXX of recent window *)
  window : int array;  (* rolling window of recent durations, us *)
  mutable window_len : int;
  mutable window_pos : int;
  min_window : int;  (* no slow trigger until this many samples seen *)
  max_keep : int;  (* in-memory retained-trace ring size *)
  keep_all : bool;
  mutable retained : retained list;  (* newest first, <= max_keep *)
  mutable all_events : Trace.event list;  (* keep_all accumulator, newest first *)
  mutable seq : int;
  mutable trace_was_on : bool;
  mutex : Mutex.t;
}

let m_retained = Metrics.counter "sampler.retained"
let m_dropped = Metrics.counter "sampler.dropped"

let create ?dir ?(percentile = 0.90) ?(window = 128) ?(min_window = 16)
    ?(max_keep = 8) ?(keep_all = false) () : t =
  if window <= 0 then invalid_arg "Sampler.create: window must be positive";
  {
    dir;
    percentile = Float.max 0.0 (Float.min 1.0 percentile);
    window = Array.make window 0;
    window_len = 0;
    window_pos = 0;
    min_window = Stdlib.max 1 min_window;
    max_keep = Stdlib.max 1 max_keep;
    keep_all;
    retained = [];
    all_events = [];
    seq = 0;
    trace_was_on = false;
    mutex = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Percentile of the rolling window (same nearest-rank convention as
   Metrics.percentile, but exact: the window is small enough to sort). *)
let slow_threshold (t : t) : int option =
  locked t (fun () ->
      if t.window_len < t.min_window then None
      else begin
        let a = Array.sub t.window 0 t.window_len in
        Array.sort compare a;
        let rank =
          Stdlib.max 1
            (int_of_float (Float.ceil (t.percentile *. float_of_int t.window_len)))
        in
        Some a.(rank - 1)
      end)

let push_duration t d =
  t.window.(t.window_pos) <- Stdlib.max 0 d;
  t.window_pos <- (t.window_pos + 1) mod Array.length t.window;
  t.window_len <- Stdlib.min (t.window_len + 1) (Array.length t.window)

(* Make a request id safe to embed in a filename. *)
let sanitize id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    id

let write_trace_file path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Trace.to_chrome_json events))

(* Start collecting spans for one request: turn tracing on and flush any
   stray events recorded since the last boundary (kept in [keep_all]
   mode, dropped otherwise). *)
let begin_request (t : t) : unit =
  t.trace_was_on <- Trace.enabled ();
  Trace.enable ();
  let strays = Trace.drain () in
  if t.keep_all && strays <> [] then
    locked t (fun () -> t.all_events <- List.rev_append strays t.all_events)

(* Finish one request: decide retention from the caller's triggers plus
   the rolling-percentile slow check (against *previous* durations, so
   the first anomaly after a stable baseline is caught). *)
let end_request (t : t) ~id ~duration_us ~(triggers : string list) : decision =
  let events = Trace.drain () in
  if not t.trace_was_on then Trace.disable ();
  let threshold = slow_threshold t in
  let slow = match threshold with Some th -> duration_us > th | None -> false in
  let reason =
    match triggers with r :: _ -> r | [] -> if slow then "slow" else ""
  in
  locked t (fun () ->
      push_duration t duration_us;
      if t.keep_all then t.all_events <- List.rev_append events t.all_events;
      if reason = "" then begin
        Metrics.incr m_dropped;
        { kept = false; reason = ""; trace_name = "" }
      end
      else begin
        t.seq <- t.seq + 1;
        let name = Printf.sprintf "trace-%04d-%s.json" t.seq (sanitize id) in
        let r =
          { rt_seq = t.seq; rt_id = id; rt_reason = reason; rt_name = name;
            rt_events = events }
        in
        t.retained <-
          r :: (if List.length t.retained >= t.max_keep then
                  List.filteri (fun i _ -> i < t.max_keep - 1) t.retained
                else t.retained);
        Metrics.incr m_retained;
        (match t.dir with
        | Some dir -> (
            try write_trace_file (Filename.concat dir name) events
            with Sys_error e -> Log.warn "sampler: cannot write %s: %s" name e)
        | None -> ());
        { kept = true; reason; trace_name = name }
      end)

(* Retained traces still in memory, oldest first. *)
let retained (t : t) : retained list = locked t (fun () -> List.rev t.retained)

(* Write every in-memory retained trace into [dir]; returns the file
   names written.  Used for incident dumps when no telemetry dir was
   configured up front. *)
let write_retained (t : t) (dir : string) : string list =
  List.map
    (fun r ->
      write_trace_file (Filename.concat dir r.rt_name) r.rt_events;
      r.rt_name)
    (retained t)

(* [keep_all] mode: write everything accumulated (plus anything still in
   the live buffers) as one Chrome trace; returns the event count. *)
let write_all (t : t) (path : string) : int =
  let live = Trace.drain () in
  let events =
    locked t (fun () ->
        let evs = List.rev_append t.all_events live in
        t.all_events <- [];
        List.sort (fun a b -> compare a.Trace.ev_ts b.Trace.ev_ts) evs)
  in
  write_trace_file path events;
  List.length events
