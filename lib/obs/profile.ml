(* Span profiler: aggregates the flat span buffers collected by [Trace]
   into per-domain call trees with inclusive/exclusive (self) time, and
   derives the three artifacts the `galley profile` command serves:

   - per-span-name rollups (count, inclusive, self) — the phase table;
   - collapsed stacks ("a;b;c <self_us>" lines), the interchange format
     flamegraph.pl and speedscope both import;
   - a hot-kernel table joining each `kernel:*` span with the
     attribution attributes the engine attaches (loop order, per-level
     merge strategy, output formats, backend), so time is charged to
     physical-plan choices rather than to anonymous kernels.

   Nesting is reconstructed from timestamps: within one domain (tid),
   spans are sorted by (start ascending, duration descending) and folded
   over a stack, a span becoming a child of the innermost span whose
   [start, end] interval contains it.  [Clock.now_us] is monotonic
   within the process, so on a single domain this recovers the dynamic
   call tree exactly; concurrent domains produce separate trees. *)

type node = {
  p_name : string;
  p_cat : string;
  p_tid : int;
  p_start_us : int;
  p_incl_us : int;
  p_args : (string * string) list;
  mutable p_children : node list;  (* in start order *)
}

let contains (outer : node) (inner : node) : bool =
  inner.p_start_us >= outer.p_start_us
  && inner.p_start_us + inner.p_incl_us <= outer.p_start_us + outer.p_incl_us

(* Build the forest (roots in start order) from drained trace events.
   Instants carry no duration and are dropped. *)
let build (events : Trace.event list) : node list =
  let spans =
    List.filter (fun (e : Trace.event) -> e.Trace.ev_ph = 'X') events
  in
  let by_tid = Hashtbl.create 4 in
  List.iter
    (fun (e : Trace.event) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_tid e.Trace.ev_tid)
      in
      Hashtbl.replace by_tid e.Trace.ev_tid (e :: prev))
    spans;
  let tids =
    List.sort compare (Hashtbl.fold (fun tid _ acc -> tid :: acc) by_tid [])
  in
  List.concat_map
    (fun tid ->
      let evs = Array.of_list (Hashtbl.find by_tid tid) in
      Array.sort
        (fun (a : Trace.event) (b : Trace.event) ->
          if a.Trace.ev_ts <> b.Trace.ev_ts then
            compare a.Trace.ev_ts b.Trace.ev_ts
          else compare b.Trace.ev_dur a.Trace.ev_dur)
        evs;
      let roots = ref [] in
      let stack = ref [] in
      Array.iter
        (fun (e : Trace.event) ->
          let node =
            {
              p_name = e.Trace.ev_name;
              p_cat = e.Trace.ev_cat;
              p_tid = e.Trace.ev_tid;
              p_start_us = e.Trace.ev_ts;
              p_incl_us = e.Trace.ev_dur;
              p_args = e.Trace.ev_args;
              p_children = [];
            }
          in
          while !stack <> [] && not (contains (List.hd !stack) node) do
            stack := List.tl !stack
          done;
          (match !stack with
          | [] -> roots := node :: !roots
          | parent :: _ -> parent.p_children <- node :: parent.p_children);
          stack := node :: !stack)
        evs;
      let rec order (n : node) : unit =
        n.p_children <- List.rev n.p_children;
        List.iter order n.p_children
      in
      let roots = List.rev !roots in
      List.iter order roots;
      roots)
    tids

(* Self time: inclusive minus children's inclusive, clamped at zero
   (clock granularity can make children sum past their parent by a few
   microseconds). *)
let exclusive_us (n : node) : int =
  Stdlib.max 0
    (n.p_incl_us
    - List.fold_left (fun acc c -> acc + c.p_incl_us) 0 n.p_children)

let rec iter_nodes (f : node -> unit) (n : node) : unit =
  f n;
  List.iter (iter_nodes f) n.p_children

let iter_forest (f : node -> unit) (forest : node list) : unit =
  List.iter (iter_nodes f) forest

(* Sum of root inclusive times: total profiled time per the forest.
   With one domain this is the wall time under the outermost span(s). *)
let total_incl_us (forest : node list) : int =
  List.fold_left (fun acc r -> acc + r.p_incl_us) 0 forest

let total_excl_us (forest : node list) : int =
  let acc = ref 0 in
  iter_forest (fun n -> acc := !acc + exclusive_us n) forest;
  !acc

(* ------------------------------------------------------------------ *)
(* Per-span-name rollups (the phase table).                             *)
(* ------------------------------------------------------------------ *)

type rollup = {
  r_name : string;
  r_cat : string;
  r_count : int;
  r_incl_us : int;  (* double-counts same-name nesting; none in our taxonomy *)
  r_excl_us : int;
}

(* Rollups sorted by self time, descending. *)
let rollups (forest : node list) : rollup list =
  let tbl : (string, rollup ref) Hashtbl.t = Hashtbl.create 32 in
  iter_forest
    (fun n ->
      let r =
        match Hashtbl.find_opt tbl n.p_name with
        | Some r -> r
        | None ->
            let r =
              ref
                { r_name = n.p_name; r_cat = n.p_cat; r_count = 0;
                  r_incl_us = 0; r_excl_us = 0 }
            in
            Hashtbl.replace tbl n.p_name r;
            r
      in
      r :=
        {
          !r with
          r_count = !r.r_count + 1;
          r_incl_us = !r.r_incl_us + n.p_incl_us;
          r_excl_us = !r.r_excl_us + exclusive_us n;
        })
    forest;
  let all = Hashtbl.fold (fun _ r acc -> !r :: acc) tbl [] in
  List.sort
    (fun a b ->
      if a.r_excl_us <> b.r_excl_us then compare b.r_excl_us a.r_excl_us
      else compare a.r_name b.r_name)
    all

(* ------------------------------------------------------------------ *)
(* Collapsed stacks (flamegraph.pl / speedscope import format).         *)
(* ------------------------------------------------------------------ *)

(* One line per distinct stack, "root;child;leaf <self_us>", self times
   of identical stacks summed, lines sorted for stable diffs.  Frames
   have ';' replaced so the separator stays unambiguous. *)
let collapsed (forest : node list) : string =
  let clean name =
    String.map (function ';' -> ',' | ' ' -> '_' | c -> c) name
  in
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let rec walk (prefix : string) (n : node) : unit =
    let frame = clean n.p_name in
    let stack = if prefix = "" then frame else prefix ^ ";" ^ frame in
    let self = exclusive_us n in
    if self > 0 then
      Hashtbl.replace tbl stack
        (self + Option.value ~default:0 (Hashtbl.find_opt tbl stack));
    List.iter (walk stack) n.p_children
  in
  List.iter (walk "") forest;
  let lines = Hashtbl.fold (fun s v acc -> (s, v) :: acc) tbl [] in
  let b = Buffer.create 1024 in
  List.iter
    (fun (stack, self) ->
      Buffer.add_string b stack;
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int self);
      Buffer.add_char b '\n')
    (List.sort compare lines);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Hot-kernel table.                                                    *)
(* ------------------------------------------------------------------ *)

type kernel_row = {
  k_kernel : string;  (* span name sans the "kernel:" prefix *)
  k_count : int;
  k_incl_us : int;
  k_excl_us : int;
  k_loop : string;  (* loop order, comma-separated *)
  k_merge : string;  (* per-level merge/iteration strategy *)
  k_formats : string;  (* output formats *)
  k_backend : string;
  k_out_nnz : int;  (* last observed output nnz, -1 if never recorded *)
}

let arg ?(default = "?") (key : string) (n : node) : string =
  Option.value ~default (List.assoc_opt key n.p_args)

(* Kernel spans grouped by (name, loop order, merge strategy) — the same
   logical kernel planned differently shows up as distinct rows — sorted
   by self time, descending. *)
let kernels (forest : node list) : kernel_row list =
  let tbl : (string, kernel_row ref) Hashtbl.t = Hashtbl.create 16 in
  iter_forest
    (fun n ->
      let prefix = "kernel:" in
      let pl = String.length prefix in
      if
        String.length n.p_name > pl && String.sub n.p_name 0 pl = prefix
      then begin
        let kernel = String.sub n.p_name pl (String.length n.p_name - pl) in
        let loop = arg "loop" n in
        let merge = arg "merge" n in
        let key = kernel ^ "|" ^ loop ^ "|" ^ merge in
        let r =
          match Hashtbl.find_opt tbl key with
          | Some r -> r
          | None ->
              let r =
                ref
                  {
                    k_kernel = kernel;
                    k_count = 0;
                    k_incl_us = 0;
                    k_excl_us = 0;
                    k_loop = loop;
                    k_merge = merge;
                    k_formats = arg "out_formats" n;
                    k_backend = arg "backend" n;
                    k_out_nnz = -1;
                  }
              in
              Hashtbl.replace tbl key r;
              r
        in
        r :=
          {
            !r with
            k_count = !r.k_count + 1;
            k_incl_us = !r.k_incl_us + n.p_incl_us;
            k_excl_us = !r.k_excl_us + exclusive_us n;
            k_out_nnz =
              (match int_of_string_opt (arg ~default:"" "out_nnz" n) with
              | Some z when z >= 0 -> z
              | _ -> !r.k_out_nnz);
          }
      end)
    forest;
  let all = Hashtbl.fold (fun _ r acc -> !r :: acc) tbl [] in
  List.sort
    (fun a b ->
      if a.k_excl_us <> b.k_excl_us then compare b.k_excl_us a.k_excl_us
      else compare a.k_kernel b.k_kernel)
    all
