(* Minimal JSON reader for baseline files.

   The repo deliberately avoids external JSON dependencies: writers build
   documents by hand (with [Metrics.json_escape]), and this module is the
   matching reader — a small recursive-descent parser over the grammar
   subset those writers produce plus standard JSON.  Numbers parse as
   OCaml floats; object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string * int  (* message, byte offset *)

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("bad literal, expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 't' -> Buffer.add_char b '\t'
               | 'r' -> Buffer.add_char b '\r'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   (* Our writers only emit \u00xx for control bytes;
                      wider code points degrade to '?' rather than
                      growing a UTF-8 encoder here. *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else Buffer.add_char b '?';
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec members_loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            members := (key, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members_loop ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (msg, at) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let parse_file (path : string) : (t, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors (total: Option-typed, no exceptions).                      *)
(* ------------------------------------------------------------------ *)

let member (key : string) (v : t) : t option =
  match v with Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_list (v : t) : t list option = match v with Arr l -> Some l | _ -> None

let to_float (v : t) : float option =
  match v with Num f -> Some f | _ -> None

let to_string (v : t) : string option =
  match v with Str s -> Some s | _ -> None

let to_bool (v : t) : bool option = match v with Bool b -> Some b | _ -> None
