(* Estimator accuracy audit: predicted vs. actual nnz per materialized
   intermediate, with q-error aggregation.

   This module is deliberately generic — it stores labelled predictions
   and observed actuals keyed by query name; the driver decides which
   estimators produce the predictions and reads actual nnz off the
   executed tensors. *)

type entry = {
  a_query : string;
  mutable a_predicted : (string * float) list;  (* estimator label -> nnz *)
  mutable a_actual : float option;
}

type t = { mutable entries : entry list (* newest first *); mutex : Mutex.t }

let create () = { entries = []; mutex = Mutex.create () }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find_or_add t query =
  match List.find_opt (fun e -> e.a_query = query) t.entries with
  | Some e -> e
  | None ->
      let e = { a_query = query; a_predicted = []; a_actual = None } in
      t.entries <- e :: t.entries;
      e

let predict t ~query ~estimator value =
  locked t (fun () ->
      let e = find_or_add t query in
      e.a_predicted <- e.a_predicted @ [ (estimator, value) ])

let observe t ~query actual =
  locked t (fun () ->
      let e = find_or_add t query in
      e.a_actual <- Some actual)

(* Combine several audits (e.g. per-segment results of a statement
   program) into one read-only view: rows appear in audit order, each
   audit's entries in their own registration order. *)
let concat (ts : t list) : t =
  {
    entries =
      List.concat_map (fun t -> locked t (fun () -> t.entries)) (List.rev ts);
    mutex = Mutex.create ();
  }

(* q-error: max(pred/actual, actual/pred) after clamping both to >= 1,
   so empty results don't divide by zero and the result is always a
   finite value >= 1 (for finite inputs). *)
let q_error ~predicted ~actual =
  let p = Float.max 1.0 predicted and a = Float.max 1.0 actual in
  if Float.is_nan p || Float.is_nan a then Float.nan
  else Float.max (p /. a) (a /. p)

type row = {
  r_query : string;
  r_estimator : string;
  r_predicted : float;
  r_actual : float option;
  r_q_error : float option;
}

(* Rows in query-registration order, one per (query, estimator) pair. *)
let rows t : row list =
  locked t (fun () ->
      List.concat_map
        (fun e ->
          List.map
            (fun (label, p) ->
              {
                r_query = e.a_query;
                r_estimator = label;
                r_predicted = p;
                r_actual = e.a_actual;
                r_q_error =
                  Option.map (fun a -> q_error ~predicted:p ~actual:a) e.a_actual;
              })
            e.a_predicted)
        (List.rev t.entries))

type summary = {
  s_estimator : string;
  s_count : int;
  s_mean_q : float;  (* geometric mean of q-errors *)
  s_max_q : float;
}

let summaries t : summary list =
  let by_est = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun r ->
      match r.r_q_error with
      | None -> ()
      | Some q ->
          if not (Hashtbl.mem by_est r.r_estimator) then
            order := r.r_estimator :: !order;
          let prev = try Hashtbl.find by_est r.r_estimator with Not_found -> [] in
          Hashtbl.replace by_est r.r_estimator (q :: prev))
    (rows t);
  List.rev_map
    (fun est ->
      let qs = Hashtbl.find by_est est in
      let n = List.length qs in
      let log_sum = List.fold_left (fun acc q -> acc +. Float.log q) 0.0 qs in
      {
        s_estimator = est;
        s_count = n;
        s_mean_q = Float.exp (log_sum /. float_of_int n);
        s_max_q = List.fold_left Float.max 1.0 qs;
      })
    !order

let pp_rows fmt t =
  let rs = rows t in
  Format.fprintf fmt "%-16s %-10s %14s %14s %10s@."
    "query" "estimator" "predicted" "actual" "q-error";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-16s %-10s %14.1f %14s %10s@."
        r.r_query r.r_estimator r.r_predicted
        (match r.r_actual with Some a -> Printf.sprintf "%.0f" a | None -> "-")
        (match r.r_q_error with Some q -> Printf.sprintf "%.2f" q | None -> "-"))
    rs;
  List.iter
    (fun s ->
      Format.fprintf fmt "[%s] n=%d geo-mean q-error=%.2f max=%.2f@."
        s.s_estimator s.s_count s.s_mean_q s.s_max_q)
    (summaries t)
