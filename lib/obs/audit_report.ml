(* Offline analysis of the rotating telemetry journals (DESIGN.md §16).

   `galley audit-report DIR` ingests the [audit.jsonl] /
   [metrics.jsonl] files (and their [.1] rotations) that
   `galley serve --telemetry-dir` writes, and reduces the per-tensor
   estimator audit series to the calibration table ROADMAP item 2
   needs: per (tensor, estimator) sample counts, geo-mean and max
   q-error, an early-half vs late-half trend, and a candidate
   multiplicative correction factor — the geometric mean of
   actual/predicted, i.e. the constant the estimator's output should be
   scaled by to remove its systematic bias.  Lines that fail to parse
   (e.g. a rotation truncated mid-line) are skipped, not fatal. *)

type sample = {
  sm_ts : int;
  sm_query : string;
  sm_estimator : string;
  sm_predicted : float;
  sm_actual : float option;
  sm_q : float option;
}

type group = {
  ar_query : string;
  ar_estimator : string;
  ar_count : int;
  ar_geo_q : float;  (* geo-mean q-error over all samples *)
  ar_max_q : float;
  ar_early_q : float;  (* geo-mean over the older half (0 when empty) *)
  ar_late_q : float;  (* geo-mean over the newer half *)
  ar_correction : float;  (* geo-mean of actual/predicted *)
}

(* ------------------------------------------------------------------ *)
(* Loading.                                                             *)
(* ------------------------------------------------------------------ *)

let sample_of_json (j : Json.t) : sample option =
  let str k = Option.bind (Json.member k j) Json.to_string in
  let num k = Option.bind (Json.member k j) Json.to_float in
  match (str "query", str "estimator", num "predicted") with
  | Some q, Some e, Some p ->
      Some
        {
          sm_ts = (match num "ts_us" with Some t -> int_of_float t | None -> 0);
          sm_query = q;
          sm_estimator = e;
          sm_predicted = p;
          sm_actual = num "actual";
          sm_q = num "q_error";
        }
  | _ -> None

(* Parse one JSONL file of audit rows; missing file or bad lines -> []. *)
let load_file (path : string) : sample list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let out = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match Json.parse line with
              | Ok j -> (
                  match sample_of_json j with
                  | Some s -> out := s :: !out
                  | None -> ())
              | Error _ -> ()
          done
        with End_of_file -> ());
    List.rev !out
  end

(* All audit samples under [dir], rotated generation first so the list
   is in (approximate) chronological order. *)
let load_dir (dir : string) : sample list =
  let audit = Filename.concat dir "audit.jsonl" in
  load_file (audit ^ ".1") @ load_file audit

(* ------------------------------------------------------------------ *)
(* Reduction.                                                           *)
(* ------------------------------------------------------------------ *)

let geo_mean (xs : float list) : float =
  match xs with
  | [] -> 0.0
  | _ ->
      let n = List.length xs in
      let log_sum =
        List.fold_left (fun acc x -> acc +. Float.log (Float.max x 1e-300)) 0.0 xs
      in
      Float.exp (log_sum /. float_of_int n)

(* Reduce samples to one row per (query, estimator), sorted by query
   then estimator.  The q-error recorded in the journal is preferred;
   rows that predate the q_error field fall back to recomputing it. *)
let groups (samples : sample list) : group list =
  let table : (string * string, sample list) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun s ->
      let k = (s.sm_query, s.sm_estimator) in
      if not (Hashtbl.mem table k) then order := k :: !order;
      Hashtbl.replace table k
        (s :: (try Hashtbl.find table k with Not_found -> [])))
    samples;
  let row (q, e) =
    let ss = List.rev (Hashtbl.find table (q, e)) in
    let ss = List.sort (fun a b -> compare a.sm_ts b.sm_ts) ss in
    let qerr s =
      match s.sm_q with
      | Some v -> Some v
      | None ->
          Option.map
            (fun a -> Audit.q_error ~predicted:s.sm_predicted ~actual:a)
            s.sm_actual
    in
    let qs = List.filter_map qerr ss in
    let corrections =
      List.filter_map
        (fun s ->
          Option.map
            (fun a -> Float.max 1.0 a /. Float.max 1.0 s.sm_predicted)
            s.sm_actual)
        ss
    in
    let n = List.length qs in
    let half = n / 2 in
    let early = List.filteri (fun i _ -> i < half) qs in
    let late = List.filteri (fun i _ -> i >= half) qs in
    {
      ar_query = q;
      ar_estimator = e;
      ar_count = n;
      ar_geo_q = geo_mean qs;
      ar_max_q = List.fold_left Float.max 1.0 qs;
      ar_early_q = geo_mean early;
      ar_late_q = geo_mean late;
      ar_correction = geo_mean corrections;
    }
  in
  !order
  |> List.rev_map row
  |> List.filter (fun g -> g.ar_count > 0)
  |> List.sort (fun a b ->
         compare (a.ar_query, a.ar_estimator) (b.ar_query, b.ar_estimator))

(* ------------------------------------------------------------------ *)
(* Metrics journal summary: snapshot count, time span, and the deltas   *)
(* of the serve request counters between the first and last snapshot.   *)
(* ------------------------------------------------------------------ *)

type metrics_summary = {
  ms_snapshots : int;
  ms_first_ts : int;
  ms_last_ts : int;
  ms_deltas : (string * float) list;  (* "serve.*" counters, first->last *)
}

let load_metrics (dir : string) : metrics_summary option =
  let parse path =
    if not (Sys.file_exists path) then []
    else begin
      let ic = open_in path in
      let out = ref [] in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          try
            while true do
              let line = input_line ic in
              if String.trim line <> "" then
                match Json.parse line with
                | Ok j -> out := j :: !out
                | Error _ -> ()
            done
          with End_of_file -> ());
      List.rev !out
    end
  in
  let metrics = Filename.concat dir "metrics.jsonl" in
  let snaps = parse (metrics ^ ".1") @ parse metrics in
  match snaps with
  | [] -> None
  | first :: _ ->
      let last = List.nth snaps (List.length snaps - 1) in
      let ts j =
        match Option.bind (Json.member "ts_us" j) Json.to_float with
        | Some t -> int_of_float t
        | None -> 0
      in
      let serve_counters j =
        match Json.member "metrics" j with
        | Some (Json.Obj fields) ->
            List.filter_map
              (fun (k, v) ->
                if String.length k >= 6 && String.sub k 0 6 = "serve." then
                  Option.map (fun f -> (k, f)) (Json.to_float v)
                else None)
              fields
        | _ -> []
      in
      let base = serve_counters first in
      let deltas =
        List.filter_map
          (fun (k, v1) ->
            match List.assoc_opt k base with
            | Some v0 when v1 >= v0 -> Some (k, v1 -. v0)
            | _ -> None)
          (serve_counters last)
      in
      Some
        {
          ms_snapshots = List.length snaps;
          ms_first_ts = ts first;
          ms_last_ts = ts last;
          ms_deltas = deltas;
        }

(* ------------------------------------------------------------------ *)
(* Rendering.                                                           *)
(* ------------------------------------------------------------------ *)

let render (gs : group list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-20s %-10s %6s %10s %10s %10s %10s %12s\n" "tensor"
       "estimator" "n" "geo-q" "max-q" "early-q" "late-q" "correction");
  List.iter
    (fun g ->
      Buffer.add_string b
        (Printf.sprintf "%-20s %-10s %6d %10.3f %10.3f %10.3f %10.3f %12.4g\n"
           g.ar_query g.ar_estimator g.ar_count g.ar_geo_q g.ar_max_q
           g.ar_early_q g.ar_late_q g.ar_correction))
    gs;
  Buffer.contents b

let group_to_json (g : group) : string =
  let num v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null" in
  Printf.sprintf
    {|{"tensor":"%s","estimator":"%s","count":%d,"geo_q":%s,"max_q":%s,"early_q":%s,"late_q":%s,"correction":%s}|}
    (Metrics.json_escape g.ar_query)
    (Metrics.json_escape g.ar_estimator)
    g.ar_count (num g.ar_geo_q) (num g.ar_max_q) (num g.ar_early_q)
    (num g.ar_late_q) (num g.ar_correction)

let to_json ?(metrics : metrics_summary option) (gs : group list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"groups\":[";
  List.iteri
    (fun i g ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (group_to_json g))
    gs;
  Buffer.add_string b "]";
  (match metrics with
  | None -> ()
  | Some m ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"metrics\":{\"snapshots\":%d,\"first_ts_us\":%d,\"last_ts_us\":%d,\"deltas\":{"
           m.ms_snapshots m.ms_first_ts m.ms_last_ts);
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":%.6g" (Metrics.json_escape k) v))
        m.ms_deltas;
      Buffer.add_string b "}}");
  Buffer.add_string b "}";
  Buffer.contents b
