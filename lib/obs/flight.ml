(* Flight recorder: a fixed-size ring buffer of structured per-request
   records (DESIGN.md "Continuous telemetry").

   Every request served by the daemon leaves one bounded-size record —
   request id, program/plan digests, QoS tier and the rung actually
   served, per-phase latency breakdown, cache hits, fixpoint
   iteration/replan counts, estimator q-errors, and the outcome — so an
   operator can always answer "what were the last N queries and what did
   the optimizer do to them", even after the interesting request is long
   gone.  Recording is a record allocation plus a mutex-guarded array
   store; the ring never grows, so the recorder is safe to leave on in
   production.  [write_jsonl] dumps the ring (oldest first) for incident
   files and the `galley debug` command. *)

type record = {
  fl_seq : int;  (* monotonic per-recorder ordinal, assigned by [note] *)
  fl_ts_us : int;  (* completion time, microseconds since process start *)
  fl_id : string;  (* request id (client-sent or server-assigned) *)
  fl_op : string;  (* "query" | "bind" | ... *)
  fl_outcome : string;  (* "ok" | "error:<kind>" | "shed:<kind>" *)
  fl_program : string;  (* program source digest (md5 prefix) *)
  fl_plan : string;  (* physical plan digest; "" when none was built *)
  fl_qos : string;  (* requested tier ("batch" when unbudgeted) *)
  fl_rung : string;  (* worst optimizer tier actually served; "" if none *)
  fl_queue_us : int;  (* time spent in the admission queue *)
  fl_logical_us : int;
  fl_physical_us : int;
  fl_compile_us : int;
  fl_execute_us : int;
  fl_total_us : int;  (* arrival-to-response latency *)
  fl_compiles : int;  (* cold kernel compiles (0 = fully warm) *)
  fl_kernels : int;  (* kernels run *)
  fl_cse_hits : int;
  fl_replans : int;  (* fixpoint plan switches in this request *)
  fl_iterations : int;  (* fixpoint iterations (0 for straight-line) *)
  fl_qerrors : (string * float) list;  (* estimator -> geo-mean q-error *)
  fl_trace : string;  (* retained trace name ("" = trace sampled away) *)
}

let empty_record ~id ~op =
  {
    fl_seq = 0;
    fl_ts_us = 0;
    fl_id = id;
    fl_op = op;
    fl_outcome = "ok";
    fl_program = "";
    fl_plan = "";
    fl_qos = "batch";
    fl_rung = "";
    fl_queue_us = 0;
    fl_logical_us = 0;
    fl_physical_us = 0;
    fl_compile_us = 0;
    fl_execute_us = 0;
    fl_total_us = 0;
    fl_compiles = 0;
    fl_kernels = 0;
    fl_cse_hits = 0;
    fl_replans = 0;
    fl_iterations = 0;
    fl_qerrors = [];
    fl_trace = "";
  }

(* A 12-hex-char content digest: long enough to correlate, short enough
   to read in a table. *)
let digest (s : string) : string = String.sub (Digest.to_hex (Digest.string s)) 0 12

type t = {
  ring : record option array;
  mutable head : int;  (* next write position *)
  mutable count : int;  (* total records ever noted *)
  mutex : Mutex.t;
}

let m_records = Metrics.counter "flight.records"

let create ~capacity () : t =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  { ring = Array.make capacity None; head = 0; count = 0; mutex = Mutex.create () }

let capacity (t : t) = Array.length t.ring

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Record one request; assigns the sequence number and timestamp. *)
let note (t : t) (r : record) : record =
  locked t (fun () ->
      let r = { r with fl_seq = t.count + 1; fl_ts_us = Clock.now_us () } in
      t.ring.(t.head) <- Some r;
      t.head <- (t.head + 1) mod Array.length t.ring;
      t.count <- t.count + 1;
      Metrics.incr m_records;
      r)

(* All retained records, oldest first. *)
let records (t : t) : record list =
  locked t (fun () ->
      let n = Array.length t.ring in
      let out = ref [] in
      for i = 1 to n do
        (* walk backwards from the newest slot, collecting into [out] *)
        match t.ring.((t.head - i + (2 * n)) mod n) with
        | Some r -> out := r :: !out
        | None -> ()
      done;
      !out)

let total (t : t) = locked t (fun () -> t.count)

let clear (t : t) =
  locked t (fun () ->
      Array.fill t.ring 0 (Array.length t.ring) None;
      t.head <- 0)

(* One record as a single-line JSON object (JSONL-friendly). *)
let to_json (r : record) : string =
  let b = Buffer.create 256 in
  let str k v =
    Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" k (Metrics.json_escape v))
  in
  let int k v = Buffer.add_string b (Printf.sprintf "\"%s\":%d" k v) in
  let comma () = Buffer.add_char b ',' in
  Buffer.add_char b '{';
  int "seq" r.fl_seq;
  comma ();
  int "ts_us" r.fl_ts_us;
  comma ();
  str "id" r.fl_id;
  comma ();
  str "op" r.fl_op;
  comma ();
  str "outcome" r.fl_outcome;
  comma ();
  str "program" r.fl_program;
  comma ();
  str "plan" r.fl_plan;
  comma ();
  str "qos" r.fl_qos;
  comma ();
  str "rung" r.fl_rung;
  comma ();
  int "queue_us" r.fl_queue_us;
  comma ();
  int "logical_us" r.fl_logical_us;
  comma ();
  int "physical_us" r.fl_physical_us;
  comma ();
  int "compile_us" r.fl_compile_us;
  comma ();
  int "execute_us" r.fl_execute_us;
  comma ();
  int "total_us" r.fl_total_us;
  comma ();
  int "compiles" r.fl_compiles;
  comma ();
  int "kernels" r.fl_kernels;
  comma ();
  int "cse_hits" r.fl_cse_hits;
  comma ();
  int "replans" r.fl_replans;
  comma ();
  int "iterations" r.fl_iterations;
  comma ();
  Buffer.add_string b "\"qerrors\":{";
  List.iteri
    (fun i (est, q) ->
      if i > 0 then comma ();
      Buffer.add_string b
        (Printf.sprintf "\"%s\":%s" (Metrics.json_escape est)
           (if Float.is_finite q then Printf.sprintf "%.4g" q else "null")))
    r.fl_qerrors;
  Buffer.add_string b "},";
  str "trace" r.fl_trace;
  Buffer.add_char b '}';
  Buffer.contents b

(* Dump the ring as JSONL, oldest record first; returns the record count. *)
let write_jsonl (t : t) (path : string) : int =
  let rs = records t in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun r ->
          output_string oc (to_json r);
          output_char oc '\n')
        rs);
  List.length rs
