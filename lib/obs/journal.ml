(* Rotating JSONL telemetry journal.

   `galley serve --telemetry-dir DIR` appends periodic metrics snapshots
   to [DIR/metrics.jsonl] and the per-tensor estimator audit series to
   [DIR/audit.jsonl] (the persisted calibration input for the estimator
   feedback loop, ROADMAP item 2).  Files rotate by size: when a file
   would exceed [max_bytes] it is renamed to [<file>.1] (replacing any
   previous rotation), so a long-running daemon holds at most two
   generations of each stream. *)

type t = { dir : string; max_bytes : int; mutex : Mutex.t }

let mkdir_p dir =
  let rec go d =
    if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
    else begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let create ~dir ?(max_bytes = 4 * 1024 * 1024) () : t =
  mkdir_p dir;
  { dir; max_bytes = Stdlib.max 4096 max_bytes; mutex = Mutex.create () }

let dir (t : t) = t.dir

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let file_size path = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0

(* Append one JSONL line to [dir/file], rotating first if the file is
   already at the size cap. *)
let append (t : t) ~file (line : string) : unit =
  locked t (fun () ->
      let path = Filename.concat t.dir file in
      if file_size path + String.length line + 1 > t.max_bytes then begin
        (try Sys.remove (path ^ ".1") with Sys_error _ -> ());
        try Sys.rename path (path ^ ".1") with Sys_error _ -> ()
      end;
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc line;
          output_char oc '\n'))

(* One full metrics-registry snapshot. *)
let snapshot (t : t) : unit =
  append t ~file:"metrics.jsonl"
    (Printf.sprintf {|{"ts_us":%d,"metrics":%s}|} (Clock.now_us ())
       (Metrics.dump_json ()))

(* Append the audit's per-query predicted/actual/q-error rows, tagged
   with the request id they came from. *)
let audit_rows (t : t) ~id (rows : Audit.row list) : unit =
  List.iter
    (fun (r : Audit.row) ->
      let num v =
        if Float.is_finite v then Printf.sprintf "%.6g" v else "null"
      in
      let opt = function Some v -> num v | None -> "null" in
      append t ~file:"audit.jsonl"
        (Printf.sprintf
           {|{"ts_us":%d,"id":"%s","query":"%s","estimator":"%s","predicted":%s,"actual":%s,"q_error":%s}|}
           (Clock.now_us ()) (Metrics.json_escape id)
           (Metrics.json_escape r.Audit.r_query)
           (Metrics.json_escape r.Audit.r_estimator)
           (num r.Audit.r_predicted) (opt r.Audit.r_actual)
           (opt r.Audit.r_q_error)))
    rows
