(* Monotonic-ish microsecond clock.

   OCaml 5.1's stdlib exposes no monotonic clock, so we derive timestamps
   from [Unix.gettimeofday] relative to process start and guard against
   wall-clock steps with a global high-water mark: [now_us] never returns
   a value smaller than any previously returned value, across domains. *)

let t0 = Unix.gettimeofday ()
let last : int Atomic.t = Atomic.make 0

let now_us () : int =
  let t = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  let rec bump () =
    let l = Atomic.get last in
    if t <= l then l
    else if Atomic.compare_and_set last l t then t
    else bump ()
  in
  bump ()
