(* Recursive-descent parser for textual tensor index notation.

   Grammar (one query per line; '#' comments):

     program  := ( query NEWLINE* )*  (with * outside the parens)
     query    := IDENT [ "[" idxs "]" ] "=" expr
     expr     := cmp
     cmp      := additive (("<" | "<=" | ">" | ">=" | "==" | "!=") additive)?
     additive := mult (("+" | "-") mult)*
     mult     := unary (("*" | "/") unary)*
     unary    := "-" unary | power
     power    := atom ("^" unary)?
     atom     := NUMBER
               | agg "[" idxs "]" "(" expr ")"         aggregates
               | func "(" expr ")"                     unary functions
               | IDENT "[" idxs "]"                    tensor access
               | IDENT                                 scalar tensor
               | "(" expr ")"
     agg      := "sum" | "prod" | "maxof" | "minof" | "orof" | "andof"
     func     := "sigmoid" | "relu" | "exp" | "log" | "sqrt" | "abs" | "sq"

   Accesses to names defined by earlier queries become [Alias]es when the
   program is run (the driver resolves them). *)

open Galley_plan

(* [pos] is the character offset of the offending token in the source. *)
exception Parse_error of { message : string; pos : int }

type state = {
  mutable toks : (Lexer.token * int) list;
  mutable last_pos : int; (* start offset of the most recent token *)
}

let state_of (src : string) : state =
  { toks = Lexer.tokenize_pos src; last_pos = 0 }

let peek (st : state) : Lexer.token =
  match st.toks with [] -> Lexer.EOF | (t, _) :: _ -> t

let advance (st : state) : Lexer.token =
  match st.toks with
  | [] -> Lexer.EOF
  | (t, p) :: rest ->
      st.toks <- rest;
      st.last_pos <- p;
      t

let fail (st : state) (message : string) =
  raise (Parse_error { message; pos = st.last_pos })

let expect (st : state) (t : Lexer.token) : unit =
  let got = advance st in
  if got <> t then
    fail st
      (Printf.sprintf "expected %s, got %s" (Lexer.token_to_string t)
         (Lexer.token_to_string got))

let agg_ops =
  [
    ("sum", Op.Add);
    ("prod", Op.Mul);
    ("maxof", Op.Max);
    ("minof", Op.Min);
    ("orof", Op.Or);
    ("andof", Op.And);
  ]

let unary_funcs =
  [
    ("sigmoid", Op.Sigmoid);
    ("relu", Op.Relu);
    ("exp", Op.Exp);
    ("log", Op.Log);
    ("sqrt", Op.Sqrt);
    ("abs", Op.Abs);
    ("sq", Op.Square);
    ("sign", Op.Sign);
  ]

let parse_idx_list (st : state) : string list =
  expect st Lexer.LBRACKET;
  let rec go acc =
    match advance st with
    | Lexer.IDENT i -> (
        match advance st with
        | Lexer.COMMA -> go (i :: acc)
        | Lexer.RBRACKET -> List.rev (i :: acc)
        | t ->
            fail st
              ("expected , or ] in index list, got " ^ Lexer.token_to_string t))
    | Lexer.RBRACKET -> List.rev acc
    | t -> fail st ("expected index name, got " ^ Lexer.token_to_string t)
  in
  go []

let rec parse_expr (st : state) : Ir.expr = parse_cmp st

and parse_cmp (st : state) : Ir.expr =
  let lhs = parse_additive st in
  let op =
    match peek st with
    | Lexer.LT -> Some Op.Lt
    | Lexer.LEQ -> Some Op.Leq
    | Lexer.GT -> Some Op.Gt
    | Lexer.GEQ -> Some Op.Geq
    | Lexer.EQEQ -> Some Op.Eq
    | Lexer.NEQ -> Some Op.Neq
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      ignore (advance st);
      let rhs = parse_additive st in
      Ir.Map (op, [ lhs; rhs ])

and parse_additive (st : state) : Ir.expr =
  let lhs = parse_mult st in
  let rec go acc =
    match peek st with
    | Lexer.PLUS ->
        ignore (advance st);
        go (Ir.Map (Op.Add, [ acc; parse_mult st ]))
    | Lexer.MINUS ->
        ignore (advance st);
        go (Ir.Map (Op.Sub, [ acc; parse_mult st ]))
    | _ -> acc
  in
  go lhs

and parse_mult (st : state) : Ir.expr =
  let lhs = parse_unary st in
  let rec go acc =
    match peek st with
    | Lexer.STAR ->
        ignore (advance st);
        go (Ir.Map (Op.Mul, [ acc; parse_unary st ]))
    | Lexer.SLASH ->
        ignore (advance st);
        go (Ir.Map (Op.Div, [ acc; parse_unary st ]))
    | _ -> acc
  in
  go lhs

and parse_unary (st : state) : Ir.expr =
  match peek st with
  | Lexer.MINUS ->
      ignore (advance st);
      Ir.Map (Op.Neg, [ parse_unary st ])
  | _ -> parse_power st

and parse_power (st : state) : Ir.expr =
  let base = parse_atom st in
  match peek st with
  | Lexer.CARET ->
      ignore (advance st);
      Ir.Map (Op.Pow, [ base; parse_unary st ])
  | _ -> base

and parse_atom (st : state) : Ir.expr =
  match advance st with
  | Lexer.NUMBER v -> Ir.Literal v
  | Lexer.LPAREN ->
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.IDENT name -> (
      match List.assoc_opt name agg_ops with
      | Some op ->
          let idxs = parse_idx_list st in
          expect st Lexer.LPAREN;
          let body = parse_expr st in
          expect st Lexer.RPAREN;
          Ir.Agg (op, idxs, body)
      | None -> (
          match List.assoc_opt name unary_funcs with
          | Some op ->
              expect st Lexer.LPAREN;
              let arg = parse_expr st in
              expect st Lexer.RPAREN;
              Ir.Map (op, [ arg ])
          | None -> (
              match peek st with
              | Lexer.LBRACKET -> Ir.Input (name, parse_idx_list st)
              | _ -> Ir.Input (name, []))))
  | t -> fail st ("unexpected token " ^ Lexer.token_to_string t)

let parse_query (st : state) : Ir.query =
  match advance st with
  | Lexer.IDENT name ->
      let out_order =
        match peek st with
        | Lexer.LBRACKET -> Some (parse_idx_list st)
        | _ -> None
      in
      expect st Lexer.EQUALS;
      let expr = parse_expr st in
      Ir.query ?out_order name expr
  | t -> fail st ("expected query name, got " ^ Lexer.token_to_string t)

(* Parse a whole program; outputs default to every query name (callers can
   narrow). *)
let parse_program (src : string) : Ir.program =
  let st = state_of src in
  let rec skip_newlines () =
    match peek st with
    | Lexer.NEWLINE ->
        ignore (advance st);
        skip_newlines ()
    | _ -> ()
  in
  let rec go acc =
    skip_newlines ();
    match peek st with
    | Lexer.EOF -> List.rev acc
    | _ ->
        let q = parse_query st in
        (match peek st with
        | Lexer.NEWLINE | Lexer.EOF -> ()
        | t ->
            ignore (advance st);
            fail st ("expected end of query, got " ^ Lexer.token_to_string t));
        go (q :: acc)
  in
  let queries = go [] in
  { Ir.queries; outputs = List.map (fun (q : Ir.query) -> q.Ir.name) queries }

let parse_expr_string (src : string) : Ir.expr =
  let st = state_of src in
  let e = parse_expr st in
  (match peek st with
  | Lexer.EOF | Lexer.NEWLINE -> ()
  | t ->
      ignore (advance st);
      fail st ("trailing tokens: " ^ Lexer.token_to_string t));
  e

(* Result-returning variant: parser and lexer failures come back as a
   located [(message, position)] pair instead of exceptions. *)
let parse_program_res (src : string) : (Ir.program, string * int) result =
  match parse_program src with
  | p -> Ok p
  | exception Parse_error { message; pos } -> Error (message, pos)
  | exception Lexer.Lex_error (message, pos) -> Error (message, pos)
