(* Recursive-descent parser for textual tensor index notation.

   Grammar (one statement per line; '#' comments):

     program  := ( stmt NEWLINE* )*  (with * outside the parens)
     stmt     := query | fixpoint
     query    := IDENT [ "[" idxs "]" ] "=" expr
     fixpoint := IDENT "=" "iterate" iterspec "{" body "}"
     iterspec := [ NUMBER | "max" NUMBER ] [ "until" expr ]
     body     := ( bstmt NEWLINE+ )*
     bstmt    := IDENT [ "[" idxs "]" ] ( "=" | ":=" ) expr
     expr     := cmp
     cmp      := additive (("<" | "<=" | ">" | ">=" | "==" | "!=") additive)?
     additive := mult (("+" | "-") mult)*
     mult     := unary (("*" | "/") unary)*
     unary    := "-" unary | power
     power    := atom ("^" unary)?
     atom     := NUMBER
               | agg "[" idxs "]" "(" expr ")"         aggregates
               | func "(" expr ")"                     unary functions
               | IDENT "[" idxs "]"                    tensor access
               | IDENT                                 scalar tensor
               | "(" expr ")"
     agg      := "sum" | "sumof" | "prod" | "prodof"
               | "maxof" | "minof" | "orof" | "andof"
     func     := "sigmoid" | "relu" | "exp" | "log" | "sqrt" | "abs" | "sq"
               | "sign"
     atom also admits "min" "(" expr "," expr ")" and likewise "max"
     (pointwise binary min/max)

   Accesses to names defined by earlier queries become [Alias]es when the
   program is run (the driver resolves them).

   Inside a fixpoint body, ":=" marks a loop-carried update (the name is
   rebound between iterations) while "=" defines an iteration-local
   intermediate.  Updates are sequential (Gauss-Seidel): each ":=" takes
   effect for the statements after it within the same iteration.  A
   primed name like X' denotes the value X held at the start of the
   iteration; the "until" condition is evaluated after the body over the
   new bindings (nonzero = converged).  "iterate", "until", and "max"
   are reserved in statement-head position. *)

open Galley_plan

(* [pos] is the character offset of the offending token in the source. *)
exception Parse_error of { message : string; pos : int }

type state = {
  mutable toks : (Lexer.token * int) list;
  mutable last_pos : int; (* start offset of the most recent token *)
}

let state_of (src : string) : state =
  { toks = Lexer.tokenize_pos src; last_pos = 0 }

let peek (st : state) : Lexer.token =
  match st.toks with [] -> Lexer.EOF | (t, _) :: _ -> t

let advance (st : state) : Lexer.token =
  match st.toks with
  | [] -> Lexer.EOF
  | (t, p) :: rest ->
      st.toks <- rest;
      st.last_pos <- p;
      t

let fail (st : state) (message : string) =
  raise (Parse_error { message; pos = st.last_pos })

let expect (st : state) (t : Lexer.token) : unit =
  let got = advance st in
  if got <> t then
    fail st
      (Printf.sprintf "expected %s, got %s" (Lexer.token_to_string t)
         (Lexer.token_to_string got))

let agg_ops =
  [
    ("sum", Op.Add);
    ("sumof", Op.Add);
    ("prod", Op.Mul);
    ("prodof", Op.Mul);
    ("maxof", Op.Max);
    ("minof", Op.Min);
    ("orof", Op.Or);
    ("andof", Op.And);
  ]

let unary_funcs =
  [
    ("sigmoid", Op.Sigmoid);
    ("relu", Op.Relu);
    ("exp", Op.Exp);
    ("log", Op.Log);
    ("sqrt", Op.Sqrt);
    ("abs", Op.Abs);
    ("sq", Op.Square);
    ("sign", Op.Sign);
  ]

(* Pointwise binary min/max: min(a, b).  "max" only acts as a keyword
   directly after "iterate", so the function form stays available. *)
let binary_funcs = [ ("min", Op.Min); ("max", Op.Max) ]

let parse_idx_list (st : state) : string list =
  expect st Lexer.LBRACKET;
  let rec go acc =
    match advance st with
    | Lexer.IDENT i -> (
        match advance st with
        | Lexer.COMMA -> go (i :: acc)
        | Lexer.RBRACKET -> List.rev (i :: acc)
        | t ->
            fail st
              ("expected , or ] in index list, got " ^ Lexer.token_to_string t))
    | Lexer.RBRACKET -> List.rev acc
    | t -> fail st ("expected index name, got " ^ Lexer.token_to_string t)
  in
  go []

let rec parse_expr (st : state) : Ir.expr = parse_cmp st

and parse_cmp (st : state) : Ir.expr =
  let lhs = parse_additive st in
  let op =
    match peek st with
    | Lexer.LT -> Some Op.Lt
    | Lexer.LEQ -> Some Op.Leq
    | Lexer.GT -> Some Op.Gt
    | Lexer.GEQ -> Some Op.Geq
    | Lexer.EQEQ -> Some Op.Eq
    | Lexer.NEQ -> Some Op.Neq
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      ignore (advance st);
      let rhs = parse_additive st in
      Ir.Map (op, [ lhs; rhs ])

and parse_additive (st : state) : Ir.expr =
  let lhs = parse_mult st in
  let rec go acc =
    match peek st with
    | Lexer.PLUS ->
        ignore (advance st);
        go (Ir.Map (Op.Add, [ acc; parse_mult st ]))
    | Lexer.MINUS ->
        ignore (advance st);
        go (Ir.Map (Op.Sub, [ acc; parse_mult st ]))
    | _ -> acc
  in
  go lhs

and parse_mult (st : state) : Ir.expr =
  let lhs = parse_unary st in
  let rec go acc =
    match peek st with
    | Lexer.STAR ->
        ignore (advance st);
        go (Ir.Map (Op.Mul, [ acc; parse_unary st ]))
    | Lexer.SLASH ->
        ignore (advance st);
        go (Ir.Map (Op.Div, [ acc; parse_unary st ]))
    | _ -> acc
  in
  go lhs

and parse_unary (st : state) : Ir.expr =
  match peek st with
  | Lexer.MINUS ->
      ignore (advance st);
      Ir.Map (Op.Neg, [ parse_unary st ])
  | _ -> parse_power st

and parse_power (st : state) : Ir.expr =
  let base = parse_atom st in
  match peek st with
  | Lexer.CARET ->
      ignore (advance st);
      Ir.Map (Op.Pow, [ base; parse_unary st ])
  | _ -> base

and parse_atom (st : state) : Ir.expr =
  match advance st with
  | Lexer.NUMBER v -> Ir.Literal v
  | Lexer.LPAREN ->
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.IDENT name -> (
      match List.assoc_opt name agg_ops with
      | Some op ->
          let idxs = parse_idx_list st in
          expect st Lexer.LPAREN;
          let body = parse_expr st in
          expect st Lexer.RPAREN;
          Ir.Agg (op, idxs, body)
      | None -> (
          match List.assoc_opt name unary_funcs with
          | Some op ->
              expect st Lexer.LPAREN;
              let arg = parse_expr st in
              expect st Lexer.RPAREN;
              Ir.Map (op, [ arg ])
          | None -> (
              match List.assoc_opt name binary_funcs with
              | Some op ->
                  expect st Lexer.LPAREN;
                  let a = parse_expr st in
                  expect st Lexer.COMMA;
                  let b = parse_expr st in
                  expect st Lexer.RPAREN;
                  Ir.Map (op, [ a; b ])
              | None -> (
                  match peek st with
                  | Lexer.LBRACKET -> Ir.Input (name, parse_idx_list st)
                  | _ -> Ir.Input (name, [])))))
  | t -> fail st ("unexpected token " ^ Lexer.token_to_string t)

let parse_query (st : state) : Ir.query =
  match advance st with
  | Lexer.IDENT name ->
      let out_order =
        match peek st with
        | Lexer.LBRACKET -> Some (parse_idx_list st)
        | _ -> None
      in
      expect st Lexer.EQUALS;
      let expr = parse_expr st in
      Ir.query ?out_order name expr
  | t -> fail st ("expected query name, got " ^ Lexer.token_to_string t)

let skip_newlines (st : state) =
  let rec go () =
    match peek st with
    | Lexer.NEWLINE ->
        ignore (advance st);
        go ()
    | _ -> ()
  in
  go ()

(* One fixpoint body statement: IDENT [idxs] (":=" | "=") expr. *)
let parse_body_stmt (st : state) : Ir.body_stmt =
  match advance st with
  | Lexer.IDENT name ->
      let out_order =
        match peek st with
        | Lexer.LBRACKET -> Some (parse_idx_list st)
        | _ -> None
      in
      let u_carried =
        match advance st with
        | Lexer.COLONEQ -> true
        | Lexer.EQUALS -> false
        | t ->
            fail st
              ("expected = or := in iterate body, got "
              ^ Lexer.token_to_string t)
      in
      let expr = parse_expr st in
      { Ir.u_query = Ir.query ?out_order name expr; u_carried }
  | t ->
      fail st ("expected statement name in iterate body, got "
              ^ Lexer.token_to_string t)

(* The iterate construct; the "iterate" keyword has been consumed and the
   result name is [name]:

     name = iterate [N | max N] [until cond] { body } *)
let parse_fixpoint (st : state) ~(name : string) : Ir.fixpoint =
  let fix_max_iters =
    match peek st with
    | Lexer.NUMBER v ->
        ignore (advance st);
        Some (int_of_float v)
    | Lexer.IDENT "max" ->
        ignore (advance st);
        (match advance st with
        | Lexer.NUMBER v -> Some (int_of_float v)
        | t ->
            fail st
              ("expected iteration count after max, got "
              ^ Lexer.token_to_string t))
    | _ -> None
  in
  (match fix_max_iters with
  | Some n when n < 1 -> fail st "iterate needs a positive iteration count"
  | _ -> ());
  let fix_cond =
    match peek st with
    | Lexer.IDENT "until" ->
        ignore (advance st);
        Some (parse_expr st)
    | _ -> None
  in
  if fix_max_iters = None && fix_cond = None then
    fail st "iterate needs an iteration count, an until condition, or both";
  expect st Lexer.LBRACE;
  let rec body acc =
    skip_newlines st;
    match peek st with
    | Lexer.RBRACE ->
        ignore (advance st);
        List.rev acc
    | Lexer.EOF -> fail st "unterminated iterate body (missing })"
    | _ ->
        let u = parse_body_stmt st in
        (match peek st with
        | Lexer.NEWLINE | Lexer.RBRACE -> ()
        | t ->
            ignore (advance st);
            fail st
              ("expected end of statement in iterate body, got "
              ^ Lexer.token_to_string t));
        body (u :: acc)
  in
  let fix_body = body [] in
  let f = { Ir.fix_name = name; fix_max_iters; fix_cond; fix_body } in
  let carried = Ir.carried_names f in
  if carried = [] then
    fail st "iterate body needs at least one loop-carried := update";
  if not (List.mem name carried) then
    fail st
      (Printf.sprintf
         "iterate result %s must be updated with := in the body (carried: %s)"
         name (String.concat ", " carried));
  f

(* One top-level statement: a query, or a fixpoint when the right-hand
   side starts with the reserved word "iterate". *)
let parse_stmt (st : state) : Ir.stmt =
  match advance st with
  | Lexer.IDENT name -> (
      let out_order =
        match peek st with
        | Lexer.LBRACKET -> Some (parse_idx_list st)
        | _ -> None
      in
      expect st Lexer.EQUALS;
      match peek st with
      | Lexer.IDENT "iterate" ->
          ignore (advance st);
          if out_order <> None then
            fail st
              "output order on an iterate result is not supported (it \
               follows the loop-carried update)";
          Ir.Fix_stmt (parse_fixpoint st ~name)
      | _ ->
          let expr = parse_expr st in
          Ir.Query_stmt (Ir.query ?out_order name expr))
  | t -> fail st ("expected statement name, got " ^ Lexer.token_to_string t)

(* Parse a whole statement-level program; outputs default to every
   top-level statement name (callers can narrow). *)
let parse_xprogram (src : string) : Ir.xprogram =
  let st = state_of src in
  let rec go acc =
    skip_newlines st;
    match peek st with
    | Lexer.EOF -> List.rev acc
    | _ ->
        let s = parse_stmt st in
        (match peek st with
        | Lexer.NEWLINE | Lexer.EOF -> ()
        | t ->
            ignore (advance st);
            fail st ("expected end of statement, got " ^ Lexer.token_to_string t));
        go (s :: acc)
  in
  let stmts = go [] in
  let name_of = function
    | Ir.Query_stmt q -> q.Ir.name
    | Ir.Fix_stmt f -> f.Ir.fix_name
  in
  { Ir.stmts; xoutputs = List.map name_of stmts }

(* Straight-line restriction (legacy entry point): programs containing
   iterate statements must go through the fixpoint driver instead. *)
let parse_program (src : string) : Ir.program =
  let p = parse_xprogram src in
  match Ir.program_of_xprogram p with
  | Some p -> p
  | None ->
      raise
        (Parse_error
           {
             message =
               "program contains iterate statements; run it through the \
                fixpoint driver";
             pos = 0;
           })

let parse_expr_string (src : string) : Ir.expr =
  let st = state_of src in
  let e = parse_expr st in
  (match peek st with
  | Lexer.EOF | Lexer.NEWLINE -> ()
  | t ->
      ignore (advance st);
      fail st ("trailing tokens: " ^ Lexer.token_to_string t));
  e

(* Result-returning variant: parser and lexer failures come back as a
   located [(message, position)] pair instead of exceptions. *)
let parse_program_res (src : string) : (Ir.program, string * int) result =
  match parse_program src with
  | p -> Ok p
  | exception Parse_error { message; pos } -> Error (message, pos)
  | exception Lexer.Lex_error (message, pos) -> Error (message, pos)

let parse_xprogram_res (src : string) : (Ir.xprogram, string * int) result =
  match parse_xprogram src with
  | p -> Ok p
  | exception Parse_error { message; pos } -> Error (message, pos)
  | exception Lexer.Lex_error (message, pos) -> Error (message, pos)
