(* Lexer for the textual tensor-index-notation front end.

   Token stream over a small expression language:

     Y[i] = sigmoid(sum[j](X[i,j] * theta[j]))
     t    = sum[i,j,k](E[i,j] * E[j,k] * E[i,k])

   Identifiers, numbers, brackets, commas, arithmetic/comparison operators,
   and '=' for query definition. *)

type token =
  | IDENT of string
  | NUMBER of float
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | EQUALS
  | COLONEQ
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | LT
  | LEQ
  | GT
  | GEQ
  | EQEQ
  | NEQ
  | NEWLINE
  | EOF

let token_to_string = function
  | IDENT s -> Printf.sprintf "ident(%s)" s
  | NUMBER v -> Printf.sprintf "number(%g)" v
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | EQUALS -> "="
  | COLONEQ -> ":="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | CARET -> "^"
  | LT -> "<"
  | LEQ -> "<="
  | GT -> ">"
  | GEQ -> ">="
  | EQEQ -> "=="
  | NEQ -> "!="
  | NEWLINE -> "\\n"
  | EOF -> "eof"

exception Lex_error of string * int (* message, position *)

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

(* Tokens paired with their starting character offset in [src], so the
   parser can report located errors.  EOF carries the source length. *)
let tokenize_pos (src : string) : (token * int) list =
  let n = String.length src in
  let tokens = ref [] in
  let emit p t = tokens := (t, p) :: !tokens in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '\n' || c = ';' then begin
      emit !pos NEWLINE;
      incr pos
    end
    else if c = '#' then begin
      (* comment to end of line *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      emit start (IDENT (String.sub src start (!pos - start)))
    end
    else if is_digit c || (c = '.' && (match peek 1 with Some d -> is_digit d | None -> false))
    then begin
      let start = !pos in
      while
        !pos < n
        && (is_digit src.[!pos] || src.[!pos] = '.' || src.[!pos] = 'e'
           || src.[!pos] = 'E'
           || ((src.[!pos] = '-' || src.[!pos] = '+')
              && !pos > start
              && (src.[!pos - 1] = 'e' || src.[!pos - 1] = 'E')))
      do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      match float_of_string_opt text with
      | Some v -> emit start (NUMBER v)
      | None -> raise (Lex_error ("bad number " ^ text, start))
    end
    else begin
      let start = !pos in
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      match two with
      | "<=" -> emit start LEQ; pos := !pos + 2
      | ">=" -> emit start GEQ; pos := !pos + 2
      | "==" -> emit start EQEQ; pos := !pos + 2
      | "!=" -> emit start NEQ; pos := !pos + 2
      | ":=" -> emit start COLONEQ; pos := !pos + 2
      | _ -> (
          (match c with
          | '(' -> emit start LPAREN
          | ')' -> emit start RPAREN
          | '[' -> emit start LBRACKET
          | ']' -> emit start RBRACKET
          | '{' -> emit start LBRACE
          | '}' -> emit start RBRACE
          | ',' -> emit start COMMA
          | '=' -> emit start EQUALS
          | '+' -> emit start PLUS
          | '-' -> emit start MINUS
          | '*' -> emit start STAR
          | '/' -> emit start SLASH
          | '^' -> emit start CARET
          | '<' -> emit start LT
          | '>' -> emit start GT
          | c -> raise (Lex_error (Printf.sprintf "unexpected character %c" c, !pos)));
          incr pos)
    end
  done;
  emit n EOF;
  List.rev !tokens

let tokenize (src : string) : token list = List.map fst (tokenize_pos src)
