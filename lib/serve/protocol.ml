(* Wire protocol for `galley serve`: line-delimited JSON over a Unix
   domain socket.  One request object per line in, one response object
   per line out, strictly in order per connection.

   The protocol reuses the repo's dependency-free JSON reader
   ([Galley_obs.Json]) for decoding and hand-built writers (via
   [Metrics.json_escape]) for encoding, mirroring every other
   serialization seam in the tree.  Output entry values print with
   [%.17g] so they round-trip bit-identically through the socket: the
   soak test compares served results against batch [Driver.run] outputs
   for float equality, not approximate equality.

   Requests:
     {"op":"query","src":"<program>","id"?,"budget_ms"?,"values"?,
      "max_entries"?}
     {"op":"bind","name":"E","random":"100x100:0.01:42"}         — or —
     {"op":"bind","name":"E","path":"data.coo"}                  — or —
     {"op":"bind","name":"E","dims":[2,2],"fill"?,"entries":[[i,j,v],..]}
     {"op":"health"} | {"op":"metrics","prometheus"?} | {"op":"shutdown"}
     {"op":"debug","last"?}   — flight-recorder dump (newest [last] records)

   Responses always carry "ok" plus the echoed "id" (when sent), and on
   failure an "error" object {"kind","message","phase"?} whose kinds
   cover both the driver taxonomy (parse_error, plan_invalid,
   optimizer_deadline, budget_exceeded, kernel_failure) and the serving
   layer (bad_request, queue_full, draining, deadline, injected_fault,
   internal). *)

module Json = Galley_obs.Json
module Metrics = Galley_obs.Metrics
module T = Galley_tensor.Tensor
module D = Galley.Driver
module Fix = Galley_fixpoint.Fixpoint

type bind_spec =
  | From_file of string
  | From_random of string (* DIMSxDIMS:density:seed *)
  | From_entries of {
      dims : int array;
      fill : float;
      entries : (int array * float) array;
    }

type request =
  | Query of {
      src : string;
      budget_ms : float option;
      want_values : bool;
      max_entries : int option;
    }
  | Bind of { name : string; spec : bind_spec }
  | Health
  | Metrics_req of { prometheus : bool }
  | Debug_req of { last : int option }
  | Explain_req of { digest : string }
  | Shutdown

type parsed = { req_id : string option; req : request }

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let opt_member key json conv =
  match Json.member key json with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None -> Error (Printf.sprintf "field %S has the wrong type" key))

let req_member key json conv =
  match opt_member key json conv with
  | Ok (Some x) -> Ok x
  | Ok None -> Error (Printf.sprintf "missing required field %S" key)
  | Error e -> Error e

let ( let* ) = Result.bind

let decode_entries ~ndims (v : Json.t) :
    ((int array * float) array, string) result =
  match Json.to_list v with
  | None -> Error "field \"entries\" must be an array"
  | Some rows ->
      let n = List.length rows in
      let out = Array.make n ([||], 0.0) in
      let rec go i = function
        | [] -> Ok out
        | row :: rest -> (
            match Json.to_list row with
            | Some cells when List.length cells = ndims + 1 ->
                let nums = List.map Json.to_float cells in
                if List.exists Option.is_none nums then
                  Error
                    (Printf.sprintf "entry %d: non-numeric cell" i)
                else begin
                  let nums = List.filter_map Fun.id nums in
                  let coords =
                    Array.of_list
                      (List.map int_of_float
                         (List.filteri (fun k _ -> k < ndims) nums))
                  in
                  out.(i) <- (coords, List.nth nums ndims);
                  go (i + 1) rest
                end
            | _ ->
                Error
                  (Printf.sprintf
                     "entry %d: expected [coord × %d, value]" i ndims))
      in
      go 0 rows

let decode_bind json =
  let* name = req_member "name" json Json.to_string in
  let path = Json.member "path" json in
  let random = Json.member "random" json in
  let dims = Json.member "dims" json in
  match (path, random, dims) with
  | Some p, None, None -> (
      match Json.to_string p with
      | Some p -> Ok (Bind { name; spec = From_file p })
      | None -> Error "field \"path\" must be a string")
  | None, Some r, None -> (
      match Json.to_string r with
      | Some r -> Ok (Bind { name; spec = From_random r })
      | None -> Error "field \"random\" must be a string")
  | None, None, Some d -> (
      match
        Option.map (List.map Json.to_float) (Json.to_list d)
      with
      | Some dims when dims <> [] && List.for_all Option.is_some dims ->
          let dims =
            Array.of_list (List.map int_of_float (List.filter_map Fun.id dims))
          in
          let* fill =
            Result.map (Option.value ~default:0.0)
              (opt_member "fill" json Json.to_float)
          in
          let* entries =
            match Json.member "entries" json with
            | None -> Ok [||]
            | Some e -> decode_entries ~ndims:(Array.length dims) e
          in
          Ok (Bind { name; spec = From_entries { dims; fill; entries } })
      | _ -> Error "field \"dims\" must be a non-empty array of numbers")
  | _ ->
      Error
        "bind needs exactly one of \"path\", \"random\", or \"dims\"(+\"entries\")"

let decode_request (line : string) : (parsed, string) result =
  let* json = Json.parse line in
  let* op = req_member "op" json Json.to_string in
  let* req_id = opt_member "id" json Json.to_string in
  let* req =
    match op with
    | "query" ->
        let* src = req_member "src" json Json.to_string in
        let* budget_ms = opt_member "budget_ms" json Json.to_float in
        let* values = opt_member "values" json Json.to_bool in
        let* max_entries = opt_member "max_entries" json Json.to_float in
        Ok
          (Query
             {
               src;
               budget_ms;
               want_values = Option.value ~default:true values;
               max_entries = Option.map int_of_float max_entries;
             })
    | "bind" -> decode_bind json
    | "health" -> Ok Health
    | "metrics" ->
        let* prometheus = opt_member "prometheus" json Json.to_bool in
        Ok (Metrics_req { prometheus = Option.value ~default:false prometheus })
    | "debug" ->
        let* last = opt_member "last" json Json.to_float in
        Ok (Debug_req { last = Option.map int_of_float last })
    | "explain" ->
        let* digest = req_member "digest" json Json.to_string in
        Ok (Explain_req { digest })
    | "shutdown" -> Ok Shutdown
    | other -> Error (Printf.sprintf "unknown op %S" other)
  in
  Ok { req_id; req }

(* Materialize a bind spec into a tensor (first level dense, the rest
   sparse lists — the same default as the CLI's --random). *)
let default_formats dims =
  Array.init (Array.length dims) (fun k ->
      if k = 0 then T.Dense else T.Sparse_list)

let random_of_spec (spec : string) : (T.t, string) result =
  match String.split_on_char ':' spec with
  | [ dims_s; density_s; seed_s ] -> (
      match
        ( List.map int_of_string_opt (String.split_on_char 'x' dims_s),
          float_of_string_opt density_s,
          int_of_string_opt seed_s )
      with
      | dims, Some density, Some seed when List.for_all Option.is_some dims ->
          let dims = Array.of_list (List.filter_map Fun.id dims) in
          let prng = Galley_tensor.Prng.create seed in
          Ok (T.random ~prng ~dims ~formats:(default_formats dims) ~density ())
      | _ -> Error (Printf.sprintf "bad random spec %S" spec))
  | _ ->
      Error
        (Printf.sprintf "bad random spec %S (want DIMSxDIMS:density:seed)" spec)

let tensor_of_bind (spec : bind_spec) : (T.t, string) result =
  match spec with
  | From_random s -> random_of_spec s
  | From_file path -> (
      match Galley_tensor.Tensor_io.load path with
      | t -> Ok t
      | exception Sys_error m -> Error m
      | exception (Invalid_argument m | Failure m) -> Error m)
  | From_entries { dims; fill; entries } -> (
      match T.of_coo ~fill ~dims ~formats:(default_formats dims) entries with
      | t -> Ok t
      | exception (Invalid_argument m | Failure m) -> Error m)

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let buf_str b s =
  Buffer.add_char b '"';
  Buffer.add_string b (Metrics.json_escape s);
  Buffer.add_char b '"'

(* %.17g round-trips every finite float; JSON has no literal for the
   rest, so non-finite values degrade to null. *)
let buf_float b f =
  if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
  else Buffer.add_string b "null"

let add_id b id =
  match id with
  | Some id ->
      Buffer.add_string b ",\"id\":";
      buf_str b id
  | None -> ()

let error_json ?(id = None) ~kind ?phase ~message () : string =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"ok\":false";
  add_id b id;
  Buffer.add_string b ",\"error\":{\"kind\":";
  buf_str b kind;
  (match phase with
  | Some p ->
      Buffer.add_string b ",\"phase\":";
      buf_str b p
  | None -> ());
  Buffer.add_string b ",\"message\":";
  buf_str b message;
  Buffer.add_string b "}}";
  Buffer.contents b

(* Map the driver taxonomy onto wire error kinds: the client can branch
   on "kind" without parsing prose.  [kind_of_error] is also the flight
   recorder's "error:<kind>" outcome tag. *)
let kind_and_phase (e : Galley.Errors.t) : string * string option =
  let module E = Galley.Errors in
  match e with
  | E.Parse_error _ -> ("parse_error", Some "parse")
  | E.Plan_invalid { context; _ } ->
      ("plan_invalid", Some (E.phase_to_string context.E.phase))
  | E.Optimizer_deadline { context; _ } ->
      ("optimizer_deadline", Some (E.phase_to_string context.E.phase))
  | E.Budget_exceeded { context; _ } ->
      ("budget_exceeded", Some (E.phase_to_string context.E.phase))
  | E.Kernel_failure { context; _ } ->
      ("kernel_failure", Some (E.phase_to_string context.E.phase))
  | E.Fixpoint_diverged { context; _ } ->
      ("fixpoint_diverged", Some (E.phase_to_string context.E.phase))

let kind_of_error (e : Galley.Errors.t) : string = fst (kind_and_phase e)

let error_of ?(id = None) (e : Galley.Errors.t) : string =
  let kind, phase = kind_and_phase e in
  error_json ~id ~kind ?phase ~message:(Galley.Errors.to_string e) ()

(* Fixpoint execution summary (queries that used `iterate`): iteration
   count, plan switches, and the per-iteration convergence deltas. *)
let buf_fixpoints (b : Buffer.t) (reports : Fix.fix_report list) : unit =
  Buffer.add_string b ",\"fixpoints\":[";
  List.iteri
    (fun i (fr : Fix.fix_report) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":";
      buf_str b fr.Fix.fr_name;
      Buffer.add_string b
        (Printf.sprintf ",\"iterations\":%d,\"converged\":%b,\"replans\":%d"
           fr.Fix.fr_iterations fr.Fix.fr_converged fr.Fix.fr_replans);
      Buffer.add_string b ",\"switch_iters\":[";
      List.iteri
        (fun j it ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int it))
        fr.Fix.fr_switch_iters;
      Buffer.add_string b "],\"deltas\":[";
      List.iteri
        (fun j (it : Fix.iter_stat) ->
          if j > 0 then Buffer.add_char b ',';
          match it.Fix.it_delta with
          | Some d -> buf_float b d
          | None -> Buffer.add_string b "null")
        fr.Fix.fr_iters;
      Buffer.add_string b "],\"switches\":[";
      let first = ref true in
      List.iteri
        (fun j (it : Fix.iter_stat) ->
          match it.Fix.it_switch with
          | None -> ()
          | Some s ->
              if not !first then Buffer.add_char b ',';
              first := false;
              Buffer.add_string b
                (Printf.sprintf "{\"iter\":%d,\"detail\":" (j + 1));
              buf_str b s;
              Buffer.add_char b '}')
        fr.Fix.fr_iters;
      Buffer.add_string b "]}")
    reports;
  Buffer.add_char b ']'

let result_json ?(id = None) ~want_values ~max_entries ?qos_tier ?fixpoints
    (r : D.result) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"ok\":true";
  add_id b id;
  (match qos_tier with
  | Some t ->
      Buffer.add_string b ",\"qos_tier\":";
      buf_str b (Galley_plan.Tier.to_string t)
  | None -> ());
  Buffer.add_string b ",\"outputs\":[";
  List.iteri
    (fun i (name, idxs, t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":";
      buf_str b name;
      Buffer.add_string b ",\"idxs\":[";
      List.iteri
        (fun j idx ->
          if j > 0 then Buffer.add_char b ',';
          buf_str b (idx : Galley_plan.Ir.idx))
        idxs;
      Buffer.add_string b "],\"dims\":[";
      Array.iteri
        (fun j d ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int d))
        (T.dims t);
      Buffer.add_string b (Printf.sprintf "],\"nnz\":%d" (T.nnz t));
      if want_values then begin
        let coo = T.to_coo t in
        let total = Array.length coo in
        let shown = min total max_entries in
        Buffer.add_string b ",\"entries\":[";
        for k = 0 to shown - 1 do
          if k > 0 then Buffer.add_char b ',';
          let coords, v = coo.(k) in
          Buffer.add_char b '[';
          Array.iter
            (fun c ->
              Buffer.add_string b (string_of_int c);
              Buffer.add_char b ',')
            coords;
          buf_float b v;
          Buffer.add_char b ']'
        done;
        Buffer.add_string b
          (Printf.sprintf "],\"truncated\":%b" (shown < total))
      end;
      Buffer.add_char b '}')
    r.D.outputs;
  Buffer.add_char b ']';
  (match r.D.incomplete_outputs with
  | [] -> ()
  | missing ->
      Buffer.add_string b ",\"incomplete_outputs\":[";
      List.iteri
        (fun i n ->
          if i > 0 then Buffer.add_char b ',';
          buf_str b n)
        missing;
      Buffer.add_char b ']');
  let tier_list key tiers =
    Buffer.add_string b (Printf.sprintf ",%S:[" key);
    List.iteri
      (fun i (q, tier) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b "[";
        buf_str b q;
        Buffer.add_char b ',';
        buf_str b (Galley_plan.Tier.to_string tier);
        Buffer.add_char b ']')
      tiers;
    Buffer.add_char b ']'
  in
  tier_list "logical_tiers" r.D.logical_tiers;
  tier_list "physical_tiers" r.D.physical_tiers;
  let tm = r.D.timings in
  Buffer.add_string b
    (Printf.sprintf
       ",\"timings\":{\"total_s\":%.6f,\"logical_s\":%.6f,\"physical_s\":%.6f,\"compile_s\":%.6f,\"execute_s\":%.6f}"
       tm.D.total_seconds tm.D.logical_seconds tm.D.physical_seconds
       tm.D.compile_seconds tm.D.execute_seconds);
  Buffer.add_string b
    (Printf.sprintf
       ",\"cache\":{\"compile_count\":%d,\"kernel_count\":%d,\"cse_hits\":%d}"
       tm.D.compile_count tm.D.kernel_count tm.D.cse_hits);
  (match fixpoints with
  | Some (_ :: _ as reports) -> buf_fixpoints b reports
  | Some [] | None -> ());
  Buffer.add_string b (Printf.sprintf ",\"timed_out\":%b}" r.D.timed_out);
  Buffer.contents b

let bound_json ?(id = None) ~name (t : T.t) : string =
  let b = Buffer.create 96 in
  Buffer.add_string b "{\"ok\":true";
  add_id b id;
  Buffer.add_string b ",\"bound\":";
  buf_str b name;
  Buffer.add_string b ",\"dims\":[";
  Array.iteri
    (fun j d ->
      if j > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int d))
    (T.dims t);
  Buffer.add_string b (Printf.sprintf "],\"nnz\":%d}" (T.nnz t));
  Buffer.contents b

(* A small ok response from raw (key, already-encoded-value) pairs; used
   for health / shutdown acks where the values are built by the server. *)
let ok_json ?(id = None) (fields : (string * string) list) : string =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"ok\":true";
  add_id b id;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      buf_str b k;
      Buffer.add_char b ':';
      Buffer.add_string b v)
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Request encoders (client side: CLI, tests, bench)                   *)
(* ------------------------------------------------------------------ *)

let enc_common b ~op ~id =
  Buffer.add_string b "{\"op\":";
  buf_str b op;
  match id with
  | Some id ->
      Buffer.add_string b ",\"id\":";
      buf_str b id
  | None -> ()

let encode_query ?id ?budget_ms ?(values = true) ?max_entries (src : string) :
    string =
  let b = Buffer.create 128 in
  enc_common b ~op:"query" ~id;
  Buffer.add_string b ",\"src\":";
  buf_str b src;
  (match budget_ms with
  | Some ms -> Buffer.add_string b (Printf.sprintf ",\"budget_ms\":%.6g" ms)
  | None -> ());
  if not values then Buffer.add_string b ",\"values\":false";
  (match max_entries with
  | Some n -> Buffer.add_string b (Printf.sprintf ",\"max_entries\":%d" n)
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let encode_bind_random ?id ~name (spec : string) : string =
  let b = Buffer.create 96 in
  enc_common b ~op:"bind" ~id;
  Buffer.add_string b ",\"name\":";
  buf_str b name;
  Buffer.add_string b ",\"random\":";
  buf_str b spec;
  Buffer.add_char b '}';
  Buffer.contents b

let encode_bind_file ?id ~name (path : string) : string =
  let b = Buffer.create 96 in
  enc_common b ~op:"bind" ~id;
  Buffer.add_string b ",\"name\":";
  buf_str b name;
  Buffer.add_string b ",\"path\":";
  buf_str b path;
  Buffer.add_char b '}';
  Buffer.contents b

let encode_bind_entries ?id ~name ~dims ?(fill = 0.0)
    (entries : (int array * float) array) : string =
  let b = Buffer.create 256 in
  enc_common b ~op:"bind" ~id;
  Buffer.add_string b ",\"name\":";
  buf_str b name;
  Buffer.add_string b ",\"dims\":[";
  Array.iteri
    (fun j d ->
      if j > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int d))
    dims;
  Buffer.add_char b ']';
  if fill <> 0.0 then begin
    Buffer.add_string b ",\"fill\":";
    buf_float b fill
  end;
  Buffer.add_string b ",\"entries\":[";
  Array.iteri
    (fun k (coords, v) ->
      if k > 0 then Buffer.add_char b ',';
      Buffer.add_char b '[';
      Array.iter
        (fun c ->
          Buffer.add_string b (string_of_int c);
          Buffer.add_char b ',')
        coords;
      buf_float b v;
      Buffer.add_char b ']')
    entries;
  Buffer.add_string b "]}";
  Buffer.contents b

let encode_simple ?id (op : string) : string =
  let b = Buffer.create 32 in
  enc_common b ~op ~id;
  Buffer.add_char b '}';
  Buffer.contents b

let encode_health ?id () = encode_simple ?id "health"

let encode_metrics ?id ?(prometheus = false) () =
  if not prometheus then encode_simple ?id "metrics"
  else begin
    let b = Buffer.create 48 in
    enc_common b ~op:"metrics" ~id;
    Buffer.add_string b ",\"prometheus\":true}";
    Buffer.contents b
  end

let encode_debug ?id ?last () =
  let b = Buffer.create 48 in
  enc_common b ~op:"debug" ~id;
  (match last with
  | Some n -> Buffer.add_string b (Printf.sprintf ",\"last\":%d" n)
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let encode_explain ?id ~digest () =
  let b = Buffer.create 64 in
  enc_common b ~op:"explain" ~id;
  Buffer.add_string b ",\"digest\":";
  buf_str b digest;
  Buffer.add_char b '}';
  Buffer.contents b

let encode_shutdown ?id () = encode_simple ?id "shutdown"
