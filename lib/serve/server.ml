(* `galley serve`: a crash-isolated, admission-controlled query daemon.

   Threading model (threads.posix — no new dependency):

     - one ACCEPTOR thread polls the listening socket with a 250 ms
       [Unix.select] so it can notice a drain promptly;
     - one CONNECTION thread per client reads line-delimited JSON
       requests and writes the matching responses (a stalled client
       therefore blocks only its own connection, never the executor);
     - one EXECUTOR thread serially drains a bounded admission queue
       and runs query/bind requests against the shared resident
       [Driver.Session].

   Serial execution is the isolation boundary for shared state: the
   statistics context, resident tensors, and kernel/CSE caches are only
   ever touched from the executor thread, so a failed request can be
   caught and answered with a structured error while the next request
   sees consistent state.  Concurrency still comes from two places:
   connection threads overlap I/O and protocol work with execution, and
   each request fans out across the shared domain pool internally
   ([config.driver.domains]).

   Admission control: the queue is bounded at [queue_capacity]; a full
   queue sheds load with an immediate structured "queue_full" rejection
   (clients retry with backoff) instead of queueing unboundedly.
   health/metrics/shutdown bypass the queue entirely — observability
   must answer even when the daemon is saturated.

   QoS: a request's deadline budget picks its optimizer tier through
   {!Galley_plan.Tier.of_budget} — tight budgets run the naive rung
   directly, mid budgets the greedy ladder, batch (no budget) the exact
   search.  A request whose budget was already spent queueing is
   rejected with kind "deadline" without touching the optimizer.

   Lifecycle: SIGTERM/SIGINT set an atomic flag (no locking in signal
   context); {!wait} promotes it to a drain — stop accepting, finish
   queued work under [drain_timeout], flush, unlink the socket, exit
   clean.  Past the drain deadline remaining queued requests are
   answered "draining" rather than executed. *)

module D = Galley.Driver
module T = Galley_tensor.Tensor
module Faults = Galley.Faults
module Tier = Galley_plan.Tier
module Obs = Galley_obs
module Metrics = Galley_obs.Metrics

type config = {
  socket_path : string;
  queue_capacity : int;  (** admission queue bound; full = shed load *)
  drain_timeout : float;  (** seconds granted to in-flight work on drain *)
  default_budget_ms : float option;
      (** budget applied to requests that don't carry one; [None] = batch *)
  naive_below_ms : float;  (** budgets below this run the naive tier *)
  greedy_below_ms : float;  (** budgets below this run the greedy tier *)
  max_response_entries : int;
      (** per-output cap on entries serialized into a response *)
  driver : D.config;  (** base pipeline config (faults ride in here) *)
  flight_capacity : int;  (** flight-recorder ring size (records) *)
  sampler_percentile : float;
      (** tail-sampling slow trigger: retain traces above this rolling
          percentile of recent request latencies *)
  telemetry_dir : string option;
      (** when set: rotating JSONL metrics/audit journal, retained
          traces, and incident/drain flight dumps land here *)
  telemetry_interval : float;  (** seconds between journal snapshots *)
  audit_requests : bool;
      (** run the estimator audit per request (q-errors in flight
          records and the audit journal) *)
  trace_all : bool;
      (** keep every request's spans (serve --trace FILE), not just the
          tail-sampled ones *)
  provenance : bool;
      (** record optimizer search provenance per request and retain it
          keyed by plan digest for `client explain <digest>` *)
}

let default_config ~socket_path =
  {
    socket_path;
    queue_capacity = 64;
    drain_timeout = 10.0;
    default_budget_ms = None;
    naive_below_ms = 100.0;
    greedy_below_ms = 1000.0;
    max_response_entries = 100_000;
    driver = D.default_config;
    flight_capacity = 256;
    sampler_percentile = 0.90;
    telemetry_dir = None;
    telemetry_interval = 60.0;
    audit_requests = false;
    trace_all = false;
    provenance = false;
  }

(* -- metrics ------------------------------------------------------- *)

let m_requests =
  Metrics.counter "serve.requests" ~help:"Requests admitted to the daemon."

let m_requests_ok =
  Metrics.counter "serve.requests_ok" ~help:"Requests answered ok:true."

let m_requests_failed =
  Metrics.counter "serve.requests_failed"
    ~help:"Requests answered with a structured error."

let m_rejected_full =
  Metrics.counter "serve.rejected_queue_full"
    ~help:"Requests shed because the admission queue was full."

let m_rejected_draining =
  Metrics.counter "serve.rejected_draining"
    ~help:"Requests rejected while the daemon was draining."

let m_rejected_deadline =
  Metrics.counter "serve.rejected_deadline"
    ~help:"Requests whose deadline budget expired before execution."

let m_bad_requests =
  Metrics.counter "serve.bad_requests"
    ~help:"Lines that failed protocol decoding."

let m_connections =
  Metrics.counter "serve.connections" ~help:"Client connections accepted."

let m_active =
  Metrics.gauge "serve.active_connections"
    ~help:"Currently open client connections."

let m_queue_depth =
  Metrics.gauge "serve.queue_depth" ~help:"Admitted requests waiting to run."

let m_latency =
  Metrics.histogram "serve.request_latency_us"
    ~help:"End-to-end latency of admitted requests, microseconds."

(* Shed and deadline-rejected requests get their own histogram so the
   admitted-request latency series isn't survivorship-biased (and the
   rejection path's own latency — which should be ~0 — is visible). *)
let m_rejection_latency =
  Metrics.histogram "serve.rejection_latency_us"
    ~help:"Latency of rejected/shed requests, microseconds."

let m_queue_wait =
  Metrics.histogram "serve.queue_wait_us"
    ~help:"Time admitted requests spent queued, microseconds."

let m_accept_faults =
  Metrics.counter "faults.serve_accept_injected"
    ~help:"Injected accept-path faults (test harness)."

let m_kill_faults =
  Metrics.counter "faults.serve_kill_injected"
    ~help:"Injected executor-kill faults (test harness)."

(* -- server state -------------------------------------------------- *)

type phase = Serving | Draining | Stopped

(* An admitted request: the connection thread parks on [j_cond] until
   the executor publishes [j_response]. *)
type job = {
  j_parsed : Protocol.parsed;
  j_arrival : float;
  j_mutex : Mutex.t;
  j_cond : Condition.t;
  mutable j_response : string option;
}

type t = {
  cfg : config;
  session : D.Session.session;
  listen_fd : Unix.file_descr;
  queue : job Queue.t;
  q_mutex : Mutex.t;
  q_cond : Condition.t;
  mutable state : phase; (* guarded by q_mutex *)
  drain_requested : bool Atomic.t; (* set from signal handlers *)
  force_stop : bool Atomic.t; (* drain deadline passed *)
  exec_done : bool Atomic.t;
  conns : (Unix.file_descr, unit) Hashtbl.t; (* guarded by c_mutex *)
  c_mutex : Mutex.t;
  mutable acceptor : Thread.t option;
  mutable executor : Thread.t option;
  conn_threads : Thread.t Queue.t; (* guarded by c_mutex *)
  started : float;
  accept_seq : int Atomic.t; (* accepted-connection ordinal (faults) *)
  query_seq : int Atomic.t; (* admitted-query ordinal (faults) *)
  (* continuous telemetry (DESIGN.md §15) *)
  flight : Obs.Flight.t;
  sampler : Obs.Sampler.t;
  journal : Obs.Journal.t option;
  rid_seq : int Atomic.t; (* server-assigned request ids (r1, r2, ...) *)
  mutable last_snapshot : float; (* executor thread only *)
  mutable incident_seq : int; (* executor thread only *)
  (* optimizer provenance retained per plan digest (DESIGN.md §16);
     written by the executor, read inline by connection threads *)
  prov_store : Galley_plan.Provenance.Store.t;
}

let state_of t =
  Mutex.lock t.q_mutex;
  let s = t.state in
  Mutex.unlock t.q_mutex;
  s

let queue_depth t =
  Mutex.lock t.q_mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.q_mutex;
  n

(* -- lifecycle ----------------------------------------------------- *)

let create (cfg : config) : t =
  if cfg.provenance then Galley_plan.Provenance.enable ();
  let session = D.Session.create ~config:cfg.driver () in
  (* A stale socket file from an unclean previous shutdown would make
     bind fail; serving sockets are single-owner here, so unlink it. *)
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  {
    cfg;
    session;
    listen_fd;
    queue = Queue.create ();
    q_mutex = Mutex.create ();
    q_cond = Condition.create ();
    state = Serving;
    drain_requested = Atomic.make false;
    force_stop = Atomic.make false;
    exec_done = Atomic.make false;
    conns = Hashtbl.create 16;
    c_mutex = Mutex.create ();
    acceptor = None;
    executor = None;
    conn_threads = Queue.create ();
    started = Unix.gettimeofday ();
    accept_seq = Atomic.make 0;
    query_seq = Atomic.make 0;
    flight = Obs.Flight.create ~capacity:cfg.flight_capacity ();
    sampler =
      Obs.Sampler.create ?dir:cfg.telemetry_dir
        ~percentile:cfg.sampler_percentile ~keep_all:cfg.trace_all ();
    journal =
      Option.map (fun dir -> Obs.Journal.create ~dir ()) cfg.telemetry_dir;
    rid_seq = Atomic.make 0;
    last_snapshot = Unix.gettimeofday ();
    incident_seq = 0;
    prov_store =
      Galley_plan.Provenance.Store.create ~capacity:cfg.flight_capacity ();
  }

let initiate_drain t =
  Mutex.lock t.q_mutex;
  if t.state = Serving then begin
    t.state <- Draining;
    Obs.Log.info "serve: draining (queue depth %d)" (Queue.length t.queue)
  end;
  Condition.broadcast t.q_cond;
  Mutex.unlock t.q_mutex

let request_drain t = Atomic.set t.drain_requested true

(* -- per-request processing (executor thread) ---------------------- *)

exception Injected_kill of int

(* Per-request observability scratch: the handlers fill it in as the
   request progresses; [process_job] consumes it to route the latency
   observation, decide the sampling triggers, and build the flight
   record. *)
type req_info = {
  mutable ri_outcome : string;  (* "ok" | "error:<kind>" | "shed:<kind>" *)
  mutable ri_program : string;  (* program digest *)
  mutable ri_plan : string;  (* physical plan digest *)
  mutable ri_req_tier : Tier.t option;  (* QoS tier the budget requested *)
  mutable ri_rung_tier : Tier.t option;  (* worst tier actually served *)
  mutable ri_queue_us : int;
  mutable ri_timings : D.timings option;
  mutable ri_replans : int;
  mutable ri_iterations : int;
  mutable ri_audit : Obs.Audit.t option;
}

let new_req_info () =
  {
    ri_outcome = "ok";
    ri_program = "";
    ri_plan = "";
    ri_req_tier = None;
    ri_rung_tier = None;
    ri_queue_us = 0;
    ri_timings = None;
    ri_replans = 0;
    ri_iterations = 0;
    ri_audit = None;
  }

let outcome_is_shed o = String.length o >= 5 && String.sub o 0 5 = "shed:"
let outcome_is_error o = String.length o >= 6 && String.sub o 0 6 = "error:"

(* A batch request implicitly asks for the exact tier, so any ladder
   degradation on it counts as degraded too. *)
let degraded (info : req_info) : bool =
  match info.ri_rung_tier with
  | None -> false
  | Some rung ->
      let req =
        match info.ri_req_tier with Some t -> t | None -> Tier.Exact
      in
      Tier.rank rung < Tier.rank req

let worst_tier (res : D.result) : Tier.t option =
  List.fold_left
    (fun acc (_, tier) ->
      match acc with
      | None -> Some tier
      | Some w -> if Tier.rank tier < Tier.rank w then Some tier else acc)
    None
    (res.D.logical_tiers @ res.D.physical_tiers)

(* Fold one successful driver result (plus any fixpoint reports) into
   the request's scratch record. *)
let note_result (info : req_info)
    ?(reports : Galley_fixpoint.Fixpoint.fix_report list = [])
    (res : D.result) : unit =
  info.ri_plan <-
    Obs.Flight.digest (Galley_plan.Physical.plan_to_string res.D.physical_plan);
  info.ri_rung_tier <- worst_tier res;
  info.ri_timings <- Some res.D.timings;
  info.ri_audit <- res.D.audit;
  info.ri_replans <-
    List.fold_left
      (fun a (r : Galley_fixpoint.Fixpoint.fix_report) ->
        a + r.Galley_fixpoint.Fixpoint.fr_replans)
      0 reports;
  info.ri_iterations <-
    List.fold_left
      (fun a (r : Galley_fixpoint.Fixpoint.fix_report) ->
        a + r.Galley_fixpoint.Fixpoint.fr_iterations)
      0 reports

let flight_record_of ~rid ~op ~total_us (info : req_info) ~trace :
    Obs.Flight.record =
  let base = Obs.Flight.empty_record ~id:rid ~op in
  let s2us s = int_of_float (s *. 1e6) in
  let lus, pus, cus, eus, compiles, kernels, cse =
    match info.ri_timings with
    | Some tm ->
        ( s2us tm.D.logical_seconds,
          s2us tm.D.physical_seconds,
          s2us tm.D.compile_seconds,
          s2us tm.D.execute_seconds,
          tm.D.compile_count,
          tm.D.kernel_count,
          tm.D.cse_hits )
    | None -> (0, 0, 0, 0, 0, 0, 0)
  in
  {
    base with
    Obs.Flight.fl_outcome = info.ri_outcome;
    fl_program = info.ri_program;
    fl_plan = info.ri_plan;
    fl_qos =
      (match info.ri_req_tier with
      | Some t -> Tier.to_string t
      | None -> "batch");
    fl_rung =
      (match info.ri_rung_tier with Some t -> Tier.to_string t | None -> "");
    fl_queue_us = info.ri_queue_us;
    fl_logical_us = lus;
    fl_physical_us = pus;
    fl_compile_us = cus;
    fl_execute_us = eus;
    fl_total_us = total_us;
    fl_compiles = compiles;
    fl_kernels = kernels;
    fl_cse_hits = cse;
    fl_replans = info.ri_replans;
    fl_iterations = info.ri_iterations;
    fl_qerrors =
      (match info.ri_audit with
      | Some a ->
          List.map
            (fun (s : Obs.Audit.summary) ->
              (s.Obs.Audit.s_estimator, s.Obs.Audit.s_mean_q))
            (Obs.Audit.summaries a)
      | None -> []);
    fl_trace = trace;
  }

(* Derive the per-request driver config from the deadline budget: tier
   selection via Tier.of_budget, the remaining budget as both the
   execution wall-clock limit and (halved) the optimizer budget. *)
let request_config t ~(remaining_s : float option) : D.config * Tier.t option
    =
  let base = t.cfg.driver in
  match remaining_s with
  | None -> ({ base with timeout = None }, None)
  | Some rem ->
      let tier =
        Tier.of_budget
          ~naive_below:(t.cfg.naive_below_ms /. 1000.0)
          ~greedy_below:(t.cfg.greedy_below_ms /. 1000.0)
          rem
      in
      let base =
        match tier with
        | Tier.Exact -> base
        | Tier.Greedy ->
            {
              base with
              logical =
                { base.D.logical with search = Galley_logical.Optimizer.Greedy };
              physical = { base.D.physical with exact = false };
            }
        | Tier.Naive ->
            (* A zero optimizer budget exhausts the ladder instantly,
               landing on the naive rung without searching. *)
            { base with optimizer_timeout = Some 0.0 }
      in
      let opt_budget =
        match tier with
        | Tier.Naive -> Some 0.0
        | _ -> Some (Float.max 0.005 (rem *. 0.5))
      in
      ( {
          base with
          timeout = Some rem;
          optimizer_timeout = opt_budget;
          degrade = true;
        },
        Some tier )

let handle_query t (job : job) (info : req_info) ~src ~budget_ms ~want_values
    ~max_entries =
  let id = job.j_parsed.Protocol.req_id in
  let budget_ms =
    match budget_ms with Some b -> Some b | None -> t.cfg.default_budget_ms
  in
  let waited = Unix.gettimeofday () -. job.j_arrival in
  Metrics.observe m_queue_wait (int_of_float (waited *. 1e6));
  info.ri_queue_us <- int_of_float (waited *. 1e6);
  info.ri_program <- Obs.Flight.digest src;
  let remaining_s =
    Option.map (fun b -> (b /. 1000.0) -. waited) budget_ms
  in
  match remaining_s with
  | Some rem when rem <= 0.0 ->
      Metrics.incr m_rejected_deadline;
      info.ri_outcome <- "shed:deadline";
      Protocol.error_json ~id ~kind:"deadline"
        ~message:
          (Printf.sprintf
             "deadline budget of %gms exhausted after %.1fms in queue"
             (Option.get budget_ms) (waited *. 1000.0))
        ()
  | _ -> (
      let config, qos_tier = request_config t ~remaining_s in
      let config =
        if t.cfg.audit_requests then { config with D.audit = true } else config
      in
      info.ri_req_tier <- qos_tier;
      match Galley_fixpoint.Fixpoint.parse_checked src with
      | Error e ->
          Metrics.incr m_requests_failed;
          info.ri_outcome <- "error:" ^ Protocol.kind_of_error e;
          Protocol.error_of ~id e
      | Ok xprogram -> (
          (* serve-kill fires after parse, mid-request: the outer
             catch-all must turn it into a structured error and leave
             the daemon serving. *)
          let ordinal = Atomic.fetch_and_add t.query_seq 1 + 1 in
          (match t.cfg.driver.D.faults.Faults.serve_kill_on with
          | Some n when n = ordinal ->
              Metrics.incr m_kill_faults;
              raise (Injected_kill ordinal)
          | _ -> ());
          let max_entries =
            match max_entries with
            | Some n -> min n t.cfg.max_response_entries
            | None -> t.cfg.max_response_entries
          in
          (* Straight-line programs keep the established session path;
             programs with iterate statements run the fixpoint driver
             against the same resident session, so carried tensors,
             statistics, and warm kernels persist across requests. *)
          match Galley_plan.Ir.program_of_xprogram xprogram with
          | Some program -> (
              match
                D.Session.run_program_checked t.session ~config program
              with
              | Ok res ->
                  Metrics.incr m_requests_ok;
                  note_result info res;
                  Protocol.result_json ~id ~want_values ~max_entries ?qos_tier
                    res
              | Error e ->
                  Metrics.incr m_requests_failed;
                  info.ri_outcome <- "error:" ^ Protocol.kind_of_error e;
                  Protocol.error_of ~id e)
          | None -> (
              match
                Galley_fixpoint.Fixpoint.run_session_checked t.session ~config
                  xprogram
              with
              | Ok (res, reports) ->
                  Metrics.incr m_requests_ok;
                  note_result info ~reports res;
                  Protocol.result_json ~id ~want_values ~max_entries ?qos_tier
                    ~fixpoints:reports res
              | Error e ->
                  Metrics.incr m_requests_failed;
                  info.ri_outcome <- "error:" ^ Protocol.kind_of_error e;
                  Protocol.error_of ~id e)))

let handle_bind t (job : job) (info : req_info) ~name ~spec =
  let id = job.j_parsed.Protocol.req_id in
  info.ri_program <- Obs.Flight.digest name;
  info.ri_queue_us <-
    int_of_float ((Unix.gettimeofday () -. job.j_arrival) *. 1e6);
  match Protocol.tensor_of_bind spec with
  | Error msg ->
      Metrics.incr m_bad_requests;
      info.ri_outcome <- "error:bad_request";
      Protocol.error_json ~id ~kind:"bad_request" ~message:msg ()
  | Ok tensor -> (
      match D.Session.bind t.session name tensor with
      | () ->
          Metrics.incr m_requests_ok;
          Protocol.bound_json ~id ~name tensor
      | exception (Invalid_argument m | Failure m) ->
          Metrics.incr m_requests_failed;
          info.ri_outcome <- "error:bad_request";
          Protocol.error_json ~id ~kind:"bad_request" ~message:m ())

let handle_admitted t (job : job) (info : req_info) : string =
  match job.j_parsed.Protocol.req with
  | Protocol.Query { src; budget_ms; want_values; max_entries } ->
      handle_query t job info ~src ~budget_ms ~want_values ~max_entries
  | Protocol.Bind { name; spec } -> handle_bind t job info ~name ~spec
  | Protocol.Health | Protocol.Metrics_req _ | Protocol.Debug_req _
  | Protocol.Explain_req _ | Protocol.Shutdown ->
      (* Handled inline by the connection thread; never queued. *)
      assert false

let deliver (job : job) (resp : string) =
  Mutex.lock job.j_mutex;
  job.j_response <- Some resp;
  Condition.broadcast job.j_cond;
  Mutex.unlock job.j_mutex

(* The per-request isolation boundary: no exception escaping a request
   may kill the executor thread or leak to another request.

   Telemetry sequencing: the request id is stamped on the log context
   and span attrs before any work; after delivery the latency lands in
   the admitted or rejection histogram (never both), the sampler decides
   trace retention (so the flight record can name the retained trace),
   the flight recorder notes the record, and crash-shaped outcomes dump
   the whole ring to an incident file while the state is fresh. *)
let process_job t (job : job) =
  let id = job.j_parsed.Protocol.req_id in
  let rid =
    match id with
    | Some i -> i
    | None -> Printf.sprintf "r%d" (Atomic.fetch_and_add t.rid_seq 1 + 1)
  in
  let op =
    match job.j_parsed.Protocol.req with
    | Protocol.Query _ -> "query"
    | Protocol.Bind _ -> "bind"
    | _ -> "other"
  in
  let info = new_req_info () in
  Obs.Log.set_context (Some rid);
  Obs.Sampler.begin_request t.sampler;
  let resp =
    if Atomic.get t.force_stop then begin
      Metrics.incr m_rejected_draining;
      info.ri_outcome <- "shed:draining";
      Protocol.error_json ~id ~kind:"draining"
        ~message:"server drain deadline passed; request not executed" ()
    end
    else
      try
        Obs.span ~cat:"serve" ~name:"serve.request"
          ~attrs:(fun () ->
            (* forced at emission, after the handler: outcome is final *)
            [ ("rid", rid); ("op", op); ("outcome", info.ri_outcome) ])
          (fun () -> handle_admitted t job info)
      with
      | Injected_kill n ->
          Metrics.incr m_requests_failed;
          info.ri_outcome <- "error:injected_fault";
          Protocol.error_json ~id ~kind:"injected_fault"
            ~message:
              (Printf.sprintf "injected mid-request kill (query %d)" n)
            ()
      | exn ->
          Metrics.incr m_requests_failed;
          info.ri_outcome <- "error:internal";
          Obs.Log.error "serve: request failed uncaught: %s"
            (Printexc.to_string exn);
          Protocol.error_json ~id ~kind:"internal"
            ~message:(Printexc.to_string exn) ()
  in
  deliver job resp;
  (* Retain this request's optimizer provenance under its plan digest.
     The executor is the only thread that plans, so the drain returns
     exactly this request's events; draining even without a digest
     keeps the recorder buffer bounded across failed requests. *)
  if Galley_plan.Provenance.enabled () then begin
    let evs = Galley_plan.Provenance.drain () in
    if info.ri_plan <> "" && evs <> [] then
      Galley_plan.Provenance.Store.put t.prov_store ~digest:info.ri_plan
        (Printf.sprintf {|{"plan":"%s","rid":"%s","events":%s}|} info.ri_plan
           (Metrics.json_escape rid)
           (Galley_plan.Provenance.events_to_json evs))
  end;
  let total_us =
    int_of_float ((Unix.gettimeofday () -. job.j_arrival) *. 1e6)
  in
  if outcome_is_shed info.ri_outcome then
    Metrics.observe m_rejection_latency total_us
  else Metrics.observe m_latency total_us;
  let triggers =
    (if outcome_is_error info.ri_outcome then [ info.ri_outcome ] else [])
    @ (if outcome_is_shed info.ri_outcome then [ info.ri_outcome ] else [])
    @ (if degraded info then [ "degraded" ] else [])
    @ if info.ri_replans > 0 then [ "replanned" ] else []
  in
  let decision =
    Obs.Sampler.end_request t.sampler ~id:rid ~duration_us:total_us ~triggers
  in
  let record =
    Obs.Flight.note t.flight
      (flight_record_of ~rid ~op ~total_us info
         ~trace:decision.Obs.Sampler.trace_name)
  in
  (match t.journal with
  | Some j ->
      (match info.ri_audit with
      | Some a -> Obs.Journal.audit_rows j ~id:rid (Obs.Audit.rows a)
      | None -> ());
      let now = Unix.gettimeofday () in
      if now -. t.last_snapshot >= t.cfg.telemetry_interval then begin
        Obs.Journal.snapshot j;
        t.last_snapshot <- now
      end
  | None -> ());
  (match (t.cfg.telemetry_dir, info.ri_outcome) with
  | Some dir, ("error:injected_fault" | "error:internal") ->
      t.incident_seq <- t.incident_seq + 1;
      let file =
        Printf.sprintf "incident-%03d-%s.jsonl" t.incident_seq
          (Obs.Sampler.sanitize rid)
      in
      let n = Obs.Flight.write_jsonl t.flight (Filename.concat dir file) in
      Obs.Log.info "serve: incident dump %s (%d records, trace %s)" file n
        (if record.Obs.Flight.fl_trace = "" then "-"
         else record.Obs.Flight.fl_trace)
  | _ -> ());
  Obs.Log.set_context None

let executor_loop t =
  let rec loop () =
    Mutex.lock t.q_mutex;
    while Queue.is_empty t.queue && t.state = Serving do
      Condition.wait t.q_cond t.q_mutex
    done;
    let next =
      if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)
    in
    Metrics.set_gauge m_queue_depth (float_of_int (Queue.length t.queue));
    Mutex.unlock t.q_mutex;
    match next with
    | Some job ->
        process_job t job;
        loop ()
    | None -> (* queue empty and draining/stopped: done *) ()
  in
  loop ();
  Atomic.set t.exec_done true

(* -- admission (connection threads) -------------------------------- *)

(* Requests rejected at admission never reach the executor; record them
   here so shedding is visible in both the rejection histogram and the
   flight ring (which is mutex-guarded, so connection threads may note
   records directly).  The sampler is executor-owned and stays out of
   this path — an unadmitted request has no spans to retain. *)
let note_rejection t (parsed : Protocol.parsed) ~(kind : string)
    ~(arrival : float) : unit =
  let rid =
    match parsed.Protocol.req_id with
    | Some i -> i
    | None -> Printf.sprintf "r%d" (Atomic.fetch_and_add t.rid_seq 1 + 1)
  in
  let op, program =
    match parsed.Protocol.req with
    | Protocol.Query { src; _ } -> ("query", Obs.Flight.digest src)
    | Protocol.Bind { name; _ } -> ("bind", Obs.Flight.digest name)
    | _ -> ("other", "")
  in
  let total_us = int_of_float ((Unix.gettimeofday () -. arrival) *. 1e6) in
  Metrics.observe m_rejection_latency total_us;
  let base = Obs.Flight.empty_record ~id:rid ~op in
  ignore
    (Obs.Flight.note t.flight
       {
         base with
         Obs.Flight.fl_outcome = "shed:" ^ kind;
         fl_program = program;
         fl_total_us = total_us;
       })

let submit t (parsed : Protocol.parsed) : string =
  let id = parsed.Protocol.req_id in
  let job =
    {
      j_parsed = parsed;
      j_arrival = Unix.gettimeofday ();
      j_mutex = Mutex.create ();
      j_cond = Condition.create ();
      j_response = None;
    }
  in
  Mutex.lock t.q_mutex;
  let verdict =
    if t.state <> Serving then `Draining
    else if Queue.length t.queue >= t.cfg.queue_capacity then `Full
    else begin
      Queue.push job t.queue;
      Metrics.set_gauge m_queue_depth (float_of_int (Queue.length t.queue));
      Condition.broadcast t.q_cond;
      `Queued
    end
  in
  Mutex.unlock t.q_mutex;
  match verdict with
  | `Draining ->
      Metrics.incr m_rejected_draining;
      note_rejection t parsed ~kind:"draining" ~arrival:job.j_arrival;
      Protocol.error_json ~id ~kind:"draining"
        ~message:"server is draining; no new requests admitted" ()
  | `Full ->
      Metrics.incr m_rejected_full;
      note_rejection t parsed ~kind:"queue_full" ~arrival:job.j_arrival;
      Protocol.error_json ~id ~kind:"queue_full"
        ~message:
          (Printf.sprintf
             "admission queue full (capacity %d); retry with backoff"
             t.cfg.queue_capacity)
        ()
  | `Queued ->
      Mutex.lock job.j_mutex;
      while job.j_response = None do
        Condition.wait job.j_cond job.j_mutex
      done;
      let r = Option.get job.j_response in
      Mutex.unlock job.j_mutex;
      r

(* -- inline (unqueued) commands ------------------------------------ *)

let health_json t id =
  let exec = D.Session.exec t.session in
  let kc, cc = Galley_engine.Exec.cache_occupancy exec in
  let ke, ce = Galley_engine.Exec.cache_evictions exec in
  Protocol.ok_json ~id
    [
      ("op", "\"health\"");
      ( "status",
        match state_of t with
        | Serving -> "\"serving\""
        | Draining -> "\"draining\""
        | Stopped -> "\"stopped\"" );
      ( "uptime_s",
        Printf.sprintf "%.3f" (Unix.gettimeofday () -. t.started) );
      ( "resident_tensors",
        string_of_int (Galley_engine.Exec.bound_count exec) );
      ("queue_depth", string_of_int (queue_depth t));
      ( "active_connections",
        string_of_int (int_of_float (Metrics.gauge_value m_active)) );
      ("requests_total", string_of_int (Metrics.value m_requests));
      ( "kernel_cache",
        Printf.sprintf "{\"entries\":%d,\"evictions\":%d}" kc ke );
      ("cse_cache", Printf.sprintf "{\"entries\":%d,\"evictions\":%d}" cc ce);
    ]

let metrics_json id ~prometheus =
  if prometheus then
    Protocol.ok_json ~id
      [
        ("op", "\"metrics\"");
        ("format", "\"prometheus\"");
        ( "metrics",
          "\"" ^ Metrics.json_escape (Metrics.dump_prometheus ()) ^ "\"" );
      ]
  else
    Protocol.ok_json ~id
      [ ("op", "\"metrics\""); ("metrics", Metrics.dump_json ()) ]

(* Flight-recorder dump: the newest [last] records (default: the whole
   ring), newest record last. *)
let debug_json t id ~last =
  let rs = Obs.Flight.records t.flight in
  let n = List.length rs in
  let keep = match last with Some k when k >= 0 && k < n -> k | _ -> n in
  let rs = List.filteri (fun i _ -> i >= n - keep) rs in
  Protocol.ok_json ~id
    [
      ("op", "\"debug\"");
      ("total", string_of_int (Obs.Flight.total t.flight));
      ("capacity", string_of_int (Obs.Flight.capacity t.flight));
      ( "records",
        "[" ^ String.concat "," (List.map Obs.Flight.to_json rs) ^ "]" );
    ]

(* Resident provenance lookup: the retained search trace for a plan
   digest (as stamped in flight records and `galley debug` output). *)
let explain_json t id ~digest =
  match Galley_plan.Provenance.Store.get t.prov_store digest with
  | Some json ->
      Protocol.ok_json ~id [ ("op", "\"explain\""); ("provenance", json) ]
  | None ->
      let message =
        if not (Galley_plan.Provenance.enabled ()) then
          "provenance recording is off; start the daemon with --provenance"
        else
          Printf.sprintf
            "no provenance retained for plan digest %s (evicted or never \
             planned here)"
            digest
      in
      Protocol.error_json ~id ~kind:"not_found" ~message ()

let handle_line t (line : string) : string option =
  if String.trim line = "" then None
  else begin
    Metrics.incr m_requests;
    match Protocol.decode_request line with
    | Error msg ->
        Metrics.incr m_bad_requests;
        Some (Protocol.error_json ~kind:"bad_request" ~message:msg ())
    | Ok parsed -> (
        let id = parsed.Protocol.req_id in
        match parsed.Protocol.req with
        | Protocol.Health -> Some (health_json t id)
        | Protocol.Metrics_req { prometheus } ->
            Some (metrics_json id ~prometheus)
        | Protocol.Debug_req { last } -> Some (debug_json t id ~last)
        | Protocol.Explain_req { digest } -> Some (explain_json t id ~digest)
        | Protocol.Shutdown ->
            request_drain t;
            Some (Protocol.ok_json ~id [ ("op", "\"shutdown\""); ("status", "\"draining\"") ])
        | Protocol.Query _ | Protocol.Bind _ -> Some (submit t parsed))
  end

(* -- connection handling ------------------------------------------- *)

let register_conn t fd =
  Mutex.lock t.c_mutex;
  Hashtbl.replace t.conns fd ();
  Mutex.unlock t.c_mutex

let unregister_conn t fd =
  Mutex.lock t.c_mutex;
  Hashtbl.remove t.conns fd;
  Mutex.unlock t.c_mutex

let connection_loop t fd =
  Metrics.incr m_connections;
  Metrics.set_gauge m_active (Metrics.gauge_value m_active +. 1.0);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let stall = t.cfg.driver.D.faults.Faults.serve_stall in
  Fun.protect
    ~finally:(fun () ->
      unregister_conn t fd;
      Metrics.set_gauge m_active (Metrics.gauge_value m_active -. 1.0);
      try Unix.close fd with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      let rec loop () =
        match input_line ic with
        | exception (End_of_file | Sys_error _) -> ()
        | exception Unix.Unix_error _ -> ()
        | line -> (
            match handle_line t line with
            | None -> loop ()
            | Some resp -> (
                if stall > 0.0 then Thread.delay stall;
                match
                  output_string oc resp;
                  output_char oc '\n';
                  flush oc
                with
                | () -> loop ()
                | exception (Sys_error _ | Unix.Unix_error _) -> ()))
      in
      loop ())

let acceptor_loop t =
  let rec loop () =
    if state_of t <> Serving then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ -> (
              let n = Atomic.fetch_and_add t.accept_seq 1 + 1 in
              match t.cfg.driver.D.faults.Faults.serve_accept_fail_on with
              | Some nth when nth = n ->
                  (* Injected accept failure: drop the connection as if
                     accept(2) had failed; the daemon keeps serving. *)
                  Metrics.incr m_accept_faults;
                  Obs.Log.warn
                    "serve: injected accept failure on connection %d" n;
                  (try Unix.close fd with Unix.Unix_error _ -> ())
              | _ ->
                  register_conn t fd;
                  let th = Thread.create (fun () -> connection_loop t fd) () in
                  Mutex.lock t.c_mutex;
                  Queue.push th t.conn_threads;
                  Mutex.unlock t.c_mutex)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (e, _, _) ->
              if state_of t = Serving then begin
                Obs.Log.warn "serve: accept failed: %s" (Unix.error_message e);
                Thread.delay 0.01
              end)
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

let start t =
  t.acceptor <- Some (Thread.create (fun () -> acceptor_loop t) ());
  t.executor <- Some (Thread.create (fun () -> executor_loop t) ());
  Obs.Log.info "serve: listening on %s (queue capacity %d, domains %d)"
    t.cfg.socket_path t.cfg.queue_capacity t.cfg.driver.D.domains

(* Block until a drain completes.  Signal handlers only set the atomic
   [drain_requested] flag (taking a mutex in signal context could
   deadlock); this loop promotes it. *)
let wait t =
  while state_of t = Serving do
    if Atomic.get t.drain_requested then initiate_drain t
    else Thread.delay 0.05
  done;
  (match t.acceptor with Some th -> Thread.join th | None -> ());
  (* Give queued + in-flight work the drain budget, then force the
     executor to answer the remainder with "draining" rejections. *)
  let deadline = Unix.gettimeofday () +. t.cfg.drain_timeout in
  while (not (Atomic.get t.exec_done)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  if not (Atomic.get t.exec_done) then begin
    Obs.Log.warn "serve: drain deadline (%gs) passed; shedding queued work"
      t.cfg.drain_timeout;
    Atomic.set t.force_stop true
  end;
  (match t.executor with Some th -> Thread.join th | None -> ());
  (* Wake connection threads blocked in input_line so they exit, then
     join them: responses already computed still get written. *)
  Mutex.lock t.c_mutex;
  Hashtbl.iter
    (fun fd () ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    t.conns;
  Mutex.unlock t.c_mutex;
  let rec join_conns () =
    Mutex.lock t.c_mutex;
    let th = if Queue.is_empty t.conn_threads then None else Some (Queue.pop t.conn_threads) in
    Mutex.unlock t.c_mutex;
    match th with
    | Some th ->
        Thread.join th;
        join_conns ()
    | None -> ()
  in
  join_conns ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  Mutex.lock t.q_mutex;
  t.state <- Stopped;
  Mutex.unlock t.q_mutex;
  (* Telemetry drain dump: the flight ring and a final metrics snapshot
     always land on disk when a telemetry dir is configured, so even a
     clean shutdown leaves the last N requests inspectable. *)
  (match t.cfg.telemetry_dir with
  | Some dir ->
      (try
         let n =
           Obs.Flight.write_jsonl t.flight (Filename.concat dir "flight.jsonl")
         in
         (match t.journal with Some j -> Obs.Journal.snapshot j | None -> ());
         Obs.Log.info "serve: telemetry drain dump (%d flight records to %s)"
           n dir
       with Sys_error e -> Obs.Log.warn "serve: telemetry dump failed: %s" e)
  | None -> ());
  Obs.Log.info "serve: drained clean (%d requests served)"
    (Metrics.value m_requests)

(* One-call serving loop for the CLI: install signal-driven drain,
   serve until SIGTERM/SIGINT (or a shutdown request), drain, return. *)
let run ?(install_signals = true) (t : t) : unit =
  if install_signals then begin
    let handler = Sys.Signal_handle (fun _ -> request_drain t) in
    (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ())
  end;
  start t;
  wait t

(* Test/bench hook: the resident session (e.g. to preload tensors
   in-process before starting the listener). *)
let session t = t.session

(* Telemetry accessors: the CLI writes the keep-all trace on exit; tests
   inspect the ring directly. *)
let sampler t = t.sampler
let flight t = t.flight
