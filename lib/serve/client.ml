(* Client side of the serve protocol: connect to the daemon's Unix
   socket with retry/backoff, send one JSON line per request, read one
   JSON line per response.  Used by the CLI's client mode, the serve
   tests, and the bench serving section. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* Exponential backoff across [retries] attempts: the daemon may still
   be binding its socket when the first client arrives, and a shed
   ("queue_full") client is told to come back the same way. *)
let connect ?(retries = 0) ?(backoff = 0.05) (path : string) :
    (t, string) result =
  let rec go attempt =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
        Ok
          {
            fd;
            ic = Unix.in_channel_of_descr fd;
            oc = Unix.out_channel_of_descr fd;
          }
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if attempt >= retries then
          Error
            (Printf.sprintf "connect %s: %s" path (Unix.error_message e))
        else begin
          Thread.delay (backoff *. (2.0 ** float_of_int attempt));
          go (attempt + 1)
        end
  in
  go 0

let request (c : t) (line : string) : (string, string) result =
  match
    output_string c.oc line;
    output_char c.oc '\n';
    flush c.oc;
    input_line c.ic
  with
  | resp -> Ok resp
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error m -> Error m
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let close (c : t) : unit =
  (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close c.fd with Unix.Unix_error _ | Sys_error _ -> ()

(* One-shot convenience: connect, send, read, close. *)
let rpc ?retries ?backoff ~socket (line : string) : (string, string) result =
  match connect ?retries ?backoff socket with
  | Error e -> Error e
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () -> request c line)

(* Decode a response line and report (ok, parsed json); malformed
   responses surface as Error. *)
let decode (resp : string) : (bool * Galley_obs.Json.t, string) result =
  match Galley_obs.Json.parse resp with
  | Error e -> Error e
  | Ok json -> (
      match Option.bind (Galley_obs.Json.member "ok" json) Galley_obs.Json.to_bool with
      | Some ok -> Ok (ok, json)
      | None -> Error "response missing \"ok\" field")
