(* String-keyed LRU cache backing the engine's resident caches.

   A resident `galley serve` process keeps the kernel and CSE caches
   alive for its whole lifetime, so unbounded hashtables would grow
   without bound as query shapes and tensor versions churn.  This is a
   classic hashtable + intrusive doubly-linked recency list: [find]
   touches (moves to the front), [put] inserts at the front and evicts
   from the tail past [capacity], reporting each eviction through
   [on_evict] so callers can keep counters.

   Not thread-safe on its own; the executor already serializes cache
   access under its engine mutex. *)

type 'v node = {
  n_key : string;
  mutable n_value : 'v;
  mutable n_prev : 'v node option; (* towards the head (more recent) *)
  mutable n_next : 'v node option; (* towards the tail (less recent) *)
}

type 'v t = {
  capacity : int; (* >= 1; [max_int] is effectively unbounded *)
  tbl : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option; (* most recently used *)
  mutable tail : 'v node option; (* least recently used *)
  mutable evictions : int;
  on_evict : string -> 'v -> unit;
}

let create ?(on_evict = fun _ _ -> ()) ~capacity () : 'v t =
  {
    capacity = max 1 capacity;
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    evictions = 0;
    on_evict;
  }

let length (t : 'v t) : int = Hashtbl.length t.tbl
let evictions (t : 'v t) : int = t.evictions
let capacity (t : 'v t) : int = t.capacity

let unlink (t : 'v t) (n : 'v node) : unit =
  (match n.n_prev with
  | Some p -> p.n_next <- n.n_next
  | None -> t.head <- n.n_next);
  (match n.n_next with
  | Some nx -> nx.n_prev <- n.n_prev
  | None -> t.tail <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front (t : 'v t) (n : 'v node) : unit =
  n.n_next <- t.head;
  n.n_prev <- None;
  (match t.head with Some h -> h.n_prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch (t : 'v t) (n : 'v node) : unit =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

(* Lookup; a hit refreshes the entry's recency. *)
let find (t : 'v t) (key : string) : 'v option =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some n ->
      touch t n;
      Some n.n_value

let evict_tail (t : 'v t) : unit =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.n_key;
      t.evictions <- t.evictions + 1;
      t.on_evict n.n_key n.n_value

(* Insert or overwrite; evicts least-recently-used entries past capacity. *)
let put (t : 'v t) (key : string) (value : 'v) : unit =
  (match Hashtbl.find_opt t.tbl key with
  | Some n ->
      n.n_value <- value;
      touch t n
  | None ->
      let n = { n_key = key; n_value = value; n_prev = None; n_next = None } in
      Hashtbl.replace t.tbl key n;
      push_front t n);
  while Hashtbl.length t.tbl > t.capacity do
    evict_tail t
  done

let clear (t : 'v t) : unit =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

(* Keys from most to least recently used (tests and diagnostics). *)
let keys_by_recency (t : 'v t) : string list =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.n_key :: acc) n.n_next
  in
  go [] t.head
