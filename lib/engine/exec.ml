(* Plan execution (paper Sec. 4.3, 8.2, Fig. 9).

   The executor owns a tensor dictionary (inputs + intermediates), a kernel
   cache keyed by the kernel's structural signature (formats, protocols,
   fills — names stripped), and a common-sub-expression cache keyed by the
   physical step plus the identities of the tensors it reads.  Compiling a
   kernel on a cache miss is timed separately from running it so the
   compilation-latency experiment (Fig. 9) can report cold vs warm costs.

   Parallelism (DESIGN.md "Parallel runtime"): each executor owns a domain
   pool sized by [domains] ([1] = the exact serial path).  The pool serves
   two layers — independent steps of one plan run as level-synchronous
   waves here, and the staged backend chunks each kernel's outermost loop
   over the same pool.  Every shared table ([tensors], [versions],
   [kernel_cache], [cse_cache]) and the [timings] record are guarded by
   one mutex, held only around dictionary work — never across a kernel
   run, so lock scope cannot serialize execution.  The kernel-invocation
   ordinal feeding [kernel_hook] is an [Atomic.t], keeping fault injection
   well-defined when kernels launch concurrently. *)

open Galley_plan
module T = Galley_tensor.Tensor
module Pool = Galley_parallel.Pool
module Dag = Galley_parallel.Dag
module Obs = Galley_obs

exception Timeout = Kernel_exec.Timeout

(* Cache behaviour and kernel volume land in the metrics registry
   (DESIGN.md §9).  Counter bumps are single atomic adds and stay on
   unconditionally; nnz accounting walks tensors and is gated behind
   [Metrics.detailed] (enabled by [--metrics], bench, and tests). *)
let m_kernel_cache_hits = Obs.Metrics.counter "kernel_cache.hits"
let m_kernel_cache_misses = Obs.Metrics.counter "kernel_cache.misses"
let m_kernel_cache_evictions = Obs.Metrics.counter "kernel_cache.evictions"
let m_cse_hits = Obs.Metrics.counter "cse.hits"
let m_cse_misses = Obs.Metrics.counter "cse.misses"
let m_cse_cache_evictions = Obs.Metrics.counter "cse_cache.evictions"
let m_kernels_run = Obs.Metrics.counter "exec.kernels_run"
let m_transposes_run = Obs.Metrics.counter "exec.transposes_run"
let m_nnz_read = Obs.Metrics.counter "kernel.nnz_read"
let m_nnz_written = Obs.Metrics.counter "kernel.nnz_written"

(* Which kernel compiler backs the cache: the staged closure compiler
   (galley_compile; the default) or the constraint-tree interpreter, kept
   as the differential oracle.  Both produce size-generic closures keyed by
   the same structural signature, so cache accounting is identical. *)
type backend = Interp | Staged

let backend_to_string = function Interp -> "interp" | Staged -> "staged"

type timings = {
  mutable compile_time : float; (* seconds spent compiling kernels *)
  mutable compile_count : int; (* cache misses *)
  mutable kernel_count : int; (* kernel invocations *)
  mutable exec_time : float; (* seconds spent running kernels/transposes *)
  mutable cse_hits : int;
}

let fresh_timings () =
  {
    compile_time = 0.0;
    compile_count = 0;
    kernel_count = 0;
    exec_time = 0.0;
    cse_hits = 0;
  }

type t = {
  tensors : (string, T.t) Hashtbl.t;
  versions : (string, int) Hashtbl.t;
      (* bumped on every (re)bind: CSE keys name a specific binding, so
         rebinding a name (e.g. the BFS frontier each iteration) cannot hit
         a stale cached result *)
  kernel_cache : Kernel_exec.compiled Lru.t;
      (* LRU-bounded: a resident process (galley serve) must not grow
         without bound as query shapes churn; evictions are counted in
         [kernel_cache.evictions] *)
  cse_cache : T.t Lru.t;
      (* LRU-bounded for the same reason; stale version-keyed entries
         age out of the tail *)
  cse_enabled : bool;
  timings : timings;
  mutable deadline : float option;
  mutable kernel_hook : (int -> unit) option;
      (* called with the 1-based kernel invocation ordinal before each
         kernel runs (CSE hits skip it); a fault-injection seam *)
  backend : backend;
  pool : Pool.t;  (* shared by step waves and intra-kernel chunking *)
  mutex : Mutex.t;  (* guards the tables and [timings] above *)
  kernel_ordinal : int Atomic.t;  (* 1-based invocation counter for the hook *)
}

(* Default cache bounds: generous for batch runs, finite for a resident
   daemon.  Overridable per executor (and from `galley serve`). *)
let default_kernel_cache_cap = 1024
let default_cse_cache_cap = 1024

let create ?(cse = true) ?(backend = Staged) ?(domains = 1)
    ?(kernel_cache_cap = default_kernel_cache_cap)
    ?(cse_cache_cap = default_cse_cache_cap) () =
  {
    tensors = Hashtbl.create 32;
    versions = Hashtbl.create 32;
    kernel_cache =
      Lru.create ~capacity:kernel_cache_cap
        ~on_evict:(fun _ _ -> Obs.Metrics.incr m_kernel_cache_evictions)
        ();
    cse_cache =
      Lru.create ~capacity:cse_cache_cap
        ~on_evict:(fun _ _ -> Obs.Metrics.incr m_cse_cache_evictions)
        ();
    cse_enabled = cse;
    timings = fresh_timings ();
    deadline = None;
    kernel_hook = None;
    backend;
    pool = Pool.create ~domains;
    mutex = Mutex.create ();
    kernel_ordinal = Atomic.make 0;
  }

(* The engine mutex is not reentrant: public entry points lock here, and
   everything called under the lock uses the [_unlocked] internals. *)
let locked (t : t) (f : unit -> 'a) : 'a =
  Mutex.lock t.mutex;
  match f () with
  | v ->
      Mutex.unlock t.mutex;
      v
  | exception e ->
      Mutex.unlock t.mutex;
      raise e

let pool (t : t) : Pool.t = t.pool
let pool_size (t : t) : int = Pool.size t.pool

(* Join the pool's worker domains (idempotent; the pool respawns lazily on
   the next parallel batch, so a session-held executor stays usable). *)
let shutdown (t : t) : unit = Pool.shutdown t.pool

let set_timeout (t : t) (seconds : float) : unit =
  t.deadline <- Some (Unix.gettimeofday () +. seconds)

let clear_timeout (t : t) : unit = t.deadline <- None

let set_kernel_hook (t : t) (hook : int -> unit) : unit =
  t.kernel_hook <- Some hook

let clear_kernel_hook (t : t) : unit = t.kernel_hook <- None

let bind (t : t) (name : string) (tensor : T.t) : unit =
  (* Tensors shared across domains must be truly immutable: force the lazy
     caches (hash-level sort order, nnz) up front instead of letting
     worker domains race on first-use fills. *)
  if Pool.size t.pool > 1 then T.presort tensor;
  locked t (fun () ->
      (* Rebinding the physically-same tensor (a CSE replay in a resident
         session) keeps the version: the value is unchanged, and bumping
         would spuriously invalidate every downstream CSE key, breaking
         whole-program warm replay across requests. *)
      match Hashtbl.find_opt t.tensors name with
      | Some existing when existing == tensor -> ()
      | Some _ | None ->
          let v =
            match Hashtbl.find_opt t.versions name with
            | Some v -> v + 1
            | None -> 0
          in
          Hashtbl.replace t.versions name v;
          Hashtbl.replace t.tensors name tensor)

let version_unlocked (t : t) (name : string) : int =
  match Hashtbl.find_opt t.versions name with Some v -> v | None -> 0

let version (t : t) (name : string) : int =
  locked t (fun () -> version_unlocked t name)

let lookup_unlocked (t : t) (name : string) : T.t =
  match Hashtbl.find_opt t.tensors name with
  | Some tensor -> tensor
  | None -> invalid_arg ("Exec: unbound tensor " ^ name)

let lookup (t : t) (name : string) : T.t =
  locked t (fun () -> lookup_unlocked t name)

let lookup_opt (t : t) (name : string) : T.t option =
  locked t (fun () -> Hashtbl.find_opt t.tensors name)

(* Reset per-program state but keep the kernel cache (kernels are reused
   across programs with the same structure, as Finch does). *)
let reset_tensors (t : t) : unit =
  locked t (fun () ->
      Hashtbl.reset t.tensors;
      Lru.clear t.cse_cache)

(* Resident-footprint accessors for health/metrics reporting. *)
let bound_count (t : t) : int = locked t (fun () -> Hashtbl.length t.tensors)

let cache_occupancy (t : t) : int * int =
  locked t (fun () -> (Lru.length t.kernel_cache, Lru.length t.cse_cache))

let cache_evictions (t : t) : int * int =
  locked t (fun () -> (Lru.evictions t.kernel_cache, Lru.evictions t.cse_cache))

let now = Unix.gettimeofday

(* CSE key: a physical step is a pure function of the tensors it reads, and
   tensor bindings are immutable within an execution, so step-signature plus
   read-tensor names identifies the result (paper Sec. 8.2).  Caller holds
   the engine mutex (versions are read). *)
let cse_key_kernel_unlocked (t : t) (k : Physical.kernel)
    ~(signature : string) : string =
  let buf = Buffer.create (String.length signature + 32) in
  Buffer.add_string buf signature;
  Buffer.add_char buf '#';
  Array.iteri
    (fun i (a : Physical.access) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf a.Physical.tensor;
      Buffer.add_char buf '@';
      Buffer.add_string buf (string_of_int (version_unlocked t a.Physical.tensor)))
    k.Physical.accesses;
  Buffer.contents buf

let run_kernel (t : t) (k : Physical.kernel) : T.t =
  (* Dictionary reads, key construction, and cache probes happen under the
     engine mutex; the kernel itself runs outside it. *)
  let tensors, access_fills, access_formats, signature, cse_key, cse_hit =
    locked t (fun () ->
        let tensors =
          Array.map (fun a -> lookup_unlocked t a.Physical.tensor)
            k.Physical.accesses
        in
        let access_fills = Array.map T.fill tensors in
        let access_formats = Array.map T.formats tensors in
        let signature =
          Kernel_exec.cache_signature k ~access_formats ~access_fills
        in
        let cse_key = cse_key_kernel_unlocked t k ~signature in
        let cse_hit =
          if t.cse_enabled then Lru.find t.cse_cache cse_key else None
        in
        (tensors, access_fills, access_formats, signature, cse_key, cse_hit))
  in
  match cse_hit with
  | Some result ->
      Obs.Metrics.incr m_cse_hits;
      locked t (fun () -> t.timings.cse_hits <- t.timings.cse_hits + 1);
      result
  | None ->
      if t.cse_enabled then Obs.Metrics.incr m_cse_misses;
      let compiled =
        locked t (fun () ->
            match Lru.find t.kernel_cache signature with
            | Some c ->
                Obs.Metrics.incr m_kernel_cache_hits;
                c
            | None ->
                Obs.Metrics.incr m_kernel_cache_misses;
                let t0 = now () in
                let c =
                  Obs.span ~cat:"compile"
                    ~name:("compile:" ^ k.Physical.name)
                    ~attrs:(fun () ->
                      [ ("backend", backend_to_string t.backend) ])
                  @@ fun () ->
                  match t.backend with
                  | Interp ->
                      { (Kernel_exec.compile k ~access_fills) with signature }
                  | Staged ->
                      let staged =
                        Galley_compile.Backend.compile k ~access_fills
                          ~access_formats
                      in
                      let pool = t.pool in
                      (* Scheduling attribution rides on the merge string
                         the profiler's hot-kernel table joins: kernels
                         that will distribute over the pool say which
                         scheduler hands out their outermost ranges. *)
                      let describe =
                        if Pool.size pool > 1 then
                          staged.Galley_compile.Backend.describe
                          ^ (if !Galley_compile.Kernel_v2.morsel then
                               " par:morsel"
                             else " par:static")
                        else staged.Galley_compile.Backend.describe
                      in
                      {
                        Kernel_exec.signature;
                        describe;
                        run =
                          (fun ?deadline kc ts ->
                            try
                              staged.Galley_compile.Backend.run ?deadline ~pool
                                kc ts
                            with Galley_compile.Backend.Timeout ->
                              raise Kernel_exec.Timeout);
                      }
                in
                t.timings.compile_time <-
                  t.timings.compile_time +. (now () -. t0);
                t.timings.compile_count <- t.timings.compile_count + 1;
                Lru.put t.kernel_cache signature c;
                c)
      in
      (match t.kernel_hook with
      | Some hook -> hook (Atomic.fetch_and_add t.kernel_ordinal 1 + 1)
      | None -> ());
      Obs.Metrics.incr m_kernels_run;
      let t0 = now () in
      (* Measured output cardinality for the span: the attrs thunk runs
         after [f] returns, so a ref bridges the result out.  -1 = the
         kernel raised before producing a tensor. *)
      let out_nnz = ref (-1) in
      let result =
        Obs.span ~cat:"exec"
          ~name:("kernel:" ^ k.Physical.name)
          ~attrs:(fun () ->
            [
              ("out_nnz", string_of_int !out_nnz);
              ("backend", backend_to_string t.backend);
              ("accesses", string_of_int (Array.length k.Physical.accesses));
              (* Attribution attrs joined by the profiler's hot-kernel
                 table: loop order, per-level merge strategy, output
                 formats, and per-access iteration protocols. *)
              ("loop", String.concat "," k.Physical.loop_order);
              ("merge", compiled.Kernel_exec.describe);
              ( "out_formats",
                String.concat ","
                  (Array.to_list
                     (Array.map T.format_to_string k.Physical.output_formats))
              );
              ( "protocols",
                String.concat ";"
                  (Array.to_list
                     (Array.map
                        (fun (a : Physical.access) ->
                          a.Physical.tensor ^ ":"
                          ^ String.concat ","
                              (List.map Physical.protocol_to_string
                                 a.Physical.protocols))
                        k.Physical.accesses)) );
            ])
          (fun () ->
            let r = compiled.Kernel_exec.run ?deadline:t.deadline k tensors in
            out_nnz := T.nnz r;
            r)
      in
      if Obs.Metrics.detailed () then begin
        Array.iter (fun src -> Obs.Metrics.add m_nnz_read (T.nnz src)) tensors;
        Obs.Metrics.add m_nnz_written (T.nnz result)
      end;
      locked t (fun () ->
          t.timings.exec_time <- t.timings.exec_time +. (now () -. t0);
          t.timings.kernel_count <- t.timings.kernel_count + 1;
          if t.cse_enabled then Lru.put t.cse_cache cse_key result);
      result

let run_transpose (t : t) ~(source : string) ~(perm : int array)
    ~(formats : T.format array option) : T.t =
  let src = lookup t source in
  Obs.Metrics.incr m_transposes_run;
  let t0 = now () in
  let result =
    Obs.span ~cat:"exec" ~name:("transpose:" ^ source) (fun () ->
        T.transpose ?formats src perm)
  in
  locked t (fun () ->
      t.timings.exec_time <- t.timings.exec_time +. (now () -. t0));
  result

let run_step (t : t) (step : Physical.step) : string * T.t =
  match step with
  | Physical.Kernel k ->
      let result = run_kernel t k in
      bind t k.Physical.name result;
      (k.Physical.name, result)
  | Physical.Transpose { name; source; perm; formats; _ } ->
      let key, cse_hit =
        locked t (fun () ->
            let key =
              Printf.sprintf "transpose:%s@%d:%s" source
                (version_unlocked t source)
                (String.concat ","
                   (Array.to_list (Array.map string_of_int perm)))
            in
            let hit =
              if t.cse_enabled then Lru.find t.cse_cache key else None
            in
            (key, hit))
      in
      let result =
        match cse_hit with
        | Some r ->
            locked t (fun () -> t.timings.cse_hits <- t.timings.cse_hits + 1);
            r
        | None ->
            let r = run_transpose t ~source ~perm ~formats:(Some formats) in
            locked t (fun () ->
                if t.cse_enabled then Lru.put t.cse_cache key r);
            r
      in
      bind t name result;
      (name, result)

(* Def-use dependencies between the steps of one plan: step [i] must wait
   for an earlier step that writes a tensor it reads (flow), reads the
   tensor it writes (anti), or writes the same name (output). *)
let step_deps (steps : Physical.step array) (i : int) : int list =
  let reads = function
    | Physical.Kernel k ->
        Array.to_list
          (Array.map (fun (a : Physical.access) -> a.Physical.tensor)
             k.Physical.accesses)
    | Physical.Transpose { source; _ } -> [ source ]
  in
  let writes = function
    | Physical.Kernel k -> k.Physical.name
    | Physical.Transpose { name; _ } -> name
  in
  let ri = reads steps.(i) and wi = writes steps.(i) in
  List.filter
    (fun j ->
      let wj = writes steps.(j) in
      wj = wi || List.mem wj ri || List.mem wi (reads steps.(j)))
    (List.init i Fun.id)

let run_plan (t : t) (plan : Physical.plan) : unit =
  let steps = Array.of_list plan in
  let n = Array.length steps in
  if n <= 1 || Pool.size t.pool <= 1 then
    List.iter (fun step -> ignore (run_step t step)) plan
  else
    (* Independent steps (e.g. the transposes feeding one kernel) run as
       level-synchronous waves over the pool; a singleton wave stays on
       this domain. *)
    List.iter
      (fun wave ->
        match wave with
        | [ i ] -> ignore (run_step t steps.(i))
        | _ ->
            Pool.run_all t.pool
              (Array.of_list
                 (List.map (fun i () -> ignore (run_step t steps.(i))) wave)))
      (Dag.waves ~n ~deps:(step_deps steps))
