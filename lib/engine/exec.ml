(* Plan execution (paper Sec. 4.3, 8.2, Fig. 9).

   The executor owns a tensor dictionary (inputs + intermediates), a kernel
   cache keyed by the kernel's structural signature (formats, protocols,
   fills — names stripped), and a common-sub-expression cache keyed by the
   physical step plus the identities of the tensors it reads.  Compiling a
   kernel on a cache miss is timed separately from running it so the
   compilation-latency experiment (Fig. 9) can report cold vs warm costs. *)

open Galley_plan
module T = Galley_tensor.Tensor

exception Timeout = Kernel_exec.Timeout

(* Which kernel compiler backs the cache: the staged closure compiler
   (galley_compile; the default) or the constraint-tree interpreter, kept
   as the differential oracle.  Both produce size-generic closures keyed by
   the same structural signature, so cache accounting is identical. *)
type backend = Interp | Staged

let backend_to_string = function Interp -> "interp" | Staged -> "staged"

type timings = {
  mutable compile_time : float; (* seconds spent compiling kernels *)
  mutable compile_count : int; (* cache misses *)
  mutable kernel_count : int; (* kernel invocations *)
  mutable exec_time : float; (* seconds spent running kernels/transposes *)
  mutable cse_hits : int;
}

let fresh_timings () =
  {
    compile_time = 0.0;
    compile_count = 0;
    kernel_count = 0;
    exec_time = 0.0;
    cse_hits = 0;
  }

type t = {
  tensors : (string, T.t) Hashtbl.t;
  versions : (string, int) Hashtbl.t;
      (* bumped on every (re)bind: CSE keys name a specific binding, so
         rebinding a name (e.g. the BFS frontier each iteration) cannot hit
         a stale cached result *)
  kernel_cache : (string, Kernel_exec.compiled) Hashtbl.t;
  cse_cache : (string, T.t) Hashtbl.t;
  cse_enabled : bool;
  timings : timings;
  mutable deadline : float option;
  mutable kernel_hook : (int -> unit) option;
      (* called with the 1-based kernel invocation ordinal before each
         kernel runs (CSE hits skip it); a fault-injection seam *)
  backend : backend;
}

let create ?(cse = true) ?(backend = Staged) () =
  {
    tensors = Hashtbl.create 32;
    versions = Hashtbl.create 32;
    kernel_cache = Hashtbl.create 32;
    cse_cache = Hashtbl.create 32;
    cse_enabled = cse;
    timings = fresh_timings ();
    deadline = None;
    kernel_hook = None;
    backend;
  }

let set_timeout (t : t) (seconds : float) : unit =
  t.deadline <- Some (Unix.gettimeofday () +. seconds)

let clear_timeout (t : t) : unit = t.deadline <- None

let set_kernel_hook (t : t) (hook : int -> unit) : unit =
  t.kernel_hook <- Some hook

let clear_kernel_hook (t : t) : unit = t.kernel_hook <- None

let bind (t : t) (name : string) (tensor : T.t) : unit =
  let v = match Hashtbl.find_opt t.versions name with Some v -> v + 1 | None -> 0 in
  Hashtbl.replace t.versions name v;
  Hashtbl.replace t.tensors name tensor

let version (t : t) (name : string) : int =
  match Hashtbl.find_opt t.versions name with Some v -> v | None -> 0

let lookup (t : t) (name : string) : T.t =
  match Hashtbl.find_opt t.tensors name with
  | Some tensor -> tensor
  | None -> invalid_arg ("Exec: unbound tensor " ^ name)

let lookup_opt (t : t) (name : string) : T.t option =
  Hashtbl.find_opt t.tensors name

(* Reset per-program state but keep the kernel cache (kernels are reused
   across programs with the same structure, as Finch does). *)
let reset_tensors (t : t) : unit =
  Hashtbl.reset t.tensors;
  Hashtbl.reset t.cse_cache

let now = Unix.gettimeofday

(* CSE key: a physical step is a pure function of the tensors it reads, and
   tensor bindings are immutable within an execution, so step-signature plus
   read-tensor names identifies the result (paper Sec. 8.2). *)
let cse_key_kernel (t : t) (k : Physical.kernel) ~(signature : string) : string =
  signature ^ "#"
  ^ String.concat ","
      (Array.to_list
         (Array.map
            (fun a ->
              Printf.sprintf "%s@%d" a.Physical.tensor
                (version t a.Physical.tensor))
            k.Physical.accesses))

let run_kernel (t : t) (k : Physical.kernel) : T.t =
  let tensors =
    Array.map (fun a -> lookup t a.Physical.tensor) k.Physical.accesses
  in
  let access_fills = Array.map T.fill tensors in
  let access_formats = Array.map T.formats tensors in
  let signature =
    Physical.signature k ~access_formats
    ^ "|fills:"
    ^ String.concat ","
        (Array.to_list (Array.map (Printf.sprintf "%h") access_fills))
  in
  let cse_key = cse_key_kernel t k ~signature in
  match
    if t.cse_enabled then Hashtbl.find_opt t.cse_cache cse_key else None
  with
  | Some result ->
      t.timings.cse_hits <- t.timings.cse_hits + 1;
      result
  | None ->
      let compiled =
        match Hashtbl.find_opt t.kernel_cache signature with
        | Some c -> c
        | None ->
            let t0 = now () in
            let c =
              match t.backend with
              | Interp ->
                  { (Kernel_exec.compile k ~access_fills) with signature }
              | Staged ->
                  let staged =
                    Galley_compile.Backend.compile k ~access_fills
                      ~access_formats
                  in
                  {
                    Kernel_exec.signature;
                    run =
                      (fun ?deadline kc ts ->
                        try staged.Galley_compile.Backend.run ?deadline kc ts
                        with Galley_compile.Backend.Timeout ->
                          raise Kernel_exec.Timeout);
                  }
            in
            t.timings.compile_time <- t.timings.compile_time +. (now () -. t0);
            t.timings.compile_count <- t.timings.compile_count + 1;
            Hashtbl.replace t.kernel_cache signature c;
            c
      in
      (match t.kernel_hook with
      | Some hook -> hook (t.timings.kernel_count + 1)
      | None -> ());
      let t0 = now () in
      let result = compiled.Kernel_exec.run ?deadline:t.deadline k tensors in
      t.timings.exec_time <- t.timings.exec_time +. (now () -. t0);
      t.timings.kernel_count <- t.timings.kernel_count + 1;
      if t.cse_enabled then Hashtbl.replace t.cse_cache cse_key result;
      result

let run_transpose (t : t) ~(source : string) ~(perm : int array)
    ~(formats : T.format array option) : T.t =
  let src = lookup t source in
  let t0 = now () in
  let result = T.transpose ?formats src perm in
  t.timings.exec_time <- t.timings.exec_time +. (now () -. t0);
  result

let run_step (t : t) (step : Physical.step) : string * T.t =
  match step with
  | Physical.Kernel k ->
      let result = run_kernel t k in
      bind t k.Physical.name result;
      (k.Physical.name, result)
  | Physical.Transpose { name; source; perm; formats; _ } ->
      let key =
        Printf.sprintf "transpose:%s@%d:%s" source (version t source)
          (String.concat "," (Array.to_list (Array.map string_of_int perm)))
      in
      let result =
        match
          if t.cse_enabled then Hashtbl.find_opt t.cse_cache key else None
        with
        | Some r ->
            t.timings.cse_hits <- t.timings.cse_hits + 1;
            r
        | None ->
            let r = run_transpose t ~source ~perm ~formats:(Some formats) in
            if t.cse_enabled then Hashtbl.replace t.cse_cache key r;
            r
      in
      bind t name result;
      (name, result)

let run_plan (t : t) (plan : Physical.plan) : unit =
  List.iter (fun step -> ignore (run_step t step)) plan
