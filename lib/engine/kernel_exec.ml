(* Kernel execution: the sparse-tensor-compiler substitute.

   A physical kernel is "compiled" into a specialized closure that runs the
   loop nest: at every level the candidate indices come from evaluating the
   level's constraint tree (iterate the leader of an intersection and probe
   the rest; merge sorted streams for a union; fall back to the full
   dimension range when the body is cylindrical in the index), every access
   binding the index descends one fiber-tree level, and the innermost level
   evaluates the scalar body and accumulates into the output builder.

   Aggregates are fill-corrected at freeze time: enumeration covers a
   superset of the body's non-fill coordinates, so every skipped coordinate
   contributes exactly the body fill, folded in as
   g(body_fill, N_agg − count) per output cell (DESIGN.md). *)

open Galley_plan
module T = Galley_tensor.Tensor
module Node = Galley_tensor.Tensor.Node

exception Timeout

type compiled = {
  signature : string;
  run : ?deadline:float -> Physical.kernel -> T.t array -> T.t;
  describe : string;
      (* merge-strategy attribution attached to kernel spans; the staged
         backend reports its per-level plan, the interpreter resolves
         constraint trees at run time and reports itself opaquely *)
}
(* [run] takes the (structurally identical) kernel of the call site so that
   one compiled closure serves every dimension size, as a size-generic
   compiled kernel would: only the constraint structure, formats, and
   protocols are baked in. *)

(* Full cache signature of a kernel invocation: the structural signature
   ([Physical.signature]) extended with the access fills, which determine
   the constraint trees and so are part of what [compile] bakes in.  This
   key is rebuilt on *every* invocation, cache hits included, so it is
   assembled in one [Buffer] rather than by string concatenation. *)
let cache_signature (k : Physical.kernel)
    ~(access_formats : T.format array array) ~(access_fills : float array) :
    string =
  let buf = Buffer.create 192 in
  Buffer.add_string buf (Physical.signature k ~access_formats);
  Buffer.add_string buf "|fills:";
  Array.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%h" f))
    access_fills;
  Buffer.contents buf

(* Merge of sorted candidate arrays (union). *)
let merge_sorted (arrays : int array list) : int array =
  match arrays with
  | [] -> [||]
  | [ a ] -> a
  | arrays ->
      let total = List.fold_left (fun acc a -> acc + Array.length a) 0 arrays in
      let out = Array.make total 0 in
      let arrs = Array.of_list arrays in
      let pos = Array.make (Array.length arrs) 0 in
      let n = ref 0 in
      let last = ref min_int in
      let continue = ref true in
      while !continue do
        let best = ref None in
        Array.iteri
          (fun k a ->
            if pos.(k) < Array.length a then
              let v = a.(pos.(k)) in
              match !best with
              | Some (_, bv) when bv <= v -> ()
              | _ -> best := Some (k, v))
          arrs;
        match !best with
        | None -> continue := false
        | Some (k, v) ->
            pos.(k) <- pos.(k) + 1;
            if v <> !last then begin
              out.(!n) <- v;
              incr n;
              last := v
            end
      done;
      Array.sub out 0 !n

(* Compile one kernel into an executable closure.  [access_fills] are the
   fill values of the bound tensors (part of the cache key, since they
   determine the constraint trees). *)
let compile (k : Physical.kernel) ~(access_fills : float array) : compiled =
  let n_acc = Array.length k.Physical.accesses in
  let loop_order = Array.of_list k.Physical.loop_order in
  let n_levels = Array.length loop_order in
  (* Per access: which loop level binds its j-th index, and protocols. *)
  let level_of_idx = Hashtbl.create 8 in
  Array.iteri (fun l x -> Hashtbl.replace level_of_idx x l) loop_order;
  let acc_arity = Array.map (fun a -> List.length a.Physical.idxs) k.Physical.accesses in
  (* Per level: bindings (access, j-th index of the access, is_last). *)
  let bindings_per_level = Array.make n_levels [] in
  Array.iteri
    (fun a (acc : Physical.access) ->
      List.iteri
        (fun j x ->
          let l = Hashtbl.find level_of_idx x in
          bindings_per_level.(l) <-
            (a, j, j = acc_arity.(a) - 1) :: bindings_per_level.(l))
        acc.Physical.idxs)
    k.Physical.accesses;
  let bindings_per_level = Array.map Array.of_list bindings_per_level in
  (* Per level: access → (slot, is_last), precomputed once so constraint
     probes don't re-scan the binding list on every candidate. *)
  let slots_per_level =
    Array.map
      (fun bs ->
        let m = Array.make (max 1 n_acc) None in
        Array.iter (fun (a, j, is_last) -> m.(a) <- Some (j, is_last)) bs;
        m)
      bindings_per_level
  in
  let slot_of (level : int) (a : int) : int * bool =
    match slots_per_level.(level).(a) with
    | Some s -> s
    | None -> invalid_arg "Kernel: constraint references non-binding access"
  in
  (* Per level: constraint tree with intersection members reordered so the
     Iterate-protocol leader comes first. *)
  let protocol_of a x =
    let acc = k.Physical.accesses.(a) in
    let rec find idxs ps =
      match (idxs, ps) with
      | i :: _, p :: _ when i = x -> p
      | _ :: idxs', _ :: ps' -> find idxs' ps'
      | _ -> Physical.Lookup
    in
    find acc.Physical.idxs acc.Physical.protocols
  in
  let trees =
    Array.map
      (fun x ->
        let tree =
          Galley_physical.Constraints.derive ~accesses:k.Physical.accesses
            ~fills:(fun a -> access_fills.(a))
            ~idx:x k.Physical.body
        in
        (* Reorder AND members: leader first. *)
        let rec reorder (t : Galley_physical.Constraints.t) : Galley_physical.Constraints.t =
          match t with
          | Galley_physical.Constraints.C_and members ->
              let members = List.map reorder members in
              let is_leader m =
                match m with
                | Galley_physical.Constraints.C_access a -> protocol_of a x = Physical.Iterate
                | _ -> false
              in
              let leaders, rest = List.partition is_leader members in
              Galley_physical.Constraints.C_and (leaders @ rest)
          | Galley_physical.Constraints.C_or members -> Galley_physical.Constraints.C_or (List.map reorder members)
          | t -> t
        in
        reorder tree)
      loop_order
  in
  (* Output coordinate slots. *)
  let out_pos_of_level =
    Array.map
      (fun x ->
        let rec find p = function
          | [] -> None
          | i :: rest -> if i = x then Some p else find (p + 1) rest
        in
        find 0 k.Physical.output_idxs)
      loop_order
  in
  let agg_op = k.Physical.agg_op in
  let identity =
    match Op.identity agg_op with Some e -> e | None -> 0.0 (* Ident *)
  in
  let combine =
    if agg_op = Op.Ident then fun _ v -> v else Op.apply2 agg_op
  in
  let body_fill = k.Physical.body_fill in
  let signature = "" (* filled by the cache layer *) in
  let run ?deadline (kc : Physical.kernel) (tensors : T.t array) : T.t =
    (* Size-dependent facts come from the caller's kernel. *)
    let n_agg = int_of_float kc.Physical.agg_space in
    let output_fill = kc.Physical.output_fill in
    let finalize =
      if agg_op = Op.Ident then fun v cnt -> if cnt = 0 then output_fill else v
      else
        fun v cnt ->
        Op.apply2 agg_op v (Op.repeat agg_op body_fill (n_agg - cnt))
    in
    Array.iteri
      (fun a (t : T.t) ->
        if Array.length (T.dims t) <> acc_arity.(a) then
          invalid_arg
            (Printf.sprintf "Kernel %s: access %d arity mismatch"
               k.Physical.name a))
      tensors;
    let builder =
      Galley_tensor.Builder.create ~dims:kc.Physical.output_dims
        ~formats:k.Physical.output_formats ~identity ()
    in
    (* node_state.(a).(j): node of access [a] after binding its j-th index
       (None = the subtree is at fill). *)
    let node_state =
      Array.init n_acc (fun a -> Array.make (max 1 acc_arity.(a)) None)
    in
    let values =
      Array.init n_acc (fun a ->
          if acc_arity.(a) = 0 then T.scalar_value tensors.(a)
          else access_fills.(a))
    in
    let out_coords = Array.make (Array.length kc.Physical.output_dims) 0 in
    (* Pre-bind node of access [a] at the level binding its j-th index. *)
    let prev_node a j =
      if j = 0 then Some (T.root tensors.(a)) else node_state.(a).(j - 1)
    in
    (* Scalar evaluation of the body. *)
    let rec eval (e : Physical.pexpr) : float =
      match e with
      | Physical.P_access a -> values.(a)
      | Physical.P_literal v -> v
      | Physical.P_map (op, args) -> (
          match (op, args) with
          | _, [ x ] when Op.arity op = Op.Unary -> Op.apply1 op (eval x)
          | _, [ x; y ] -> Op.apply2 op (eval x) (eval y)
          | _, args ->
              Op.apply op (Array.of_list (List.map eval args)))
    in
    let iter_budget = ref 0 in
    let check_deadline () =
      match deadline with
      | None -> ()
      | Some d ->
          incr iter_budget;
          if !iter_budget land 8191 = 0 && Unix.gettimeofday () > d then
            raise Timeout
    in
    (* Candidate generation from the constraint tree at one level. *)
    let rec cands (level : int) (t : Galley_physical.Constraints.t) :
        [ `Full | `Arr of int array ] =
      match t with
      | Galley_physical.Constraints.C_all -> `Full
      | Galley_physical.Constraints.C_empty -> `Arr [||]
      | Galley_physical.Constraints.C_access a -> (
          let j, _ = slot_of level a in
          match prev_node a j with
          | None -> `Arr [||]
          | Some nd -> (
              match Node.explicit_indices nd with
              | None -> `Full
              | Some arr -> `Arr arr))
      | Galley_physical.Constraints.C_and (leader :: rest) -> (
          match cands level leader with
          | `Full ->
              (* Leader unconstrained: intersect the rest instead. *)
              if rest = [] then `Full else cands level (Galley_physical.Constraints.C_and rest)
          | `Arr arr ->
              let keep i = List.for_all (fun m -> contains level m i) rest in
              let out = Array.make (Array.length arr) 0 in
              let n = ref 0 in
              Array.iter
                (fun i ->
                  if keep i then begin
                    out.(!n) <- i;
                    incr n
                  end)
                arr;
              `Arr (Array.sub out 0 !n))
      | Galley_physical.Constraints.C_and [] -> `Full
      | Galley_physical.Constraints.C_or members ->
          let rec collect acc = function
            | [] -> `Arr (merge_sorted (List.rev acc))
            | m :: rest -> (
                match cands level m with
                | `Full -> `Full
                | `Arr a -> collect (a :: acc) rest)
          in
          collect [] members
    and contains (level : int) (t : Galley_physical.Constraints.t) (i : int) : bool =
      match t with
      | Galley_physical.Constraints.C_all -> true
      | Galley_physical.Constraints.C_empty -> false
      | Galley_physical.Constraints.C_access a -> (
          let j, _ = slot_of level a in
          match prev_node a j with
          | None -> false
          | Some nd -> Node.mem nd i)
      | Galley_physical.Constraints.C_and members -> List.for_all (fun m -> contains level m i) members
      | Galley_physical.Constraints.C_or members -> List.exists (fun m -> contains level m i) members
    in
    let bind (level : int) (i : int) : unit =
      Array.iter
        (fun (a, j, is_last) ->
          match prev_node a j with
          | None ->
              if is_last then values.(a) <- access_fills.(a)
              else node_state.(a).(j) <- None
          | Some nd ->
              if is_last then
                values.(a) <-
                  (match Node.find_value nd i with
                  | Some v -> v
                  | None -> access_fills.(a))
              else node_state.(a).(j) <- Node.find nd i)
        bindings_per_level.(level);
      match out_pos_of_level.(level) with
      | Some p -> out_coords.(p) <- i
      | None -> ()
    in
    let rec go (level : int) : unit =
      if level = n_levels then begin
        check_deadline ();
        Galley_tensor.Builder.accum builder out_coords (eval k.Physical.body)
          ~combine
      end
      else begin
        match cands level trees.(level) with
        | `Full ->
            let n = kc.Physical.loop_dims.(level) in
            for i = 0 to n - 1 do
              check_deadline ();
              bind level i;
              go (level + 1)
            done
        | `Arr arr ->
            Array.iter
              (fun i ->
                check_deadline ();
                bind level i;
                go (level + 1))
              arr
      end
    in
    go 0;
    Galley_tensor.Builder.freeze builder ~finalize ~fill:output_fill
  in
  { signature; run; describe = "interp" }
