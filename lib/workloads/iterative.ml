(* Iterative graph/ML workloads expressed with the `iterate` construct
   (DESIGN.md §13): PageRank, Bellman-Ford single-source shortest paths
   over the (min,+) semiring, a GCN-style weight-tied forward pass, and
   BFS-style reachability.  Each workload ships

     - the textual `.gly` program (also committed under examples/),
     - deterministic input builders over [Graphs.t],
     - a brute-force oracle for end-to-end value checks, and
     - a hand-unrolled Session loop (the straight-line reference the
       fixpoint driver must match bit-for-bit).

   Bellman-Ford is the min-plus stress test for the logical rules: the
   weight matrix W has fill = +inf, so absent edges contribute the Min
   identity to every relaxation and the engine's fill-correction path
   (g(body_fill, n) with body_fill = +inf) must be exact. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module D = Galley.Driver
module Fix = Galley_fixpoint.Fixpoint

(* ------------------------------------------------------------------ *)
(* PageRank                                                             *)
(* ------------------------------------------------------------------ *)

let damping = 0.85

(* R = iterate: R[j] := B[j] + d * sum_i M[i,j] R[i], with M the
   out-degree-normalized adjacency and B the teleport vector.  Vertices
   without out-edges leak mass (no dangling redistribution), which only
   shrinks the iteration map — convergence is unaffected. *)
let pagerank_source ?(eps = 1e-7) ?(max_iters = 100) () : string =
  Printf.sprintf
    "R = iterate max %d until sumof[j](abs(R[j] - R'[j])) < %.12f {\n\
    \  R[j] := B[j] + %.2f * sumof[i](M[i,j] * R[i])\n\
     }\n"
    max_iters eps damping

(* The loop body alone, as a straight-line query for the unrolled
   reference (R_next plays the role of the rebound R). *)
let pagerank_body : string = "R_next[j] = B[j] + 0.85 * sumof[i](M[i,j] * R[i])"

let pagerank_inputs (g : Graphs.t) : (string * T.t) list =
  let n = g.Graphs.n in
  let outdeg = Array.make n 0 in
  Array.iter
    (fun (u, _) -> outdeg.(u) <- outdeg.(u) + 1)
    g.Graphs.edges;
  let m_entries =
    Array.map
      (fun (u, v) -> ([| u; v |], 1.0 /. float_of_int outdeg.(u)))
      g.Graphs.edges
  in
  let m =
    T.of_coo ~dims:[| n; n |] ~formats:[| T.Dense; T.Sparse_list |] m_entries
  in
  let b =
    T.of_fun ~dims:[| n |] ~formats:[| T.Dense |] (fun _ ->
        (1.0 -. damping) /. float_of_int n)
  in
  let r0 =
    T.of_fun ~dims:[| n |] ~formats:[| T.Dense |] (fun _ ->
        1.0 /. float_of_int n)
  in
  [ ("M", m); ("B", b); ("R", r0) ]

(* Dense oracle: same recurrence, ascending-i accumulation (the engine's
   order), so it agrees to rounding for any plan. *)
let pagerank_reference ~(m : T.t) ~(b : T.t) ~(r0 : T.t) ~(iters : int) :
    float array =
  let n = (T.dims r0).(0) in
  let r = Array.init n (fun j -> T.get r0 [| j |]) in
  for _ = 1 to iters do
    let r' =
      Array.init n (fun j ->
          let acc = ref 0.0 in
          for i = 0 to n - 1 do
            acc := !acc +. (T.get m [| i; j |] *. r.(i))
          done;
          T.get b [| j |] +. (damping *. !acc))
    in
    Array.blit r' 0 r 0 n
  done;
  r

(* ------------------------------------------------------------------ *)
(* Bellman-Ford (min-plus)                                              *)
(* ------------------------------------------------------------------ *)

(* D[j] := min(D[j], min_i (D[i] + W[i,j])); converged when no distance
   strictly improved this iteration (inf < inf is false, so unreachable
   vertices never block convergence — unlike an abs-residual, where
   inf - inf would poison the sum with a NaN). *)
let bellman_source ?(max_iters = 100) () : string =
  Printf.sprintf
    "D = iterate max %d until sumof[j](D[j] < D'[j]) < 0.5 {\n\
    \  D[j] := min(D[j], minof[i](D[i] + W[i,j]))\n\
     }\n"
    max_iters

let bellman_body : string = "D_next[j] = min(D[j], minof[i](D[i] + W[i,j]))"

(* Deterministic positive edge weights, shared by inputs and oracle. *)
let bellman_weights ?(seed = 7) (g : Graphs.t) : T.t =
  let prng = Prng.create seed in
  let entries =
    Array.map
      (fun (u, v) -> ([| u; v |], Prng.float_range prng 1.0 10.0))
      g.Graphs.edges
  in
  T.of_coo ~fill:infinity ~dims:[| g.Graphs.n; g.Graphs.n |]
    ~formats:[| T.Dense; T.Sparse_list |] entries

(* The distance vector is *sparse with fill = +inf*: it starts with one
   stored entry (the source) and densifies as shortest paths settle, so
   per-iteration statistics refresh drives real format/plan movement. *)
let bellman_inputs ?seed (g : Graphs.t) ~(source : int) : (string * T.t) list
    =
  let d0 =
    T.of_coo ~fill:infinity ~dims:[| g.Graphs.n |]
      ~formats:[| T.Sparse_list |]
      [| ([| source |], 0.0) |]
  in
  [ ("W", bellman_weights ?seed g); ("D", d0) ]

let bellman_reference ~(w : T.t) ~(source : int) ~(iters : int) : float array
    =
  let n = (T.dims w).(0) in
  let d = Array.make n infinity in
  d.(source) <- 0.0;
  for _ = 1 to iters do
    let d' =
      Array.init n (fun j ->
          let acc = ref d.(j) in
          for i = 0 to n - 1 do
            let w_ij = T.get w [| i; j |] in
            if d.(i) +. w_ij < !acc then acc := d.(i) +. w_ij
          done;
          !acc)
    in
    Array.blit d' 0 d 0 n
  done;
  d

(* ------------------------------------------------------------------ *)
(* GCN-style forward pass (weight-tied propagation)                     *)
(* ------------------------------------------------------------------ *)

(* Each layer aggregates neighbour features through the normalized
   adjacency and mixes them with a shared square weight matrix under a
   ReLU: H := relu((A H) W).  Weight tying (one W for every layer) is
   what lets a fixed-count iterate express the depth. *)
let gcn_source ?(layers = 2) () : string =
  Printf.sprintf
    "H = iterate %d {\n\
    \  Z[i,f] = sumof[j](A[i,j] * H[j,f])\n\
    \  H[i,g] := relu(sumof[f](Z[i,f] * W[f,g]))\n\
     }\n"
    layers

let gcn_body : string =
  "Z[i,f] = sumof[j](A[i,j] * H[j,f])\n\
   H_next[i,g] = relu(sumof[f](Z[i,f] * W[f,g]))"

let gcn_inputs ?(seed = 11) (g : Graphs.t) ~(features : int) :
    (string * T.t) list =
  let n = g.Graphs.n in
  let outdeg = Array.make n 0 in
  Array.iter (fun (u, _) -> outdeg.(u) <- outdeg.(u) + 1) g.Graphs.edges;
  let a_entries =
    Array.map
      (fun (u, v) -> ([| u; v |], 1.0 /. float_of_int outdeg.(u)))
      g.Graphs.edges
  in
  let a =
    T.of_coo ~dims:[| n; n |] ~formats:[| T.Dense; T.Sparse_list |] a_entries
  in
  let prng = Prng.create seed in
  let h0 =
    T.of_fun ~dims:[| n; features |] ~formats:[| T.Dense; T.Dense |] (fun _ ->
        Prng.float_range prng 0.0 1.0)
  in
  let w =
    T.of_fun ~dims:[| features; features |] ~formats:[| T.Dense; T.Dense |]
      (fun _ -> Prng.float_range prng (-0.4) 0.4)
  in
  [ ("A", a); ("H", h0); ("W", w) ]

let gcn_reference ~(a : T.t) ~(h0 : T.t) ~(w : T.t) ~(layers : int) :
    float array array =
  let n = (T.dims h0).(0) and d = (T.dims h0).(1) in
  let h = Array.init n (fun i -> Array.init d (fun f -> T.get h0 [| i; f |])) in
  for _ = 1 to layers do
    let z =
      Array.init n (fun i ->
          Array.init d (fun f ->
              let acc = ref 0.0 in
              for j = 0 to n - 1 do
                acc := !acc +. (T.get a [| i; j |] *. h.(j).(f))
              done;
              !acc))
    in
    for i = 0 to n - 1 do
      h.(i) <-
        Array.init d (fun g_ ->
            let acc = ref 0.0 in
            for f = 0 to d - 1 do
              acc := !acc +. (z.(i).(f) *. T.get w [| f; g_ |])
            done;
            Float.max 0.0 !acc)
    done
  done;
  h

(* Sparse-weight GCN (ROADMAP item 1 tail, after the related repo's
   gcn_sparse_weights_example.jl): the same weight-tied forward pass,
   but W is sparsified (pruned-network shape) and stored with bytemap
   levels instead of dense.  The program text is unchanged — only the
   stored formats and density of W move — so this variant stresses the
   optimizer's format choice and the v2 kernel paths (dense microkernel
   rows against sparse weight columns) harder than the dense W above.
   [gcn_reference] is format-agnostic (it reads through [T.get]) and
   remains the oracle. *)
let gcn_sparse_source = gcn_source

let gcn_sparse_inputs ?(seed = 11) ?(weight_density = 0.25) (g : Graphs.t)
    ~(features : int) : (string * T.t) list =
  let base = gcn_inputs ~seed g ~features in
  (* Distinct stream from the dense-variant values so the two variants
     are independent fixtures, not one tensor reformatted. *)
  let prng = Prng.create (seed + 7919) in
  let w =
    T.of_fun ~dims:[| features; features |]
      ~formats:[| T.Bytemap; T.Bytemap |] (fun _ ->
        if Prng.float prng < weight_density then
          Prng.float_range prng (-0.4) 0.4
        else 0.0)
  in
  List.map (fun (name, t) -> if name = "W" then (name, w) else (name, t)) base

(* ------------------------------------------------------------------ *)
(* BFS-style reachability                                               *)
(* ------------------------------------------------------------------ *)

(* The Fig. 10 shape as an iterate: the frontier F starts as one vertex
   and fans out, V accumulates it.  F's statistics change by orders of
   magnitude across iterations, so this is the workload where the
   per-iteration re-optimization visibly switches plans. *)
let reach_source ?(max_iters = 100) () : string =
  Printf.sprintf
    "V = iterate max %d until sumof[i](F[i]) < 0.5 {\n\
    \  F[i] := orof[j](A[j,i] * F'[j]) * (1 - V'[i])\n\
    \  V[i] := V'[i] + F[i]\n\
     }\n"
    max_iters

let reach_inputs (g : Graphs.t) ~(source : int) : (string * T.t) list =
  let n = g.Graphs.n in
  let a = Graphs.adjacency g in
  let one = [| ([| source |], 1.0) |] in
  let f0 = T.of_coo ~dims:[| n |] ~formats:[| T.Sparse_list |] one in
  let v0 = T.of_coo ~dims:[| n |] ~formats:[| T.Sparse_list |] one in
  [ ("A", a); ("F", f0); ("V", v0) ]

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                       *)
(* ------------------------------------------------------------------ *)

(* Order-independent checksum over the finite stored entries (Bellman
   distances carry +inf fill, so non-finite values are skipped). *)
let checksum (t : T.t) : float =
  let acc = ref 0.0 in
  T.iter_explicit t (fun _ v -> if Float.is_finite v then acc := !acc +. v);
  !acc

(* Hand-unrolled straight-line reference: run [body_src] (which must
   define [X_next] for every carried name [X]) [iters] times against a
   fresh Session, rebinding carried names by hand between runs.  Same
   engine, same per-iteration JIT — but no iterate construct, no
   internal condition queries, and explicit driver-level control flow.
   The fixpoint runner must reproduce these tensors bit-for-bit. *)
let unrolled_run ?(config = D.default_config) ~(inputs : (string * T.t) list)
    ~(carried : string list) ~(body_src : string) ~(iters : int) () :
    (string * T.t) list =
  let s = D.Session.create ~config () in
  List.iter (fun (n, t) -> D.Session.bind s n t) inputs;
  let prog = Galley_lang.Parser.parse_program body_src in
  for _ = 1 to iters do
    let res = D.Session.run_program s prog in
    List.iter
      (fun x -> D.Session.bind s x (D.output_of res (x ^ "_next")))
      carried
  done;
  List.map
    (fun x ->
      match D.Session.lookup s x with
      | Some t -> (x, t)
      | None -> invalid_arg ("unrolled_run: carried name unbound: " ^ x))
    carried

(* Parse + run a fixpoint workload in one call; raises on taxonomy
   errors (callers wanting structured errors use Fix.run_checked). *)
let run_fixpoint ?(config = D.default_config) ~(inputs : (string * T.t) list)
    (src : string) : D.result * Fix.fix_report list =
  match Fix.parse_checked src with
  | Error e -> Galley.Errors.raise_error e
  | Ok p -> Fix.run ~config ~inputs p
