(* Push-based breadth-first search (paper Sec. 9.3, Fig. 10).

   One iteration over frontier F and visited V:

       NF[j]   = max_i  F[i] · E[i,j]          (push along edges)
       Next[j] = NF[j] · (V[j] == 0)           (drop visited vertices)
       V'[j]   = max(V[j], Next[j])            (grow the visited set)

   The system is handed one iteration at a time, so the core optimization
   question is the format of the frontier and visited vectors: the visited
   vector grows monotonically while the frontier peaks mid-search.  Galley
   re-optimizes formats every iteration (its optimization time is included,
   as in the paper); the hand-coded baselines pin all intermediate formats
   to sparse or to dense and run on the same engine. *)

module T = Galley_tensor.Tensor
open Galley_plan

type variant = Adaptive | All_sparse | All_dense

let variant_name = function
  | Adaptive -> "galley"
  | All_sparse -> "sparse"
  | All_dense -> "dense"

let iteration_plan () : Logical_query.t list =
  [
    Logical_query.make ~output_idxs:[ "j" ] ~name:"NF" ~agg_op:Op.Max
      ~agg_idxs:[ "i" ]
      ~body:(Ir.mul [ Ir.input "F" [ "i" ]; Ir.input "E" [ "i"; "j" ] ])
      ();
    Logical_query.make ~output_idxs:[ "j" ] ~name:"Next" ~agg_op:Op.Ident
      ~agg_idxs:[]
      ~body:
        (Ir.mul
           [
             Ir.alias "NF" [ "j" ];
             Ir.map Op.Eq [ Ir.input "V" [ "j" ]; Ir.lit 0.0 ];
           ])
      ();
    Logical_query.make ~output_idxs:[ "j" ] ~name:"Vnew" ~agg_op:Op.Ident
      ~agg_idxs:[]
      ~body:(Ir.map Op.Max [ Ir.input "V" [ "j" ]; Ir.alias "Next" [ "j" ] ])
      ();
  ]

let fixed_formats (v : variant) : string -> T.format array option =
  match v with
  | Adaptive -> fun _ -> None
  | All_sparse -> (
      fun name ->
        match name with
        | "NF" | "Next" | "Vnew" -> Some [| T.Sparse_list |]
        | _ -> None)
  | All_dense -> (
      fun name ->
        match name with
        | "NF" | "Next" | "Vnew" -> Some [| T.Dense |]
        | _ -> None)

type stats = {
  iterations : int;
  visited : int;
  seconds : float; (* total wall time across iterations, incl. optimization *)
}

let indicator ~(n : int) ~(format : T.format) (v : int) : T.t =
  T.of_coo ~dims:[| n |] ~formats:[| format |] [| ([| v |], 1.0) |]

let run ?(max_iters = 1000) ?(config_base = Galley.Driver.default_config)
    (variant : variant) ~(adjacency : T.t) ~(source : int) : stats =
  let n = (T.dims adjacency).(0) in
  let config =
    {
      config_base with
      physical =
        {
          Galley_physical.Optimizer.default_config with
          format_override = fixed_formats variant;
        };
      (* One-shot iterations: caching kernels across iterations is exactly
         what Finch does, so we keep the exec context across calls. *)
    }
  in
  let plan = iteration_plan () in
  let start_format =
    match variant with All_dense -> T.Dense | _ -> T.Sparse_list
  in
  let frontier = ref (indicator ~n ~format:start_format source) in
  let visited = ref (indicator ~n ~format:start_format source) in
  let t0 = Unix.gettimeofday () in
  (* One session for the whole search: adjacency statistics are computed
     once, and each iteration's kernels hit the kernel cache (the system is
     still handed one iteration at a time, as in the paper). *)
  let session = Galley.Driver.Session.create ~config () in
  Galley.Driver.Session.bind session "E" adjacency;
  let iters = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iters < max_iters do
    incr iters;
    Galley.Driver.Session.bind session "F" !frontier;
    Galley.Driver.Session.bind session "V" !visited;
    let result =
      Galley.Driver.Session.run_logical_plan session
        ~outputs:[ "Next"; "Vnew" ] plan
    in
    let next = Galley.Driver.output_of result "Next" in
    let vnew = Galley.Driver.output_of result "Vnew" in
    if T.nnz next = 0 then continue_ := false
    else begin
      frontier := next;
      visited := vnew
    end
  done;
  {
    iterations = !iters;
    visited = T.nnz !visited;
    seconds = Unix.gettimeofday () -. t0;
  }

(* Dense reference BFS for correctness tests. *)
let reference_visited ~(adjacency : T.t) ~(source : int) : int =
  let n = (T.dims adjacency).(0) in
  let visited = Array.make n false in
  let queue = Queue.create () in
  visited.(source) <- true;
  Queue.add source queue;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    for v = 0 to n - 1 do
      if (not visited.(v)) && T.get adjacency [| u; v |] <> 0.0 then begin
        visited.(v) <- true;
        incr count;
        Queue.add v queue
      end
    done
  done;
  !count
