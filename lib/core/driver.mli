(** End-to-end Galley driver (paper Fig. 3):

    input program → logical optimizer → physical optimizer → engine.

    Just-in-time physical optimization (paper Sec. 8.1) is the default:
    each logical query is physically optimized only after its aliases have
    executed, with statistics refreshed from the materialized tensors.

    Resilience (DESIGN.md "Failure model"): both optimizers run under an
    optional per-query deadline with a degradation ladder (exact → greedy
    → naive), plans are validated between phases, failures are classified
    into {!Errors.t} (surfaced by {!run_checked}), fault injection is
    driven by [config.faults], and an optional nnz guardrail compares
    estimated vs. materialized intermediate sizes. *)

open Galley_plan
module T = Galley_tensor.Tensor
module Ctx = Galley_stats.Ctx

type config = {
  estimator : Ctx.kind;  (** sparsity estimator (default: chain bound) *)
  logical : Galley_logical.Optimizer.config;
  physical : Galley_physical.Optimizer.config;
  jit : bool;  (** just-in-time physical optimization (Sec. 8.1) *)
  cse : bool;  (** common sub-expression elimination (Sec. 8.2) *)
  timeout : float option;  (** execution wall-clock budget in seconds *)
  optimizer_timeout : float option;
      (** per-query optimizer budget in seconds; past it the optimizer
          degrades down the ladder (or errors, with [degrade = false]) *)
  degrade : bool;
      (** [false] turns an exhausted optimizer budget into
          {!Errors.Optimizer_deadline} instead of degrading *)
  validate : bool;  (** run the inter-phase plan validator (default on) *)
  faults : Faults.t;  (** fault injection; [Faults.none] = off *)
  nnz_guard : float option;
      (** flag an intermediate whose materialized nnz exceeds this factor
          times its estimate; one corrective re-optimization with measured
          statistics, then {!Errors.Budget_exceeded} *)
  kernel_backend : Galley_engine.Exec.backend;
      (** which kernel compiler the engine uses: the staged closure
          compiler ([Staged], the default) or the constraint-tree
          interpreter ([Interp]), retained as the differential oracle *)
  domains : int;
      (** engine parallelism: size of the domain pool shared by
          DAG-parallel query execution and intra-kernel chunking; [1] is
          the exact serial path.  Outputs are bit-identical at every
          setting.  Defaults to [GALLEY_DOMAINS] when set, else
          [Domain.recommended_domain_count ()]. *)
  audit : bool;
      (** record predicted nnz for every materialized intermediate under
          both estimators (uniform and chain-bound, from purely inferred
          shadow statistics) and compare with actual nnz after execution;
          the comparison lands in [result.audit].  Default off. *)
  kernel_cache_cap : int;
      (** LRU bound on the engine's resident kernel cache (entries);
          evictions are counted in the [kernel_cache.evictions] metric *)
  cse_cache_cap : int;
      (** LRU bound on the resident CSE result cache (entries);
          evictions are counted in [cse_cache.evictions] *)
}

(** The default [domains]: the [GALLEY_DOMAINS] environment variable when
    set to a positive integer, else [Domain.recommended_domain_count ()]. *)
val default_domains : int

(** Chain-bound estimator, branch-and-bound logical search, JIT, CSE;
    validation on, no deadlines, no faults, no guardrail. *)
val default_config : config

(** [default_config] with the greedy logical optimizer. *)
val greedy_config : config

type timings = {
  logical_seconds : float;
  physical_seconds : float;
  compile_seconds : float;  (** kernel-cache misses only *)
  execute_seconds : float;
  total_seconds : float;
  compile_count : int;
  kernel_count : int;
  cse_hits : int;
}

type result = {
  outputs : (string * Ir.idx list * T.t) list;
      (** program outputs: name, dimension order, tensor *)
  incomplete_outputs : string list;
      (** requested outputs not materialized (e.g. past the execution
          deadline); empty on a complete run *)
  logical_plan : Logical_query.t list;
  physical_plan : Physical.plan;
  logical_tiers : (string * Tier.t) list;
      (** per input query: which optimizer tier produced its logical plan
          (empty for hand-written logical plans) *)
  physical_tiers : (string * Tier.t) list;
      (** per logical query: which tier produced its physical plan *)
  timings : timings;
  timed_out : bool;
      (** true = execution hit the wall-clock budget; [outputs] then holds
          the queries that completed before the deadline and
          [incomplete_outputs] the rest *)
  nnz_guard_retries : int;
      (** corrective re-optimizations triggered by the nnz guardrail *)
  audit : Galley_obs.Audit.t option;
      (** predicted-vs-actual nnz per materialized intermediate; [Some]
          exactly when [config.audit] was set *)
}

(** Look up an output tensor by name; raises [Invalid_argument] naming the
    outputs that do exist if absent. *)
val output_of : result -> string -> T.t

(** Result-returning variant of {!output_of}. *)
val output_res : result -> string -> (T.t, string) Stdlib.result

(** Rewrite [Input] leaves that refer to earlier query outputs into
    [Alias] leaves (applied automatically by {!run}). *)
val resolve_names : Ir.program -> Ir.program

(** Optimize and execute a whole program against the given input tensors. *)
val run : ?config:config -> inputs:(string * T.t) list -> Ir.program -> result

(** Like {!run}, but classified failures come back as [Error] instead of
    exceptions. *)
val run_checked :
  ?config:config ->
  inputs:(string * T.t) list ->
  Ir.program ->
  (result, Errors.t) Result.t

(** Parse program source, mapping parser/lexer failures to
    {!Errors.Parse_error} with a character position. *)
val parse_checked : string -> (Ir.program, Errors.t) Stdlib.result

(** [parse_checked] composed with [run_checked]. *)
val run_source_checked :
  ?config:config ->
  inputs:(string * T.t) list ->
  string ->
  (result, Errors.t) Stdlib.result

(** Execute a hand-written logical plan, bypassing the logical optimizer:
    how the paper's hand-coded kernel baselines are expressed, so they run
    on the same engine. *)
val run_logical_plan :
  ?config:config ->
  inputs:(string * T.t) list ->
  outputs:string list ->
  Logical_query.t list ->
  result

(** Single-query convenience wrapper around {!run}. *)
val run_query : ?config:config -> inputs:(string * T.t) list -> Ir.query -> result

(** Incremental sessions: keep input statistics, named result tensors,
    and the engine's kernel/CSE caches alive across calls (one BFS
    iteration at a time, paper Sec. 9.3 — or one request at a time in
    `galley serve`, which is how the Fig. 9 cold/warm amortization pays
    off across a query stream). *)
module Session : sig
  type session

  val create : ?config:config -> unit -> session

  (** The configuration the session was created with. *)
  val config : session -> config

  (** The session's resident executor (cache occupancy, resident-tensor
      counts for health reporting). *)
  val exec : session -> Galley_engine.Exec.t

  (** Bind or rebind an input; statistics are (re)computed here. *)
  val bind : session -> string -> T.t -> unit

  val run_logical_plan :
    session -> outputs:string list -> Logical_query.t list -> result

  (** Full pipeline (logical + physical optimization + execution) against
      the resident session state: the serving hot path.  Query outputs
      stay resident, so later programs can reference them by name.
      [config] overrides per-request knobs (timeouts, degradation,
      optimizer tier, faults); fields baked into the resident executor at
      {!create} (estimator, backend, domains, CSE, cache caps) are fixed.
      Timings report per-call deltas.  A structurally identical repeat
      request replays from the resident CSE cache without running any
      kernels. *)
  val run_program : session -> ?config:config -> Ir.program -> result

  (** Like {!run_program}, with classified failures as [Error]: the
      per-request isolation boundary of `galley serve`.  A failed request
      leaves resident state consistent. *)
  val run_program_checked :
    session -> ?config:config -> Ir.program -> (result, Errors.t) Stdlib.result

  val lookup : session -> string -> T.t option
end
