(* Structured error taxonomy for the driver pipeline.

   Every failure on the driver's hot path is classified into one of the
   variants below, each carrying enough context (pipeline phase, query
   name, index) to diagnose it without a backtrace.  [Driver.run_checked]
   returns these as [Error] values; the exception [Galley_error] is the
   internal carrier between pipeline stages. *)

type phase = Parse | Logical | Physical | Validation | Execution

let phase_to_string = function
  | Parse -> "parse"
  | Logical -> "logical"
  | Physical -> "physical"
  | Validation -> "validation"
  | Execution -> "execution"

type context = {
  phase : phase;
  query : string option; (* logical/input query being processed *)
  index : string option; (* index variable, when one is implicated *)
}

let context ?query ?index phase = { phase; query; index }

type t =
  | Parse_error of { message : string; position : int }
      (** the source program failed to lex or parse; [position] is a byte
          offset into the source *)
  | Plan_invalid of { context : context; message : string }
      (** a plan failed validation between phases, or an internal
          invariant broke while building one *)
  | Optimizer_deadline of { context : context; budget : float }
      (** an optimizer exceeded its budget and degradation was disabled *)
  | Budget_exceeded of {
      context : context;
      estimated : float;
      actual : float;
      message : string;
    }
      (** the nnz guardrail tripped again after its one corrective
          re-optimization *)
  | Kernel_failure of {
      context : context;
      invocation : int option;
      message : string;
    }  (** a kernel raised during execution (includes injected faults) *)
  | Fixpoint_diverged of {
      context : context;
      iterations : int; (* iterations completed before giving up *)
      message : string;
    }
      (** an [iterate ... until] loop hit its iteration cap or wall-clock
          deadline without satisfying its convergence condition *)

exception Galley_error of t

let context_to_string (c : context) : string =
  let parts =
    [ Some ("phase=" ^ phase_to_string c.phase) ]
    @ [ Option.map (fun q -> "query=" ^ q) c.query ]
    @ [ Option.map (fun i -> "index=" ^ i) c.index ]
  in
  String.concat ", " (List.filter_map Fun.id parts)

let to_string = function
  | Parse_error { message; position } ->
      Printf.sprintf "parse error at offset %d: %s" position message
  | Plan_invalid { context; message } ->
      Printf.sprintf "invalid plan (%s): %s" (context_to_string context) message
  | Optimizer_deadline { context; budget } ->
      Printf.sprintf "optimizer deadline of %gs exceeded (%s)" budget
        (context_to_string context)
  | Budget_exceeded { context; estimated; actual; message } ->
      Printf.sprintf
        "intermediate size budget exceeded (%s): estimated %g, materialized \
         %g; %s"
        (context_to_string context) estimated actual message
  | Kernel_failure { context; invocation; message } ->
      Printf.sprintf "kernel failure%s (%s): %s"
        (match invocation with
        | Some n -> Printf.sprintf " on invocation %d" n
        | None -> "")
        (context_to_string context)
        message
  | Fixpoint_diverged { context; iterations; message } ->
      Printf.sprintf "fixpoint did not converge after %d iterations (%s): %s"
        iterations (context_to_string context) message

let pp fmt e = Format.pp_print_string fmt (to_string e)

let raise_error e = raise (Galley_error e)

(* Map a stray exception escaping a pipeline stage into the taxonomy. *)
let of_exn (context : context) (exn : exn) : t =
  match exn with
  | Galley_error e -> e
  | Invalid_argument msg | Failure msg -> Plan_invalid { context; message = msg }
  | exn -> Plan_invalid { context; message = Printexc.to_string exn }
