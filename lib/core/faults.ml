(* Fault-injection harness for the resilience layer.

   A [t] describes which faults are active; [Driver] threads it through the
   pipeline.  Estimator faults are injected by wrapping the statistics
   context's estimate closures (so both optimizers see them, and clones of
   the context stay wrapped); kernel faults install an [Exec] kernel hook
   that raises on the configured invocation.  With [none] (the default)
   every seam is a no-op and the pipeline is byte-for-byte unchanged. *)

module Ctx = Galley_stats.Ctx

type t = {
  estimator_nan : bool; (* every estimate returns NaN *)
  estimator_inf : bool; (* every estimate returns +inf (overflow) *)
  estimator_scale : float; (* multiply every estimate; 1.0 = off *)
  optimizer_delay : float; (* seconds slept inside every estimate call *)
  kernel_fail_on : int option; (* fail the nth kernel invocation (1-based) *)
  (* Server-side injection points, consumed by `galley serve` (the chaos
     surface must cover the daemon, not just batch runs): *)
  serve_accept_fail_on : int option;
      (* drop the nth accepted connection as if accept(2) had failed *)
  serve_kill_on : int option;
      (* kill the nth admitted query request mid-flight, after parse *)
  serve_stall : float;
      (* seconds a connection stalls before draining each response
         (a slow-client simulation) *)
}

let none =
  {
    estimator_nan = false;
    estimator_inf = false;
    estimator_scale = 1.0;
    optimizer_delay = 0.0;
    kernel_fail_on = None;
    serve_accept_fail_on = None;
    serve_kill_on = None;
    serve_stall = 0.0;
  }

let is_none (f : t) : bool = f = none

let estimator_active (f : t) : bool =
  f.estimator_nan || f.estimator_inf || f.estimator_scale <> 1.0
  || f.optimizer_delay > 0.0

exception Injected_kernel_failure of int

(* Wrap the estimate closures of a context.  [clone] is re-wrapped
   recursively: the optimizers score candidates on cloned contexts, and the
   faults must survive into every search branch. *)
let m_estimator_faults =
  Galley_obs.Metrics.counter "faults.estimator_injected"

let m_kernel_faults = Galley_obs.Metrics.counter "faults.kernel_injected"

let rec wrap_ctx (f : t) (ctx : Ctx.t) : Ctx.t =
  if not (estimator_active f) then ctx
  else
    let inject v =
      Galley_obs.Metrics.incr m_estimator_faults;
      if f.optimizer_delay > 0.0 then Unix.sleepf f.optimizer_delay;
      if f.estimator_nan then Float.nan
      else if f.estimator_inf then Float.infinity
      else v *. f.estimator_scale
    in
    {
      ctx with
      Ctx.estimate_expr = (fun e -> inject (ctx.Ctx.estimate_expr e));
      Ctx.estimate_access_projected =
        (fun name idxs keep ->
          inject (ctx.Ctx.estimate_access_projected name idxs keep));
      Ctx.clone = (fun () -> wrap_ctx f (ctx.Ctx.clone ()));
    }

(* Install the kernel-failure hook (if configured) on an executor.  A
   [None] spec *clears* any previously installed hook: resident sessions
   (galley serve) reuse one executor across requests with differing fault
   configs, and a stale hook must not leak into the next request. *)
let install_exec (f : t) (exec : Galley_engine.Exec.t) : unit =
  match f.kernel_fail_on with
  | None -> Galley_engine.Exec.clear_kernel_hook exec
  | Some nth ->
      Galley_engine.Exec.set_kernel_hook exec (fun n ->
          if n = nth then begin
            Galley_obs.Metrics.incr m_kernel_faults;
            raise (Injected_kernel_failure n)
          end)

(* Parse a comma-separated fault spec, e.g.
   "estimator-nan,kernel-fail=3,opt-delay=0.05,estimator-scale=1e-6". *)
let of_spec (spec : string) : (t, string) result =
  let parts =
    List.filter
      (fun s -> s <> "")
      (List.map String.trim (String.split_on_char ',' spec))
  in
  let parse_float key v =
    match float_of_string_opt v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "bad value %S for fault %s" v key)
  in
  let parse_int key v =
    match int_of_string_opt v with
    | Some x when x >= 1 -> Ok x
    | _ -> Error (Printf.sprintf "bad value %S for fault %s" v key)
  in
  List.fold_left
    (fun acc part ->
      Result.bind acc (fun f ->
          match String.split_on_char '=' part with
          | [ "estimator-nan" ] -> Ok { f with estimator_nan = true }
          | [ "estimator-inf" ] -> Ok { f with estimator_inf = true }
          | [ "estimator-scale"; v ] ->
              Result.map
                (fun x -> { f with estimator_scale = x })
                (parse_float "estimator-scale" v)
          | [ "opt-delay"; v ] ->
              Result.map
                (fun x -> { f with optimizer_delay = x })
                (parse_float "opt-delay" v)
          | [ "kernel-fail"; v ] ->
              Result.map
                (fun n -> { f with kernel_fail_on = Some n })
                (parse_int "kernel-fail" v)
          | [ "serve-accept-fail"; v ] ->
              Result.map
                (fun n -> { f with serve_accept_fail_on = Some n })
                (parse_int "serve-accept-fail" v)
          | [ "serve-kill"; v ] ->
              Result.map
                (fun n -> { f with serve_kill_on = Some n })
                (parse_int "serve-kill" v)
          | [ "serve-stall"; v ] ->
              Result.map
                (fun x -> { f with serve_stall = x })
                (parse_float "serve-stall" v)
          | _ -> Error (Printf.sprintf "unknown fault %S" part)))
    (Ok none) parts

let to_string (f : t) : string =
  let parts =
    (if f.estimator_nan then [ "estimator-nan" ] else [])
    @ (if f.estimator_inf then [ "estimator-inf" ] else [])
    @ (if f.estimator_scale <> 1.0 then
         [ Printf.sprintf "estimator-scale=%g" f.estimator_scale ]
       else [])
    @ (if f.optimizer_delay > 0.0 then
         [ Printf.sprintf "opt-delay=%g" f.optimizer_delay ]
       else [])
    @ (match f.kernel_fail_on with
      | Some n -> [ Printf.sprintf "kernel-fail=%d" n ]
      | None -> [])
    @ (match f.serve_accept_fail_on with
      | Some n -> [ Printf.sprintf "serve-accept-fail=%d" n ]
      | None -> [])
    @ (match f.serve_kill_on with
      | Some n -> [ Printf.sprintf "serve-kill=%d" n ]
      | None -> [])
    @
    if f.serve_stall > 0.0 then
      [ Printf.sprintf "serve-stall=%g" f.serve_stall ]
    else []
  in
  match parts with [] -> "none" | parts -> String.concat "," parts
