(* Inter-phase plan validation.

   Run by the driver after the logical optimizer and after each physical
   planning step, so optimizer bugs surface as [Plan_invalid] errors at the
   phase boundary instead of wrong answers (or engine crashes) later.  Both
   validators are estimate-free and linear in plan size. *)

open Galley_plan

type issue = { v_query : string option; v_message : string }

let issue ?query message = { v_query = query; v_message = message }

(* ------------------------------------------------------------------ *)
(* Logical plans.                                                       *)
(* ------------------------------------------------------------------ *)

(* [known] answers whether a name is bound before the plan runs (inputs
   and pre-existing session bindings).  Checks, per query: well-formedness
   (agg-free body, aggregate op, output = free \ agg), and that every
   referenced name resolves to an input or an earlier query.  Plan-wide:
   unique query names and every requested output produced. *)
let logical_plan ~(known : string -> bool) ~(outputs : string list)
    (plan : Logical_query.t list) : (unit, issue) result =
  let defined = Hashtbl.create 16 in
  let check_query (q : Logical_query.t) : (unit, issue) result =
    let name = q.Logical_query.name in
    if Hashtbl.mem defined name then
      Error (issue ~query:name "duplicate logical query name")
    else begin
      match Logical_query.validate q with
      | exception Invalid_argument msg -> Error (issue ~query:name msg)
      | () ->
          let unresolved =
            List.filter
              (fun (n, _) -> not (known n || Hashtbl.mem defined n))
              (Ir.referenced_names q.Logical_query.body)
          in
          (match unresolved with
          | (n, _) :: _ ->
              Error (issue ~query:name ("unresolved reference to " ^ n))
          | [] ->
              Hashtbl.replace defined name ();
              Ok ())
    end
  in
  let rec go = function
    | [] -> (
        match
          List.find_opt (fun o -> not (Hashtbl.mem defined o)) outputs
        with
        | Some o -> Error (issue ("requested output " ^ o ^ " is not produced"))
        | None -> Ok ())
    | q :: rest -> ( match check_query q with Ok () -> go rest | e -> e)
  in
  go plan

(* ------------------------------------------------------------------ *)
(* Physical plans.                                                      *)
(* ------------------------------------------------------------------ *)

let is_permutation (perm : int array) : bool =
  let n = Array.length perm in
  let seen = Array.make n false in
  Array.for_all
    (fun k ->
      k >= 0 && k < n
      &&
      if seen.(k) then false
      else begin
        seen.(k) <- true;
        true
      end)
    perm

(* Formats legal per the write pattern (cf. [Physical.Optimizer]): a
   sorted sparse-list level can only be built by sequential writes, i.e.
   when the output indices form a prefix of the loop order. *)
let kernel_formats_legal (k : Physical.kernel) : (unit, string) result =
  let rec prefix out loops =
    match (out, loops) with
    | [], _ -> true
    | o :: out', l :: loops' -> o = l && prefix out' loops'
    | _ -> false
  in
  let sequential = prefix k.Physical.output_idxs k.Physical.loop_order in
  if
    (not sequential)
    && Array.exists (( = ) Galley_tensor.Tensor.Sparse_list) k.Physical.output_formats
  then
    Error
      "sorted sparse-list output format requires sequential writes (output \
       indices must be a loop-order prefix)"
  else Ok ()

(* [known] answers whether a tensor name is bound before the plan runs.
   Checks, per step: kernel well-formedness ([Physical.validate_kernel]:
   duplicate loops, access/output concordance, protocol arity), loop order
   covering exactly the output + aggregate indices, array arities, format
   legality, transpose permutation validity, and that every read tensor is
   an input or the product of an earlier step. *)
let physical_plan ~(known : string -> bool) (plan : Physical.plan) :
    (unit, issue) result =
  let produced = Hashtbl.create 16 in
  let resolves n = known n || Hashtbl.mem produced n in
  let check_step (step : Physical.step) : (unit, issue) result =
    match step with
    | Physical.Kernel k -> (
        let name = k.Physical.name in
        match Physical.validate_kernel k with
        | exception Invalid_argument msg -> Error (issue ~query:name msg)
        | () ->
            let loop_set = Ir.Idx_set.of_list k.Physical.loop_order in
            let covered =
              Ir.Idx_set.union
                (Ir.Idx_set.of_list k.Physical.output_idxs)
                (Ir.Idx_set.of_list k.Physical.agg_idxs)
            in
            if not (Ir.Idx_set.equal loop_set covered) then
              Error
                (issue ~query:name
                   (Printf.sprintf
                      "loop order [%s] does not cover exactly the output + \
                       aggregate indices [%s]"
                      (String.concat "," k.Physical.loop_order)
                      (String.concat "," (Ir.Idx_set.elements covered))))
            else if
              Array.length k.Physical.output_formats
              <> List.length k.Physical.output_idxs
              || Array.length k.Physical.output_dims
                 <> List.length k.Physical.output_idxs
            then Error (issue ~query:name "output format/dim arity mismatch")
            else if
              Array.length k.Physical.loop_dims
              <> List.length k.Physical.loop_order
            then Error (issue ~query:name "loop dim arity mismatch")
            else begin
              match kernel_formats_legal k with
              | Error msg -> Error (issue ~query:name msg)
              | Ok () -> (
                  match
                    Array.to_list k.Physical.accesses
                    |> List.find_opt (fun (a : Physical.access) ->
                           not (resolves a.Physical.tensor))
                  with
                  | Some a ->
                      Error
                        (issue ~query:name
                           ("access to unbound tensor " ^ a.Physical.tensor))
                  | None ->
                      Hashtbl.replace produced name ();
                      Ok ())
            end)
    | Physical.Transpose { name; source; perm; formats; _ } ->
        if not (resolves source) then
          Error (issue ~query:name ("transpose of unbound tensor " ^ source))
        else if not (is_permutation perm) then
          Error (issue ~query:name "transpose perm is not a permutation")
        else if Array.length formats <> Array.length perm then
          Error (issue ~query:name "transpose format arity mismatch")
        else begin
          Hashtbl.replace produced name ();
          Ok ()
        end
  in
  let rec go = function
    | [] -> Ok ()
    | step :: rest -> ( match check_step step with Ok () -> go rest | e -> e)
  in
  go plan
