(* End-to-end Galley driver (paper Fig. 3):

   input program --[logical optimizer]--> logical plan
                 --[physical optimizer]--> physical plan
                 --[engine]--> tensors

   Just-in-time physical optimization (paper Sec. 8.1) is the default: each
   logical query is physically optimized only after all of its aliases have
   executed, with alias statistics refreshed from the materialized tensors.
   Setting [jit = false] plans the whole physical program up front from
   inferred statistics.

   Resilience (see DESIGN.md "Failure model"): both optimizers run under an
   optional per-query deadline with a degradation ladder (exact → greedy →
   naive), plans are validated between phases, failures are classified into
   [Errors.t] (surfaced by [run_checked]), fault injection is driven by
   [config.faults], and an optional nnz guardrail compares estimated
   vs. materialized intermediate sizes, forcing one corrective JIT
   re-optimization before giving up with [Budget_exceeded]. *)

open Galley_plan
module T = Galley_tensor.Tensor
module Ctx = Galley_stats.Ctx
module Obs = Galley_obs

type config = {
  estimator : Ctx.kind;
  logical : Galley_logical.Optimizer.config;
  physical : Galley_physical.Optimizer.config;
  jit : bool;
  cse : bool;
  timeout : float option; (* seconds; execution aborts past this *)
  optimizer_timeout : float option; (* per-query optimizer budget, seconds *)
  degrade : bool; (* false = optimizer deadline is an error, not a ladder *)
  validate : bool; (* run the inter-phase plan validator *)
  faults : Faults.t; (* fault injection; [Faults.none] = off *)
  nnz_guard : float option;
      (* flag an intermediate whose materialized nnz exceeds this factor
         times its estimate; one corrective re-optimization, then
         [Budget_exceeded] *)
  kernel_backend : Galley_engine.Exec.backend;
      (* staged closure compiler (default) or the constraint-tree
         interpreter, retained as the differential oracle *)
  domains : int;
      (* engine parallelism: size of the domain pool shared by DAG-parallel
         query execution and intra-kernel chunking; 1 = the exact serial
         path.  Outputs are bit-identical at every setting. *)
  audit : bool;
      (* record predicted nnz (under both estimators) for every
         materialized intermediate and compare with actual nnz after
         execution; results land in [result.audit] (the explain mode) *)
  kernel_cache_cap : int;
      (* LRU bound on the engine's resident kernel cache (entries); a
         long-lived process must not grow without bound *)
  cse_cache_cap : int; (* LRU bound on the resident CSE cache (entries) *)
}

(* Default parallelism: [GALLEY_DOMAINS] when set to a positive integer,
   else the runtime's recommendation for this machine. *)
let default_domains =
  match Option.bind (Sys.getenv_opt "GALLEY_DOMAINS") int_of_string_opt with
  | Some d when d >= 1 -> d
  | Some _ | None -> Domain.recommended_domain_count ()

let default_config =
  {
    estimator = Ctx.Chain_kind;
    logical = Galley_logical.Optimizer.default_config;
    physical = Galley_physical.Optimizer.default_config;
    jit = true;
    cse = true;
    timeout = None;
    optimizer_timeout = None;
    degrade = true;
    validate = true;
    faults = Faults.none;
    nnz_guard = None;
    kernel_backend = Galley_engine.Exec.Staged;
    domains = default_domains;
    audit = false;
    kernel_cache_cap = Galley_engine.Exec.default_kernel_cache_cap;
    cse_cache_cap = Galley_engine.Exec.default_cse_cache_cap;
  }

let greedy_config =
  {
    default_config with
    logical =
      {
        Galley_logical.Optimizer.default_config with
        search = Galley_logical.Optimizer.Greedy;
      };
  }

type timings = {
  logical_seconds : float;
  physical_seconds : float;
  compile_seconds : float;
  execute_seconds : float;
  total_seconds : float;
  compile_count : int;
  kernel_count : int;
  cse_hits : int;
}

type result = {
  outputs : (string * Ir.idx list * T.t) list; (* name, dim order, tensor *)
  incomplete_outputs : string list;
      (* requested outputs not materialized (e.g. past the deadline) *)
  logical_plan : Logical_query.t list;
  physical_plan : Physical.plan;
  logical_tiers : (string * Tier.t) list; (* per input query *)
  physical_tiers : (string * Tier.t) list; (* per logical query *)
  timings : timings;
  timed_out : bool;
  nnz_guard_retries : int; (* corrective re-optimizations triggered *)
  audit : Obs.Audit.t option;
      (* predicted-vs-actual nnz per materialized intermediate, present
         when [config.audit] was set *)
}

let output_res (r : result) (name : string) : (T.t, string) Stdlib.result =
  match List.find_opt (fun (n, _, _) -> n = name) r.outputs with
  | Some (_, _, t) -> Ok t
  | None ->
      let have = List.map (fun (n, _, _) -> n) r.outputs in
      Error
        (Printf.sprintf "no output named %s (have: %s%s)" name
           (match have with [] -> "none" | _ -> String.concat ", " have)
           (match r.incomplete_outputs with
           | [] -> ""
           | inc -> "; incomplete: " ^ String.concat ", " inc))

let output_of (r : result) (name : string) : T.t =
  match output_res r name with Ok t -> t | Error msg -> invalid_arg ("Galley: " ^ msg)

(* Replace Input leaves that actually refer to earlier query outputs with
   Alias leaves, so programs can be written without distinguishing them. *)
let resolve_names (p : Ir.program) : Ir.program =
  let defined = Hashtbl.create 8 in
  let queries =
    List.map
      (fun (q : Ir.query) ->
        let rec fix (e : Ir.expr) : Ir.expr =
          match e with
          | Ir.Input (n, idxs) when Hashtbl.mem defined n -> Ir.Alias (n, idxs)
          | Ir.Input _ | Ir.Alias _ | Ir.Literal _ -> e
          | Ir.Map (op, args) -> Ir.Map (op, List.map fix args)
          | Ir.Agg (op, idxs, body) -> Ir.Agg (op, idxs, fix body)
        in
        let q = { q with Ir.expr = fix q.Ir.expr } in
        Hashtbl.replace defined q.Ir.name ();
        q)
      p.Ir.queries
  in
  { p with Ir.queries }

let now = Unix.gettimeofday

(* Phase/query breadcrumbs for classifying stray exceptions in
   [run_checked] (single-threaded; best-effort context only). *)
let cur_phase : Errors.phase ref = ref Errors.Execution
let cur_query : string option ref = ref None

let error_context () = Errors.context ?query:!cur_query !cur_phase

(* Refresh alias statistics from materialized tensors before physically
   optimizing [q] (JIT adaptive optimization).  [refreshed] remembers names
   already measured this run: bindings are immutable within a run, so one
   measurement per intermediate suffices. *)
let refresh_alias_stats ?(refreshed = Hashtbl.create 16) (ctx : Ctx.t)
    (exec : Galley_engine.Exec.t) (q : Logical_query.t) : unit =
  List.iter
    (fun (name, kind) ->
      match kind with
      | `Alias when not (Hashtbl.mem refreshed name) -> (
          match Galley_engine.Exec.lookup_opt exec name with
          | Some t ->
              Hashtbl.replace refreshed name ();
              Schema.declare_tensor ctx.Ctx.schema name t;
              ctx.Ctx.register_alias_tensor name t
          | None -> ())
      | `Alias | `Input -> ())
    (Ir.referenced_names q.Logical_query.body)

(* Declare one logical query's output in [ctx]'s schema and register its
   inferred (estimated) alias statistics.  Shared by [run_logical_plan],
   [Session.register_query], and the audit's shadow contexts. *)
let register_query_estimated (ctx : Ctx.t) (q : Logical_query.t) : unit =
  let full = (Logical_query.to_query q).Ir.expr in
  let dims = Schema.index_dims ctx.Ctx.schema full in
  let out_dims =
    Array.of_list
      (List.map (fun i -> Schema.dim_of_idx dims i) q.Logical_query.output_idxs)
  in
  let fill = Schema.expr_fill ctx.Ctx.schema dims full in
  Schema.declare ctx.Ctx.schema q.Logical_query.name ~dims:out_dims ~fill;
  ctx.Ctx.register_alias_estimated q.Logical_query.name
    ~output_idxs:q.Logical_query.output_idxs full

(* Estimator audit (config.audit): predict each logical query's output nnz
   under *both* estimator kinds from purely inferred statistics — two
   shadow contexts see only the inputs and the logical plan, never the
   materialized tensors — so the audit measures the estimators themselves,
   not the JIT refresh.  Actuals are filled in by [audit_observe] after
   execution. *)
let audit_predict (inputs : (string * T.t) list)
    (logical_plan : Logical_query.t list) : Obs.Audit.t =
  let a = Obs.Audit.create () in
  let shadow kind =
    let schema = Schema.create () in
    List.iter (fun (name, t) -> Schema.declare_tensor schema name t) inputs;
    let ctx = Ctx.create ~kind schema in
    List.iter (fun (name, t) -> ctx.Ctx.register_input name t) inputs;
    ctx
  in
  let shadows = [ shadow Ctx.Uniform_kind; shadow Ctx.Chain_kind ] in
  List.iter
    (fun (q : Logical_query.t) ->
      let name = q.Logical_query.name in
      List.iter
        (fun (sctx : Ctx.t) ->
          let estimator = Ctx.kind_to_string sctx.Ctx.kind in
          let predicted =
            try
              register_query_estimated sctx q;
              sctx.Ctx.estimate_expr
                (Ir.Alias (name, q.Logical_query.output_idxs))
            with _ ->
              Obs.Log.warn "audit: %s estimator failed to predict %s"
                estimator name;
              Float.nan
          in
          Obs.Audit.predict a ~query:name ~estimator predicted)
        shadows)
    logical_plan;
  a

let audit_observe (a : Obs.Audit.t) (exec : Galley_engine.Exec.t)
    (logical_plan : Logical_query.t list) : unit =
  List.iter
    (fun (q : Logical_query.t) ->
      let name = q.Logical_query.name in
      match Galley_engine.Exec.lookup_opt exec name with
      | Some t -> Obs.Audit.observe a ~query:name (float_of_int (T.nnz t))
      | None -> ())
    logical_plan

let make_ctx (config : config) (inputs : (string * T.t) list) : Ctx.t =
  let schema = Schema.create () in
  List.iter (fun (name, t) -> Schema.declare_tensor schema name t) inputs;
  let ctx = Ctx.create ~kind:config.estimator schema in
  List.iter (fun (name, t) -> ctx.Ctx.register_input name t) inputs;
  Faults.wrap_ctx config.faults ctx

let opt_budget (config : config) : float =
  match config.optimizer_timeout with Some s -> s | None -> 0.0

let collect_outputs (exec : Galley_engine.Exec.t)
    (logical_plan : Logical_query.t list) (outputs : string list) :
    (string * Ir.idx list * T.t) list * string list =
  let found =
    List.filter_map
      (fun name ->
        match
          ( List.find_opt
              (fun (q : Logical_query.t) -> q.Logical_query.name = name)
              logical_plan,
            Galley_engine.Exec.lookup_opt exec name )
        with
        | Some q, Some t -> Some (name, q.Logical_query.output_idxs, t)
        | _ -> None)
      outputs
  in
  let incomplete =
    List.filter
      (fun n -> not (List.exists (fun (m, _, _) -> m = n) found))
      outputs
  in
  (found, incomplete)

let validate_logical ~(config : config) ~(known : string -> bool)
    ~(outputs : string list) (logical_plan : Logical_query.t list) : unit =
  if config.validate then begin
    cur_phase := Errors.Validation;
    match Validate.logical_plan ~known ~outputs logical_plan with
    | Ok () -> ()
    | Error { Validate.v_query; v_message } ->
        Errors.raise_error
          (Errors.Plan_invalid
             {
               context = Errors.context ?query:v_query Errors.Validation;
               message = v_message;
             })
  end

(* Core physical-planning + execution loop, shared by [run],
   [run_logical_plan], and [Session.run_logical_plan].

   [before_plan] runs per query before planning (sessions register alias
   statistics there).  Returns the completed outputs even when execution
   hits the wall-clock deadline; queries past it are reported in
   [incomplete_outputs]. *)
let execute_queries ~(config : config) ~(ctx : Ctx.t)
    ~(exec : Galley_engine.Exec.t) ~(fresh : unit -> string)
    ~(before_plan : Logical_query.t -> unit)
    ~(logical_plan : Logical_query.t list) ~(outputs : string list) :
    (string * Ir.idx list * T.t) list
    * string list
    * Physical.plan
    * (string * Tier.t) list
    * float
    * bool
    * int =
  Faults.install_exec config.faults exec;
  (* Explicitly clear as well as set: a resident session's executor
     carries state across requests, and a previous request's deadline
     must not bleed into this one. *)
  (match config.timeout with
  | Some s -> Galley_engine.Exec.set_timeout exec s
  | None -> Galley_engine.Exec.clear_timeout exec);
  let physical_seconds = ref 0.0 in
  let all_steps = ref [] in
  let timed_out = ref false in
  let physical_tiers = ref [] in
  let guard_retries = ref 0 in
  let refreshed = Hashtbl.create 16 in
  let planned_names = Hashtbl.create 16 in
  let known n =
    Galley_engine.Exec.lookup_opt exec n <> None || Hashtbl.mem planned_names n
  in
  let plan_one ~refresh (q : Logical_query.t) : Physical.plan =
    let name = q.Logical_query.name in
    cur_phase := Errors.Physical;
    cur_query := Some name;
    let t0 = now () in
    let plan, tier =
      try
        Obs.span ~cat:"phase"
          ~name:("physical_opt:" ^ name)
          (fun () ->
            if refresh then refresh_alias_stats ~refreshed ctx exec q;
            let deadline =
              Option.map (fun s -> now () +. s) config.optimizer_timeout
            in
            Galley_physical.Optimizer.plan_query_tiered ?deadline
              ~degrade:config.degrade ~config:config.physical ctx ~fresh q)
      with Tier.Exhausted ->
        Errors.raise_error
          (Errors.Optimizer_deadline
             {
               context = Errors.context ~query:name Errors.Physical;
               budget = opt_budget config;
             })
    in
    physical_seconds := !physical_seconds +. (now () -. t0);
    if config.validate then begin
      cur_phase := Errors.Validation;
      match Validate.physical_plan ~known plan with
      | Ok () -> ()
      | Error { Validate.v_query; v_message } ->
          Errors.raise_error
            (Errors.Plan_invalid
               {
                 context = Errors.context ?query:v_query Errors.Validation;
                 message = v_message;
               })
    end;
    Hashtbl.replace planned_names name ();
    physical_tiers := (name, tier) :: !physical_tiers;
    plan
  in
  let run_one (q : Logical_query.t) (plan : Physical.plan) : unit =
    let name = q.Logical_query.name in
    cur_phase := Errors.Execution;
    cur_query := Some name;
    try
      Obs.span ~cat:"phase" ~name:("execute:" ^ name)
        ~attrs:(fun () -> [ ("steps", string_of_int (List.length plan)) ])
        (fun () -> Galley_engine.Exec.run_plan exec plan)
    with
    | Galley_engine.Exec.Timeout -> raise Galley_engine.Exec.Timeout
    | Errors.Galley_error _ as e -> raise e
    | Faults.Injected_kernel_failure n ->
        Errors.raise_error
          (Errors.Kernel_failure
             {
               context = Errors.context ~query:name Errors.Execution;
               invocation = Some n;
               message = "injected kernel fault";
             })
    | (Stack_overflow | Out_of_memory) as e -> raise e
    | exn ->
        Errors.raise_error
          (Errors.Kernel_failure
             {
               context = Errors.context ~query:name Errors.Execution;
               invocation = None;
               message = Printexc.to_string exn;
             })
  in
  (* The nnz guardrail (estimated vs. materialized intermediate size).
     First trip: register measured statistics for the offender and force
     JIT-style re-planning of the remaining queries.  Second trip: give
     up with [Budget_exceeded]. *)
  let use_jit = ref config.jit in
  let queries = Array.of_list logical_plan in
  let n_queries = Array.length queries in
  let pre_plans = Array.make (max 1 n_queries) None in
  if not config.jit then
    Array.iteri (fun i q -> pre_plans.(i) <- Some (plan_one ~refresh:false q)) queries;
  let guard_check (q : Logical_query.t) ~(estimate : float) (i : int) : unit =
    match config.nnz_guard with
    | None -> ()
    | Some factor -> (
        let name = q.Logical_query.name in
        match Galley_engine.Exec.lookup_opt exec name with
        | None -> ()
        | Some t ->
            let actual = float_of_int (T.nnz t) in
            if
              Float.is_finite estimate
              && actual > factor *. Float.max 1.0 estimate
            then
              if !guard_retries >= 1 then
                Errors.raise_error
                  (Errors.Budget_exceeded
                     {
                       context = Errors.context ~query:name Errors.Execution;
                       estimated = estimate;
                       actual;
                       message = "re-optimization already spent";
                     })
              else begin
                incr guard_retries;
                Obs.Metrics.incr_named "nnz_guard.retries";
                Obs.Log.info
                  "nnz guard: %s materialized %.0f nnz vs estimate %.0f; \
                   re-optimizing remaining queries from measured statistics"
                  name actual estimate;
                (* Corrected statistics: measure the offender now; replan
                   everything still pending from measured sizes. *)
                Schema.declare_tensor ctx.Ctx.schema name t;
                ctx.Ctx.register_alias_tensor name t;
                Hashtbl.replace refreshed name ();
                use_jit := true;
                for j = i + 1 to n_queries - 1 do
                  pre_plans.(j) <- None
                done
              end)
  in
  let exec_serial () =
    Array.iteri
      (fun i q ->
        before_plan q;
        let plan =
          match pre_plans.(i) with
          | Some plan when not !use_jit -> plan
          | Some _ | None -> plan_one ~refresh:!use_jit q
        in
        let estimate =
          match config.nnz_guard with
          | None -> Float.nan
          | Some _ -> (
              try
                ctx.Ctx.estimate_expr
                  (Ir.Alias (q.Logical_query.name, q.Logical_query.output_idxs))
              with _ -> Float.nan)
        in
        all_steps := !all_steps @ plan;
        run_one q plan;
        guard_check q ~estimate i)
      queries
  in
  (* DAG-parallel schedule: queries grouped into level-synchronous waves
     of the def-use DAG (query i depends on every earlier query whose
     output its body references).  Planning stays serial on this domain —
     the statistics context is not thread-safe, and by the time a wave is
     planned all of its dependencies have materialized, so the JIT
     refresh-then-plan constraint holds wave by wave; only execution fans
     out over the pool.  Outputs are bit-identical to the serial schedule
     (each query is bit-deterministic given its inputs); only scheduling
     artifacts — timings, CSE hit counts, kernel-ordinal assignment — may
     differ. *)
  let exec_parallel (pool : Galley_parallel.Pool.t) =
    let deps =
      Array.init n_queries (fun i ->
          let names =
            List.map fst
              (Ir.referenced_names queries.(i).Logical_query.body)
          in
          List.filter
            (fun j -> List.mem queries.(j).Logical_query.name names)
            (List.init i Fun.id))
    in
    List.iter
      (fun wave ->
        let planned =
          List.map
            (fun i ->
              let q = queries.(i) in
              before_plan q;
              let plan =
                match pre_plans.(i) with
                | Some plan when not !use_jit -> plan
                | Some _ | None -> plan_one ~refresh:!use_jit q
              in
              all_steps := !all_steps @ plan;
              (q, plan))
            wave
        in
        match planned with
        | [ (q, plan) ] -> run_one q plan
        | _ ->
            Galley_parallel.Pool.run_all pool
              (Array.of_list
                 (List.map (fun (q, plan) () -> run_one q plan) planned)))
      (Galley_parallel.Dag.waves ~n:n_queries ~deps:(fun i -> deps.(i)))
  in
  Fun.protect
    ~finally:(fun () -> Galley_engine.Exec.shutdown exec)
    (fun () ->
      try
        (* The nnz guardrail forces mid-run corrective replanning keyed to
           serial execution order, so it pins the serial schedule. *)
        if
          config.nnz_guard = None
          && n_queries > 1
          && Galley_engine.Exec.pool_size exec > 1
        then exec_parallel (Galley_engine.Exec.pool exec)
        else exec_serial ()
      with Galley_engine.Exec.Timeout -> timed_out := true);
  let found, incomplete =
    Obs.span ~cat:"phase" ~name:"collect_outputs" (fun () ->
        collect_outputs exec logical_plan outputs)
  in
  ( found,
    incomplete,
    !all_steps,
    List.rev !physical_tiers,
    !physical_seconds,
    !timed_out,
    !guard_retries )

(* Physical optimization + execution of an already-logical plan. *)
let execute_logical ~(config : config) ~(ctx : Ctx.t)
    ~(inputs : (string * T.t) list) ~(logical_plan : Logical_query.t list)
    ~(outputs : string list) ~(logical_seconds : float)
    ~(logical_tiers : (string * Tier.t) list) : result =
  validate_logical ~config
    ~known:(fun n -> List.mem_assoc n inputs)
    ~outputs logical_plan;
  let audit =
    if config.audit then
      Some
        (Obs.span ~cat:"phase" ~name:"audit_predict" (fun () ->
             audit_predict inputs logical_plan))
    else None
  in
  let exec =
    Galley_engine.Exec.create ~cse:config.cse ~backend:config.kernel_backend
      ~domains:config.domains ~kernel_cache_cap:config.kernel_cache_cap
      ~cse_cache_cap:config.cse_cache_cap ()
  in
  List.iter (fun (name, t) -> Galley_engine.Exec.bind exec name t) inputs;
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "#p%d" !counter
  in
  let ( outputs,
        incomplete_outputs,
        physical_plan,
        physical_tiers,
        physical_seconds,
        timed_out,
        nnz_guard_retries ) =
    execute_queries ~config ~ctx ~exec ~fresh
      ~before_plan:(fun _ -> ())
      ~logical_plan ~outputs
  in
  Option.iter (fun a -> audit_observe a exec logical_plan) audit;
  let timings = exec.Galley_engine.Exec.timings in
  {
    outputs;
    incomplete_outputs;
    logical_plan;
    physical_plan;
    logical_tiers;
    physical_tiers;
    timings =
      {
        logical_seconds;
        physical_seconds;
        compile_seconds = timings.Galley_engine.Exec.compile_time;
        execute_seconds = timings.Galley_engine.Exec.exec_time;
        total_seconds =
          logical_seconds +. physical_seconds
          +. timings.Galley_engine.Exec.compile_time
          +. timings.Galley_engine.Exec.exec_time;
        compile_count = timings.Galley_engine.Exec.compile_count;
        kernel_count = timings.Galley_engine.Exec.kernel_count;
        cse_hits = timings.Galley_engine.Exec.cse_hits;
      };
    timed_out;
    nnz_guard_retries;
    audit;
  }

let run ?(config = default_config) ~(inputs : (string * T.t) list)
    (program : Ir.program) : result =
  let program = resolve_names program in
  let ctx = make_ctx config inputs in
  cur_phase := Errors.Logical;
  cur_query := None;
  let t0 = now () in
  let logical_plan, logical_tiers =
    try
      Obs.span ~cat:"phase" ~name:"logical_opt"
        ~attrs:(fun () ->
          [ ("queries", string_of_int (List.length program.Ir.queries)) ])
        (fun () ->
          Galley_logical.Optimizer.optimize_program_tiered
            ?timeout:config.optimizer_timeout ~degrade:config.degrade
            config.logical ctx program)
    with Tier.Exhausted ->
      Errors.raise_error
        (Errors.Optimizer_deadline
           {
             context = Errors.context ?query:!cur_query Errors.Logical;
             budget = opt_budget config;
           })
  in
  let logical_seconds = now () -. t0 in
  execute_logical ~config ~ctx ~inputs ~logical_plan
    ~outputs:program.Ir.outputs ~logical_seconds ~logical_tiers

(* Run a hand-written logical plan directly, bypassing the logical
   optimizer: this is how the "hand-coded kernel" baselines of the
   evaluation are expressed, so that they execute on the same engine. *)
let run_logical_plan ?(config = default_config)
    ~(inputs : (string * T.t) list) ~(outputs : string list)
    (logical_plan : Logical_query.t list) : result =
  let ctx = make_ctx config inputs in
  (* Register every query's output so estimation can see the aliases. *)
  List.iter (register_query_estimated ctx) logical_plan;
  execute_logical ~config ~ctx ~inputs ~logical_plan ~outputs
    ~logical_seconds:0.0 ~logical_tiers:[]

(* Convenience wrapper for single-query programs. *)
let run_query ?config ~inputs (q : Ir.query) : result =
  run ?config ~inputs { Ir.queries = [ q ]; outputs = [ q.Ir.name ] }

(* ------------------------------------------------------------------ *)
(* Checked entry points.                                                *)
(* ------------------------------------------------------------------ *)

let run_checked ?config ~inputs (program : Ir.program) :
    (result, Errors.t) Result.t =
  match run ?config ~inputs program with
  | r -> Ok r
  | exception Errors.Galley_error e -> Error e
  | exception Tier.Exhausted ->
      Error
        (Errors.Optimizer_deadline
           {
             context = error_context ();
             budget =
               opt_budget (match config with Some c -> c | None -> default_config);
           })
  | exception ((Invalid_argument _ | Failure _) as exn) ->
      Error (Errors.of_exn (error_context ()) exn)

let parse_checked (src : string) : (Ir.program, Errors.t) Stdlib.result =
  match
    Obs.span ~cat:"phase" ~name:"parse"
      ~attrs:(fun () -> [ ("bytes", string_of_int (String.length src)) ])
      (fun () -> Galley_lang.Parser.parse_program src)
  with
  | p -> Ok p
  | exception Galley_lang.Parser.Parse_error { message; pos } ->
      Error (Errors.Parse_error { message; position = pos })
  | exception Galley_lang.Lexer.Lex_error (message, pos) ->
      Error (Errors.Parse_error { message; position = pos })

let run_source_checked ?config ~inputs (src : string) :
    (result, Errors.t) Stdlib.result =
  Result.bind (parse_checked src) (fun program ->
      run_checked ?config ~inputs program)

(* ------------------------------------------------------------------ *)
(* Incremental sessions.                                               *)
(* ------------------------------------------------------------------ *)

(* A session keeps the statistics context and the engine (kernel cache, CSE
   cache) alive across calls: input statistics are computed once per
   binding, and re-running a structurally identical plan (e.g. one BFS
   iteration at a time, paper Sec. 9.3) reuses compiled kernels — the same
   amortization Finch's kernel cache provides. *)
module Session = struct
  type session = {
    s_config : config;
    s_ctx : Ctx.t;
    s_exec : Galley_engine.Exec.t;
    mutable s_inputs : (string * T.t) list;
    mutable s_counter : int;
    s_defined : (string, unit) Hashtbl.t;
        (* names materialized by earlier queries in this session: later
           programs referring to them resolve to [Alias] leaves, so a
           resident daemon's clients can build on prior results *)
  }

  let create ?(config = default_config) () : session =
    let schema = Schema.create () in
    {
      s_config = config;
      s_ctx = Faults.wrap_ctx config.faults (Ctx.create ~kind:config.estimator schema);
      s_exec =
        Galley_engine.Exec.create ~cse:config.cse
          ~backend:config.kernel_backend ~domains:config.domains
          ~kernel_cache_cap:config.kernel_cache_cap
          ~cse_cache_cap:config.cse_cache_cap ();
      s_inputs = [];
      s_counter = 0;
      s_defined = Hashtbl.create 16;
    }

  let config (s : session) : config = s.s_config
  let exec (s : session) : Galley_engine.Exec.t = s.s_exec

  (* Bind or rebind an input tensor; statistics are (re)computed here, not
     per run. *)
  let bind (s : session) (name : string) (tensor : T.t) : unit =
    Schema.declare_tensor s.s_ctx.Ctx.schema name tensor;
    s.s_ctx.Ctx.register_input name tensor;
    Galley_engine.Exec.bind s.s_exec name tensor;
    Hashtbl.remove s.s_defined name;
    s.s_inputs <- (name, tensor) :: List.remove_assoc name s.s_inputs

  let fresh (s : session) () =
    s.s_counter <- s.s_counter + 1;
    Printf.sprintf "#s%d" s.s_counter

  (* Register one query's output for estimation: measured when already
     materialized (JIT), else inferred from its defining expression. *)
  let register_query (s : session) (q : Logical_query.t) : unit =
    register_query_estimated s.s_ctx q;
    Hashtbl.replace s.s_defined q.Logical_query.name ()

  (* Shared tail of [run_logical_plan] and [run_program]: physically
     optimize + execute against the resident executor, reporting
     compile/execute timings as deltas so per-request numbers stay
     meaningful on a long-lived session. *)
  let session_execute (s : session) ~(config : config)
      ~(logical_plan : Logical_query.t list)
      ~(logical_tiers : (string * Tier.t) list) ~(logical_seconds : float)
      ~(outputs : string list) : result =
    let ctx = s.s_ctx in
    let exec = s.s_exec in
    validate_logical ~config
      ~known:(fun n -> Galley_engine.Exec.lookup_opt exec n <> None)
      ~outputs logical_plan;
    let audit =
      if config.audit then begin
        (* The shadow contexts need every tensor this plan can reference:
           session inputs plus residents materialized by earlier queries
           (whose [Alias] leaves resolve exactly like inputs). *)
        let resident =
          Hashtbl.fold
            (fun n () acc ->
              match Galley_engine.Exec.lookup_opt exec n with
              | Some t when not (List.mem_assoc n s.s_inputs) -> (n, t) :: acc
              | _ -> acc)
            s.s_defined []
        in
        Some
          (Obs.span ~cat:"phase" ~name:"audit_predict" (fun () ->
               audit_predict (s.s_inputs @ resident) logical_plan))
      end
      else None
    in
    let t_before = exec.Galley_engine.Exec.timings in
    let compile0 = t_before.Galley_engine.Exec.compile_time in
    let exec0 = t_before.Galley_engine.Exec.exec_time in
    let compile_n0 = t_before.Galley_engine.Exec.compile_count in
    let kernel_n0 = t_before.Galley_engine.Exec.kernel_count in
    let cse0 = t_before.Galley_engine.Exec.cse_hits in
    let ( outputs,
          incomplete_outputs,
          physical_plan,
          physical_tiers,
          physical_seconds,
          timed_out,
          nnz_guard_retries ) =
      execute_queries ~config ~ctx ~exec ~fresh:(fresh s)
        ~before_plan:(register_query s) ~logical_plan ~outputs
    in
    Option.iter (fun a -> audit_observe a exec logical_plan) audit;
    let t_after = exec.Galley_engine.Exec.timings in
    {
      outputs;
      incomplete_outputs;
      logical_plan;
      physical_plan;
      logical_tiers;
      physical_tiers;
      timings =
        {
          logical_seconds;
          physical_seconds;
          compile_seconds = t_after.Galley_engine.Exec.compile_time -. compile0;
          execute_seconds = t_after.Galley_engine.Exec.exec_time -. exec0;
          total_seconds =
            logical_seconds +. physical_seconds
            +. t_after.Galley_engine.Exec.compile_time -. compile0
            +. t_after.Galley_engine.Exec.exec_time -. exec0;
          compile_count = t_after.Galley_engine.Exec.compile_count - compile_n0;
          kernel_count = t_after.Galley_engine.Exec.kernel_count - kernel_n0;
          cse_hits = t_after.Galley_engine.Exec.cse_hits - cse0;
        };
      timed_out;
      nnz_guard_retries;
      audit;
    }

  (* Run a hand-written logical plan against the session state. *)
  let run_logical_plan (s : session) ~(outputs : string list)
      (logical_plan : Logical_query.t list) : result =
    session_execute s ~config:s.s_config ~logical_plan ~logical_tiers:[]
      ~logical_seconds:0.0 ~outputs

  (* Rewrite [Input] leaves that refer to tensors materialized by earlier
     session queries into [Alias] leaves ([resolve_names] only sees the
     current program; this sees the whole resident history). *)
  let resolve_resident (s : session) (p : Ir.program) : Ir.program =
    let queries =
      List.map
        (fun (q : Ir.query) ->
          let rec fix (e : Ir.expr) : Ir.expr =
            match e with
            | Ir.Input (n, idxs) when Hashtbl.mem s.s_defined n ->
                Ir.Alias (n, idxs)
            | Ir.Input _ | Ir.Alias _ | Ir.Literal _ -> e
            | Ir.Map (op, args) -> Ir.Map (op, List.map fix args)
            | Ir.Agg (op, idxs, body) -> Ir.Agg (op, idxs, fix body)
          in
          { q with Ir.expr = fix q.Ir.expr })
        p.Ir.queries
    in
    { p with Ir.queries }

  (* Full pipeline (logical + physical optimization + execution) against
     the resident session: the serving hot path.  [config] overrides the
     per-request knobs (timeouts, degradation, optimizer tier, faults);
     structural fields baked into the resident executor at [create] time
     (estimator kind, backend, domains, CSE, cache caps) are fixed.

     The physical-intermediate name counter restarts per program so that
     a structurally identical request regenerates identical intermediate
     names — together with version-stable rebinding in the engine this
     lets a repeated request replay entirely from the resident CSE cache
     (zero kernels run on the warm path). *)
  let run_program (s : session) ?config (program : Ir.program) : result =
    let config = match config with Some c -> c | None -> s.s_config in
    let program = resolve_resident s (resolve_names program) in
    s.s_counter <- 0;
    cur_phase := Errors.Logical;
    cur_query := None;
    let t0 = now () in
    let logical_plan, logical_tiers =
      try
        Obs.span ~cat:"phase" ~name:"logical_opt"
          ~attrs:(fun () ->
            [ ("queries", string_of_int (List.length program.Ir.queries)) ])
          (fun () ->
            Galley_logical.Optimizer.optimize_program_tiered
              ?timeout:config.optimizer_timeout ~degrade:config.degrade
              config.logical s.s_ctx program)
      with Tier.Exhausted ->
        Errors.raise_error
          (Errors.Optimizer_deadline
             {
               context = Errors.context ?query:!cur_query Errors.Logical;
               budget = opt_budget config;
             })
    in
    let logical_seconds = now () -. t0 in
    session_execute s ~config ~logical_plan ~logical_tiers ~logical_seconds
      ~outputs:program.Ir.outputs

  (* [run_program] with classified failures as [Error]: the per-request
     isolation boundary of `galley serve`.  A failed request leaves the
     resident caches and bindings consistent (at worst with extra
     intermediates, which are version-guarded). *)
  let run_program_checked (s : session) ?config (program : Ir.program) :
      (result, Errors.t) Stdlib.result =
    match run_program s ?config program with
    | r -> Ok r
    | exception Errors.Galley_error e -> Error e
    | exception Tier.Exhausted ->
        Error
          (Errors.Optimizer_deadline
             {
               context = error_context ();
               budget =
                 opt_budget
                   (match config with Some c -> c | None -> s.s_config);
             })
    | exception ((Invalid_argument _ | Failure _) as exn) ->
        Error (Errors.of_exn (error_context ()) exn)

  let lookup (s : session) (name : string) : T.t option =
    Galley_engine.Exec.lookup_opt s.s_exec name
end
