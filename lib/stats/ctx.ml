(* Estimation context: the bridge between the optimizers and a concrete
   sparsity estimator.

   The context annotates expressions bottom-up with statistics objects
   (paper Sec. 7.2): Input/Alias leaves look up cached per-tensor statistics
   (renamed to the access's index variables), Map nodes dispatch to the
   annihilating or non-annihilating merge depending on the operator's
   annihilator and the children's fill values, and Agg nodes project.

   Alias statistics can come from two sources: *inferred* (annotating the
   defining expression, used during logical optimization) or *measured*
   (constructed from the materialized tensor, used by just-in-time physical
   optimization, paper Sec. 8.1). *)

open Galley_plan

type kind = Uniform_kind | Chain_kind

let kind_to_string = function
  | Uniform_kind -> "uniform"
  | Chain_kind -> "chain"

type t = {
  kind : kind;
  schema : Schema.t;
  register_input : string -> Galley_tensor.Tensor.t -> unit;
  register_alias_estimated : string -> output_idxs:Ir.idx list -> Ir.expr -> unit;
  register_alias_tensor : string -> Galley_tensor.Tensor.t -> unit;
  estimate_expr : Ir.expr -> float;
  estimate_access_projected : string -> Ir.idx list -> Ir.Idx_set.t -> float;
  has_stats : string -> bool;
  clone : unit -> t; (* snapshot of the alias-statistics state for search *)
}

(* Canonical positional index names used for cached per-tensor stats. *)
let canon_idx k = Printf.sprintf "%%%d" k

(* Estimator traffic, per context kind, for the metrics report.  Memo
   hits count too — the counters measure how hard the optimizers lean on
   the estimator, not estimator-internal cost. *)
let m_calls_uniform = Galley_obs.Metrics.counter "estimator.calls.uniform"
let m_calls_chain = Galley_obs.Metrics.counter "estimator.calls.chain"

let calls_counter = function
  | Uniform_kind -> m_calls_uniform
  | Chain_kind -> m_calls_chain

module Build (E : Estimator_sig.S) = struct
  type state = {
    schema : Schema.t;
    cache : (string, E.t) Hashtbl.t; (* canonical positional names *)
    memo : (string, float) Hashtbl.t;
        (* estimates per resolved canonical key: alias names are replaced by
           their definitions' keys, so semantically identical sub-queries
           reached along different search branches share entries.  Cleared
           only when an existing name is re-registered (JIT refresh). *)
    def_keys : (string, string) Hashtbl.t; (* alias -> defining key *)
    stats_memo : (string, E.t) Hashtbl.t;
        (* inferred alias statistics per (resolved key | output order):
           branch-independent, shared across clones like [memo] *)
  }

  let resolved_key (st : state) (e : Ir.expr) : string =
    Canonical.canonical_key
      ~resolve_alias:(fun n ->
        match Hashtbl.find_opt st.def_keys n with Some k -> k | None -> n)
      e

  let lookup (st : state) (name : string) (access_idxs : Ir.idx list) : E.t =
    match Hashtbl.find_opt st.cache name with
    | None -> invalid_arg ("Stats.Ctx: no statistics registered for " ^ name)
    | Some stats ->
        let subst = Hashtbl.create 8 in
        List.iteri
          (fun k i -> Hashtbl.replace subst (canon_idx k) i)
          access_idxs;
        E.rename stats (fun i ->
            match Hashtbl.find_opt subst i with Some j -> j | None -> i)

  (* Annotate an expression, returning its statistics and its fill value. *)
  let rec annotate (st : state) (dims : int Ir.Idx_map.t) (e : Ir.expr) :
      E.t * float =
    match e with
    | Ir.Input (name, idxs) | Ir.Alias (name, idxs) ->
        (lookup st name idxs, Schema.fill_of st.schema name)
    | Ir.Literal v -> (E.of_literal v, v)
    | Ir.Map (op, args) ->
        let annotated = List.map (annotate st dims) args in
        let stats = List.map fst annotated in
        let fills = List.map snd annotated in
        let fill = Op.apply op (Array.of_list fills) in
        let annihilating =
          match Op.annihilator op with
          | Some a -> List.for_all (fun f -> f = a) fills
          | None -> false
        in
        let merged =
          if annihilating then E.map_annihilating ~dims stats
          else E.map_non_annihilating ~dims stats
        in
        (merged, fill)
    | Ir.Agg (op, idxs, body) ->
        let body_stats, body_fill = annotate st dims body in
        let n = int_of_float (Schema.space dims idxs) in
        (E.aggregate ~dims body_stats ~over:idxs, Op.repeat op body_fill n)

  let rec make_with (st : state) (kind : kind) : t =
    let register_tensor ?cheap name tensor =
      let nd = Array.length (Galley_tensor.Tensor.dims tensor) in
      let idxs = List.init nd canon_idx in
      if Hashtbl.mem st.cache name then begin
        (* Re-registration (JIT refresh): cached estimates may be stale. *)
        Hashtbl.reset st.memo;
        Hashtbl.remove st.def_keys name
      end;
      Hashtbl.replace st.cache name (E.of_tensor ?cheap tensor ~idxs)
    in
    let schema = st.schema in
    {
      kind;
      schema;
      register_input = register_tensor ~cheap:false;
      register_alias_estimated =
        (fun name ~output_idxs e ->
          let def_key = resolved_key st e in
          let stats_key = def_key ^ "|" ^ String.concat "," output_idxs in
          let stats =
            match Hashtbl.find_opt st.stats_memo stats_key with
            | Some stats -> stats
            | None ->
                let dims = Schema.index_dims schema e in
                let stats, _fill = annotate st dims e in
                (* Store under canonical positional names following the
                   alias's output dimension order. *)
                let subst = Hashtbl.create 8 in
                List.iteri
                  (fun k i -> Hashtbl.replace subst i (canon_idx k))
                  output_idxs;
                let stats =
                  E.rename stats (fun i ->
                      match Hashtbl.find_opt subst i with
                      | Some j -> j
                      | None -> i)
                in
                Hashtbl.replace st.stats_memo stats_key stats;
                stats
          in
          if Hashtbl.mem st.cache name then Hashtbl.reset st.memo;
          Hashtbl.replace st.def_keys name def_key;
          Hashtbl.replace st.cache name stats);
      register_alias_tensor = register_tensor ~cheap:true;
      estimate_expr =
        (fun e ->
          Galley_obs.Metrics.incr (calls_counter kind);
          let key = resolved_key st e in
          match Hashtbl.find_opt st.memo key with
          | Some v -> v
          | None ->
              let dims = Schema.index_dims schema e in
              let stats, _ = annotate st dims e in
              let v = E.estimate stats in
              Hashtbl.replace st.memo key v;
              v);
      estimate_access_projected =
        (fun name idxs keep ->
          Galley_obs.Metrics.incr (calls_counter kind);
          let stats = lookup st name idxs in
          let over = List.filter (fun i -> not (Ir.Idx_set.mem i keep)) idxs in
          let dims =
            List.fold_left
              (fun acc i ->
                match Schema.find schema name with
                | Some info ->
                    let k =
                      match
                        List.find_opt (fun (_, j) -> j = i)
                          (List.mapi (fun k j -> (k, j)) idxs)
                      with
                      | Some (k, _) -> k
                      | None -> 0
                    in
                    Ir.Idx_map.add i info.Schema.dims.(k) acc
                | None -> acc)
              Ir.Idx_map.empty idxs
          in
          E.estimate (E.aggregate ~dims stats ~over));
      has_stats = (fun name -> Hashtbl.mem st.cache name);
      clone =
        (fun () ->
          make_with
            {
              schema = Schema.copy st.schema;
              cache = Hashtbl.copy st.cache;
              memo = st.memo; (* shared: resolved keys are branch-independent *)
              def_keys = Hashtbl.copy st.def_keys;
              stats_memo = st.stats_memo;
            }
            kind);
    }

  let make (schema : Schema.t) (kind : kind) : t =
    make_with
      {
        schema;
        cache = Hashtbl.create 32;
        memo = Hashtbl.create 1024;
        def_keys = Hashtbl.create 64;
        stats_memo = Hashtbl.create 256;
      }
      kind
end

module Uniform_ctx = Build (Uniform)
module Chain_ctx = Build (Chain)

let create ?(kind = Chain_kind) (schema : Schema.t) : t =
  match kind with
  | Uniform_kind -> Uniform_ctx.make schema kind
  | Chain_kind -> Chain_ctx.make schema kind
