(* `galley serve`: protocol round-trips, the LRU cache bound, QoS
   budget→tier mapping, and the daemon itself — warm-cache replay,
   concurrent soak with bit-identical results vs. batch, queue-full
   load shedding, deadline rejection, drain, and fault isolation
   (an injected mid-request kill must not affect neighbours). *)

module T = Galley_tensor.Tensor
module D = Galley.Driver
module Tier = Galley_plan.Tier
module Lru = Galley_engine.Lru
module P = Galley_serve.Protocol
module S = Galley_serve.Server
module C = Galley_serve.Client
module Json = Galley_obs.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Units: LRU, tiers, protocol                                         *)
(* ------------------------------------------------------------------ *)

let test_lru_eviction () =
  let evicted = ref [] in
  let lru =
    Lru.create ~on_evict:(fun k _ -> evicted := k :: !evicted) ~capacity:2 ()
  in
  Lru.put lru "a" 1;
  Lru.put lru "b" 2;
  (* touch "a" so "b" is the LRU entry when "c" overflows *)
  check_bool "a present" true (Lru.find lru "a" = Some 1);
  Lru.put lru "c" 3;
  check_int "capacity held" 2 (Lru.length lru);
  check_int "one eviction" 1 (Lru.evictions lru);
  check_string "lru entry evicted" "b"
    (match !evicted with [ k ] -> k | _ -> "?");
  check_bool "b gone" true (Lru.find lru "b" = None);
  check_bool "a kept" true (Lru.find lru "a" = Some 1);
  check_bool "c kept" true (Lru.find lru "c" = Some 3)

let test_tier_of_budget () =
  let tier = Tier.of_budget ~naive_below:0.1 ~greedy_below:1.0 in
  check_string "50ms -> naive" "naive" (Tier.to_string (tier 0.05));
  check_string "500ms -> greedy" "greedy" (Tier.to_string (tier 0.5));
  check_string "2s -> exact" "exact" (Tier.to_string (tier 2.0))

let test_protocol_roundtrip () =
  (match
     P.decode_request
       (P.encode_query ~id:"q7" ~budget_ms:50.0 ~max_entries:10
          "t = sum[i,j](E[i,j])")
   with
  | Ok
      {
        req_id = Some "q7";
        req = P.Query { src; budget_ms; want_values; max_entries };
      } ->
      check_string "src" "t = sum[i,j](E[i,j])" src;
      check_bool "budget" true (budget_ms = Some 50.0);
      check_bool "max_entries" true (max_entries = Some 10);
      check_bool "values default" true want_values
  | Ok _ -> Alcotest.fail "query decoded to the wrong request"
  | Error e -> Alcotest.fail e);
  (match
     P.decode_request
       (P.encode_bind_entries ~name:"E" ~dims:[| 2; 2 |]
          [| ([| 0; 1 |], 2.5); ([| 1; 0 |], -3.25) |])
   with
  | Ok
      {
        req = P.Bind { name = "E"; spec = P.From_entries { dims; entries; _ } };
        _;
      } ->
      check_bool "dims" true (dims = [| 2; 2 |]);
      check_bool "entries" true
        (entries = [| ([| 0; 1 |], 2.5); ([| 1; 0 |], -3.25) |])
  | Ok _ -> Alcotest.fail "bind decoded to the wrong request"
  | Error e -> Alcotest.fail e);
  (match P.decode_request (P.encode_health ~id:"h" ()) with
  | Ok { req_id = Some "h"; req = P.Health } -> ()
  | _ -> Alcotest.fail "health round-trip failed");
  check_bool "garbage rejected" true
    (Result.is_error (P.decode_request "not json at all"));
  check_bool "unknown op rejected" true
    (Result.is_error (P.decode_request {|{"op":"frobnicate"}|}));
  check_bool "bind without source rejected" true
    (Result.is_error (P.decode_request {|{"op":"bind","name":"E"}|}))

(* ------------------------------------------------------------------ *)
(* Daemon harness                                                      *)
(* ------------------------------------------------------------------ *)

let temp_socket () =
  let path = Filename.temp_file "galley_serve" ".sock" in
  Sys.remove path;
  path

let with_server ?(cfg = fun c -> c) (f : string -> S.t -> unit) : unit =
  let sock = temp_socket () in
  let server = S.create (cfg (S.default_config ~socket_path:sock)) in
  S.start server;
  Fun.protect
    ~finally:(fun () ->
      S.request_drain server;
      S.wait server;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () -> f sock server)

let rpc_ok sock line =
  match C.rpc ~retries:5 ~socket:sock line with
  | Error e -> Alcotest.failf "rpc failed: %s" e
  | Ok resp -> (
      match Json.parse resp with
      | Error e -> Alcotest.failf "bad response %s: %s" resp e
      | Ok json -> json)

let is_ok json =
  match Option.bind (Json.member "ok" json) Json.to_bool with
  | Some b -> b
  | None -> false

let error_kind json =
  Option.bind (Json.member "error" json) (fun e ->
      Option.bind (Json.member "kind" e) Json.to_string)

(* Extract output [name]'s entries from a response: (coords, value) list. *)
let entries_of json name =
  let outputs =
    Option.value ~default:[]
      (Option.bind (Json.member "outputs" json) Json.to_list)
  in
  match
    List.find_opt
      (fun o ->
        Option.bind (Json.member "name" o) Json.to_string = Some name)
      outputs
  with
  | None -> Alcotest.failf "response has no output %S" name
  | Some o ->
      let rows =
        Option.value ~default:[]
          (Option.bind (Json.member "entries" o) Json.to_list)
      in
      List.map
        (fun row ->
          let cells =
            List.filter_map Json.to_float
              (Option.value ~default:[] (Json.to_list row))
          in
          let n = List.length cells in
          ( Array.of_list
              (List.map int_of_float (List.filteri (fun i _ -> i < n - 1) cells)),
            List.nth cells (n - 1) ))
        rows

(* Served results must be BIT-identical to a batch run: same coords,
   float equality, not approximate. *)
let check_matches_batch ~msg json name (expected : (int array * float) array)
    =
  let got = entries_of json name in
  check_int (msg ^ ": entry count") (Array.length expected) (List.length got);
  List.iteri
    (fun i (coords, v) ->
      let ec, ev = expected.(i) in
      check_bool
        (Printf.sprintf "%s: entry %d coords" msg i)
        true (coords = ec);
      check_bool
        (Printf.sprintf "%s: entry %d value bit-identical" msg i)
        true (v = ev))
    got

let spec_e = "40x40:0.08:11"
let spec_x = "40:0.5:12"
let soak_src = "y[i] = sum[j](E[i,j] * x[j])"

let batch_expected () =
  let e = Result.get_ok (P.random_of_spec spec_e) in
  let x = Result.get_ok (P.random_of_spec spec_x) in
  let program = Galley_lang.Parser.parse_program soak_src in
  let res = D.run ~inputs:[ ("E", e); ("x", x) ] program in
  T.to_coo (D.output_of res "y")

(* ------------------------------------------------------------------ *)
(* Daemon tests                                                        *)
(* ------------------------------------------------------------------ *)

let test_bind_query_roundtrip () =
  with_server (fun sock _ ->
      let expected = batch_expected () in
      check_bool "bind E ok" true
        (is_ok (rpc_ok sock (P.encode_bind_random ~name:"E" spec_e)));
      check_bool "bind x ok" true
        (is_ok (rpc_ok sock (P.encode_bind_random ~name:"x" spec_x)));
      let resp = rpc_ok sock (P.encode_query ~id:"rt" soak_src) in
      check_bool "query ok" true (is_ok resp);
      check_matches_batch ~msg:"round-trip" resp "y" expected)

let cache_field json cache field =
  Option.bind (Json.member cache json) (fun c ->
      Option.map int_of_float (Option.bind (Json.member field c) Json.to_float))

let test_warm_cache_replay () =
  with_server (fun sock _ ->
      ignore (rpc_ok sock (P.encode_bind_random ~name:"E" spec_e));
      ignore (rpc_ok sock (P.encode_bind_random ~name:"x" spec_x));
      let r1 = rpc_ok sock (P.encode_query soak_src) in
      let r2 = rpc_ok sock (P.encode_query soak_src) in
      check_bool "cold ok" true (is_ok r1);
      check_bool "warm ok" true (is_ok r2);
      let compiles r = Option.get (cache_field r "cache" "compile_count") in
      let cse r = Option.get (cache_field r "cache" "cse_hits") in
      check_bool "cold run compiled" true (compiles r1 >= 1);
      check_int "warm run compiled nothing" 0 (compiles r2);
      check_bool "warm run replayed from CSE" true (cse r2 >= 1))

let test_concurrent_soak () =
  with_server (fun sock _ ->
      let expected = batch_expected () in
      ignore (rpc_ok sock (P.encode_bind_random ~name:"E" spec_e));
      ignore (rpc_ok sock (P.encode_bind_random ~name:"x" spec_x));
      let clients = 4 and per_client = 6 in
      let failures = Queue.create () in
      let fail_mutex = Mutex.create () in
      let worker c =
        match C.connect ~retries:10 sock with
        | Error e ->
            Mutex.lock fail_mutex;
            Queue.push (Printf.sprintf "client %d: %s" c e) failures;
            Mutex.unlock fail_mutex
        | Ok conn ->
            Fun.protect
              ~finally:(fun () -> C.close conn)
              (fun () ->
                for q = 1 to per_client do
                  let id = Printf.sprintf "c%d-q%d" c q in
                  match C.request conn (P.encode_query ~id soak_src) with
                  | Error e ->
                      Mutex.lock fail_mutex;
                      Queue.push (id ^ ": " ^ e) failures;
                      Mutex.unlock fail_mutex
                  | Ok resp -> (
                      match Json.parse resp with
                      | Ok json when is_ok json -> (
                          match
                            check_matches_batch ~msg:id json "y" expected
                          with
                          | () -> ()
                          | exception exn ->
                              Mutex.lock fail_mutex;
                              Queue.push (id ^ ": " ^ Printexc.to_string exn)
                                failures;
                              Mutex.unlock fail_mutex)
                      | _ ->
                          Mutex.lock fail_mutex;
                          Queue.push (id ^ ": not ok: " ^ resp) failures;
                          Mutex.unlock fail_mutex)
                done)
      in
      let threads =
        List.init clients (fun c -> Thread.create worker (c + 1))
      in
      List.iter Thread.join threads;
      if not (Queue.is_empty failures) then
        Alcotest.failf "soak failures:\n%s"
          (String.concat "\n" (List.of_seq (Queue.to_seq failures)));
      (* The daemon survived 24 concurrent requests and still answers. *)
      let health = rpc_ok sock (P.encode_health ()) in
      check_bool "health after soak" true (is_ok health))

let test_queue_full_shed () =
  (* Capacity 1 + slow optimizer: concurrent submissions overflow the
     queue and at least one gets the structured queue_full rejection;
     once the flood passes, the daemon accepts work again. *)
  with_server
    ~cfg:(fun c ->
      {
        c with
        S.queue_capacity = 1;
        driver =
          {
            D.default_config with
            faults =
              Result.get_ok (Galley.Faults.of_spec "opt-delay=0.02");
          };
      })
    (fun sock _ ->
      ignore (rpc_ok sock (P.encode_bind_random ~name:"E" spec_e));
      ignore (rpc_ok sock (P.encode_bind_random ~name:"x" spec_x));
      let kinds = Queue.create () in
      let k_mutex = Mutex.create () in
      let fire i =
        let json =
          rpc_ok sock (P.encode_query ~id:(string_of_int i) soak_src)
        in
        let kind =
          if is_ok json then "ok"
          else Option.value ~default:"?" (error_kind json)
        in
        Mutex.lock k_mutex;
        Queue.push kind kinds;
        Mutex.unlock k_mutex
      in
      let threads = List.init 8 (fun i -> Thread.create fire i) in
      List.iter Thread.join threads;
      let kinds = List.of_seq (Queue.to_seq kinds) in
      check_bool
        ("at least one queue_full rejection in: "
        ^ String.concat "," kinds)
        true
        (List.mem "queue_full" kinds);
      check_bool "some requests still succeeded" true (List.mem "ok" kinds);
      (* load shedding is temporary: the next request goes through *)
      check_bool "accepts again after flood" true
        (is_ok (rpc_ok sock (P.encode_query ~id:"after" soak_src))))

let test_deadline_reject () =
  with_server
    ~cfg:(fun c ->
      {
        c with
        driver =
          {
            D.default_config with
            faults =
              Result.get_ok (Galley.Faults.of_spec "opt-delay=0.02");
          };
      })
    (fun sock _ ->
      ignore (rpc_ok sock (P.encode_bind_random ~name:"E" spec_e));
      ignore (rpc_ok sock (P.encode_bind_random ~name:"x" spec_x));
      (* Occupy the executor with a batch query, then submit one whose
         1ms budget is certain to be spent queueing behind it. *)
      let slow =
        Thread.create (fun () -> ignore (rpc_ok sock (P.encode_query soak_src))) ()
      in
      Thread.delay 0.005;
      let json =
        rpc_ok sock (P.encode_query ~id:"tight" ~budget_ms:1.0 soak_src)
      in
      Thread.join slow;
      check_bool "rejected" true (not (is_ok json));
      check_string "deadline kind" "deadline"
        (Option.value ~default:"?" (error_kind json)))

let test_fault_isolation () =
  (* serve-kill=2 kills the second admitted query mid-request: it must
     answer with a structured error while queries 1 and 3 succeed and
     the daemon keeps serving. *)
  with_server
    ~cfg:(fun c ->
      {
        c with
        driver =
          {
            D.default_config with
            faults = Result.get_ok (Galley.Faults.of_spec "serve-kill=2");
          };
      })
    (fun sock _ ->
      ignore (rpc_ok sock (P.encode_bind_random ~name:"E" spec_e));
      ignore (rpc_ok sock (P.encode_bind_random ~name:"x" spec_x));
      let r1 = rpc_ok sock (P.encode_query ~id:"1" soak_src) in
      let r2 = rpc_ok sock (P.encode_query ~id:"2" soak_src) in
      let r3 = rpc_ok sock (P.encode_query ~id:"3" soak_src) in
      check_bool "query 1 ok" true (is_ok r1);
      check_bool "query 2 killed" true (not (is_ok r2));
      check_string "query 2 kind" "injected_fault"
        (Option.value ~default:"?" (error_kind r2));
      check_bool "query 3 unaffected" true (is_ok r3);
      check_bool "daemon healthy" true (is_ok (rpc_ok sock (P.encode_health ()))))

let test_accept_fault_isolation () =
  with_server
    ~cfg:(fun c ->
      {
        c with
        driver =
          {
            D.default_config with
            faults =
              Result.get_ok (Galley.Faults.of_spec "serve-accept-fail=1");
          };
      })
    (fun sock _ ->
      (* First connection is dropped by the injected accept failure... *)
      (match C.rpc ~retries:5 ~socket:sock (P.encode_health ()) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "first connection should have been dropped");
      (* ...and the daemon keeps serving later connections. *)
      check_bool "second connection serves" true
        (is_ok (rpc_ok sock (P.encode_health ()))))

let test_drain_completes_inflight () =
  let sock = temp_socket () in
  let server =
    S.create
      {
        (S.default_config ~socket_path:sock) with
        S.driver =
          {
            D.default_config with
            faults = Result.get_ok (Galley.Faults.of_spec "opt-delay=0.01");
          };
      }
  in
  S.start server;
  ignore (rpc_ok sock (P.encode_bind_random ~name:"E" spec_e));
  ignore (rpc_ok sock (P.encode_bind_random ~name:"x" spec_x));
  let inflight_resp = ref None in
  let inflight =
    Thread.create
      (fun () ->
        inflight_resp := Some (rpc_ok sock (P.encode_query ~id:"inflight" soak_src)))
      ()
  in
  Thread.delay 0.005;
  S.request_drain server;
  S.wait server;
  Thread.join inflight;
  (match !inflight_resp with
  | Some json -> check_bool "in-flight request completed ok" true (is_ok json)
  | None -> Alcotest.fail "in-flight request got no response");
  check_bool "socket unlinked after drain" true (not (Sys.file_exists sock));
  (* new connections are refused once drained *)
  match C.rpc ~socket:sock (P.encode_health ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "drained server accepted a connection"

let test_shutdown_request_drains () =
  let sock = temp_socket () in
  let server = S.create (S.default_config ~socket_path:sock) in
  S.start server;
  let ack = rpc_ok sock (P.encode_shutdown ~id:"bye" ()) in
  check_bool "shutdown acked" true (is_ok ack);
  S.wait server;
  check_bool "socket unlinked" true (not (Sys.file_exists sock))

let test_health_and_metrics () =
  with_server (fun sock _ ->
      ignore (rpc_ok sock (P.encode_bind_random ~name:"E" spec_e));
      let h = rpc_ok sock (P.encode_health ()) in
      check_bool "health ok" true (is_ok h);
      check_string "serving" "serving"
        (Option.value ~default:"?"
           (Option.bind (Json.member "status" h) Json.to_string));
      check_int "one resident tensor" 1
        (Option.get
           (Option.map int_of_float
              (Option.bind (Json.member "resident_tensors" h) Json.to_float)));
      let m = rpc_ok sock (P.encode_metrics ()) in
      check_bool "metrics ok" true (is_ok m);
      (* the latency histogram percentiles are part of the dump *)
      match Json.member "metrics" m with
      | Some metrics ->
          check_bool "latency p99 present" true
            (Json.member "serve.request_latency_us.p99" metrics <> None)
      | None -> Alcotest.fail "metrics response has no registry dump")

(* ------------------------------------------------------------------ *)
(* Observability over the wire (PR 9)                                   *)
(* ------------------------------------------------------------------ *)

let test_prometheus_over_wire () =
  with_server (fun sock _ ->
      ignore (rpc_ok sock (P.encode_bind_random ~name:"E" spec_e));
      ignore (rpc_ok sock (P.encode_bind_random ~name:"x" spec_x));
      ignore (rpc_ok sock (P.encode_query ~id:"warm" soak_src));
      let m = rpc_ok sock (P.encode_metrics ~prometheus:true ()) in
      check_bool "prometheus metrics ok" true (is_ok m);
      check_string "format tagged" "prometheus"
        (Option.value ~default:"?"
           (Option.bind (Json.member "format" m) Json.to_string));
      let text =
        match Option.bind (Json.member "metrics" m) Json.to_string with
        | Some t -> t
        | None -> Alcotest.fail "metrics field is not a string"
      in
      let has needle =
        let n = String.length needle and l = String.length text in
        let rec go i =
          i + n <= l && (String.sub text i n = needle || go (i + 1))
        in
        go 0
      in
      check_bool "latency histogram exported" true
        (has "# TYPE galley_serve_request_latency_us histogram");
      check_bool "cumulative +Inf bucket present" true
        (has "galley_serve_request_latency_us_bucket{le=\"+Inf\"}");
      check_bool "flight records counter exported" true
        (has "galley_flight_records");
      (* exposition text, not JSON: no unescaped braces-as-objects *)
      check_bool "nonempty" true (String.length text > 100))

let test_shed_requests_not_in_latency () =
  let module M = Galley_obs.Metrics in
  with_server
    ~cfg:(fun c ->
      {
        c with
        driver =
          {
            D.default_config with
            faults =
              Result.get_ok (Galley.Faults.of_spec "opt-delay=0.02");
          };
      })
    (fun sock _ ->
      ignore (rpc_ok sock (P.encode_bind_random ~name:"E" spec_e));
      ignore (rpc_ok sock (P.encode_bind_random ~name:"x" spec_x));
      let h_ok = M.histogram "serve.request_latency_us" in
      let h_rej = M.histogram "serve.rejection_latency_us" in
      let ok_before = M.histogram_count h_ok in
      let rej_before = M.histogram_count h_rej in
      (* occupy the executor, then submit a request whose 1ms budget is
         certain to be spent queueing *)
      let slow =
        Thread.create
          (fun () -> ignore (rpc_ok sock (P.encode_query ~id:"long" soak_src)))
          ()
      in
      Thread.delay 0.005;
      let json =
        rpc_ok sock (P.encode_query ~id:"tight" ~budget_ms:1.0 soak_src)
      in
      Thread.join slow;
      check_bool "tight rejected" true (not (is_ok json));
      (* survivorship: the shed request lands in the rejection
         histogram, and only the served one in request_latency *)
      check_int "one rejection recorded" (rej_before + 1)
        (M.histogram_count h_rej);
      check_int "shed request absent from request_latency" (ok_before + 1)
        (M.histogram_count h_ok);
      (* the flight recorder kept the shed outcome, visible via debug *)
      let dbg = rpc_ok sock (P.encode_debug ()) in
      check_bool "debug ok" true (is_ok dbg);
      let records =
        Option.value ~default:[]
          (Option.bind (Json.member "records" dbg) Json.to_list)
      in
      let outcome_of id =
        List.find_map
          (fun r ->
            if Option.bind (Json.member "id" r) Json.to_string = Some id then
              Option.bind (Json.member "outcome" r) Json.to_string
            else None)
          records
      in
      check_bool "shed outcome recorded" true
        (outcome_of "tight" = Some "shed:deadline");
      check_bool "served outcome recorded" true (outcome_of "long" = Some "ok"))

let test_debug_fixpoint_over_wire () =
  with_server (fun sock _ ->
      ignore (rpc_ok sock (P.encode_bind_random ~name:"E" spec_e));
      ignore (rpc_ok sock (P.encode_bind_random ~name:"p" spec_x));
      let q =
        rpc_ok sock
          (P.encode_query ~id:"fx" ~values:false
             "p = iterate 3 { p[i] := sum[j](E[i,j] * p[j]) }")
      in
      check_bool "fixpoint query ok" true (is_ok q);
      let dbg = rpc_ok sock (P.encode_debug ~last:2 ()) in
      check_bool "debug ok" true (is_ok dbg);
      let records =
        Option.value ~default:[]
          (Option.bind (Json.member "records" dbg) Json.to_list)
      in
      check_int "last=2 limits the dump" 2 (List.length records);
      let fx =
        match
          List.find_opt
            (fun r ->
              Option.bind (Json.member "id" r) Json.to_string = Some "fx")
            records
        with
        | Some r -> r
        | None -> Alcotest.fail "debug dump has no record for id fx"
      in
      let num k =
        Option.map int_of_float (Option.bind (Json.member k fx) Json.to_float)
      in
      let str k =
        Option.value ~default:"?"
          (Option.bind (Json.member k fx) Json.to_string)
      in
      check_bool "iterations captured" true (num "iterations" = Some 3);
      check_bool "no replans for a fixed-count loop" true
        (num "replans" = Some 0);
      check_string "outcome" "ok" (str "outcome");
      check_int "program digest present" 12 (String.length (str "program"));
      check_int "plan digest present" 12 (String.length (str "plan"));
      check_bool "total latency positive" true
        (match num "total_us" with Some t -> t > 0 | None -> false);
      (* the total lifetime count is also reported *)
      check_bool "total >= 3 requests" true
        (match
           Option.map int_of_float
             (Option.bind (Json.member "total" dbg) Json.to_float)
         with
        | Some t -> t >= 3
        | None -> false))

let () =
  Alcotest.run "serve"
    [
      ( "units",
        [
          Alcotest.test_case "lru eviction order and counter" `Quick
            test_lru_eviction;
          Alcotest.test_case "budget to tier mapping" `Quick
            test_tier_of_budget;
          Alcotest.test_case "protocol round-trip" `Quick
            test_protocol_roundtrip;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "bind+query matches batch bit-identically"
            `Quick test_bind_query_roundtrip;
          Alcotest.test_case "warm cache replays without compiling" `Quick
            test_warm_cache_replay;
          Alcotest.test_case "concurrent soak, 4 clients" `Quick
            test_concurrent_soak;
          Alcotest.test_case "queue-full load shedding" `Quick
            test_queue_full_shed;
          Alcotest.test_case "deadline spent queueing rejects" `Quick
            test_deadline_reject;
          Alcotest.test_case "injected kill isolates to its request" `Quick
            test_fault_isolation;
          Alcotest.test_case "injected accept failure isolates" `Quick
            test_accept_fault_isolation;
          Alcotest.test_case "drain completes in-flight work" `Quick
            test_drain_completes_inflight;
          Alcotest.test_case "shutdown request drains" `Quick
            test_shutdown_request_drains;
          Alcotest.test_case "health and metrics commands" `Quick
            test_health_and_metrics;
        ] );
      ( "observability",
        [
          Alcotest.test_case "prometheus exposition over the wire" `Quick
            test_prometheus_over_wire;
          Alcotest.test_case "shed requests use the rejection histogram"
            `Quick test_shed_requests_not_in_latency;
          Alcotest.test_case "debug op reports fixpoint flight records"
            `Quick test_debug_fixpoint_over_wire;
        ] );
    ]
