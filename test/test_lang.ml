(* Tests for the textual front end: lexer tokens, parser shapes, operator
   precedence, aggregates, multi-query programs, error reporting, and a
   parse/evaluate integration check. *)

module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module Lexer = Galley_lang.Lexer
module Parser = Galley_lang.Parser
module T = Galley_tensor.Tensor

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_e = Parser.parse_expr_string

let test_lexer_tokens () =
  let toks = Lexer.tokenize "Y[i] = sum[j](X[i,j] * 2.5e-1) # comment" in
  check_bool "has ident" true (List.mem (Lexer.IDENT "Y") toks);
  check_bool "has number" true (List.mem (Lexer.NUMBER 0.25) toks);
  check_bool "comment stripped" true
    (not
       (List.exists
          (function Lexer.IDENT "comment" -> true | _ -> false)
          toks))

let test_lexer_operators () =
  let toks = Lexer.tokenize "a <= b >= c == d != e < f > g" in
  check_bool "leq" true (List.mem Lexer.LEQ toks);
  check_bool "geq" true (List.mem Lexer.GEQ toks);
  check_bool "eqeq" true (List.mem Lexer.EQEQ toks);
  check_bool "neq" true (List.mem Lexer.NEQ toks)

let test_lexer_error () =
  check_bool "bad char" true
    (try
       ignore (Lexer.tokenize "a ? b");
       false
     with Lexer.Lex_error _ -> true)

let test_parse_access () =
  match parse_e "X[i,j]" with
  | Ir.Input ("X", [ "i"; "j" ]) -> ()
  | e -> Alcotest.failf "unexpected %s" (Ir.expr_to_string e)

let test_parse_scalar_access () =
  match parse_e "c" with
  | Ir.Input ("c", []) -> ()
  | e -> Alcotest.failf "unexpected %s" (Ir.expr_to_string e)

let test_parse_precedence () =
  (* a + b * c parses as a + (b * c) *)
  match parse_e "a[i] + b[i] * c[i]" with
  | Ir.Map (Op.Add, [ Ir.Input ("a", _); Ir.Map (Op.Mul, _) ]) -> ()
  | e -> Alcotest.failf "unexpected %s" (Ir.expr_to_string e)

let test_parse_parens () =
  match parse_e "(a[i] + b[i]) * c[i]" with
  | Ir.Map (Op.Mul, [ Ir.Map (Op.Add, _); Ir.Input ("c", _) ]) -> ()
  | e -> Alcotest.failf "unexpected %s" (Ir.expr_to_string e)

let test_parse_unary_minus () =
  match parse_e "-a[i]" with
  | Ir.Map (Op.Neg, [ Ir.Input ("a", _) ]) -> ()
  | e -> Alcotest.failf "unexpected %s" (Ir.expr_to_string e)

let test_parse_power_right_assoc () =
  match parse_e "a[i] ^ 2 ^ 3" with
  | Ir.Map (Op.Pow, [ Ir.Input _; Ir.Map (Op.Pow, [ Ir.Literal 2.0; Ir.Literal 3.0 ]) ]) -> ()
  | e -> Alcotest.failf "unexpected %s" (Ir.expr_to_string e)

let test_parse_aggregate () =
  match parse_e "sum[i,j](A[i,j])" with
  | Ir.Agg (Op.Add, [ "i"; "j" ], Ir.Input ("A", _)) -> ()
  | e -> Alcotest.failf "unexpected %s" (Ir.expr_to_string e)

let test_parse_all_aggregates () =
  List.iter
    (fun (kw, op) ->
      match parse_e (kw ^ "[i](A[i])") with
      | Ir.Agg (op', [ "i" ], _) when op' = op -> ()
      | e -> Alcotest.failf "%s: unexpected %s" kw (Ir.expr_to_string e))
    [ ("sum", Op.Add); ("prod", Op.Mul); ("maxof", Op.Max); ("minof", Op.Min);
      ("orof", Op.Or); ("andof", Op.And) ]

let test_parse_functions () =
  List.iter
    (fun (kw, op) ->
      match parse_e (kw ^ "(A[i])") with
      | Ir.Map (op', [ _ ]) when op' = op -> ()
      | e -> Alcotest.failf "%s: unexpected %s" kw (Ir.expr_to_string e))
    [ ("sigmoid", Op.Sigmoid); ("relu", Op.Relu); ("sqrt", Op.Sqrt);
      ("exp", Op.Exp); ("log", Op.Log); ("abs", Op.Abs); ("sq", Op.Square) ]

let test_parse_comparison () =
  match parse_e "sigmoid(x[i]) > 0.5" with
  | Ir.Map (Op.Gt, [ Ir.Map (Op.Sigmoid, _); Ir.Literal 0.5 ]) -> ()
  | e -> Alcotest.failf "unexpected %s" (Ir.expr_to_string e)

let test_parse_program_multi () =
  let p =
    Parser.parse_program
      "R[i] = sum[j](X[i,j] * theta[j])\nP[i] = sigmoid(R[i])\n"
  in
  check_int "two queries" 2 (List.length p.Ir.queries);
  Alcotest.(check (list string)) "outputs" [ "R"; "P" ] p.Ir.outputs;
  let q1 = List.hd p.Ir.queries in
  check_bool "out order" true (q1.Ir.out_order = Some [ "i" ])

let test_parse_program_semicolons () =
  let p = Parser.parse_program "a = b[i] ; c = d[j]" in
  check_int "two queries" 2 (List.length p.Ir.queries)

let test_parse_error_reports () =
  check_bool "missing rhs" true
    (try
       ignore (Parser.parse_program "Y[i] = ");
       false
     with Parser.Parse_error _ -> true);
  check_bool "unbalanced" true
    (try
       ignore (Parser.parse_program "Y = sum[i](A[i]");
       false
     with Parser.Parse_error _ -> true)

(* Errors carry the character offset of the offending token. *)
let test_parse_error_positions () =
  (match Parser.parse_program_res "Y[i = 3" with
  | Error (msg, pos) ->
      check_bool "message set" true (String.length msg > 0);
      (* the '=' at offset 4 is where the index list goes wrong *)
      check_int "position" 4 pos
  | Ok _ -> Alcotest.fail "expected parse error");
  (match Parser.parse_program_res "Y[i] = sum[j](A[j]) extra" with
  | Error (_, pos) -> check_int "trailing token position" 20 pos
  | Ok _ -> Alcotest.fail "expected parse error");
  (match Parser.parse_program_res "Y = A[i] ? 2" with
  | Error (msg, pos) ->
      check_bool "lex error surfaces" true (String.length msg > 0);
      check_int "lex position" 9 pos
  | Ok _ -> Alcotest.fail "expected lex error");
  check_bool "good program still parses" true
    (match Parser.parse_program_res "Y[i] = A[i] * 2" with
    | Ok p -> List.length p.Ir.queries = 1
    | Error _ -> false);
  (* The exception form carries the same position. *)
  match Parser.parse_program "Y[i] = " with
  | exception Parser.Parse_error { pos; _ } -> check_int "exn position" 7 pos
  | _ -> Alcotest.fail "expected parse error"

(* Driver-level: parse_checked classifies into Errors.Parse_error. *)
let test_parse_checked () =
  (match Galley.Driver.parse_checked "Y[i = 3" with
  | Error (Galley.Errors.Parse_error { position; _ }) ->
      check_bool "position in range" true (position >= 0 && position <= 7)
  | Error _ -> Alcotest.fail "wrong error class"
  | Ok _ -> Alcotest.fail "expected parse error");
  check_bool "good source accepted" true
    (Result.is_ok (Galley.Driver.parse_checked "t = sum[i](A[i])"))

(* Parse then run end-to-end; compare with the combinator-built program. *)
let test_parse_and_run () =
  let prng = Galley_tensor.Prng.create 11 in
  let x =
    T.random ~prng ~dims:[| 6; 5 |] ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.4 ()
  in
  let theta =
    T.random ~prng ~dims:[| 5 |] ~formats:[| T.Dense |] ~density:1.0 ()
  in
  let program =
    Parser.parse_program "P[i] = sigmoid(sum[j](X[i,j] * theta[j]))"
  in
  let inputs = [ ("X", x); ("theta", theta) ] in
  let res = Galley.Driver.run ~inputs program in
  let got = Galley.Driver.output_of res "P" in
  let want = List.assoc "P" (Galley.Reference.eval_program inputs program) in
  check_bool "matches reference" true (T.equal_approx ~eps:1e-9 got want)

(* Property: pretty-printing names survives a parse of simple expressions
   (free indices preserved). *)
let prop_parse_preserves_indices =
  QCheck.Test.make ~name:"parsed expressions have expected indices" ~count:50
    (QCheck.int_range 0 10_000)
    (fun seed ->
      let prng = Galley_tensor.Prng.create seed in
      let leaves = [ "A[i,j]"; "B[j,k]"; "v[i]"; "w[k]" ] in
      let rec gen depth =
        if depth = 0 || Galley_tensor.Prng.int prng 3 = 0 then
          List.nth leaves (Galley_tensor.Prng.int prng 4)
        else
          match Galley_tensor.Prng.int prng 3 with
          | 0 -> Printf.sprintf "(%s + %s)" (gen (depth - 1)) (gen (depth - 1))
          | 1 -> Printf.sprintf "(%s * %s)" (gen (depth - 1)) (gen (depth - 1))
          | _ -> Printf.sprintf "sigmoid(%s)" (gen (depth - 1))
      in
      let src = gen 3 in
      let e = parse_e src in
      Ir.Idx_set.subset (Ir.free_indices e)
        (Ir.Idx_set.of_list [ "i"; "j"; "k" ]))

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "errors" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "access" `Quick test_parse_access;
          Alcotest.test_case "scalar access" `Quick test_parse_scalar_access;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "parens" `Quick test_parse_parens;
          Alcotest.test_case "unary minus" `Quick test_parse_unary_minus;
          Alcotest.test_case "power assoc" `Quick test_parse_power_right_assoc;
          Alcotest.test_case "aggregate" `Quick test_parse_aggregate;
          Alcotest.test_case "all aggregates" `Quick test_parse_all_aggregates;
          Alcotest.test_case "functions" `Quick test_parse_functions;
          Alcotest.test_case "comparison" `Quick test_parse_comparison;
          Alcotest.test_case "multi-query" `Quick test_parse_program_multi;
          Alcotest.test_case "semicolons" `Quick test_parse_program_semicolons;
          Alcotest.test_case "errors" `Quick test_parse_error_reports;
          Alcotest.test_case "error positions" `Quick
            test_parse_error_positions;
          Alcotest.test_case "parse_checked" `Quick test_parse_checked;
        ] );
      ("integration", [ Alcotest.test_case "parse and run" `Quick test_parse_and_run ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_parse_preserves_indices ] );
    ]
